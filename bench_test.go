// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§5, Appendices A and E); EXPERIMENTS.md maps
// each benchmark to its artifact and records the measured shapes against
// the paper's. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/backtest"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/scenarios"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

// benchScale keeps per-iteration work around a second so the full suite
// stays tractable; shapes are scale-invariant.
func benchScale() scenarios.Scale { return scenarios.Scale{Switches: 19, Flows: 600} }

// BenchmarkTable1_RepairCandidates regenerates Table 1: all five
// diagnostic queries end to end (generate + backtest).
func BenchmarkTable1_RepairCandidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable1(rows))
		}
	}
}

// BenchmarkTable2_Q1Candidates regenerates Table 2: Q1's candidate list
// with KS statistics and verdicts.
func BenchmarkTable2_Q1Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CandidateTable(context.Background(), scenarios.Q1(benchScale()))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatCandidates("Table 2", rows))
		}
	}
}

// BenchmarkTable3_CrossLanguage regenerates Table 3: the five scenarios
// under the Trema and Pyretic front-ends.
func BenchmarkTable3_CrossLanguage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable3(rows))
		}
	}
}

// BenchmarkTable6_Q2toQ5Candidates regenerates the Appendix E panels.
func BenchmarkTable6_Q2toQ5Candidates(b *testing.B) {
	names := []string{"Q2", "Q3", "Q4", "Q5"}
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			s, err := scenario.Instantiate(name, benchScale())
			if err != nil {
				b.Fatalf("%s: %v", name, err)
			}
			rows, err := experiments.CandidateTable(context.Background(), s)
			if err != nil {
				b.Fatalf("%s: %v", name, err)
			}
			if i == 0 {
				b.Log("\n" + experiments.FormatCandidates("Table 6 "+name, rows))
			}
		}
	}
}

// BenchmarkFigure9a_TurnaroundTime regenerates Figure 9a: the per-scenario
// turnaround breakdown.
func BenchmarkFigure9a_TurnaroundTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9a(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure9a(rows))
		}
	}
}

// BenchmarkFigure9b_Backtesting regenerates Figure 9b: sequential vs
// multi-query backtesting of Q1's first k candidates, via the session
// strategy options.
func BenchmarkFigure9b_Backtesting(b *testing.B) {
	ctx := context.Background()
	sess, cands, bt, err := experiments.QuickCandidates(ctx, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	k := len(cands)
	if k > 9 {
		k = 9
	}
	evaluate := func(b *testing.B, strat metarepair.Strategy, opts ...metarepair.Option) {
		run, err := sess.Evaluate(ctx, cands[:k], bt, append(opts, metarepair.WithStrategy(strat))...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evaluate(b, metarepair.StrategySequential)
		}
	})
	b.Run("MultiQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			evaluate(b, metarepair.StrategySerial)
		}
	})

	// The incremental-backtesting headline: one shared run filled to the
	// 63-tag ceiling, full fixpoint per run versus the delta path that
	// runs the base fixpoint once and replays every candidate as a tagged
	// delta against it. Delta/Full is the speedup EXPERIMENTS.md records.
	wsess, wide, wbt, err := experiments.WideCandidates(ctx, scenarios.Scale{Switches: 19, Flows: 300})
	if err != nil {
		b.Fatal(err)
	}
	if len(wide) > backtest.MaxSharedCandidates {
		wide = wide[:backtest.MaxSharedCandidates]
	}
	shared := func(b *testing.B, eval metarepair.EvalMode) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run, err := wsess.Evaluate(ctx, wide, wbt,
				metarepair.WithStrategy(metarepair.StrategySerial),
				metarepair.WithEvalMode(eval))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := run.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Shared63/Full", func(b *testing.B) { shared(b, metarepair.EvalFull) })
	b.Run("Shared63/Delta", func(b *testing.B) { shared(b, metarepair.EvalDelta) })
}

// BenchmarkBatchedBacktest measures the batched-parallel evaluation of a
// candidate set larger than one shared run's 63-tag space: the same
// batches run serially and then concurrently on the worker pool. On a
// multi-core machine the parallel path wins by roughly the batch count
// (up to core count).
func BenchmarkBatchedBacktest(b *testing.B) {
	ctx := context.Background()
	sess, base, bt, err := experiments.QuickCandidates(ctx, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	if len(base) == 0 {
		b.Fatal("no candidates")
	}
	// Replicate Q1's cost-ordered candidates past the 63-tag cliff; each
	// copy is evaluated independently, so verdicts stay comparable.
	var cands []metaprov.Candidate
	for len(cands) < 72 {
		cands = append(cands, base...)
	}
	cands = cands[:72]
	for _, bench := range []struct {
		name  string
		strat metarepair.Strategy
	}{
		{"SerialBatches", metarepair.StrategySerial},
		{"ParallelBatches", metarepair.StrategyParallel},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := sess.Evaluate(ctx, cands, bt,
					metarepair.WithStrategy(bench.strat), metarepair.WithBatchSize(12))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := run.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExplorePipeline measures the end-to-end explore+backtest
// pipeline on Q1 under a widened search budget (64 candidates, cutoff
// 4.6) that puts constraint solving at the top of the profile — the
// paper's Figure 9a regime, and where PR 4's join work left this
// codebase. Three comparisons, all against the Barrier baseline
// (sequential forest search, then batched backtesting — the pre-streaming
// architecture):
//
//   - StreamN: the full report through the streaming pipeline with N
//     explore workers. Candidates and verdicts are identical (see
//     TestStreamingPipelineMatchesBarrier); wall clock improves with
//     hardware parallelism, so on a single-core host this is flat.
//   - FirstAccepted: the early-stop mode — the search and the unstarted
//     batches are cancelled once a repair passes, cutting evaluated work
//     from 64 candidates to one small probe batch.
//   - FirstVerdict/*: latency to the first streamed verdict, the
//     operator-facing number — the streaming pipeline backtests the
//     cheapest batch while the search is still running, instead of
//     waiting for the whole candidate set.
func BenchmarkExplorePipeline(b *testing.B) {
	ctx := context.Background()
	s := scenarios.Q1(scenarios.Scale{Switches: 19, Flows: 300})
	sess, _, err := s.Diagnose()
	if err != nil {
		b.Fatal(err)
	}
	wide := []metarepair.Option{
		metarepair.WithMaxCandidates(64),
		metarepair.WithBudget(metarepair.Budget{CostCutoff: 4.6, MaxPerStructure: 3}),
	}
	repair := func(b *testing.B, opts ...metarepair.Option) *metarepair.Report {
		rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest(),
			append(append([]metarepair.Option{}, wide...), opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Accepted == 0 {
			b.Fatal("no accepted repair")
		}
		return rep
	}
	b.Run("Barrier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repair(b, metarepair.WithPipelineMode(metarepair.PipelineBarrier))
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("Stream%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repair(b, metarepair.WithPipelineMode(metarepair.PipelineStreaming),
					metarepair.WithExploreWorkers(workers))
			}
		})
	}
	b.Run("FirstAccepted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := repair(b, metarepair.WithPipelineMode(metarepair.PipelineFirstAccepted),
				metarepair.WithBatchSize(8))
			if !rep.EarlyStopped {
				b.Fatal("first-accepted run did not stop early")
			}
		}
	})
	firstVerdict := func(b *testing.B, opts ...metarepair.Option) {
		run, err := sess.Stream(ctx, s.Symptom(), s.Backtest(),
			append(append([]metarepair.Option{}, wide...), opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := <-run.Suggestions(); !ok {
			b.Fatal("no suggestion streamed")
		}
		b.StopTimer()
		for range run.Suggestions() {
		}
		if _, err := run.Wait(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.Run("FirstVerdict/Barrier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			firstVerdict(b, metarepair.WithPipelineMode(metarepair.PipelineBarrier))
		}
	})
	b.Run("FirstVerdict/Stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			firstVerdict(b, metarepair.WithPipelineMode(metarepair.PipelineStreaming),
				metarepair.WithBatchSize(8))
		}
	})
}

// BenchmarkReplaySource compares in-memory slice replay against
// streaming replay from the segmented on-disk trace store (binary §5.4
// records): the storage layer's cost for the O(segment)-memory replay
// path that removes the workload-size ceiling.
func BenchmarkReplaySource(b *testing.B) {
	s := scenarios.Q1(benchScale())
	wl := s.Workload
	st, err := tracestore.Open(b.TempDir(), tracestore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(wl...); err != nil {
		b.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	b.Run("Memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := s.BuildNet()
			if n := trace.Replay(net, wl, 1); n != len(wl) {
				b.Fatalf("replayed %d of %d", n, len(wl))
			}
		}
	})
	b.Run("Disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := s.BuildNet()
			n, err := trace.ReplaySource(net, st.Source(), 1)
			if err != nil {
				b.Fatal(err)
			}
			if n != len(wl) {
				b.Fatalf("replayed %d of %d", n, len(wl))
			}
		}
	})
}

// BenchmarkSuiteMatrix measures the concurrent suite runner against a
// one-worker pool on the full Q1–Q5 matrix at one scale: cells are
// independent pipelines, so on a multi-core machine the pool width is
// roughly the speedup (bounded by the slowest cell).
func BenchmarkSuiteMatrix(b *testing.B) {
	for _, bench := range []struct {
		name     string
		parallel int
	}{
		{"Sequential", 1},
		{"Parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				suite := &scenario.Suite{
					Scales:   []scenario.Scale{benchScale()},
					Parallel: bench.parallel,
				}
				m, err := suite.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure9c_NetworkScalability regenerates Figure 9c: Q1
// turnaround as the campus grows from 19 to 169 switches.
func BenchmarkFigure9c_NetworkScalability(b *testing.B) {
	for _, n := range []int{19, 49, 79, 109, 139, 169} {
		b.Run(fmt.Sprintf("switches=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := scenarios.Q1(scenarios.Scale{Switches: n, Flows: 600})
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure10_ProgramScalability regenerates Figure 10 (Appendix
// A): Q1 turnaround as the controller program grows to ~900 lines.
func BenchmarkFigure10_ProgramScalability(b *testing.B) {
	for _, lines := range []int{100, 300, 500, 700, 900} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := scenarios.Q1(benchScale())
				s.Prog = experiments.AugmentProgram(s.Prog, lines)
				if _, err := s.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineJoin measures the evaluation core's multi-way join at
// suite scale: a 3-way join (two link hops plus a cost lookup) driven by
// probe events over tables sized like the scenario suite's state. The
// Indexed run uses the compile-time plan and per-table hash indexes; the
// LegacySorted run is the seed engine's join (source-order atoms, the whole
// partner table sorted by primary key and scanned on every extension); the
// PlannedScan run isolates the planner's atom reordering without indexes.
// The indexed/legacy ratio is the headline ≥10× speedup recorded in
// EXPERIMENTS.md, with allocs/op dropping alongside.
func BenchmarkEngineJoin(b *testing.B) {
	const (
		nodes  = 600 // one link + one cost row each, ~suite flow count
		probes = 300
	)
	prog := ndlog.MustParse("join3", bench.JoinStressProgram)
	run := func(b *testing.B, strat ndlog.JoinStrategy) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := ndlog.MustNewEngine(prog)
			eng.SetJoinStrategy(strat)
			for n := 0; n < nodes; n++ {
				eng.Insert(ndlog.NewTuple("Link", ndlog.Int(int64(n)), ndlog.Int(int64((n+1)%nodes))))
				eng.Insert(ndlog.NewTuple("Cost", ndlog.Int(int64(n)), ndlog.Int(int64(10*n))))
			}
			for p := 0; p < probes; p++ {
				eng.Insert(ndlog.NewTuple("Probe", ndlog.Int(int64(p*2%nodes))))
			}
			if got := eng.Count("TwoHop"); got != probes {
				b.Fatalf("TwoHop rows = %d, want %d", got, probes)
			}
		}
	}
	b.Run("Indexed", func(b *testing.B) { run(b, ndlog.JoinIndexed) })
	b.Run("PlannedScan", func(b *testing.B) { run(b, ndlog.JoinScan) })
	b.Run("LegacySorted", func(b *testing.B) { run(b, ndlog.JoinLegacySorted) })
}

// BenchmarkOverhead_Provenance measures the §5.4 runtime overhead: the
// controller under a Cbench-style PacketIn stream with and without
// provenance maintenance.
func BenchmarkOverhead_Provenance(b *testing.B) {
	s := scenarios.Q1(benchScale())
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchStress(s.Prog, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchStress(s.Prog, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep, err := experiments.Overhead(benchScale(), 20000)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + experiments.FormatOverhead(rep))
}

func benchStress(prog *ndlog.Program, withProv bool) (any, error) {
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	if withProv {
		eng.Listen(provenance.NewRecorder())
	}
	for i := 0; i < 2000; i++ {
		eng.Insert(ndlog.NewTuple("PacketIn",
			ndlog.Str("C"), ndlog.Int(int64(1+i%4)), ndlog.Int(1),
			ndlog.Int(int64(1000+i%97)), ndlog.Int(201),
			ndlog.Int(int64(1024+i%511)), ndlog.Int(80)))
	}
	return eng, nil
}

// BenchmarkStorage_LogRate measures the §5.4 logging rate (fixed-width
// binary records per packet, via the trace codec's accounting).
func BenchmarkStorage_LogRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		s := scenarios.Q1(benchScale())
		rate = float64(trace.Bytes(s.Workload))
	}
	b.ReportMetric(rate, "bytes/run")
}

// BenchmarkAblation_CostOrder compares cost-ordered forest exploration
// against uniform-cost exploration under the same step budget (§3.5).
func BenchmarkAblation_CostOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oSteps, fSteps, oCands, fCands, err := experiments.AblationCostOrder(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("ordered: %d steps -> %d candidates; uniform: %d steps -> %d candidates",
				oSteps, oCands, fSteps, fCands)
		}
	}
}

// BenchmarkAblation_Coalescing compares shared backtesting with and
// without identical-rule coalescing (§4.4).
func BenchmarkAblation_Coalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, without, err := experiments.AblationCoalescing(context.Background(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("with coalescing %v, without %v", with, without)
		}
	}
}

// BenchmarkAblation_MiniSolver compares the mini-solver fast path against
// full search on representative constraint pools (§5.1).
func BenchmarkAblation_MiniSolver(b *testing.B) {
	mk := func() *solver.Pool {
		p := solver.NewPool()
		p.Add(solver.Eq(solver.V("A"), solver.CInt(3)))
		p.Add(solver.Eq(solver.V("B"), solver.V("A")))
		p.Add(solver.Eq(solver.V("C"), solver.V("B")))
		return p
	}
	b.Run("mini", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s solver.Solver
			if _, ok := s.Solve(mk()); !ok {
				b.Fatal("unsat")
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s solver.Solver
			p := mk()
			p.Add(solver.Cmp(solver.V("C"), ndlog.OpNe, solver.CInt(99))) // forces search
			if _, ok := s.Solve(p); !ok {
				b.Fatal("unsat")
			}
		}
	})
}
