// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints them in order.
//
// Usage:
//
//	experiments [-quick] [-only table1,table2,table3,table6,fig9a,fig9b,fig9c,fig10,overhead,suite,ablations]
//
// -quick shrinks workloads and scaling series so the full run finishes in
// well under a minute; without it the run matches EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenarios"
	"repro/scenario"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "smaller workloads and scaling series")
		only  = flag.String("only", "", "comma-separated subset of experiments to run")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sc := scenarios.Scale{Switches: 19, Flows: 900}
	sizes := []int{19, 49, 79, 109, 139, 169}
	lineSizes := []int{100, 300, 500, 700, 900}
	events := 30000
	if *quick {
		sc.Flows = 500
		sizes = []int{19, 49, 79}
		lineSizes = []int{100, 300, 500}
		events = 8000
	}

	want := map[string]bool{}
	for _, part := range strings.Split(*only, ",") {
		if part = strings.TrimSpace(part); part != "" {
			want[part] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}

	total := time.Now()
	fmt.Print(experiments.ModelStats())

	if run("table1") {
		rows, err := experiments.Table1(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if run("table2") {
		rows, err := experiments.CandidateTable(ctx, scenarios.Q1(sc))
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatCandidates("Table 2: Q1 candidate repairs (3 accepted / 5 rejected, KS statistic)", rows))
	}
	if run("table6") {
		for _, name := range []string{"Q2", "Q3", "Q4", "Q5"} {
			s, err := scenario.Instantiate(name, sc)
			if err != nil {
				fail(err)
			}
			rows, err := experiments.CandidateTable(ctx, s)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatCandidates(
				fmt.Sprintf("Table 6(%s): %s candidate repairs", strings.ToLower(name[1:]), name), rows))
		}
	}
	if run("table3") {
		rows, err := experiments.Table3(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable3(rows))
	}
	if run("fig9a") {
		rows, err := experiments.Figure9a(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFigure9a(rows))
	}
	if run("fig9b") {
		rows, err := experiments.Figure9b(ctx, sc, 9)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFigure9b(rows))
	}
	if run("fig9c") {
		rows, err := experiments.Figure9c(ctx, sizes, sc.Flows)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFigure9c(rows))
	}
	if run("fig10") {
		rows, err := experiments.Figure10(ctx, lineSizes, sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFigure10(rows))
	}
	if run("overhead") {
		rep, err := experiments.Overhead(sc, events)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatOverhead(rep))
	}
	if run("suite") {
		scales := []scenario.Scale{sc, {Switches: 49, Flows: sc.Flows}}
		if *quick {
			scales = scales[:1]
		}
		m, err := experiments.SuiteMatrix(ctx, scales, 0)
		if m != nil {
			fmt.Println(m.Render())
		}
		if err != nil {
			fail(err)
		}
	}
	if run("ablations") {
		oSteps, fSteps, oCands, fCands, err := experiments.AblationCostOrder(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Ablation (cost order): ordered %d steps -> %d candidates; uniform-cost %d steps -> %d candidates\n",
			oSteps, oCands, fSteps, fCands)
		with, without, err := experiments.AblationCoalescing(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Ablation (coalescing): shared backtest %v with, %v without\n", with, without)
		barrier, streaming, overlap, err := experiments.AblationPipeline(ctx, sc, 0)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Ablation (pipeline): barrier %v, streaming %v (%v explore/replay overlap)\n\n",
			barrier.Round(time.Millisecond), streaming.Round(time.Millisecond), overlap.Round(time.Millisecond))
	}

	fmt.Printf("all experiments completed in %v\n", time.Since(total).Round(time.Millisecond))
}
