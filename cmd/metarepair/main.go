// Command metarepair runs one diagnostic scenario end to end: it replays
// the workload through the buggy controller, builds meta provenance for
// the operator's query, generates repair candidates in cost order,
// backtests them against historical traffic, and prints the ranked
// suggestions — the paper's §2 workflow as a CLI.
//
// Usage:
//
//	metarepair -scenario Q1 [-switches 19] [-flows 900] [-lang RapidNet|Trema|Pyretic] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/scenarios"
)

func main() {
	var (
		name     = flag.String("scenario", "Q1", "scenario to run (Q1..Q5)")
		switches = flag.Int("switches", 19, "campus switch count (19..169)")
		flows    = flag.Int("flows", 900, "workload flow count")
		lang     = flag.String("lang", "RapidNet", "controller language front-end (RapidNet, Trema, Pyretic)")
		verbose  = flag.Bool("v", false, "print the candidate meta-provenance tree of the best repair")
	)
	flag.Parse()

	sc := scenarios.Scale{Switches: *switches, Flows: *flows}
	s := scenarios.ByName(*name, sc)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (want Q1..Q5)\n", *name)
		os.Exit(2)
	}

	var language scenarios.Language
	for _, l := range scenarios.Languages() {
		if l.Name == *lang {
			language = l
		}
	}
	if language.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown language %q\n", *lang)
		os.Exit(2)
	}

	fmt.Printf("scenario %s: %s\n", s.Name, s.Query)
	fmt.Printf("language %s, %d switches, %d packets of history\n\n",
		language.Name, *switches, len(s.Workload))

	start := time.Now()
	out, err := s.RunWithLanguage(language)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	if !out.Supported {
		fmt.Printf("scenario %s is not reproducible in %s (see §5.8)\n", s.Name, language.Name)
		return
	}

	fmt.Printf("generated %d candidate repairs (%d filtered as inexpressible in %s)\n",
		out.Generated, out.Filtered, language.Name)
	fmt.Printf("backtesting accepted %d\n\n", out.Passed)
	for i, r := range out.Results {
		mark := " "
		if r.Accepted {
			mark = "*"
		}
		desc := r.Candidate.Describe()
		if i < len(out.Renderings) && out.Renderings[i] != "" {
			desc = out.Renderings[i]
		}
		fmt.Printf(" %s [cost %.1f, KS %.5f] %s\n", mark, r.Candidate.Cost, r.KS, desc)
	}
	fmt.Printf("\nturnaround: %v (history %v, solving %v, patch generation %v, replay %v)\n",
		time.Since(start).Round(time.Millisecond),
		out.Timing.HistoryLookups.Round(time.Millisecond),
		out.Timing.ConstraintSolving.Round(time.Millisecond),
		out.Timing.PatchGeneration.Round(time.Millisecond),
		out.Timing.Replay.Round(time.Millisecond))

	if *verbose && len(out.Candidates) > 0 && out.Candidates[0].Tree != nil {
		fmt.Printf("\nmeta-provenance tree of the top candidate:\n%s\n", out.Candidates[0].Tree.Render())
	}
}
