// Command metarepair runs the paper's §2 workflow as a CLI over the
// metarepair.Session API, now with a durable trace log underneath:
//
//	metarepair [run] -scenario Q1 [-switches 19] [-flows 900]
//	           [-lang RapidNet|Trema|Pyretic] [-parallelism N]
//	           [-timeout 2m] [-events progress.jsonl] [-v]
//	  run one diagnostic scenario end to end: replay the workload through
//	  the buggy controller, build meta provenance, generate candidates,
//	  backtest them in batched-parallel shared runs, print the ranking.
//
//	metarepair capture -dir ./q1.trace -scenario Q1 [-format binary|jsonl]
//	           [-segment-entries N] [-segment-bytes B]
//	  record the scenario's traffic into a segmented on-disk trace store
//	  via the live capture hook (one §5.4 log record per packet).
//
//	metarepair trace ls -dir ./q1.trace
//	  list the store's segments: entries, real bytes, time range, hosts.
//
//	metarepair replay -dir ./q1.trace -scenario Q1 [-from T] [-to T] ...
//	  run the same pipeline but stream the backtest workload out of the
//	  store (optionally a time window of it) instead of memory.
//
// -events streams pipeline progress — including capture.done and
// replay.open — as JSONL to the given file; "-" writes to stderr.
// -timeout cancels the whole pipeline via context.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/scenarios"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runScenario(args)
	case "capture":
		runCapture(args)
	case "trace":
		if len(args) == 0 || args[0] != "ls" {
			fmt.Fprintln(os.Stderr, "usage: metarepair trace ls -dir <store>")
			os.Exit(2)
		}
		runTraceLs(args[1:])
	case "replay":
		runReplay(args)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (want run, capture, trace ls, or replay)\n", cmd)
		os.Exit(2)
	}
}

// scenarioFlags are the flags shared by run, capture, and replay.
type scenarioFlags struct {
	fs       *flag.FlagSet
	name     *string
	switches *int
	flows    *int
}

func newScenarioFlags(cmd string) scenarioFlags {
	fs := flag.NewFlagSet("metarepair "+cmd, flag.ExitOnError)
	return scenarioFlags{
		fs:       fs,
		name:     fs.String("scenario", "Q1", "scenario to run (Q1..Q5)"),
		switches: fs.Int("switches", 19, "campus switch count (19..169)"),
		flows:    fs.Int("flows", 900, "workload flow count"),
	}
}

func (sf scenarioFlags) scenario() *scenarios.Scenario {
	sc := scenarios.Scale{Switches: *sf.switches, Flows: *sf.flows}
	s := scenarios.ByName(*sf.name, sc)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (want Q1..Q5)\n", *sf.name)
		os.Exit(2)
	}
	return s
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "error: %v\n", err)
	os.Exit(1)
}

// runCapture replays the scenario's traffic through a capture-hooked
// network, appending every injected packet to the store.
func runCapture(args []string) {
	sf := newScenarioFlags("capture")
	dir := sf.fs.String("dir", "", "trace store directory (required)")
	format := sf.fs.String("format", "binary", "record codec: binary (120-byte §5.4 records) or jsonl")
	segEntries := sf.fs.Int("segment-entries", 0, "rotate segments after this many records (0 = default)")
	segBytes := sf.fs.Int64("segment-bytes", 0, "rotate segments after this many bytes (0 = default)")
	sf.fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "capture: -dir is required")
		os.Exit(2)
	}
	codec, err := tracestore.CodecByName(*format)
	if err != nil {
		fail(err)
	}
	s := sf.scenario()
	st, err := tracestore.Open(*dir, tracestore.Options{
		Codec: codec, SegmentEntries: *segEntries, SegmentBytes: *segBytes,
	})
	if err != nil {
		fail(err)
	}
	net := s.BuildNet()
	rec := tracestore.NewRecorder(st)
	net.Capture = rec
	injected := trace.Replay(net, s.Workload, 1)
	if err := rec.Err(); err != nil {
		fail(err)
	}
	if err := st.Close(); err != nil {
		fail(err)
	}
	stats := st.Stats()
	fmt.Printf("captured %d packets of scenario %s into %s (%s codec)\n",
		injected, s.Name, *dir, codec.Name())
	fmt.Printf("%d segment(s), %d entries, %d bytes on disk\n",
		stats.Segments, stats.Entries, stats.Bytes)
}

// runTraceLs lists a store's segments from their sidecar indexes.
func runTraceLs(args []string) {
	fs := flag.NewFlagSet("metarepair trace ls", flag.ExitOnError)
	dir := fs.String("dir", "", "trace store directory (required)")
	format := fs.String("format", "binary", "record codec the store was written with")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "trace ls: -dir is required")
		os.Exit(2)
	}
	codec, err := tracestore.CodecByName(*format)
	if err != nil {
		fail(err)
	}
	st, err := tracestore.Open(*dir, tracestore.Options{Codec: codec})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	fmt.Printf("%-14s %10s %12s %12s %12s %7s\n",
		"SEGMENT", "ENTRIES", "BYTES", "MIN-TIME", "MAX-TIME", "HOSTS")
	for _, si := range st.Segments() {
		hosts := fmt.Sprintf("%d", len(si.Hosts))
		if si.HostsOverflow {
			// Past the index bound the exact count is not recorded.
			hosts = fmt.Sprintf(">%d", tracestore.MaxIndexedHosts)
		}
		fmt.Printf("seg-%08d   %10d %12d %12d %12d %7s\n",
			si.ID, si.Entries, si.Bytes, si.MinTime, si.MaxTime, hosts)
	}
	stats := st.Stats()
	fmt.Printf("total: %d segment(s), %d entries, %d bytes, time [%d, %d]\n",
		stats.Segments, stats.Entries, stats.Bytes, stats.MinTime, stats.MaxTime)
}

// runReplay is runScenario with the backtest workload streamed from a
// captured store instead of memory.
func runReplay(args []string) {
	runPipeline("replay", args)
}

func runScenario(args []string) {
	runPipeline("run", args)
}

func runPipeline(cmd string, args []string) {
	sf := newScenarioFlags(cmd)
	lang := sf.fs.String("lang", "RapidNet", "controller language front-end (RapidNet, Trema, Pyretic)")
	par := sf.fs.Int("parallelism", 0, "backtest worker-pool width (0 = all cores)")
	timeout := sf.fs.Duration("timeout", 0, "cancel the pipeline after this long (0 = no limit)")
	events := sf.fs.String("events", "", "stream JSONL progress events to this file (\"-\" = stderr)")
	verbose := sf.fs.Bool("v", false, "print the candidate meta-provenance tree of the best repair")
	var dir, format *string
	var from, to *int64
	if cmd == "replay" {
		dir = sf.fs.String("dir", "", "trace store directory to replay from (required)")
		format = sf.fs.String("format", "binary", "record codec the store was written with")
		from = sf.fs.Int64("from", math.MinInt64, "replay only records with Time >= from")
		to = sf.fs.Int64("to", math.MaxInt64, "replay only records with Time <= to")
	}
	sf.fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	s := sf.scenario()

	var language scenarios.Language
	for _, l := range scenarios.Languages() {
		if l.Name == *lang {
			language = l
		}
	}
	if language.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown language %q\n", *lang)
		os.Exit(2)
	}

	var opts []metarepair.Option
	if *par > 0 {
		opts = append(opts, metarepair.WithParallelism(*par))
	}
	if *events != "" {
		w := os.Stderr
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		opts = append(opts, metarepair.WithEventSink(metarepair.NewJSONLSink(w)))
	}

	workload := fmt.Sprintf("%d packets of history", len(s.Workload))
	if cmd == "replay" {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "replay: -dir is required (run `metarepair capture` first)")
			os.Exit(2)
		}
		codec, err := tracestore.CodecByName(*format)
		if err != nil {
			fail(err)
		}
		st, err := tracestore.Open(*dir, tracestore.Options{Codec: codec})
		if err != nil {
			fail(err)
		}
		defer st.Close()
		stats := st.Stats()
		// The store becomes the scenario's workload — diagnosis and
		// backtesting both stream this windowed view (an explicit
		// Backtest.Source outranks the session-store option, so no
		// WithTraceStore is needed here).
		s.Source = st.Source().Window(*from, *to)
		workload = fmt.Sprintf("%d entries in %d on-disk segment(s) (%d bytes)",
			stats.Entries, stats.Segments, stats.Bytes)
		if *from != math.MinInt64 || *to != math.MaxInt64 {
			workload += fmt.Sprintf(", window [%d, %d]", *from, *to)
		}
	}

	fmt.Printf("scenario %s: %s\n", s.Name, s.Query)
	fmt.Printf("language %s, %d switches, %s\n\n", language.Name, *sf.switches, workload)

	start := time.Now()
	out, err := s.RunWithLanguage(ctx, language, opts...)
	if err != nil {
		fail(err)
	}
	if !out.Supported {
		fmt.Printf("scenario %s is not reproducible in %s (see §5.8)\n", s.Name, language.Name)
		return
	}

	fmt.Printf("generated %d candidate repairs (%d filtered as inexpressible in %s)\n",
		out.Generated, out.Filtered, language.Name)
	fmt.Printf("backtesting accepted %d (%d shared-run batch(es))\n\n",
		out.Passed, out.Report.Batches)
	for i, r := range out.Results {
		mark := " "
		if r.Accepted {
			mark = "*"
		}
		desc := r.Candidate.Describe()
		if i < len(out.Renderings) && out.Renderings[i] != "" {
			desc = out.Renderings[i]
		}
		fmt.Printf(" %s [cost %.1f, KS %.5f] %s\n", mark, r.Candidate.Cost, r.KS, desc)
	}
	fmt.Printf("\nturnaround: %v (history %v, solving %v, patch generation %v, replay %v)\n",
		time.Since(start).Round(time.Millisecond),
		out.Timing.HistoryLookups.Round(time.Millisecond),
		out.Timing.ConstraintSolving.Round(time.Millisecond),
		out.Timing.PatchGeneration.Round(time.Millisecond),
		out.Timing.Replay.Round(time.Millisecond))

	if *verbose && len(out.Candidates) > 0 && out.Candidates[0].Tree != nil {
		fmt.Printf("\nmeta-provenance tree of the top candidate:\n%s\n", out.Candidates[0].Tree.Render())
	}
}
