// Command metarepair runs the paper's §2 workflow as a CLI over the
// metarepair.Session API and the scenario registry:
//
//	metarepair [run] -scenario Q1 [-switches 19] [-flows 900]
//	           [-lang RapidNet|Trema|Pyretic] [-parallelism N]
//	           [-explore-workers N] [-pipeline streaming|barrier|first-accepted]
//	           [-batch N] [-timeout 2m] [-events progress.jsonl]
//	           [-metrics metrics.prom] [-v]
//	  run one diagnostic scenario end to end: replay the workload through
//	  the buggy controller, build meta provenance with the concurrent
//	  forest search, and backtest candidates in shared-run batches that
//	  launch while exploration is still producing (-pipeline streaming,
//	  the default). -pipeline first-accepted stops everything at the first
//	  passing repair; -pipeline barrier restores the explore-first
//	  composition. Prints the ranking and the Figure 9a-style phase
//	  breakdown including explore/replay overlap.
//
//	metarepair suite [-scenarios Q1,Q3] [-scales 19,49:1200] [-flows 900]
//	           [-parallel N] [-check-sequential] [-timeout 10m] [-events f]
//	  run a scenario × scale matrix concurrently on the suite worker pool
//	  and print the aggregate matrix report. -scenarios defaults to every
//	  registered scenario; each -scales entry is a switch count with an
//	  optional :flows override. -check-sequential reruns the matrix on one
//	  worker and fails unless every per-cell verdict matches.
//
//	metarepair capture -dir ./q1.trace -scenario Q1 [-format binary|jsonl]
//	           [-segment-entries N] [-segment-bytes B] [-fault-last]
//	  record the scenario's traffic into a segmented on-disk trace store
//	  via the live capture hook (one §5.4 log record per packet).
//	  -fault-last reorders the replay so healthy background traffic
//	  streams first and the symptom-relevant packets last — the shape
//	  watch-mode drills use to inject the fault mid-stream.
//
//	metarepair watch -dir ./q1.trace -scenario Q1 [-feed] [-window N]
//	           [-hop N] [-debounce N] [-min-triggers N] [-lookback N]
//	           [-max-repairs N] [-exit-validated] [-poll D] ...
//	  self-healing mode: tail the store live, evaluate the scenario's
//	  symptom over sliding windows online, and launch a first-accepted
//	  repair scoped to each flagged window; the patch and its backtest
//	  verdict stream as watch.* events. -feed appends the scenario's
//	  workload (fault-last) into the store while watching, making the
//	  command a self-contained drill; -exit-validated stops (exit 0)
//	  once a repair validates.
//
//	metarepair trace ls -dir ./q1.trace
//	  list the store's segments: entries, real bytes, time range, hosts.
//
//	metarepair replay -dir ./q1.trace -scenario Q1 [-from T] [-to T] ...
//	  run the same pipeline but stream the backtest workload out of the
//	  store (optionally a time window of it) instead of memory.
//
// Scenario names resolve through the scenario package's default registry;
// importing internal/scenarios registers the five §5.3 case studies, and
// third-party packages register their own specs the same way. A typo
// prints the registered menu instead of panicking.
//
// -events streams pipeline progress — including suite cell events,
// capture.done, and replay.open — as JSONL to the given file; "-" writes
// to stderr. -timeout cancels the whole pipeline via context.
//
// -metrics (run and replay) aggregates the run's telemetry — session
// span durations, event and suggestion counts, NDlog engine work — into
// an in-process registry and writes it as a Prometheus text exposition
// to the given file ("-" = stderr) when the run finishes: the same
// families metarepaird serves live at /metrics, for one-shot runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ndlog"
	"repro/internal/obsv"
	_ "repro/internal/scenarios" // register Q1–Q5 in the default registry
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runScenario(args)
	case "suite":
		runSuite(args)
	case "capture":
		runCapture(args)
	case "trace":
		if len(args) == 0 || args[0] != "ls" {
			fmt.Fprintln(os.Stderr, "usage: metarepair trace ls -dir <store>")
			os.Exit(2)
		}
		runTraceLs(args[1:])
	case "replay":
		runReplay(args)
	case "watch":
		runWatch(args)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q (want run, suite, capture, trace ls, replay, or watch)\n", cmd)
		os.Exit(2)
	}
}

// scenarioFlags are the flags shared by run, capture, and replay.
type scenarioFlags struct {
	fs       *flag.FlagSet
	name     *string
	switches *int
	flows    *int
}

func newScenarioFlags(cmd string) scenarioFlags {
	fs := flag.NewFlagSet("metarepair "+cmd, flag.ExitOnError)
	return scenarioFlags{
		fs:   fs,
		name: fs.String("scenario", "Q1", "scenario to run (see the registered list in errors)"),
		switches: fs.Int("switches", 19,
			"topology switch budget (campus: 19..169)"),
		flows: fs.Int("flows", 900, "workload flow count"),
	}
}

// scenario instantiates the named scenario from the default registry; an
// unknown name prints the registry's menu error.
func (sf scenarioFlags) scenario() *scenario.Scenario {
	sc := scenario.Scale{Switches: *sf.switches, Flows: *sf.flows}
	s, err := scenario.Instantiate(*sf.name, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
	return s
}

// evalFlag registers the shared -eval flag; the returned resolver maps
// the value to a session option after Parse, exiting with usage status 2
// on an unknown mode.
func evalFlag(fs *flag.FlagSet) func() metarepair.EvalMode {
	v := fs.String("eval", "delta",
		"shared-run evaluation mode: delta (incremental, default) or full (the reference path)")
	return func() metarepair.EvalMode {
		m, err := metarepair.ParseEvalMode(*v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(2)
		}
		return m
	}
}

// fail reports a fatal error with conventional exit codes — 130 for an
// interrupted pipeline (SIGINT), 124 for an exceeded -timeout, 1 for
// everything else — so scripts and CI can tell a cancelled run from a
// genuinely failed one instead of reading both as the same failure.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "error: %v\n", err)
	switch {
	case errors.Is(err, context.Canceled):
		os.Exit(130)
	case errors.Is(err, context.DeadlineExceeded):
		os.Exit(124)
	}
	os.Exit(1)
}

// pipelineContext builds the signal-aware, optionally timed context every
// subcommand runs under. The first SIGINT cancels the pipeline gracefully
// (partial work is reported as an error, never as a truncated success);
// signal delivery is restored right after, so a second Ctrl-C kills a
// pipeline that is slow to unwind.
func pipelineContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// eventSink opens the -events destination: nil when unset, stderr for
// "-", a fresh file otherwise. The returned closer is a no-op where
// nothing was opened.
func eventSink(dest string) (metarepair.EventSink, func(), error) {
	if dest == "" {
		return nil, func() {}, nil
	}
	if dest == "-" {
		return metarepair.NewJSONLSink(os.Stderr), func() {}, nil
	}
	f, err := os.Create(dest)
	if err != nil {
		return nil, nil, err
	}
	return metarepair.NewJSONLSink(f), func() { f.Close() }, nil
}

// parseScales turns "19,49:1200" into scales, applying defaultFlows to
// entries without an explicit :flows.
func parseScales(spec string, defaultFlows int) ([]scenario.Scale, error) {
	var out []scenario.Scale
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sw, flows := part, ""
		if i := strings.IndexByte(part, ':'); i >= 0 {
			sw, flows = part[:i], part[i+1:]
		}
		sc := scenario.Scale{Flows: defaultFlows}
		n, err := strconv.Atoi(sw)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", part, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("bad scale %q: switch count must be >= 1", part)
		}
		sc.Switches = n
		if flows != "" {
			if sc.Flows, err = strconv.Atoi(flows); err != nil {
				return nil, fmt.Errorf("bad scale %q: %w", part, err)
			}
			if sc.Flows < 1 {
				return nil, fmt.Errorf("bad scale %q: flow count must be >= 1", part)
			}
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales in %q", spec)
	}
	return out, nil
}

// splitList parses a comma-separated name list, empty meaning "all".
func splitList(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runSuite executes a scenario × scale matrix on the concurrent suite
// runner.
func runSuite(args []string) {
	fs := flag.NewFlagSet("metarepair suite", flag.ExitOnError)
	names := fs.String("scenarios", "", "comma-separated scenario names (default: all registered)")
	scalesSpec := fs.String("scales", "19", "comma-separated scales: switch counts with optional :flows (e.g. 19,49:1200); shapes round to their nearest legal size (campus: >= 19)")
	flows := fs.Int("flows", 900, "default workload flow count for scales without :flows")
	par := fs.Int("parallel", 0, "suite worker-pool width (0 = all cores)")
	check := fs.Bool("check-sequential", false, "rerun the matrix on one worker and fail unless all verdicts match")
	timeout := fs.Duration("timeout", 0, "cancel the suite after this long (0 = no limit)")
	events := fs.String("events", "", "stream JSONL progress events to this file (\"-\" = stderr)")
	evalMode := evalFlag(fs)
	fs.Parse(args)

	ctx, stop := pipelineContext(*timeout)
	defer stop()
	scales, err := parseScales(*scalesSpec, *flows)
	if err != nil {
		fail(err)
	}
	sink, closeSink, err := eventSink(*events)
	if err != nil {
		fail(err)
	}
	defer closeSink()

	suite := &scenario.Suite{
		Scenarios: splitList(*names),
		Scales:    scales,
		Parallel:  *par,
		Sink:      sink,
		Options:   []metarepair.Option{metarepair.WithEvalMode(evalMode())},
	}
	start := time.Now()
	m, err := suite.Run(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Print(m.Render())
	fmt.Printf("%d cell(s) in %v\n", len(m.Cells), time.Since(start).Round(time.Millisecond))
	if err := m.Err(); err != nil {
		fail(err)
	}

	if *check {
		seq := &scenario.Suite{Scenarios: suite.Scenarios, Scales: scales, Parallel: 1,
			Options: suite.Options}
		sm, err := seq.Run(ctx)
		if err != nil {
			fail(err)
		}
		if err := sm.Err(); err != nil {
			fail(err)
		}
		if err := compareMatrices(m, sm); err != nil {
			fail(fmt.Errorf("concurrent/sequential divergence: %w", err))
		}
		fmt.Println("verdict parity: concurrent run matches sequential run")
	}
}

// compareMatrices checks two runs of the same matrix produced identical
// per-cell candidate counts and verdicts.
func compareMatrices(a, b *scenario.Matrix) error {
	if len(a.Cells) != len(b.Cells) {
		return fmt.Errorf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := &a.Cells[i], &b.Cells[i]
		if ca.Cell != cb.Cell {
			return fmt.Errorf("cell %d identity differs: %s vs %s", i, ca.Cell, cb.Cell)
		}
		if ca.Outcome.Generated != cb.Outcome.Generated || ca.Outcome.Passed != cb.Outcome.Passed {
			return fmt.Errorf("%s: %d/%d vs %d/%d", ca.Cell,
				ca.Outcome.Generated, ca.Outcome.Passed, cb.Outcome.Generated, cb.Outcome.Passed)
		}
		va, vb := ca.Verdicts(), cb.Verdicts()
		if len(va) != len(vb) {
			return fmt.Errorf("%s: %d vs %d backtest results", ca.Cell, len(va), len(vb))
		}
		for j := range va {
			if va[j] != vb[j] {
				return fmt.Errorf("%s: candidate %d verdict differs", ca.Cell, j)
			}
		}
	}
	return nil
}

// runCapture replays the scenario's traffic through a capture-hooked
// network, appending every injected packet to the store.
func runCapture(args []string) {
	sf := newScenarioFlags("capture")
	dir := sf.fs.String("dir", "", "trace store directory (required)")
	format := sf.fs.String("format", "binary", "record codec: binary (120-byte §5.4 records) or jsonl")
	segEntries := sf.fs.Int("segment-entries", 0, "rotate segments after this many records (0 = default)")
	segBytes := sf.fs.Int64("segment-bytes", 0, "rotate segments after this many bytes (0 = default)")
	faultLast := sf.fs.Bool("fault-last", false,
		"replay healthy background traffic first and symptom-relevant packets last, so watch-mode drills see the fault arrive mid-stream")
	sf.fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "capture: -dir is required")
		os.Exit(2)
	}
	codec, err := tracestore.CodecByName(*format)
	if err != nil {
		fail(err)
	}
	s := sf.scenario()
	faultStart := 0
	if *faultLast {
		ordered, boundary, err := faultLastOrder(s)
		if err != nil {
			fail(err)
		}
		s.Workload, faultStart = ordered, boundary
	}
	st, err := tracestore.Open(*dir, tracestore.Options{
		Codec: codec, SegmentEntries: *segEntries, SegmentBytes: *segBytes,
	})
	if err != nil {
		fail(err)
	}
	net := s.BuildNet()
	rec := tracestore.NewRecorder(st)
	net.Capture = rec
	injected := trace.Replay(net, s.Workload, 1)
	if err := rec.Err(); err != nil {
		fail(err)
	}
	if err := st.Close(); err != nil {
		fail(err)
	}
	stats := st.Stats()
	fmt.Printf("captured %d packets of scenario %s into %s (%s codec)\n",
		injected, s.Name, *dir, codec.Name())
	fmt.Printf("%d segment(s), %d entries, %d bytes on disk\n",
		stats.Segments, stats.Entries, stats.Bytes)
	if *faultLast {
		// The recorder's tick clock stamps entries 1..N in replay order,
		// so the first symptomatic record sits at tick faultStart+1.
		fmt.Printf("fault-last order: %d healthy entries, symptom traffic from tick %d\n",
			faultStart, faultStart+1)
	}
}

// faultLastOrder rebuilds a scenario workload for watch-mode drills:
// time-sorted healthy background traffic first, the symptom-relevant
// packets (those matching the trigger derived from the scenario's goal)
// after, the whole stream restamped onto one monotonic clock. Returns
// the reordered entries and the index of the first symptomatic one.
func faultLastOrder(s *scenario.Scenario) ([]trace.Entry, int, error) {
	trigger := sentinel.TriggerFromGoal(s.Goal)
	if trigger == nil {
		return nil, 0, fmt.Errorf(
			"scenario %s: goal pins no packet-header fields — cannot separate symptom traffic", s.Name)
	}
	stream := append([]trace.Entry(nil), s.Workload...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time < stream[j].Time })
	var healthy, faulty []trace.Entry
	for _, e := range stream {
		if trigger(e) {
			faulty = append(faulty, e)
		} else {
			healthy = append(healthy, e)
		}
	}
	if len(faulty) == 0 {
		return nil, 0, fmt.Errorf("scenario %s: workload has no symptom-relevant packets", s.Name)
	}
	ordered := append(healthy, faulty...)
	for i := range ordered {
		ordered[i].Time = int64(i + 1)
	}
	return ordered, len(healthy), nil
}

// runTraceLs lists a store's segments from their sidecar indexes.
func runTraceLs(args []string) {
	fs := flag.NewFlagSet("metarepair trace ls", flag.ExitOnError)
	dir := fs.String("dir", "", "trace store directory (required)")
	format := fs.String("format", "binary", "record codec the store was written with")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "trace ls: -dir is required")
		os.Exit(2)
	}
	codec, err := tracestore.CodecByName(*format)
	if err != nil {
		fail(err)
	}
	st, err := tracestore.Open(*dir, tracestore.Options{Codec: codec})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	fmt.Printf("%-14s %10s %12s %12s %12s %7s\n",
		"SEGMENT", "ENTRIES", "BYTES", "MIN-TIME", "MAX-TIME", "HOSTS")
	for _, si := range st.Segments() {
		hosts := fmt.Sprintf("%d", len(si.Hosts))
		if si.HostsOverflow {
			// Past the index bound the exact count is not recorded.
			hosts = fmt.Sprintf(">%d", tracestore.MaxIndexedHosts)
		}
		fmt.Printf("seg-%08d   %10d %12d %12d %12d %7s\n",
			si.ID, si.Entries, si.Bytes, si.MinTime, si.MaxTime, hosts)
	}
	stats := st.Stats()
	fmt.Printf("total: %d segment(s), %d entries, %d bytes, time [%d, %d]\n",
		stats.Segments, stats.Entries, stats.Bytes, stats.MinTime, stats.MaxTime)
}

// runWatch runs the self-healing loop: tail a live store, detect the
// scenario's symptom online over sliding windows, and auto-launch
// scoped first-accepted repairs.
func runWatch(args []string) {
	sf := newScenarioFlags("watch")
	dir := sf.fs.String("dir", "", "trace store directory to follow (required)")
	format := sf.fs.String("format", "binary", "record codec of the store")
	segEntries := sf.fs.Int("segment-entries", 0, "rotate segments after this many records (0 = default)")
	feed := sf.fs.Bool("feed", false,
		"append the scenario's workload (fault-last) into the store while watching — a self-contained drill")
	window := sf.fs.Int64("window", 256, "sliding window width, in trace ticks")
	hop := sf.fs.Int64("hop", 0, "window stride in ticks (0 = tumbling: stride = window)")
	debounce := sf.fs.Int64("debounce", 0,
		"suppress re-detections starting within this many ticks of the last flagged window (0 = window width, negative = none)")
	minTriggers := sf.fs.Int64("min-triggers", 1, "symptom-relevant packets a window needs before it can flag")
	lookback := sf.fs.Int64("lookback", -1,
		"replay this many ticks before each flagged window in the repair (-1 = back to the stream's start)")
	maxRepairs := sf.fs.Int("max-repairs", 1, "concurrent auto-repair bound")
	poll := sf.fs.Duration("poll", 200*time.Millisecond, "tail fallback wake interval")
	par := sf.fs.Int("parallelism", 0, "backtest worker-pool width for auto-repairs (0 = all cores)")
	exitValidated := sf.fs.Bool("exit-validated", false, "stop watching after the first validated repair")
	timeout := sf.fs.Duration("timeout", 0, "stop watching after this long (0 = until interrupted)")
	events := sf.fs.String("events", "", "stream JSONL watch and pipeline events to this file (\"-\" = stderr)")
	metricsDest := sf.fs.String("metrics", "",
		"write the watch's metric families (Prometheus text, sentinel_* + session_*) to this file when done (\"-\" = stderr)")
	evalMode := evalFlag(sf.fs)
	sf.fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "watch: -dir is required")
		os.Exit(2)
	}
	codec, err := tracestore.CodecByName(*format)
	if err != nil {
		fail(err)
	}
	s := sf.scenario()
	st, err := tracestore.Open(*dir, tracestore.Options{Codec: codec, SegmentEntries: *segEntries})
	if err != nil {
		fail(err)
	}
	defer st.Close()

	sink, closeSink, err := eventSink(*events)
	if err != nil {
		fail(err)
	}
	defer closeSink()
	var met *runMetrics
	var wm *metarepair.WatchMetrics
	if *metricsDest != "" {
		met = newRunMetrics()
		wm = metarepair.NewWatchMetrics(met.reg)
	}
	validated := make(chan struct{}, 1)
	var sinks multiSink
	if sink != nil {
		sinks = append(sinks, sink)
	}
	if met != nil {
		sinks = append(sinks, met.sessions)
	}
	sinks = append(sinks, metarepair.SinkFunc(func(e metarepair.Event) {
		switch e.Kind {
		case "watch.detect":
			fmt.Printf("detected: symptom %s held over window [%d, %d] (%d trigger packets)\n",
				e.Symptom, e.From, e.To, e.Triggers)
		case "watch.suppressed":
			fmt.Printf("suppressed detection [%d, %d]: %s\n", e.From, e.To, e.Desc)
		case "watch.repair.start":
			fmt.Printf("repairing: first-accepted session over replay window [%d, %d]\n", e.From, e.To)
		case "watch.repair.done":
			if e.Accepted {
				fmt.Printf("validated repair in %.0f ms: %s\n", e.Elapsed, e.Desc)
				select {
				case validated <- struct{}{}:
				default:
				}
			} else {
				fmt.Printf("repair attempt over [%d, %d] did not validate (%d candidates): %s\n",
					e.From, e.To, e.Candidates, e.Desc)
			}
		}
	}))

	lb := *lookback
	if lb < 0 {
		lb = 1 << 40 // further back than any realistic tick clock
	}
	opts := append([]metarepair.Option(nil), s.Options...)
	opts = append(opts, metarepair.WithEvalMode(evalMode()))
	if *par > 0 {
		opts = append(opts, metarepair.WithParallelism(*par))
	}
	w, err := metarepair.NewWatcher(metarepair.WatchConfig{
		Scenario:      s.Name,
		Store:         st,
		Program:       s.Prog,
		Symptom:       s.Symptom(),
		BuildNet:      s.BuildNet,
		State:         s.State,
		Effective:     s.Effective,
		MinTriggers:   *minTriggers,
		Window:        *window,
		Hop:           *hop,
		Debounce:      *debounce,
		Lookback:      lb,
		MaxConcurrent: *maxRepairs,
		Poll:          *poll,
		Sink:          sinks,
		Metrics:       wm,
		Options:       opts,
	})
	if err != nil {
		fail(err)
	}

	ctx, stop := pipelineContext(*timeout)
	defer stop()
	fmt.Printf("watching %s for scenario %s symptoms (window %d, max %d concurrent repairs)\n",
		*dir, s.Name, *window, *maxRepairs)
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()

	if *feed {
		ordered, boundary, err := faultLastOrder(s)
		if err != nil {
			fail(err)
		}
		fmt.Printf("feeding %d entries live (%d healthy, symptom traffic from tick %d)\n",
			len(ordered), boundary, boundary+1)
		go func() {
			for i := 0; i < len(ordered); i += 128 {
				end := i + 128
				if end > len(ordered) {
					end = len(ordered)
				}
				if err := st.Append(ordered[i:end]...); err != nil {
					fmt.Fprintf(os.Stderr, "feed: %v\n", err)
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}()
	}

	var runErr error
loop:
	for {
		select {
		case <-validated:
			if *exitValidated {
				stop()
			}
		case runErr = <-runDone:
			break loop
		}
	}

	stt := w.Stats()
	fmt.Printf("\nwatched %d entries over %d windows: %d detection(s), %d suppressed, %d repair(s) launched (%d validated, %d unvalidated, %d failed)\n",
		stt.Entries, stt.Windows, stt.Detections, stt.Suppressed,
		stt.Launched, stt.Validated, stt.Unvalidated, stt.Failed)
	if met != nil {
		if err := met.dump(*metricsDest); err != nil {
			fail(fmt.Errorf("writing -metrics: %w", err))
		}
	}
	// A validated repair is the loop's success condition, whatever ended
	// the watch; otherwise surface how it ended.
	if stt.Validated > 0 {
		return
	}
	if runErr != nil {
		fail(runErr)
	}
	fail(errors.New("watch ended with no validated repair"))
}

// runReplay is runScenario with the backtest workload streamed from a
// captured store instead of memory.
func runReplay(args []string) {
	runPipeline("replay", args)
}

func runScenario(args []string) {
	runPipeline("run", args)
}

func runPipeline(cmd string, args []string) {
	sf := newScenarioFlags(cmd)
	lang := sf.fs.String("lang", "RapidNet", "controller language front-end (RapidNet, Trema, Pyretic)")
	par := sf.fs.Int("parallelism", 0, "backtest worker-pool width (0 = all cores)")
	exploreWorkers := sf.fs.Int("explore-workers", 0, "concurrent forest-search worker count (0 = all cores)")
	pipeline := sf.fs.String("pipeline", "streaming",
		"explore→backtest composition: streaming (overlapped), barrier (explore first), or first-accepted (stop at the first passing repair)")
	batch := sf.fs.Int("batch", 0, "candidates per shared-run batch (0 = the 63-tag maximum)")
	timeout := sf.fs.Duration("timeout", 0, "cancel the pipeline after this long (0 = no limit)")
	events := sf.fs.String("events", "", "stream JSONL progress events to this file (\"-\" = stderr)")
	metricsDest := sf.fs.String("metrics", "",
		"write the run's metric families (Prometheus text) to this file when done (\"-\" = stderr)")
	verbose := sf.fs.Bool("v", false, "print the candidate meta-provenance tree of the best repair")
	evalMode := evalFlag(sf.fs)
	var dir, format *string
	var from, to *int64
	if cmd == "replay" {
		dir = sf.fs.String("dir", "", "trace store directory to replay from (required)")
		format = sf.fs.String("format", "binary", "record codec the store was written with")
		from = sf.fs.Int64("from", math.MinInt64, "replay only records with Time >= from")
		to = sf.fs.Int64("to", math.MaxInt64, "replay only records with Time <= to")
	}
	sf.fs.Parse(args)

	ctx, stop := pipelineContext(*timeout)
	defer stop()

	s := sf.scenario()

	language, err := scenario.LanguageByName(*lang)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}

	opts := []metarepair.Option{metarepair.WithEvalMode(evalMode())}
	if *par > 0 {
		opts = append(opts, metarepair.WithParallelism(*par))
	}
	if *exploreWorkers > 0 {
		opts = append(opts, metarepair.WithExploreWorkers(*exploreWorkers))
	}
	if *batch > 0 {
		opts = append(opts, metarepair.WithBatchSize(*batch))
	}
	switch *pipeline {
	case "streaming":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineStreaming))
	case "barrier":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineBarrier))
	case "first-accepted":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineFirstAccepted))
	default:
		fmt.Fprintf(os.Stderr, "error: unknown -pipeline %q (want streaming, barrier, or first-accepted)\n", *pipeline)
		os.Exit(2)
	}
	sink, closeSink, err := eventSink(*events)
	if err != nil {
		fail(err)
	}
	defer closeSink()
	var sinks multiSink
	if sink != nil {
		sinks = append(sinks, sink)
	}
	var met *runMetrics
	if *metricsDest != "" {
		met = newRunMetrics()
		sinks = append(sinks, met.sessions)
	}
	if len(sinks) > 0 {
		opts = append(opts, metarepair.WithEventSink(sinks))
	}

	workload := fmt.Sprintf("%d packets of history", len(s.Workload))
	if cmd == "replay" {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "replay: -dir is required (run `metarepair capture` first)")
			os.Exit(2)
		}
		codec, err := tracestore.CodecByName(*format)
		if err != nil {
			fail(err)
		}
		st, err := tracestore.Open(*dir, tracestore.Options{Codec: codec})
		if err != nil {
			fail(err)
		}
		defer st.Close()
		stats := st.Stats()
		// The store becomes the scenario's workload — diagnosis and
		// backtesting both stream this windowed view (an explicit
		// Backtest.Source outranks the session-store option, so no
		// WithTraceStore is needed here).
		s.Source = st.Source().Window(*from, *to)
		workload = fmt.Sprintf("%d entries in %d on-disk segment(s) (%d bytes)",
			stats.Entries, stats.Segments, stats.Bytes)
		if *from != math.MinInt64 || *to != math.MaxInt64 {
			workload += fmt.Sprintf(", window [%d, %d]", *from, *to)
		}
	}

	fmt.Printf("scenario %s: %s\n", s.Name, s.Query)
	fmt.Printf("language %s, %s topology, %d switches, %s\n\n",
		language.Name, s.Topology, *sf.switches, workload)

	start := time.Now()
	out, err := s.RunWithLanguage(ctx, language, opts...)
	if err != nil {
		fail(err)
	}
	if !out.Supported {
		fmt.Printf("scenario %s is not reproducible in %s (see §5.8)\n", s.Name, language.Name)
		return
	}

	fmt.Printf("generated %d candidate repairs (%d filtered as inexpressible in %s)\n",
		out.Generated, out.Filtered, language.Name)
	if out.Report.EarlyStopped {
		fmt.Printf("stopped at the first accepted repair: %d of %d candidates backtested\n",
			out.Report.Evaluated, len(out.Report.Candidates))
	}
	fmt.Printf("backtesting accepted %d (%d shared-run batch(es))\n\n",
		out.Passed, out.Report.Batches)
	for i, r := range out.Results {
		if !out.Report.IsEvaluated(i) {
			continue // first-accepted stop cancelled this candidate's batch
		}
		mark := " "
		if r.Accepted {
			mark = "*"
		}
		desc := r.Candidate.Describe()
		if i < len(out.Renderings) && out.Renderings[i] != "" {
			desc = out.Renderings[i]
		}
		fmt.Printf(" %s [cost %.1f, KS %.5f] %s\n", mark, r.Candidate.Cost, r.KS, desc)
	}
	fmt.Printf("\nturnaround: %v (history %v, solving %v, patch generation %v, replay %v",
		time.Since(start).Round(time.Millisecond),
		out.Timing.HistoryLookups.Round(time.Millisecond),
		out.Timing.ConstraintSolving.Round(time.Millisecond),
		out.Timing.PatchGeneration.Round(time.Millisecond),
		out.Timing.Replay.Round(time.Millisecond))
	if out.Timing.Overlap > 0 {
		fmt.Printf("; %v overlapped", out.Timing.Overlap.Round(time.Millisecond))
	}
	fmt.Println(")")

	if *verbose && len(out.Candidates) > 0 && out.Candidates[0].Tree != nil {
		fmt.Printf("\nmeta-provenance tree of the top candidate:\n%s\n", out.Candidates[0].Tree.Render())
	}

	if met != nil {
		met.recordEngine(out.Session.EngineStats())
		met.recordDelta(out.Report.Engine)
		if err := met.dump(*metricsDest); err != nil {
			fail(fmt.Errorf("writing -metrics: %w", err))
		}
	}
}

// multiSink forwards each pipeline event to every attached sink (-events
// and -metrics can both be active on one run).
type multiSink []metarepair.EventSink

func (m multiSink) Emit(e metarepair.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// runMetrics aggregates one-shot run telemetry: the session families via
// the event stream plus the NDlog engine counters sampled when the run
// finishes — the same catalogue metarepaird exposes at /metrics, minus
// the daemon-only (jobs_*, http_*, tracestore_*) families.
type runMetrics struct {
	reg       *obsv.Registry
	sessions  *metarepair.MetricsSink
	engineOps *obsv.CounterVec

	// The ndlog_delta_* families mirror the daemon's: incremental-
	// evaluation work done by the run's shared backtests (Report.Engine).
	deltaInserts     *obsv.Counter
	deltaRetractions *obsv.Counter
	deltaRecounted   *obsv.Counter
	deltaGroupJoins  *obsv.Counter
}

func newRunMetrics() *runMetrics {
	reg := obsv.NewRegistry()
	return &runMetrics{
		reg:      reg,
		sessions: metarepair.NewMetricsSink(reg),
		engineOps: reg.CounterVec("ndlog_engine_ops_total",
			"NDlog engine work performed by the run, by operation.", "op"),
		deltaInserts: reg.Counter("ndlog_delta_inserts_total",
			"Tuples derived while asserting candidate rules as deltas in shared backtest runs."),
		deltaRetractions: reg.Counter("ndlog_delta_retractions_total",
			"Derivations retracted (directly or by cascade) while removing candidate rules as deltas."),
		deltaRecounted: reg.Counter("ndlog_delta_recounted_tuples_total",
			"Tuples whose support count was adjusted without changing visibility during delta edits."),
		deltaGroupJoins: reg.Counter("ndlog_delta_group_joins_total",
			"Shared joins performed by delta-grouped evaluation; each serves a whole trigger group."),
	}
}

// recordDelta folds the run's shared-backtest delta counters into the
// ndlog_delta_* totals.
func (m *runMetrics) recordDelta(st ndlog.EngineStats) {
	if st.DeltaInserts > 0 {
		m.deltaInserts.Add(st.DeltaInserts)
	}
	if st.DeltaRetractions > 0 {
		m.deltaRetractions.Add(st.DeltaRetractions)
	}
	if st.RecountedTuples > 0 {
		m.deltaRecounted.Add(st.RecountedTuples)
	}
	if st.GroupJoins > 0 {
		m.deltaGroupJoins.Add(st.GroupJoins)
	}
}

func (m *runMetrics) recordEngine(st ndlog.EngineStats) {
	for _, c := range []struct {
		op string
		n  int64
	}{
		{"firings", st.Firings}, {"derivations", st.Derivations},
		{"inserts", st.Inserts}, {"deletes", st.Deletes}, {"sends", st.Sends},
		{"index_lookups", st.IndexLookups}, {"index_rows", st.IndexRows},
		{"scans", st.Scans}, {"scan_rows", st.ScanRows},
	} {
		if c.n > 0 {
			m.engineOps.With(c.op).Add(c.n)
		}
	}
}

// dump writes the registry as a Prometheus text exposition to dest ("-"
// = stderr).
func (m *runMetrics) dump(dest string) error {
	if dest == "-" {
		return m.reg.WriteText(os.Stderr)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := m.reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
