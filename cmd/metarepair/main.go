// Command metarepair runs one diagnostic scenario end to end: it replays
// the workload through the buggy controller, builds meta provenance for
// the operator's query, generates repair candidates in cost order,
// backtests them in batched-parallel shared runs against historical
// traffic, and prints the ranked suggestions — the paper's §2 workflow as
// a CLI over the metarepair.Session API.
//
// Usage:
//
//	metarepair -scenario Q1 [-switches 19] [-flows 900]
//	           [-lang RapidNet|Trema|Pyretic] [-parallelism N]
//	           [-timeout 2m] [-events progress.jsonl] [-v]
//
// -events streams pipeline progress (exploration, batch completion,
// per-candidate verdicts) as JSONL to the given file; "-" writes to
// stderr. -timeout cancels the whole pipeline via context.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/scenarios"
	"repro/metarepair"
)

func main() {
	var (
		name     = flag.String("scenario", "Q1", "scenario to run (Q1..Q5)")
		switches = flag.Int("switches", 19, "campus switch count (19..169)")
		flows    = flag.Int("flows", 900, "workload flow count")
		lang     = flag.String("lang", "RapidNet", "controller language front-end (RapidNet, Trema, Pyretic)")
		par      = flag.Int("parallelism", 0, "backtest worker-pool width (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "cancel the pipeline after this long (0 = no limit)")
		events   = flag.String("events", "", "stream JSONL progress events to this file (\"-\" = stderr)")
		verbose  = flag.Bool("v", false, "print the candidate meta-provenance tree of the best repair")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc := scenarios.Scale{Switches: *switches, Flows: *flows}
	s := scenarios.ByName(*name, sc)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (want Q1..Q5)\n", *name)
		os.Exit(2)
	}

	var language scenarios.Language
	for _, l := range scenarios.Languages() {
		if l.Name == *lang {
			language = l
		}
	}
	if language.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown language %q\n", *lang)
		os.Exit(2)
	}

	var opts []metarepair.Option
	if *par > 0 {
		opts = append(opts, metarepair.WithParallelism(*par))
	}
	if *events != "" {
		w := os.Stderr
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		opts = append(opts, metarepair.WithEventSink(metarepair.NewJSONLSink(w)))
	}

	fmt.Printf("scenario %s: %s\n", s.Name, s.Query)
	fmt.Printf("language %s, %d switches, %d packets of history\n\n",
		language.Name, *switches, len(s.Workload))

	start := time.Now()
	out, err := s.RunWithLanguage(ctx, language, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	if !out.Supported {
		fmt.Printf("scenario %s is not reproducible in %s (see §5.8)\n", s.Name, language.Name)
		return
	}

	fmt.Printf("generated %d candidate repairs (%d filtered as inexpressible in %s)\n",
		out.Generated, out.Filtered, language.Name)
	fmt.Printf("backtesting accepted %d (%d shared-run batch(es))\n\n",
		out.Passed, out.Report.Batches)
	for i, r := range out.Results {
		mark := " "
		if r.Accepted {
			mark = "*"
		}
		desc := r.Candidate.Describe()
		if i < len(out.Renderings) && out.Renderings[i] != "" {
			desc = out.Renderings[i]
		}
		fmt.Printf(" %s [cost %.1f, KS %.5f] %s\n", mark, r.Candidate.Cost, r.KS, desc)
	}
	fmt.Printf("\nturnaround: %v (history %v, solving %v, patch generation %v, replay %v)\n",
		time.Since(start).Round(time.Millisecond),
		out.Timing.HistoryLookups.Round(time.Millisecond),
		out.Timing.ConstraintSolving.Round(time.Millisecond),
		out.Timing.PatchGeneration.Round(time.Millisecond),
		out.Timing.Replay.Round(time.Millisecond))

	if *verbose && len(out.Candidates) > 0 && out.Candidates[0].Tree != nil {
		fmt.Printf("\nmeta-provenance tree of the top candidate:\n%s\n", out.Candidates[0].Tree.Render())
	}
}
