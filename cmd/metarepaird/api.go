package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
	"repro/metarepair"
	"repro/scenario"
)

// jobRequest is the POST /v1/tenants/{tenant}/jobs body. Every field
// beyond Scenario is optional; the knobs map one-to-one onto metarepair
// functional options.
type jobRequest struct {
	// Scenario names a registered spec; Switches/Flows set the scale
	// (zero: the default 19sw/900fl).
	Scenario string `json:"scenario"`
	Switches int    `json:"switches,omitempty"`
	Flows    int    `json:"flows,omitempty"`
	// Trace names a previously ingested trace of the same tenant to
	// stream the workload from; From/To window the replay by record
	// timestamp (metarepair.WithReplayWindow).
	Trace string `json:"trace,omitempty"`
	From  *int64 `json:"from,omitempty"`
	To    *int64 `json:"to,omitempty"`
	// Pipeline selects the explore→backtest composition: "streaming"
	// (default), "barrier", or "first-accepted".
	Pipeline string `json:"pipeline,omitempty"`
	// ExploreWorkers, Batch, Parallelism, and MaxCandidates map onto the
	// session options of the same names (zero keeps each default).
	ExploreWorkers int `json:"explore_workers,omitempty"`
	Batch          int `json:"batch,omitempty"`
	Parallelism    int `json:"parallelism,omitempty"`
	MaxCandidates  int `json:"max_candidates,omitempty"`
	// TimeoutMS bounds the job's own run time; an exceeded deadline is a
	// failed job (a DELETE is a cancelled one).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Label is free-form display text (default "<scenario>@<scale>").
	Label string `json:"label,omitempty"`
}

// options translates the request knobs into session options.
func (r *jobRequest) options() ([]metarepair.Option, error) {
	var opts []metarepair.Option
	switch r.Pipeline {
	case "", "streaming":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineStreaming))
	case "barrier":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineBarrier))
	case "first-accepted":
		opts = append(opts, metarepair.WithPipelineMode(metarepair.PipelineFirstAccepted))
	default:
		return nil, fmt.Errorf("unknown pipeline %q (want streaming, barrier, or first-accepted)", r.Pipeline)
	}
	if r.ExploreWorkers > 0 {
		opts = append(opts, metarepair.WithExploreWorkers(r.ExploreWorkers))
	}
	if r.Batch > 0 {
		opts = append(opts, metarepair.WithBatchSize(r.Batch))
	}
	if r.Parallelism > 0 {
		opts = append(opts, metarepair.WithParallelism(r.Parallelism))
	}
	if r.MaxCandidates > 0 {
		opts = append(opts, metarepair.WithMaxCandidates(r.MaxCandidates))
	}
	// Reject invalid knob combinations (e.g. a batch beyond the 63-tag
	// space) at intake, as a 400, instead of failing the job later.
	if err := metarepair.ValidateOptions(opts...); err != nil {
		return nil, err
	}
	return opts, nil
}

// scale resolves the requested scale with the registry defaults.
func (r *jobRequest) scale() scenario.Scale {
	sc := scenario.DefaultScale()
	if r.Switches > 0 {
		sc.Switches = r.Switches
	}
	if r.Flows > 0 {
		sc.Flows = r.Flows
	}
	return sc
}

// jobStatus is the wire form of one job record (submit, status, cancel,
// and list responses all use it).
type jobStatus struct {
	ID       string      `json:"id"`
	Tenant   string      `json:"tenant"`
	Label    string      `json:"label,omitempty"`
	State    string      `json:"state"`
	Position int         `json:"position,omitempty"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
	Error    string      `json:"error,omitempty"`
	Report   *reportJSON `json:"report,omitempty"`
}

func statusFromJob(j jobs.Job) jobStatus {
	st := jobStatus{
		ID: j.ID, Tenant: j.Tenant, Label: j.Label,
		State: j.State.String(), Position: j.Position,
		Created: j.Created, Error: j.Err,
	}
	if !j.Started.IsZero() {
		t := j.Started
		st.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		st.Finished = &t
	}
	if rep, ok := j.Result.(*reportJSON); ok {
		st.Report = rep
	}
	return st
}

// reportJSON is the wire form of a finished repair run: the ranked
// suggestion list (§5.3 order) plus the same verdicts in candidate/cost
// order, which is the row order every offline table — and the verdict-
// parity comparison against a one-shot CLI run — uses.
type reportJSON struct {
	Scenario     string           `json:"scenario"`
	Scale        string           `json:"scale"`
	Generated    int              `json:"generated"`
	Filtered     int              `json:"filtered,omitempty"`
	Dropped      int              `json:"dropped,omitempty"`
	Accepted     int              `json:"accepted"`
	Batches      int              `json:"batches"`
	Steps        int              `json:"steps"`
	EarlyStopped bool             `json:"early_stopped,omitempty"`
	Evaluated    int              `json:"evaluated"`
	Suggestions  []suggestionJSON `json:"suggestions"`
	Results      []resultJSON     `json:"results"`
	Timing       timingJSON       `json:"timing"`
}

type suggestionJSON struct {
	Rank     int     `json:"rank"`
	Index    int     `json:"index"`
	Batch    int     `json:"batch"`
	Desc     string  `json:"desc"`
	Cost     float64 `json:"cost"`
	Accepted bool    `json:"accepted"`
	KS       float64 `json:"ks"`
	P        float64 `json:"p"`
}

type resultJSON struct {
	Desc      string  `json:"desc"`
	Cost      float64 `json:"cost"`
	Accepted  bool    `json:"accepted"`
	Effective bool    `json:"effective"`
	KS        float64 `json:"ks"`
	Evaluated bool    `json:"evaluated"`
}

type timingJSON struct {
	HistoryMS float64 `json:"history_ms"`
	SolvingMS float64 `json:"solving_ms"`
	PatchMS   float64 `json:"patch_ms"`
	ReplayMS  float64 `json:"replay_ms"`
	OverlapMS float64 `json:"overlap_ms,omitempty"`
}

func reportFromOutcome(out *scenario.Outcome) *reportJSON {
	r := reportFromRepair(out.Scenario.Name, out.Scenario.Scale, out.Report)
	// Outcome timing folds the diagnostic replay in; prefer it.
	r.Timing = timingJSON{
		HistoryMS: float64(out.Timing.HistoryLookups.Microseconds()) / 1e3,
		SolvingMS: float64(out.Timing.ConstraintSolving.Microseconds()) / 1e3,
		PatchMS:   float64(out.Timing.PatchGeneration.Microseconds()) / 1e3,
		ReplayMS:  float64(out.Timing.Replay.Microseconds()) / 1e3,
		OverlapMS: float64(out.Timing.Overlap.Microseconds()) / 1e3,
	}
	return r
}

// ingestResponse is the POST trace response: what this request appended
// and where the store stands afterwards.
type ingestResponse struct {
	Tenant   string `json:"tenant"`
	Trace    string `json:"trace"`
	Ingested int    `json:"ingested"`
	Entries  int64  `json:"entries"`
	Bytes    int64  `json:"bytes"`
	Segments int    `json:"segments"`
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the daemon's uniform error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
