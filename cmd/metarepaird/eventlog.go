package main

import (
	"sync"
	"time"

	"repro/metarepair"
)

// eventLog is one job's live event history: it records every pipeline
// event (it is the job's session EventSink) and simultaneously fans it
// out to SSE subscribers. A subscriber that arrives mid-run gets the
// recorded history followed by the live tail with no gap and no
// duplicate — subscribe() snapshots the history and registers with the
// fan-out under the same lock Emit appends and broadcasts under.
type eventLog struct {
	mu      sync.Mutex
	history []metarepair.Event
	fan     *metarepair.FanoutSink
}

func newEventLog() *eventLog {
	return &eventLog{fan: metarepair.NewFanoutSink()}
}

// Emit implements metarepair.EventSink.
func (l *eventLog) Emit(e metarepair.Event) {
	l.mu.Lock()
	l.history = append(l.history, e)
	l.fan.Emit(e)
	l.mu.Unlock()
}

// emitLifecycle records a daemon-level job event (job.queued,
// job.running, job.succeeded, ...). The session stamps Time on pipeline
// events; lifecycle events are the daemon's own, so it stamps them here.
func (l *eventLog) emitLifecycle(kind, id string) {
	l.Emit(metarepair.Event{Time: time.Now(), Kind: kind, Desc: id})
}

// subscribe returns the history so far plus a live subscription for
// everything after it. buf bounds the subscriber's backlog (drop-oldest
// on overflow), so one stalled SSE client never holds memory or stalls
// the run. On a finished job the subscription is already terminated and
// only the history streams.
func (l *eventLog) subscribe(buf int) ([]metarepair.Event, *metarepair.Subscription) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]metarepair.Event(nil), l.history...), l.fan.Subscribe(buf)
}

// close ends the live stream: subscribers drain their backlog and then
// see end-of-stream. Called once, when the job reaches a terminal state.
func (l *eventLog) close() { l.fan.Close() }
