// Command metarepaird is the repair-as-a-service daemon: the paper's
// diagnose → generate → backtest pipeline behind a multi-tenant HTTP
// API, backed by a bounded job engine and a per-tenant trace-store tree.
//
//	metarepaird -addr :8080 -data ./data [-workers N] [-queue-cap N]
//	            [-tenant-queued N] [-tenant-running N] [-result-ttl 1h]
//	            [-drain-timeout 30s] [-pprof]
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	POST   /v1/tenants/{t}/traces/{name}[?format=binary|jsonl]
//	       ingest a capture stream: the body is a concatenation of codec
//	       records (the §5.4 120-byte format by default), appended to the
//	       tenant's named trace store
//	GET    /v1/tenants/{t}/traces          list the tenant's traces
//	POST   /v1/tenants/{t}/jobs            submit a repair job (scenario,
//	       scale, optional stored trace + replay window, pipeline knobs)
//	GET    /v1/tenants/{t}/jobs            list the tenant's jobs
//	GET    /v1/jobs/{id}                   job status + full report
//	DELETE /v1/jobs/{id}                   cancel (queued or running)
//	GET    /v1/jobs/{id}/events            live SSE event stream
//	POST   /v1/tenants/{t}/watches         register a self-healing watch:
//	       tail the named trace live, detect the scenario's symptom over
//	       sliding windows, auto-submit a first-accepted repair job per
//	       flagged window
//	GET    /v1/tenants/{t}/watches         list the tenant's watches
//	GET    /v1/watches/{id}                watch status + loop stats
//	DELETE /v1/watches/{id}                stop the watch loop
//	GET    /v1/watches/{id}/events         live SSE stream of detections,
//	       suppressions, and repair verdicts (watch.* events)
//	GET    /scenarios                      registered scenario catalogue
//	GET    /healthz                        engine stats
//	GET    /metrics                        Prometheus text exposition: job
//	       engine, per-route HTTP, session span, sentinel watch, NDlog
//	       engine, and trace store families (see the README's
//	       Observability section)
//	GET    /debug/pprof/*                  runtime profiles (-pprof only)
//
// Submissions beyond the global queue cap or the tenant's queue cap are
// rejected with 429; per-tenant running quotas bound how much of the
// worker pool one tenant can hold. On SIGINT/SIGTERM the daemon drains:
// intake stops (503), running and queued jobs get -drain-timeout to
// finish, then stragglers are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	_ "repro/internal/scenarios" // register Q1–Q5 in the default registry
	"repro/internal/tracestore"
	"repro/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "trace-store root directory (required)")
	workers := flag.Int("workers", 0, "job worker-pool width (0 = all cores)")
	queueCap := flag.Int("queue-cap", 64, "global queued-job cap")
	tenantQueued := flag.Int("tenant-queued", 16, "per-tenant queued-job cap")
	tenantRunning := flag.Int("tenant-running", 0, "per-tenant running-job quota (0 = pool width)")
	resultTTL := flag.Duration("result-ttl", time.Hour, "retain finished job records this long")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"on shutdown, let jobs finish for this long before cancelling them")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "metarepaird: -data is required")
		os.Exit(2)
	}

	tenants, err := tracestore.OpenTenants(*data, tracestore.Options{})
	if err != nil {
		log.Fatalf("metarepaird: opening data dir: %v", err)
	}
	srv := newServer(scenario.Default(), tenants, jobs.Config{
		Workers: *workers, QueueCap: *queueCap,
		TenantQueueCap: *tenantQueued, TenantRunning: *tenantRunning,
		ResultTTL: *resultTTL,
	}, *enablePprof)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("metarepaird: serving on %s (data %s)", *addr, *data)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatalf("metarepaird: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	log.Printf("metarepaird: draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: close the engine's intake and wait for jobs first (the
	// server's drain also ends live SSE streams), then stop accepting
	// connections.
	if err := srv.shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("metarepaird: drain: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("metarepaird: drain deadline passed; remaining jobs cancelled")
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("metarepaird: http shutdown: %v", err)
	}
	log.Printf("metarepaird: bye")
}
