package main

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/ndlog"
	"repro/internal/obsv"
	"repro/internal/tracestore"
	"repro/metarepair"
)

// daemonMetrics is the server's telemetry root: one registry exposed at
// /metrics carrying the jobs_* engine families, per-route HTTP families,
// the session_* pipeline families, per-job ndlog engine work counters,
// and per-store tracestore gauges. Every family is registered up front,
// so a scrape sees the complete catalogue (HELP/TYPE lines) even before
// the first job runs.
type daemonMetrics struct {
	reg  *obsv.Registry
	jobs *jobs.Metrics
	// sessions aggregates pipeline events (span durations, suggestion
	// verdicts) across every job; it is attached to each job's event
	// stream alongside the SSE log.
	sessions *metarepair.MetricsSink
	// watches carries the sentinel_* self-healing families, shared by
	// every registered watch.
	watches *metarepair.WatchMetrics

	httpRequests *obsv.CounterVec   // http_requests_total{route,code}
	httpDuration *obsv.HistogramVec // http_request_duration_seconds{route}

	engineOps *obsv.CounterVec // ndlog_engine_ops_total{op}

	// The ndlog_delta_* families count the incremental-evaluation work of
	// finished jobs' shared backtest runs (Report.Engine): rule edits
	// applied as deltas instead of fresh fixpoints.
	deltaInserts     *obsv.Counter // ndlog_delta_inserts_total
	deltaRetractions *obsv.Counter // ndlog_delta_retractions_total
	deltaRecounted   *obsv.Counter // ndlog_delta_recounted_tuples_total
	deltaGroupJoins  *obsv.Counter // ndlog_delta_group_joins_total

	storeEntries   *obsv.GaugeVec // tracestore_entries{tenant,trace}
	storeBytes     *obsv.GaugeVec
	storeSegments  *obsv.GaugeVec
	storeRotations *obsv.GaugeVec
}

func newDaemonMetrics() *daemonMetrics {
	reg := obsv.NewRegistry()
	return &daemonMetrics{
		reg:      reg,
		jobs:     jobs.NewMetrics(reg),
		sessions: metarepair.NewMetricsSink(reg),
		watches:  metarepair.NewWatchMetrics(reg),
		httpRequests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		httpDuration: reg.HistogramVec("http_request_duration_seconds",
			"HTTP request latency, by route pattern.", nil, "route"),
		engineOps: reg.CounterVec("ndlog_engine_ops_total",
			"NDlog engine work performed by finished jobs, by operation.", "op"),
		deltaInserts: reg.Counter("ndlog_delta_inserts_total",
			"Tuples derived while asserting candidate rules as deltas in shared backtest runs."),
		deltaRetractions: reg.Counter("ndlog_delta_retractions_total",
			"Derivations retracted (directly or by cascade) while removing candidate rules as deltas."),
		deltaRecounted: reg.Counter("ndlog_delta_recounted_tuples_total",
			"Tuples whose support count was adjusted without changing visibility during delta edits."),
		deltaGroupJoins: reg.Counter("ndlog_delta_group_joins_total",
			"Shared joins performed by delta-grouped evaluation; each serves a whole trigger group."),
		storeEntries: reg.GaugeVec("tracestore_entries",
			"Records in a tenant's trace store.", "tenant", "trace"),
		storeBytes: reg.GaugeVec("tracestore_bytes",
			"On-disk bytes of a tenant's trace store.", "tenant", "trace"),
		storeSegments: reg.GaugeVec("tracestore_segments",
			"Segments (sealed + active) of a tenant's trace store.", "tenant", "trace"),
		storeRotations: reg.GaugeVec("tracestore_rotations",
			"Segment seals performed on a tenant's trace store by this process.", "tenant", "trace"),
	}
}

// recordEngine folds one finished job's NDlog engine counters into the
// process-wide totals. Each job runs its own session, so the snapshot is
// exactly that job's work.
func (m *daemonMetrics) recordEngine(st ndlog.EngineStats) {
	for _, c := range []struct {
		op string
		n  int64
	}{
		{"firings", st.Firings}, {"derivations", st.Derivations},
		{"inserts", st.Inserts}, {"deletes", st.Deletes}, {"sends", st.Sends},
		{"index_lookups", st.IndexLookups}, {"index_rows", st.IndexRows},
		{"scans", st.Scans}, {"scan_rows", st.ScanRows},
	} {
		if c.n > 0 {
			m.engineOps.With(c.op).Add(c.n)
		}
	}
}

// recordDelta folds one finished job's shared-run delta counters
// (Report.Engine, aggregated across the job's backtest batches) into the
// ndlog_delta_* totals.
func (m *daemonMetrics) recordDelta(st ndlog.EngineStats) {
	if st.DeltaInserts > 0 {
		m.deltaInserts.Add(st.DeltaInserts)
	}
	if st.DeltaRetractions > 0 {
		m.deltaRetractions.Add(st.DeltaRetractions)
	}
	if st.RecountedTuples > 0 {
		m.deltaRecounted.Add(st.RecountedTuples)
	}
	if st.GroupJoins > 0 {
		m.deltaGroupJoins.Add(st.GroupJoins)
	}
}

// recordStore refreshes one trace store's gauges (sampled after ingest
// and after every job that replays from the store).
func (m *daemonMetrics) recordStore(tenant, trace string, st tracestore.Stats) {
	m.storeEntries.With(tenant, trace).Set(float64(st.Entries))
	m.storeBytes.With(tenant, trace).Set(float64(st.Bytes))
	m.storeSegments.With(tenant, trace).Set(float64(st.Segments))
	m.storeRotations.With(tenant, trace).Set(float64(st.Rotations))
}

// statusRecorder captures the response code for the route metrics while
// passing the Flusher capability through — the SSE handler type-asserts
// it, so losing it would silently break event streaming.
type statusRecorder struct {
	http.ResponseWriter
	flusher http.Flusher
	code    int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if r.flusher != nil {
		r.flusher.Flush()
	}
}

// instrument wraps a route handler with per-route request counting and
// latency timing. The label is the registration pattern ("POST
// /v1/tenants/{tenant}/jobs"), never the raw URL, so label cardinality
// is fixed by the route table.
func (m *daemonMetrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		rec.flusher, _ = w.(http.Flusher)
		start := time.Now()
		h(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		m.httpRequests.With(route, strconv.Itoa(rec.code)).Inc()
		m.httpDuration.With(route).Observe(time.Since(start).Seconds())
	}
}

// teeSink forwards each event to both the job's SSE log and the metrics
// aggregator.
type teeSink struct {
	a, b metarepair.EventSink
}

func (t teeSink) Emit(e metarepair.Event) {
	t.a.Emit(e)
	t.b.Emit(e)
}
