package main

import (
	"bytes"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obsv"
	"repro/internal/scenarios"
	"repro/internal/tracestore"
)

// scrapeMetrics GETs /metrics and parses the exposition.
func scrapeMetrics(t *testing.T, baseURL string) *obsv.Scrape {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	sc, err := obsv.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics exposition: %v", err)
	}
	return sc
}

// bucketCeil returns the smallest latency-bucket upper bound at or above
// v — the tightest claim a histogram can make about an observation of v.
func bucketCeil(v float64) float64 {
	for _, le := range obsv.BucketsLatency {
		if le >= v {
			return le
		}
	}
	return math.Inf(1)
}

// TestMetricsReconcile is the observability acceptance gate: it drives
// real jobs through the HTTP API, measuring each one's duration from the
// client side, then scrapes /metrics and checks that the server's
// telemetry tells the same story — every family present and typed, job
// counts exact, and the run-duration histogram's p99 within the bound
// the client observed.
func TestMetricsReconcile(t *testing.T) {
	const n = 3
	_, ts := newTestServer(t, jobs.Config{Workers: 2})

	var clientDurations []time.Duration
	for i := 0; i < n; i++ {
		begin := time.Now()
		st := submitJob(t, ts, "acme", jobRequest{
			Scenario: "Q1", Switches: testScale.Switches, Flows: testScale.Flows,
		})
		final := waitJob(t, ts, st.ID)
		clientDurations = append(clientDurations, time.Since(begin))
		if final.State != "succeeded" {
			t.Fatalf("job %d ended %s (%s)", i, final.State, final.Error)
		}
	}

	sc := scrapeMetrics(t, ts.URL)

	// Every layer's families must be present and correctly typed, even
	// the ones with no samples yet (tracestore gauges before any ingest).
	wantTypes := map[string]string{
		"jobs_queue_depth":                   "gauge",
		"jobs_tenant_queued":                 "gauge",
		"jobs_tenant_running":                "gauge",
		"jobs_queue_wait_seconds":            "histogram",
		"jobs_run_duration_seconds":          "histogram",
		"jobs_total":                         "counter",
		"jobs_quota_rejections_total":        "counter",
		"http_requests_total":                "counter",
		"http_request_duration_seconds":      "histogram",
		"session_span_duration_seconds":      "histogram",
		"session_events_total":               "counter",
		"session_suggestions_total":          "counter",
		"ndlog_engine_ops_total":             "counter",
		"ndlog_delta_inserts_total":          "counter",
		"ndlog_delta_retractions_total":      "counter",
		"ndlog_delta_recounted_tuples_total": "counter",
		"ndlog_delta_group_joins_total":      "counter",
		"tracestore_entries":                 "gauge",
		"tracestore_bytes":                   "gauge",
		"tracestore_segments":                "gauge",
		"tracestore_rotations":               "gauge",
	}
	for name, typ := range wantTypes {
		if got := sc.Types[name]; got != typ {
			t.Errorf("family %s: TYPE %q, want %q", name, got, typ)
		}
	}

	// Job accounting: exactly n runs, all succeeded, none left queued.
	succeeded := map[string]string{"state": "succeeded"}
	if got, ok := sc.Value("jobs_run_duration_seconds_count", succeeded); !ok || got != n {
		t.Errorf("jobs_run_duration_seconds_count{state=succeeded} = %v (present %v), want %d", got, ok, n)
	}
	if got, _ := sc.Value("jobs_total", succeeded); got != n {
		t.Errorf("jobs_total{state=succeeded} = %v, want %d", got, n)
	}
	if got, _ := sc.Value("jobs_queue_depth", nil); got != 0 {
		t.Errorf("jobs_queue_depth = %v after all jobs finished, want 0", got)
	}
	if got, _ := sc.Value("jobs_tenant_running", map[string]string{"tenant": "acme"}); got != 0 {
		t.Errorf("jobs_tenant_running{tenant=acme} = %v after all jobs finished, want 0", got)
	}

	// Duration reconciliation. The client clock starts before submit and
	// stops after the final poll, so it strictly contains the server-side
	// run: the histogram's sum must not exceed the client total, and its
	// p99 must sit at or below the bucket ceiling of the slowest
	// client-observed job (interpolation never escapes the bucket that
	// holds the true maximum).
	var clientTotal, clientMax float64
	for _, d := range clientDurations {
		s := d.Seconds()
		clientTotal += s
		if s > clientMax {
			clientMax = s
		}
	}
	if sum, ok := sc.Value("jobs_run_duration_seconds_sum", succeeded); !ok || sum <= 0 || sum > clientTotal {
		t.Errorf("jobs_run_duration_seconds_sum = %v, want in (0, %v]", sum, clientTotal)
	}
	p99, ok := sc.HistogramQuantile("jobs_run_duration_seconds", succeeded, 0.99)
	if !ok {
		t.Fatal("jobs_run_duration_seconds has no buckets")
	}
	if bound := bucketCeil(clientMax); p99 > bound {
		t.Errorf("server p99 %v exceeds client-derived bound %v (client max %v)", p99, bound, clientMax)
	}

	// HTTP layer: n submissions on the jobs route, all 201, and the
	// route's latency histogram saw the same n requests.
	submitRoute := map[string]string{"route": "POST /v1/tenants/{tenant}/jobs", "code": "201"}
	if got, _ := sc.Value("http_requests_total", submitRoute); got != n {
		t.Errorf("http_requests_total{submit,201} = %v, want %d", got, n)
	}
	if got, _ := sc.Value("http_request_duration_seconds_count",
		map[string]string{"route": "POST /v1/tenants/{tenant}/jobs"}); got != n {
		t.Errorf("http_request_duration_seconds_count{submit} = %v, want %d", got, n)
	}

	// Session spans: each job contributes exactly one run/explore/
	// backtest/verdict span, and at least one batch.
	for _, span := range []string{"run", "explore", "backtest", "verdict"} {
		got, _ := sc.Value("session_span_duration_seconds_count", map[string]string{"span": span})
		if got != n {
			t.Errorf("session_span_duration_seconds_count{span=%s} = %v, want %d", span, got, n)
		}
	}
	if got, _ := sc.Value("session_span_duration_seconds_count", map[string]string{"span": "batch"}); got < n {
		t.Errorf("session_span_duration_seconds_count{span=batch} = %v, want >= %d", got, n)
	}

	// Engine counters: a completed repair cannot have done zero NDlog
	// work, and suggestion verdicts flow through the session sink.
	if got, _ := sc.Value("ndlog_engine_ops_total", map[string]string{"op": "firings"}); got <= 0 {
		t.Errorf("ndlog_engine_ops_total{op=firings} = %v, want > 0", got)
	}
	// Jobs default to delta evaluation, so the shared backtest runs must
	// have performed grouped joins.
	if got, _ := sc.Value("ndlog_delta_group_joins_total", nil); got <= 0 {
		t.Errorf("ndlog_delta_group_joins_total = %v, want > 0", got)
	}
	if got := sc.Sum("session_suggestions_total", nil); got <= 0 {
		t.Errorf("session_suggestions_total sums to %v, want > 0", got)
	}

	// The scrape itself bumps no counters before it is served, but a
	// second scrape must observe the first on the (uninstrumented-free)
	// route table: /metrics is intentionally not self-instrumented, so
	// http_requests_total must carry no metrics route.
	if got := sc.Sum("http_requests_total", map[string]string{"route": "GET /metrics"}); got != 0 {
		t.Errorf("/metrics is self-instrumented (%v requests recorded); want uninstrumented", got)
	}
}

// TestMetricsStoreFamilies checks the trace-store gauges appear after an
// ingest with real values matching the ingest response.
func TestMetricsStoreFamilies(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	spec := scenarios.Q1Spec().MustInstantiate(testScale)

	var stream []byte
	var err error
	for _, e := range spec.Workload {
		if stream, err = tracestore.Binary.AppendRecord(stream, e); err != nil {
			t.Fatalf("encoding workload: %v", err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/acme/traces/t0?format=binary",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	sc := scrapeMetrics(t, ts.URL)
	lbl := map[string]string{"tenant": "acme", "trace": "t0"}
	if got, ok := sc.Value("tracestore_entries", lbl); !ok || got != float64(len(spec.Workload)) {
		t.Errorf("tracestore_entries{acme,t0} = %v (present %v), want %d", got, ok, len(spec.Workload))
	}
	if got, _ := sc.Value("tracestore_bytes", lbl); got <= 0 {
		t.Errorf("tracestore_bytes{acme,t0} = %v, want > 0", got)
	}
	if got, _ := sc.Value("tracestore_segments", lbl); got < 1 {
		t.Errorf("tracestore_segments{acme,t0} = %v, want >= 1", got)
	}
	if got, ok := sc.Value("tracestore_rotations", lbl); !ok || got < 0 {
		t.Errorf("tracestore_rotations{acme,t0} = %v (present %v), want >= 0", got, ok)
	}
}
