package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

// sseBuffer bounds each SSE subscriber's pending-event backlog. A client
// that reads slower than the pipeline emits loses its oldest pending
// events (drop-oldest, counted) instead of stalling the repair session.
const sseBuffer = 1024

// jobEnv is the daemon's per-job attachment, carried in the engine
// record's Meta: the live event log and the request that created the
// job. It is evicted together with the job record.
type jobEnv struct {
	log *eventLog
	req jobRequest
}

// server is the repair-as-a-service HTTP surface: it owns a tenants
// trace-store tree, a scenario registry, and the bounded job engine, and
// maps the REST surface onto them.
type server struct {
	registry *scenario.Registry
	tenants  *tracestore.Tenants
	engine   *jobs.Engine
	mux      *http.ServeMux
	metrics  *daemonMetrics
	// draining closes when shutdown starts, ending live SSE streams that
	// would otherwise hold Shutdown open forever.
	draining chan struct{}

	// watches holds the registered self-healing loops (see watch.go).
	watchMu  sync.Mutex
	watches  map[string]*watchRecord
	watchSeq int
}

// newServer wires the daemon: the engine's transition observer feeds
// every state change into the job's event log (closing the log on a
// terminal transition is what ends that job's SSE streams) and, chained
// behind it, the jobs metrics recorder. Every API route is instrumented
// with per-route request/latency metrics, and the whole registry is
// exposed at GET /metrics. enablePprof additionally mounts
// net/http/pprof under /debug/pprof/.
func newServer(registry *scenario.Registry, tenants *tracestore.Tenants, cfg jobs.Config, enablePprof bool) *server {
	s := &server{
		registry: registry,
		tenants:  tenants,
		mux:      http.NewServeMux(),
		metrics:  newDaemonMetrics(),
		draining: make(chan struct{}),
		watches:  make(map[string]*watchRecord),
	}
	cfg.OnTransition = func(j jobs.Job) {
		env, ok := j.Meta.(*jobEnv)
		if !ok {
			return
		}
		env.log.emitLifecycle("job."+j.State.String(), j.ID)
		if j.State.Terminal() {
			env.log.close()
		}
	}
	s.engine = jobs.New(s.metrics.jobs.Instrument(cfg))

	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.metrics.instrument(pattern, h))
	}
	handle("POST /v1/tenants/{tenant}/traces/{name}", s.handleIngest)
	handle("GET /v1/tenants/{tenant}/traces", s.handleListTraces)
	handle("POST /v1/tenants/{tenant}/jobs", s.handleSubmitJob)
	handle("GET /v1/tenants/{tenant}/jobs", s.handleListJobs)
	handle("GET /v1/jobs/{id}", s.handleGetJob)
	handle("DELETE /v1/jobs/{id}", s.handleCancelJob)
	handle("GET /v1/jobs/{id}/events", s.handleJobEvents)
	handle("POST /v1/tenants/{tenant}/watches", s.handleCreateWatch)
	handle("GET /v1/tenants/{tenant}/watches", s.handleListWatches)
	handle("GET /v1/watches/{id}", s.handleGetWatch)
	handle("DELETE /v1/watches/{id}", s.handleStopWatch)
	handle("GET /v1/watches/{id}/events", s.handleWatchEvents)
	handle("GET /scenarios", s.handleScenarios)
	handle("GET /healthz", s.handleHealthz)
	metricsHandler := s.metrics.reg.Handler()
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Fan-out gauges are sampled, not event-driven: refresh them at
		// exposition so a scrape sees current SSE backpressure.
		s.metrics.sessions.RefreshFanouts()
		metricsHandler.ServeHTTP(w, r)
	})
	if enablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// shutdown drains the daemon: watches stop first (so nothing submits
// new repairs mid-drain), live SSE streams end, the engine finishes
// (or, past the deadline, cancels) its jobs, and the trace stores close.
func (s *server) shutdown(ctx context.Context) error {
	close(s.draining)
	s.stopWatches(ctx)
	err := s.engine.Drain(ctx)
	if cerr := s.tenants.CloseAll(); err == nil {
		err = cerr
	}
	return err
}

// handleIngest appends a stream of codec records (the request body) to
// the tenant's named trace store, creating it on first ingest. The
// ?format= query selects the record codec (binary, the paper's 120-byte
// format, is the default).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	codec, err := tracestore.CodecByName(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := s.tenants.Open(tenant, name)
	if errors.Is(err, tracestore.ErrBadName) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening store: %v", err)
		return
	}
	br := bufio.NewReader(r.Body)
	batch := make([]trace.Entry, 0, 1024)
	ingested := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := st.Append(batch...); err != nil {
			return err
		}
		ingested += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		e, err := codec.ReadRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// The decoded prefix is already durable; the error names the
			// first bad record so the client can resume past it.
			flush()
			writeError(w, http.StatusBadRequest, "record %d: %v", ingested+len(batch), err)
			return
		}
		batch = append(batch, e)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				writeError(w, http.StatusInternalServerError, "append: %v", err)
				return
			}
		}
	}
	if err := flush(); err != nil {
		writeError(w, http.StatusInternalServerError, "append: %v", err)
		return
	}
	if err := st.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, "sync: %v", err)
		return
	}
	stats := st.Stats()
	s.metrics.recordStore(tenant, name, stats)
	writeJSON(w, http.StatusOK, ingestResponse{
		Tenant: tenant, Trace: name, Ingested: ingested,
		Entries: stats.Entries, Bytes: stats.Bytes, Segments: stats.Segments,
	})
}

func (s *server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	names, err := s.tenants.List(r.PathValue("tenant"))
	if errors.Is(err, tracestore.ErrBadName) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"traces": names})
}

// handleSubmitJob validates a repair request — registered scenario,
// existing trace, well-formed knobs — and queues it on the engine. The
// expensive work (instantiating the scenario, running the pipeline) all
// happens on the worker, under the job's own context.
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !tracestore.ValidName(tenant) {
		writeError(w, http.StatusBadRequest, "invalid tenant %q", tenant)
		return
	}
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	spec, err := s.registry.Lookup(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var source trace.Source
	var store *tracestore.Store
	if req.Trace != "" {
		st, err := s.tenants.Lookup(tenant, req.Trace)
		if errors.Is(err, tracestore.ErrBadName) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if st == nil {
			writeError(w, http.StatusNotFound, "tenant %s has no trace %q", tenant, req.Trace)
			return
		}
		store = st
		view := st.Source()
		if req.From != nil || req.To != nil {
			from, to := int64(math.MinInt64), int64(math.MaxInt64)
			if req.From != nil {
				from = *req.From
			}
			if req.To != nil {
				to = *req.To
			}
			view = view.Window(from, to)
		}
		source = view
	}
	scale := req.scale()
	label := req.Label
	if label == "" {
		label = fmt.Sprintf("%s@%s", spec.Name, scale)
	}
	env := &jobEnv{log: newEventLog(), req: req}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	fn := func(ctx context.Context) (any, error) {
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		sc, err := spec.Instantiate(scale)
		if err != nil {
			return nil, err
		}
		if source != nil {
			sc.Source = source
		}
		sink := teeSink{a: env.log, b: s.metrics.sessions}
		out, err := sc.Run(ctx, append(opts, metarepair.WithEventSink(sink))...)
		if err != nil {
			return nil, err
		}
		// Sample the job's NDlog engine work — the session engine's
		// counters plus the shared backtest runs' delta-evaluation work —
		// and, when it replayed from a stored trace, the store's current
		// shape into the registry.
		s.metrics.recordEngine(out.Session.EngineStats())
		s.metrics.recordDelta(out.Report.Engine)
		if store != nil {
			s.metrics.recordStore(tenant, req.Trace, store.Stats())
		}
		return reportFromOutcome(out), nil
	}
	j, err := s.engine.Submit(tenant, label, env, fn)
	var quota *jobs.QuotaError
	switch {
	case errors.As(err, &quota):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, statusFromJob(j))
}

func (s *server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	list := s.engine.List(r.PathValue("tenant"))
	out := make([]jobStatus, 0, len(list))
	for _, j := range list {
		out = append(out, statusFromJob(j))
	}
	writeJSON(w, http.StatusOK, map[string][]jobStatus{"jobs": out})
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Get(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, statusFromJob(j))
}

func (s *server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, statusFromJob(j))
}

// handleJobEvents streams the job's events as SSE: the recorded history
// first, then the live tail, ending when the job reaches a terminal
// state (or the client disconnects, or the daemon drains). Events are
// encoded with Event.AppendJSON into one reused buffer, so a long
// stream does not allocate per event.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.engine.Get(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	env, ok := j.Meta.(*jobEnv)
	if !ok {
		writeError(w, http.StatusInternalServerError, "job has no event log")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	history, sub := env.log.subscribe(sseBuffer)
	defer sub.Cancel()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.draining:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var buf []byte
	write := func(e metarepair.Event) bool {
		buf = append(buf[:0], "data: "...)
		buf = e.AppendJSON(buf)
		buf = append(buf, '\n', '\n')
		if _, err := w.Write(buf); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range history {
		if !write(e) {
			return
		}
	}
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			return
		}
		if !write(e) {
			return
		}
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "workers": st.Workers,
		"queued": st.Queued, "running": st.Running,
		"succeeded": st.Succeeded, "failed": st.Failed, "cancelled": st.Cancelled,
	})
}
