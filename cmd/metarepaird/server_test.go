package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/scenarios"
	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

// testScale keeps API-test repairs fast: Q1 at 19 switches and a small
// flow count still generates and backtests the full candidate set.
var testScale = scenario.Scale{Switches: 19, Flows: 200}

// newTestServer builds a daemon around a fresh registry (Q1 plus a
// slow-running clone for cancellation tests) and a temp data dir.
func newTestServer(t *testing.T, cfg jobs.Config) (*server, *httptest.Server) {
	t.Helper()
	reg := scenario.NewRegistry()
	reg.MustRegister(scenarios.Q1Spec())
	slow := scenarios.Q1Spec()
	slow.Name = "Q1slow"
	reg.MustRegister(slow)

	tenants, err := tracestore.OpenTenants(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	srv := newServer(reg, tenants, cfg, false)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.engine.Close()
		tenants.CloseAll()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func submitJob(t *testing.T, ts *httptest.Server, tenant string, req jobRequest) jobStatus {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/tenants/"+tenant+"/jobs", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit: decoding: %v", err)
	}
	return st
}

// waitJob polls the status endpoint until the job leaves the live states.
func waitJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st jobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State != "queued" && st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle walks the happy path: submit → queued/running →
// succeeded with a full report whose accepted repair is the scenario's
// intuitive fix, visible in the tenant's job list.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 2})
	st := submitJob(t, ts, "acme", jobRequest{
		Scenario: "Q1", Switches: testScale.Switches, Flows: testScale.Flows,
	})
	if st.State != "queued" || st.ID == "" || st.Tenant != "acme" {
		t.Fatalf("submit response: %+v", st)
	}
	if st.Label != fmt.Sprintf("Q1@%s", testScale) {
		t.Fatalf("default label = %q", st.Label)
	}
	final := waitJob(t, ts, st.ID)
	if final.State != "succeeded" {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	rep := final.Report
	if rep == nil {
		t.Fatal("succeeded job has no report")
	}
	if rep.Accepted == 0 || len(rep.Suggestions) == 0 || len(rep.Results) == 0 {
		t.Fatalf("report is empty: %+v", rep)
	}
	if !rep.Suggestions[0].Accepted {
		t.Fatalf("ranking violated: first suggestion rejected: %+v", rep.Suggestions[0])
	}
	fix := scenarios.Q1Spec().IntuitiveFix
	found := false
	for _, r := range rep.Results {
		if r.Accepted && strings.Contains(r.Desc, fix) {
			found = true
		}
	}
	if !found {
		t.Fatalf("intuitive fix %q not among accepted results", fix)
	}
	var list struct{ Jobs []jobStatus }
	getJSON(t, ts.URL+"/v1/tenants/acme/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("tenant job list: %+v", list.Jobs)
	}
}

// TestVerdictParityAcrossTenants is the acceptance criterion: 16
// concurrent repair jobs across 4 tenants, every report verdict-identical
// to a one-shot in-process run of the same scenario at the same scale.
func TestVerdictParityAcrossTenants(t *testing.T) {
	sc := scenarios.Q1Spec().MustInstantiate(scenario.Scale{Switches: 19, Flows: 150})
	out, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
	want := reportFromOutcome(out)

	_, ts := newTestServer(t, jobs.Config{Workers: 4, QueueCap: 64, TenantQueueCap: 8})
	var ids []string
	for i := 0; i < 16; i++ {
		st := submitJob(t, ts, fmt.Sprintf("tenant%d", i%4), jobRequest{
			Scenario: "Q1", Switches: 19, Flows: 150,
		})
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		final := waitJob(t, ts, id)
		if final.State != "succeeded" {
			t.Fatalf("job %s ended %s (%s)", id, final.State, final.Error)
		}
		got := final.Report
		if got.Generated != want.Generated || got.Accepted != want.Accepted {
			t.Fatalf("job %s: %d/%d generated/accepted, want %d/%d",
				id, got.Generated, got.Accepted, want.Generated, want.Accepted)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("job %s: %d results, want %d", id, len(got.Results), len(want.Results))
		}
		for i := range got.Results {
			g, w := got.Results[i], want.Results[i]
			if g.Desc != w.Desc || g.Accepted != w.Accepted || g.KS != w.KS {
				t.Fatalf("job %s: result %d diverges:\n  got  %+v\n  want %+v", id, i, g, w)
			}
		}
	}
}

// TestCancelJob cancels a long-running repair over HTTP and expects the
// record to land in cancelled (not failed), with the SSE stream ending.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	st := submitJob(t, ts, "acme", jobRequest{Scenario: "Q1slow", Switches: 19, Flows: 4000})
	// Wait for the job to start running before cancelling.
	deadline := time.Now().Add(time.Minute)
	for {
		var cur jobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		if cur.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	final := waitJob(t, ts, st.ID)
	if final.State != "cancelled" {
		t.Fatalf("cancelled job ended %s (%s)", final.State, final.Error)
	}
	if final.Report != nil {
		t.Fatal("cancelled job carries a report")
	}
}

// TestQuotaRejection: with one worker and a per-tenant queue cap of 1,
// the third submission is rejected 429 — while another tenant still gets
// in.
func TestQuotaRejection(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1, QueueCap: 8, TenantQueueCap: 1})
	running := submitJob(t, ts, "acme", jobRequest{Scenario: "Q1slow", Switches: 19, Flows: 4000})
	queued := submitJob(t, ts, "acme", jobRequest{Scenario: "Q1", Switches: 19, Flows: 150})
	resp, body := postJSON(t, ts.URL+"/v1/tenants/acme/jobs",
		jobRequest{Scenario: "Q1", Switches: 19, Flows: 150})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("queue cap")) {
		t.Fatalf("429 body does not explain the quota: %s", body)
	}
	// Another tenant is not starved by acme's cap.
	other := submitJob(t, ts, "globex", jobRequest{Scenario: "Q1", Switches: 19, Flows: 150})
	for _, id := range []string{running.ID, queued.ID, other.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestNotFoundAndBadRequests covers the API's rejection surface.
func TestNotFoundAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job GET: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job DELETE: %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job events: %d", code)
	}

	resp2, body := postJSON(t, ts.URL+"/v1/tenants/acme/jobs", jobRequest{Scenario: "nope"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d", resp2.StatusCode)
	}
	if !bytes.Contains(body, []byte("registered:")) {
		t.Fatalf("unknown-scenario error lacks the menu: %s", body)
	}
	resp3, _ := postJSON(t, ts.URL+"/v1/tenants/acme/jobs",
		jobRequest{Scenario: "Q1", Pipeline: "bogus"})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pipeline: status %d", resp3.StatusCode)
	}
	resp4, _ := postJSON(t, ts.URL+"/v1/tenants/UPPER/jobs", jobRequest{Scenario: "Q1"})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant name: status %d", resp4.StatusCode)
	}
	resp5, body := postJSON(t, ts.URL+"/v1/tenants/acme/jobs",
		jobRequest{Scenario: "Q1", Trace: "missing"})
	if resp5.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace: status %d: %s", resp5.StatusCode, body)
	}
}

// TestIngestAndStoreBackedJob pushes a capture stream over HTTP, then
// runs a repair whose workload is replayed from the stored trace, and
// expects the same verdicts as the in-memory run.
func TestIngestAndStoreBackedJob(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 2})
	sc := scenarios.Q1Spec().MustInstantiate(testScale)

	var stream []byte
	var err error
	for _, e := range sc.Workload {
		if stream, err = tracestore.Binary.AppendRecord(stream, e); err != nil {
			t.Fatalf("encoding workload: %v", err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/acme/traces/q1cap?format=binary",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	var ing ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Ingested != len(sc.Workload) {
		t.Fatalf("ingest: status %d, %+v (want %d entries)", resp.StatusCode, ing, len(sc.Workload))
	}
	var traces struct{ Traces []string }
	getJSON(t, ts.URL+"/v1/tenants/acme/traces", &traces)
	if len(traces.Traces) != 1 || traces.Traces[0] != "q1cap" {
		t.Fatalf("trace list: %+v", traces.Traces)
	}

	out, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("in-memory run: %v", err)
	}
	want := reportFromOutcome(out)

	st := submitJob(t, ts, "acme", jobRequest{
		Scenario: "Q1", Switches: testScale.Switches, Flows: testScale.Flows, Trace: "q1cap",
	})
	final := waitJob(t, ts, st.ID)
	if final.State != "succeeded" {
		t.Fatalf("store-backed job ended %s (%s)", final.State, final.Error)
	}
	got := final.Report
	if len(got.Results) != len(want.Results) {
		t.Fatalf("store-backed run: %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i].Desc != want.Results[i].Desc ||
			got.Results[i].Accepted != want.Results[i].Accepted {
			t.Fatalf("store-backed verdict %d diverges: %+v vs %+v",
				i, got.Results[i], want.Results[i])
		}
	}
}

// readSSE consumes an SSE stream to EOF and decodes each data: line.
func readSSE(t *testing.T, url string) []metarepair.Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []metarepair.Event
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		line := scan.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e metarepair.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
			t.Fatalf("SSE event %q: %v", line, err)
		}
		events = append(events, e)
	}
	if err := scan.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	return events
}

// TestSSEMatchesSessionEvents runs one deterministic repair (barrier
// pipeline, single-threaded explore and backtest) while an SSE client is
// attached from submission, and requires the streamed pipeline events to
// equal the event sequence a one-shot in-process run emits through its
// own sink — plus the daemon's job.* lifecycle frames in state order.
func TestSSEMatchesSessionEvents(t *testing.T) {
	deterministic := jobRequest{
		Scenario: "Q1", Switches: testScale.Switches, Flows: testScale.Flows,
		Pipeline: "barrier", Parallelism: 1, ExploreWorkers: 1,
	}

	// One-shot baseline with an in-process sink and identical options.
	sc := scenarios.Q1Spec().MustInstantiate(testScale)
	var mu sync.Mutex
	var want []metarepair.Event
	_, err := sc.Run(context.Background(),
		metarepair.WithPipelineMode(metarepair.PipelineBarrier),
		metarepair.WithParallelism(1),
		metarepair.WithExploreWorkers(1),
		metarepair.WithEventSink(metarepair.SinkFunc(func(e metarepair.Event) {
			mu.Lock()
			want = append(want, e)
			mu.Unlock()
		})))
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}

	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	st := submitJob(t, ts, "acme", deterministic)
	streamed := readSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events")

	var lifecycle []string
	var got []metarepair.Event
	for _, e := range streamed {
		if strings.HasPrefix(e.Kind, "job.") {
			lifecycle = append(lifecycle, e.Kind)
			continue
		}
		got = append(got, e)
	}
	wantLifecycle := []string{"job.queued", "job.running", "job.succeeded"}
	if strings.Join(lifecycle, ",") != strings.Join(wantLifecycle, ",") {
		t.Fatalf("lifecycle frames %v, want %v", lifecycle, wantLifecycle)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d pipeline events, one-shot emitted %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// Wall-clock fields differ run to run; everything else must match.
		g.Time, w.Time = time.Time{}, time.Time{}
		g.Elapsed, w.Elapsed = 0, 0
		if g != w {
			t.Fatalf("event %d diverges:\n  SSE:      %+v\n  one-shot: %+v", i, g, w)
		}
	}
	// A late subscriber to the finished job replays the same history.
	replay := readSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(replay) != len(streamed) {
		t.Fatalf("replayed %d events, live stream had %d", len(replay), len(streamed))
	}
}

// TestDrainingRejectsSubmits: once shutdown starts, submissions get 503.
func TestDrainingRejectsSubmits(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/tenants/acme/jobs", jobRequest{Scenario: "Q1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d", resp.StatusCode)
	}
}

// TestHealthz sanity-checks the stats endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 3})
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthz: %+v", h)
	}
}
