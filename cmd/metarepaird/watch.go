package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

// watchRequest is the POST /v1/tenants/{tenant}/watches body: which
// trace to follow, which scenario's symptom to detect, the window
// shape, and the knobs auto-launched repairs run with.
type watchRequest struct {
	// Scenario names a registered spec whose symptom the watch detects;
	// Switches/Flows set the scale its topology and oracle resolve at.
	Scenario string `json:"scenario"`
	Switches int    `json:"switches,omitempty"`
	Flows    int    `json:"flows,omitempty"`
	// Trace names the tenant trace store to follow. It is created empty
	// if it does not exist yet, so a watch can be registered before the
	// first ingest.
	Trace string `json:"trace"`
	// Window is the sliding-window width in trace ticks (required); Hop
	// is the stride (0 = tumbling); Debounce suppresses re-detections
	// (0 = window width, negative = none); MinTriggers is the relevant-
	// packet threshold per window (0 = 1).
	Window      int64 `json:"window"`
	Hop         int64 `json:"hop,omitempty"`
	Debounce    int64 `json:"debounce,omitempty"`
	MinTriggers int64 `json:"min_triggers,omitempty"`
	// Lookback widens each repair's replay window by this many ticks
	// before the flagged window; absent or negative means back to the
	// stream's start.
	Lookback *int64 `json:"lookback,omitempty"`
	// MaxRepairs bounds concurrent auto-repairs (0 = 1). Detections
	// beyond it surface as watch.suppressed events.
	MaxRepairs int `json:"max_repairs,omitempty"`
	// ExploreWorkers, Batch, Parallelism, and MaxCandidates tune the
	// auto-launched repair sessions (zero keeps each default); the
	// pipeline mode is always first-accepted. RepairTimeoutMS bounds
	// each attempt's run time.
	ExploreWorkers  int   `json:"explore_workers,omitempty"`
	Batch           int   `json:"batch,omitempty"`
	Parallelism     int   `json:"parallelism,omitempty"`
	MaxCandidates   int   `json:"max_candidates,omitempty"`
	RepairTimeoutMS int64 `json:"repair_timeout_ms,omitempty"`
	// Label is free-form display text (default: the scenario name).
	Label string `json:"label,omitempty"`
}

// options translates the repair knobs into session options for the
// watch's auto-launched sessions.
func (r *watchRequest) options() ([]metarepair.Option, error) {
	var opts []metarepair.Option
	if r.ExploreWorkers > 0 {
		opts = append(opts, metarepair.WithExploreWorkers(r.ExploreWorkers))
	}
	if r.Batch > 0 {
		opts = append(opts, metarepair.WithBatchSize(r.Batch))
	}
	if r.Parallelism > 0 {
		opts = append(opts, metarepair.WithParallelism(r.Parallelism))
	}
	if r.MaxCandidates > 0 {
		opts = append(opts, metarepair.WithMaxCandidates(r.MaxCandidates))
	}
	if err := metarepair.ValidateOptions(opts...); err != nil {
		return nil, err
	}
	return opts, nil
}

func (r *watchRequest) scale() scenario.Scale {
	sc := scenario.DefaultScale()
	if r.Switches > 0 {
		sc.Switches = r.Switches
	}
	if r.Flows > 0 {
		sc.Flows = r.Flows
	}
	return sc
}

// watchRecord is one registered watch: the running loop, its SSE event
// log, and terminal bookkeeping.
type watchRecord struct {
	id       string
	tenant   string
	trace    string
	scenario string
	scale    string
	label    string
	created  time.Time
	log      *eventLog
	watcher  *metarepair.Watcher
	cancel   context.CancelFunc
	done     chan struct{}

	mu    sync.Mutex
	state string // "running" or "stopped"
	err   string
}

func (rec *watchRecord) status() watchStatus {
	rec.mu.Lock()
	state, errMsg := rec.state, rec.err
	rec.mu.Unlock()
	st := rec.watcher.Stats()
	return watchStatus{
		ID: rec.id, Tenant: rec.tenant, Trace: rec.trace,
		Scenario: rec.scenario, Scale: rec.scale, Label: rec.label,
		State: state, Created: rec.created, Error: errMsg,
		Stats: watchStatsJSON{
			Entries: st.Entries, Windows: st.Windows,
			Detections: st.Detections, Debounced: st.Debounced,
			SkippedSegments: st.SkippedSegments, Suppressed: st.Suppressed,
			Launched: st.Launched, Validated: st.Validated,
			Unvalidated: st.Unvalidated, Failed: st.Failed,
		},
	}
}

// watchStatus is the wire form of one watch (create, get, and list
// responses all use it).
type watchStatus struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	Trace    string         `json:"trace"`
	Scenario string         `json:"scenario"`
	Scale    string         `json:"scale"`
	Label    string         `json:"label,omitempty"`
	State    string         `json:"state"`
	Created  time.Time      `json:"created"`
	Error    string         `json:"error,omitempty"`
	Stats    watchStatsJSON `json:"stats"`
}

type watchStatsJSON struct {
	Entries         int64 `json:"entries"`
	Windows         int64 `json:"windows"`
	Detections      int64 `json:"detections"`
	Debounced       int64 `json:"debounced"`
	SkippedSegments int64 `json:"skipped_segments"`
	Suppressed      int64 `json:"suppressed"`
	Launched        int64 `json:"launched"`
	Validated       int64 `json:"validated"`
	Unvalidated     int64 `json:"unvalidated"`
	Failed          int64 `json:"failed"`
}

// handleCreateWatch registers and starts a self-healing watch: a live
// tail over the tenant's trace evaluating the scenario's symptom over
// sliding windows, auto-submitting a first-accepted repair job for each
// flagged window.
func (s *server) handleCreateWatch(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !tracestore.ValidName(tenant) {
		writeError(w, http.StatusBadRequest, "invalid tenant %q", tenant)
		return
	}
	var req watchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Trace == "" {
		writeError(w, http.StatusBadRequest, "watch needs a trace to follow")
		return
	}
	spec, err := s.registry.Lookup(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	scale := req.scale()
	sc, err := spec.Instantiate(scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := s.tenants.Open(tenant, req.Trace)
	if errors.Is(err, tracestore.ErrBadName) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening store: %v", err)
		return
	}

	lookback := int64(1) << 40 // further back than any realistic tick clock
	if req.Lookback != nil && *req.Lookback >= 0 {
		lookback = *req.Lookback
	}

	s.watchMu.Lock()
	s.watchSeq++
	id := fmt.Sprintf("w-%06d", s.watchSeq)
	s.watchMu.Unlock()

	rec := &watchRecord{
		id: id, tenant: tenant, trace: req.Trace,
		scenario: spec.Name, scale: scale.String(), label: req.Label,
		created: time.Now(), log: newEventLog(),
		done: make(chan struct{}), state: "running",
	}
	repairTimeout := time.Duration(req.RepairTimeoutMS) * time.Millisecond
	watcher, err := metarepair.NewWatcher(metarepair.WatchConfig{
		Label:         req.Label,
		Scenario:      spec.Name,
		Store:         st,
		Program:       sc.Prog,
		Symptom:       sc.Symptom(),
		BuildNet:      sc.BuildNet,
		State:         sc.State,
		Effective:     sc.Effective,
		MinTriggers:   req.MinTriggers,
		Window:        req.Window,
		Hop:           req.Hop,
		Debounce:      req.Debounce,
		Lookback:      lookback,
		MaxConcurrent: req.MaxRepairs,
		Sink:          rec.log,
		Metrics:       s.metrics.watches,
		Options:       append(sc.Options, opts...),
		Launch: func(d metarepair.Detection, run func(ctx context.Context) (*metarepair.Report, error)) error {
			label := fmt.Sprintf("auto-repair %s [%d, %d]", spec.Name, d.From, d.To)
			env := &jobEnv{log: newEventLog(), req: jobRequest{
				Scenario: req.Scenario, Switches: req.Switches, Flows: req.Flows,
				Trace: req.Trace, Pipeline: "first-accepted", Label: label,
			}}
			_, err := s.engine.Submit(tenant, label, env, func(ctx context.Context) (any, error) {
				if repairTimeout > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, repairTimeout)
					defer cancel()
				}
				rep, err := run(ctx)
				if err != nil {
					return nil, err
				}
				return reportFromRepair(spec.Name, scale, rep), nil
			})
			return err
		},
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec.watcher = watcher

	ctx, cancel := context.WithCancel(context.Background())
	rec.cancel = cancel
	s.watchMu.Lock()
	s.watches[id] = rec
	s.watchMu.Unlock()
	s.metrics.sessions.TrackFanout("watch:"+id, rec.log.fan)
	s.metrics.watches.Watches.Add(1)
	go func() {
		err := watcher.Run(ctx)
		rec.mu.Lock()
		rec.state = "stopped"
		if err != nil && !errors.Is(err, context.Canceled) {
			rec.err = err.Error()
		}
		rec.mu.Unlock()
		s.metrics.watches.Watches.Add(-1)
		rec.log.close()
		close(rec.done)
	}()
	writeJSON(w, http.StatusCreated, rec.status())
}

func (s *server) lookupWatch(id string) *watchRecord {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.watches[id]
}

func (s *server) handleListWatches(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	s.watchMu.Lock()
	recs := make([]*watchRecord, 0, len(s.watches))
	for _, rec := range s.watches {
		if rec.tenant == tenant {
			recs = append(recs, rec)
		}
	}
	s.watchMu.Unlock()
	out := make([]watchStatus, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec.status())
	}
	// Stable id order for a readable listing.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	writeJSON(w, http.StatusOK, map[string][]watchStatus{"watches": out})
}

func (s *server) handleGetWatch(w http.ResponseWriter, r *http.Request) {
	rec := s.lookupWatch(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such watch %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

// handleStopWatch cancels the watch loop. The record (and its event
// history) remains readable; repairs already submitted to the job
// engine finish on their own.
func (s *server) handleStopWatch(w http.ResponseWriter, r *http.Request) {
	rec := s.lookupWatch(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such watch %q", r.PathValue("id"))
		return
	}
	rec.cancel()
	<-rec.done
	s.metrics.sessions.UntrackFanout("watch:" + rec.id)
	writeJSON(w, http.StatusOK, rec.status())
}

// handleWatchEvents streams the watch's event log as SSE: recorded
// history first, then the live tail — detections, suppressions, and
// repair verdicts as they happen — until the watch stops, the client
// disconnects, or the daemon drains.
func (s *server) handleWatchEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.lookupWatch(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such watch %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	history, sub := rec.log.subscribe(sseBuffer)
	defer sub.Cancel()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.draining:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var buf []byte
	write := func(e metarepair.Event) bool {
		buf = append(buf[:0], "data: "...)
		buf = e.AppendJSON(buf)
		buf = append(buf, '\n', '\n')
		if _, err := w.Write(buf); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range history {
		if !write(e) {
			return
		}
	}
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			return
		}
		if !write(e) {
			return
		}
	}
}

// handleScenarios lists the registered scenario catalogue: the names a
// job or watch request may reference, with each spec's diagnostic query.
func (s *server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	specs := s.registry.Specs()
	type scenarioInfo struct {
		Name  string `json:"name"`
		Query string `json:"query,omitempty"`
	}
	out := make([]scenarioInfo, 0, len(specs))
	for _, sp := range specs {
		out = append(out, scenarioInfo{Name: sp.Name, Query: sp.Query})
	}
	writeJSON(w, http.StatusOK, map[string][]scenarioInfo{"scenarios": out})
}

// stopWatches cancels every running watch and waits (bounded by ctx)
// for their loops to unwind — shutdown runs this before draining the
// job engine so watches stop submitting new repairs first.
func (s *server) stopWatches(ctx context.Context) {
	s.watchMu.Lock()
	recs := make([]*watchRecord, 0, len(s.watches))
	for _, rec := range s.watches {
		recs = append(recs, rec)
	}
	s.watchMu.Unlock()
	for _, rec := range recs {
		rec.cancel()
	}
	for _, rec := range recs {
		select {
		case <-rec.done:
		case <-ctx.Done():
			return
		}
	}
}

// reportFromRepair is reportFromOutcome for a bare watch-launched
// repair report (no scenario Outcome wrapper).
func reportFromRepair(name string, scale scenario.Scale, rep *metarepair.Report) *reportJSON {
	r := &reportJSON{
		Scenario: name, Scale: scale.String(),
		Generated: rep.Generated, Filtered: rep.Filtered, Dropped: rep.Dropped,
		Accepted: rep.Accepted, Batches: rep.Batches, Steps: rep.Steps,
		EarlyStopped: rep.EarlyStopped, Evaluated: rep.Evaluated,
		Suggestions: make([]suggestionJSON, 0, len(rep.Suggestions)),
		Results:     make([]resultJSON, 0, len(rep.Results)),
		Timing: timingJSON{
			HistoryMS: float64(rep.Timing.HistoryLookups.Microseconds()) / 1e3,
			SolvingMS: float64(rep.Timing.ConstraintSolving.Microseconds()) / 1e3,
			PatchMS:   float64(rep.Timing.PatchGeneration.Microseconds()) / 1e3,
			ReplayMS:  float64(rep.Timing.Replay.Microseconds()) / 1e3,
			OverlapMS: float64(rep.Timing.Overlap.Microseconds()) / 1e3,
		},
	}
	for _, sg := range rep.Suggestions {
		r.Suggestions = append(r.Suggestions, suggestionJSON{
			Rank: sg.Rank, Index: sg.Index, Batch: sg.Batch,
			Desc: sg.Candidate.Describe(), Cost: sg.Candidate.Cost,
			Accepted: sg.Result.Accepted, KS: sg.Result.KS, P: sg.Result.P,
		})
	}
	for i, res := range rep.Results {
		r.Results = append(r.Results, resultJSON{
			Desc: res.Candidate.Describe(), Cost: res.Candidate.Cost,
			Accepted: res.Accepted, Effective: res.Effective, KS: res.KS,
			Evaluated: rep.IsEvaluated(i),
		})
	}
	return r
}
