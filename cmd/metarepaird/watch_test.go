package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/scenarios"
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// TestScenarioCatalogue checks GET /scenarios lists every registered
// spec with its diagnostic query — the names a watch or job may use.
func TestScenarioCatalogue(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 1})
	var cat struct {
		Scenarios []struct {
			Name  string `json:"name"`
			Query string `json:"query"`
		} `json:"scenarios"`
	}
	if code := getJSON(t, ts.URL+"/scenarios", &cat); code != http.StatusOK {
		t.Fatalf("GET /scenarios: status %d", code)
	}
	byName := map[string]string{}
	for _, sp := range cat.Scenarios {
		byName[sp.Name] = sp.Query
	}
	for _, want := range []string{"Q1", "Q1slow"} {
		q, ok := byName[want]
		if !ok {
			t.Fatalf("catalogue missing %s: %+v", want, byName)
		}
		if q == "" {
			t.Fatalf("catalogue entry %s has no query", want)
		}
	}
}

// TestWatchValidation walks the create-watch 400 paths: malformed
// bodies must be rejected at intake, before any loop starts.
func TestWatchValidation(t *testing.T) {
	srv, ts := newTestServer(t, jobs.Config{Workers: 1})
	cases := []struct {
		name   string
		tenant string
		body   any
	}{
		{"missing trace", "acme", watchRequest{Scenario: "Q1", Window: 64}},
		{"unknown scenario", "acme", watchRequest{Scenario: "Q9", Trace: "live", Window: 64}},
		{"bad window", "acme", watchRequest{Scenario: "Q1", Trace: "live", Window: 0}},
		{"bad trace name", "acme", watchRequest{Scenario: "Q1", Trace: "NOPE", Window: 64}},
		{"bad tenant", "UPPER", watchRequest{Scenario: "Q1", Trace: "live", Window: 64}},
		{"bad batch", "acme", watchRequest{Scenario: "Q1", Trace: "live", Window: 64, Batch: 9999}},
		{"unknown field", "acme", map[string]any{"scenario": "Q1", "trace": "live", "window": 64, "bogus": true}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/tenants/"+tc.tenant+"/watches", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, body)
		}
	}
	srv.watchMu.Lock()
	n := len(srv.watches)
	srv.watchMu.Unlock()
	if n != 0 {
		t.Fatalf("rejected requests left %d watch records", n)
	}
	if code := getJSON(t, ts.URL+"/v1/watches/w-000001", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown watch: status %d (want 404)", code)
	}
}

// ingestEntries posts a batch of entries to the tenant's named trace in
// the binary capture format.
func ingestEntries(t *testing.T, ts *httptest.Server, tenant, name string, entries []trace.Entry) {
	t.Helper()
	var stream []byte
	var err error
	for _, e := range entries {
		if stream, err = tracestore.Binary.AppendRecord(stream, e); err != nil {
			t.Fatalf("encoding entry: %v", err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/"+tenant+"/traces/"+name+"?format=binary",
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	defer resp.Body.Close()
	var ing ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	if resp.StatusCode != http.StatusOK || ing.Ingested != len(entries) {
		t.Fatalf("ingest: status %d, %+v (want %d entries)", resp.StatusCode, ing, len(entries))
	}
}

// TestWatchSelfHealsThroughDaemon is the daemon-side self-healing path:
// register a watch on a live trace, stream healthy traffic, inject the
// symptom mid-stream, and require the watch to detect it, auto-submit a
// first-accepted repair job, and report a validated patch — with the
// full story visible on the watch's SSE stream and in the job list.
func TestWatchSelfHealsThroughDaemon(t *testing.T) {
	_, ts := newTestServer(t, jobs.Config{Workers: 2})
	sc := scenarios.Q1Spec().MustInstantiate(testScale)

	// Arrival order: time-sorted, healthy traffic first, symptom traffic
	// last, restamped to a single tick clock — the fault appears
	// mid-stream the way a live capture would deliver it.
	trigger := sentinel.TriggerFromGoal(sc.Goal)
	if trigger == nil {
		t.Fatal("Q1 goal derives no trigger")
	}
	stream := append([]trace.Entry(nil), sc.Workload...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time < stream[j].Time })
	var healthy, faulty []trace.Entry
	for _, e := range stream {
		if trigger(e) {
			faulty = append(faulty, e)
		} else {
			healthy = append(healthy, e)
		}
	}
	ordered := append(healthy, faulty...)
	for i := range ordered {
		ordered[i].Time = int64(i + 1)
	}

	// Watch before first ingest: registration must create the store.
	resp, body := postJSON(t, ts.URL+"/v1/tenants/acme/watches", watchRequest{
		Scenario: "Q1", Switches: testScale.Switches, Flows: testScale.Flows,
		Trace: "live", Window: 64, MaxRepairs: 2, Label: "q1 self-heal",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create watch: status %d: %s", resp.StatusCode, body)
	}
	var st watchStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("create watch: decoding: %v", err)
	}
	if st.State != "running" || st.Tenant != "acme" || st.Trace != "live" {
		t.Fatalf("create watch: %+v", st)
	}
	var list struct {
		Watches []watchStatus `json:"watches"`
	}
	getJSON(t, ts.URL+"/v1/tenants/acme/watches", &list)
	if len(list.Watches) != 1 || list.Watches[0].ID != st.ID {
		t.Fatalf("watch list: %+v", list.Watches)
	}

	ingestEntries(t, ts, "acme", "live", ordered[:len(healthy)])
	ingestEntries(t, ts, "acme", "live", ordered[len(healthy):])

	// The watch should detect the symptom and drive a repair through the
	// job engine to a validated verdict.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if getJSON(t, ts.URL+"/v1/watches/"+st.ID, &st); st.Stats.Validated >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no validated repair: %+v", st.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Stats.Detections == 0 || st.Stats.Launched == 0 {
		t.Fatalf("stats inconsistent: %+v", st.Stats)
	}

	// The auto-repair ran as a tenant job with an accepted patch in its
	// report.
	var jl struct {
		Jobs []jobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/tenants/acme/jobs", &jl)
	var repairJob *jobStatus
	for i := range jl.Jobs {
		if strings.HasPrefix(jl.Jobs[i].Label, "auto-repair Q1") {
			repairJob = &jl.Jobs[i]
			break
		}
	}
	if repairJob == nil {
		t.Fatalf("no auto-repair job in list: %+v", jl.Jobs)
	}
	final := waitJob(t, ts, repairJob.ID)
	if final.State != "succeeded" {
		t.Fatalf("auto-repair job ended %s (%s)", final.State, final.Error)
	}
	if final.Report == nil || final.Report.Accepted == 0 {
		t.Fatalf("auto-repair report rejects every candidate: %+v", final.Report)
	}

	// Stop the watch; its record and event history stay readable.
	resp2, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/watches/"+st.ID, nil)
	if err != nil {
		t.Fatalf("DELETE request: %v", err)
	}
	dresp, err := http.DefaultClient.Do(resp2)
	if err != nil {
		t.Fatalf("DELETE watch: %v", err)
	}
	var stopped watchStatus
	if err := json.NewDecoder(dresp.Body).Decode(&stopped); err != nil {
		t.Fatalf("DELETE watch: decoding: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || stopped.State != "stopped" {
		t.Fatalf("DELETE watch: status %d, state %q", dresp.StatusCode, stopped.State)
	}
	if stopped.Stats.Entries != int64(len(ordered)) {
		t.Fatalf("watch consumed %d entries, want %d", stopped.Stats.Entries, len(ordered))
	}

	// The SSE stream replays the whole story: start, detection, repair
	// launch, and a validated verdict.
	events := readSSE(t, ts.URL+"/v1/watches/"+st.ID+"/events")
	kinds := map[string]bool{}
	validated := false
	for _, e := range events {
		kinds[e.Kind] = true
		if e.Kind == "watch.repair.done" && e.Accepted {
			validated = true
			if e.Elapsed <= 0 {
				t.Fatalf("repair.done without elapsed time: %+v", e)
			}
		}
	}
	for _, k := range []string{"watch.start", "watch.detect", "watch.repair.start", "watch.repair.done", "watch.stop"} {
		if !kinds[k] {
			t.Fatalf("SSE stream missing %s (have %v)", k, kinds)
		}
	}
	if !validated {
		t.Fatal("SSE stream has no accepted watch.repair.done")
	}
}
