// Command repairload is the concurrent load driver for metarepaird: it
// fires repair jobs at a running daemon from many submitters across many
// tenants, polls each job to completion, and reports throughput
// (jobs/sec) and the time-to-report distribution (p50/p99) — the
// saturation measurement recorded in EXPERIMENTS.md.
//
//	repairload -addr http://localhost:8080 -jobs 32 -tenants 4
//	           [-concurrency 8] [-scenario Q1] [-switches 19] [-flows 300]
//	           [-pipeline streaming] [-poll 25ms] [-metrics]
//
// The driver first checks /healthz: an unreachable or unhealthy daemon
// is a clear error and exit code 2, not a pile of per-job failures. A
// 429 (queue or tenant cap) is retried with backoff — saturating the
// queue is the point — and any job that ends failed, or a sweep where
// no job succeeds, makes the driver exit non-zero.
//
// -metrics scrapes the daemon's /metrics before and after the sweep and
// reconciles the delta against the client's own observations: the
// jobs_run_duration_seconds histogram must have recorded exactly this
// sweep's successes, and its p99 must fall within the bound implied by
// the slowest client-observed job. A mismatch is an exit-code-1 failure
// — it means the daemon's telemetry is lying about the work it did.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

type submitBody struct {
	Scenario string `json:"scenario"`
	Switches int    `json:"switches,omitempty"`
	Flows    int    `json:"flows,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
	Label    string `json:"label,omitempty"`
}

type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	jobsN := flag.Int("jobs", 32, "total jobs to run")
	tenants := flag.Int("tenants", 4, "spread jobs across this many tenants")
	concurrency := flag.Int("concurrency", 8, "concurrent submitters")
	scen := flag.String("scenario", "Q1", "scenario to submit")
	switches := flag.Int("switches", 19, "topology switch budget")
	flows := flag.Int("flows", 300, "workload flow count")
	pipeline := flag.String("pipeline", "streaming", "pipeline mode to request")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	metrics := flag.Bool("metrics", false,
		"scrape /metrics before and after the sweep and reconcile the server's telemetry with client observations")
	flag.Parse()

	// Fail fast with one clear message when the daemon isn't there,
	// instead of -jobs identical connection errors and a misleading
	// "N failed" summary.
	if err := preflight(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "repairload: daemon unreachable at %s: %v\n", *addr, err)
		os.Exit(2)
	}
	var before *obsv.Scrape
	if *metrics {
		var err error
		if before, err = scrape(*addr); err != nil {
			fmt.Fprintf(os.Stderr, "repairload: baseline /metrics scrape: %v\n", err)
			os.Exit(2)
		}
	}

	durations := make([]time.Duration, *jobsN)
	var failed atomic.Int32
	var next atomic.Int32
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *jobsN {
					return
				}
				tenant := fmt.Sprintf("load%d", i%*tenants)
				d, err := runOne(*addr, tenant, submitBody{
					Scenario: *scen, Switches: *switches, Flows: *flows,
					Pipeline: *pipeline, Label: fmt.Sprintf("load-%d", i),
				}, *poll)
				if err != nil {
					fmt.Fprintf(os.Stderr, "job %d (%s): %v\n", i, tenant, err)
					failed.Add(1)
					continue
				}
				durations[i] = d
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	ok := make([]time.Duration, 0, *jobsN)
	for _, d := range durations {
		if d > 0 {
			ok = append(ok, d)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	fmt.Printf("%d job(s) across %d tenant(s), %d submitter(s): %d ok, %d failed in %v\n",
		*jobsN, *tenants, *concurrency, len(ok), failed.Load(), wall.Round(time.Millisecond))
	if len(ok) > 0 {
		fmt.Printf("throughput: %.2f jobs/sec\n", float64(len(ok))/wall.Seconds())
		fmt.Printf("time-to-report: p50 %v, p99 %v, max %v\n",
			percentile(ok, 50).Round(time.Millisecond),
			percentile(ok, 99).Round(time.Millisecond),
			ok[len(ok)-1].Round(time.Millisecond))
	}
	if len(ok) == 0 {
		fmt.Fprintln(os.Stderr, "repairload: no job succeeded")
		os.Exit(1)
	}

	if *metrics {
		after, err := scrape(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repairload: final /metrics scrape: %v\n", err)
			os.Exit(1)
		}
		if err := reconcile(before, after, ok); err != nil {
			fmt.Fprintf(os.Stderr, "repairload: metrics reconciliation FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("metrics reconciliation: server histogram matches client observations")
	}

	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// preflight checks the daemon is up and answering before the sweep.
func preflight(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz returned status %d", resp.StatusCode)
	}
	return nil
}

// scrape GETs and parses the daemon's /metrics exposition.
func scrape(addr string) (*obsv.Scrape, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned status %d", resp.StatusCode)
	}
	return obsv.ParseText(resp.Body)
}

// reconcile checks the server-side run-duration histogram grew by
// exactly this sweep's successes, and that its p99 sits within the bound
// the client observed. Counters are cumulative, so the sweep's share is
// the delta between the two scrapes — a daemon that served earlier work
// reconciles the same as a fresh one.
func reconcile(before, after *obsv.Scrape, ok []time.Duration) error {
	succeeded := map[string]string{"state": "succeeded"}
	prev, _ := before.Value("jobs_run_duration_seconds_count", succeeded)
	cur, found := after.Value("jobs_run_duration_seconds_count", succeeded)
	if !found {
		return fmt.Errorf("jobs_run_duration_seconds{state=\"succeeded\"} is missing")
	}
	if int(cur-prev) != len(ok) {
		return fmt.Errorf("server recorded %d successful runs, client observed %d",
			int(cur-prev), len(ok))
	}

	// The client clock wraps the server's (submit → final poll contains
	// queue wait + run), so every server observation is at most the
	// slowest client duration; the delta histogram's p99 therefore cannot
	// legitimately escape the bucket that holds the client maximum.
	delta := &obsv.Scrape{Types: after.Types}
	for _, s := range after.Samples {
		if s.Name != "jobs_run_duration_seconds_bucket" || s.Labels["state"] != "succeeded" {
			continue
		}
		p, _ := before.Value(s.Name, s.Labels)
		delta.Samples = append(delta.Samples, obsv.Sample{
			Name: s.Name, Labels: s.Labels, Value: s.Value - p,
		})
	}
	p99, found := delta.HistogramQuantile("jobs_run_duration_seconds", succeeded, 0.99)
	if !found {
		return fmt.Errorf("jobs_run_duration_seconds has no buckets")
	}
	clientMax := ok[len(ok)-1].Seconds()
	bound := bucketCeil(clientMax)
	if p99 > bound {
		return fmt.Errorf("server p99 %.3fs exceeds the client-derived bound %.3fs (client max %.3fs)",
			p99, bound, clientMax)
	}
	fmt.Printf("server-side run durations: %d recorded, p50 %.3fs, p99 %.3fs (client max %.3fs)\n",
		len(ok), quantileOrNaN(delta, succeeded, 0.50), p99, clientMax)
	return nil
}

func quantileOrNaN(sc *obsv.Scrape, labels map[string]string, q float64) float64 {
	v, ok := sc.HistogramQuantile("jobs_run_duration_seconds", labels, q)
	if !ok {
		return math.NaN()
	}
	return v
}

// bucketCeil returns the smallest latency-bucket upper bound at or above
// v — the tightest claim the histogram can make about an observation.
func bucketCeil(v float64) float64 {
	for _, le := range obsv.BucketsLatency {
		if le >= v {
			return le
		}
	}
	return math.Inf(1)
}

// runOne submits a job (retrying 429s with backoff) and polls it to a
// terminal state, returning submit-to-report latency.
func runOne(addr, tenant string, body submitBody, poll time.Duration) (time.Duration, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var job jobView
	backoff := 50 * time.Millisecond
	for {
		resp, err := http.Post(addr+"/v1/tenants/"+tenant+"/jobs", "application/json",
			bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return 0, fmt.Errorf("submit: status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &job); err != nil {
			return 0, fmt.Errorf("submit: decoding: %w", err)
		}
		break
	}
	for {
		resp, err := http.Get(addr + "/v1/jobs/" + job.ID)
		if err != nil {
			return 0, err
		}
		var cur jobView
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("poll: %w", err)
		}
		switch cur.State {
		case "succeeded":
			return time.Since(start), nil
		case "failed", "cancelled":
			return 0, fmt.Errorf("job %s ended %s: %s", job.ID, cur.State, cur.Error)
		}
		time.Sleep(poll)
	}
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
