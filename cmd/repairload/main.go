// Command repairload is the concurrent load driver for metarepaird: it
// fires repair jobs at a running daemon from many submitters across many
// tenants, polls each job to completion, and reports throughput
// (jobs/sec) and the time-to-report distribution (p50/p99) — the
// saturation measurement recorded in EXPERIMENTS.md.
//
//	repairload -addr http://localhost:8080 -jobs 32 -tenants 4
//	           [-concurrency 8] [-scenario Q1] [-switches 19] [-flows 300]
//	           [-pipeline streaming] [-poll 25ms]
//
// A 429 (queue or tenant cap) is retried with backoff — saturating the
// queue is the point — and any job that ends failed makes the driver
// exit non-zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type submitBody struct {
	Scenario string `json:"scenario"`
	Switches int    `json:"switches,omitempty"`
	Flows    int    `json:"flows,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
	Label    string `json:"label,omitempty"`
}

type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	jobsN := flag.Int("jobs", 32, "total jobs to run")
	tenants := flag.Int("tenants", 4, "spread jobs across this many tenants")
	concurrency := flag.Int("concurrency", 8, "concurrent submitters")
	scen := flag.String("scenario", "Q1", "scenario to submit")
	switches := flag.Int("switches", 19, "topology switch budget")
	flows := flag.Int("flows", 300, "workload flow count")
	pipeline := flag.String("pipeline", "streaming", "pipeline mode to request")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	flag.Parse()

	durations := make([]time.Duration, *jobsN)
	var failed atomic.Int32
	var next atomic.Int32
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *jobsN {
					return
				}
				tenant := fmt.Sprintf("load%d", i%*tenants)
				d, err := runOne(*addr, tenant, submitBody{
					Scenario: *scen, Switches: *switches, Flows: *flows,
					Pipeline: *pipeline, Label: fmt.Sprintf("load-%d", i),
				}, *poll)
				if err != nil {
					fmt.Fprintf(os.Stderr, "job %d (%s): %v\n", i, tenant, err)
					failed.Add(1)
					continue
				}
				durations[i] = d
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	ok := make([]time.Duration, 0, *jobsN)
	for _, d := range durations {
		if d > 0 {
			ok = append(ok, d)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	fmt.Printf("%d job(s) across %d tenant(s), %d submitter(s): %d ok, %d failed in %v\n",
		*jobsN, *tenants, *concurrency, len(ok), failed.Load(), wall.Round(time.Millisecond))
	if len(ok) > 0 {
		fmt.Printf("throughput: %.2f jobs/sec\n", float64(len(ok))/wall.Seconds())
		fmt.Printf("time-to-report: p50 %v, p99 %v, max %v\n",
			percentile(ok, 50).Round(time.Millisecond),
			percentile(ok, 99).Round(time.Millisecond),
			ok[len(ok)-1].Round(time.Millisecond))
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// runOne submits a job (retrying 429s with backoff) and polls it to a
// terminal state, returning submit-to-report latency.
func runOne(addr, tenant string, body submitBody, poll time.Duration) (time.Duration, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var job jobView
	backoff := 50 * time.Millisecond
	for {
		resp, err := http.Post(addr+"/v1/tenants/"+tenant+"/jobs", "application/json",
			bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return 0, fmt.Errorf("submit: status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &job); err != nil {
			return 0, fmt.Errorf("submit: decoding: %w", err)
		}
		break
	}
	for {
		resp, err := http.Get(addr + "/v1/jobs/" + job.ID)
		if err != nil {
			return 0, err
		}
		var cur jobView
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("poll: %w", err)
		}
		switch cur.State {
		case "succeeded":
			return time.Since(start), nil
		case "failed", "cancelled":
			return 0, fmt.Errorf("job %s ended %s: %s", job.ID, cur.State, cur.Error)
		}
		time.Sleep(poll)
	}
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
