package repro

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/scenarios"
	"repro/metarepair"
)

// TestDeltaBacktestDifferentialScenarios runs every registered scenario's
// full pipeline twice — once with the full-fixpoint reference backtest and
// once with incremental delta evaluation — and asserts candidate-identical
// verdicts, under both the indexed and the scan join strategy. Delta mode
// is a pure evaluation-order optimisation: the base fixpoint runs once and
// each candidate is replayed as a tagged delta against it, so any verdict
// or KS divergence here means the incremental path changed semantics, not
// just speed.
func TestDeltaBacktestDifferentialScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline differential is not a -short test")
	}
	sc := scenarios.Scale{Switches: 19, Flows: 500}
	type verdict struct {
		desc     string
		accepted bool
		ks       float64
	}
	run := func(strat ndlog.JoinStrategy, eval metarepair.EvalMode) map[string][]verdict {
		prev := ndlog.SetDefaultJoinStrategy(strat)
		defer ndlog.SetDefaultJoinStrategy(prev)
		out := make(map[string][]verdict)
		for _, s := range scenarios.All(sc) {
			res, err := s.Run(context.Background(), metarepair.WithEvalMode(eval))
			if err != nil {
				t.Fatalf("%s under strategy %d eval %v: %v", s.Name, strat, eval, err)
			}
			var vs []verdict
			for _, r := range res.Results {
				vs = append(vs, verdict{desc: r.Candidate.Describe(), accepted: r.Accepted, ks: r.KS})
			}
			out[s.Name] = vs
		}
		return out
	}

	for _, strat := range []struct {
		name string
		js   ndlog.JoinStrategy
	}{
		{"indexed", ndlog.JoinIndexed},
		{"scan", ndlog.JoinScan},
	} {
		full := run(strat.js, metarepair.EvalFull)
		delta := run(strat.js, metarepair.EvalDelta)
		for name, want := range full {
			have := delta[name]
			if len(have) != len(want) {
				t.Fatalf("%s under %s: %d candidates under full, %d under delta",
					name, strat.name, len(want), len(have))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Errorf("%s candidate %d diverges under %s:\n  full:  %+v\n  delta: %+v",
						name, i, strat.name, want[i], have[i])
				}
			}
		}
	}
}
