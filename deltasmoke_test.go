package repro

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/backtest"
	"repro/internal/experiments"
	"repro/metarepair"
)

// TestDeltaBacktestSpeedup is the CI guard band for the incremental
// backtesting win: at one shared run's 63-tag capacity, the delta path
// (base fixpoint once, each candidate replayed as a tagged delta) must
// beat the full-fixpoint reference by at least 3×. The measured ratio
// sits near 5× (see EXPERIMENTS.md); 3× leaves room for noisy CI hosts
// while still failing if the delta path silently degrades into a full
// re-evaluation. Gated behind BENCH_SMOKE=1 so ordinary test runs skip
// the repeated timed evaluations.
func TestDeltaBacktestSpeedup(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the delta speedup guard")
	}
	ctx := context.Background()
	sess, cands, bt, err := experiments.WideCandidates(ctx, benchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > backtest.MaxSharedCandidates {
		cands = cands[:backtest.MaxSharedCandidates]
	}
	best := func(eval metarepair.EvalMode) time.Duration {
		bestRun := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			run, err := sess.Evaluate(ctx, cands, bt,
				metarepair.WithStrategy(metarepair.StrategySerial),
				metarepair.WithEvalMode(eval))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := run.Wait(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestRun {
				bestRun = d
			}
		}
		return bestRun
	}
	full := best(metarepair.EvalFull)
	delta := best(metarepair.EvalDelta)
	t.Logf("%d candidates: full %v, delta %v (%.1fx)",
		len(cands), full, delta, float64(full)/float64(delta))
	if delta*3 > full {
		t.Errorf("delta backtesting is only %.1fx faster than full (want >= 3x): full %v, delta %v",
			float64(full)/float64(delta), full, delta)
	}
}
