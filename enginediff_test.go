package repro

import (
	"context"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/scenarios"
)

// TestEngineDifferentialScenarios runs every registered scenario's full
// pipeline — symptom reproduction, provenance-driven candidate generation,
// and tagged shared backtesting — under the three join strategies and
// asserts identical outcomes. The candidate list is a function of the
// recorded provenance graph and the verdicts a function of the tagged
// replay, so agreement here means the planned, indexed engine is
// provenance- and verdict-identical to the scan-join reference oracle
// across the whole suite.
func TestEngineDifferentialScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline differential is not a -short test")
	}
	sc := scenarios.Scale{Switches: 19, Flows: 500}
	type verdict struct {
		desc     string
		accepted bool
		ks       float64
	}
	run := func(strat ndlog.JoinStrategy) map[string][]verdict {
		prev := ndlog.SetDefaultJoinStrategy(strat)
		defer ndlog.SetDefaultJoinStrategy(prev)
		out := make(map[string][]verdict)
		for _, s := range scenarios.All(sc) {
			res, err := s.Run(context.Background())
			if err != nil {
				t.Fatalf("%s under strategy %d: %v", s.Name, strat, err)
			}
			var vs []verdict
			for _, r := range res.Results {
				vs = append(vs, verdict{desc: r.Candidate.Describe(), accepted: r.Accepted, ks: r.KS})
			}
			out[s.Name] = vs
		}
		return out
	}

	indexed := run(ndlog.JoinIndexed)
	for _, oracle := range []struct {
		name  string
		strat ndlog.JoinStrategy
	}{
		{"scan", ndlog.JoinScan},
		{"legacy-sorted", ndlog.JoinLegacySorted},
	} {
		got := run(oracle.strat)
		for name, want := range indexed {
			have := got[name]
			if len(have) != len(want) {
				t.Fatalf("%s: %d candidates under indexed, %d under %s", name, len(want), len(have), oracle.name)
			}
			for i := range want {
				if want[i] != have[i] {
					t.Errorf("%s candidate %d diverges under %s:\n  indexed: %+v\n  oracle:  %+v",
						name, i, oracle.name, want[i], have[i])
				}
			}
		}
	}
}

// TestDefaultJoinStrategyRoundTrip guards the strategy switch used by the
// differential harness: it must return the previous value so tests can
// restore it.
func TestDefaultJoinStrategyRoundTrip(t *testing.T) {
	prev := ndlog.SetDefaultJoinStrategy(ndlog.JoinScan)
	if got := ndlog.DefaultJoinStrategy(); got != ndlog.JoinScan {
		t.Fatalf("default = %v", got)
	}
	if back := ndlog.SetDefaultJoinStrategy(prev); back != ndlog.JoinScan {
		t.Fatalf("swap returned %v", back)
	}
	e := ndlog.MustNewEngine(&ndlog.Program{Name: "empty"})
	if e.JoinStrategy() != ndlog.DefaultJoinStrategy() {
		t.Fatal("engine did not inherit the default strategy")
	}
}
