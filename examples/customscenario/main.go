// Customscenario: a third-party scenario defined entirely outside the
// built-in case studies, on a non-campus topology — the walkthrough for
// the public scenario API. A chain (Mininet-style linear) fabric carries
// a load-balanced web service behind a three-switch reactive zone; the
// controller program has a Q1-style copy-and-paste bug, so every client
// the balancer offloads to the backup server is silently dropped. The
// spec composes the pluggable pieces — topo.Linear, a workload
// generator, a symptom goal, an effectiveness oracle — registers itself
// in the default registry like Q1–Q5 do, and runs the full diagnose →
// generate → backtest pipeline end to end.
package main

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

const (
	vipIP    = 601 // load-balanced web service virtual IP
	backupIP = 602 // backup web server (behind zone switch 3)
)

// chainProgram is the custom controller: a load balancer in the reactive
// zone. r7 was copied from r5 when the backup server was added — the
// output port was updated, the switch guard was not (it still says 2
// instead of 3), so the backup's switch never gets a flow entry.
const chainProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < %THRESH%, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip >= %THRESH%, Prt := 3.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
`

// threshold offloads the three highest client IPs to the backup server —
// like Q1, a sliver of the host population, so the repaired traffic
// shift stays under the KS filter's significance threshold while
// over-general repairs (which reroute whole services) do not.
func threshold(f *topo.Fabric) int64 {
	last := f.Net.Hosts[f.HostIDs[len(f.HostIDs)-1]].IP
	return last - 2
}

// chainSpec declares the scenario. Everything is resolved against the
// generated fabric, so the same spec runs at any chain length.
func chainSpec() scenario.Spec {
	return scenario.Spec{
		Name:     "chain-lb",
		Query:    "the backup web server receives no offloaded HTTP requests",
		Topology: topo.Linear{HostsPerSwitch: 12},
		Attach: func(f *topo.Fabric) {
			gw, srv, bak := sdn.NewSwitch("lbgw", 1), sdn.NewSwitch("lbsrv", 2), sdn.NewSwitch("lbbak", 3)
			f.Net.AddSwitch(gw)
			f.Net.AddSwitch(srv)
			f.Net.AddSwitch(bak)
			gw.Wire(2, "lbsrv")
			srv.Wire(3, "lbgw")
			gw.Wire(3, "lbbak")
			bak.Wire(3, "lbgw")
			f.Net.AddHostAt(sdn.NewHost("vip", vipIP, "lbsrv"), 1)
			f.Net.AddHostAt(sdn.NewHost("backup", backupIP, "lbbak"), 2)
			// Hang the zone off the middle of the chain and steer the
			// service IPs into it.
			f.Net.Link("lbgw", f.CoreIDs[len(f.CoreIDs)/2])
			f.InstallProactiveRoutes(map[int64]string{
				vipIP: "lbgw", backupIP: "lbgw",
			}, "lbgw", "lbsrv", "lbbak")
		},
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			src := strings.ReplaceAll(chainProgram, "%THRESH%", fmt.Sprint(threshold(f)))
			prog, err := ndlog.Parse("chain-lb", src)
			return prog, nil, err
		},
		Workload: func(f *topo.Fabric, sc scenario.Scale) []trace.Entry {
			thresh := threshold(f)
			// The offloaded clients' requests are the symptom traffic.
			var offloaded, everyone []trace.HostSpec
			for _, id := range f.HostIDs {
				spec := trace.HostSpec{ID: id, IP: f.Net.Hosts[id].IP}
				everyone = append(everyone, spec)
				if spec.IP >= thresh {
					offloaded = append(offloaded, spec)
				}
			}
			symptomFlows := sc.Flows / 40
			if symptomFlows < 6 {
				symptomFlows = 6
			}
			symptom := trace.Generate(trace.Config{
				Seed:     7001,
				Sources:  offloaded,
				Services: []trace.Service{{DstIP: vipIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    symptomFlows,
			})
			// Background: the whole chain uses the service, plus chatter
			// toward an evenly spread sample of at most 12 hosts, which
			// anchors the KS distribution at any chain length.
			services := []trace.Service{{DstIP: vipIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3}}
			chatter := 12
			if n := len(f.HostIDs); chatter > n {
				chatter = n
			}
			for i := 0; i < chatter; i++ {
				h := f.Net.Hosts[f.HostIDs[i*len(f.HostIDs)/chatter]]
				services = append(services, trace.Service{
					DstIP: h.IP, Port: 9000, Proto: sdn.ProtoTCP, Weight: 1,
				})
			}
			bg := trace.Generate(trace.Config{
				Seed:     7002,
				Sources:  everyone,
				Services: services,
				Flows:    sc.Flows,
			})
			return append(symptom, bg...)
		},
		Goal: func(*topo.Fabric) metaprov.Goal {
			// "Why is there no flow entry at switch 3 sending HTTP to the
			// backup's port?"
			v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
			return metaprov.PinnedGoal("FlowTable", &v3, nil, nil, nil, &v80, &v2)
		},
		Oracle: func(*topo.Fabric) scenario.Effectiveness {
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["backup"].PortCountFor(sdn.PortHTTP, tag) > 0
			}
		},
		IntuitiveFix: "change constant 2 in r7 (sel/0/R) to 3",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
	}
}

func main() {
	// Register the spec exactly the way the built-in case studies do;
	// from here on the scenario is addressable by name, including from
	// the suite runner.
	scenario.MustRegister(chainSpec())

	s, err := scenario.Instantiate("chain-lb", scenario.Scale{Switches: 8, Flows: 300})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario %s (%s topology): %s\n\n", s.Name, s.Topology, s.Query)

	out, err := s.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated %d candidates, accepted %d:\n\n", out.Generated, out.Passed)
	for _, r := range out.Results {
		mark := "rejected"
		if r.Accepted {
			mark = "ACCEPTED"
		}
		fmt.Printf("  %-72s KS=%.5f  %s\n", r.Candidate.Describe(), r.KS, mark)
	}
	if out.IntuitiveFixAccepted() {
		fmt.Println("\nthe intuitive fix (r7: switch 2 -> 3) was generated and survived backtesting")
	}
}
