// Firewall: the Q3 case study (§5.3) — an uncoordinated policy update. A
// load-balancing app offloaded some clients onto a firewalled route, but
// the firewall's white-list was never updated, so a legitimate client's
// requests are silently dropped while scanner traffic must stay blocked.
// The debugger's top repair coordinates the update (insert the missing
// white-list entry); repairs that open the firewall for everyone are
// rejected by the KS filter because they admit the scanners.
package main

import (
	"context"
	"fmt"
	"strings"

	_ "repro/internal/scenarios" // register Q1-Q5 in the default registry
	"repro/scenario"
)

func main() {
	s, err := scenario.Instantiate("Q3", scenario.Scale{Switches: 19, Flows: 900})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %s\n", s.Query)
	fmt.Println("controller program (firewall + load balancer):")
	fmt.Println(indent(s.Prog.String(), "  "))

	out, err := s.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated %d candidates, accepted %d:\n\n", out.Generated, out.Passed)
	for _, r := range out.Results {
		mark := "rejected"
		if r.Accepted {
			mark = "ACCEPTED"
		}
		fmt.Printf("  %-76s KS=%.5f  %s\n", r.Candidate.Describe(), r.KS, mark)
	}

	fmt.Println("\nnote: deleting the FwWhite predicate would also fix the symptom,")
	fmt.Println("but backtesting rejects it — the white-list is what keeps the")
	fmt.Println("scanner hosts out, and removing it shifts the traffic distribution.")
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
