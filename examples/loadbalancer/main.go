// Loadbalancer: the full Q1 case study (§5.3) at campus scale — the
// Stanford-style topology of §5.2 with 19 routers and 259 hosts, a
// reactive load-balancing zone, realistic background traffic, and the
// copy-and-paste bug of Figure 2. The run prints the Table 2 panel:
// every generated candidate with its KS statistic and verdict, and the
// turnaround breakdown of Figure 9a.
package main

import (
	"context"
	"fmt"
	"time"

	_ "repro/internal/scenarios" // register Q1-Q5 in the default registry
	"repro/scenario"
)

func main() {
	s, err := scenario.Instantiate("Q1", scenario.Scale{Switches: 19, Flows: 900})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %s\n", s.Query)
	fmt.Printf("network: %d switches, %d hosts, %d packets of history\n\n",
		len(s.BuildNet().Switches), len(s.BuildNet().Hosts), len(s.Workload))

	out, err := s.Run(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Printf("meta provenance generated %d candidate repairs; backtesting accepted %d:\n\n",
		out.Generated, out.Passed)
	for i, r := range out.Results {
		mark := "rejected"
		if r.Accepted {
			mark = "ACCEPTED"
		}
		fmt.Printf("%c  %-76s KS=%.5f  %s\n", 'A'+i%26, r.Candidate.Describe(), r.KS, mark)
	}

	t := out.Timing
	fmt.Printf("\nturnaround breakdown (Figure 9a):\n")
	fmt.Printf("  history lookups:    %v\n", t.HistoryLookups.Round(time.Millisecond))
	fmt.Printf("  constraint solving: %v\n", t.ConstraintSolving.Round(time.Millisecond))
	fmt.Printf("  patch generation:   %v\n", t.PatchGeneration.Round(time.Millisecond))
	fmt.Printf("  replay:             %v\n", t.Replay.Round(time.Millisecond))
	fmt.Printf("  total:              %v\n", t.Total().Round(time.Millisecond))

	// Show the meta-provenance tree behind the top-ranked repair: the
	// Figure 6 data structure.
	if len(out.Candidates) > 0 && out.Candidates[0].Tree != nil {
		fmt.Printf("\nmeta provenance of the top candidate (%s):\n%s",
			out.Candidates[0].Describe(), out.Candidates[0].Tree.Render())
	}
}
