// Maclearning: the Q5 case study (§5.3) — an address-learning app that
// records a wildcard instead of the packet's source address, so the
// controller never learns where hosts live. The intuitive repair is a
// variable substitution (SipL := * becomes SipL := Sip), a repair class
// beyond constant and operator changes. The example also shows the same
// controller rendered through the Trema and Pyretic front-ends (§5.8).
package main

import (
	"context"
	"fmt"

	"repro/internal/pyretic"
	_ "repro/internal/scenarios" // register Q1-Q5 in the default registry
	"repro/internal/trema"
	"repro/scenario"
)

func main() {
	s, err := scenario.Instantiate("Q5", scenario.Scale{Switches: 19, Flows: 700})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %s\n\n", s.Query)

	fmt.Println("the controller in NDlog:")
	fmt.Println(s.Prog.String())

	if tp, err := trema.Translate(s.Prog); err == nil {
		fmt.Println("the same controller in Trema (Ruby):")
		fmt.Println(tp.Source())
	}
	if pp, err := pyretic.Translate(s.Prog); err == nil {
		fmt.Println("the same controller in Pyretic:")
		fmt.Println(pp.Source())
	}

	out, err := s.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated %d candidates, accepted %d:\n\n", out.Generated, out.Passed)
	for _, r := range out.Results {
		mark := "rejected"
		if r.Accepted {
			mark = "ACCEPTED"
		}
		fmt.Printf("  %-72s KS=%.5f  %s\n", r.Candidate.Describe(), r.KS, mark)
	}
}
