// Quickstart: reproduce the paper's running example (Figures 1, 2, and 6)
// in about a hundred lines, on the metarepair.Session API. A three-switch
// network load-balances HTTP; the controller program contains the §2.3
// copy-and-paste bug (r7 checks switch 2 instead of 3), so the backup
// server H2 starves. We record provenance while the traffic runs, ask
// "why is there no flow entry sending HTTP at switch 3 to port 2?", and
// stream the repairs the meta-provenance debugger suggests as the
// batched-parallel backtest evaluates them.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
)

// The buggy controller of Figure 2 over full packet headers. The operator
// copied r5 to create r7 when server H2 was added, changed the output
// port, and forgot to change Swi == 2 to Swi == 3.
const buggyProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < 64, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip >= 64, Prt := 3.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
`

func buildNet() *sdn.Network {
	n := sdn.NewNetwork()
	s1, s2, s3 := sdn.NewSwitch("s1", 1), sdn.NewSwitch("s2", 2), sdn.NewSwitch("s3", 3)
	n.AddSwitch(s1)
	n.AddSwitch(s2)
	n.AddSwitch(s3)
	s1.Wire(2, "s2")
	s2.Wire(3, "s1")
	s1.Wire(3, "s3")
	s3.Wire(3, "s1")
	n.AddHostAt(sdn.NewHost("h1", 201, "s2"), 1) // primary web server
	n.AddHostAt(sdn.NewHost("h2", 202, "s3"), 2) // backup web server
	for i := 1; i <= 64; i++ {
		n.AddHostAt(sdn.NewHost(fmt.Sprintf("c%02d", i), int64(i), "s1"), 10+i)
	}
	return n
}

func workload() []trace.Entry {
	var sources []trace.HostSpec
	for i := 1; i <= 64; i++ {
		sources = append(sources, trace.HostSpec{ID: fmt.Sprintf("c%02d", i), IP: int64(i)})
	}
	return trace.Generate(trace.Config{
		Seed:     7,
		Sources:  sources,
		Services: []trace.Service{{DstIP: 201, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
		Flows:    500,
	})
}

func main() {
	ctx := context.Background()
	prog := ndlog.MustParse("quickstart", buggyProgram)

	// A durable trace store holds the historical traffic: the live run
	// captures every packet into segmented §5.4 log records, and the
	// backtest streams them back out — replay memory is O(segment), so
	// the same code handles traces far larger than RAM.
	dir, err := os.MkdirTemp("", "quickstart-trace-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	store, err := tracestore.Open(dir, tracestore.Options{})
	if err != nil {
		panic(err)
	}
	defer store.Close()

	sess, err := metarepair.NewSession(prog, metarepair.WithTraceStore(store))
	if err != nil {
		panic(err)
	}

	// Run the network with the session's controller attached and the
	// capture hook recording: the provenance recorder captures the
	// control plane, the trace store the data plane.
	net := buildNet()
	net.Ctrl = sess.Controller()
	stopCapture, err := sess.Capture(net)
	if err != nil {
		panic(err)
	}
	wl := workload()
	if n := trace.Replay(net, wl, 1); n != len(wl) {
		panic(fmt.Sprintf("partial replay: %d of %d", n, len(wl)))
	}
	captured, err := stopCapture()
	if err != nil {
		panic(err)
	}
	stats := store.Stats()
	fmt.Printf("captured %d packets into %d on-disk segment(s) (%d bytes)\n",
		captured, stats.Segments, stats.Bytes)

	h2 := net.Hosts["h2"]
	fmt.Printf("symptom: backup server h2 received %d HTTP packets (primary: %d)\n\n",
		h2.PortCountFor(sdn.PortHTTP, 0), net.Hosts["h1"].PortCountFor(sdn.PortHTTP, 0))

	// The operator's query: why is there no flow entry at switch 3
	// forwarding HTTP to port 2? The backtest workload comes from the
	// store (no Workload slice — the session streams the captured log).
	// Under the default streaming pipeline the concurrent forest search
	// feeds candidates straight into small shared-run batches that launch
	// while exploration is still producing, so the first verdicts arrive
	// long before the search finishes; suggestions stream as each batch
	// completes, then the final ranked report prints.
	sym := metarepair.Missing("FlowTable",
		metarepair.Pin(3), nil, nil, nil, metarepair.Pin(80), metarepair.Pin(2))
	run, err := sess.Stream(ctx, sym, metarepair.Backtest{
		BuildNet: buildNet,
		Effective: func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
			return n.Hosts["h2"].PortCountFor(sdn.PortHTTP, tag) > 0
		},
	}, metarepair.WithBatchSize(4))
	if err != nil {
		panic(err)
	}
	for s := range run.Suggestions() {
		verdict := "rejected"
		if s.Result.Accepted {
			verdict = "ACCEPTED"
		}
		fmt.Printf("  [batch %d] %-8s %s\n", s.Batch, verdict, s.Candidate.Describe())
	}
	report, err := run.Wait()
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Print(report.Render())
	if report.Timing.Overlap > 0 {
		fmt.Printf("exploration and backtesting overlapped for %v\n", report.Timing.Overlap.Round(time.Millisecond))
	}
	fmt.Println("\nthe top suggestion is the paper's fix: change Swi == 2 in r7 to Swi == 3")
}
