// Package backtest evaluates repair candidates against historical traffic
// (§4.3–§4.4): each candidate's patched program is replayed over the
// recorded workload, per-host delivery distributions are compared to the
// pre-repair baseline with a two-sample KS test, and candidates that are
// ineffective (symptom persists) or too disruptive (distribution shifts
// significantly) are rejected. RunShared implements the multi-query
// optimization: all candidates run in one tagged simulation, sharing every
// computation their programs have in common.
package backtest

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MaxSharedCandidates is the tag-space limit of one shared run: tag bit 0
// carries the baseline, leaving 63 bits for candidates. Larger candidate
// sets are split into batches by RunBatched.
const MaxSharedCandidates = 63

// Job describes one backtesting task.
type Job struct {
	// Prog is the original (buggy) controller program.
	Prog *ndlog.Program
	// Candidates are the repairs to evaluate (at most 63 per shared run).
	Candidates []metaprov.Candidate
	// BuildNet constructs a fresh network (topology + proactive state,
	// no controller attached).
	BuildNet func() *sdn.Network
	// State are controller tuples inserted before traffic (policy tables).
	State []ndlog.Tuple
	// Workload is the recorded packet trace to replay, as an in-memory
	// slice — the compatibility adapter. Source takes precedence.
	Workload []trace.Entry
	// Source streams the recorded workload (e.g. from a segmented
	// on-disk trace store); replay memory is then independent of trace
	// length. Sources are re-scanned once per simulation, so they must
	// be rewindable (every tracestore view is).
	Source trace.Source
	// Effective decides whether the symptom is fixed for a tag in the
	// replayed network (e.g. "H2 received HTTP traffic"). The controller
	// is exposed so checks can inspect controller state (Q5's learning
	// table).
	Effective func(net *sdn.Network, ctl *sdn.NDlogController, tag int) bool
	// Alpha is the KS significance level (default 0.05).
	Alpha float64
	// MaxPacketInFactor, when positive, rejects candidates whose
	// controller PacketIn load exceeds this multiple of the baseline —
	// the "significant increases of controller traffic" side effect the
	// paper's Q4 evaluation rejects (Table 6(c)).
	MaxPacketInFactor float64
	// Coalesce merges syntactically identical candidate rule copies in
	// shared runs (the §4.4 static-analysis optimization); on by default
	// via NewJob-style zero handling — set SkipCoalesce to disable.
	SkipCoalesce bool
	// Eval selects the engine evaluation mode for shared runs:
	// ndlog.EvalDelta switches the controller engine to delta-grouped
	// trigger evaluation and the replay network to indexed flow-table
	// matching, evaluating each candidate as a delta over the shared
	// baseline computation. The zero value (ndlog.EvalFull) keeps the
	// reference path; verdicts are identical either way (the delta
	// differential tests are the oracle).
	Eval ndlog.EvalMode
}

// Result is the verdict for one candidate.
type Result struct {
	Candidate metaprov.Candidate
	// Effective: the symptom is gone under this candidate.
	Effective bool
	// KS is the D statistic vs. the baseline distribution; P its p-value.
	KS float64
	P  float64
	// PacketInFactor is the candidate's controller load relative to the
	// baseline (1 = unchanged).
	PacketInFactor float64
	// Accepted = effective and not significantly disruptive.
	Accepted bool
}

// String renders the result as a Table 2 row.
func (r Result) String() string {
	verdict := "rejected"
	if r.Accepted {
		verdict = "ACCEPTED"
	}
	return fmt.Sprintf("%-70s KS=%.5f  %s", r.Candidate.Describe(), r.KS, verdict)
}

func (j *Job) alpha() float64 {
	if j.Alpha > 0 {
		return j.Alpha
	}
	return 0.05
}

// workloadSource resolves the streaming source: an explicit Source wins,
// otherwise the in-memory slice is adapted.
func (j *Job) workloadSource() trace.Source {
	if j.Source != nil {
		return j.Source
	}
	return trace.SliceSource(j.Workload)
}

// runOne replays the workload through one program variant and returns the
// resulting network and controller (tag 0 carries the variant).
func (j *Job) runOne(prog *ndlog.Program, inserts, deletes []ndlog.Tuple) (*sdn.Network, *sdn.NDlogController, error) {
	net := j.BuildNet()
	eng := ndlog.MustNewEngine(prog)
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	deleted := make(map[string]bool)
	for _, d := range deletes {
		deleted[d.Key()] = true
	}
	for _, st := range j.State {
		if deleted[st.Key()] {
			continue
		}
		ctl.InsertState(net, st)
	}
	for _, ins := range inserts {
		ctl.InsertState(net, ins)
	}
	if _, err := trace.ReplaySource(net, j.workloadSource(), 1); err != nil {
		return nil, nil, fmt.Errorf("backtest: replaying workload: %w", err)
	}
	return net, ctl, nil
}

// Baseline replays the unmodified program and returns its per-host
// delivery distribution and controller PacketIn count.
func (j *Job) Baseline() ([]int64, int64, error) {
	net, _, err := j.runOne(j.Prog, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	return net.Distribution(0), net.PacketInsByTag[0], nil
}

// RunSequential backtests each candidate in its own simulation (the upper
// curve of Figure 9b).
func (j *Job) RunSequential() []Result {
	out, _ := j.RunSequentialContext(context.Background())
	return out
}

// RunSequentialContext is RunSequential with cooperative cancellation
// between candidate replays.
func (j *Job) RunSequentialContext(ctx context.Context) ([]Result, error) {
	baseline, basePI, err := j.Baseline()
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(j.Candidates))
	for _, c := range j.Candidates {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		patch, err := c.Apply(j.Prog)
		if err != nil {
			out = append(out, Result{Candidate: c})
			continue
		}
		net, ctl, err := j.runOne(patch.Prog, patch.Inserts, patch.Deletes)
		if err != nil {
			return out, err
		}
		res := j.judge(c, baseline, net.Distribution(0), net, ctl, 0, basePI, net.PacketInsByTag[0])
		out = append(out, res)
	}
	return out, nil
}

// RunShared backtests all candidates in a single tagged simulation
// (§4.4): tag bit 0 is the baseline program; candidate i runs under tag
// bit i+1. Rules untouched by a candidate keep its tag bit, so shared
// computation happens once.
func (j *Job) RunShared() ([]Result, error) {
	out, _, err := j.runShared(context.Background())
	return out, err
}

// RunSharedContext is RunShared with cooperative cancellation between
// replayed workload entries, plus a snapshot of the shared-run engine's
// work counters (the delta accounting surfaced on /metrics).
func (j *Job) RunSharedContext(ctx context.Context) ([]Result, ndlog.EngineStats, error) {
	return j.runShared(ctx)
}

// cancelSource wraps a workload source with a per-entry context check so a
// first-accepted early stop aborts an in-flight shared replay instead of
// letting it finish silently.
type cancelSource struct {
	ctx context.Context
	src trace.Source
}

func (c *cancelSource) Scan(fn func(trace.Entry) error) error {
	return c.src.Scan(func(e trace.Entry) error {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		return fn(e)
	})
}

func (j *Job) runShared(ctx context.Context) ([]Result, ndlog.EngineStats, error) {
	var zero ndlog.EngineStats
	if len(j.Candidates) > MaxSharedCandidates {
		return nil, zero, fmt.Errorf("backtest: %d candidates exceed the %d-tag limit (use RunBatched)",
			len(j.Candidates), MaxSharedCandidates)
	}
	shared, inserts, deletes, err := BuildSharedProgram(j.Prog, j.Candidates, !j.SkipCoalesce)
	if err != nil {
		return nil, zero, err
	}
	fullMask := uint64(1)<<(len(j.Candidates)+1) - 1

	net := j.BuildNet()
	eng := ndlog.MustNewEngine(shared)
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	if j.Eval == ndlog.EvalDelta {
		eng.SetEvalMode(ndlog.EvalDelta)
		net.EnableFlowIndex()
	}

	// Seed controller state: a tuple deleted by candidate i is inserted
	// with i's tag bit cleared. The key is computed on the clone so the
	// interned string stays goroutine-local when batches run in parallel
	// over shared state slices.
	for _, st := range j.State {
		tp := st.Clone()
		tp.Tags = fullMask &^ deletes[tp.Key()]
		ctl.InsertState(net, tp)
	}
	// Candidate-specific manual insertions.
	for bit, ins := range inserts {
		for _, tp := range ins {
			t2 := tp.Clone()
			t2.Tags = 1 << uint(bit)
			ctl.InsertState(net, t2)
		}
	}
	src := j.workloadSource()
	if ctx != nil && ctx.Done() != nil {
		src = &cancelSource{ctx: ctx, src: src}
	}
	if _, err := trace.ReplaySource(net, src, fullMask); err != nil {
		return nil, eng.Stats, fmt.Errorf("backtest: replaying workload: %w", err)
	}

	baseline := net.Distribution(0)
	basePI := net.PacketInsByTag[0]
	out := make([]Result, 0, len(j.Candidates))
	for i, c := range j.Candidates {
		tag := i + 1
		out = append(out, j.judge(c, baseline, net.Distribution(tag), net, ctl, tag, basePI, net.PacketInsByTag[tag]))
	}
	return out, eng.Stats, nil
}

// Batch is one ≤63-candidate slice of a larger batched run.
type Batch struct {
	// Index is the batch's position in the split (0-based).
	Index int
	// Start is the offset of the batch's first candidate in Job.Candidates.
	Start int
	// Results are the batch's verdicts, in candidate order.
	Results []Result
	// Began and Ended bound the batch's shared-run replay on the worker,
	// so observers can reconstruct per-batch spans without re-timing.
	Began time.Time
	Ended time.Time
	// Stats snapshots the batch's shared-run engine counters, including
	// the delta-evaluation families; per-job reports accumulate them.
	Stats ndlog.EngineStats
}

// RunBatched removes the 63-candidate cliff: the candidate set is split
// into batches of at most batchSize (clamped to MaxSharedCandidates), each
// batch is backtested as one shared run, and up to parallelism batches run
// concurrently on a worker pool. Each shared run replays its own tag-0
// baseline from the same program and workload, so verdicts are identical
// to a single shared run over the full set. onBatch, when non-nil, is
// invoked (serially, in completion order) as each batch finishes —
// callers stream incremental results from it. The returned slice is in
// Job.Candidates order. Cancelling ctx stops unstarted batches and
// returns ctx.Err().
func (j *Job) RunBatched(ctx context.Context, parallelism, batchSize int, onBatch func(Batch)) ([]Result, error) {
	if batchSize <= 0 || batchSize > MaxSharedCandidates {
		batchSize = MaxSharedCandidates
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	cands := j.Candidates
	if len(cands) == 0 {
		return nil, ctx.Err()
	}
	type span struct{ idx, start, end int }
	var spans []span
	for start := 0; start < len(cands); start += batchSize {
		end := start + batchSize
		if end > len(cands) {
			end = len(cands)
		}
		spans = append(spans, span{idx: len(spans), start: start, end: end})
	}
	if parallelism > len(spans) {
		parallelism = len(spans)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan span)
	go func() {
		defer close(work)
		for _, sp := range spans {
			select {
			case work <- sp:
			case <-runCtx.Done():
				return
			}
		}
	}()

	results := make([]Result, len(cands))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range work {
				if runCtx.Err() != nil {
					return
				}
				sub := *j
				sub.Candidates = cands[sp.start:sp.end]
				began := time.Now()
				res, st, err := sub.runShared(runCtx)
				ended := time.Now()
				mu.Lock()
				if err != nil {
					// A replay aborted by cancellation is a drain, not a
					// batch failure: the caller asked the pool to stop.
					if firstErr == nil && runCtx.Err() == nil {
						firstErr = fmt.Errorf("backtest: batch %d: %w", sp.idx, err)
						cancel()
					}
					mu.Unlock()
					continue
				}
				copy(results[sp.start:sp.end], res)
				if onBatch != nil {
					onBatch(Batch{Index: sp.idx, Start: sp.start, Results: res, Began: began, Ended: ended, Stats: st})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// judge applies the §4.3 acceptance test: effective, KS-compatible with
// the baseline at significance alpha, and without a controller-load blowup.
func (j *Job) judge(c metaprov.Candidate, baseline, dist []int64, net *sdn.Network, ctl *sdn.NDlogController, tag int, basePI, pi int64) Result {
	d, p := stats.KSFromCounts(baseline, dist)
	eff := true
	if j.Effective != nil {
		eff = j.Effective(net, ctl, tag)
	}
	factor := 1.0
	if basePI > 0 {
		factor = float64(pi) / float64(basePI)
	} else if pi > 0 {
		factor = float64(pi)
	}
	accepted := eff && p >= j.alpha()
	if j.MaxPacketInFactor > 0 && factor > j.MaxPacketInFactor {
		accepted = false
	}
	return Result{
		Candidate:      c,
		Effective:      eff,
		KS:             d,
		P:              p,
		PacketInFactor: factor,
		Accepted:       accepted,
	}
}

// BuildSharedProgram assembles the §4.4 backtesting program: every
// original rule restricted away from the candidates that modify or delete
// it, plus per-candidate copies of the modified rules restricted to that
// candidate's tag. It returns the program, per-candidate-bit manual
// insertions, and a map from base-tuple key to the tag bits that delete it.
func BuildSharedProgram(prog *ndlog.Program, cands []metaprov.Candidate, coalesce bool) (*ndlog.Program, map[int][]ndlog.Tuple, map[string]uint64, error) {
	type variant struct {
		rule   *ndlog.Rule
		bits   uint64
		origID string // "" for candidate-added rules
	}
	touched := make(map[string]uint64) // rule ID -> bits of candidates changing/deleting it
	var variants []variant
	inserts := make(map[int][]ndlog.Tuple)
	deletes := make(map[string]uint64)

	origByID := make(map[string]*ndlog.Rule, len(prog.Rules))
	rulePos := make(map[string]int, len(prog.Rules))
	for i, r := range prog.Rules {
		origByID[r.ID] = r
		rulePos[r.ID] = i
	}
	origStr := make(map[string]string, len(prog.Rules)) // lazy render cache

	// differs reports whether a patched rule diverged from the base
	// program's rule of the same ID (or is new), rendering the original at
	// most once across all candidates.
	differs := func(r *ndlog.Rule) (exists, changed bool) {
		orig, ok := origByID[r.ID]
		if !ok {
			return false, true
		}
		os, cached := origStr[r.ID]
		if !cached {
			os = orig.String()
			origStr[r.ID] = os
		}
		return true, os != r.String()
	}

	for i, c := range cands {
		bit := uint64(1) << uint(i+1)
		patch, err := c.Apply(prog)
		if err != nil {
			// Unapplicable candidate: give it no rules at all so it is
			// judged ineffective rather than failing the whole batch.
			continue
		}
		for _, ins := range patch.Inserts {
			inserts[i+1] = append(inserts[i+1], ins)
		}
		for _, del := range patch.Deletes {
			deletes[del.Key()] |= bit
		}
		addVariant := func(r *ndlog.Rule, exists bool) {
			touched[r.ID] |= bit
			cp := r.Clone()
			cp.ID = fmt.Sprintf("%s~c%d", r.ID, i+1)
			origID := ""
			if exists {
				origID = r.ID
			}
			variants = append(variants, variant{rule: cp, bits: bit, origID: origID})
		}
		// Every Change names the one rule it can create, modify, or delete,
		// so only those rules need the rendered comparison; the full
		// program sweep remains as the fallback for unknown change kinds.
		// IDs are visited in program order (added rules last, in change
		// order) to keep the variant sequence identical to the sweep's.
		if ids, exact := changedRuleIDs(c.Changes); exact {
			sort.SliceStable(ids, func(a, b int) bool {
				pa, oka := rulePos[ids[a]]
				pb, okb := rulePos[ids[b]]
				if oka && okb {
					return pa < pb
				}
				return oka && !okb
			})
			for _, id := range ids {
				r := patch.Prog.Rule(id)
				if r == nil {
					if _, orig := origByID[id]; orig {
						touched[id] |= bit // rule deleted by this candidate
					}
					continue
				}
				if exists, changed := differs(r); changed {
					addVariant(r, exists)
				}
			}
			continue
		}
		seen := make(map[string]bool)
		for _, r := range patch.Prog.Rules {
			seen[r.ID] = true
			if exists, changed := differs(r); changed {
				addVariant(r, exists)
			}
		}
		for id := range origByID {
			if !seen[id] {
				touched[id] |= bit // rule deleted by this candidate
			}
		}
	}
	// Coalescing (§4.4): merge candidate copies whose bodies are
	// syntactically identical, OR-ing their tag bits.
	if coalesce {
		merged := make(map[string]int)
		var kept []variant
		for _, v := range variants {
			key := ruleBodyKey(v.rule)
			if idx, ok := merged[key]; ok {
				kept[idx].bits |= v.bits
				continue
			}
			merged[key] = len(kept)
			kept = append(kept, v)
		}
		variants = kept
	}
	// Assemble the shared program: each original rule (restricted away
	// from the candidates that touch it) immediately followed by its
	// candidate variants, preserving the original rule order — flow
	// entries with tied priorities then install in the same order as in
	// each candidate's sequential run.
	fullMask := uint64(1)<<(len(cands)+1) - 1
	shared := prog.Clone()
	var rules []*ndlog.Rule
	for _, r := range shared.Rules {
		r.TagMask = fullMask &^ touched[r.ID]
		rules = append(rules, r)
		for _, v := range variants {
			if v.origID == r.ID {
				cp := v.rule
				cp.TagMask = v.bits
				rules = append(rules, cp)
			}
		}
	}
	for _, v := range variants {
		if v.origID == "" {
			cp := v.rule
			cp.TagMask = v.bits
			rules = append(rules, cp)
		}
	}
	shared.Rules = rules
	return shared, inserts, deletes, nil
}

// changedRuleIDs lists the rule IDs a change list can create, modify, or
// delete, deduplicated in first-mention order. exact is false when the list
// contains a change kind this function does not recognize, in which case
// the caller must fall back to comparing every rule.
func changedRuleIDs(changes []meta.Change) (ids []string, exact bool) {
	add := func(id string) {
		for _, have := range ids {
			if have == id {
				return
			}
		}
		ids = append(ids, id)
	}
	for _, ch := range changes {
		switch c := ch.(type) {
		case meta.SetConst:
			add(c.RuleID)
		case meta.SetOper:
			add(c.RuleID)
		case meta.SetExpr:
			add(c.RuleID)
		case meta.DropSel:
			add(c.RuleID)
		case meta.DropBodyPred:
			add(c.RuleID)
		case meta.DropRule:
			add(c.RuleID)
		case meta.SetHeadTable:
			add(c.RuleID)
		case meta.AddRule:
			add(c.Rule.ID)
		case meta.InsertTuple, meta.DeleteTuple:
			// Base-tuple edits touch no rule.
		default:
			return nil, false
		}
	}
	return ids, true
}

// ruleBodyKey canonicalizes a rule for coalescing: everything except its ID.
func ruleBodyKey(r *ndlog.Rule) string {
	c := r.Clone()
	c.ID = "x"
	return c.String()
}

// AppliedChanges summarizes which rules each candidate touches — used by
// diagnostics and tests.
func AppliedChanges(c metaprov.Candidate) []string {
	var out []string
	for _, ch := range c.Changes {
		switch ch := ch.(type) {
		case meta.SetConst:
			out = append(out, ch.RuleID)
		case meta.SetOper:
			out = append(out, ch.RuleID)
		case meta.SetExpr:
			out = append(out, ch.RuleID)
		case meta.DropSel:
			out = append(out, ch.RuleID)
		case meta.DropBodyPred:
			out = append(out, ch.RuleID)
		case meta.DropRule:
			out = append(out, ch.RuleID)
		}
	}
	return out
}
