package backtest

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/sdn"
	"repro/internal/trace"
)

// q1Mini is the Figure 2 bug on a small concrete network:
// s1 load-balances HTTP on the virtual IP (Sip < 40 to s2/h1, else s3/h2)
// and forwards DNS; s2 serves h1 (port 1) and dns (port 2); s3 serves h2
// (port 2); s4 (port 1) serves an unrelated web server h3 that over-general
// repairs disturb. r7 was copied from r5: the port was changed to 2, the
// switch was not, so only client 40's offloaded traffic is lost.
const q1Mini = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 201, Sip < 40, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 201, Sip >= 40, Prt := 3.
r3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 53, Prt := 2.
r4 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 204, Prt := 4.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r6 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 53, Prt := 2.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
r8 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 4, Dpt == 80, Prt := 1.
`

const (
	numClients = 40
	serviceIP  = 201
	dnsIP      = 203
	webIP      = 204
)

// buildMiniNet wires the 4-switch zone with 40 clients on s1.
func buildMiniNet() *sdn.Network {
	n := sdn.NewNetwork()
	s1, s2 := sdn.NewSwitch("s1", 1), sdn.NewSwitch("s2", 2)
	s3, s4 := sdn.NewSwitch("s3", 3), sdn.NewSwitch("s4", 4)
	n.AddSwitch(s1)
	n.AddSwitch(s2)
	n.AddSwitch(s3)
	n.AddSwitch(s4)
	s1.Wire(2, "s2")
	s2.Wire(3, "s1")
	s1.Wire(3, "s3")
	s3.Wire(3, "s1")
	s1.Wire(4, "s4")
	s4.Wire(3, "s1")
	n.AddHostAt(sdn.NewHost("h1", serviceIP, "s2"), 1)
	n.AddHostAt(sdn.NewHost("dns", dnsIP, "s2"), 2)
	n.AddHostAt(sdn.NewHost("h2", serviceIP+1, "s3"), 2)
	n.AddHostAt(sdn.NewHost("h3", webIP, "s4"), 1)
	for i := 1; i <= numClients; i++ {
		n.AddHostAt(sdn.NewHost(clientID(i), int64(i), "s1"), 10+i)
	}
	return n
}

func clientID(i int) string { return "c" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func miniWorkload() []trace.Entry {
	var sources []trace.HostSpec
	for i := 1; i <= numClients; i++ {
		sources = append(sources, trace.HostSpec{ID: clientID(i), IP: int64(i)})
	}
	return trace.Generate(trace.Config{
		Seed:    11,
		Sources: sources,
		Services: []trace.Service{
			{DstIP: serviceIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 4},
			{DstIP: dnsIP, Port: sdn.PortDNS, Proto: sdn.ProtoUDP, Weight: 3},
			{DstIP: webIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
		},
		Flows: 700,
	})
}

// effectiveQ1 reports whether h2 received HTTP under the tag.
func effectiveQ1(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
	return n.Hosts["h2"].PortCountFor(sdn.PortHTTP, tag) > 0
}

func q1Job(t *testing.T) (*Job, *provenance.Recorder) {
	t.Helper()
	prog := ndlog.MustParse("q1mini", q1Mini)
	// Diagnostic run: record history for the explorer.
	rec := provenance.NewRecorder()
	eng := ndlog.MustNewEngine(prog)
	eng.Listen(rec)
	net := buildMiniNet()
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	wl := miniWorkload()
	trace.Replay(net, wl, 1)
	if effectiveQ1(net, ctl, 0) {
		t.Fatal("bug not reproduced: h2 received HTTP in the buggy run")
	}
	return &Job{
		Prog:      prog,
		BuildNet:  buildMiniNet,
		Workload:  wl,
		Effective: effectiveQ1,
	}, rec
}

func TestSequentialBacktestQ1(t *testing.T) {
	job, rec := q1Job(t)
	ex := metaprov.NewExplorer(meta.NewModel(job.Prog), rec)
	ex.Cutoff = 3.2 // admits single edits, double constants, and deletions
	ex.MaxCandidates = 20
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	job.Candidates = ex.Explore(metaprov.PinnedGoal("FlowTable", &v3, nil, nil, nil, &v80, &v2))
	if len(job.Candidates) < 4 {
		t.Fatalf("too few candidates: %d", len(job.Candidates))
	}
	results := job.RunSequential()

	var intuitive *Result
	accepted := 0
	for i := range results {
		r := &results[i]
		if r.Accepted {
			accepted++
		}
		if strings.Contains(r.Candidate.Describe(), "change constant 2 in r7 (sel/0/R) to 3") {
			intuitive = r
		}
	}
	if intuitive == nil {
		t.Fatal("intuitive repair (Swi==2 -> Swi==3) not among candidates")
	}
	if !intuitive.Effective {
		t.Fatalf("intuitive repair judged ineffective: %+v", *intuitive)
	}
	if !intuitive.Accepted {
		t.Fatalf("intuitive repair rejected by KS (D=%v p=%v)", intuitive.KS, intuitive.P)
	}
	if accepted == len(results) {
		t.Fatalf("no candidate was filtered: %d/%d accepted (KS filter inert)", accepted, len(results))
	}
	// The over-general deletion of Swi==2 must be rejected: it hijacks
	// S2's HTTP traffic to the DNS port.
	for _, r := range results {
		if strings.Contains(r.Candidate.Describe(), "delete Swi == 2 in r7") && r.Accepted {
			t.Fatalf("over-general deletion accepted: %+v", r)
		}
	}
}

func TestSharedMatchesSequential(t *testing.T) {
	job, rec := q1Job(t)
	ex := metaprov.NewExplorer(meta.NewModel(job.Prog), rec)
	ex.Cutoff = 3.2
	ex.MaxCandidates = 12
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	job.Candidates = ex.Explore(metaprov.PinnedGoal("FlowTable", &v3, nil, nil, nil, &v80, &v2))
	seq := job.RunSequential()
	shr, err := job.RunShared()
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	if len(seq) != len(shr) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(shr))
	}
	for i := range seq {
		if seq[i].Effective != shr[i].Effective {
			t.Errorf("candidate %d (%s): effective %v vs %v",
				i, seq[i].Candidate.Describe(), seq[i].Effective, shr[i].Effective)
		}
		if seq[i].Accepted != shr[i].Accepted {
			t.Errorf("candidate %d (%s): accepted %v (KS %.5f) vs %v (KS %.5f)",
				i, seq[i].Candidate.Describe(), seq[i].Accepted, seq[i].KS, shr[i].Accepted, shr[i].KS)
		}
	}
}

func TestSharedProgramConstruction(t *testing.T) {
	prog := ndlog.MustParse("q1mini", q1Mini)
	cands := []metaprov.Candidate{
		{Changes: []meta.Change{meta.SetConst{RuleID: "r7", Path: "sel/0/R", Old: ndlog.Int(2), New: ndlog.Int(3)}}},
		{Changes: []meta.Change{meta.SetOper{RuleID: "r7", SelIdx: 0, Old: ndlog.OpEq, New: ndlog.OpGt, Sel: "Swi == 2"}}},
	}
	shared, _, _, err := BuildSharedProgram(prog, cands, true)
	if err != nil {
		t.Fatal(err)
	}
	// r7's shared copy must exclude tags 1 and 2 (bits 2 and 4).
	r7 := shared.Rule("r7")
	if r7.TagMask&0b110 != 0 {
		t.Fatalf("r7 mask = %b, want bits 1,2 cleared", r7.TagMask)
	}
	if r7.TagMask&1 == 0 {
		t.Fatal("r7 mask lost the baseline bit")
	}
	// Untouched rules carry all three tags.
	r1 := shared.Rule("r1")
	if r1.TagMask&0b111 != 0b111 {
		t.Fatalf("r1 mask = %b", r1.TagMask)
	}
	// Exactly two candidate copies were added.
	copies := 0
	for _, r := range shared.Rules {
		if strings.Contains(r.ID, "~c") {
			copies++
		}
	}
	if copies != 2 {
		t.Fatalf("candidate copies = %d, want 2", copies)
	}
}

func TestSharedCoalescing(t *testing.T) {
	prog := ndlog.MustParse("q1mini", q1Mini)
	// Two candidates producing the same patched rule must coalesce.
	same := meta.SetConst{RuleID: "r7", Path: "sel/0/R", Old: ndlog.Int(2), New: ndlog.Int(3)}
	cands := []metaprov.Candidate{
		{Changes: []meta.Change{same}},
		{Changes: []meta.Change{same}},
	}
	shared, _, _, err := BuildSharedProgram(prog, cands, true)
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	var mask uint64
	for _, r := range shared.Rules {
		if strings.Contains(r.ID, "~c") {
			copies++
			mask = r.TagMask
		}
	}
	if copies != 1 {
		t.Fatalf("coalescing failed: %d copies", copies)
	}
	if mask != 0b110 {
		t.Fatalf("coalesced mask = %b, want 110", mask)
	}
	// Without coalescing: two copies.
	shared2, _, _, _ := BuildSharedProgram(prog, cands, false)
	copies = 0
	for _, r := range shared2.Rules {
		if strings.Contains(r.ID, "~c") {
			copies++
		}
	}
	if copies != 2 {
		t.Fatalf("no-coalesce copies = %d, want 2", copies)
	}
}

func TestInsertCandidateBacktest(t *testing.T) {
	job, _ := q1Job(t)
	fe := ndlog.NewTuple("FlowTable",
		ndlog.Int(3), ndlog.Wild(), ndlog.Wild(), ndlog.Wild(), ndlog.Int(80), ndlog.Int(2))
	job.Candidates = []metaprov.Candidate{
		{Changes: []meta.Change{meta.InsertTuple{Tuple: fe}}, Cost: 2.5},
	}
	seq := job.RunSequential()
	if !seq[0].Effective {
		t.Fatalf("manual flow entry ineffective: %+v", seq[0])
	}
	shr, err := job.RunShared()
	if err != nil {
		t.Fatal(err)
	}
	if !shr[0].Effective {
		t.Fatalf("manual flow entry ineffective in shared run: %+v", shr[0])
	}
}

func TestTooManyCandidates(t *testing.T) {
	job := &Job{Prog: ndlog.MustParse("p", `r1 A(@X) :- B(@X).`)}
	job.Candidates = make([]metaprov.Candidate, 64)
	if _, err := job.RunShared(); err == nil {
		t.Fatal("expected 63-candidate limit error")
	}
}
