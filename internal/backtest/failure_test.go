package backtest

import (
	"testing"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
)

// Failure injection: the backtester must degrade gracefully on broken
// candidates, empty workloads, and malformed jobs.

func TestUnapplicableCandidateSequential(t *testing.T) {
	job, _ := q1Job(t)
	job.Candidates = []metaprov.Candidate{
		// References a rule that does not exist: Apply fails.
		{Changes: []meta.Change{meta.DropRule{RuleID: "no-such-rule"}}},
	}
	res := job.RunSequential()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Accepted || res[0].Effective {
		t.Fatalf("broken candidate must not be accepted: %+v", res[0])
	}
}

func TestUnapplicableCandidateShared(t *testing.T) {
	job, _ := q1Job(t)
	good := metaprov.Candidate{Changes: []meta.Change{
		meta.SetConst{RuleID: "r7", Path: "sel/0/R", Old: ndlog.Int(2), New: ndlog.Int(3)},
	}}
	bad := metaprov.Candidate{Changes: []meta.Change{
		meta.DropRule{RuleID: "no-such-rule"},
	}}
	job.Candidates = []metaprov.Candidate{bad, good}
	res, err := job.RunShared()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Effective {
		t.Fatal("broken candidate judged effective")
	}
	if !res[1].Effective {
		t.Fatal("good candidate must still be judged on its own tag")
	}
}

func TestEmptyWorkload(t *testing.T) {
	job, _ := q1Job(t)
	job.Workload = nil
	job.Candidates = []metaprov.Candidate{{Changes: []meta.Change{
		meta.SetConst{RuleID: "r7", Path: "sel/0/R", Old: ndlog.Int(2), New: ndlog.Int(3)},
	}}}
	res := job.RunSequential()
	// With no traffic the symptom cannot be shown fixed: ineffective.
	if res[0].Effective {
		t.Fatal("no traffic, yet effective")
	}
	shr, err := job.RunShared()
	if err != nil {
		t.Fatal(err)
	}
	if shr[0].Effective {
		t.Fatal("no traffic, yet effective (shared)")
	}
}

func TestNoCandidates(t *testing.T) {
	job, _ := q1Job(t)
	job.Candidates = nil
	if got := job.RunSequential(); len(got) != 0 {
		t.Fatalf("sequential results = %d", len(got))
	}
	shr, err := job.RunShared()
	if err != nil || len(shr) != 0 {
		t.Fatalf("shared results = %d err = %v", len(shr), err)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Candidate: metaprov.Candidate{}, KS: 0.5}
	if r.String() == "" {
		t.Fatal("empty result rendering")
	}
	r.Accepted = true
	if r.String() == "" {
		t.Fatal("empty accepted rendering")
	}
}

func TestAppliedChanges(t *testing.T) {
	c := metaprov.Candidate{Changes: []meta.Change{
		meta.SetConst{RuleID: "r7"},
		meta.DropSel{RuleID: "r6"},
		meta.InsertTuple{Tuple: ndlog.NewTuple("FlowTable")},
	}}
	rules := AppliedChanges(c)
	if len(rules) != 2 || rules[0] != "r7" || rules[1] != "r6" {
		t.Fatalf("rules = %v", rules)
	}
}
