package backtest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metaprov"
)

// Pipeline backtests a *stream* of repair candidates: it fills ≤63-tag
// shared-run batches straight from the candidate channel and launches each
// batch on a worker pool while the producer (typically the meta-provenance
// stream search) is still exploring — the explore and replay phases of the
// Figure 9a breakdown overlap instead of meeting at a barrier.
//
// Batches are cut exactly where RunBatched would cut a materialized list
// (every BatchSize candidates, in arrival order, remainder on stream
// close), and each batch is one Job.RunShared with its own tag-0 baseline,
// so per-candidate verdicts are identical to the barrier path.
type Pipeline struct {
	// Job is the backtesting template; its Candidates field is ignored —
	// candidates come from the stream.
	Job *Job
	// BatchSize caps candidates per shared run (clamped to
	// MaxSharedCandidates; <=0 means the maximum).
	BatchSize int
	// Parallelism is the batch worker-pool width (<=0: GOMAXPROCS).
	Parallelism int
	// FirstAccepted stops the pipeline as soon as any batch reports an
	// accepted repair: CancelSearch is invoked, unstarted batches are
	// dropped, and Run returns with the verdicts computed so far.
	FirstAccepted bool
	// CancelSearch, when non-nil, is called exactly once when
	// FirstAccepted triggers (or a batch fails) so the candidate producer
	// stops exploring. The pipeline always drains the candidate channel,
	// so a producer that honors the cancellation never blocks.
	CancelSearch func()
	// OnBatch, when non-nil, observes each finished batch in completion
	// order (calls are serialized) — callers stream incremental verdicts
	// from it.
	OnBatch func(Batch)
}

// PipelineResult is the outcome of one streamed backtesting run.
type PipelineResult struct {
	// Candidates are every candidate consumed from the stream, in arrival
	// order; Results is index-aligned with it. Under FirstAccepted some
	// batches may never run: those entries carry the candidate with a
	// zero verdict and Evaluated[i] is false.
	Candidates []metaprov.Candidate
	Results    []Result
	Evaluated  []bool
	// Batches counts the shared runs that completed.
	Batches int
	// EarlyStopped reports that FirstAccepted cut the run short.
	EarlyStopped bool
	// FirstBatchStart is when the first shared run launched (zero if none
	// did) — the overlap measurement point.
	FirstBatchStart time.Time
}

// EvaluatedCount returns how many candidates actually have verdicts.
func (pr *PipelineResult) EvaluatedCount() int {
	n := 0
	for _, ok := range pr.Evaluated {
		if ok {
			n++
		}
	}
	return n
}

// Run consumes the candidate stream until it closes (or the run stops
// early), backtesting batches as they fill. It returns the arrival-order
// verdicts; ctx cancellation stops unstarted batches and surfaces
// ctx.Err().
func (p *Pipeline) Run(ctx context.Context, cands <-chan metaprov.Candidate) (*PipelineResult, error) {
	batchSize := p.BatchSize
	if batchSize <= 0 || batchSize > MaxSharedCandidates {
		batchSize = MaxSharedCandidates
	}
	parallelism := p.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type span struct {
		idx, start int
		cands      []metaprov.Candidate
	}
	// Generously buffered so a burst of small batches never blocks the
	// dispatcher (and therefore the explorer) behind busy workers.
	work := make(chan span, 256)

	res := &PipelineResult{}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstErr   error
		searchDone bool
	)
	stopSearch := func() {
		if !searchDone {
			searchDone = true
			if p.CancelSearch != nil {
				p.CancelSearch()
			}
		}
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range work {
				if runCtx.Err() != nil {
					continue // drain: the batch stays unevaluated
				}
				sub := *p.Job
				sub.Candidates = sp.cands
				began := time.Now()
				// The run's replay watches runCtx, so a FirstAccepted stop
				// (or a failure elsewhere) aborts in-flight batches mid-replay
				// instead of letting them finish silently.
				out, st, err := sub.runShared(runCtx)
				ended := time.Now()
				mu.Lock()
				if err != nil {
					if firstErr == nil && runCtx.Err() == nil {
						firstErr = fmt.Errorf("backtest: batch %d: %w", sp.idx, err)
						stopSearch()
						cancel()
					}
					mu.Unlock()
					continue
				}
				copy(res.Results[sp.start:sp.start+len(out)], out)
				for i := range out {
					res.Evaluated[sp.start+i] = true
				}
				res.Batches++
				if p.OnBatch != nil {
					p.OnBatch(Batch{Index: sp.idx, Start: sp.start, Results: out, Began: began, Ended: ended, Stats: st})
				}
				if p.FirstAccepted && !res.EarlyStopped {
					for _, r := range out {
						if r.Accepted {
							res.EarlyStopped = true
							stopSearch()
							cancel()
							break
						}
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Dispatcher: accumulate arrivals, flush full batches immediately, and
	// flush the remainder when the stream closes. The slices backing
	// Results/Evaluated are only ever grown here; workers write disjoint
	// committed spans under mu.
	pendingFrom := 0
	batchIdx := 0
	flush := func() {
		mu.Lock()
		n := len(res.Candidates)
		if n > pendingFrom && runCtx.Err() == nil {
			sp := span{idx: batchIdx, start: pendingFrom, cands: res.Candidates[pendingFrom:n:n]}
			if res.FirstBatchStart.IsZero() {
				res.FirstBatchStart = time.Now()
			}
			batchIdx++
			pendingFrom = n
			mu.Unlock()
			select {
			case work <- sp:
			case <-runCtx.Done():
			}
			return
		}
		mu.Unlock()
	}
	for c := range cands {
		mu.Lock()
		res.Candidates = append(res.Candidates, c)
		res.Results = append(res.Results, Result{Candidate: c})
		res.Evaluated = append(res.Evaluated, false)
		n := len(res.Candidates)
		mu.Unlock()
		if n-pendingFrom >= batchSize {
			flush()
		}
	}
	flush()
	close(work)
	wg.Wait()

	mu.Lock()
	stopSearch()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}
