package backtest

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/trace"
)

// pipelineJob builds the Q1-mini job plus a candidate list for pipeline
// tests, reusing one diagnostic replay for both.
func pipelineJob(t *testing.T, max int) (*Job, []metaprov.Candidate) {
	t.Helper()
	job, rec := q1Job(t)
	ex := metaprov.NewExplorer(meta.NewModel(job.Prog), rec)
	ex.Cutoff = 3.2
	ex.MaxCandidates = max
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	cands := ex.Explore(metaprov.PinnedGoal("FlowTable", &v3, nil, nil, nil, &v80, &v2))
	if len(cands) < 4 {
		t.Fatalf("too few candidates: %d", len(cands))
	}
	return job, cands
}

// feed turns a slice into a candidate stream.
func feed(cands []metaprov.Candidate) <-chan metaprov.Candidate {
	ch := make(chan metaprov.Candidate)
	go func() {
		defer close(ch)
		for _, c := range cands {
			ch <- c
		}
	}()
	return ch
}

// TestPipelineMatchesBatched: filling batches from a stream must produce
// exactly the verdicts of the materialized batched run.
func TestPipelineMatchesBatched(t *testing.T) {
	job, cands := pipelineJob(t, 12)

	job.Candidates = cands
	ref, err := job.RunBatched(context.Background(), 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	p := &Pipeline{Job: job, BatchSize: 4, Parallelism: 2}
	res, err := p.Run(context.Background(), feed(cands))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(ref) {
		t.Fatalf("pipeline results = %d, batched = %d", len(res.Results), len(ref))
	}
	if res.EvaluatedCount() != len(cands) {
		t.Fatalf("evaluated %d of %d", res.EvaluatedCount(), len(cands))
	}
	wantBatches := (len(cands) + 3) / 4
	if res.Batches != wantBatches {
		t.Fatalf("batches = %d, want %d", res.Batches, wantBatches)
	}
	for i := range ref {
		if res.Results[i].Accepted != ref[i].Accepted || res.Results[i].Effective != ref[i].Effective {
			t.Errorf("candidate %d (%s): pipeline accepted=%v effective=%v, batched accepted=%v effective=%v",
				i, ref[i].Candidate.Describe(),
				res.Results[i].Accepted, res.Results[i].Effective, ref[i].Accepted, ref[i].Effective)
		}
		if res.Results[i].KS != ref[i].KS {
			t.Errorf("candidate %d: pipeline KS %v != batched %v", i, res.Results[i].KS, ref[i].KS)
		}
	}
}

// TestPipelineOverlapsProducer: a batch must complete while the producer
// is still emitting — the whole point of the streamed pipeline.
func TestPipelineOverlapsProducer(t *testing.T) {
	job, cands := pipelineJob(t, 12)

	var batchesSeen atomic.Int32
	release := make(chan struct{})
	ch := make(chan metaprov.Candidate)
	go func() {
		defer close(ch)
		for i, c := range cands {
			if i == len(cands)-1 {
				// Hold the last candidate back until a batch of the
				// earlier ones has finished.
				<-release
			}
			ch <- c
		}
	}()
	p := &Pipeline{
		Job: job, BatchSize: 2, Parallelism: 2,
		OnBatch: func(b Batch) {
			if batchesSeen.Add(1) == 1 {
				close(release)
			}
		},
	}
	res, err := p.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvaluatedCount() != len(cands) {
		t.Fatalf("evaluated %d of %d", res.EvaluatedCount(), len(cands))
	}
	if res.FirstBatchStart.IsZero() {
		t.Fatal("no batch launch recorded")
	}
}

// TestPipelineFirstAccepted: the first accepted repair stops the search
// and the remaining batches, without leaking goroutines.
func TestPipelineFirstAccepted(t *testing.T) {
	job, cands := pipelineJob(t, 12)

	before := runtime.NumGoroutine()
	var searchCancelled atomic.Bool
	produced := 0
	stop := make(chan struct{})
	ch := make(chan metaprov.Candidate)
	go func() {
		defer close(ch)
		for _, c := range cands {
			select {
			case ch <- c:
				produced++
			case <-stop:
				return
			}
		}
	}()
	p := &Pipeline{
		Job: job, BatchSize: 2, Parallelism: 1,
		FirstAccepted: true,
		CancelSearch: func() {
			if searchCancelled.CompareAndSwap(false, true) {
				close(stop)
			}
		},
	}
	res, err := p.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("pipeline did not stop early despite an accepted repair")
	}
	if !searchCancelled.Load() {
		t.Fatal("CancelSearch was not invoked")
	}
	accepted := false
	for i, ok := range res.Evaluated {
		if ok && res.Results[i].Accepted {
			accepted = true
		}
	}
	if !accepted {
		t.Fatal("early stop without an accepted verdict")
	}
	if res.EvaluatedCount() == len(cands) && len(res.Candidates) == len(cands) {
		// All candidates may evaluate if the accept lands in the last
		// batch; with the intuitive fix cheap and first, it must not.
		t.Fatalf("early stop evaluated everything: %d candidates", res.EvaluatedCount())
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// gateSource yields its base workload, then idles at the tail emitting
// harmless probe entries (unknown source host: Inject is a no-op) until it
// receives a completion token — or until the run's cancelSource aborts the
// scan. It lets a test hold a shared replay in-flight indefinitely.
type gateSource struct {
	base    []trace.Entry
	started chan struct{}
	tokens  chan struct{}
}

func (g *gateSource) Scan(fn func(trace.Entry) error) error {
	g.started <- struct{}{}
	for _, e := range g.base {
		if err := fn(e); err != nil {
			return err
		}
	}
	probe := trace.Entry{SrcHost: "gate-probe-no-such-host"}
	for {
		select {
		case <-g.tokens:
			return nil
		default:
		}
		if err := fn(probe); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineFirstAcceptedAbortsInflight: when one batch accepts, a shared
// run still replaying on another worker must be cancelled mid-replay — not
// allowed to finish silently — and no goroutine may leak.
func TestPipelineFirstAcceptedAbortsInflight(t *testing.T) {
	job, cands := pipelineJob(t, 12)

	// Find an accepted candidate so every batch below contains one.
	ref := *job
	ref.Candidates = cands
	refOut, err := ref.RunShared()
	if err != nil {
		t.Fatal(err)
	}
	accepted := -1
	for i, r := range refOut {
		if r.Accepted {
			accepted = i
			break
		}
	}
	if accepted < 0 {
		t.Fatal("no accepted candidate in the reference run")
	}

	before := runtime.NumGoroutine()
	gate := &gateSource{
		base:    job.Workload,
		started: make(chan struct{}, 4),
		tokens:  make(chan struct{}, 1),
	}
	sub := *job
	sub.Source = gate
	sub.Workload = nil

	// Two batches of two copies of the accepting candidate: both replays
	// park at the gate, one token releases exactly one of them, its accept
	// must abort the other mid-replay.
	stream := []metaprov.Candidate{cands[accepted], cands[accepted], cands[accepted], cands[accepted]}
	p := &Pipeline{Job: &sub, BatchSize: 2, Parallelism: 2, FirstAccepted: true}
	done := make(chan struct{})
	var res *PipelineResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = p.Run(context.Background(), feed(stream))
	}()
	<-gate.started
	<-gate.started // both batches are now in-flight
	gate.tokens <- struct{}{}

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pipeline did not return: the in-flight batch was not cancelled")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !res.EarlyStopped {
		t.Fatal("pipeline did not stop early")
	}
	if res.Batches != 1 {
		t.Fatalf("batches completed = %d, want 1 (the other must be aborted mid-replay)", res.Batches)
	}
	if res.EvaluatedCount() != 2 {
		t.Fatalf("evaluated %d candidates, want the released batch's 2", res.EvaluatedCount())
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestPipelineCancellation: parent-context cancellation surfaces and stops
// unstarted batches.
func TestPipelineCancellation(t *testing.T) {
	job, cands := pipelineJob(t, 12)

	ctx, cancel := context.WithCancel(context.Background())
	var batches atomic.Int32
	p := &Pipeline{
		Job: job, BatchSize: 1, Parallelism: 1,
		OnBatch: func(Batch) {
			if batches.Add(1) == 1 {
				cancel()
			}
		},
	}
	res, err := p.Run(ctx, feed(cands))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.EvaluatedCount() >= len(cands) {
		t.Fatalf("cancellation did not stop the pipeline: %d evaluated", res.EvaluatedCount())
	}
}

// TestPipelineEmptyStream: an empty candidate stream is a clean no-op.
func TestPipelineEmptyStream(t *testing.T) {
	job, _ := q1Job(t)
	p := &Pipeline{Job: job}
	res, err := p.Run(context.Background(), feed(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 || res.Batches != 0 {
		t.Fatalf("unexpected work on empty stream: %+v", res)
	}
}
