// Package bench implements the runtime-overhead measurements of §5.4: a
// Cbench-style stress test streams PacketIn events through the controller
// with and without provenance maintenance, measuring per-event latency and
// sustained throughput, and a storage accountant derives the on-disk
// logging rate from a traffic trace (120-byte records).
package bench

import (
	"fmt"
	"time"

	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// StressResult is one stress-test measurement.
type StressResult struct {
	Events     int
	Elapsed    time.Duration
	Throughput float64       // events per second
	MeanLat    time.Duration // mean per-event controller latency
	// Eval are the engine's work counters for the run — firings, and the
	// index-lookup vs full-scan split introduced by the join planner.
	Eval ndlog.EngineStats
}

// StressController streams n synthetic PacketIn events through a fresh
// engine compiled from prog; when withProvenance is set, a provenance
// recorder listens (the condition the paper measures against).
func StressController(prog *ndlog.Program, n int, withProvenance bool) (StressResult, error) {
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return StressResult{}, err
	}
	if withProvenance {
		eng.Listen(provenance.NewRecorder())
	}
	// Cbench-style: distinct flows round-robin over switches and ports.
	start := time.Now()
	for i := 0; i < n; i++ {
		eng.Insert(ndlog.NewTuple("PacketIn",
			ndlog.Str("C"),
			ndlog.Int(int64(1+i%4)),       // switch
			ndlog.Int(int64(1+i%8)),       // in port
			ndlog.Int(int64(1000+i%251)),  // src ip
			ndlog.Int(201),                // dst ip
			ndlog.Int(int64(1024+i%6000)), // src port
			ndlog.Int(80),
		))
	}
	elapsed := time.Since(start)
	res := StressResult{Events: n, Elapsed: elapsed, Eval: eng.Stats}
	if elapsed > 0 {
		res.Throughput = float64(n) / elapsed.Seconds()
		res.MeanLat = elapsed / time.Duration(n)
	}
	return res, nil
}

// JoinStressProgram is a 3-way join driven by probe events — the single
// source of truth for the join shape both BenchmarkEngineJoin and
// JoinStress measure; it exercises the planner and hash indexes so the
// engine's index-lookup/scan counters are meaningful (scenario controllers
// are mostly single-atom reactive rules, which never extend a join).
const JoinStressProgram = `
materialize(Link, 1, 2, keys(0,1)).
materialize(Cost, 1, 2, keys(0,1)).
materialize(TwoHop, 1, 3, keys(0,1,2)).
j TwoHop(@X,Z,C) :- Probe(@X), Link(@X,Y), Link(@Y,Z), Cost(@Z,C).
`

// JoinStress streams probe events through the 3-way-join program over
// tables of the given size and returns the measurement, including the
// engine's evaluation counters (index lookups vs scans).
func JoinStress(rows, probes int) (StressResult, error) {
	if rows <= 0 || probes <= 0 {
		return StressResult{}, fmt.Errorf("bench: JoinStress needs positive rows and probes, got %d/%d", rows, probes)
	}
	prog, err := ndlog.Parse("joinstress", JoinStressProgram)
	if err != nil {
		return StressResult{}, err
	}
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return StressResult{}, err
	}
	for n := 0; n < rows; n++ {
		eng.Insert(ndlog.NewTuple("Link", ndlog.Int(int64(n)), ndlog.Int(int64((n+1)%rows))))
		eng.Insert(ndlog.NewTuple("Cost", ndlog.Int(int64(n)), ndlog.Int(int64(10*n))))
	}
	start := time.Now()
	for p := 0; p < probes; p++ {
		eng.Insert(ndlog.NewTuple("Probe", ndlog.Int(int64(p%rows))))
	}
	elapsed := time.Since(start)
	res := StressResult{Events: probes, Elapsed: elapsed, Eval: eng.Stats}
	if elapsed > 0 {
		res.Throughput = float64(probes) / elapsed.Seconds()
		res.MeanLat = elapsed / time.Duration(probes)
	}
	return res, nil
}

// Overhead compares provenance-on vs provenance-off stress runs and
// returns the relative latency increase and throughput reduction — the
// §5.4 quantities (the paper reports +4.2% latency, −9.8% throughput).
func Overhead(prog *ndlog.Program, n int) (latencyIncrease, throughputReduction float64, on, off StressResult, err error) {
	off, err = StressController(prog, n, false)
	if err != nil {
		return 0, 0, on, off, err
	}
	on, err = StressController(prog, n, true)
	if err != nil {
		return 0, 0, on, off, err
	}
	if off.MeanLat > 0 {
		latencyIncrease = float64(on.MeanLat-off.MeanLat) / float64(off.MeanLat)
	}
	if off.Throughput > 0 {
		throughputReduction = (off.Throughput - on.Throughput) / off.Throughput
	}
	return latencyIncrease, throughputReduction, on, off, nil
}

// StorageRate computes the §5.4 logging rate for an in-memory trace:
// bytes per simulated second per switch under the binary codec's
// fixed-width records. The trace timeline uses its own tick unit;
// ticksPerSecond calibrates it.
func StorageRate(entries []trace.Entry, switches int, ticksPerSecond float64) (bytesPerSecPerSwitch float64) {
	if len(entries) == 0 {
		return 0
	}
	return storageRate(trace.Bytes(entries),
		entries[len(entries)-1].Time-entries[0].Time, switches, ticksPerSecond)
}

// StorageRateFromStore computes the same rate from a durable trace
// store, using the real on-disk segment sizes and the segment indexes'
// timestamp range — the accountant measures what the log actually
// costs, codec overhead included, instead of multiplying by a constant.
func StorageRateFromStore(st *tracestore.Store, switches int, ticksPerSecond float64) (bytesPerSecPerSwitch float64) {
	stats := st.Stats()
	if stats.Entries == 0 {
		return 0
	}
	return storageRate(stats.Bytes, stats.MaxTime-stats.MinTime, switches, ticksPerSecond)
}

func storageRate(totalBytes, ticks int64, switches int, ticksPerSecond float64) float64 {
	if totalBytes == 0 || switches <= 0 || ticksPerSecond <= 0 {
		return 0
	}
	if ticks <= 0 {
		ticks = 1
	}
	seconds := float64(ticks) / ticksPerSecond
	return float64(totalBytes) / seconds / float64(switches)
}

// DeltaStressProgram is the rule-edit stress shape: two copies of a
// stored-state 3-way join deriving the same TwoHop tuples, so retracting
// one copy exercises the counted-derivation recount path (the tuple
// survives on the twin's support) while retracting both kills tuples and
// re-asserting re-seeds them from stored state.
const DeltaStressProgram = `
materialize(Link, 1, 2, keys(0,1)).
materialize(Cost, 1, 2, keys(0,1)).
materialize(TwoHop, 1, 3, keys(0,1,2)).
d1 TwoHop(@X,Z,C) :- Link(@X,Y), Link(@Y,Z), Cost(@Z,C).
d2 TwoHop(@X,Z,C) :- Link(@X,Y), Link(@Y,Z), Cost(@Z,C).
`

// DeltaStress measures the engine's incremental rule-edit path
// (RetractRule / AssertRule): the twin-join program is materialized over
// rows-sized tables, then both join rules are retracted and re-asserted
// edits times. Retracting the first twin decrements support counts
// without killing tuples (RecountedTuples), retracting the second
// underives them through the DRed cascade (DeltaRetractions), and each
// re-assert seeds the rule against stored state (DeltaInserts) — the
// counters the overhead report and the ndlog_delta_* metric families
// surface. Events counts edit rounds; MeanLat is the mean round trip.
func DeltaStress(rows, edits int) (StressResult, error) {
	if rows <= 0 || edits <= 0 {
		return StressResult{}, fmt.Errorf("bench: DeltaStress needs positive rows and edits, got %d/%d", rows, edits)
	}
	prog, err := ndlog.Parse("deltastress", DeltaStressProgram)
	if err != nil {
		return StressResult{}, err
	}
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return StressResult{}, err
	}
	for n := 0; n < rows; n++ {
		eng.Insert(ndlog.NewTuple("Link", ndlog.Int(int64(n)), ndlog.Int(int64((n+1)%rows))))
		eng.Insert(ndlog.NewTuple("Cost", ndlog.Int(int64(n)), ndlog.Int(int64(10*n))))
	}
	start := time.Now()
	for i := 0; i < edits; i++ {
		r1, err := eng.RetractRule("d1")
		if err != nil {
			return StressResult{}, err
		}
		r2, err := eng.RetractRule("d2")
		if err != nil {
			return StressResult{}, err
		}
		if _, err := eng.AssertRule(r1); err != nil {
			return StressResult{}, err
		}
		if _, err := eng.AssertRule(r2); err != nil {
			return StressResult{}, err
		}
	}
	elapsed := time.Since(start)
	res := StressResult{Events: edits, Elapsed: elapsed, Eval: eng.Stats}
	if elapsed > 0 {
		res.Throughput = float64(edits) / elapsed.Seconds()
		res.MeanLat = elapsed / time.Duration(edits)
	}
	return res, nil
}
