package bench

import (
	"testing"

	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

const stressProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
f1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Dpt == 80, Prt := 1.
`

func TestStressController(t *testing.T) {
	prog := ndlog.MustParse("stress", stressProgram)
	res, err := StressController(prog, 2000, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 2000 || res.Throughput <= 0 || res.MeanLat <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestOverheadDirection(t *testing.T) {
	prog := ndlog.MustParse("stress", stressProgram)
	latInc, thrRed, on, off, err := Overhead(prog, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Provenance recording must cost something (cloning tuples per
	// derivation), but not be catastrophic.
	if on.Throughput <= 0 || off.Throughput <= 0 {
		t.Fatalf("throughputs: on=%v off=%v", on.Throughput, off.Throughput)
	}
	if thrRed < -0.5 {
		t.Fatalf("provenance made the controller 50%% faster? %v", thrRed)
	}
	t.Logf("latency increase = %.1f%%, throughput reduction = %.1f%%", 100*latInc, 100*thrRed)
}

func TestStorageRate(t *testing.T) {
	entries := trace.Generate(trace.Config{
		Seed:     1,
		Sources:  []trace.HostSpec{{ID: "h", IP: 1}},
		Services: []trace.Service{{DstIP: 2, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
		Flows:    500,
	})
	rate := StorageRate(entries, 2, 1000)
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
	if StorageRate(nil, 2, 1000) != 0 {
		t.Fatal("empty trace should rate 0")
	}
}

func TestStorageRateFromStore(t *testing.T) {
	entries := trace.Generate(trace.Config{
		Seed:     1,
		Sources:  []trace.HostSpec{{ID: "h", IP: 1}},
		Services: []trace.Service{{DstIP: 2, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
		Flows:    500,
	})
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{SegmentEntries: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got := StorageRateFromStore(st, 2, 1000)
	// The binary codec's fixed-width records make the store-measured
	// rate agree exactly with the in-memory accountant.
	if want := StorageRate(entries, 2, 1000); got != want {
		t.Fatalf("store rate %v != slice rate %v", got, want)
	}
	empty, err := tracestore.Open(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if StorageRateFromStore(empty, 2, 1000) != 0 {
		t.Fatal("empty store should rate 0")
	}
}
