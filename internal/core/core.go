// Package core is the public face of the meta-provenance debugger: it ties
// the NDlog engine, provenance recorder, meta-provenance explorer, repair
// generator, and backtesting engine into the workflow the paper describes
// (§2): the operator specifies an observed problem, and the debugger
// returns a causal explanation plus a ranked list of suggested repairs
// that fix the problem with few side effects.
//
// Typical use:
//
//	dbg, _ := core.NewDebugger(program)
//	net := buildNetwork()            // attach dbg.Controller() to it
//	...run traffic...
//	goal := core.Missing("FlowTable", pin(3), nil, pin(201), nil, pin(80), pin(2))
//	report, _ := dbg.Suggest(core.Symptom{Goal: goal}, backtestJob)
//	for _, s := range report.Suggestions { fmt.Println(s) }
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/backtest"
	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/sdn"
)

// Debugger wires a controller program to the provenance and repair
// machinery.
type Debugger struct {
	Prog     *ndlog.Program
	Engine   *ndlog.Engine
	Recorder *provenance.Recorder
	ctl      *sdn.NDlogController

	// Explorer tuning applied to every Suggest call; nil uses defaults.
	Tune func(*metaprov.Explorer)
}

// NewDebugger compiles the program and attaches a provenance recorder.
func NewDebugger(prog *ndlog.Program) (*Debugger, error) {
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	rec := provenance.NewRecorder()
	eng.Listen(rec)
	return &Debugger{
		Prog:     prog,
		Engine:   eng,
		Recorder: rec,
		ctl:      sdn.NewNDlogController(eng),
	}, nil
}

// Controller returns the SDN controller backed by the debugger's engine;
// attach it to a Network so control-plane history is recorded.
func (d *Debugger) Controller() *sdn.NDlogController { return d.ctl }

// Symptom describes the observed problem: either a missing tuple (Goal)
// or an unwanted existing tuple (Present).
type Symptom struct {
	Goal    metaprov.Goal
	Present *ndlog.Tuple
}

// Missing builds a missing-tuple symptom; nil entries are unconstrained.
func Missing(table string, args ...*ndlog.Value) Symptom {
	return Symptom{Goal: metaprov.PinnedGoal(table, args...)}
}

// Present builds an unwanted-tuple symptom.
func Present(t ndlog.Tuple) Symptom { return Symptom{Present: &t} }

// Pin is a helper to build pinned symptom arguments.
func Pin(v int64) *ndlog.Value {
	x := ndlog.Int(v)
	return &x
}

// Suggestion is one ranked repair.
type Suggestion struct {
	Rank      int
	Candidate metaprov.Candidate
	Result    backtest.Result
}

// String renders the suggestion as the debugger presents it.
func (s Suggestion) String() string {
	mark := "rejected"
	if s.Result.Accepted {
		mark = "accepted"
	}
	return fmt.Sprintf("#%d [%s, cost %.1f, KS %.5f] %s",
		s.Rank, mark, s.Candidate.Cost, s.Result.KS, s.Candidate.Describe())
}

// Report is the outcome of a Suggest call.
type Report struct {
	// Explanation is the provenance tree for the symptom (positive
	// provenance for Present symptoms; the candidate meta-provenance
	// trees cover missing symptoms).
	Explanation *provenance.Vertex
	// Suggestions are all backtested candidates, accepted first, then by
	// complexity (cost) — the §5.3 presentation order.
	Suggestions []Suggestion
	// Accepted counts suggestions that passed backtesting.
	Accepted int
}

// Explain returns the classic provenance explanation for a tuple (§2.2).
func (d *Debugger) Explain(t ndlog.Tuple) *provenance.Vertex {
	return d.Recorder.Explain(t)
}

// ExplainMissing returns the negative provenance explanation (§2.2).
func (d *Debugger) ExplainMissing(table string, filter []*ndlog.Value) *provenance.Vertex {
	return d.Recorder.ExplainMissing(d.Prog, table, filter)
}

// Suggest generates repair candidates for the symptom via meta provenance
// and backtests them with the supplied job configuration (BuildNet,
// Workload, Effective; Prog and Candidates are filled in by Suggest).
func (d *Debugger) Suggest(sym Symptom, job backtest.Job) (*Report, error) {
	ex := metaprov.NewExplorer(meta.NewModel(d.Prog), d.Recorder)
	ex.MaxCandidates = 24 // leave room in the shared backtest's 63 tags
	if d.Tune != nil {
		d.Tune(ex)
	}
	rep := &Report{}
	var cands []metaprov.Candidate
	switch {
	case sym.Present != nil:
		rep.Explanation = d.Recorder.Explain(*sym.Present)
		cands = ex.RepairPositive(*sym.Present, d.Recorder)
	case sym.Goal.Table != "":
		rep.Explanation = d.Recorder.ExplainMissing(d.Prog, sym.Goal.Table, nil)
		cands = ex.Explore(sym.Goal)
	default:
		return nil, fmt.Errorf("core: empty symptom")
	}

	if len(cands) > 63 {
		cands = cands[:63] // cost order keeps the most plausible repairs
	}
	job.Prog = d.Prog
	job.Candidates = cands
	results, err := job.RunShared()
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		rep.Suggestions = append(rep.Suggestions, Suggestion{Rank: i + 1, Candidate: cands[i], Result: r})
		if r.Accepted {
			rep.Accepted++
		}
	}
	// Accepted first, then by cost — "the simplest candidate is shown
	// first" (§5.3).
	sort.SliceStable(rep.Suggestions, func(i, j int) bool {
		si, sj := rep.Suggestions[i], rep.Suggestions[j]
		if si.Result.Accepted != sj.Result.Accepted {
			return si.Result.Accepted
		}
		return si.Candidate.Cost < sj.Candidate.Cost
	})
	for i := range rep.Suggestions {
		rep.Suggestions[i].Rank = i + 1
	}
	return rep, nil
}

// Render pretty-prints a report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d suggestion(s), %d accepted\n", len(r.Suggestions), r.Accepted)
	for _, s := range r.Suggestions {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}
