package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/backtest"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
)

const miniProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < 64, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip >= 64, Prt := 3.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
`

func miniNet() *sdn.Network {
	n := sdn.NewNetwork()
	s1, s2, s3 := sdn.NewSwitch("s1", 1), sdn.NewSwitch("s2", 2), sdn.NewSwitch("s3", 3)
	n.AddSwitch(s1)
	n.AddSwitch(s2)
	n.AddSwitch(s3)
	s1.Wire(2, "s2")
	s2.Wire(3, "s1")
	s1.Wire(3, "s3")
	s3.Wire(3, "s1")
	n.AddHostAt(sdn.NewHost("h1", 201, "s2"), 1)
	n.AddHostAt(sdn.NewHost("h2", 202, "s3"), 2)
	for i := 1; i <= 64; i++ {
		n.AddHostAt(sdn.NewHost(fmt.Sprintf("c%02d", i), int64(i), "s1"), 10+i)
	}
	return n
}

func miniWorkload() []trace.Entry {
	var sources []trace.HostSpec
	for i := 1; i <= 64; i++ {
		sources = append(sources, trace.HostSpec{ID: fmt.Sprintf("c%02d", i), IP: int64(i)})
	}
	return trace.Generate(trace.Config{
		Seed:     7,
		Sources:  sources,
		Services: []trace.Service{{DstIP: 201, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
		Flows:    400,
	})
}

func runDiagnostic(t *testing.T) (*Debugger, []trace.Entry) {
	t.Helper()
	dbg, err := NewDebugger(ndlog.MustParse("mini", miniProgram))
	if err != nil {
		t.Fatal(err)
	}
	net := miniNet()
	net.Ctrl = dbg.Controller()
	wl := miniWorkload()
	trace.Replay(net, wl, 1)
	return dbg, wl
}

func TestSuggestMissingTuple(t *testing.T) {
	dbg, wl := runDiagnostic(t)
	report, err := dbg.Suggest(
		Missing("FlowTable", Pin(3), nil, nil, nil, Pin(80), Pin(2)),
		backtest.Job{
			BuildNet: miniNet,
			Workload: wl,
			Effective: func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["h2"].PortCountFor(sdn.PortHTTP, tag) > 0
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suggestions) == 0 || report.Accepted == 0 {
		t.Fatalf("suggestions=%d accepted=%d", len(report.Suggestions), report.Accepted)
	}
	// Accepted suggestions must come first and the top one must be the
	// paper's fix.
	top := report.Suggestions[0]
	if !top.Result.Accepted {
		t.Fatalf("top suggestion not accepted: %v", top)
	}
	if !strings.Contains(top.Candidate.Describe(), "change constant 2 in r7 (sel/0/R) to 3") {
		t.Fatalf("top suggestion = %q", top.Candidate.Describe())
	}
	for i := 1; i < len(report.Suggestions); i++ {
		if report.Suggestions[i].Result.Accepted && !report.Suggestions[i-1].Result.Accepted {
			t.Fatal("accepted suggestion ranked after a rejected one")
		}
	}
	if !strings.Contains(report.Render(), "accepted") {
		t.Fatal("Render missing verdicts")
	}
	if report.Explanation == nil {
		t.Fatal("missing negative-provenance explanation")
	}
}

func TestSuggestPresentTuple(t *testing.T) {
	dbg, wl := runDiagnostic(t)
	// The buggy r7 derives FlowTable(2,...,2) entries that hijack S2's
	// HTTP toward the unwired port 2: a positive symptom. Find one
	// concrete bad tuple from the recorder.
	var bad *ndlog.Tuple
	for _, tp := range dbg.Recorder.TuplesOf("FlowTable") {
		if tp.Args[0].Int == 2 && tp.Args[5].Int == 2 {
			c := tp.Clone()
			bad = &c
			break
		}
	}
	if bad == nil {
		t.Fatal("no bad flow entry recorded")
	}
	report, err := dbg.Suggest(Present(*bad), backtest.Job{
		BuildNet: miniNet,
		Workload: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Suggestions) == 0 {
		t.Fatal("no positive-symptom suggestions")
	}
	all := ""
	for _, s := range report.Suggestions {
		all += s.Candidate.Describe() + "\n"
	}
	if !strings.Contains(all, "r7") {
		t.Fatalf("no r7 repair among positive suggestions:\n%s", all)
	}
	if report.Explanation == nil || report.Explanation.Size() < 2 {
		t.Fatal("positive symptom must carry a provenance explanation")
	}
}

func TestSuggestEmptySymptom(t *testing.T) {
	dbg, _ := runDiagnostic(t)
	if _, err := dbg.Suggest(Symptom{}, backtest.Job{BuildNet: miniNet}); err == nil {
		t.Fatal("expected empty-symptom error")
	}
}

func TestExplainFacades(t *testing.T) {
	dbg, _ := runDiagnostic(t)
	tuples := dbg.Recorder.TuplesOf("FlowTable")
	if len(tuples) == 0 {
		t.Fatal("no recorded flow entries")
	}
	if v := dbg.Explain(tuples[0]); v == nil || v.Size() < 2 {
		t.Fatal("Explain returned a trivial tree")
	}
	if v := dbg.ExplainMissing("FlowTable", nil); v == nil || len(v.Children) == 0 {
		t.Fatal("ExplainMissing returned no NDERIVE children")
	}
}

func TestNewDebuggerRejectsBadProgram(t *testing.T) {
	bad := &ndlog.Program{Name: "bad", Rules: []*ndlog.Rule{{ID: "r"}}}
	if _, err := NewDebugger(bad); err == nil {
		t.Fatal("expected compile error")
	}
}
