// Package cost implements the plausibility cost model of §3.5: common bug
// patterns (off-by-one constants, flipped comparison operators) get low
// costs, unlikely edits (new rules, new tables) get high costs, so the
// meta-provenance forest explores the most plausible repairs first. The
// relative ordering follows the bug-fix pattern study of Pan et al.
// ("Toward an understanding of bug fix patterns", ESE 14(3), 2009), which
// the paper cites as the basis for its metric.
package cost

// Kind enumerates repair change kinds, ordered roughly by plausibility.
type Kind uint8

const (
	// ChangeConstant replaces one constant with another (e.g. Swi==2 →
	// Swi==3). Pan et al.: the single most common fix pattern.
	ChangeConstant Kind = iota
	// ChangeOperator flips a comparison operator (== → !=, < → <=, ...).
	ChangeOperator
	// ChangeVariable substitutes one variable for another of the same type.
	ChangeVariable
	// InsertBaseTuple manually installs a base tuple (e.g. a flow entry).
	InsertBaseTuple
	// DeleteBaseTuple manually removes a base tuple.
	DeleteBaseTuple
	// DeleteSelection removes a selection predicate from a rule.
	DeleteSelection
	// DeleteBodyPredicate removes a whole body predicate from a rule.
	DeleteBodyPredicate
	// CopyRule duplicates an existing rule with a modified head or guard.
	CopyRule
	// DeleteRule removes an entire rule.
	DeleteRule
	// AddRule writes an entirely new rule.
	AddRule
	// AddTable defines a new table.
	AddTable
)

var names = [...]string{
	"change-constant", "change-operator", "change-variable",
	"insert-base-tuple", "delete-base-tuple", "delete-selection",
	"delete-body-predicate", "copy-rule", "delete-rule", "add-rule",
	"add-table",
}

// String returns the kind's kebab-case name.
func (k Kind) String() string {
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// Of returns the cost of one change of the given kind.
func Of(k Kind) float64 {
	switch k {
	case ChangeConstant:
		return 1
	case ChangeOperator:
		return 1.5
	case ChangeVariable:
		return 2
	case InsertBaseTuple:
		return 2.5
	case DeleteBaseTuple:
		return 2.5
	case DeleteSelection:
		return 3
	case DeleteBodyPredicate:
		return 4
	case CopyRule:
		return 5
	case DeleteRule:
		return 6
	case AddRule:
		return 8
	case AddTable:
		return 12
	}
	return 100
}

// ExpandStep is the small per-vertex exploration cost that guarantees
// progress in the forest search (Appendix D: without it, a tree could be
// expanded forever without ever making a program change).
const ExpandStep = 0.01

// DefaultCutoff is the default cost bound for exploration: changes beyond
// this combined cost are considered implausible and never materialized
// (§5.3 bounds the cost when generating Table 1's candidates).
const DefaultCutoff = 9.0
