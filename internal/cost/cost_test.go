package cost

import "testing"

func TestCostOrderingMatchesPlausibility(t *testing.T) {
	// §3.5: common errors cost less than unlikely ones. The total order
	// below is the one the repair rankings in Tables 2 and 6 rely on.
	order := []Kind{
		ChangeConstant, ChangeOperator, ChangeVariable, InsertBaseTuple,
		DeleteSelection, DeleteBodyPredicate, CopyRule, DeleteRule,
		AddRule, AddTable,
	}
	for i := 1; i < len(order); i++ {
		if Of(order[i-1]) >= Of(order[i]) {
			t.Errorf("%s (%.1f) should cost less than %s (%.1f)",
				order[i-1], Of(order[i-1]), order[i], Of(order[i]))
		}
	}
}

func TestExpandStepIsNegligible(t *testing.T) {
	// The per-vertex exploration cost must never dominate a real change
	// at realistic tree depths (~20 expansions), or the cost order
	// degenerates into a depth penalty (Appendix D).
	if ExpandStep*20 >= Of(ChangeConstant) {
		t.Fatalf("ExpandStep %v too large relative to the cheapest change", ExpandStep)
	}
	if ExpandStep <= 0 {
		t.Fatal("ExpandStep must be positive to guarantee progress")
	}
}

func TestNames(t *testing.T) {
	if ChangeConstant.String() != "change-constant" || AddTable.String() != "add-table" {
		t.Fatal("kind names broken")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render as unknown")
	}
	if Of(Kind(200)) <= Of(AddTable) {
		t.Fatal("unknown kinds must be prohibitively expensive")
	}
}

func TestDefaultCutoffAdmitsPaperRepairs(t *testing.T) {
	// The Table 2 repairs the paper reports include double deletions
	// (cost 6) and rule copies (cost 5): the default cutoff must admit
	// them while excluding whole-rule rewrites.
	if DefaultCutoff < Of(DeleteSelection)*2 {
		t.Fatal("cutoff excludes double deletions")
	}
	if DefaultCutoff < Of(CopyRule) {
		t.Fatal("cutoff excludes rule copies")
	}
	if DefaultCutoff >= Of(AddTable) {
		t.Fatal("cutoff admits new-table definitions")
	}
}
