// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the appendices) on the simulated substrate. Each
// function returns a printable artifact; cmd/experiments renders them all
// and the repository-root benchmarks time them. Absolute numbers differ
// from the paper (its testbed was Mininet on a 2013 workstation; ours is
// an in-process simulator), but the shapes — who wins, by what factor,
// where growth is linear — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/scenarios"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/metarepair"
	"repro/scenario"
)

// Table1Row is one row of Table 1: candidates generated vs surviving.
type Table1Row struct {
	Name      string
	Query     string
	Generated int
	Passed    int
}

// Table1 runs the five diagnostic queries end to end.
func Table1(ctx context.Context, sc scenarios.Scale) ([]Table1Row, error) {
	var rows []Table1Row
	for _, s := range scenarios.All(sc) {
		out, err := s.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rows = append(rows, Table1Row{Name: s.Name, Query: s.Query, Generated: out.Generated, Passed: out.Passed})
	}
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: diagnostic queries — candidates generated / after backtesting\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-3s %-66s %d/%d\n", r.Name, r.Query, r.Generated, r.Passed)
	}
	return b.String()
}

// CandidateRow is one row of Tables 2 and 6.
type CandidateRow struct {
	Desc     string
	KS       float64
	Accepted bool
}

// CandidateTable runs one scenario and returns its candidate rows.
func CandidateTable(ctx context.Context, s *scenario.Scenario) ([]CandidateRow, error) {
	out, err := s.Run(ctx)
	if err != nil {
		return nil, err
	}
	var rows []CandidateRow
	for _, r := range out.Results {
		rows = append(rows, CandidateRow{Desc: r.Candidate.Describe(), KS: r.KS, Accepted: r.Accepted})
	}
	return rows, nil
}

// FormatCandidates renders a Table 2 / Table 6 panel.
func FormatCandidates(title string, rows []CandidateRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, r := range rows {
		mark := "5" // the paper's rejected mark
		if r.Accepted {
			mark = "3" // the paper's accepted check mark
		}
		fmt.Fprintf(&b, "  %c %-72s (%s)  %.5f\n", 'A'+i%26, clip(r.Desc, 72), mark, r.KS)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// Table3Row is one cell group of Table 3: a scenario under one language.
type Table3Row struct {
	Scenario  string
	Language  string
	Supported bool
	Generated int
	Passed    int
	Filtered  int
}

// Table3 reruns the scenarios under the Trema and Pyretic front-ends.
func Table3(ctx context.Context, sc scenarios.Scale) ([]Table3Row, error) {
	var rows []Table3Row
	for _, lang := range []scenario.Language{scenario.TremaLang(), scenario.PyreticLang()} {
		for _, s := range scenarios.All(sc) {
			out, err := s.RunWithLanguage(ctx, lang)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Name, lang.Name, err)
			}
			rows = append(rows, Table3Row{
				Scenario: s.Name, Language: lang.Name, Supported: out.Supported,
				Generated: out.Generated, Passed: out.Passed, Filtered: out.Filtered,
			})
		}
	}
	return rows, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: candidates generated/passed under Trema and Pyretic\n")
	for _, r := range rows {
		cell := "-"
		if r.Supported {
			cell = fmt.Sprintf("%d/%d", r.Generated, r.Passed)
			if r.Filtered > 0 {
				cell += fmt.Sprintf(" (%d inexpressible)", r.Filtered)
			}
		}
		fmt.Fprintf(&b, "  %-8s %-4s %s\n", r.Language, r.Scenario, cell)
	}
	return b.String()
}

// Figure9aRow is one bar of Figure 9a: the turnaround breakdown.
type Figure9aRow struct {
	Name   string
	Timing scenario.Timing
}

// Figure9a measures repair-generation turnaround per scenario.
func Figure9a(ctx context.Context, sc scenarios.Scale) ([]Figure9aRow, error) {
	var rows []Figure9aRow
	for _, s := range scenarios.All(sc) {
		out, err := s.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		rows = append(rows, Figure9aRow{Name: s.Name, Timing: out.Timing})
	}
	return rows, nil
}

// FormatFigure9a renders the Figure 9a series. The overlap column is ours,
// not the paper's: under the streaming pipeline the explore and replay
// phases run concurrently, and overlap is how much of the phase total was
// hidden that way (wall clock ≈ total − overlap).
func FormatFigure9a(rows []Figure9aRow) string {
	var b strings.Builder
	b.WriteString("Figure 9a: turnaround time breakdown per scenario\n")
	b.WriteString("  scenario  history     solving     patch-gen   replay      overlap     total\n")
	for _, r := range rows {
		t := r.Timing
		fmt.Fprintf(&b, "  %-8s  %-10v  %-10v  %-10v  %-10v  %-10v  %v\n",
			r.Name, t.HistoryLookups.Round(time.Microsecond),
			t.ConstraintSolving.Round(time.Microsecond),
			t.PatchGeneration.Round(time.Microsecond),
			t.Replay.Round(time.Microsecond),
			t.Overlap.Round(time.Microsecond),
			t.Total().Round(time.Microsecond))
	}
	return b.String()
}

// Figure9bRow is one point of Figure 9b: backtesting the first k
// candidates sequentially vs with the multi-query optimization.
type Figure9bRow struct {
	K          int
	Sequential time.Duration
	Shared     time.Duration
}

// Figure9b measures backtesting time for growing candidate prefixes of
// the Q1 candidate list, comparing the per-candidate strategy against the
// §4.4 multi-query shared run via the session's strategy option.
func Figure9b(ctx context.Context, sc scenarios.Scale, maxK int) ([]Figure9bRow, error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return nil, err
	}
	expl, err := sess.Explore(ctx, s.Symptom())
	if err != nil {
		return nil, err
	}
	cands := expl.Candidates
	if maxK > len(cands) {
		maxK = len(cands)
	}
	timeStrategy := func(k int, strat metarepair.Strategy) (time.Duration, error) {
		start := time.Now()
		run, err := sess.Evaluate(ctx, cands[:k], s.Backtest(), metarepair.WithStrategy(strat))
		if err != nil {
			return 0, err
		}
		if _, err := run.Wait(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	var rows []Figure9bRow
	for k := 1; k <= maxK; k++ {
		seq, err := timeStrategy(k, metarepair.StrategySequential)
		if err != nil {
			return nil, err
		}
		shr, err := timeStrategy(k, metarepair.StrategySerial)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure9bRow{K: k, Sequential: seq, Shared: shr})
	}
	return rows, nil
}

// FormatFigure9b renders the Figure 9b series.
func FormatFigure9b(rows []Figure9bRow) string {
	var b strings.Builder
	b.WriteString("Figure 9b: time to backtest the first k repair candidates\n")
	b.WriteString("  k   sequential   multi-query   speedup\n")
	for _, r := range rows {
		sp := 0.0
		if r.Shared > 0 {
			sp = float64(r.Sequential) / float64(r.Shared)
		}
		fmt.Fprintf(&b, "  %-3d %-12v %-13v %.1fx\n",
			r.K, r.Sequential.Round(time.Millisecond), r.Shared.Round(time.Millisecond), sp)
	}
	return b.String()
}

// Figure9cRow is one point of Figure 9c: turnaround vs network size.
type Figure9cRow struct {
	Switches int
	Hosts    int
	Timing   scenario.Timing
}

// Figure9c scales the Q1 network from 19 to 169 switches.
func Figure9c(ctx context.Context, sizes []int, flows int) ([]Figure9cRow, error) {
	var rows []Figure9cRow
	for _, n := range sizes {
		s := scenarios.Q1(scenarios.Scale{Switches: n, Flows: flows})
		out, err := s.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("switches=%d: %w", n, err)
		}
		rows = append(rows, Figure9cRow{
			Switches: len(s.BuildNet().Switches),
			Hosts:    len(s.BuildNet().Hosts),
			Timing:   out.Timing,
		})
	}
	return rows, nil
}

// FormatFigure9c renders the Figure 9c series.
func FormatFigure9c(rows []Figure9cRow) string {
	var b strings.Builder
	b.WriteString("Figure 9c: Q1 turnaround vs network size\n")
	b.WriteString("  switches hosts   history     solving     patch-gen   replay      total\n")
	for _, r := range rows {
		t := r.Timing
		fmt.Fprintf(&b, "  %-8d %-7d %-10v  %-10v  %-10v  %-10v  %v\n",
			r.Switches, r.Hosts,
			t.HistoryLookups.Round(time.Microsecond),
			t.ConstraintSolving.Round(time.Microsecond),
			t.PatchGeneration.Round(time.Microsecond),
			t.Replay.Round(time.Microsecond),
			t.Total().Round(time.Microsecond))
	}
	return b.String()
}

// Figure10Row is one point of Figure 10 (Appendix A): turnaround vs
// program size.
type Figure10Row struct {
	Lines      int
	Candidates int
	Timing     scenario.Timing
}

// AugmentProgram appends inert operational-zone policies (ACL drop rules
// for high port ranges) until the program's Trema rendering reaches at
// least the requested line count — the Appendix A methodology.
func AugmentProgram(prog *ndlog.Program, lines int) *ndlog.Program {
	p := prog.Clone()
	if p.Decl("Acl") == nil {
		p.Decls = append(p.Decls, &ndlog.TableDecl{
			Name: "Acl", Arity: 6, Timeout: 1, Keys: []int{0, 1, 2, 3, 4},
		})
	}
	i := 0
	for p.LineCount()*3 < lines { // each rule renders as ~3 Trema lines
		i++
		src := fmt.Sprintf(
			"z%d Acl(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == %d, Dpt == %d, Prt := -1.",
			i, 900+i, 10000+i)
		rp := ndlog.MustParse("zone", src)
		p.Rules = append(p.Rules, rp.Rules[0])
	}
	return p
}

// Figure10 scales the Q1 controller program from ~100 to ~900 lines.
func Figure10(ctx context.Context, lineSizes []int, sc scenarios.Scale) ([]Figure10Row, error) {
	var rows []Figure10Row
	for _, lines := range lineSizes {
		s := scenarios.Q1(sc)
		s.Prog = AugmentProgram(s.Prog, lines)
		out, err := s.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("lines=%d: %w", lines, err)
		}
		rows = append(rows, Figure10Row{
			Lines:      lines,
			Candidates: out.Generated,
			Timing:     out.Timing,
		})
	}
	return rows, nil
}

// FormatFigure10 renders the Figure 10 series.
func FormatFigure10(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: Q1 turnaround vs program size (Trema-rendered lines)\n")
	b.WriteString("  lines  candidates  total\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %-11d %v\n", r.Lines, r.Candidates, r.Timing.Total().Round(time.Microsecond))
	}
	return b.String()
}

// OverheadReport bundles the §5.4 runtime-overhead measurements plus the
// evaluation-core counters from a join-heavy stress run.
type OverheadReport struct {
	LatencyIncrease     float64
	ThroughputReduction float64
	On, Off             bench.StressResult
	Join                bench.StressResult // 3-way-join stress: index vs scan counters
	Delta               bench.StressResult // rule-edit stress: DRed retract/assert counters
	StorageRate         float64            // bytes per second per switch
}

// Overhead measures provenance-maintenance cost on the Q1 controller and
// the storage rate of its workload. The rate is derived from a real
// capture: the workload is appended to a temporary segmented trace store
// and the accountant reads the actual segment sizes off disk.
func Overhead(sc scenarios.Scale, events int) (OverheadReport, error) {
	s := scenarios.Q1(sc)
	latInc, thrRed, on, off, err := bench.Overhead(s.Prog, events)
	if err != nil {
		return OverheadReport{}, err
	}
	dir, err := os.MkdirTemp("", "tracestore-overhead-*")
	if err != nil {
		return OverheadReport{}, err
	}
	defer os.RemoveAll(dir)
	st, err := tracestore.Open(dir, tracestore.Options{})
	if err != nil {
		return OverheadReport{}, err
	}
	if err := st.Append(s.Workload...); err != nil {
		return OverheadReport{}, err
	}
	if err := st.Close(); err != nil {
		return OverheadReport{}, err
	}
	rate := bench.StorageRateFromStore(st, 4, 1000)
	probes := events / 20
	if probes < 50 {
		probes = 50
	}
	join, err := bench.JoinStress(600, probes)
	if err != nil {
		return OverheadReport{}, err
	}
	edits := events / 200
	if edits < 10 {
		edits = 10
	}
	delta, err := bench.DeltaStress(300, edits)
	if err != nil {
		return OverheadReport{}, err
	}
	return OverheadReport{
		LatencyIncrease:     latInc,
		ThroughputReduction: thrRed,
		On:                  on,
		Off:                 off,
		Join:                join,
		Delta:               delta,
		StorageRate:         rate,
	}, nil
}

// FormatOverhead renders the §5.4 numbers plus the evaluation-core work
// counters: the controller run's firings (Q1's reactive rules are
// single-atom, so it extends no joins), the 3-way-join stress showing
// how many extensions the compile-time planner answered from hash indexes
// versus full table scans, and the rule-edit stress showing the counted-
// derivation bookkeeping behind incremental backtesting (tuples seeded,
// derivations retracted, support recounts that avoided re-derivation).
func FormatOverhead(r OverheadReport) string {
	on, jn, dl := r.On.Eval, r.Join.Eval, r.Delta.Eval
	return fmt.Sprintf(
		"Runtime overhead (§5.4):\n"+
			"  latency increase with provenance:   %+.1f%% (%v -> %v per event)\n"+
			"  throughput reduction:               %.1f%% (%.0f -> %.0f events/s)\n"+
			"  storage rate:                       %.1f KB/s per switch (measured from trace-store segments)\n"+
			"  controller evaluation:              %d firings, %d derivations, %d index lookups, %d scans\n"+
			"  3-way-join stress (%d probes):      %v/event; %d index lookups (%d rows) vs %d scans (%d rows)\n"+
			"  rule-edit stress (%d edit rounds):  %v/round; %d delta inserts, %d delta retractions, %d recounted tuples\n",
		100*r.LatencyIncrease, r.Off.MeanLat, r.On.MeanLat,
		100*r.ThroughputReduction, r.Off.Throughput, r.On.Throughput,
		r.StorageRate/1024,
		on.Firings, on.Derivations, on.IndexLookups, on.Scans,
		r.Join.Events, r.Join.MeanLat, jn.IndexLookups, jn.IndexRows, jn.Scans, jn.ScanRows,
		r.Delta.Events, r.Delta.MeanLat, dl.DeltaInserts, dl.DeltaRetractions, dl.RecountedTuples)
}

// AblationCostOrder compares cost-ordered exploration against naive FIFO
// exploration (same cutoff): the §3.5 design choice. It returns the steps
// each strategy needed to produce its candidate set and the candidate
// counts.
func AblationCostOrder(ctx context.Context, sc scenarios.Scale) (orderedSteps, fifoSteps, orderedCands, fifoCands int, err error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ordered, err := sess.Explore(ctx, s.Symptom())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	orderedSteps, orderedCands = ordered.Steps, len(ordered.Candidates)

	// FIFO: emulate by removing the cost signal (an effectively infinite
	// cutoff) so the heap degenerates to breadth-first order over tree
	// size, under the same step budget.
	fifo, err := sess.Explore(ctx, s.Symptom(), metarepair.WithBudget(metarepair.Budget{
		CostCutoff: 1e9, MaxSteps: orderedSteps, MaxPerStructure: 2,
	}))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fifoSteps, fifoCands = fifo.Steps, len(fifo.Candidates)
	return orderedSteps, fifoSteps, orderedCands, fifoCands, nil
}

// AblationPipeline compares the two explore→backtest compositions on Q1:
// the barrier pipeline (sequential forest search, then batched
// backtesting) against the streaming pipeline (concurrent frontier at the
// given worker count feeding batches that launch mid-search). Both produce
// identical candidates and verdicts; the streaming run also reports how
// long the two phases overlapped.
func AblationPipeline(ctx context.Context, sc scenarios.Scale, workers int) (barrier, streaming, overlap time.Duration, err error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return 0, 0, 0, err
	}
	timeMode := func(opts ...metarepair.Option) (time.Duration, *metarepair.Report, error) {
		start := time.Now()
		rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest(), opts...)
		return time.Since(start), rep, err
	}
	if barrier, _, err = timeMode(metarepair.WithPipelineMode(metarepair.PipelineBarrier)); err != nil {
		return 0, 0, 0, err
	}
	// workers <= 0 means the session default (all cores), matching the
	// CLI convention; WithExploreWorkers itself rejects non-positive
	// counts.
	streamOpts := []metarepair.Option{metarepair.WithPipelineMode(metarepair.PipelineStreaming)}
	if workers > 0 {
		streamOpts = append(streamOpts, metarepair.WithExploreWorkers(workers))
	}
	var rep *metarepair.Report
	if streaming, rep, err = timeMode(streamOpts...); err != nil {
		return 0, 0, 0, err
	}
	return barrier, streaming, rep.Timing.Overlap, nil
}

// AblationCoalescing compares shared backtesting with and without rule
// coalescing (§4.4).
func AblationCoalescing(ctx context.Context, sc scenarios.Scale) (with, without time.Duration, err error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return 0, 0, err
	}
	expl, err := sess.Explore(ctx, s.Symptom())
	if err != nil {
		return 0, 0, err
	}
	timeCoalesce := func(on bool) (time.Duration, error) {
		start := time.Now()
		run, err := sess.Evaluate(ctx, expl.Candidates, s.Backtest(),
			metarepair.WithStrategy(metarepair.StrategySerial), metarepair.WithCoalesce(on))
		if err != nil {
			return 0, err
		}
		if _, err := run.Wait(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if with, err = timeCoalesce(true); err != nil {
		return 0, 0, err
	}
	if without, err = timeCoalesce(false); err != nil {
		return 0, 0, err
	}
	return with, without, nil
}

// QuickCandidates generates Q1's candidates without backtesting; used by
// benchmarks that exercise the evaluation stage with their own strategy
// options. The session and the scenario's backtest evidence are returned
// alongside the cost-ordered candidates.
func QuickCandidates(ctx context.Context, sc scenarios.Scale) (*metarepair.Session, []metaprov.Candidate, metarepair.Backtest, error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return nil, nil, metarepair.Backtest{}, err
	}
	expl, err := sess.Explore(ctx, s.Symptom())
	if err != nil {
		return nil, nil, metarepair.Backtest{}, err
	}
	return sess, expl.Candidates, s.Backtest(), nil
}

// WideCandidates is QuickCandidates under the widened search budget
// (64 candidates, cost cutoff 4.6) — the regime that fills one shared
// run's 63-tag space, used by the delta-vs-full backtest benchmarks.
func WideCandidates(ctx context.Context, sc scenarios.Scale) (*metarepair.Session, []metaprov.Candidate, metarepair.Backtest, error) {
	s := scenarios.Q1(sc)
	sess, _, err := s.Diagnose()
	if err != nil {
		return nil, nil, metarepair.Backtest{}, err
	}
	expl, err := sess.Explore(ctx, s.Symptom(),
		metarepair.WithMaxCandidates(64),
		metarepair.WithBudget(metarepair.Budget{CostCutoff: 4.6, MaxPerStructure: 3}))
	if err != nil {
		return nil, nil, metarepair.Backtest{}, err
	}
	return sess, expl.Candidates, s.Backtest(), nil
}

// SmallWorkload exposes a deterministic workload for external tooling.
func SmallWorkload() []trace.Entry {
	return scenarios.Q1(scenarios.Scale{Switches: 19, Flows: 300}).Workload
}

// SuiteMatrix evaluates the registered scenarios across the given scales
// concurrently on the suite runner and returns the aggregate matrix —
// the Figure 9-style turnaround/effectiveness view, one cell per
// scenario × scale. The returned matrix is complete even when a cell
// failed; the error surfaces the first cell failure.
func SuiteMatrix(ctx context.Context, scales []scenario.Scale, parallel int) (*scenario.Matrix, error) {
	suite := &scenario.Suite{Scales: scales, Parallel: parallel}
	m, err := suite.Run(ctx)
	if err != nil {
		return m, err
	}
	return m, m.Err()
}

// ModelStats reports the meta-model sizes for the three languages (§3.2,
// §5.8 report the paper's counts; ours follow from the transcribed
// Figure 4 model and the translator-based front-ends).
func ModelStats() string {
	tuples, rules := meta.MetaTupleKinds()
	return fmt.Sprintf("µDlog meta model: %d meta-tuple kinds, %d meta rules (paper: 13/15)\n", tuples, rules)
}
