package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/scenarios"
)

func tinyScale() scenarios.Scale { return scenarios.Scale{Switches: 19, Flows: 600} }

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(context.Background(), tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Generated == 0 || r.Passed == 0 {
			t.Errorf("%s: %d/%d", r.Name, r.Generated, r.Passed)
		}
		if r.Passed > r.Generated {
			t.Errorf("%s: passed %d > generated %d", r.Name, r.Passed, r.Generated)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Q5") {
		t.Fatal("format missing rows")
	}
}

func TestAugmentProgram(t *testing.T) {
	base := scenarios.Q1(tinyScale()).Prog
	big := AugmentProgram(base, 600)
	if len(big.Rules) <= len(base.Rules) {
		t.Fatal("no rules added")
	}
	// All filler rules must be valid and derive the inert Acl table.
	if _, err := ndlog.NewEngine(big); err != nil {
		t.Fatalf("augmented program does not compile: %v", err)
	}
	acl := 0
	for _, r := range big.Rules {
		if r.Head.Table == "Acl" {
			acl++
		}
	}
	if acl == 0 {
		t.Fatal("filler rules missing")
	}
	// Base program untouched.
	if len(base.Rules) != len(scenarios.Q1(tinyScale()).Prog.Rules) {
		t.Fatal("AugmentProgram mutated its input")
	}
}

func TestFigure9bSpeedupShape(t *testing.T) {
	rows, err := Figure9b(context.Background(), tinyScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At k=4 the multi-query run must beat sequential (Figure 9b's shape).
	last := rows[len(rows)-1]
	if last.Shared >= last.Sequential {
		t.Errorf("multi-query (%v) not faster than sequential (%v) at k=%d",
			last.Shared, last.Sequential, last.K)
	}
	if !strings.Contains(FormatFigure9b(rows), "multi-query") {
		t.Fatal("format broken")
	}
}

func TestOverheadReport(t *testing.T) {
	rep, err := Overhead(tinyScale(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Off.Throughput <= 0 || rep.On.Throughput <= 0 {
		t.Fatalf("throughputs: %+v", rep)
	}
	if !strings.Contains(FormatOverhead(rep), "storage rate") {
		t.Fatal("format broken")
	}
}

func TestCandidateTableFormats(t *testing.T) {
	rows := []CandidateRow{
		{Desc: "change constant 2 in r7 (sel/0/R) to 3", KS: 0.001, Accepted: true},
		{Desc: strings.Repeat("x", 100), KS: 0.3, Accepted: false},
	}
	out := FormatCandidates("Table 2", rows)
	if !strings.Contains(out, "...") {
		t.Fatal("long descriptions must be clipped")
	}
	if !strings.Contains(out, "(3)") || !strings.Contains(out, "(5)") {
		t.Fatal("verdict marks missing")
	}
}

func TestModelStats(t *testing.T) {
	if !strings.Contains(ModelStats(), "15 meta rules") {
		t.Fatalf("stats = %q", ModelStats())
	}
}
