// Package jobs is the bounded job engine under the repair daemon: a
// multi-tenant queue → worker pool → job table. Submitted jobs wait in a
// global FIFO queue (bounded globally and per tenant), run on a fixed
// worker pool subject to per-tenant concurrency quotas, and leave a
// retained, TTL-evicted record of their outcome behind for status
// polling. Every job runs under its own context, so queued and running
// jobs alike cancel promptly, and the engine drains gracefully: stop
// intake, finish what is queued, then cancel stragglers at the deadline.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State int

const (
	// Queued: admitted, waiting for a worker (or for tenant quota).
	Queued State = iota
	// Running: executing on a worker.
	Running
	// Succeeded: finished without error.
	Succeeded
	// Failed: finished with an error of its own.
	Failed
	// Cancelled: cancelled while queued, or stopped by Cancel/drain while
	// running.
	Cancelled
)

// String names the state for APIs and logs.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Succeeded || s == Failed || s == Cancelled }

// Func is the work a job performs. It must honor ctx — cancellation and
// drain deadlines arrive through it — and return its retained result.
type Func func(ctx context.Context) (any, error)

// Job is a point-in-time snapshot of one job's record.
type Job struct {
	ID     string
	Tenant string
	// Label is caller-provided display metadata (e.g. "Q1@19sw/900fl").
	Label string
	State State
	// Position is the job's place in the global queue (1-based) while
	// Queued, 0 otherwise.
	Position                   int
	Created, Started, Finished time.Time
	// Err is the failure (or cancellation) message once terminal.
	Err string
	// Result is the retained outcome of a Succeeded job.
	Result any
	// Meta is the caller's opaque attachment (e.g. the daemon's per-job
	// event log); it lives exactly as long as the job record.
	Meta any
}

// Config sizes the engine. Zero values take the documented defaults.
type Config struct {
	// Workers is the pool width (default GOMAXPROCS).
	Workers int
	// QueueCap bounds jobs waiting in the global queue (default 256).
	QueueCap int
	// TenantQueueCap bounds one tenant's queued jobs (default QueueCap).
	TenantQueueCap int
	// TenantRunning caps one tenant's concurrently running jobs — the
	// per-tenant share of the pool (default Workers).
	TenantRunning int
	// ResultTTL evicts terminal job records this long after they finish
	// (default 1h). Eviction runs on a janitor tick and on every
	// Submit/Get/List, so records disappear even on an idle engine.
	ResultTTL time.Duration
	// OnTransition, when set, observes every state change with a fresh
	// snapshot. Called synchronously under the engine lock — it must be
	// fast and must not call back into the engine.
	OnTransition func(Job)
	// OnReject, when set, observes every capacity rejection that Submit
	// returns as a *QuotaError. reason is "queue_full" or "tenant_queue".
	// Same contract as OnTransition: synchronous, under the engine lock.
	OnReject func(tenant, reason string)

	// now is the test clock (default time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.TenantQueueCap <= 0 {
		c.TenantQueueCap = c.QueueCap
	}
	if c.TenantRunning <= 0 {
		c.TenantRunning = c.Workers
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = time.Hour
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// QuotaError is a capacity rejection — the HTTP layer maps it to 429.
type QuotaError struct{ msg string }

func (e *QuotaError) Error() string { return e.msg }

// ErrNotFound reports an unknown (or already evicted) job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrDraining rejects submissions to a draining or closed engine.
var ErrDraining = errors.New("jobs: engine is draining")

// job is the engine-internal record.
type job struct {
	Job
	fn       Func
	ctx      context.Context
	cancel   context.CancelFunc
	cancelMe bool // Cancel was requested while running
	done     chan struct{}
}

// Engine is the bounded multi-tenant job engine. Create with New; all
// methods are safe for concurrent use.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	queue     []*job // global FIFO of Queued jobs
	order     []*job // every live record, submission order
	queuedBy  map[string]int
	runningBy map[string]int
	seq       int
	draining  bool
	closed    bool

	workers sync.WaitGroup
	janitor chan struct{}
}

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:       cfg.withDefaults(),
		jobs:      make(map[string]*job),
		queuedBy:  make(map[string]int),
		runningBy: make(map[string]int),
		janitor:   make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < e.cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker()
	}
	go e.runJanitor()
	return e
}

// Submit admits a job for tenant and returns its queued snapshot.
// Capacity rejections are *QuotaError; a draining engine returns
// ErrDraining.
func (e *Engine) Submit(tenant, label string, meta any, fn Func) (Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining || e.closed {
		return Job{}, ErrDraining
	}
	e.evictLocked()
	if len(e.queue) >= e.cfg.QueueCap {
		e.rejectLocked(tenant, "queue_full")
		return Job{}, &QuotaError{msg: fmt.Sprintf("jobs: queue is full (%d queued)", len(e.queue))}
	}
	if e.queuedBy[tenant] >= e.cfg.TenantQueueCap {
		e.rejectLocked(tenant, "tenant_queue")
		return Job{}, &QuotaError{msg: fmt.Sprintf("jobs: tenant %q queue cap reached (%d queued)",
			tenant, e.queuedBy[tenant])}
	}
	e.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		Job: Job{
			ID: fmt.Sprintf("j-%06d", e.seq), Tenant: tenant, Label: label,
			State: Queued, Created: e.cfg.now(), Meta: meta,
		},
		fn: fn, ctx: ctx, cancel: cancel, done: make(chan struct{}),
	}
	e.jobs[j.ID] = j
	e.queue = append(e.queue, j)
	e.order = append(e.order, j)
	e.queuedBy[tenant]++
	e.transitionLocked(j)
	e.cond.Broadcast()
	return e.snapshotLocked(j), nil
}

// worker runs queued jobs until the engine closes and the queue empties.
func (e *Engine) worker() {
	defer e.workers.Done()
	for {
		e.mu.Lock()
		var j *job
		for {
			j = e.dequeueLocked()
			if j != nil || e.closed {
				break
			}
			e.cond.Wait()
		}
		if j == nil { // closed and nothing runnable
			e.mu.Unlock()
			return
		}
		j.State = Running
		j.Started = e.cfg.now()
		e.runningBy[j.Tenant]++
		e.transitionLocked(j)
		fn, ctx := j.fn, j.ctx
		e.mu.Unlock()

		result, err := fn(ctx)

		e.mu.Lock()
		e.runningBy[j.Tenant]--
		j.Finished = e.cfg.now()
		switch {
		case err == nil:
			j.State = Succeeded
			j.Result = result
		case j.cancelMe || j.ctx.Err() != nil:
			j.State = Cancelled
			j.Err = err.Error()
		default:
			j.State = Failed
			j.Err = err.Error()
		}
		j.fn = nil
		j.cancel()
		close(j.done)
		e.transitionLocked(j)
		e.cond.Broadcast() // quota slots freed; drain waiters advance
		e.mu.Unlock()
	}
}

// dequeueLocked pops the first queued job whose tenant has quota room.
// FIFO order is preserved per tenant and globally except where a
// saturated tenant is skipped — one tenant's burst cannot starve the
// others' slots.
func (e *Engine) dequeueLocked() *job {
	for i, j := range e.queue {
		if e.runningBy[j.Tenant] < e.cfg.TenantRunning {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.queuedBy[j.Tenant]--
			return j
		}
	}
	return nil
}

// Cancel stops a job: a queued job is cancelled in place, a running job
// has its context cancelled (the state becomes Cancelled when its Func
// returns). Cancelling a terminal job is a no-op. The returned snapshot
// reflects the post-cancel record.
func (e *Engine) Cancel(id string) (Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case Queued:
		e.removeQueuedLocked(j)
		j.State = Cancelled
		j.Finished = e.cfg.now()
		j.Err = context.Canceled.Error()
		j.fn = nil
		j.cancel()
		close(j.done)
		e.transitionLocked(j)
		e.cond.Broadcast()
	case Running:
		j.cancelMe = true
		j.cancel()
	}
	return e.snapshotLocked(j), nil
}

// removeQueuedLocked unlinks a queued job from the FIFO.
func (e *Engine) removeQueuedLocked(j *job) {
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.queuedBy[j.Tenant]--
			return
		}
	}
}

// Get returns a job snapshot.
func (e *Engine) Get(id string) (Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evictLocked()
	j, ok := e.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return e.snapshotLocked(j), nil
}

// Done returns a channel closed when the job reaches a terminal state.
func (e *Engine) Done(id string) (<-chan struct{}, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// List returns snapshots in submission order; tenant "" lists all.
func (e *Engine) List(tenant string) []Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evictLocked()
	var out []Job
	for _, j := range e.order {
		if tenant == "" || j.Tenant == tenant {
			out = append(out, e.snapshotLocked(j))
		}
	}
	return out
}

// Stats is an aggregate engine snapshot.
type Stats struct {
	Workers, Queued, Running     int
	Succeeded, Failed, Cancelled int
}

// Stats aggregates the live job table.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{Workers: e.cfg.Workers, Queued: len(e.queue)}
	for _, j := range e.order {
		switch j.State {
		case Running:
			st.Running++
		case Succeeded:
			st.Succeeded++
		case Failed:
			st.Failed++
		case Cancelled:
			st.Cancelled++
		}
	}
	return st
}

// Drain gracefully shuts the engine down: intake stops immediately,
// queued and running jobs are given until ctx expires to finish, then
// everything still alive is cancelled. Drain returns once every worker
// has exited; the job table (and Get/List) remains readable afterwards.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		e.mu.Lock()
		for (len(e.queue) > 0 || e.anyRunningLocked()) && !e.closed {
			e.cond.Wait()
		}
		e.mu.Unlock()
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		e.cancelAll()
		<-finished
	}
	e.shutdownWorkers()
	return err
}

// Close shuts down immediately: intake stops, every queued and running
// job is cancelled, and Close returns once the workers exit.
func (e *Engine) Close() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.cancelAll()
	e.shutdownWorkers()
}

// cancelAll cancels every queued and running job.
func (e *Engine) cancelAll() {
	e.mu.Lock()
	queued := append([]*job(nil), e.queue...)
	var running []*job
	for _, j := range e.order {
		if j.State == Running {
			running = append(running, j)
		}
	}
	e.mu.Unlock()
	for _, j := range queued {
		e.Cancel(j.ID)
	}
	for _, j := range running {
		e.Cancel(j.ID)
	}
}

// shutdownWorkers closes the pool and waits for it (idempotent).
func (e *Engine) shutdownWorkers() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	if !already {
		close(e.janitor)
	}
	e.workers.Wait()
}

func (e *Engine) anyRunningLocked() bool {
	for _, n := range e.runningBy {
		if n > 0 {
			return true
		}
	}
	return false
}

// runJanitor evicts expired records in the background, so retention does
// not depend on API traffic.
func (e *Engine) runJanitor() {
	tick := e.cfg.ResultTTL / 4
	if tick > time.Minute {
		tick = time.Minute
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.mu.Lock()
			e.evictLocked()
			e.mu.Unlock()
		case <-e.janitor:
			return
		}
	}
}

// evictLocked drops terminal records whose TTL has lapsed.
func (e *Engine) evictLocked() {
	cutoff := e.cfg.now().Add(-e.cfg.ResultTTL)
	kept := e.order[:0]
	for _, j := range e.order {
		if j.State.Terminal() && j.Finished.Before(cutoff) {
			delete(e.jobs, j.ID)
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(e.order); i++ {
		e.order[i] = nil
	}
	e.order = kept
}

// snapshotLocked copies a job record, stamping the queue position.
func (e *Engine) snapshotLocked(j *job) Job {
	out := j.Job
	if j.State == Queued {
		for i, q := range e.queue {
			if q == j {
				out.Position = i + 1
				break
			}
		}
	}
	return out
}

// transitionLocked notifies the observer of a state change.
func (e *Engine) transitionLocked(j *job) {
	if e.cfg.OnTransition != nil {
		e.cfg.OnTransition(e.snapshotLocked(j))
	}
}

// rejectLocked notifies the observer of a capacity rejection.
func (e *Engine) rejectLocked(tenant, reason string) {
	if e.cfg.OnReject != nil {
		e.cfg.OnReject(tenant, reason)
	}
}
