package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, e *Engine, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v, want %v", id, j.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// gate is a controllable job body: it signals when it starts and blocks
// until released or cancelled.
type gate struct {
	started chan string
	release chan struct{}
}

func newGate() *gate {
	return &gate{started: make(chan string, 64), release: make(chan struct{})}
}

func (g *gate) fn(name string, result any) Func {
	return func(ctx context.Context) (any, error) {
		g.started <- name
		select {
		case <-g.release:
			return result, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestLifecycleFIFO: with one worker, jobs run in submission order and
// each record walks queued → running → succeeded with a retained result.
func TestLifecycleFIFO(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()

	g := newGate()
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := e.Submit("acme", fmt.Sprintf("job-%d", i), nil, g.fn(fmt.Sprintf("job-%d", i), i))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if j.State != Queued {
			t.Fatalf("submitted job state = %v, want Queued", j.State)
		}
		ids = append(ids, j.ID)
	}
	// Third job should report its queue position while waiting.
	if j, _ := e.Get(ids[2]); j.Position == 0 {
		t.Fatalf("queued job has no position: %+v", j)
	}
	close(g.release)
	for i := 0; i < 3; i++ {
		if name := <-g.started; name != fmt.Sprintf("job-%d", i) {
			t.Fatalf("job %d ran out of order: got %s", i, name)
		}
	}
	for i, id := range ids {
		j := waitState(t, e, id, Succeeded)
		if j.Result != i {
			t.Fatalf("job %s result = %v, want %d", id, j.Result, i)
		}
		if j.Started.Before(j.Created) || j.Finished.Before(j.Started) {
			t.Fatalf("job %s timestamps out of order: %+v", id, j)
		}
	}
}

// TestTenantRunningQuota: a tenant never exceeds its running quota, and a
// saturated tenant's backlog does not block other tenants' jobs.
func TestTenantRunningQuota(t *testing.T) {
	e := New(Config{Workers: 4, TenantRunning: 1})
	defer e.Close()

	g := newGate()
	var running, maxA atomic.Int32
	slowA := func(ctx context.Context) (any, error) {
		n := running.Add(1)
		defer running.Add(-1)
		if m := maxA.Load(); n > m {
			maxA.Store(n)
		}
		select {
		case <-g.release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var aIDs []string
	for i := 0; i < 3; i++ {
		j, err := e.Submit("a", "", nil, slowA)
		if err != nil {
			t.Fatalf("Submit a: %v", err)
		}
		aIDs = append(aIDs, j.ID)
	}
	// Tenant b, submitted after a's backlog, must still get a worker.
	jb, err := e.Submit("b", "", nil, func(ctx context.Context) (any, error) { return "b", nil })
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	waitState(t, e, jb.ID, Succeeded)

	close(g.release)
	for _, id := range aIDs {
		waitState(t, e, id, Succeeded)
	}
	if maxA.Load() > 1 {
		t.Fatalf("tenant a ran %d jobs concurrently, quota is 1", maxA.Load())
	}
}

// TestQueueCaps: the global queue cap and the per-tenant queue cap both
// reject with *QuotaError.
func TestQueueCaps(t *testing.T) {
	g := newGate()
	defer close(g.release)

	e := New(Config{Workers: 1, QueueCap: 2, TenantQueueCap: 2})
	defer e.Close()
	// Occupy the worker so subsequent submissions stay queued.
	if _, err := e.Submit("a", "", nil, g.fn("hold", nil)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	for i := 0; i < 2; i++ {
		if _, err := e.Submit("a", "", nil, g.fn("q", nil)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	var qe *QuotaError
	if _, err := e.Submit("b", "", nil, g.fn("over", nil)); !errors.As(err, &qe) {
		t.Fatalf("global cap: got %v, want *QuotaError", err)
	}

	e2 := New(Config{Workers: 1, QueueCap: 100, TenantQueueCap: 1})
	defer e2.Close()
	if _, err := e2.Submit("a", "", nil, g.fn("hold2", nil)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	if _, err := e2.Submit("a", "", nil, g.fn("q2", nil)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := e2.Submit("a", "", nil, g.fn("over2", nil)); !errors.As(err, &qe) {
		t.Fatalf("tenant cap: got %v, want *QuotaError", err)
	}
	// A different tenant still has room.
	if _, err := e2.Submit("b", "", nil, g.fn("other", nil)); err != nil {
		t.Fatalf("tenant b rejected by tenant a's cap: %v", err)
	}
}

// TestCancelQueued: cancelling a queued job finalizes it without ever
// running it, and frees its queue slot.
func TestCancelQueued(t *testing.T) {
	g := newGate()
	defer close(g.release)

	e := New(Config{Workers: 1, TenantQueueCap: 1})
	defer e.Close()
	if _, err := e.Submit("a", "", nil, g.fn("hold", nil)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	queued, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job ran")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j, err := e.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if j.State != Cancelled {
		t.Fatalf("cancelled queued job state = %v", j.State)
	}
	// The tenant's queue slot must be free again.
	if _, err := e.Submit("a", "", nil, g.fn("next", nil)); err != nil {
		t.Fatalf("queue slot not released after cancel: %v", err)
	}
}

// TestCancelRunning: cancelling a running job cancels its context and the
// record lands in Cancelled, not Failed.
func TestCancelRunning(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	g := newGate()
	j, err := e.Submit("a", "", nil, g.fn("run", nil))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	if _, err := e.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	done, err := e.Done(j.ID)
	if err != nil {
		t.Fatalf("Done: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job never finished")
	}
	got := waitState(t, e, j.ID, Cancelled)
	if got.Err == "" {
		t.Fatal("cancelled job has empty Err")
	}
	// Cancelling a terminal job is a no-op.
	if again, err := e.Cancel(j.ID); err != nil || again.State != Cancelled {
		t.Fatalf("re-cancel: (%+v, %v)", again, err)
	}
}

// TestFailedJob: an error from the Func lands in Failed with the message
// retained.
func TestFailedJob(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	j, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, e, j.ID, Failed)
	if got.Err != "boom" {
		t.Fatalf("failed job Err = %q", got.Err)
	}
}

// TestTTLEviction: terminal records evaporate once ResultTTL passes on
// the fake clock; live records stay.
func TestTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1754650000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	e := New(Config{Workers: 1, ResultTTL: time.Minute, now: clock})
	defer e.Close()
	j, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, e, j.ID, Succeeded)

	advance(30 * time.Second)
	if _, err := e.Get(j.ID); err != nil {
		t.Fatalf("record evicted before TTL: %v", err)
	}
	advance(31 * time.Second)
	if _, err := e.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired record still present: %v", err)
	}
	if got := e.List(""); len(got) != 0 {
		t.Fatalf("List returned %d evicted records", len(got))
	}
}

// TestDrainFinishesQueued: Drain with a generous deadline lets queued
// work complete, rejects new submissions, and returns nil.
func TestDrainFinishesQueued(t *testing.T) {
	e := New(Config{Workers: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			return "ok", nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: %v, want ErrDraining", err)
	}
	for _, id := range ids {
		j, err := e.Get(id)
		if err != nil || j.State != Succeeded {
			t.Fatalf("after drain, job %s = (%+v, %v), want Succeeded", id, j, err)
		}
	}
}

// TestDrainDeadlineCancels: when the drain deadline passes, running jobs
// are cancelled rather than waited on forever.
func TestDrainDeadlineCancels(t *testing.T) {
	e := New(Config{Workers: 1})
	g := newGate()
	defer close(g.release)
	j, err := e.Submit("a", "", nil, g.fn("stuck", nil))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-g.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: %v, want DeadlineExceeded", err)
	}
	got, err := e.Get(j.ID)
	if err != nil || got.State != Cancelled {
		t.Fatalf("after forced drain, job = (%+v, %v), want Cancelled", got, err)
	}
}

// TestTransitions: the observer sees every state change in order.
func TestTransitions(t *testing.T) {
	var mu sync.Mutex
	var states []State
	e := New(Config{Workers: 1, OnTransition: func(j Job) {
		mu.Lock()
		states = append(states, j.State)
		mu.Unlock()
	}})
	defer e.Close()
	j, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, e, j.ID, Succeeded)
	mu.Lock()
	defer mu.Unlock()
	want := []State{Queued, Running, Succeeded}
	if len(states) != len(want) {
		t.Fatalf("saw transitions %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, states[i], want[i])
		}
	}
}

// TestConcurrentChurn hammers the engine from many goroutines — submit,
// poll, cancel, list — and is the -race workout for the lock discipline.
func TestConcurrentChurn(t *testing.T) {
	e := New(Config{Workers: 4, QueueCap: 1024, TenantRunning: 2, ResultTTL: 50 * time.Millisecond})
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 50; i++ {
				j, err := e.Submit(tenant, "churn", nil, func(ctx context.Context) (any, error) {
					select {
					case <-time.After(time.Duration(i%3) * time.Millisecond):
						return i, nil
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				})
				if err != nil {
					var qe *QuotaError
					if !errors.As(err, &qe) {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				if i%5 == 0 {
					e.Cancel(j.ID)
				}
				e.Get(j.ID)
				e.List(tenant)
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain after churn: %v", err)
	}
	st := e.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("engine not quiescent after drain: %+v", st)
	}
}
