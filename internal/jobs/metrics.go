package jobs

import (
	"repro/internal/obsv"
)

// Metrics is the job engine's telemetry: queue depth, per-tenant
// queued/running gauges, queue-wait and run-duration histograms, quota
// rejections, and terminal-state job counts. It records exclusively
// through the engine's OnTransition/OnReject hooks, so wiring it is one
// call on the Config and the engine's hot paths stay hook-free when
// metrics are off.
type Metrics struct {
	queueDepth    *obsv.Gauge
	tenantQueued  *obsv.GaugeVec
	tenantRunning *obsv.GaugeVec
	queueWait     *obsv.Histogram
	runDuration   *obsv.HistogramVec
	total         *obsv.CounterVec
	rejections    *obsv.CounterVec
}

// NewMetrics registers the jobs_* metric families on reg.
func NewMetrics(reg *obsv.Registry) *Metrics {
	return &Metrics{
		queueDepth: reg.Gauge("jobs_queue_depth",
			"Jobs waiting in the global FIFO queue."),
		tenantQueued: reg.GaugeVec("jobs_tenant_queued",
			"Queued jobs per tenant.", "tenant"),
		tenantRunning: reg.GaugeVec("jobs_tenant_running",
			"Running jobs per tenant.", "tenant"),
		queueWait: reg.Histogram("jobs_queue_wait_seconds",
			"Time from submission to dispatch on a worker.", nil),
		runDuration: reg.HistogramVec("jobs_run_duration_seconds",
			"Worker-side job run time, by terminal state.", nil, "state"),
		total: reg.CounterVec("jobs_total",
			"Jobs reaching a terminal state, by state.", "state"),
		rejections: reg.CounterVec("jobs_quota_rejections_total",
			"Submissions rejected for capacity, by reason.", "reason"),
	}
}

// Instrument wires the metrics into cfg's observer hooks, chaining any
// hooks the caller already installed (the caller's hook runs first).
// The returned Config is what New should be given.
func (m *Metrics) Instrument(cfg Config) Config {
	prevTransition, prevReject := cfg.OnTransition, cfg.OnReject
	cfg.OnTransition = func(j Job) {
		if prevTransition != nil {
			prevTransition(j)
		}
		m.onTransition(j)
	}
	cfg.OnReject = func(tenant, reason string) {
		if prevReject != nil {
			prevReject(tenant, reason)
		}
		m.rejections.With(reason).Inc()
	}
	return cfg
}

// onTransition updates the gauges and histograms from one state-change
// snapshot. The snapshot's timestamps carry the transition's history, so
// no per-job bookkeeping is needed here: a terminal job with a zero
// Started was cancelled while still queued.
func (m *Metrics) onTransition(j Job) {
	switch j.State {
	case Queued:
		m.queueDepth.Add(1)
		m.tenantQueued.With(j.Tenant).Add(1)
	case Running:
		m.queueDepth.Add(-1)
		m.tenantQueued.With(j.Tenant).Add(-1)
		m.tenantRunning.With(j.Tenant).Add(1)
		m.queueWait.Observe(j.Started.Sub(j.Created).Seconds())
	case Succeeded, Failed, Cancelled:
		if j.Started.IsZero() {
			// Cancelled in place while queued: it never held a worker.
			m.queueDepth.Add(-1)
			m.tenantQueued.With(j.Tenant).Add(-1)
		} else {
			m.tenantRunning.With(j.Tenant).Add(-1)
			m.runDuration.With(j.State.String()).Observe(j.Finished.Sub(j.Started).Seconds())
		}
		m.total.With(j.State.String()).Inc()
	}
}
