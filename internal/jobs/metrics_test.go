package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
)

// TestMetricsLifecycle drives jobs through every terminal state and
// checks the gauges return to zero and the counters/histograms account
// for every job.
func TestMetricsLifecycle(t *testing.T) {
	reg := obsv.NewRegistry()
	m := NewMetrics(reg)
	e := New(m.Instrument(Config{Workers: 2}))
	defer e.Close()

	ok, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	bad, err := e.Submit("a", "", nil, func(ctx context.Context) (any, error) { return nil, errors.New("boom") })
	if err != nil {
		t.Fatal(err)
	}
	g := newGate()
	run, err := e.Submit("b", "", nil, g.fn("r", nil))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, ok.ID, Succeeded)
	waitState(t, e, bad.ID, Failed)
	<-g.started
	if _, err := e.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, run.ID, Cancelled)

	scrape := scrapeRegistry(t, reg)
	for state, want := range map[string]float64{"succeeded": 1, "failed": 1, "cancelled": 1} {
		if v, _ := scrape.Value("jobs_total", map[string]string{"state": state}); v != want {
			t.Fatalf("jobs_total{state=%q} = %v, want %v", state, v, want)
		}
	}
	if v, _ := scrape.Value("jobs_queue_depth", nil); v != 0 {
		t.Fatalf("queue depth = %v, want 0 after all jobs finished", v)
	}
	for _, tenant := range []string{"a", "b"} {
		if v, _ := scrape.Value("jobs_tenant_running", map[string]string{"tenant": tenant}); v != 0 {
			t.Fatalf("tenant %s running = %v, want 0", tenant, v)
		}
		if v, _ := scrape.Value("jobs_tenant_queued", map[string]string{"tenant": tenant}); v != 0 {
			t.Fatalf("tenant %s queued = %v, want 0", tenant, v)
		}
	}
	if v, _ := scrape.Value("jobs_queue_wait_seconds_count", nil); v != 3 {
		t.Fatalf("queue wait count = %v, want 3 (every dispatched job)", v)
	}
	if got := scrape.Sum("jobs_run_duration_seconds_count", nil); got != 3 {
		t.Fatalf("run duration count = %v, want 3", got)
	}
}

// TestMetricsQuotaRejections: both rejection reasons count, and a
// cancelled-while-queued job decrements the queued gauges without ever
// touching the running ones.
func TestMetricsQuotaRejections(t *testing.T) {
	reg := obsv.NewRegistry()
	m := NewMetrics(reg)
	e := New(m.Instrument(Config{Workers: 1, QueueCap: 2, TenantQueueCap: 1}))
	defer e.Close()

	g := newGate()
	defer close(g.release)
	if _, err := e.Submit("a", "", nil, g.fn("hold", nil)); err != nil {
		t.Fatal(err)
	}
	<-g.started
	queued, err := e.Submit("a", "", nil, g.fn("q", nil))
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a has 1 queued (its cap): tenant_queue rejection.
	if _, err := e.Submit("a", "", nil, g.fn("x", nil)); err == nil {
		t.Fatal("tenant cap not enforced")
	}
	// Fill the global queue with tenant b, then overflow it.
	if _, err := e.Submit("b", "", nil, g.fn("y", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("c", "", nil, g.fn("z", nil)); err == nil {
		t.Fatal("global cap not enforced")
	}
	if _, err := e.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, queued.ID, Cancelled)

	scrape := scrapeRegistry(t, reg)
	if v, _ := scrape.Value("jobs_quota_rejections_total", map[string]string{"reason": "tenant_queue"}); v != 1 {
		t.Fatalf("tenant_queue rejections = %v, want 1", v)
	}
	if v, _ := scrape.Value("jobs_quota_rejections_total", map[string]string{"reason": "queue_full"}); v != 1 {
		t.Fatalf("queue_full rejections = %v, want 1", v)
	}
	if v, _ := scrape.Value("jobs_tenant_queued", map[string]string{"tenant": "a"}); v != 0 {
		t.Fatalf("tenant a queued = %v, want 0 after queued-cancel", v)
	}
	if got := scrape.Sum("jobs_run_duration_seconds_count", nil); got != 0 {
		t.Fatalf("run duration observed %v samples for a job that never ran", got)
	}
}

// TestMetricsChainsCallerHooks: Instrument must not displace an existing
// OnTransition/OnReject — the daemon's SSE lifecycle hook and the
// metrics recorder observe the same transitions.
func TestMetricsChainsCallerHooks(t *testing.T) {
	reg := obsv.NewRegistry()
	m := NewMetrics(reg)
	var transitions, rejects int
	cfg := Config{Workers: 1, QueueCap: 1,
		OnTransition: func(Job) { transitions++ },
		OnReject:     func(string, string) { rejects++ },
	}
	e := New(m.Instrument(cfg))
	defer e.Close()
	g := newGate()
	if _, err := e.Submit("a", "", nil, g.fn("hold", nil)); err != nil {
		t.Fatal(err)
	}
	<-g.started
	if _, err := e.Submit("a", "", nil, g.fn("q", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("a", "", nil, g.fn("over", nil)); err == nil {
		t.Fatal("expected queue_full rejection")
	}
	close(g.release)
	if transitions == 0 || rejects != 1 {
		t.Fatalf("caller hooks saw %d transitions, %d rejects; want >0 and 1", transitions, rejects)
	}
}

// scrapeRegistry round-trips the registry through its own text
// exposition, so the assertions also exercise the format.
func scrapeRegistry(t *testing.T, reg *obsv.Registry) *obsv.Scrape {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := obsv.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, sb.String())
	}
	return sc
}

// TestDrainRacesSubmit floods the engine with submissions while Drain
// runs. Every Submit must either be admitted (and reach a terminal state
// by the time Drain returns) or fail with the typed ErrDraining/quota
// errors — never enqueue into a draining engine, never panic, never
// leave a job undrained. Run with -race this is the intake/drain
// interleaving regression test.
func TestDrainRacesSubmit(t *testing.T) {
	for round := 0; round < 10; round++ {
		e := New(Config{Workers: 4, QueueCap: 256})
		var admitted []string
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				j, err := e.Submit("t", "", nil, func(ctx context.Context) (any, error) {
					return nil, nil
				})
				switch {
				case err == nil:
					admitted = append(admitted, j.ID)
				case errors.Is(err, ErrDraining):
					return // intake closed: the race resolved
				default:
					var q *QuotaError
					if !errors.As(err, &q) {
						panic("unexpected submit error: " + err.Error())
					}
				}
			}
		}()

		time.Sleep(time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := e.Drain(ctx); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		cancel()
		close(stop)
		<-done

		// Post-drain submits must return the typed error.
		if _, err := e.Submit("t", "", nil, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
			t.Fatalf("submit after drain = %v, want ErrDraining", err)
		}
		// Every admitted job reached a terminal state before Drain returned.
		for _, id := range admitted {
			j, err := e.Get(id)
			if err != nil {
				t.Fatalf("admitted job %s evicted during drain: %v", id, err)
			}
			if !j.State.Terminal() {
				t.Fatalf("admitted job %s still %v after Drain returned", id, j.State)
			}
		}
	}
}
