package meta

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

const fig2 = `
materialize(FlowTable, 1, 3, keys(0,1)).
materialize(WebLoadBalancer, 1, 2, keys(0,1)).
r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@Hdr,Prt), Swi == 1.
r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
`

func TestModelExtraction(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	m := NewModel(prog)
	if len(m.Heads) != 2 || len(m.Preds) != 3 {
		t.Fatalf("heads=%d preds=%d", len(m.Heads), len(m.Preds))
	}
	// r7 has constants 2 (sel 0), 80 (sel 1), 2 (assign 0); r1 has 1.
	var r7consts []ConstRef
	for _, c := range m.Consts {
		if c.Rule == "r7" {
			r7consts = append(r7consts, c)
		}
	}
	if len(r7consts) != 3 {
		t.Fatalf("r7 consts = %v", r7consts)
	}
	if len(m.Opers) != 3 {
		t.Fatalf("opers = %v", m.Opers)
	}
	if !m.IsDerived("FlowTable") || m.IsDerived("PacketIn") {
		t.Fatal("IsDerived misclassifies tables")
	}
	if got := len(m.RulesDeriving("FlowTable")); got != 2 {
		t.Fatalf("RulesDeriving = %d", got)
	}
	if m.TupleCount() == 0 {
		t.Fatal("TupleCount = 0")
	}
}

func TestSetConstApply(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	// The paper's fix: change Swi==2 in r7 to Swi==3.
	p, err := Apply(prog, []Change{
		SetConst{RuleID: "r7", Path: "sel/0/R", Old: ndlog.Int(2), New: ndlog.Int(3)},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	got := p.Prog.Rule("r7").Sels[0].String()
	if got != "Swi == 3" {
		t.Fatalf("patched selection = %q", got)
	}
	// Original untouched.
	if prog.Rule("r7").Sels[0].String() != "Swi == 2" {
		t.Fatal("original program mutated")
	}
}

func TestSetOperApply(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	p, err := Apply(prog, []Change{
		SetOper{RuleID: "r7", SelIdx: 0, Old: ndlog.OpEq, New: ndlog.OpGt},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if p.Prog.Rule("r7").Sels[0].Op != ndlog.OpGt {
		t.Fatal("operator unchanged")
	}
}

func TestDropSelDescendingOrder(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	// Delete both selections of r7; Apply must handle index shifting.
	p, err := Apply(prog, []Change{
		DropSel{RuleID: "r7", SelIdx: 0, Sel: "Swi == 2"},
		DropSel{RuleID: "r7", SelIdx: 1, Sel: "Hdr == 80"},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(p.Prog.Rule("r7").Sels) != 0 {
		t.Fatalf("sels remain: %v", p.Prog.Rule("r7").Sels)
	}
}

func TestDropBodyPredValidity(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	// Deleting WebLoadBalancer from r1 leaves Prt unbound in the head:
	// the validity guard must reject it.
	_, err := Apply(prog, []Change{
		DropBodyPred{RuleID: "r1", BodyIdx: 1, Pred: "WebLoadBalancer(Hdr,Prt)"},
	})
	if err == nil {
		t.Fatal("expected unbound-variable validation error")
	}
	if !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDropOnlyBodyPredRejected(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	_, err := Apply(prog, []Change{
		DropBodyPred{RuleID: "r7", BodyIdx: 0, Pred: "PacketIn"},
	})
	if err == nil {
		t.Fatal("expected error deleting only body predicate")
	}
}

func TestInsertTupleChange(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	fe := ndlog.NewTuple("FlowTable", ndlog.Int(3), ndlog.Int(80), ndlog.Int(2))
	p, err := Apply(prog, []Change{InsertTuple{Tuple: fe}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(p.Inserts) != 1 || !p.Inserts[0].Equal(fe) {
		t.Fatalf("inserts = %v", p.Inserts)
	}
	if p.Prog.String() != prog.String() {
		t.Fatal("program should be unchanged by a tuple insertion")
	}
}

func TestDropRule(t *testing.T) {
	prog := ndlog.MustParse("fig2", fig2)
	p, err := Apply(prog, []Change{DropRule{RuleID: "r7"}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if p.Prog.Rule("r7") != nil {
		t.Fatal("r7 still present")
	}
}

func TestResolveExprPaths(t *testing.T) {
	prog := ndlog.MustParse("paths", `
x Out(@A,B) :- In(@A,V), B := V * 2 + 7, V == 3.
`)
	r := prog.Rules[0]
	e, _, err := ResolveExpr(r, "assign/0/L/R")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	c, ok := e.(*ndlog.ConstExpr)
	if !ok || c.Val.Int != 2 {
		t.Fatalf("assign/0/L/R = %v", e)
	}
	e, _, err = ResolveExpr(r, "sel/0/R")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if e.(*ndlog.ConstExpr).Val.Int != 3 {
		t.Fatalf("sel/0/R = %v", e)
	}
	if _, _, err := ResolveExpr(r, "sel/9/L"); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, err := ResolveExpr(r, "nonsense"); err == nil {
		t.Fatal("expected bad-path error")
	}
}

func TestSetExprVariableSubstitution(t *testing.T) {
	// Q5-style fix: change an assignment from the wildcard to a variable.
	prog := ndlog.MustParse("q5", `
f2 Learn(@Swi,Sip2) :- Pkt(@Swi,Sip), Sip2 := *.
`)
	p, err := Apply(prog, []Change{
		SetExpr{RuleID: "f2", Path: "assign/0", Old: "*", New: &ndlog.Var{Name: "Sip"}},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got := p.Prog.Rule("f2").Assigns[0].String(); got != "Sip2 := Sip" {
		t.Fatalf("assign = %q", got)
	}
}

func TestCostOfOrdering(t *testing.T) {
	cheap := CostOf([]Change{SetConst{}})
	mid := CostOf([]Change{SetOper{}})
	exp := CostOf([]Change{DropBodyPred{}})
	if !(cheap < mid && mid < exp) {
		t.Fatalf("cost ordering broken: %v %v %v", cheap, mid, exp)
	}
}
