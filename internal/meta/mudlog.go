package meta

import "repro/internal/ndlog"

// MuDlogMetaProgram is the µDlog meta model of Figure 4, transcribed in
// the NDlog dialect this repository implements. It describes the
// operational semantics of the toy language of §3: how base tuples and
// rule firings produce tuples (h1, h2), how concrete tuples satisfy
// syntactic predicates (p1, p2), how joins are computed (j1, j2), how
// expressions evaluate (e1–e7), and how assignments and selections work
// (a1, s1). The meta program is itself executable by the ndlog engine —
// programs really are just another kind of data — and the package test
// suite evaluates it to rederive the running example's flow entry from
// meta tuples alone.
//
// Differences from the paper's figure are mechanical: µDlog's fixed
// two-column tables let Figure 4 hard-code arities; we keep those
// arities, name the join-ID wildcard * as in the paper, and implement
// f_match/f_join as engine builtins.
const MuDlogMetaProgram = `
materialize(HeadFunc, 1, 6, keys(0,1,2,3,4,5)).
materialize(PredFunc, 1, 5, keys(0,1,2,3,4)).
materialize(Assign, 1, 4, keys(0,1,2,3)).
materialize(Const, 1, 4, keys(0,1,2)).
materialize(Oper, 1, 6, keys(0,1,2,3,4,5)).
materialize(Base, 1, 4, keys(0,1,2,3)).
materialize(Tuple, 1, 4, keys(0,1,2,3)).
materialize(TuplePred, 1, 7, keys(0,1,2,3,4,5,6)).
materialize(PredFuncCount, 1, 3, keys(0,1)).
materialize(Join4, 1, 11, keys(0,1,2)).
materialize(Join2, 1, 7, keys(0,1,2)).
materialize(Expr, 1, 5, keys(0,1,2,3,4)).
materialize(HeadVal, 1, 5, keys(0,1,2,3,4)).
materialize(Sel, 1, 5, keys(0,1,2,3)).

/* h1: base tuples exist as tuples. */
h1 Tuple(@C,Tab,Val1,Val2) :- Base(@C,Tab,Val1,Val2).

/* h2: a rule fires iff both its selection predicates hold on a join and
   the head values are available (µDlog rules have exactly two selection
   predicates, distinguished by SID). */
h2 Tuple(@L,Tab,Val1,Val2) :- HeadFunc(@C,Rul,Tab,Loc,Arg1,Arg2), HeadVal(@C,Rul,JID,Loc,L),
   HeadVal(@C,Rul,JID1,Arg1,Val1), HeadVal(@C,Rul,JID2,Arg2,Val2),
   Sel(@C,Rul,JID,SID,Val), Sel(@C,Rul,JID,SIDb,Valb),
   Val == true, Valb == true, SID != SIDb,
   true == f_match(JID1,JID), true == f_match(JID2,JID).

/* p1: each concrete tuple generates a variable assignment for every
   syntactic predicate over its table. */
p1 TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2) :- Tuple(@C,Tab,Val1,Val2), PredFunc(@C,Rul,Tab,Arg1,Arg2).

/* p2: count the predicates in each rule body. */
p2 PredFuncCount(@C,Rul,a_count<Tab>) :- PredFunc(@C,Rul,Tab,Arg1,Arg2).

/* j1: two-table rules join the full cross product of their predicates. */
j1 Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4) :-
   TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2), TuplePred(@C,Rul,Tabb,Arg3,Arg4,Val3,Val4),
   PredFuncCount(@C,Rul,N), N == 2, Tab != Tabb, JID := f_unique().

/* j2: single-table rules lift the predicate directly. */
j2 Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2) :- TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2),
   PredFuncCount(@C,Rul,N), N == 1, JID := f_unique().

/* e1: constants evaluate on every join (wildcard JID). */
e1 Expr(@C,Rul,JID,ID,Val) :- Const(@C,Rul,ID,Val), JID := *.

/* e2-e3: Join2 columns evaluate as expressions. */
e2 Expr(@C,Rul,JID,Arg1,Val1) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).
e3 Expr(@C,Rul,JID,Arg2,Val2) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).

/* e4-e7: Join4 columns evaluate as expressions. */
e4 Expr(@C,Rul,JID,Arg1,Val1) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e5 Expr(@C,Rul,JID,Arg2,Val2) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e6 Expr(@C,Rul,JID,Arg3,Val3) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e7 Expr(@C,Rul,JID,Arg4,Val4) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).

/* a1: assignments set head values from expressions. */
a1 HeadVal(@C,Rul,JID,Arg,Val) :- Assign(@C,Rul,Arg,ID), Expr(@C,Rul,JID,ID,Val).

/* s1: selection predicates evaluate operator applications over matching
   join states; f_join resolves the JID wildcard. */
s1 Sel(@C,Rul,JID,SID,Val) :- Oper(@C,Rul,SID,IDa,IDb,Opr),
   Expr(@C,Rul,JIDa,IDa,Vala), Expr(@C,Rul,JIDb,IDb,Valb),
   true == f_match(JIDa,JIDb), JID := f_join(JIDa,JIDb),
   Val := f_cmp(Opr,Vala,Valb), IDa != IDb.
`

// MuDlogMetaModel parses the Figure 4 meta program.
func MuDlogMetaModel() *ndlog.Program {
	return ndlog.MustParse("mudlog-meta", MuDlogMetaProgram)
}

// NewMuDlogEngine compiles the meta program with the f_cmp helper the s1
// meta rule uses to apply a reified operator to two values.
func NewMuDlogEngine() (*ndlog.Engine, error) {
	eng, err := ndlog.NewEngine(MuDlogMetaModel())
	if err != nil {
		return nil, err
	}
	eng.Funcs["f_cmp"] = func(_ *ndlog.Engine, args []ndlog.Value) (ndlog.Value, error) {
		if len(args) != 3 {
			return ndlog.Value{}, errArity
		}
		op, ok := ndlog.ParseOp(args[0].Str)
		if !ok {
			return ndlog.Value{}, errArity
		}
		return ndlog.EvalOp(op, args[1], args[2])
	}
	return eng, nil
}

var errArity = &arityError{}

type arityError struct{}

func (*arityError) Error() string { return "meta: f_cmp expects (op, left, right)" }

// MetaTupleKinds counts the meta-tuple kinds the µDlog model defines; the
// paper reports 13 meta tuples and 15 meta rules for µDlog (§3.2). Our
// transcription has the same rule count and one fewer runtime table
// (HeadVal subsumes the paper's per-head bookkeeping).
func MetaTupleKinds() (tuples, rules int) {
	p := MuDlogMetaModel()
	return len(p.Decls), len(p.Rules)
}
