package meta

import (
	"testing"

	"repro/internal/ndlog"
)

// TestMuDlogMetaProgramDerivesFlowEntry evaluates the Figure 4 meta rules
// with our own engine: the µDlog rule r5 (FlowTable(@Swi,Hdr,Prt) :-
// PacketIn(@Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1 in two-column form) is
// loaded as meta tuples, a PacketIn base tuple arrives, and the meta
// program itself derives the flow entry — the program-as-data claim of
// §3.2, executed literally.
func TestMuDlogMetaProgramDerivesFlowEntry(t *testing.T) {
	eng, err := NewMuDlogEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	c := ndlog.Str("C")

	// Program-based meta tuples for a µDlog rule r5 over two-column
	// tuples: PacketIn(Swi, Hdr) with selections Swi == 2, Hdr == 80 and
	// head FlowTable(Swi, Prt) where Prt := 1 (a constant).
	insert := func(tab string, args ...ndlog.Value) {
		eng.Insert(ndlog.NewTuple(tab, append([]ndlog.Value{c}, args...)...))
	}
	// HeadFunc(@C, Rul, Tab, Loc, Arg1, Arg2): head FlowTable(@Swi, Hdr, cPrt).
	insert("HeadFunc", ndlog.Str("r5"), ndlog.Str("FlowTable"), ndlog.Str("Swi"), ndlog.Str("Hdr"), ndlog.Str("cPrt"))
	// PredFunc(@C, Rul, Tab, Arg1, Arg2): body PacketIn(Swi, Hdr).
	insert("PredFunc", ndlog.Str("r5"), ndlog.Str("PacketIn"), ndlog.Str("Swi"), ndlog.Str("Hdr"))
	// Constants: the selection operands 2 and 80, and the head port 1.
	insert("Const", ndlog.Str("r5"), ndlog.Str("c2"), ndlog.Int(2))
	insert("Const", ndlog.Str("r5"), ndlog.Str("c80"), ndlog.Int(80))
	insert("Const", ndlog.Str("r5"), ndlog.Str("cPrt"), ndlog.Int(1))
	// Operators: Swi == 2 (SID s1) and Hdr == 80 (SID s2).
	insert("Oper", ndlog.Str("r5"), ndlog.Str("s1"), ndlog.Str("Swi"), ndlog.Str("c2"), ndlog.Str("=="))
	insert("Oper", ndlog.Str("r5"), ndlog.Str("s2"), ndlog.Str("Hdr"), ndlog.Str("c80"), ndlog.Str("=="))
	// Assignments: head values come from the join columns and constants.
	insert("Assign", ndlog.Str("r5"), ndlog.Str("Swi"), ndlog.Str("Swi"))
	insert("Assign", ndlog.Str("r5"), ndlog.Str("Hdr"), ndlog.Str("Hdr"))
	insert("Assign", ndlog.Str("r5"), ndlog.Str("cPrt"), ndlog.Str("cPrt"))

	// Runtime: the base tuple PacketIn(2, 80) arrives.
	insert("Base", ndlog.Str("PacketIn"), ndlog.Int(2), ndlog.Int(80))

	// The meta program must rederive Tuple(@2, FlowTable, 80, 1): the
	// rule fired, placing the entry at switch 2 with port 1.
	found := false
	for _, row := range eng.Rows("Tuple") {
		if row.Args[1].Equal(ndlog.Str("FlowTable")) {
			found = true
			if row.Args[0].Int != 2 {
				t.Errorf("flow entry at location %v, want 2", row.Args[0])
			}
			if row.Args[2].Int != 80 || row.Args[3].Int != 1 {
				t.Errorf("flow entry values = %v,%v want 80,1", row.Args[2], row.Args[3])
			}
		}
	}
	if !found {
		for _, tab := range []string{"Tuple", "TuplePred", "Join2", "Expr", "HeadVal", "Sel"} {
			for _, row := range eng.Rows(tab) {
				t.Logf("%s: %s", tab, row)
			}
		}
		t.Fatal("meta program failed to derive the flow entry")
	}
}

// TestMuDlogMetaProgramRespectsSelections checks the negative case: a
// packet that fails a selection must not derive a flow entry.
func TestMuDlogMetaProgramRespectsSelections(t *testing.T) {
	eng, err := NewMuDlogEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	c := ndlog.Str("C")
	insert := func(tab string, args ...ndlog.Value) {
		eng.Insert(ndlog.NewTuple(tab, append([]ndlog.Value{c}, args...)...))
	}
	insert("HeadFunc", ndlog.Str("r5"), ndlog.Str("FlowTable"), ndlog.Str("Swi"), ndlog.Str("Hdr"), ndlog.Str("cPrt"))
	insert("PredFunc", ndlog.Str("r5"), ndlog.Str("PacketIn"), ndlog.Str("Swi"), ndlog.Str("Hdr"))
	insert("Const", ndlog.Str("r5"), ndlog.Str("c2"), ndlog.Int(2))
	insert("Const", ndlog.Str("r5"), ndlog.Str("c80"), ndlog.Int(80))
	insert("Const", ndlog.Str("r5"), ndlog.Str("cPrt"), ndlog.Int(1))
	insert("Oper", ndlog.Str("r5"), ndlog.Str("s1"), ndlog.Str("Swi"), ndlog.Str("c2"), ndlog.Str("=="))
	insert("Oper", ndlog.Str("r5"), ndlog.Str("s2"), ndlog.Str("Hdr"), ndlog.Str("c80"), ndlog.Str("=="))
	insert("Assign", ndlog.Str("r5"), ndlog.Str("Swi"), ndlog.Str("Swi"))
	insert("Assign", ndlog.Str("r5"), ndlog.Str("Hdr"), ndlog.Str("Hdr"))
	insert("Assign", ndlog.Str("r5"), ndlog.Str("cPrt"), ndlog.Str("cPrt"))

	// Switch 3 fails Swi == 2: no flow entry may appear (this is the
	// Figure 1 symptom at the meta level).
	insert("Base", ndlog.Str("PacketIn"), ndlog.Int(3), ndlog.Int(80))
	for _, row := range eng.Rows("Tuple") {
		if row.Args[1].Equal(ndlog.Str("FlowTable")) {
			t.Fatalf("selection violated: derived %s", row)
		}
	}
}

func TestMetaTupleKinds(t *testing.T) {
	tuples, rules := MetaTupleKinds()
	// The paper reports 13 meta tuples and 15 meta rules for µDlog; our
	// transcription has 14 tables (h2's head bookkeeping is a table here)
	// and 15 rules.
	if rules != 15 {
		t.Errorf("meta rules = %d, want 15 (Figure 4)", rules)
	}
	if tuples < 13 || tuples > 14 {
		t.Errorf("meta tuple kinds = %d, want 13-14", tuples)
	}
}
