package meta

import (
	"fmt"

	"repro/internal/ndlog"
)

// NDlogMetaTemplate is the full-NDlog meta model of Appendix B.1
// (Figure 11), written as template rules over arity specifiers and
// expanded per Table 4. Unlike µDlog, real NDlog tables have arbitrary
// arities, so each syntactic family (base insertion, tuple derivation,
// predicate matching, joining, expression evaluation, assignment,
// constraints) is one template that expands into a rule per arity.
//
// The transcription covers the h (derivation), p (predicate), j (join),
// e (expression), a (assignment), and c (constraint) families of
// Figure 11; the paper counts 23 meta rules for its model, and the
// template families below expand to at least that many concrete rules at
// any arity bound >= 2. The g (AggWrap) family is realized by the
// engine's native a_count aggregation rather than meta rules, a
// difference DESIGN.md records.
const NDlogMetaTemplate = `
/* h1: base tuples of arity k exist as tuples (message path). */
h1 Tuple(k)(@C,Tab,Vals[k]) :- Base(k)(@C,Tab,Vals[k]).

/* p1: a concrete tuple satisfies each syntactic predicate over its table,
   producing one variable assignment per predicate occurrence. */
p1 TuplePred(k)(@C,Rul,Tab,Args[k],Vals[k]) :- Tuple(k)(@C,Tab,Vals[k]), PredicateMeta(k)(@C,Rul,Tab,Args[k]).

/* p2: count the predicates in each rule body. */
p2 PredicateCount(@C,Rul,a_count<Tab>) :- PredicateMeta2(@C,Rul,Tab,Arg1,Arg2).

/* j2: single-predicate rules lift the match into a join state. */
j2 Join(k)(@C,Rul,JID,Args[k],Vals[k]) :- TuplePred(k)(@C,Rul,Tab,Args[k],Vals[k]), JID := f_unique().

/* e1: constants evaluate on every join (wildcard JID). */
e1 Expression(@C,Rul,JID,ID,Val) :- Constant(@C,Rul,ID,Val), JID := *.

/* e2: every join column evaluates as an expression. */
e2 Expression(@C,Rul,JID,Args{k},Vals{k}) :- Join(k)(@C,Rul,JID,Args[k],Vals[k]).

/* e3: composite expressions apply a reified operator to sub-expressions. */
e3 Expression(@C,Rul,JID,ID3,Val) :- Operator(@C,Rul,ID3,Opr), LeftEdge(@C,Rul,ID1,ID3),
   RightEdge(@C,Rul,ID2,ID3), Expression(@C,Rul,JIDa,ID1,Val1), Expression(@C,Rul,JIDb,ID2,Val2),
   true == f_match(JIDa,JIDb), JID := f_join(JIDa,JIDb), Val := f_cmp(Opr,Val1,Val2), ID1 != ID2.

/* a1: assignments bind head values from expressions. */
a1 HeadValue(@C,Rul,JID,Arg,Val) :- AssignMeta(@C,Rul,Arg,ID), Expression(@C,Rul,JID,ID,Val).

/* c1: count a rule's constraints. */
c1 ConstraintCount(@C,Rul,a_count<ID>) :- IsConstraint(@C,Rul,ID).

/* c2: a constraint holds on a join when its boolean expression is true. */
c2 Constraint(@C,Rul,JID,ID,Val) :- Expression(@C,Rul,JID,ID,Val), IsConstraint(@C,Rul,ID).
`

// NDlogMetaModel expands the Appendix B.1 template model up to the given
// arity bound and parses it.
func NDlogMetaModel(maxK int) (*ndlog.Program, error) {
	decls := declsUpTo(maxK)
	src := decls + ExpandTemplates(NDlogMetaTemplate, maxK)
	return ndlog.Parse("ndlog-meta", src)
}

// declsUpTo emits materialize declarations for the per-arity tables.
func declsUpTo(maxK int) string {
	out := ""
	for k := 1; k <= maxK; k++ {
		// Base(k)(@C,Tab,Vals[k]) and Tuple(k): 2+k columns.
		out += fmt.Sprintf("materialize(Base%d, 1, %d, keys(", k, 2+k)
		out += keyList(2+k) + ")).\n"
		out += fmt.Sprintf("materialize(Tuple%d, 1, %d, keys(", k, 2+k)
		out += keyList(2+k) + ")).\n"
		// PredicateMeta(k): @C,Rul,Tab,Args[k] = 3+k columns.
		out += fmt.Sprintf("materialize(PredicateMeta%d, 1, %d, keys(", k, 3+k)
		out += keyList(3+k) + ")).\n"
		// TuplePred(k): @C,Rul,Tab,Args[k],Vals[k] = 3+2k columns.
		out += fmt.Sprintf("materialize(TuplePred%d, 1, %d, keys(", k, 3+2*k)
		out += keyList(3+2*k) + ")).\n"
		// Join(k): @C,Rul,JID,Args[k],Vals[k] = 3+2k columns.
		out += fmt.Sprintf("materialize(Join%d, 1, %d, keys(", k, 3+2*k)
		out += keyList(3+2*k) + ")).\n"
	}
	out += "materialize(PredicateCount, 1, 3, keys(0,1)).\n"
	out += "materialize(Constant, 1, 4, keys(0,1,2)).\n"
	out += "materialize(Operator, 1, 4, keys(0,1,2)).\n"
	out += "materialize(LeftEdge, 1, 4, keys(0,1,2,3)).\n"
	out += "materialize(RightEdge, 1, 4, keys(0,1,2,3)).\n"
	out += "materialize(AssignMeta, 1, 4, keys(0,1,2,3)).\n"
	out += "materialize(IsConstraint, 1, 3, keys(0,1,2)).\n"
	out += "materialize(ConstraintCount, 1, 3, keys(0,1)).\n"
	out += "materialize(Expression, 1, 5, keys(0,1,2,3,4)).\n"
	out += "materialize(HeadValue, 1, 5, keys(0,1,2,3,4)).\n"
	out += "materialize(Constraint, 1, 5, keys(0,1,2,3)).\n"
	return out
}

func keyList(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(i)
	}
	return s
}

// NewNDlogMetaEngine compiles the expanded Appendix B.1 model with the
// f_cmp helper (shared with the µDlog model).
func NewNDlogMetaEngine(maxK int) (*ndlog.Engine, error) {
	prog, err := NDlogMetaModel(maxK)
	if err != nil {
		return nil, err
	}
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	eng.Funcs["f_cmp"] = func(_ *ndlog.Engine, args []ndlog.Value) (ndlog.Value, error) {
		if len(args) != 3 {
			return ndlog.Value{}, errArity
		}
		op, ok := ndlog.ParseOp(args[0].Str)
		if !ok {
			return ndlog.Value{}, errArity
		}
		return ndlog.EvalOp(op, args[1], args[2])
	}
	return eng, nil
}
