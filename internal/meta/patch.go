package meta

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/ndlog"
)

// Patch is the result of applying a repair candidate: a modified program
// plus any manual base-tuple insertions or deletions the candidate calls
// for. The original program is never mutated.
type Patch struct {
	Prog    *ndlog.Program
	Inserts []ndlog.Tuple
	Deletes []ndlog.Tuple
}

// Change is one meta-tuple edit: an update, insertion, or deletion of a
// syntactic element or base tuple. Changes apply to a Patch in place.
type Change interface {
	ApplyTo(p *Patch) error
	Kind() cost.Kind
	String() string
}

// Apply clones the program and applies all changes, returning the patch.
// Rule additions apply first (so follow-up edits can target the new rule);
// changes that delete indexed elements from the same rule are applied in
// descending index order so earlier deletions do not shift later ones.
func Apply(prog *ndlog.Program, changes []Change) (*Patch, error) {
	p := &Patch{Prog: prog.Clone()}
	ordered := append([]Change(nil), changes...)
	sort.SliceStable(ordered, func(i, j int) bool {
		pi, pj := precedence(ordered[i]), precedence(ordered[j])
		if pi != pj {
			return pi < pj
		}
		return deleteIndex(ordered[i]) > deleteIndex(ordered[j])
	})
	for _, c := range ordered {
		if err := c.ApplyTo(p); err != nil {
			return nil, err
		}
	}
	if err := Validate(p.Prog); err != nil {
		return nil, err
	}
	return p, nil
}

func precedence(c Change) int {
	if _, ok := c.(AddRule); ok {
		return 0
	}
	return 1
}

func deleteIndex(c Change) int {
	switch c := c.(type) {
	case DropSel:
		return c.SelIdx
	case DropBodyPred:
		return c.BodyIdx
	}
	return -1
}

// CostOf sums the cost of a change list.
func CostOf(changes []Change) float64 {
	var total float64
	for _, c := range changes {
		total += cost.Of(c.Kind())
	}
	return total
}

// SetConst updates the constant at Path in rule RuleID to New (the
// "change constant" repair, e.g. Swi==2 → Swi==3).
type SetConst struct {
	RuleID string
	Path   string
	Old    ndlog.Value
	New    ndlog.Value
}

// ApplyTo implements Change.
func (c SetConst) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	e, set, err := ResolveExpr(r, c.Path)
	if err != nil {
		return err
	}
	if _, ok := e.(*ndlog.ConstExpr); !ok {
		return fmt.Errorf("meta: %s/%s is not a constant", c.RuleID, c.Path)
	}
	set(&ndlog.ConstExpr{Val: c.New})
	return nil
}

// Kind implements Change.
func (c SetConst) Kind() cost.Kind { return cost.ChangeConstant }

func (c SetConst) String() string {
	return fmt.Sprintf("change constant %s in %s (%s) to %s", c.Old, c.RuleID, c.Path, c.New)
}

// SetOper changes a selection's comparison operator (== → !=, <, ...).
type SetOper struct {
	RuleID string
	SelIdx int
	Old    ndlog.BinOp
	New    ndlog.BinOp
	Sel    string // rendered original selection, for display
}

// ApplyTo implements Change.
func (c SetOper) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	if c.SelIdx < 0 || c.SelIdx >= len(r.Sels) {
		return fmt.Errorf("meta: %s has no selection %d", c.RuleID, c.SelIdx)
	}
	r.Sels[c.SelIdx].Op = c.New
	return nil
}

// Kind implements Change.
func (c SetOper) Kind() cost.Kind { return cost.ChangeOperator }

func (c SetOper) String() string {
	return fmt.Sprintf("change operator %s to %s in %s (%s)", c.Old, c.New, c.RuleID, c.Sel)
}

// SetExpr replaces the expression at Path with a new expression (used for
// variable substitutions such as Sip':=* → Sip':=Sip).
type SetExpr struct {
	RuleID string
	Path   string
	Old    string
	New    ndlog.Expr
}

// ApplyTo implements Change.
func (c SetExpr) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	_, set, err := ResolveExpr(r, c.Path)
	if err != nil {
		return err
	}
	set(c.New.Clone())
	return nil
}

// Kind implements Change.
func (c SetExpr) Kind() cost.Kind { return cost.ChangeVariable }

func (c SetExpr) String() string {
	return fmt.Sprintf("change %s in %s (%s) to %s", c.Old, c.RuleID, c.Path, c.New.String())
}

// DropSel deletes a selection predicate from a rule.
type DropSel struct {
	RuleID string
	SelIdx int
	Sel    string
}

// ApplyTo implements Change.
func (c DropSel) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	if c.SelIdx < 0 || c.SelIdx >= len(r.Sels) {
		return fmt.Errorf("meta: %s has no selection %d", c.RuleID, c.SelIdx)
	}
	r.Sels = append(r.Sels[:c.SelIdx], r.Sels[c.SelIdx+1:]...)
	return nil
}

// Kind implements Change.
func (c DropSel) Kind() cost.Kind { return cost.DeleteSelection }

func (c DropSel) String() string {
	return fmt.Sprintf("delete %s in %s", c.Sel, c.RuleID)
}

// DropBodyPred deletes a body predicate from a rule. Validation rejects the
// resulting rule if it leaves variables unbound (the paper's syntactic
// validity guard, §4.2).
type DropBodyPred struct {
	RuleID  string
	BodyIdx int
	Pred    string
}

// ApplyTo implements Change.
func (c DropBodyPred) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	if c.BodyIdx < 0 || c.BodyIdx >= len(r.Body) {
		return fmt.Errorf("meta: %s has no body predicate %d", c.RuleID, c.BodyIdx)
	}
	if len(r.Body) == 1 {
		return fmt.Errorf("meta: cannot delete the only body predicate of %s", c.RuleID)
	}
	r.Body = append(r.Body[:c.BodyIdx], r.Body[c.BodyIdx+1:]...)
	return nil
}

// Kind implements Change.
func (c DropBodyPred) Kind() cost.Kind { return cost.DeleteBodyPredicate }

func (c DropBodyPred) String() string {
	return fmt.Sprintf("delete predicate %s in %s", c.Pred, c.RuleID)
}

// DropRule deletes a whole rule.
type DropRule struct{ RuleID string }

// ApplyTo implements Change.
func (c DropRule) ApplyTo(p *Patch) error {
	for i, r := range p.Prog.Rules {
		if r.ID == c.RuleID {
			p.Prog.Rules = append(p.Prog.Rules[:i], p.Prog.Rules[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("meta: no rule %s", c.RuleID)
}

// Kind implements Change.
func (c DropRule) Kind() cost.Kind { return cost.DeleteRule }

func (c DropRule) String() string { return fmt.Sprintf("delete rule %s", c.RuleID) }

// AddRule inserts a new rule (the highest-cost program change).
type AddRule struct{ Rule *ndlog.Rule }

// ApplyTo implements Change.
func (c AddRule) ApplyTo(p *Patch) error {
	if p.Prog.Rule(c.Rule.ID) != nil {
		return fmt.Errorf("meta: duplicate rule ID %s", c.Rule.ID)
	}
	r := c.Rule.Clone()
	if r.TagMask == 0 {
		r.TagMask = ndlog.AllTags
	}
	p.Prog.Rules = append(p.Prog.Rules, r)
	return nil
}

// Kind implements Change.
func (c AddRule) Kind() cost.Kind { return cost.AddRule }

func (c AddRule) String() string { return fmt.Sprintf("add rule %s", c.Rule.String()) }

// SetHeadTable renames a rule's head table (e.g. FlowTable → PacketOut,
// the "changing the head of e2" repairs of Table 6(c)).
type SetHeadTable struct {
	RuleID string
	Old    string
	New    string
}

// ApplyTo implements Change.
func (c SetHeadTable) ApplyTo(p *Patch) error {
	r := p.Prog.Rule(c.RuleID)
	if r == nil {
		return fmt.Errorf("meta: no rule %s", c.RuleID)
	}
	r.Head.Table = c.New
	return nil
}

// Kind implements Change.
func (c SetHeadTable) Kind() cost.Kind { return cost.ChangeVariable }

func (c SetHeadTable) String() string {
	return fmt.Sprintf("change the head of %s to %s", c.RuleID, c.New)
}

// InsertTuple is a manual base-tuple insertion (e.g. manually installing a
// flow entry — candidate A of Table 2).
type InsertTuple struct{ Tuple ndlog.Tuple }

// ApplyTo implements Change.
func (c InsertTuple) ApplyTo(p *Patch) error {
	p.Inserts = append(p.Inserts, c.Tuple.Clone())
	return nil
}

// Kind implements Change.
func (c InsertTuple) Kind() cost.Kind { return cost.InsertBaseTuple }

func (c InsertTuple) String() string {
	return fmt.Sprintf("manually insert %s", c.Tuple)
}

// DeleteTuple is a manual base-tuple deletion.
type DeleteTuple struct{ Tuple ndlog.Tuple }

// ApplyTo implements Change.
func (c DeleteTuple) ApplyTo(p *Patch) error {
	p.Deletes = append(p.Deletes, c.Tuple.Clone())
	return nil
}

// Kind implements Change.
func (c DeleteTuple) Kind() cost.Kind { return cost.DeleteBaseTuple }

func (c DeleteTuple) String() string {
	return fmt.Sprintf("manually delete %s", c.Tuple)
}

// Validate checks program-level syntactic validity after a patch: every
// rule must bind all head and guard variables from its body predicates and
// assignments. This is the guard that rejects changes violating the
// grammar (§4.2's "Swi >" example).
func Validate(prog *ndlog.Program) error {
	for _, r := range prog.Rules {
		if err := ValidateRule(r); err != nil {
			return err
		}
	}
	return nil
}

// ValidateRule checks a single rule's variable binding discipline.
func ValidateRule(r *ndlog.Rule) error {
	bound := make(map[string]bool)
	for _, b := range r.Body {
		for _, a := range b.Args {
			for _, v := range a.Vars(nil) {
				bound[v] = true
			}
		}
	}
	// Assignments bind their target; iterate to a fixed point to honour
	// dependency order.
	for changed := true; changed; {
		changed = false
		for _, a := range r.Assigns {
			if bound[a.Var] {
				continue
			}
			ok := true
			for _, v := range a.Expr.Vars(nil) {
				if !bound[v] {
					ok = false
					break
				}
			}
			if ok {
				bound[a.Var] = true
				changed = true
			}
		}
	}
	check := func(e ndlog.Expr, where string) error {
		for _, v := range e.Vars(nil) {
			if v == "_" {
				continue
			}
			if !bound[v] {
				return fmt.Errorf("meta: rule %s: unbound variable %s in %s", r.ID, v, where)
			}
		}
		return nil
	}
	for _, s := range r.Sels {
		if err := check(s.Left, "selection "+s.String()); err != nil {
			return err
		}
		if err := check(s.Right, "selection "+s.String()); err != nil {
			return err
		}
	}
	for _, a := range r.Assigns {
		if err := check(a.Expr, "assignment "+a.String()); err != nil {
			return err
		}
	}
	for _, a := range r.Head.Args {
		if err := check(a, "head"); err != nil {
			return err
		}
	}
	return nil
}
