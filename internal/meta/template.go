package meta

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file implements the template-rule expansion of Appendix B
// (Table 4): the full NDlog meta model is written as template rules with
// arity specifiers, each of which expands into a family of concrete rules.
// The four procedures of Table 4:
//
//	(k)        -> the literal arity k              A(@X):-B(@X,Z),Z==(k).
//	Z[k]       -> Z1, ..., Zk                      B(k)(@X,Z[k])
//	B(@X,Z{k}) -> B(@X,Z1), ..., B(@X,Zk)          one predicate per index
//	Z{k}>Z{k'} -> pairwise i<j combinations        Z1>Z2, ...
//	Z{k}>Z{k''}-> ordered i!=j combinations
//
// Expansion is purely textual (the templates are themselves NDlog source),
// mirroring the paper's presentation; the expanded text parses with the
// ordinary ndlog parser.

var (
	arityLit   = regexp.MustCompile(`\((k)\)`)           // (k) literal
	vecPat     = regexp.MustCompile(`(\w+)\[k\]`)        // Z[k] vectors
	namedArity = regexp.MustCompile(`(\w+)\((k)\)\(`)    // B(k)( table-with-arity
	idxPat     = regexp.MustCompile(`(\w+)\{k('{0,2})}`) // Z{k}, Z{k'}, Z{k''}
)

// ExpandTemplate expands one template rule at a concrete arity k,
// following Table 4. Terms containing {k}/{k'}/{k”} indices expand into
// the appropriate combinations; the caller joins the resulting concrete
// rule sources.
func ExpandTemplate(src string, k int) []string {
	if k < 1 {
		return nil
	}
	// 1. Table/predicate arity suffixes: B(k)(...) -> Bk(...).
	out := namedArity.ReplaceAllStringFunc(src, func(m string) string {
		sub := namedArity.FindStringSubmatch(m)
		return fmt.Sprintf("%s%d(", sub[1], k)
	})
	// 2. Vectors: Z[k] -> Z1,...,Zk.
	out = vecPat.ReplaceAllStringFunc(out, func(m string) string {
		name := vecPat.FindStringSubmatch(m)[1]
		parts := make([]string, k)
		for i := range parts {
			parts[i] = fmt.Sprintf("%s%d", name, i+1)
		}
		return strings.Join(parts, ",")
	})
	// 3. Literal arity: (k) -> k.
	out = arityLit.ReplaceAllString(out, strconv.Itoa(k))

	// 4. Indexed terms: if the rule still mentions {k} indices, expand
	// the combination space. A term with {k} ranges over 1..k; {k'}
	// ranges with i<j; {k''} ranges with i!=j.
	if !idxPat.MatchString(out) {
		return []string{out}
	}
	var results []string
	kinds := indexKinds(out)
	switch {
	case kinds["''"]:
		for i := 1; i <= k; i++ {
			for j := 1; j <= k; j++ {
				if i == j {
					continue
				}
				results = append(results, substIndices(out, i, j))
			}
		}
	case kinds["'"]:
		for i := 1; i <= k; i++ {
			for j := i + 1; j <= k; j++ {
				results = append(results, substIndices(out, j, i))
			}
		}
	default:
		for i := 1; i <= k; i++ {
			results = append(results, substIndices(out, i, i))
		}
	}
	return results
}

// indexKinds reports which index decorations appear in the template.
func indexKinds(src string) map[string]bool {
	kinds := make(map[string]bool)
	for _, m := range idxPat.FindAllStringSubmatch(src, -1) {
		kinds[m[2]] = true
	}
	return kinds
}

// substIndices replaces {k} with base and {k'}/{k”} with other.
func substIndices(src string, base, other int) string {
	return idxPat.ReplaceAllStringFunc(src, func(m string) string {
		sub := idxPat.FindStringSubmatch(m)
		if sub[2] == "" {
			return fmt.Sprintf("%s%d", sub[1], base)
		}
		return fmt.Sprintf("%s%d", sub[1], other)
	})
}

// ExpandTemplates expands every template rule in a program source over
// arities 1..maxK, deduplicating rules that expand identically (templates
// without arity specifiers expand to themselves). Rule identifiers get an
// arity suffix so the expanded program has unique IDs.
func ExpandTemplates(src string, maxK int) string {
	var b strings.Builder
	seen := make(map[string]bool)
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") ||
			strings.HasPrefix(trimmed, "/*") || strings.HasPrefix(trimmed, "materialize") {
			if !seen[trimmed] {
				b.WriteString(line)
				b.WriteByte('\n')
				if strings.HasPrefix(trimmed, "materialize") {
					seen[trimmed] = true
				}
			}
			continue
		}
		hasArity := strings.Contains(trimmed, "(k)") || strings.Contains(trimmed, "[k]") ||
			idxPat.MatchString(trimmed)
		if !hasArity {
			if !seen[trimmed] {
				seen[trimmed] = true
				b.WriteString(line)
				b.WriteByte('\n')
			}
			continue
		}
		for k := 1; k <= maxK; k++ {
			for i, exp := range ExpandTemplate(trimmed, k) {
				// Make the rule ID unique per (arity, combination).
				fields := strings.SplitN(exp, " ", 2)
				if len(fields) == 2 {
					exp = fmt.Sprintf("%s_k%d_%d %s", fields[0], k, i, fields[1])
				}
				if !seen[exp] {
					seen[exp] = true
					b.WriteString(exp)
					b.WriteByte('\n')
				}
			}
		}
	}
	return b.String()
}
