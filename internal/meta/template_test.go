package meta

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

func TestExpandTemplateVectors(t *testing.T) {
	// Table 4 row 2: Z[k] -> Z1,...,Zk and B(k) -> Bk.
	got := ExpandTemplate(`h Base(k)(@C,Tab,Vals[k]) :- In(k)(@C,Vals[k]).`, 3)
	if len(got) != 1 {
		t.Fatalf("expansions = %d", len(got))
	}
	want := `h Base3(@C,Tab,Vals1,Vals2,Vals3) :- In3(@C,Vals1,Vals2,Vals3).`
	if got[0] != want {
		t.Fatalf("got %q\nwant %q", got[0], want)
	}
}

func TestExpandTemplateLiteralArity(t *testing.T) {
	// Table 4 row 1: (k) in expression position becomes the literal k.
	got := ExpandTemplate(`a A(@X) :- B(@X,Z), Z == (k).`, 2)
	if got[0] != `a A(@X) :- B(@X,Z), Z == 2.` {
		t.Fatalf("got %q", got[0])
	}
}

func TestExpandTemplateIndexedSimple(t *testing.T) {
	// Table 4 row 3: B(@X,Z{k}) -> one rule per index.
	got := ExpandTemplate(`a A(@X) :- B(@X,Z{k}).`, 3)
	if len(got) != 3 {
		t.Fatalf("expansions = %d: %v", len(got), got)
	}
	if got[0] != `a A(@X) :- B(@X,Z1).` || got[2] != `a A(@X) :- B(@X,Z3).` {
		t.Fatalf("got %v", got)
	}
}

func TestExpandTemplateOrderedPairs(t *testing.T) {
	// Table 4 row 4: Z{k} > Z{k'} -> i<j combinations.
	got := ExpandTemplate(`a A(@X) :- B(@X,Z{k},Z{k'}), Z{k} > Z{k'}.`, 3)
	if len(got) != 3 { // (1,2), (1,3), (2,3)
		t.Fatalf("expansions = %d: %v", len(got), got)
	}
	for _, g := range got {
		if strings.Contains(g, "{") {
			t.Fatalf("unexpanded index in %q", g)
		}
	}
}

func TestExpandTemplateDistinctPairs(t *testing.T) {
	// Table 4 row 5: Z{k} vs Z{k''} -> ordered i != j combinations.
	got := ExpandTemplate(`a A(@X) :- B(@X,Z{k},Z{k''}).`, 3)
	if len(got) != 6 {
		t.Fatalf("expansions = %d", len(got))
	}
}

func TestExpandTemplatesProgramParses(t *testing.T) {
	// An expanded template program must parse with the ordinary parser
	// and produce unique rule IDs.
	src := `
materialize(Base2, 1, 4, keys(0,1,2,3)).
h Tuple(k)(@C,Tab,Vals[k]) :- Base(k)(@C,Tab,Vals[k]).
`
	expanded := ExpandTemplates(src, 3)
	prog, err := ndlog.Parse("expanded", expanded)
	if err != nil {
		t.Fatalf("expanded program does not parse: %v\n%s", err, expanded)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d, want 3 (arities 1..3)", len(prog.Rules))
	}
	ids := map[string]bool{}
	for _, r := range prog.Rules {
		if ids[r.ID] {
			t.Fatalf("duplicate rule ID %s", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestNDlogMetaModelExpands(t *testing.T) {
	prog, err := NDlogMetaModel(4)
	if err != nil {
		t.Fatalf("meta model: %v", err)
	}
	if len(prog.Rules) == 0 {
		t.Fatal("no rules")
	}
	// The paper reports 23 meta rules for the full NDlog template model;
	// our transcription covers the tuple-derivation, predicate, join,
	// expression, assignment, and constraint families. Expansion at
	// arity 4 must yield a multiple of that.
	if len(prog.Rules) < 23 {
		t.Fatalf("expanded rules = %d, want >= 23", len(prog.Rules))
	}
	// Every expanded rule must be engine-compilable.
	if _, err := ndlog.NewEngine(prog); err != nil {
		t.Fatalf("expanded meta model does not compile: %v", err)
	}
}

func TestNDlogMetaModelDerives(t *testing.T) {
	// End-to-end: a 2-column base tuple flows through the expanded
	// NDlog meta model's h1 family into the Tuple2 relation.
	eng, err := NewNDlogMetaEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	eng.Insert(ndlog.NewTuple("Base2", ndlog.Str("C"), ndlog.Str("PacketIn"), ndlog.Int(2), ndlog.Int(80)))
	rows := eng.Rows("Tuple2")
	if len(rows) != 1 {
		t.Fatalf("Tuple2 rows = %d", len(rows))
	}
	if rows[0].Args[2].Int != 2 || rows[0].Args[3].Int != 80 {
		t.Fatalf("row = %v", rows[0])
	}
	// A 3-column base tuple flows through the k=3 expansion.
	eng.Insert(ndlog.NewTuple("Base3", ndlog.Str("C"), ndlog.Str("T3"), ndlog.Int(1), ndlog.Int(2), ndlog.Int(3)))
	if len(eng.Rows("Tuple3")) != 1 {
		t.Fatalf("Tuple3 rows = %d", len(eng.Rows("Tuple3")))
	}
}
