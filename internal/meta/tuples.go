// Package meta implements the paper's meta model (§3.2): it treats the
// program as just another kind of data. Program-based meta tuples expose
// every syntactic element of an NDlog program (constants, operators,
// predicates, rule heads, assignments) with stable identities, and patches
// (meta-tuple insertions, deletions, and updates) fold program changes back
// into an AST. The meta provenance forest (package metaprov) reasons over
// these tuples; the repair generator emits them as concrete fixes.
package meta

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ndlog"
)

// ConstRef identifies one constant occurrence inside a rule by a stable
// path: "head/2", "sel/0/L", "sel/0/R", "assign/1", "body/1/0", with
// "/L", "/R", "/a<i>" segments for nested expressions.
type ConstRef struct {
	Rule string
	Path string
	Val  ndlog.Value
}

// String renders the reference, e.g. Const(r7, sel/0/R, 2).
func (c ConstRef) String() string {
	return fmt.Sprintf("Const(%s, %s, %s)", c.Rule, c.Path, c.Val)
}

// OperRef identifies one selection operator occurrence.
type OperRef struct {
	Rule   string
	SelIdx int
	Op     ndlog.BinOp
	Sel    string // rendered selection, for display
}

// String renders the reference, e.g. Oper(r7, 0, ==).
func (o OperRef) String() string {
	return fmt.Sprintf("Oper(%s, %d, %s)", o.Rule, o.SelIdx, o.Op)
}

// PredRef identifies one body predicate occurrence.
type PredRef struct {
	Rule  string
	Idx   int
	Table string
	Args  []string // rendered argument expressions
}

// String renders the reference, e.g. PredFunc(r1, 1, WebLoadBalancer).
func (p PredRef) String() string {
	return fmt.Sprintf("PredFunc(%s, %d, %s)", p.Rule, p.Idx, p.Table)
}

// HeadRef identifies a rule head.
type HeadRef struct {
	Rule  string
	Table string
	Args  []string
}

// String renders the reference.
func (h HeadRef) String() string {
	return fmt.Sprintf("HeadFunc(%s, %s)", h.Rule, h.Table)
}

// AssignRef identifies one assignment occurrence.
type AssignRef struct {
	Rule string
	Idx  int
	Var  string
	Expr string
}

// String renders the reference.
func (a AssignRef) String() string {
	return fmt.Sprintf("Assign(%s, %d, %s)", a.Rule, a.Idx, a.Var)
}

// Model is the program-based meta-tuple view of a program (§3.2): every
// syntactic element, indexed for the exploration and repair passes.
type Model struct {
	Prog    *ndlog.Program
	Consts  []ConstRef
	Opers   []OperRef
	Preds   []PredRef
	Heads   []HeadRef
	Assigns []AssignRef

	derivedTables map[string]bool // tables appearing as some rule head
}

// NewModel extracts the meta tuples of a program.
func NewModel(prog *ndlog.Program) *Model {
	m := &Model{Prog: prog, derivedTables: make(map[string]bool)}
	for _, r := range prog.Rules {
		m.derivedTables[r.Head.Table] = true
		m.Heads = append(m.Heads, HeadRef{Rule: r.ID, Table: r.Head.Table, Args: renderArgs(r.Head.Args)})
		for i, a := range r.Head.Args {
			m.collectConsts(r.ID, "head/"+strconv.Itoa(i), a)
		}
		for i, b := range r.Body {
			m.Preds = append(m.Preds, PredRef{Rule: r.ID, Idx: i, Table: b.Table, Args: renderArgs(b.Args)})
			for j, a := range b.Args {
				m.collectConsts(r.ID, fmt.Sprintf("body/%d/%d", i, j), a)
			}
		}
		for i, s := range r.Sels {
			m.Opers = append(m.Opers, OperRef{Rule: r.ID, SelIdx: i, Op: s.Op, Sel: s.String()})
			m.collectConsts(r.ID, fmt.Sprintf("sel/%d/L", i), s.Left)
			m.collectConsts(r.ID, fmt.Sprintf("sel/%d/R", i), s.Right)
		}
		for i, a := range r.Assigns {
			m.Assigns = append(m.Assigns, AssignRef{Rule: r.ID, Idx: i, Var: a.Var, Expr: a.Expr.String()})
			m.collectConsts(r.ID, "assign/"+strconv.Itoa(i), a.Expr)
		}
	}
	return m
}

func renderArgs(args []ndlog.Expr) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = a.String()
	}
	return out
}

func (m *Model) collectConsts(rule, path string, e ndlog.Expr) {
	switch e := e.(type) {
	case *ndlog.ConstExpr:
		m.Consts = append(m.Consts, ConstRef{Rule: rule, Path: path, Val: e.Val})
	case *ndlog.Binary:
		m.collectConsts(rule, path+"/L", e.L)
		m.collectConsts(rule, path+"/R", e.R)
	case *ndlog.Call:
		for i, a := range e.Args {
			m.collectConsts(rule, fmt.Sprintf("%s/a%d", path, i), a)
		}
	}
}

// TupleCount returns the total number of program-based meta tuples, the
// quantity the paper reports per language model.
func (m *Model) TupleCount() int {
	return len(m.Consts) + len(m.Opers) + len(m.Preds) + len(m.Heads) + len(m.Assigns)
}

// IsDerived reports whether any rule derives into the table; base tables
// (never derived) are candidates for manual tuple insertion repairs.
func (m *Model) IsDerived(table string) bool { return m.derivedTables[table] }

// RulesDeriving returns the rules whose head is the given table.
func (m *Model) RulesDeriving(table string) []*ndlog.Rule {
	var out []*ndlog.Rule
	for _, r := range m.Prog.Rules {
		if r.Head.Table == table {
			out = append(out, r)
		}
	}
	return out
}

// ResolveExpr returns the expression at a path within a rule, plus a setter
// that replaces it in the AST. Paths are as produced by NewModel.
func ResolveExpr(r *ndlog.Rule, path string) (ndlog.Expr, func(ndlog.Expr), error) {
	parts := strings.Split(path, "/")
	if len(parts) < 2 {
		return nil, nil, fmt.Errorf("meta: bad path %q", path)
	}
	var root ndlog.Expr
	var set func(ndlog.Expr)
	switch parts[0] {
	case "head":
		i, err := strconv.Atoi(parts[1])
		if err != nil || i < 0 || i >= len(r.Head.Args) {
			return nil, nil, fmt.Errorf("meta: bad head index in %q", path)
		}
		root, set = r.Head.Args[i], func(e ndlog.Expr) { r.Head.Args[i] = e }
		parts = parts[2:]
	case "body":
		if len(parts) < 3 {
			return nil, nil, fmt.Errorf("meta: bad body path %q", path)
		}
		i, err1 := strconv.Atoi(parts[1])
		j, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || i < 0 || i >= len(r.Body) || j < 0 || j >= len(r.Body[i].Args) {
			return nil, nil, fmt.Errorf("meta: bad body index in %q", path)
		}
		b := r.Body[i]
		root, set = b.Args[j], func(e ndlog.Expr) { b.Args[j] = e }
		parts = parts[3:]
	case "sel":
		if len(parts) < 3 {
			return nil, nil, fmt.Errorf("meta: bad sel path %q", path)
		}
		i, err := strconv.Atoi(parts[1])
		if err != nil || i < 0 || i >= len(r.Sels) {
			return nil, nil, fmt.Errorf("meta: bad sel index in %q", path)
		}
		s := r.Sels[i]
		switch parts[2] {
		case "L":
			root, set = s.Left, func(e ndlog.Expr) { s.Left = e }
		case "R":
			root, set = s.Right, func(e ndlog.Expr) { s.Right = e }
		default:
			return nil, nil, fmt.Errorf("meta: bad sel side %q", parts[2])
		}
		parts = parts[3:]
	case "assign":
		i, err := strconv.Atoi(parts[1])
		if err != nil || i < 0 || i >= len(r.Assigns) {
			return nil, nil, fmt.Errorf("meta: bad assign index in %q", path)
		}
		a := r.Assigns[i]
		root, set = a.Expr, func(e ndlog.Expr) { a.Expr = e }
		parts = parts[2:]
	default:
		return nil, nil, fmt.Errorf("meta: bad path root %q", parts[0])
	}
	// Descend nested expression segments.
	for _, seg := range parts {
		switch cur := root.(type) {
		case *ndlog.Binary:
			switch seg {
			case "L":
				root, set = cur.L, func(e ndlog.Expr) { cur.L = e }
			case "R":
				root, set = cur.R, func(e ndlog.Expr) { cur.R = e }
			default:
				return nil, nil, fmt.Errorf("meta: bad binary segment %q in %q", seg, path)
			}
		case *ndlog.Call:
			if !strings.HasPrefix(seg, "a") {
				return nil, nil, fmt.Errorf("meta: bad call segment %q in %q", seg, path)
			}
			i, err := strconv.Atoi(seg[1:])
			if err != nil || i < 0 || i >= len(cur.Args) {
				return nil, nil, fmt.Errorf("meta: bad call index %q in %q", seg, path)
			}
			idx := i
			call := cur
			root, set = call.Args[idx], func(e ndlog.Expr) { call.Args[idx] = e }
		default:
			return nil, nil, fmt.Errorf("meta: cannot descend %q into %T", seg, root)
		}
	}
	return root, set, nil
}
