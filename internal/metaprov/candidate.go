package metaprov

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/solver"
)

// Candidate is one extracted repair: a list of meta-tuple changes with a
// plausibility cost. Candidates from Explore arrive in cost order.
type Candidate struct {
	Changes []meta.Change
	Cost    float64
	// Tree is the completed meta-provenance tree the candidate came from
	// (nil for positive-symptom candidates, which are extracted from the
	// positive provenance graph directly).
	Tree *Vertex

	// sig and shape memoize Signature and Structure. The emitter's dedup
	// probes one candidate against every prior one, so rebuilding the
	// strings (one ch.String() per change plus a sort) per probe was the
	// hot path; extraction caches them once and copies carry the cache.
	sig   string
	shape string
}

// cached returns a copy with the Signature and Structure strings
// precomputed; every extraction path calls it before publishing a
// candidate.
func (c Candidate) cached() Candidate {
	c.sig = c.buildSignature()
	c.shape = c.buildStructure()
	return c
}

// Describe renders the candidate in Table 2 style, e.g.
// "change constant 2 in r7 (sel/0/R) to 3".
func (c Candidate) Describe() string {
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		parts[i] = ch.String()
	}
	return strings.Join(parts, "; ")
}

// Signature returns a canonical identity for deduplication: the sorted
// change descriptions. Candidates published by the explorer carry the
// string precomputed; hand-built ones fall back to computing it.
func (c Candidate) Signature() string {
	if c.sig != "" {
		return c.sig
	}
	return c.buildSignature()
}

func (c Candidate) buildSignature() string {
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		parts[i] = ch.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}

// Structure identifies the candidate's change shape, ignoring concrete
// values: which rules, paths, and change kinds it touches. Candidates with
// equal structure differ only in solver-chosen constants. Like Signature,
// explorer-published candidates carry it precomputed.
func (c Candidate) Structure() string {
	if c.shape != "" {
		return c.shape
	}
	return c.buildStructure()
}

func (c Candidate) buildStructure() string {
	parts := make([]string, len(c.Changes))
	for i, ch := range c.Changes {
		switch ch := ch.(type) {
		case meta.SetConst:
			parts[i] = "const:" + ch.RuleID + ":" + ch.Path
		case meta.SetOper:
			parts[i] = fmt.Sprintf("oper:%s:%d:%s", ch.RuleID, ch.SelIdx, ch.New)
		case meta.SetExpr:
			parts[i] = "expr:" + ch.RuleID + ":" + ch.Path + ":" + ch.New.String()
		case meta.DropSel:
			parts[i] = fmt.Sprintf("dropsel:%s:%d", ch.RuleID, ch.SelIdx)
		case meta.DropBodyPred:
			parts[i] = fmt.Sprintf("droppred:%s:%d", ch.RuleID, ch.BodyIdx)
		case meta.DropRule:
			parts[i] = "droprule:" + ch.RuleID
		case meta.InsertTuple:
			parts[i] = "insert:" + ch.Tuple.Table
		case meta.DeleteTuple:
			parts[i] = "delete:" + ch.Tuple.Table
		case meta.AddRule:
			parts[i] = "addrule:" + ch.Rule.Head.Table
		default:
			parts[i] = ch.String()
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Apply applies the candidate to a program, returning the patch.
func (c Candidate) Apply(prog *ndlog.Program) (*meta.Patch, error) {
	return meta.Apply(prog, c.Changes)
}

// extract turns a completed tree into a candidate (the missing-tuple
// branch of Fig. 5): solve the constraint pool, fill pending constant
// changes and tuple insertions from the satisfying assignment, and check
// syntactic validity of the patched program. The solver is a parameter so
// stream workers extract with goroutine-local solvers (solver.Solver
// accumulates Stats); results are identical for any solver with the same
// backtrack bound.
func (ex *Explorer) extract(t *Tree, sv *solver.Solver) (Candidate, bool) {
	start := time.Now()
	asg, ok := sv.Solve(t.Pool)
	ex.solveNanos.Add(int64(time.Since(start)))
	if !ok {
		return Candidate{}, false
	}
	if !ex.checkDeferred(t, asg) {
		return Candidate{}, false
	}
	changes := append([]meta.Change(nil), t.changes...)
	for _, pc := range t.pConsts {
		nv, bound := asg[pc.Var]
		if !bound {
			return Candidate{}, false
		}
		changes = append(changes, meta.SetConst{RuleID: pc.RuleID, Path: pc.Path, Old: pc.Old, New: nv})
	}
	for _, pi := range t.pInserts {
		tp := ndlog.Tuple{Table: pi.Table, Tags: ndlog.AllTags}
		for i, v := range pi.Vars {
			if i < len(pi.Fixed) && pi.Fixed[i] != nil {
				tp.Args = append(tp.Args, *pi.Fixed[i])
				continue
			}
			val, bound := asg[v]
			if !bound {
				return Candidate{}, false
			}
			tp.Args = append(tp.Args, val)
		}
		changes = append(changes, meta.InsertTuple{Tuple: tp})
	}
	changes = dedupChanges(changes)
	if len(changes) == 0 {
		return Candidate{}, false // no repair needed: symptom not reproduced
	}
	// Syntactic validity guard (§4.2): the patched program must be valid.
	if _, err := meta.Apply(ex.Model.Prog, changes); err != nil {
		return Candidate{}, false
	}
	return Candidate{Changes: changes, Cost: t.Cost, Tree: t.Root}.cached(), true
}

// checkDeferred grounds untranslatable guards with the assignment and
// evaluates them; unresolvable checks pass tentatively (backtesting weeds
// out survivors that do not actually work, §4.3).
func (ex *Explorer) checkDeferred(t *Tree, asg solver.Assignment) bool {
	if len(t.deferred) == 0 {
		return true
	}
	eng := ndlog.MustNewEngine(&ndlog.Program{Name: "deferred"})
	for _, d := range t.deferred {
		env := ndlog.Env{}
		for rv, svar := range d.env {
			if val, ok := asg[svar]; ok {
				env[rv] = val
			}
		}
		lv, err1 := eng.Eval(env, d.sel.Left)
		rv, err2 := evalDeferredTerm(eng, env, asg, d.sel.Right)
		if err1 != nil || err2 != nil {
			continue // unresolvable: tentatively accept
		}
		res, err := ndlog.EvalOp(d.sel.Op, lv, rv)
		if err != nil || !res.IsTrue() {
			return false
		}
	}
	return true
}

// evalDeferredTerm evaluates an expression that may contain "?solverVar"
// placeholders produced by termExpr.
func evalDeferredTerm(eng *ndlog.Engine, env ndlog.Env, asg solver.Assignment, e ndlog.Expr) (ndlog.Value, error) {
	if v, ok := e.(*ndlog.Var); ok && strings.HasPrefix(v.Name, "?") {
		if val, bound := asg[v.Name[1:]]; bound {
			return val, nil
		}
		return ndlog.Value{}, fmt.Errorf("unbound solver var %s", v.Name)
	}
	return eng.Eval(env, e)
}

func dedupChanges(changes []meta.Change) []meta.Change {
	seen := make(map[string]bool)
	var out []meta.Change
	for _, c := range changes {
		s := c.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, c)
		}
	}
	return out
}
