package metaprov

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/solver"
)

// History supplies the historical tuples recorded at runtime; the
// provenance Recorder satisfies it.
type History interface {
	TuplesOf(table string) []ndlog.Tuple
}

// obKind enumerates the pending-work kinds inside a partial tree.
type obKind uint8

const (
	obGoal   obKind = iota // make a missing tuple appear
	obRule                 // instantiate a rule derivation for a goal
	obPred                 // satisfy one body predicate
	obSel                  // satisfy one selection predicate
	obAssign               // thread one assignment
)

// obligation is one unexpanded vertex plus the context needed to expand it.
type obligation struct {
	kind   obKind
	vertex *Vertex
	goal   Goal
	rule   *ndlog.Rule
	inst   string
	pred   *ndlog.Functor
	predIx int
	selIx  int
	asgIx  int
	env    map[string]string // rule variable -> solver variable
	depth  int
	// frozen marks obligations inside a repurposed rule (head change or
	// copy): only the "keep" alternatives are explored, so those repairs
	// do not compound with guard edits.
	frozen bool
}

// Explorer drives the cost-ordered forest search (Fig. 17). MaxDepth
// bounds recursive goal expansion; Cutoff bounds total change cost;
// MaxSteps bounds expansions; MaxCandidates stops early once enough
// repairs are found.
type Explorer struct {
	Model         *meta.Model
	Hist          History
	Solver        *solver.Solver
	MaxDepth      int
	MaxSteps      int
	Cutoff        float64
	MaxCandidates int
	MaxHistTuples int
	// MaxPerStructure caps candidates sharing a change structure (same
	// rules/paths/kinds, different values) — different cited history
	// tuples otherwise yield long runs of same-shape repairs, cf. the
	// Sip<16 / Sip<99 / Sip<2009 variants in Table 6(a).
	MaxPerStructure int
	// Workers sizes the ExploreStream worker pool (0 = GOMAXPROCS). The
	// sequential Explore path ignores it.
	Workers int

	// steps counts vertex expansions and solveNanos accumulates
	// constraint-solving wall time (the Figure 9a breakdown). Both are
	// atomics — stream workers solve concurrently — read via Stats().
	steps      atomic.Int64
	solveNanos atomic.Int64
}

// Stats is a consistent snapshot of the explorer's search counters.
type Stats struct {
	// Steps counts committed vertex expansions, the Figure 9 metric.
	Steps int
	// SolveTime is the accumulated constraint-solving wall time. Under
	// ExploreStream it sums over all workers, including speculative
	// expansions the committed search never used, so it can exceed the
	// stream's wall-clock time.
	SolveTime time.Duration
}

// Stats returns a snapshot of the search counters. It is safe to call
// concurrently with a running search.
func (ex *Explorer) Stats() Stats {
	return Stats{
		Steps:     int(ex.steps.Load()),
		SolveTime: time.Duration(ex.solveNanos.Load()),
	}
}

// NewExplorer returns an explorer with the paper-motivated defaults.
func NewExplorer(m *meta.Model, h History) *Explorer {
	return &Explorer{
		Model:           m,
		Hist:            h,
		Solver:          &solver.Solver{MaxBacktracks: 4000},
		MaxDepth:        3,
		MaxSteps:        60000,
		Cutoff:          cost.DefaultCutoff,
		MaxCandidates:   64,
		MaxHistTuples:   16,
		MaxPerStructure: 3,
	}
}

// Explore runs the forest search for a missing-tuple goal and returns
// repair candidates in cost order (§3.5: candidates are emitted only when
// no cheaper partial tree remains).
func (ex *Explorer) Explore(goal Goal) []Candidate {
	out, _ := ex.ExploreContext(context.Background(), goal)
	return out
}

// ExploreContext is Explore with cooperative cancellation: the search
// checks ctx between vertex expansions and returns the candidates found so
// far together with ctx.Err() when the context is done.
func (ex *Explorer) ExploreContext(ctx context.Context, goal Goal) ([]Candidate, error) {
	em := ex.newEmitter()
	h := newTreeHeap()
	h.push(em.stamp(ex.rootTree(goal)))
	var out []Candidate

	for h.Len() > 0 && em.searching(len(out)) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		cur := h.pop()
		if cur.Cost > ex.Cutoff {
			break // heap is cost-ordered: everything else is too expensive
		}
		if cur.Complete() {
			if c, ok := ex.extract(cur, ex.Solver); ok && em.admit(c) {
				out = append(out, c)
			}
			continue
		}
		ex.steps.Add(1)
		for _, next := range ex.expandStep(cur) {
			h.push(em.stamp(next))
		}
	}
	return out, nil
}

// rootTree wraps a goal into the search's root tree.
func (ex *Explorer) rootTree(goal Goal) *Tree {
	root := &Vertex{Kind: VNExist, Label: goal.String()}
	t := &Tree{Root: root, Pool: solver.NewPool()}
	t.todos = []*obligation{{kind: obGoal, vertex: root, goal: goal, depth: 0}}
	return t
}

// expandStep performs one QUERY(v) expansion of the tree's head obligation
// and returns the surviving forks: per-fork step cost added, cutoff
// filtered, and quickSat pruned. It depends only on the tree and the
// explorer's read-only model/history, so stream workers run it
// speculatively on trees the committed search may never reach.
func (ex *Explorer) expandStep(cur *Tree) []*Tree {
	// The obligation stays in cur.todos while forking so each fork's
	// vertex re-pointing covers it; forkFor pops it per fork.
	ob := cur.todos[0]
	forks := ex.expand(cur, ob)
	kept := forks[:0]
	for _, next := range forks {
		next.Cost += cost.ExpandStep
		if next.Cost > ex.Cutoff {
			continue
		}
		if !ex.quickSat(next) {
			continue
		}
		kept = append(kept, next)
	}
	return kept
}

// emitter holds the order-sensitive part of the search state: frontier
// admission numbering, candidate dedup, the per-structure cap, and the
// step/candidate bounds. Exactly one goroutine drives an emitter — the
// sequential loop, or the stream's commit loop — so candidate order is a
// pure function of the frontier's total order.
type emitter struct {
	ex        *Explorer
	seen      map[string]bool
	structs   map[string]int
	perStruct int
	seq       uint64
}

func (ex *Explorer) newEmitter() *emitter {
	perStruct := ex.MaxPerStructure
	if perStruct <= 0 {
		perStruct = 3
	}
	return &emitter{
		ex:        ex,
		seen:      make(map[string]bool),
		structs:   make(map[string]int),
		perStruct: perStruct,
	}
}

// stamp assigns the tree its frontier admission number. Trees must be
// stamped in commit order — the order the sequential search pushes them.
func (em *emitter) stamp(t *Tree) *Tree {
	t.seq = em.seq
	em.seq++
	return t
}

// searching reports whether the search may continue: the step budget has
// not been exhausted and fewer than MaxCandidates repairs are out.
func (em *emitter) searching(emitted int) bool {
	return int(em.ex.steps.Load()) < em.ex.MaxSteps &&
		(em.ex.MaxCandidates <= 0 || emitted < em.ex.MaxCandidates)
}

// admit applies the §3.5 emission rules to an extracted candidate:
// signature dedup first (duplicates burn their signature either way), then
// the per-structure cap.
func (em *emitter) admit(c Candidate) bool {
	sig := c.Signature()
	if em.seen[sig] {
		return false
	}
	em.seen[sig] = true
	st := c.Structure()
	if em.structs[st] >= em.perStruct {
		return false
	}
	em.structs[st]++
	return true
}

// quickSat prunes forks whose constraint pool is already unsatisfiable.
func (ex *Explorer) quickSat(t *Tree) bool {
	start := time.Now()
	s := solver.Solver{MaxBacktracks: 1500}
	_, ok := s.Solve(t.Pool)
	ex.solveNanos.Add(int64(time.Since(start)))
	return ok
}

// expand implements QUERY(v) (§3.5): it returns one forked tree per
// individually-sufficient choice for the obligation.
func (ex *Explorer) expand(t *Tree, ob *obligation) []*Tree {
	switch ob.kind {
	case obGoal:
		return ex.expandGoal(t, ob)
	case obRule:
		return ex.expandRule(t, ob)
	case obPred:
		return ex.expandPred(t, ob)
	case obSel:
		return ex.expandSel(t, ob)
	case obAssign:
		return ex.expandAssign(t, ob)
	}
	return nil
}

// expandGoal forks one tree per rule that could derive the goal's table
// (§3.3), plus repairs that create such a rule when none exists (changing
// another rule's head, or copying a rule with a replaced head — the Q4
// repair class of Table 6(c)), plus a manual base-tuple insertion.
func (ex *Explorer) expandGoal(t *Tree, ob *obligation) []*Tree {
	var out []*Tree
	for _, r := range ex.Model.RulesDeriving(ob.goal.Table) {
		if len(r.Head.Args) != len(ob.goal.Args) {
			continue
		}
		n, obn := t.forkFor()
		v := &Vertex{Kind: VNDerive, Label: fmt.Sprintf("%s via %s", ob.goal, r.ID)}
		vt := obn.vertex
		vt.Children = append(vt.Children, v)
		n.todos = append(n.todos, &obligation{
			kind: obRule, vertex: v, goal: ob.goal, rule: r, depth: ob.depth,
		})
		out = append(out, n)
	}
	// No rule derives the goal's table (e.g. the controller never sends
	// PacketOut): repurpose rules deriving other tables, either by
	// changing their head in place or by copying them with a new head.
	if len(ex.Model.RulesDeriving(ob.goal.Table)) == 0 && ob.depth == 0 {
		for _, r := range ex.Model.Prog.Rules {
			if r.Head.Table == ob.goal.Table || len(r.Head.Args) != len(ob.goal.Args) {
				continue
			}
			if hasAggHead(r) {
				continue
			}
			// (a) Change the rule's head table in place.
			n, obn := t.forkFor()
			mod := r.Clone()
			mod.Head.Table = ob.goal.Table
			n.changes = append(n.changes, meta.SetHeadTable{RuleID: r.ID, Old: r.Head.Table, New: ob.goal.Table})
			n.Cost += cost.Of(cost.ChangeVariable)
			v := &Vertex{Kind: VNMetaExist, Label: fmt.Sprintf("head of %s -> %s", r.ID, ob.goal.Table)}
			vt := obn.vertex
			vt.Children = append(vt.Children, v)
			n.todos = append(n.todos, &obligation{
				kind: obRule, vertex: v, goal: ob.goal, rule: mod, depth: ob.depth, frozen: true,
			})
			out = append(out, n)

			// (b) Copy the rule with the head table replaced.
			n2, obn2 := t.forkFor()
			cp := r.Clone()
			cp.ID = r.ID + "~" + ob.goal.Table
			cp.Head.Table = ob.goal.Table
			n2.changes = append(n2.changes, meta.AddRule{Rule: cp})
			n2.Cost += cost.Of(cost.CopyRule)
			v2 := &Vertex{Kind: VNMetaExist, Label: fmt.Sprintf("copy %s with head %s", r.ID, ob.goal.Table)}
			vt2 := obn2.vertex
			vt2.Children = append(vt2.Children, v2)
			n2.todos = append(n2.todos, &obligation{
				kind: obRule, vertex: v2, goal: ob.goal, rule: cp, depth: ob.depth, frozen: true,
			})
			out = append(out, n2)
		}
	}
	// Manual insertion of the missing tuple itself. Goal columns that are
	// completely unconstrained become wildcards in the inserted tuple
	// (e.g. a flow entry matching any source).
	n, obn := t.forkFor()
	vt := obn.vertex
	vars := make([]string, len(ob.goal.Args))
	fixed := make([]*ndlog.Value, len(ob.goal.Args))
	for i, g := range ob.goal.Args {
		if g.Var != "" && !poolMentions(n.Pool, g.Var) {
			w := ndlog.Wild()
			fixed[i] = &w
			continue
		}
		vars[i] = n.freshVar(fmt.Sprintf("ins.%s.%d", ob.goal.Table, i))
		n.Pool.Add(solver.Eq(solver.V(vars[i]), g))
	}
	n.pInserts = append(n.pInserts, pendingInsert{Table: ob.goal.Table, Vars: vars, Fixed: fixed})
	vt.Children = append(vt.Children, &Vertex{Kind: VInsertBase,
		Label: fmt.Sprintf("insert %s", ob.goal)})
	n.Cost += cost.Of(cost.InsertBaseTuple)
	out = append(out, n)
	return out
}

// expandRule instantiates a rule against the goal: it unifies the head,
// then queues obligations for every body predicate, selection, and
// assignment — the joint, cross-precondition treatment of §3.4.
func (ex *Explorer) expandRule(t *Tree, ob *obligation) []*Tree {
	n, obn := t.forkFor()
	v := obn.vertex
	r := ob.rule
	inst := n.nextInst(r.ID)
	env := make(map[string]string)

	// Unify head arguments with the goal terms.
	for i, ha := range r.Head.Args {
		gt := ob.goal.Args[i]
		switch a := ha.(type) {
		case *ndlog.Var:
			n.Pool.Add(solver.Eq(solver.V(sv(n, env, inst, a.Name)), gt))
		case *ndlog.ConstExpr:
			n.Pool.Add(solver.Eq(solver.C(a.Val), gt))
		case *ndlog.Agg:
			return nil // cannot target aggregate heads
		default:
			// Computed head argument: defer until grounded.
			n.deferred = append(n.deferred, deferredCheck{
				rule: r,
				sel:  &ndlog.Selection{Left: ha, Op: ndlog.OpEq, Right: termExpr(gt)},
				env:  env,
			})
		}
	}
	for i, b := range r.Body {
		pv := &Vertex{Kind: VNExist, Label: b.String()}
		v.Children = append(v.Children, pv)
		n.todos = append(n.todos, &obligation{
			kind: obPred, vertex: pv, rule: r, inst: inst, pred: b, predIx: i,
			env: env, depth: ob.depth, frozen: ob.frozen,
		})
	}
	for i := range r.Sels {
		svx := &Vertex{Kind: VSelTrue, Label: r.Sels[i].String()}
		v.Children = append(v.Children, svx)
		n.todos = append(n.todos, &obligation{
			kind: obSel, vertex: svx, rule: r, inst: inst, selIx: i,
			env: env, depth: ob.depth, frozen: ob.frozen,
		})
	}
	for i := range r.Assigns {
		av := &Vertex{Kind: VSelTrue, Label: r.Assigns[i].String()}
		v.Children = append(v.Children, av)
		n.todos = append(n.todos, &obligation{
			kind: obAssign, vertex: av, rule: r, inst: inst, asgIx: i,
			env: env, depth: ob.depth, frozen: ob.frozen,
		})
	}
	return []*Tree{n}
}

// expandPred satisfies one body predicate: by citing a historical tuple,
// by recursively deriving it, or by inserting a base tuple.
func (ex *Explorer) expandPred(t *Tree, ob *obligation) []*Tree {
	var out []*Tree
	f := ob.pred
	hist := ex.Hist.TuplesOf(f.Table)
	limit := ex.MaxHistTuples
	if limit <= 0 {
		limit = 16
	}
	kept := 0
	for _, h := range hist {
		if kept >= limit {
			break
		}
		if len(h.Args) != len(f.Args) {
			continue
		}
		n, obn := t.forkFor()
		if !bindTuple(n, ob, h) {
			continue
		}
		// Only satisfiable citations count toward the limit; this keeps
		// the fan-out focused on tuples consistent with the goal.
		if !ex.quickSat(n) {
			continue
		}
		kept++
		obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VExist, Label: h.String()})
		out = append(out, n)
	}
	if ex.Model.IsDerived(f.Table) {
		// Recursive sub-goal (bounded).
		if ob.depth < ex.MaxDepth {
			n, obn := t.forkFor()
			sub := Goal{Table: f.Table}
			ok := true
			for _, a := range f.Args {
				term, tok := argTerm(n, ob.env, ob.inst, a)
				if !tok {
					ok = false
					break
				}
				sub.Args = append(sub.Args, term)
			}
			if ok {
				gv := &Vertex{Kind: VNExist, Label: sub.String()}
				obn.vertex.Children = append(obn.vertex.Children, gv)
				n.todos = append(n.todos, &obligation{kind: obGoal, vertex: gv, goal: sub, depth: ob.depth + 1})
				out = append(out, n)
			}
		}
	} else if kept == 0 {
		// Base table with no usable historical tuple: propose inserting
		// one (Appendix D: "If no such event exists in the original
		// execution, the algorithm will insert a base event").
		n, obn := t.forkFor()
		vars := make([]string, len(f.Args))
		ok := true
		for i, a := range f.Args {
			vars[i] = n.freshVar(fmt.Sprintf("ins.%s.%d", f.Table, i))
			term, tok := argTerm(n, ob.env, ob.inst, a)
			if !tok {
				ok = false
				break
			}
			n.Pool.Add(solver.Eq(solver.V(vars[i]), term))
		}
		if ok {
			n.pInserts = append(n.pInserts, pendingInsert{Table: f.Table, Vars: vars})
			obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VInsertBase, Label: "insert " + f.String()})
			n.Cost += cost.Of(cost.InsertBaseTuple)
			out = append(out, n)
		}
	}
	return out
}

// bindTuple unifies a historical tuple with the obligation's predicate,
// adding equality constraints for variables and consistency checks for
// constants. It returns false when the tuple cannot match.
func bindTuple(t *Tree, ob *obligation, h ndlog.Tuple) bool {
	for i, a := range ob.pred.Args {
		switch a := a.(type) {
		case *ndlog.Var:
			if a.Name == "_" {
				continue
			}
			t.Pool.Add(solver.Eq(solver.V(sv(t, ob.env, ob.inst, a.Name)), solver.C(h.Args[i])))
		case *ndlog.ConstExpr:
			if !a.Val.Matches(h.Args[i]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// expandSel forks the selection's alternatives: keep it (thread the
// constraint), change a constant, change the operator, or delete it —
// each a meta-tuple change with its §3.5 cost.
func (ex *Explorer) expandSel(t *Tree, ob *obligation) []*Tree {
	r := ob.rule
	s := r.Sels[ob.selIx]
	var out []*Tree

	// (a) Keep the selection: add it to the pool (or defer).
	n, obn := t.forkFor()
	lt, lok := argTerm(n, ob.env, ob.inst, s.Left)
	rt, rok := argTerm(n, ob.env, ob.inst, s.Right)
	if lok && rok {
		n.Pool.Add(solver.Cmp(lt, s.Op, rt))
	} else {
		n.deferred = append(n.deferred, deferredCheck{rule: r, sel: s, env: ob.env})
	}
	obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VMetaExist, Label: "holds: " + s.String()})
	out = append(out, n)

	if ob.frozen || !lok || !rok {
		return out // frozen or untranslatable: no symbolic repairs here
	}

	// (b) Change a constant on either side.
	for _, side := range [2]struct {
		e    ndlog.Expr
		path string
		oth  solver.Term
	}{
		{s.Left, fmt.Sprintf("sel/%d/L", ob.selIx), rt},
		{s.Right, fmt.Sprintf("sel/%d/R", ob.selIx), lt},
	} {
		c, isConst := side.e.(*ndlog.ConstExpr)
		if !isConst {
			continue
		}
		n, obn := t.forkFor()
		cv := n.freshVar("const." + ob.inst)
		var l, rr solver.Term
		if side.path[len(side.path)-1] == 'L' {
			l, rr = solver.V(cv), side.oth
		} else {
			l, rr = side.oth, solver.V(cv)
		}
		n.Pool.Add(solver.Cmp(l, s.Op, rr))
		n.Pool.Add(solver.Cmp(solver.V(cv), ndlog.OpNe, solver.C(c.Val)))
		n.pConsts = append(n.pConsts, pendingConst{RuleID: r.ID, Path: side.path, Old: c.Val, Var: cv})
		n.Cost += cost.Of(cost.ChangeConstant)
		obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
			Label: fmt.Sprintf("Const(%s,%s) changed", r.ID, side.path)})
		out = append(out, n)
	}

	// (c) Change the operator.
	for _, op := range []ndlog.BinOp{ndlog.OpEq, ndlog.OpNe, ndlog.OpLt, ndlog.OpGt, ndlog.OpLe, ndlog.OpGe} {
		if op == s.Op {
			continue
		}
		n, obn := t.forkFor()
		lt2, _ := argTerm(n, ob.env, ob.inst, s.Left)
		rt2, _ := argTerm(n, ob.env, ob.inst, s.Right)
		n.Pool.Add(solver.Cmp(lt2, op, rt2))
		n.changes = append(n.changes, meta.SetOper{RuleID: r.ID, SelIdx: ob.selIx, Old: s.Op, New: op, Sel: s.String()})
		n.Cost += cost.Of(cost.ChangeOperator)
		obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
			Label: fmt.Sprintf("Oper(%s,%d)=%s", r.ID, ob.selIx, op)})
		out = append(out, n)
	}

	// (d) Delete the selection.
	n, obn = t.forkFor()
	n.changes = append(n.changes, meta.DropSel{RuleID: r.ID, SelIdx: ob.selIx, Sel: s.String()})
	n.Cost += cost.Of(cost.DeleteSelection)
	obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
		Label: fmt.Sprintf("Sel(%s,%d) deleted", r.ID, ob.selIx)})
	out = append(out, n)
	return out
}

// expandAssign threads an assignment into the pool, with change
// alternatives for constant right-hand sides (e.g. Prt:=1 → Prt:=2) and
// variable substitutions (e.g. Sip':=* → Sip':=Sip).
func (ex *Explorer) expandAssign(t *Tree, ob *obligation) []*Tree {
	r := ob.rule
	a := r.Assigns[ob.asgIx]
	var out []*Tree

	// (a) Keep.
	n, obn := t.forkFor()
	rhs, ok := argTerm(n, ob.env, ob.inst, a.Expr)
	if ok {
		n.Pool.Add(solver.Eq(solver.V(sv(n, ob.env, ob.inst, a.Var)), rhs))
	} else {
		n.deferred = append(n.deferred, deferredCheck{
			rule: r,
			sel:  &ndlog.Selection{Left: &ndlog.Var{Name: a.Var}, Op: ndlog.OpEq, Right: a.Expr},
			env:  ob.env,
		})
	}
	obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VMetaExist, Label: "holds: " + a.String()})
	out = append(out, n)

	if ob.frozen {
		return out
	}

	// (b) Constant RHS: change the constant.
	if c, isConst := a.Expr.(*ndlog.ConstExpr); isConst {
		n, obn := t.forkFor()
		cv := n.freshVar("aconst." + ob.inst)
		n.Pool.Add(solver.Eq(solver.V(sv(n, ob.env, ob.inst, a.Var)), solver.V(cv)))
		n.Pool.Add(solver.Cmp(solver.V(cv), ndlog.OpNe, solver.C(c.Val)))
		n.pConsts = append(n.pConsts, pendingConst{
			RuleID: r.ID, Path: fmt.Sprintf("assign/%d", ob.asgIx), Old: c.Val, Var: cv,
		})
		n.Cost += cost.Of(cost.ChangeConstant)
		obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
			Label: fmt.Sprintf("Const(%s,assign/%d) changed", r.ID, ob.asgIx)})
		out = append(out, n)

		// (c) Substitute a body variable for the constant (Q5's fix).
		for _, bv := range bodyVars(r) {
			if bv == a.Var {
				continue
			}
			n, obn := t.forkFor()
			n.Pool.Add(solver.Eq(solver.V(sv(n, ob.env, ob.inst, a.Var)),
				solver.V(sv(n, ob.env, ob.inst, bv))))
			n.changes = append(n.changes, meta.SetExpr{
				RuleID: r.ID, Path: fmt.Sprintf("assign/%d", ob.asgIx),
				Old: a.Expr.String(), New: &ndlog.Var{Name: bv},
			})
			n.Cost += cost.Of(cost.ChangeVariable)
			obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
				Label: fmt.Sprintf("Assign(%s,%d) := %s", r.ID, ob.asgIx, bv)})
			out = append(out, n)
		}
	}
	// (d) Variable RHS: substitute a different body variable.
	if vexpr, isVar := a.Expr.(*ndlog.Var); isVar {
		for _, bv := range bodyVars(r) {
			if bv == a.Var || bv == vexpr.Name {
				continue
			}
			n, obn := t.forkFor()
			n.Pool.Add(solver.Eq(solver.V(sv(n, ob.env, ob.inst, a.Var)),
				solver.V(sv(n, ob.env, ob.inst, bv))))
			n.changes = append(n.changes, meta.SetExpr{
				RuleID: r.ID, Path: fmt.Sprintf("assign/%d", ob.asgIx),
				Old: a.Expr.String(), New: &ndlog.Var{Name: bv},
			})
			n.Cost += cost.Of(cost.ChangeVariable)
			obn.vertex.Children = append(obn.vertex.Children, &Vertex{Kind: VNMetaExist,
				Label: fmt.Sprintf("Assign(%s,%d) := %s", r.ID, ob.asgIx, bv)})
			out = append(out, n)
		}
	}
	return out
}

// hasAggHead reports whether a rule's head contains an aggregate.
func hasAggHead(r *ndlog.Rule) bool {
	for _, a := range r.Head.Args {
		if _, ok := a.(*ndlog.Agg); ok {
			return true
		}
	}
	return false
}

// poolMentions reports whether a variable occurs in any pool constraint.
func poolMentions(p *solver.Pool, name string) bool {
	for _, c := range p.Constraints {
		if c.L.Var == name || c.R.Var == name {
			return true
		}
	}
	return false
}

// bodyVars lists the variables bound by a rule's body predicates.
func bodyVars(r *ndlog.Rule) []string {
	var out []string
	seen := make(map[string]bool)
	for _, b := range r.Body {
		for _, a := range b.Args {
			for _, v := range a.Vars(nil) {
				if v != "_" && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// sv returns (allocating if needed) the solver variable for a rule
// variable within an instantiation.
func sv(t *Tree, env map[string]string, inst, name string) string {
	if v, ok := env[name]; ok {
		return v
	}
	v := inst + ":" + name
	env[name] = v
	return v
}

// argTerm translates a rule expression into a solver term: variables,
// constants, and var±const forms translate exactly; anything else is
// untranslatable (ok=false) and must be deferred.
func argTerm(t *Tree, env map[string]string, inst string, e ndlog.Expr) (solver.Term, bool) {
	switch e := e.(type) {
	case *ndlog.Var:
		return solver.V(sv(t, env, inst, e.Name)), true
	case *ndlog.ConstExpr:
		return solver.C(e.Val), true
	case *ndlog.Binary:
		if e.Op != ndlog.OpAdd && e.Op != ndlog.OpSub {
			return solver.Term{}, false
		}
		v, vok := e.L.(*ndlog.Var)
		c, cok := e.R.(*ndlog.ConstExpr)
		if vok && cok && c.Val.Kind == ndlog.KindInt {
			off := c.Val.Int
			if e.Op == ndlog.OpSub {
				off = -off
			}
			return solver.VOff(sv(t, env, inst, v.Name), off), true
		}
		return solver.Term{}, false
	}
	return solver.Term{}, false
}

// termExpr renders a solver term back into an AST expression for deferred
// checks (constant terms only; variable terms defer to env lookups).
func termExpr(t solver.Term) ndlog.Expr {
	if t.Var == "" {
		return &ndlog.ConstExpr{Val: t.Val}
	}
	return &ndlog.Var{Name: "?" + t.Var}
}
