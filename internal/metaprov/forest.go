// Package metaprov implements meta provenance (§3 of the paper): a
// provenance graph extended with meta tuples that describe the program
// itself, explored as a *forest* of partial trees in cost order (§3.3,
// §3.5, Fig. 17). Expanding a vertex with k individually-sufficient
// choices forks the tree k ways; each tree threads a constraint pool
// (§3.4) that must be satisfiable for the completed tree to yield a repair
// candidate (Fig. 5).
package metaprov

import (
	"container/heap"
	"fmt"
	"strings"

	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/solver"
)

// VertexKind enumerates meta-provenance vertex kinds.
type VertexKind uint8

const (
	// VNExist is a missing tuple the repair must make appear.
	VNExist VertexKind = iota
	// VNDerive is a missing derivation through a specific rule.
	VNDerive
	// VExist cites an existing (historical) tuple.
	VExist
	// VInsertBase proposes inserting a base tuple.
	VInsertBase
	// VMetaExist cites an existing program element (meta tuple).
	VMetaExist
	// VNMetaExist proposes a program change (missing meta tuple).
	VNMetaExist
	// VSelTrue records a selection constraint threaded into the pool.
	VSelTrue
)

var vkNames = [...]string{
	"NEXIST", "NDERIVE", "EXIST", "INSERT-BASE", "META-EXIST", "NMETA-EXIST", "SEL-TRUE",
}

// String returns the vertex kind's display name.
func (k VertexKind) String() string {
	if int(k) < len(vkNames) {
		return vkNames[k]
	}
	return "?"
}

// Vertex is a node of one meta-provenance tree.
type Vertex struct {
	Kind     VertexKind
	Label    string
	Children []*Vertex
}

// Render pretty-prints the subtree.
func (v *Vertex) Render() string {
	var b strings.Builder
	v.render(&b, 0)
	return b.String()
}

func (v *Vertex) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(v.Kind.String())
	b.WriteByte('[')
	b.WriteString(v.Label)
	b.WriteString("]\n")
	for _, c := range v.Children {
		c.render(b, depth+1)
	}
}

// Size returns the number of vertices in the subtree.
func (v *Vertex) Size() int {
	n := 1
	for _, c := range v.Children {
		n += c.Size()
	}
	return n
}

// Goal specifies a missing tuple: a table plus one solver term per column.
// Constant terms pin columns; variable terms link columns into the pool.
type Goal struct {
	Table string
	Args  []solver.Term
}

// String renders the goal, e.g. FlowTable(3,80,Prt?).
func (g Goal) String() string {
	parts := make([]string, len(g.Args))
	for i, a := range g.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", g.Table, strings.Join(parts, ","))
}

// PinnedGoal builds a goal from optional pinned values; nil entries become
// free variables named <table>.argN.
func PinnedGoal(table string, args ...*ndlog.Value) Goal {
	g := Goal{Table: table}
	for i, a := range args {
		if a == nil {
			g.Args = append(g.Args, solver.V(fmt.Sprintf("%s.arg%d", table, i)))
		} else {
			g.Args = append(g.Args, solver.C(*a))
		}
	}
	return g
}

// pendingConst is a constant change whose new value is chosen by the
// solver when the tree completes (CHANGETUPLE(τ, A) in Fig. 5).
type pendingConst struct {
	RuleID string
	Path   string
	Old    ndlog.Value
	Var    string // solver variable holding the new value
}

// pendingInsert is a base-tuple insertion whose argument values are chosen
// by the solver when the tree completes. Columns with a Fixed value (e.g.
// the wildcard for unconstrained goal columns) bypass the solver.
type pendingInsert struct {
	Table string
	Vars  []string       // solver variable per column ("" when fixed)
	Fixed []*ndlog.Value // fixed value per column (nil when solver-chosen)
}

// deferredCheck re-evaluates an expression that could not be translated
// into pool constraints once the assignment is concrete.
type deferredCheck struct {
	rule *ndlog.Rule
	sel  *ndlog.Selection
	env  map[string]string // rule var -> solver var
}

// Tree is one (partial or complete) meta-provenance tree: the vertex tree
// for display, the constraint pool, accumulated changes, and the pending
// obligations that still need expansion.
type Tree struct {
	Root *Vertex
	Pool *solver.Pool
	Cost float64

	todos    []*obligation
	changes  []meta.Change
	pConsts  []pendingConst
	pInserts []pendingInsert
	deferred []deferredCheck
	varSeq   int
	instSeq  int
	// seq is the tree's admission number into the frontier, assigned in
	// the order trees are committed to the search. Together with (Cost,
	// len(todos)) it makes the frontier a strict total order, so the
	// sequential search and the concurrent stream visit trees in exactly
	// the same sequence.
	seq uint64
}

// Complete reports whether the tree has no unexpanded vertices.
func (t *Tree) Complete() bool { return len(t.todos) == 0 }

// fork deep-copies the tree's mutable state, including the vertex tree;
// obligation back-pointers are re-mapped onto the copied vertices so each
// fork grows independently.
func (t *Tree) fork() *Tree {
	vmap := make(map[*Vertex]*Vertex)
	n := &Tree{
		Root:    t.Root.clone(vmap),
		Pool:    t.Pool.Clone(),
		Cost:    t.Cost,
		varSeq:  t.varSeq,
		instSeq: t.instSeq,
	}
	n.todos = make([]*obligation, len(t.todos))
	for i, ob := range t.todos {
		ob2 := *ob
		if mapped, ok := vmap[ob.vertex]; ok {
			ob2.vertex = mapped
		}
		n.todos[i] = &ob2
	}
	n.changes = append([]meta.Change(nil), t.changes...)
	n.pConsts = append([]pendingConst(nil), t.pConsts...)
	n.pInserts = append([]pendingInsert(nil), t.pInserts...)
	n.deferred = append([]deferredCheck(nil), t.deferred...)
	return n
}

// forkFor forks the tree while its head obligation is still in todos,
// then pops that obligation from the fork and returns it: its vertex
// pointer now references the fork's own copy, so children attach to the
// right tree.
func (t *Tree) forkFor() (*Tree, *obligation) {
	n := t.fork()
	ob := n.todos[0]
	n.todos = n.todos[1:]
	return n, ob
}

// clone deep-copies the vertex tree, recording the old-to-new mapping.
func (v *Vertex) clone(vmap map[*Vertex]*Vertex) *Vertex {
	c := &Vertex{Kind: v.Kind, Label: v.Label}
	vmap[v] = c
	for _, ch := range v.Children {
		c.Children = append(c.Children, ch.clone(vmap))
	}
	return c
}

// freshVar allocates a new solver variable name.
func (t *Tree) freshVar(hint string) string {
	t.varSeq++
	return fmt.Sprintf("%s~%d", hint, t.varSeq)
}

// nextInst allocates a rule-instantiation ID.
func (t *Tree) nextInst(rule string) string {
	t.instSeq++
	return fmt.Sprintf("%s#%d", rule, t.instSeq)
}

// treeHeap orders trees by (cost, unexpanded-vertex count, admission
// sequence), the §3.5 exploration order refined into a strict total order:
// the seq tiebreak pins the order of equally-cheap, equally-complete trees
// to their admission order, which is what lets the concurrent stream
// reproduce the sequential search candidate for candidate.
type treeHeap []*Tree

func (h treeHeap) Len() int { return len(h) }
func (h treeHeap) Less(i, j int) bool {
	if h[i].Cost != h[j].Cost {
		return h[i].Cost < h[j].Cost
	}
	if len(h[i].todos) != len(h[j].todos) {
		return len(h[i].todos) < len(h[j].todos)
	}
	return h[i].seq < h[j].seq
}
func (h treeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *treeHeap) Push(x any)   { *h = append(*h, x.(*Tree)) }
func (h *treeHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }
func (h treeHeap) Peek() *Tree   { return h[0] }
func newTreeHeap() *treeHeap     { h := &treeHeap{}; heap.Init(h); return h }
func (h *treeHeap) push(t *Tree) { heap.Push(h, t) }
func (h *treeHeap) pop() *Tree   { return heap.Pop(h).(*Tree) }
