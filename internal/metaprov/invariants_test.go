package metaprov

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// Invariants of the exploration machinery, checked on the Figure 2
// scenario: every emitted candidate must apply cleanly, the forest must
// respect its bounds, and the per-structure cap must hold.

func exploreFig2(t *testing.T, tune func(*Explorer)) ([]Candidate, *Explorer) {
	t.Helper()
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	if tune != nil {
		tune(ex)
	}
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	return ex.Explore(PinnedGoal("FlowTable", &v3, &v80, &v2)), ex
}

func TestEveryCandidateApplies(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	for _, c := range ex.Explore(PinnedGoal("FlowTable", &v3, &v80, &v2)) {
		patch, err := c.Apply(prog)
		if err != nil {
			t.Errorf("candidate %q does not apply: %v", c.Describe(), err)
			continue
		}
		if err := meta.Validate(patch.Prog); err != nil {
			t.Errorf("candidate %q yields invalid program: %v", c.Describe(), err)
		}
		if c.Cost <= 0 {
			t.Errorf("candidate %q has non-positive cost %v", c.Describe(), c.Cost)
		}
		if len(c.Changes) == 0 {
			t.Errorf("candidate with no changes: %q", c.Describe())
		}
	}
}

func TestStructureCapHolds(t *testing.T) {
	cands, ex := exploreFig2(t, func(ex *Explorer) {
		ex.MaxPerStructure = 1
		ex.MaxCandidates = 32
	})
	seen := map[string]int{}
	for _, c := range cands {
		seen[c.Structure()]++
		if seen[c.Structure()] > ex.MaxPerStructure {
			t.Fatalf("structure %q emitted %d times", c.Structure(), seen[c.Structure()])
		}
	}
}

func TestMaxCandidatesBound(t *testing.T) {
	cands, _ := exploreFig2(t, func(ex *Explorer) { ex.MaxCandidates = 3 })
	if len(cands) > 3 {
		t.Fatalf("candidates = %d, bound 3", len(cands))
	}
}

func TestMaxStepsBound(t *testing.T) {
	cands, ex := exploreFig2(t, func(ex *Explorer) { ex.MaxSteps = 5 })
	if got := ex.Stats().Steps; got > 5 {
		t.Fatalf("steps = %d, bound 5", got)
	}
	_ = cands // few or none; the bound itself is the invariant
}

func TestSolveTimeAccrues(t *testing.T) {
	_, ex := exploreFig2(t, nil)
	if ex.Stats().SolveTime <= 0 {
		t.Fatal("constraint-solving time not measured")
	}
}

func TestCandidateDescriptionsDistinct(t *testing.T) {
	cands, _ := exploreFig2(t, nil)
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Signature()] {
			t.Fatalf("duplicate candidate %q", c.Signature())
		}
		seen[c.Signature()] = true
	}
}

func TestTreeRendersMetaVertices(t *testing.T) {
	cands, _ := exploreFig2(t, nil)
	sawChange := false
	for _, c := range cands {
		if c.Tree == nil {
			continue
		}
		r := c.Tree.Render()
		if strings.Contains(r, "NMETA-EXIST") {
			sawChange = true
		}
	}
	if !sawChange {
		t.Fatal("no candidate tree cites a program-change vertex")
	}
}

func TestPositiveCandidatesApply(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	bad := ndlog.NewTuple("FlowTable", ndlog.Int(2), ndlog.Int(80), ndlog.Int(2))
	for _, c := range ex.RepairPositive(bad, rec) {
		if _, err := c.Apply(prog); err != nil {
			t.Errorf("positive candidate %q does not apply: %v", c.Describe(), err)
		}
	}
}

func TestPositiveNoDerivationsNoCandidates(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	ghost := ndlog.NewTuple("FlowTable", ndlog.Int(99), ndlog.Int(99), ndlog.Int(99))
	if got := ex.RepairPositive(ghost, rec); len(got) != 0 {
		t.Fatalf("candidates for a never-derived tuple: %d", len(got))
	}
}

func TestRederivationGuard(t *testing.T) {
	// A program with two rules deriving the same tuple: disabling one
	// derivation must not be offered if the other still rederives it,
	// unless the candidate handles both.
	prog := ndlog.MustParse("redrv", `
materialize(Out, 1, 2, keys(0,1)).
a Out(@X,Y) :- In(@X,Y), X == 1.
b Out(@X,Y) :- In(@X,Y), Y == 5.
`)
	eng := ndlog.MustNewEngine(prog)
	rec := provenance.NewRecorder()
	eng.Listen(rec)
	eng.Insert(ndlog.NewTuple("In", ndlog.Int(1), ndlog.Int(5)))
	ex := NewExplorer(meta.NewModel(prog), rec)
	bad := ndlog.NewTuple("Out", ndlog.Int(1), ndlog.Int(5))
	for _, c := range ex.RepairPositive(bad, rec) {
		patch, err := c.Apply(prog)
		if err != nil {
			continue
		}
		e2 := ndlog.MustNewEngine(patch.Prog)
		deleted := map[string]bool{}
		for _, d := range patch.Deletes {
			deleted[d.Key()] = true
		}
		in := ndlog.NewTuple("In", ndlog.Int(1), ndlog.Int(5))
		if deleted[in.Key()] {
			continue
		}
		for _, tp := range e2.Insert(in) {
			if tp.Equal(bad) {
				t.Fatalf("candidate %q rederives the bad tuple", c.Describe())
			}
		}
	}
}
