package metaprov

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// fig2 is the buggy controller of Figure 2: r7 checks Swi == 2 where the
// operator intended Swi == 3.
const fig2 = `
materialize(FlowTable, 1, 3, keys(0,1)).
r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 53, Hdr != 80, Prt := -1.
r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
`

// runFig2 replays the Figure 1 traffic: HTTP packets reach switches 2 and
// 3; the buggy program derives no flow entry for switch 3.
func runFig2(t *testing.T) (*ndlog.Program, *provenance.Recorder) {
	t.Helper()
	prog := ndlog.MustParse("fig2", fig2)
	eng := ndlog.MustNewEngine(prog)
	rec := provenance.NewRecorder()
	eng.Listen(rec)
	eng.Insert(ndlog.NewTuple("PacketIn", ndlog.Str("C"), ndlog.Int(2), ndlog.Int(80)))
	eng.Insert(ndlog.NewTuple("PacketIn", ndlog.Str("C"), ndlog.Int(3), ndlog.Int(80)))
	eng.Insert(ndlog.NewTuple("PacketIn", ndlog.Str("C"), ndlog.Int(1), ndlog.Int(53)))
	return prog, rec
}

func TestExploreMissingFlowEntry(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)

	// The paper's Figure 6 query: why is there no flow entry sending HTTP
	// traffic at switch 3 to port 2?
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	goal := PinnedGoal("FlowTable", &v3, &v80, &v2)
	cands := ex.Explore(goal)
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}

	descs := make([]string, len(cands))
	for i, c := range cands {
		descs[i] = c.Describe()
	}
	all := strings.Join(descs, "\n")

	// Expected candidates from Table 2 (in our rendering):
	wants := []struct{ name, substr string }{
		{"A: manual flow entry", "manually insert FlowTable(3,80,2)"},
		{"B: Swi==2 -> Swi==3", "change constant 2 in r7 (sel/0/R) to 3"},
		{"C: == -> !=", "change operator == to != in r7 (Swi == 2)"},
		{"D: == -> >=", "change operator == to >= in r7"},
		{"E: == -> >", "change operator == to > in r7"},
		{"F: delete Swi==2", "delete Swi == 2 in r7"},
	}
	for _, w := range wants {
		if !strings.Contains(all, w.substr) {
			t.Errorf("missing candidate %s (%q) in:\n%s", w.name, w.substr, all)
		}
	}

	// Candidates must arrive in cost order.
	for i := 1; i < len(cands); i++ {
		if cands[i].Cost < cands[i-1].Cost-1e-9 {
			t.Fatalf("candidates out of cost order at %d: %v then %v", i, cands[i-1].Cost, cands[i].Cost)
		}
	}
}

func TestExploreCandidatesActuallyWork(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	cands := ex.Explore(PinnedGoal("FlowTable", &v3, &v80, &v2))
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	want := ndlog.NewTuple("FlowTable", ndlog.Int(3), ndlog.Int(80), ndlog.Int(2))
	effective := 0
	for _, c := range cands {
		patch, err := c.Apply(prog)
		if err != nil {
			t.Errorf("candidate %q fails to apply: %v", c.Describe(), err)
			continue
		}
		eng := ndlog.MustNewEngine(patch.Prog)
		var appeared []ndlog.Tuple
		for _, ins := range patch.Inserts {
			appeared = append(appeared, eng.Insert(ins)...)
		}
		for _, pkt := range rec.BaseInserts("PacketIn") {
			appeared = append(appeared, eng.Insert(pkt)...)
		}
		for _, tp := range appeared {
			if tp.Equal(want) {
				effective++
				break
			}
		}
	}
	// Every candidate must make the missing tuple appear (the forest only
	// emits satisfiable trees; backtesting later filters side effects).
	if effective != len(cands) {
		t.Fatalf("only %d of %d candidates effective", effective, len(cands))
	}
}

func TestExploreTreeStructure(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	cands := ex.Explore(PinnedGoal("FlowTable", &v3, &v80, &v2))
	for _, c := range cands {
		if c.Tree == nil {
			t.Fatal("candidate missing its meta-provenance tree")
		}
		r := c.Tree.Render()
		if !strings.Contains(r, "NEXIST") {
			t.Fatalf("tree has no NEXIST root:\n%s", r)
		}
	}
}

func TestRepairPositive(t *testing.T) {
	// Figure 7 scenario: FlowTable(2,80,2) derived by buggy r7 should not
	// exist (it hijacks S2's HTTP traffic to port 2).
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	bad := ndlog.NewTuple("FlowTable", ndlog.Int(2), ndlog.Int(80), ndlog.Int(2))
	cands := ex.RepairPositive(bad, rec)
	if len(cands) == 0 {
		t.Fatal("no positive-symptom candidates")
	}
	all := ""
	for _, c := range cands {
		all += c.Describe() + "\n"
	}
	// The green repair of Figure 7: change the constant in r7's guard.
	if !strings.Contains(all, "change constant 2 in r7 (sel/0/R)") {
		t.Errorf("missing constant-change repair:\n%s", all)
	}
	// Operator flips that falsify Swi==2 under Swi=2 must appear.
	if !strings.Contains(all, "change operator == to !=") &&
		!strings.Contains(all, "change operator == to >") {
		t.Errorf("missing operator-change repair:\n%s", all)
	}
	// Rule deletion is the blunt fallback.
	if !strings.Contains(all, "delete rule r7") {
		t.Errorf("missing rule deletion:\n%s", all)
	}
}

func TestRepairPositiveCandidatesDisableDerivation(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	bad := ndlog.NewTuple("FlowTable", ndlog.Int(2), ndlog.Int(80), ndlog.Int(2))
	for _, c := range ex.RepairPositive(bad, rec) {
		patch, err := c.Apply(prog)
		if err != nil {
			t.Fatalf("apply %q: %v", c.Describe(), err)
		}
		eng := ndlog.MustNewEngine(patch.Prog)
		deleted := make(map[string]bool)
		for _, d := range patch.Deletes {
			deleted[d.Key()] = true
		}
		var appeared []ndlog.Tuple
		for _, pkt := range rec.BaseInserts("PacketIn") {
			if deleted[pkt.Key()] {
				continue
			}
			appeared = append(appeared, eng.Insert(pkt)...)
		}
		for _, tp := range appeared {
			if tp.Equal(bad) {
				t.Fatalf("candidate %q does not remove the bad tuple", c.Describe())
			}
		}
	}
}

func TestExploreRespectsCutoff(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	ex.Cutoff = 0.5 // below any single change cost
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	cands := ex.Explore(PinnedGoal("FlowTable", &v3, &v80, &v2))
	if len(cands) != 0 {
		t.Fatalf("cutoff ignored: %d candidates", len(cands))
	}
}

func TestExploreUnknownTable(t *testing.T) {
	prog, rec := runFig2(t)
	ex := NewExplorer(meta.NewModel(prog), rec)
	cands := ex.Explore(PinnedGoal("NoSuchTable"))
	// Only the manual-insert candidate can exist for an unknown table.
	for _, c := range cands {
		if !strings.Contains(c.Describe(), "manually insert") {
			t.Fatalf("unexpected candidate %q", c.Describe())
		}
	}
}

func TestGoalString(t *testing.T) {
	v := ndlog.Int(3)
	g := PinnedGoal("T", &v, nil)
	if g.String() != "T(3,T.arg1)" {
		t.Fatalf("goal string = %q", g.String())
	}
}
