package metaprov

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/solver"
)

// RepairPositive extracts repair candidates for a positive symptom: a
// tuple that exists but should not (§4.2, Fig. 5's existing-tuple branch,
// Fig. 7). For every recorded derivation of the tuple it enumerates base
// tuple combinations in cost order, re-executes the derivation
// symbolically to collect constraints, negates them, and extracts changes
// or deletions; every candidate passes the rederivation guard before
// being returned.
func (ex *Explorer) RepairPositive(bad ndlog.Tuple, rec *provenance.Recorder) []Candidate {
	out, _ := ex.RepairPositiveContext(context.Background(), bad, rec)
	if ex.MaxCandidates > 0 && len(out) > ex.MaxCandidates {
		out = out[:ex.MaxCandidates]
	}
	return out
}

// RepairPositiveContext is RepairPositive with cooperative cancellation
// and no MaxCandidates truncation: the caller sees the full cost-ordered
// list and decides (visibly) how many to keep.
func (ex *Explorer) RepairPositiveContext(ctx context.Context, bad ndlog.Tuple, rec *provenance.Recorder) ([]Candidate, error) {
	derivs := rec.DerivationsOf(bad)
	var out []Candidate
	seen := make(map[string]bool)
	add := func(c Candidate) {
		c = c.cached() // one signature/structure build per candidate
		if seen[c.Signature()] {
			return
		}
		if !ex.survivesRederivation(c, bad, rec) {
			return
		}
		seen[c.Signature()] = true
		out = append(out, c)
	}
	for _, d := range derivs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		for _, c := range ex.positiveForDerivation(bad, d, rec) {
			add(c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out, nil
}

// positiveForDerivation enumerates single-element changes that disable one
// derivation: constant changes and operator flips in the rule's guards,
// predicate deletions, rule deletion, and base-tuple changes or deletions.
func (ex *Explorer) positiveForDerivation(bad ndlog.Tuple, d *provenance.Derivation, rec *provenance.Recorder) []Candidate {
	var out []Candidate
	r := d.Rule

	// Selections: flip the operator so the guard fails under the recorded
	// environment, or change a constant via symbolic propagation.
	for i, s := range r.Sels {
		for _, op := range []ndlog.BinOp{ndlog.OpEq, ndlog.OpNe, ndlog.OpLt, ndlog.OpGt, ndlog.OpLe, ndlog.OpGe} {
			if op == s.Op {
				continue
			}
			if ex.selHolds(d.Env, s.Left, op, s.Right) {
				continue // still true: derivation survives, not a repair
			}
			out = append(out, Candidate{
				Changes: []meta.Change{meta.SetOper{RuleID: r.ID, SelIdx: i, Old: s.Op, New: op, Sel: s.String()}},
				Cost:    cost.Of(cost.ChangeOperator),
			})
		}
		for _, side := range [2]struct {
			e    ndlog.Expr
			path string
			oth  ndlog.Expr
			flip bool
		}{
			{s.Left, fmt.Sprintf("sel/%d/L", i), s.Right, false},
			{s.Right, fmt.Sprintf("sel/%d/R", i), s.Left, true},
		} {
			c, isConst := side.e.(*ndlog.ConstExpr)
			if !isConst {
				continue
			}
			nv, ok := ex.symbolicConstChange(d.Env, c.Val, s.Op, side.oth, side.flip)
			if !ok {
				continue
			}
			out = append(out, Candidate{
				Changes: []meta.Change{meta.SetConst{RuleID: r.ID, Path: side.path, Old: c.Val, New: nv}},
				Cost:    cost.Of(cost.ChangeConstant),
			})
		}
	}

	// Assignments with constant right-hand sides: any different constant
	// changes the derived head, removing the bad tuple.
	for i, a := range r.Assigns {
		c, isConst := a.Expr.(*ndlog.ConstExpr)
		if !isConst {
			continue
		}
		nv, ok := ex.differentValue(c.Val)
		if !ok {
			continue
		}
		out = append(out, Candidate{
			Changes: []meta.Change{meta.SetConst{RuleID: r.ID, Path: fmt.Sprintf("assign/%d", i), Old: c.Val, New: nv}},
			Cost:    cost.Of(cost.ChangeConstant),
		})
	}

	// Body predicate deletions (validity-guarded in Apply) and rule
	// deletion.
	for i, b := range r.Body {
		ch := meta.DropBodyPred{RuleID: r.ID, BodyIdx: i, Pred: b.String()}
		if _, err := meta.Apply(ex.Model.Prog, []meta.Change{ch}); err != nil {
			continue
		}
		out = append(out, Candidate{Changes: []meta.Change{ch}, Cost: cost.Of(cost.DeleteBodyPredicate)})
	}
	out = append(out, Candidate{
		Changes: []meta.Change{meta.DropRule{RuleID: r.ID}},
		Cost:    cost.Of(cost.DeleteRule),
	})

	// Base tuples: delete them, or change one argument so the derivation's
	// constraints no longer hold (symbolic constants, §4.2).
	for _, b := range d.Body {
		if !rec.WasInserted(b) {
			continue
		}
		out = append(out, Candidate{
			Changes: []meta.Change{meta.DeleteTuple{Tuple: b}},
			Cost:    cost.Of(cost.DeleteBaseTuple),
		})
		if c, ok := ex.changeBaseTuple(b, d); ok {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// selHolds evaluates a selection under the recorded environment with an
// alternative operator.
func (ex *Explorer) selHolds(env ndlog.Env, l ndlog.Expr, op ndlog.BinOp, r ndlog.Expr) bool {
	eng := ndlog.MustNewEngine(&ndlog.Program{Name: "sym"})
	lv, err1 := eng.Eval(env, l)
	rv, err2 := eng.Eval(env, r)
	if err1 != nil || err2 != nil {
		return true // cannot prove it fails: be conservative
	}
	res, err := ndlog.EvalOp(op, lv, rv)
	return err == nil && res.IsTrue()
}

// symbolicConstChange replaces a selection constant with a symbolic value
// Z, collects the constraint that made the derivation fire (e.g. 1 == Z),
// negates it, and solves for a different constant (the green repair of
// Fig. 7).
func (ex *Explorer) symbolicConstChange(env ndlog.Env, old ndlog.Value, op ndlog.BinOp, other ndlog.Expr, constOnRight bool) (ndlog.Value, bool) {
	eng := ndlog.MustNewEngine(&ndlog.Program{Name: "sym"})
	ov, err := eng.Eval(env, other)
	if err != nil {
		return ndlog.Value{}, false
	}
	p := solver.NewPool()
	if constOnRight {
		p.Add(solver.Cmp(solver.C(ov), op, solver.V("Z")))
	} else {
		p.Add(solver.Cmp(solver.V("Z"), op, solver.C(ov)))
	}
	asg, ok := ex.Solver.SolveNegation(p)
	if !ok {
		return ndlog.Value{}, false
	}
	nv, bound := asg["Z"]
	if !bound || nv.Equal(old) {
		return ndlog.Value{}, false
	}
	return nv, true
}

// differentValue picks a natural nearby value distinct from v.
func (ex *Explorer) differentValue(v ndlog.Value) (ndlog.Value, bool) {
	p := solver.NewPool()
	p.Add(solver.Cmp(solver.V("Z"), ndlog.OpNe, solver.C(v)))
	asg, ok := ex.Solver.Solve(p)
	if !ok {
		return ndlog.Value{}, false
	}
	return asg["Z"], true
}

// changeBaseTuple proposes replacing one argument of a base tuple so the
// derivation's selections no longer hold, expressed as a paired manual
// delete + insert.
func (ex *Explorer) changeBaseTuple(b ndlog.Tuple, d *provenance.Derivation) (Candidate, bool) {
	// Find which body predicate the tuple matched and the rule variables
	// bound to its columns.
	var pred *ndlog.Functor
	for _, f := range d.Rule.Body {
		if f.Table == b.Table && len(f.Args) == len(b.Args) {
			pred = f
			break
		}
	}
	if pred == nil {
		return Candidate{}, false
	}
	for col, arg := range pred.Args {
		v, isVar := arg.(*ndlog.Var)
		if !isVar || v.Name == "_" {
			continue
		}
		// Collect the selections this column's variable participates in.
		p := solver.NewPool()
		touched := false
		for _, s := range d.Rule.Sels {
			lt, lok := envTerm(d.Env, s.Left, v.Name)
			rt, rok := envTerm(d.Env, s.Right, v.Name)
			if !lok || !rok {
				continue
			}
			if lt.Var == "" && rt.Var == "" {
				continue // constraint does not involve this column
			}
			p.Add(solver.Cmp(lt, s.Op, rt))
			touched = true
		}
		if !touched {
			continue
		}
		asg, ok := ex.Solver.SolveNegation(p)
		if !ok {
			continue
		}
		nv, bound := asg["Z"]
		if !bound || nv.Equal(b.Args[col]) {
			continue
		}
		repl := b.Clone()
		repl.Args[col] = nv
		return Candidate{
			Changes: []meta.Change{
				meta.DeleteTuple{Tuple: b},
				meta.InsertTuple{Tuple: repl},
			},
			Cost: cost.Of(cost.DeleteBaseTuple) + cost.Of(cost.InsertBaseTuple),
		}, true
	}
	return Candidate{}, false
}

// envTerm translates an expression into a solver term under the recorded
// environment, mapping the symbolic variable name to Z.
func envTerm(env ndlog.Env, e ndlog.Expr, symVar string) (solver.Term, bool) {
	switch e := e.(type) {
	case *ndlog.Var:
		if e.Name == symVar {
			return solver.V("Z"), true
		}
		v, ok := env[e.Name]
		if !ok {
			return solver.Term{}, false
		}
		return solver.C(v), true
	case *ndlog.ConstExpr:
		return solver.C(e.Val), true
	}
	return solver.Term{}, false
}

// survivesRederivation applies the candidate and replays the recorded
// base inserts through the patched program; if the bad tuple is derived
// again (an alternate derivation enabled by the change, §4.2), the
// candidate is rejected.
func (ex *Explorer) survivesRederivation(c Candidate, bad ndlog.Tuple, rec *provenance.Recorder) bool {
	patch, err := c.Apply(ex.Model.Prog)
	if err != nil {
		return false
	}
	eng, err := ndlog.NewEngine(patch.Prog)
	if err != nil {
		return false
	}
	deleted := make(map[string]bool)
	for _, dt := range patch.Deletes {
		deleted[dt.Key()] = true
	}
	var appeared []ndlog.Tuple
	for _, ins := range patch.Inserts {
		appeared = append(appeared, eng.Insert(ins)...)
	}
	// Replay every base insert of every table the program consumes.
	tables := baseTables(ex.Model)
	for _, tab := range tables {
		for _, tp := range rec.BaseInserts(tab) {
			if deleted[tp.Key()] {
				continue
			}
			appeared = append(appeared, eng.Insert(tp)...)
		}
	}
	for _, tp := range appeared {
		if tp.Equal(bad) {
			return false
		}
	}
	return true
}

// baseTables lists tables that appear in rule bodies but are never
// derived — the program's inputs.
func baseTables(m *meta.Model) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range m.Preds {
		if !m.IsDerived(p.Table) && !seen[p.Table] {
			seen[p.Table] = true
			out = append(out, p.Table)
		}
	}
	sort.Strings(out)
	return out
}
