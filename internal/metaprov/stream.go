package metaprov

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/solver"
)

// ExploreStream runs the forest search concurrently and streams repair
// candidates in exactly the order sequential Explore returns them.
//
// The search is split into two roles:
//
//   - Workers (Explorer.Workers of them, default GOMAXPROCS) claim partial
//     trees from a shared frontier in frontier order and expand them
//     speculatively: QUERY(v) plus the per-fork quickSat prune for partial
//     trees, constraint-pool extraction (with a goroutine-local solver)
//     for complete ones. Expansion depends only on the claimed tree and
//     the explorer's read-only model/history, so any interleaving computes
//     the same results.
//
//   - A single commit loop retires those results in the frontier's strict
//     total order — (cost, unexpanded count, admission seq) — exactly as
//     the sequential loop pops its heap. A candidate is released only when
//     its tree is the cheapest uncommitted tree anywhere in the forest
//     (the cost-epoch guarantee), and all order-sensitive state — step
//     accounting, dedup, the per-structure cap, the MaxSteps /
//     MaxCandidates / cutoff bounds — advances only at commit time.
//
// Work the sequential search would never have reached (beyond a bound or
// after the cutoff) may be expanded speculatively, but it is never
// committed, so the candidate stream is candidate-for-candidate identical
// to Explore. Speculation is bounded by a small window above the frontier
// head.
//
// The candidate channel is unbuffered and closes when the search ends; the
// error channel then yields ctx's error, if any, and closes. Cancel ctx to
// abandon the stream — both channels close promptly and no goroutines are
// left behind.
func (ex *Explorer) ExploreStream(ctx context.Context, goal Goal) (<-chan Candidate, <-chan error) {
	out := make(chan Candidate)
	errc := make(chan error, 1)
	workers := ex.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	em := ex.newEmitter()
	f := newFrontier(workers)
	f.add(em.stamp(ex.rootTree(goal)))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex.streamWorker(f)
		}()
	}
	// The commit loop blocks in cond.Wait and channel sends; wake it (and
	// shut the workers down) the moment the context is cancelled.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			f.close()
		case <-stopWatch:
		}
	}()
	go func() {
		err := ex.commitLoop(ctx, f, em, out)
		f.close()
		close(stopWatch)
		wg.Wait()
		close(out)
		if err != nil {
			errc <- err
		}
		close(errc)
	}()
	return out, errc
}

// commitLoop is the sequential search loop with expansion outsourced to
// the workers: it retires frontier heads in total order and applies the
// order-sensitive bookkeeping.
func (ex *Explorer) commitLoop(ctx context.Context, f *frontier, em *emitter, out chan<- Candidate) error {
	emitted := 0
	for {
		head, exp, err, done := f.awaitHead(ctx, em, emitted, ex.Cutoff)
		if err != nil || done {
			return err
		}
		if head.Complete() {
			if exp.ok && em.admit(exp.cand) {
				select {
				case out <- exp.cand:
					emitted++
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			continue
		}
		ex.steps.Add(1)
		f.admitKids(em, exp.kids)
	}
}

// streamWorker claims trees and posts their speculative expansions until
// the frontier closes.
func (ex *Explorer) streamWorker(f *frontier) {
	// Per-worker solver: solver.Solver accumulates Stats, so sharing
	// ex.Solver across workers would race. Results depend only on the
	// backtrack bound, which is copied.
	bound := 0
	if ex.Solver != nil {
		bound = ex.Solver.MaxBacktracks
	}
	sv := &solver.Solver{MaxBacktracks: bound}
	for {
		t, ok := f.claim()
		if !ok {
			return
		}
		var exp expansion
		if t.Complete() {
			exp.cand, exp.ok = ex.extract(t, sv)
		} else {
			exp.kids = ex.expandStep(t)
		}
		f.post(t, exp)
	}
}

// expansion is one worker's speculative result for a claimed tree.
type expansion struct {
	kids []*Tree   // surviving forks (partial trees)
	cand Candidate // extraction result (complete trees)
	ok   bool
}

// frontier is the shared concurrent search frontier. canon holds every
// uncommitted tree in the search's total order; avail is the subset not
// yet claimed by a worker; ready holds posted expansions awaiting commit.
type frontier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	canon    treeHeap
	avail    treeHeap
	ready    map[*Tree]expansion
	inflight int
	// window bounds speculation: at most this many expansions may be in
	// flight or awaiting commit, except that the canonical head is always
	// claimable (the commit loop waits on it).
	window int
	closed bool
}

func newFrontier(workers int) *frontier {
	window := 2 * workers
	if window < 8 {
		window = 8
	}
	f := &frontier{ready: make(map[*Tree]expansion), window: window}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// add seeds the frontier with a stamped tree.
func (f *frontier) add(t *Tree) {
	f.mu.Lock()
	f.canon.push(t)
	f.avail.push(t)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// claim hands the caller the cheapest unclaimed tree, blocking until one
// is claimable or the frontier closes (ok=false).
func (f *frontier) claim() (*Tree, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, false
		}
		if f.avail.Len() > 0 {
			// avail ⊆ canon under the same order, so the heads coincide
			// exactly when the canonical head is unclaimed — and that head
			// must always be claimable or the commit loop would stall.
			head := f.avail.Peek()
			if head == f.canon.Peek() || f.inflight+len(f.ready) < f.window {
				f.avail.pop()
				f.inflight++
				return head, true
			}
		}
		f.cond.Wait()
	}
}

// post publishes a worker's expansion for commit.
func (f *frontier) post(t *Tree, exp expansion) {
	f.mu.Lock()
	f.inflight--
	f.ready[t] = exp
	f.cond.Broadcast()
	f.mu.Unlock()
}

// awaitHead blocks until the canonical head's expansion is ready, then
// retires the head and returns it with its expansion. done reports that
// the search is over: frontier exhausted, bounds reached, or the head's
// cost passed the cutoff (the frontier is cost-ordered, so everything
// behind it is too expensive — the sequential loop's break).
func (f *frontier) awaitHead(ctx context.Context, em *emitter, emitted int, cutoff float64) (*Tree, expansion, error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, expansion{}, err, true
		}
		if f.canon.Len() == 0 || !em.searching(emitted) {
			return nil, expansion{}, nil, true
		}
		head := f.canon.Peek()
		if head.Cost > cutoff {
			return nil, expansion{}, nil, true
		}
		if exp, ok := f.ready[head]; ok {
			f.canon.pop()
			delete(f.ready, head)
			f.cond.Broadcast() // window space freed
			return head, exp, nil, false
		}
		f.cond.Wait()
	}
}

// admitKids stamps a committed expansion's children in child order and
// makes them available to the workers.
func (f *frontier) admitKids(em *emitter, kids []*Tree) {
	f.mu.Lock()
	for _, kid := range kids {
		em.stamp(kid)
		f.canon.push(kid)
		f.avail.push(kid)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// close ends the search: workers drain and exit, claim returns false.
func (f *frontier) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}
