package metaprov

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/ndlog"
)

// collectStream drains an ExploreStream into a slice, failing the test on
// a stream error.
func collectStream(t *testing.T, ex *Explorer, goal Goal) []Candidate {
	t.Helper()
	cands, errc := ex.ExploreStream(context.Background(), goal)
	var out []Candidate
	for c := range cands {
		out = append(out, c)
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

// requireSameCandidates asserts two candidate sequences are identical
// position by position.
func requireSameCandidates(t *testing.T, seq, par []Candidate) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("sequential %d candidates, stream %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Signature() != par[i].Signature() {
			t.Fatalf("candidate %d differs:\n  sequential: %s\n  stream:     %s",
				i, seq[i].Describe(), par[i].Describe())
		}
		if seq[i].Cost != par[i].Cost {
			t.Fatalf("candidate %d cost %v (sequential) vs %v (stream)", i, seq[i].Cost, par[i].Cost)
		}
	}
}

// TestExploreStreamMatchesSequential is the core equivalence property on
// the Figure 2 scenario: for any worker count, ExploreStream yields the
// exact candidate sequence of sequential Explore.
func TestExploreStreamMatchesSequential(t *testing.T) {
	prog, rec := runFig2(t)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	goal := PinnedGoal("FlowTable", &v3, &v80, &v2)

	seqEx := NewExplorer(meta.NewModel(prog), rec)
	seq := seqEx.Explore(goal)
	if len(seq) == 0 {
		t.Fatal("sequential search found no candidates")
	}

	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0) + 2} {
		ex := NewExplorer(meta.NewModel(prog), rec)
		ex.Workers = workers
		par := collectStream(t, ex, goal)
		requireSameCandidates(t, seq, par)
		if got, want := ex.Stats().Steps, seqEx.Stats().Steps; got != want {
			t.Fatalf("workers=%d: committed steps %d, sequential %d", workers, got, want)
		}
	}
}

// TestExploreStreamRespectsBounds mirrors the sequential bound invariants
// through the stream: MaxCandidates and MaxSteps cut the committed search
// at the same point for any worker count.
func TestExploreStreamRespectsBounds(t *testing.T) {
	prog, rec := runFig2(t)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	goal := PinnedGoal("FlowTable", &v3, &v80, &v2)

	seqEx := NewExplorer(meta.NewModel(prog), rec)
	seqEx.MaxCandidates = 3
	seq := seqEx.Explore(goal)

	ex := NewExplorer(meta.NewModel(prog), rec)
	ex.MaxCandidates = 3
	ex.Workers = 4
	par := collectStream(t, ex, goal)
	requireSameCandidates(t, seq, par)

	exSteps := NewExplorer(meta.NewModel(prog), rec)
	exSteps.MaxSteps = 5
	exSteps.Workers = 4
	_ = collectStream(t, exSteps, goal)
	if got := exSteps.Stats().Steps; got > 5 {
		t.Fatalf("committed steps = %d, bound 5", got)
	}
}

// TestExploreStreamCancellation proves cancelling the context tears the
// whole stream down: both channels close and no worker goroutines are
// left behind.
func TestExploreStreamCancellation(t *testing.T) {
	prog, rec := runFig2(t)
	v3, v80, v2 := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2)
	goal := PinnedGoal("FlowTable", &v3, &v80, &v2)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ex := NewExplorer(meta.NewModel(prog), rec)
	ex.Workers = 4
	cands, errc := ex.ExploreStream(ctx, goal)

	// Take one candidate, then abandon the stream mid-flight.
	if _, ok := <-cands; !ok {
		t.Fatal("stream closed before the first candidate")
	}
	cancel()
	for range cands {
	}
	if err := <-errc; err != context.Canceled {
		t.Fatalf("stream error = %v, want context.Canceled", err)
	}

	// Every goroutine the stream started must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before stream, %d after cancel", before, now)
	}
}
