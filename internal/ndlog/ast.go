package ndlog

import (
	"fmt"
	"strings"
)

// BinOp enumerates binary operators usable in expressions and selections.
type BinOp uint8

const (
	OpEq  BinOp = iota // ==
	OpNe               // !=
	OpLt               // <
	OpGt               // >
	OpLe               // <=
	OpGe               // >=
	OpAdd              // +
	OpSub              // -
	OpMul              // *
	OpDiv              // /
	OpAnd              // &&
	OpOr               // ||
)

var opNames = map[BinOp]string{
	OpEq: "==", OpNe: "!=", OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpAnd: "&&", OpOr: "||",
}

// String renders the operator in source syntax.
func (op BinOp) String() string { return opNames[op] }

// IsComparison reports whether the operator yields a boolean.
func (op BinOp) IsComparison() bool { return op <= OpGe }

// ParseOp parses an operator token; ok is false for unknown text.
func ParseOp(s string) (BinOp, bool) {
	for op, name := range opNames {
		if name == s {
			return op, true
		}
	}
	return 0, false
}

// Expr is an NDlog expression: a variable, a constant, a binary operation,
// a function call, or an aggregate (head position only).
type Expr interface {
	exprNode()
	String() string
	// Clone returns a deep copy so repairs can mutate programs safely.
	Clone() Expr
	// Vars appends the free variables of the expression to dst.
	Vars(dst []string) []string
}

// Var references a rule variable by name.
type Var struct{ Name string }

// ConstExpr is a literal value.
type ConstExpr struct{ Val Value }

// Binary applies Op to L and R.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Call invokes a registered engine function, e.g. f_unique().
type Call struct {
	Fn   string
	Args []Expr
}

// Agg is an aggregate head expression such as a_count<X>.
type Agg struct {
	Fn  string // "count" is the only aggregate the dialect defines
	Arg string // aggregated variable
}

func (*Var) exprNode()       {}
func (*ConstExpr) exprNode() {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}
func (*Agg) exprNode()       {}

func (e *Var) String() string       { return e.Name }
func (e *ConstExpr) String() string { return e.Val.String() }
func (e *Binary) String() string {
	return fmt.Sprintf("%s %s %s", e.L.String(), e.Op.String(), e.R.String())
}
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}
func (e *Agg) String() string { return fmt.Sprintf("a_%s<%s>", e.Fn, e.Arg) }

func (e *Var) Clone() Expr       { c := *e; return &c }
func (e *ConstExpr) Clone() Expr { c := *e; return &c }
func (e *Binary) Clone() Expr    { return &Binary{Op: e.Op, L: e.L.Clone(), R: e.R.Clone()} }
func (e *Call) Clone() Expr {
	args := make([]Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Clone()
	}
	return &Call{Fn: e.Fn, Args: args}
}
func (e *Agg) Clone() Expr { c := *e; return &c }

func (e *Var) Vars(dst []string) []string       { return append(dst, e.Name) }
func (e *ConstExpr) Vars(dst []string) []string { return dst }
func (e *Binary) Vars(dst []string) []string    { return e.R.Vars(e.L.Vars(dst)) }
func (e *Call) Vars(dst []string) []string {
	for _, a := range e.Args {
		dst = a.Vars(dst)
	}
	return dst
}
func (e *Agg) Vars(dst []string) []string { return append(dst, e.Arg) }

// Functor is a predicate occurrence: a table name with argument expressions.
// Body functor arguments are variables or constants; head arguments may be
// any expression. Loc is the index of the location argument (the one written
// with @), or -1 when the functor is location-free.
type Functor struct {
	Table string
	Loc   int
	Args  []Expr
}

// String renders the functor in source syntax.
func (f *Functor) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		s := a.String()
		if i == f.Loc {
			s = "@" + s
		}
		parts[i] = s
	}
	return fmt.Sprintf("%s(%s)", f.Table, strings.Join(parts, ","))
}

// Clone deep-copies the functor.
func (f *Functor) Clone() *Functor {
	args := make([]Expr, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Clone()
	}
	return &Functor{Table: f.Table, Loc: f.Loc, Args: args}
}

// Selection is a boolean predicate over rule variables, e.g. Swi == 2.
type Selection struct {
	Left  Expr
	Op    BinOp
	Right Expr
}

// String renders the selection in source syntax.
func (s *Selection) String() string {
	return fmt.Sprintf("%s %s %s", s.Left.String(), s.Op.String(), s.Right.String())
}

// Clone deep-copies the selection.
func (s *Selection) Clone() *Selection {
	return &Selection{Left: s.Left.Clone(), Op: s.Op, Right: s.Right.Clone()}
}

// Assignment binds a fresh variable to the value of an expression.
type Assignment struct {
	Var  string
	Expr Expr
}

// String renders the assignment in source syntax.
func (a *Assignment) String() string {
	return fmt.Sprintf("%s := %s", a.Var, a.Expr.String())
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment { return &Assignment{Var: a.Var, Expr: a.Expr.Clone()} }

// Rule is one NDlog rule. Body holds the positive predicates in source
// order; Sels and Assigns hold the selection and assignment predicates.
// TagMask restricts the rule to a subset of backtesting tags (see the
// multi-query optimization of §4.4); the zero value of Rule has TagMask 0,
// so constructors and the parser set it to AllTags.
type Rule struct {
	ID      string
	Head    *Functor
	Body    []*Functor
	Sels    []*Selection
	Assigns []*Assignment
	TagMask uint64
}

// AllTags is the tag mask that matches every backtesting tag.
const AllTags = ^uint64(0)

// String renders the rule in source syntax, terminated by a period.
func (r *Rule) String() string {
	var parts []string
	for _, b := range r.Body {
		parts = append(parts, b.String())
	}
	for _, s := range r.Sels {
		parts = append(parts, s.String())
	}
	for _, a := range r.Assigns {
		parts = append(parts, a.String())
	}
	return fmt.Sprintf("%s %s :- %s.", r.ID, r.Head.String(), strings.Join(parts, ", "))
}

// Clone deep-copies the rule.
func (r *Rule) Clone() *Rule {
	body := make([]*Functor, len(r.Body))
	for i, b := range r.Body {
		body[i] = b.Clone()
	}
	sels := make([]*Selection, len(r.Sels))
	for i, s := range r.Sels {
		sels[i] = s.Clone()
	}
	asg := make([]*Assignment, len(r.Assigns))
	for i, a := range r.Assigns {
		asg[i] = a.Clone()
	}
	return &Rule{ID: r.ID, Head: r.Head.Clone(), Body: body, Sels: sels, Assigns: asg, TagMask: r.TagMask}
}

// TableDecl declares a table's schema: arity, primary-key columns, and
// timeout. Timeout 0 marks a transient event (message) table; a positive
// timeout marks materialized state (the dialect only distinguishes 0 vs 1,
// matching the paper's Message/State split).
type TableDecl struct {
	Name    string
	Arity   int
	Timeout int
	Keys    []int // zero-based argument positions forming the primary key
}

// String renders the declaration as a materialize directive.
func (d *TableDecl) String() string {
	keys := make([]string, len(d.Keys))
	for i, k := range d.Keys {
		keys[i] = fmt.Sprint(k)
	}
	return fmt.Sprintf("materialize(%s, %d, %d, keys(%s)).", d.Name, d.Timeout, d.Arity, strings.Join(keys, ","))
}

// Program is a parsed NDlog program: declarations plus rules.
type Program struct {
	Name  string
	Decls []*TableDecl
	Rules []*Rule
}

// Clone deep-copies the program; repairs patch clones, never originals.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name}
	for _, d := range p.Decls {
		dd := *d
		dd.Keys = append([]int(nil), d.Keys...)
		q.Decls = append(q.Decls, &dd)
	}
	for _, r := range p.Rules {
		q.Rules = append(q.Rules, r.Clone())
	}
	return q
}

// Rule returns the rule with the given ID, or nil.
func (p *Program) Rule(id string) *Rule {
	for _, r := range p.Rules {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// Decl returns the declaration for a table, or nil if the table is an
// undeclared (event) table.
func (p *Program) Decl(table string) *TableDecl {
	for _, d := range p.Decls {
		if d.Name == table {
			return d
		}
	}
	return nil
}

// String renders the whole program in parseable source syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// LineCount returns the number of declarations plus rules; the paper's
// program-size experiments (Appendix A) measure programs in lines.
func (p *Program) LineCount() int { return len(p.Decls) + len(p.Rules) }
