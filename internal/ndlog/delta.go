package ndlog

// Incremental delta evaluation (the backtesting fast path).
//
// A §4.4 shared-run program contains one rule *group* per original rule:
// the original (masked away from the candidates that touch it) followed by
// its candidate variants. All members of a group share a syntactically
// identical body — candidates edit selections, assignments, and heads, not
// the join structure — so the full-mode trigger loop performs the same
// unification and join once per member, ~64 times per event. Delta mode
// (EvalDelta) instead groups adjacent trigger plans with identical bodies,
// runs the shared join once under the union of the members' tag masks, and
// replays the collected bindings through each member: a per-member firing
// is then a tag-mask intersection plus a fail-fast selection check on the
// shared environment, and only members that pass clone the environment.
//
// Emission order is preserved exactly: groups are contiguous runs of the
// trigger list, members iterate in registration order, and bindings are
// collected in the same depth-first order joinStep enumerates them, so the
// member-major replay produces the full path's derivation sequence
// tuple-for-tuple (stores never mutate during a fire). The differential
// tests in delta_test.go and the scenario-level enginediff tests hold the
// two paths to that contract.
//
// The same file implements the DRed-style incremental program-edit API:
// RetractRule removes a rule and underives its counted derivations,
// AssertRule adds a rule and seeds it from the stored state, so a rule
// edit applies as retract(old) + assert(new) without recomputing the
// shared prefix. Both share the engine's support-counting semantics with
// Delete (cyclic self-support is not broken, aggregate heads are
// rejected), and neither narrows the tag sets of surviving tuples — they
// are for engines running under a uniform tag set, not mid-shared-run.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EvalMode selects how the engine evaluates rule triggers.
type EvalMode uint8

const (
	// EvalFull (the zero value) fires every trigger plan independently —
	// the reference path the differential tests treat as the oracle.
	EvalFull EvalMode = iota
	// EvalDelta groups trigger plans with identical bodies, runs each
	// group's join once under the union tag mask, and replays the bindings
	// through the members with precompiled guard schedules. Derivations,
	// their order, and all observable behavior are identical to EvalFull;
	// only the amount of repeated work differs. Engines using
	// JoinLegacySorted ignore delta mode (the legacy oracle predates the
	// planner the grouping relies on).
	EvalDelta
)

// String names the mode for logs and flags.
func (m EvalMode) String() string {
	if m == EvalDelta {
		return "delta"
	}
	return "full"
}

var defaultEvalMode atomic.Uint32

// DefaultEvalMode returns the mode NewEngine gives new engines.
func DefaultEvalMode() EvalMode { return EvalMode(defaultEvalMode.Load()) }

// SetDefaultEvalMode sets the mode for subsequently constructed engines and
// returns the previous default. Like SetDefaultJoinStrategy, it exists so
// differential tests can run whole pipelines against either path.
func SetDefaultEvalMode(m EvalMode) EvalMode {
	return EvalMode(defaultEvalMode.Swap(uint32(m)))
}

// EvalMode returns the engine's active evaluation mode.
func (e *Engine) EvalMode() EvalMode { return e.mode }

// SetEvalMode switches the engine's evaluation mode. Both modes share the
// same stores and plans, so switching is valid at any point.
func (e *Engine) SetEvalMode(m EvalMode) { e.mode = m }

// triggerGroup is a contiguous run of trigger plans sharing an identical
// body (and therefore an identical compiled join plan).
type triggerGroup struct {
	plans []*rulePlan
	union uint64 // OR of the members' tag masks
}

// planSig canonicalizes the shape the shared join depends on: the trigger
// position plus every body atom's rendering. Equal signatures imply equal
// unification behavior and equal planned steps (planRule is deterministic
// in the body and the engine's table set).
func (p *rulePlan) planSig() string {
	if p.sig == "" {
		var b strings.Builder
		fmt.Fprintf(&b, "%d", p.pred)
		for _, f := range p.rule.Body {
			b.WriteByte('|')
			b.WriteString(f.String())
		}
		p.sig = b.String()
	}
	return p.sig
}

// triggerGroups returns (building lazily) the grouped trigger list for a
// table. AssertRule and RetractRule invalidate the cache.
func (e *Engine) triggerGroups(table string) []*triggerGroup {
	if e.groups == nil {
		e.groups = make(map[string][]*triggerGroup)
	}
	if g, ok := e.groups[table]; ok {
		return g
	}
	var out []*triggerGroup
	var cur *triggerGroup
	curSig := ""
	for _, p := range e.triggers[table] {
		sig := p.planSig()
		if cur == nil || sig != curSig {
			cur = &triggerGroup{}
			curSig = sig
			out = append(out, cur)
		}
		cur.plans = append(cur.plans, p)
		cur.union |= p.rule.TagMask
	}
	e.groups[table] = out
	return out
}

// binding is one complete body match produced by a group's shared join.
type binding struct {
	env  Env
	tags uint64
	rows []*Row
}

// bindingSet pools the per-fire binding collection: the slice of bindings
// plus one arena backing all their row slices. If the arena reallocates
// mid-collection, earlier bindings keep the old backing array — their
// contents are already complete — so carving stays safe.
type bindingSet struct {
	items []binding
	arena []*Row
}

var bindingSetPool = sync.Pool{New: func() any { return new(bindingSet) }}

// fireDelta is fire() under EvalDelta: one shared join per trigger group,
// bindings replayed member-major. See the file comment for the order- and
// count-equivalence argument.
func (e *Engine) fireDelta(row *Row, tags uint64) []workItem {
	// run() copies the returned slice into its queue before the next fire,
	// so the backing array is engine-owned and reused across fires.
	out := e.fireBuf[:0]
	for _, g := range e.triggerGroups(row.Tuple.Table) {
		gt := tags & g.union
		if gt == 0 {
			continue
		}
		p0 := g.plans[0]
		env, ok := e.unify(Env{}, p0.rule.Body[p0.pred], row.Tuple)
		if !ok {
			continue
		}
		e.Stats.GroupJoins++
		bs := bindingSetPool.Get().(*bindingSet)
		bs.items = bs.items[:0]
		bs.arena = bs.arena[:0]
		nbody := len(p0.rule.Body)
		if cap(e.boundBuf) < nbody {
			e.boundBuf = make([]*Row, nbody)
		}
		cur := e.boundBuf[:nbody]
		for i := range cur {
			cur[i] = nil
		}
		cur[p0.pred] = row
		e.collect(p0, 0, env, gt, cur, bs)
		for _, p := range g.plans {
			gp := e.guardPlanFor(p.rule)
			for bi := range bs.items {
				b := &bs.items[bi]
				mt := b.tags & p.rule.TagMask
				if mt == 0 {
					continue
				}
				e.Stats.Firings++
				if gp.err != nil {
					continue // guards can never bind: full mode derives nothing either
				}
				if !e.evalFastSels(gp, b.env) {
					continue
				}
				env2 := b.env
				if gp.clone || len(e.listeners) > 0 {
					env2 = b.env.Clone()
				}
				if !e.runGuardSeq(gp, env2) {
					continue
				}
				if it, derived := e.derive(p.rule, p.pred, env2, mt, b.rows); derived {
					out = append(out, it)
				}
			}
		}
		bindingSetPool.Put(bs)
	}
	e.fireBuf = out
	return out
}

// collect enumerates the group's complete bindings in joinStep's exact
// depth-first order, narrowing tags by each matched row, and appends them
// to the binding set.
func (e *Engine) collect(p *rulePlan, step int, env Env, tags uint64, cur []*Row, bs *bindingSet) {
	if step == len(p.steps) {
		start := len(bs.arena)
		bs.arena = append(bs.arena, cur...)
		bs.items = append(bs.items, binding{
			env: env, tags: tags,
			rows: bs.arena[start : start+len(cur) : start+len(cur)],
		})
		return
	}
	st := &p.steps[step]
	if st.tbl == nil || st.tbl.live == 0 {
		return
	}
	var rows []*Row
	if st.idx != nil && e.strategy == JoinIndexed {
		if hasWildKey(st.key, env) {
			rows = st.tbl.rows
			e.Stats.Scans++
			e.Stats.ScanRows += int64(st.tbl.live)
		} else {
			e.keyBuf = appendStepKey(e.keyBuf[:0], st.key, env)
			rows = st.idx.rowsFor(string(e.keyBuf))
			e.Stats.IndexLookups++
			e.Stats.IndexRows += int64(len(rows))
		}
	} else {
		rows = st.tbl.rows
		e.Stats.Scans++
		e.Stats.ScanRows += int64(st.tbl.live)
	}
	for _, other := range rows {
		if other.gone {
			continue
		}
		jt := tags & other.Tuple.Tags
		if jt == 0 {
			continue
		}
		env2, ok := e.unify(env, st.f, other.Tuple)
		if !ok {
			continue
		}
		cur[st.body] = other
		e.collect(p, step+1, env2, jt, cur, bs)
	}
	cur[st.body] = nil
}

// guardOp is one precompiled guard step: an assignment or a selection.
type guardOp struct {
	assign bool
	idx    int
}

// guardPlan is a rule's precompiled guard schedule. seq replays
// checkGuards' exact evaluation order (per round: every ready assignment in
// source order, then every ready selection in source order), with readiness
// resolved statically — every body-atom variable is bound once the join
// completes, so the runtime fixpoint and its per-op Vars allocations are
// unnecessary. fast holds the selections safe to hoist before the schedule
// and evaluate on the shared, unclonied environment: their variables come
// entirely from body atoms and no function call (the only possible side
// effect, e.g. f_unique advancing the counter) can be skipped or reordered
// by failing early.
type guardPlan struct {
	r     *Rule
	fast  []int
	seq   []guardOp
	clone bool  // rule has assignments: the env mutates, clone before seq
	err   error // guards can never become bound: the rule derives nothing
}

func (e *Engine) guardPlanFor(r *Rule) *guardPlan {
	if gp, ok := e.guardPlans[r]; ok {
		return gp
	}
	gp := buildGuardPlan(r)
	e.guardPlans[r] = gp
	return gp
}

func buildGuardPlan(r *Rule) *guardPlan {
	gp := &guardPlan{r: r, clone: len(r.Assigns) > 0}
	bound := make(map[string]bool)
	for _, f := range r.Body {
		bindAtomVars(bound, f)
	}
	bodyVars := make(map[string]bool, len(bound))
	for v := range bound {
		bodyVars[v] = true
	}
	doneA := make([]bool, len(r.Assigns))
	doneS := make([]bool, len(r.Sels))
	remaining := len(r.Assigns) + len(r.Sels)
	for remaining > 0 {
		progress := false
		for i, a := range r.Assigns {
			if doneA[i] || !varsIn(bound, a.Expr) {
				continue
			}
			gp.seq = append(gp.seq, guardOp{assign: true, idx: i})
			bound[a.Var] = true
			doneA[i] = true
			remaining--
			progress = true
		}
		for i, s := range r.Sels {
			if doneS[i] || !varsIn(bound, s.Left) || !varsIn(bound, s.Right) {
				continue
			}
			gp.seq = append(gp.seq, guardOp{idx: i})
			doneS[i] = true
			remaining--
			progress = true
		}
		if !progress {
			gp.err = fmt.Errorf("ndlog: rule %s: guards never become bound", r.ID)
			return gp
		}
	}
	// Hoist body-only, call-free selections ahead of the schedule, but not
	// past an assignment whose evaluation could have a side effect.
	sawCallAssign := false
	kept := gp.seq[:0]
	for _, op := range gp.seq {
		if op.assign {
			if exprHasCall(r.Assigns[op.idx].Expr) {
				sawCallAssign = true
			}
			kept = append(kept, op)
			continue
		}
		s := r.Sels[op.idx]
		if !sawCallAssign && varsIn(bodyVars, s.Left) && varsIn(bodyVars, s.Right) &&
			!exprHasCall(s.Left) && !exprHasCall(s.Right) {
			gp.fast = append(gp.fast, op.idx)
			continue
		}
		kept = append(kept, op)
	}
	gp.seq = kept
	gp.clone = gp.clone && len(gp.seq) > 0
	return gp
}

// varsIn reports whether every free variable of x is in the bound set.
func varsIn(bound map[string]bool, x Expr) bool {
	for _, v := range x.Vars(nil) {
		if v != "_" && !bound[v] {
			return false
		}
	}
	return true
}

// exprHasCall reports whether evaluating x can invoke a registered
// function — the only evaluation step with a possible side effect.
func exprHasCall(x Expr) bool {
	switch x := x.(type) {
	case *Binary:
		return exprHasCall(x.L) || exprHasCall(x.R)
	case *Call:
		return true
	}
	return false
}

// evalFastSels runs the hoisted selections read-only on the shared env.
func (e *Engine) evalFastSels(gp *guardPlan, env Env) bool {
	for _, i := range gp.fast {
		s := gp.r.Sels[i]
		l, err := e.Eval(env, s.Left)
		if err != nil {
			return false
		}
		rv, err := e.Eval(env, s.Right)
		if err != nil {
			return false
		}
		res, err := applyOp(s.Op, l, rv)
		if err != nil || !res.IsTrue() {
			return false
		}
	}
	return true
}

// runGuardSeq replays the precompiled schedule; env is the member's own
// clone when the rule assigns.
func (e *Engine) runGuardSeq(gp *guardPlan, env Env) bool {
	for _, op := range gp.seq {
		if op.assign {
			a := gp.r.Assigns[op.idx]
			v, err := e.Eval(env, a.Expr)
			if err != nil {
				return false
			}
			env[a.Var] = v
			continue
		}
		s := gp.r.Sels[op.idx]
		l, err := e.Eval(env, s.Left)
		if err != nil {
			return false
		}
		rv, err := e.Eval(env, s.Right)
		if err != nil {
			return false
		}
		res, err := applyOp(s.Op, l, rv)
		if err != nil || !res.IsTrue() {
			return false
		}
	}
	return true
}

// invalidatePlans drops the caches derived from the trigger list after a
// program edit.
func (e *Engine) invalidatePlans() {
	e.groups = nil
}

// RetractRule removes the identified rule from the program and underives
// every materialized tuple derivation it produced, cascading through the
// support counts (DRed with counted derivations: a tuple that retains
// another live derivation or a base insertion survives, and is counted in
// Stats.RecountedTuples). Event-headed derivations are history — they were
// emitted, not stored — so retraction affects materialized state only.
// Rules with aggregate heads are rejected: aggregation state cannot be
// rolled back incrementally; rebuild the engine instead. The removed rule
// is returned so a caller can re-assert it.
func (e *Engine) RetractRule(id string) (*Rule, error) {
	idx := -1
	for i, r := range e.prog.Rules {
		if r.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("ndlog: RetractRule: no rule %s", id)
	}
	target := e.prog.Rules[idx]
	if hasAgg(target.Head) {
		return nil, fmt.Errorf("ndlog: RetractRule: rule %s aggregates; aggregate state cannot be rolled back incrementally", id)
	}
	e.prog.Rules = append(e.prog.Rules[:idx:idx], e.prog.Rules[idx+1:]...)
	for tbl, plans := range e.triggers {
		kept := plans[:0]
		for _, p := range plans {
			if p.rule != target {
				kept = append(kept, p)
			}
		}
		e.triggers[tbl] = kept
	}
	delete(e.guardPlans, target)
	e.invalidatePlans()

	// Gather the rule's live derivations before touching anything: the
	// cascade compacts row slices, so collection and underivation are two
	// phases. The worklist is preallocated and reused across retractions.
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	worklist := e.retractBuf[:0]
	for _, name := range names {
		for _, row := range e.tables[name].rows {
			if row.gone {
				continue
			}
			for _, d := range row.derivs {
				if !d.dead && d.rule == target {
					worklist = append(worklist, d)
				}
			}
		}
	}
	e.retractBuf = worklist[:0]

	e.Tick()
	e.retracting = true
	for _, d := range worklist {
		if d.dead {
			continue // already killed by an earlier cascade
		}
		d.dead = true
		e.Stats.DeltaRetractions++
		if len(e.listeners) > 0 {
			body := make([]Tuple, len(d.body))
			for i, b := range d.body {
				body[i] = b.Tuple
			}
			for _, l := range e.listeners {
				l.OnUnderive(e.now, d.rule, d.head.Tuple, body)
			}
		}
		e.unsupport(d.head)
	}
	e.retracting = false
	return target, nil
}

// AssertRule adds a rule to the running program, compiles its trigger
// plans (backfilling any new hash indexes from the stored rows), and seeds
// it against the existing state: the join is driven from the rule's first
// stored body atom, so every current body combination derives exactly
// once, and the produced heads cascade through the whole program. Rules
// whose body references only event tables produce nothing at assert time —
// they fire on future events. Appearances seeded here are counted in
// Stats.DeltaInserts and returned. Aggregate heads are rejected, mirroring
// RetractRule.
func (e *Engine) AssertRule(r *Rule) ([]Tuple, error) {
	if r.Head == nil || len(r.Body) == 0 {
		return nil, fmt.Errorf("ndlog: AssertRule: missing head or empty body")
	}
	if hasAgg(r.Head) {
		return nil, fmt.Errorf("ndlog: AssertRule: rule %s aggregates; assert it by rebuilding the engine", r.ID)
	}
	if r.TagMask == 0 {
		r.TagMask = AllTags
	}
	if err := e.noteLoc(r.Head); err != nil {
		return nil, err
	}
	for _, b := range r.Body {
		if err := e.noteLoc(b); err != nil {
			return nil, err
		}
	}
	e.prog.Rules = append(e.prog.Rules, r)
	plans := make([]*rulePlan, len(r.Body))
	for i, b := range r.Body {
		plans[i] = e.planRule(r, i)
		e.triggers[b.Table] = append(e.triggers[b.Table], plans[i])
	}
	e.invalidatePlans()

	seed := -1
	for i, b := range r.Body {
		if e.tables[b.Table] != nil {
			seed = i
			break
		}
	}
	if seed < 0 {
		return nil, nil // event-only body: fires on future events
	}
	e.Tick()
	var work []workItem
	for _, row := range e.tables[r.Body[seed].Table].snapshot() {
		rtags := row.Tuple.Tags & r.TagMask
		if rtags == 0 {
			continue
		}
		env, ok := e.unify(Env{}, r.Body[seed], row.Tuple)
		if !ok {
			continue
		}
		bound := make([]*Row, len(r.Body))
		bound[seed] = row
		if e.strategy == JoinLegacySorted {
			work = append(work, e.joinLegacy(r, seed, env, rtags, bound, 0)...)
		} else {
			work = append(work, e.joinStep(plans[seed], 0, env, rtags, bound)...)
		}
	}
	appeared := e.run(work, nil)
	e.Stats.DeltaInserts += int64(len(appeared))
	return appeared, nil
}
