// Randomized property tests for the incremental rule-edit path: on the
// same generated programs the strategy differential uses, a workload
// interleaved with RetractRule/AssertRule edit rounds must leave exactly
// the table contents of an uninterrupted from-scratch run, and evaluating
// a mutated rule as a delta (retract the original, assert the mutation)
// must match a full fixpoint of the mutated program — under both
// JoinIndexed and JoinScan. This is the engine-level oracle behind
// incremental backtesting.
package ndlog_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ndlog"
)

// sanitizeOps restricts the generated workload to the value and table
// space real NDlog programs use, where retract+assert identity actually
// holds. Two generator quirks break it otherwise. Cross-kind equality
// (Bool(0) == Int(0)) and wildcard rows make derived VALUES depend on
// which body atom drives a join — continuous evaluation drives from the
// arriving row, assert seeding from the first stored atom — so wildcard
// and bool args are rewritten to plain ints. And primary-key upsert makes
// base inserts into rule-derived tables order-dependent: a base row can
// displace a derived row under the same key (or vice versa), so whichever
// was written last wins and a re-derivation flips the winner. Real
// programs keep base and derived tables disjoint; ops targeting any
// rule's head table are dropped. Rule constants are untouched: matching a
// constant binds nothing, so it cannot leak an ambiguous value into a
// head.
func sanitizeOps(spec *genSpec) {
	derived := map[string]bool{}
	for _, r := range spec.prog.Rules {
		derived[r.Head.Table] = true
	}
	kept := spec.ops[:0]
	for _, op := range spec.ops {
		if derived[op.tuple.Table] {
			continue
		}
		for i, v := range op.tuple.Args {
			switch v.Kind {
			case ndlog.KindWild:
				op.tuple.Args[i] = ndlog.Int(2)
			case ndlog.KindBool:
				op.tuple.Args[i] = ndlog.Int(v.Int)
			}
		}
		kept = append(kept, op)
	}
	spec.ops = kept
}

// editableRules returns the IDs of rules the DRed edit path supports with
// exact retract+assert identity: stored-table bodies only (an event that
// fires while the rule is absent is history AssertRule cannot recover)
// and non-aggregate heads (rejected by the edit API).
func editableRules(prog *ndlog.Program) []string {
	var ids []string
rules:
	for _, r := range prog.Rules {
		for _, a := range r.Head.Args {
			if _, agg := a.(*ndlog.Agg); agg {
				continue rules
			}
		}
		for _, b := range r.Body {
			if b.Table[0] != 'T' {
				continue rules
			}
		}
		ids = append(ids, r.ID)
	}
	return ids
}

// runEdited applies spec's workload with an edit round every stride ops:
// a random subset of the editable rules is retracted (cascading through
// the support counts) and immediately re-asserted (re-seeding from stored
// state). No ops run while a rule is absent, so the final state must be
// identical to never having edited at all.
func runEdited(t *testing.T, spec *genSpec, strat ndlog.JoinStrategy, rnd *rand.Rand) (*ndlog.Engine, []string) {
	t.Helper()
	e, err := ndlog.NewEngine(spec.prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.SetJoinStrategy(strat)
	editable := editableRules(spec.prog)
	stride := 15 + rnd.Intn(15)
	for i, op := range spec.ops {
		if op.del {
			e.Delete(op.tuple.Clone())
		} else {
			e.Insert(op.tuple.Clone())
		}
		if len(editable) > 0 && (i+1)%stride == 0 {
			k := 1 + rnd.Intn(len(editable))
			picked := rnd.Perm(len(editable))[:k]
			var retracted []*ndlog.Rule
			for _, p := range picked {
				r, err := e.RetractRule(editable[p])
				if err != nil {
					t.Fatalf("RetractRule(%s): %v", editable[p], err)
				}
				retracted = append(retracted, r)
			}
			// Re-assert in a different order than the retraction.
			for _, j := range rnd.Perm(len(retracted)) {
				if _, err := e.AssertRule(retracted[j]); err != nil {
					t.Fatalf("AssertRule(%s): %v", retracted[j].ID, err)
				}
			}
		}
	}
	return e, finalTables(e, spec)
}

// runStraight applies spec's workload with no edits.
func runStraight(t *testing.T, spec *genSpec, strat ndlog.JoinStrategy) (*ndlog.Engine, []string) {
	t.Helper()
	e, err := ndlog.NewEngine(spec.prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.SetJoinStrategy(strat)
	for _, op := range spec.ops {
		if op.del {
			e.Delete(op.tuple.Clone())
		} else {
			e.Insert(op.tuple.Clone())
		}
	}
	return e, finalTables(e, spec)
}

// aggTainted returns the state tables whose contents depend on aggregate
// firing history. The engine's aggregate state is monotone — group members
// are added but never removed — so each firing emits the count as of that
// moment and stale count rows persist. That makes agg-derived tables (and
// anything computed from them) depend on trigger interleaving, not just on
// final state; they are excluded from the equivalence check.
func aggTainted(prog *ndlog.Program) map[string]bool {
	tainted := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if tainted[r.Head.Table] {
				continue
			}
			agg := false
			for _, a := range r.Head.Args {
				if _, ok := a.(*ndlog.Agg); ok {
					agg = true
				}
			}
			if !agg {
				for _, b := range r.Body {
					if tainted[b.Table] {
						agg = true
					}
				}
			}
			if agg {
				tainted[r.Head.Table] = true
				changed = true
			}
		}
	}
	return tainted
}

// finalTables renders the stored tables in sorted order: edits churn row
// slots, so content equality — not enumeration order — is the invariant.
// Aggregate-history-dependent tables are skipped (see aggTainted).
func finalTables(e *ndlog.Engine, spec *genSpec) []string {
	tainted := aggTainted(spec.prog)
	var out []string
	for _, tbl := range spec.states {
		if tainted[tbl] {
			continue
		}
		for _, tp := range e.Rows(tbl) {
			out = append(out, tupleStr(tp))
		}
	}
	return sortedCopy(out)
}

// TestDeltaEditEquivalence: retract+assert rounds interleaved with the
// workload are invisible in the final state, for both join strategies,
// and the counted-derivation counters prove the rounds did real work.
func TestDeltaEditEquivalence(t *testing.T) {
	var totalRetractions int64
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, strat := range []ndlog.JoinStrategy{ndlog.JoinIndexed, ndlog.JoinScan} {
				spec := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
				ref := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
				sanitizeOps(spec)
				sanitizeOps(ref)
				edited, got := runEdited(t, spec, strat, rand.New(rand.NewSource(seed+1000)))
				_, want := runStraight(t, ref, strat)
				if d := diffStreams(got, want); d != "" {
					t.Fatalf("strategy %d: edited run diverges from straight run: %s", strat, d)
				}
				totalRetractions += edited.Stats.DeltaRetractions
			}
		})
	}
	// Some seeds legitimately retract rules with no live derivations, but
	// across the corpus the edit rounds must kill real derivations or the
	// property was never exercised.
	if totalRetractions == 0 {
		t.Error("no seed's edit rounds retracted a single derivation — the property was not exercised")
	}
}

// mutateRule flips the first constant it finds in the rule's selections,
// assignments, or body args — the SetConst/SetOper shape of real repair
// candidates — and reports whether it changed anything.
func mutateRule(r *ndlog.Rule) bool {
	bump := func(v ndlog.Value) ndlog.Value { return ndlog.Int(7) }
	for _, s := range r.Sels {
		if c, ok := s.Right.(*ndlog.ConstExpr); ok {
			c.Val = bump(c.Val)
			return true
		}
	}
	for _, a := range r.Assigns {
		if b, ok := a.Expr.(*ndlog.Binary); ok {
			if c, ok := b.R.(*ndlog.ConstExpr); ok {
				c.Val = bump(c.Val)
				return true
			}
		}
	}
	for _, b := range r.Body {
		for _, arg := range b.Args {
			if c, ok := arg.(*ndlog.ConstExpr); ok {
				c.Val = bump(c.Val)
				return true
			}
		}
	}
	return false
}

// eventSafe reports whether mutating the rule can be evaluated as a
// delta with exact equivalence: no event-bodied rule may consume —
// directly or transitively — the mutated rule's head. Event firings
// freeze history (they join against the stored state of their instant),
// so if an event rule observes the rule's output mid-stream, a candidate
// asserted after the run cannot reproduce what the events would have
// seen. The real backtester replays the event trace per candidate for
// exactly this reason; the engine-level delta identity only covers the
// stored-state part.
func eventSafe(prog *ndlog.Program, id string) bool {
	closure := map[string]bool{}
	for _, r := range prog.Rules {
		if r.ID == id {
			closure[r.Head.Table] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if closure[r.Head.Table] {
				continue
			}
			for _, b := range r.Body {
				if closure[b.Table] {
					closure[r.Head.Table] = true
					changed = true
				}
			}
		}
	}
	for _, r := range prog.Rules {
		event, observes := false, false
		for _, b := range r.Body {
			if b.Table[0] != 'T' {
				event = true
			}
			if closure[b.Table] {
				observes = true
			}
		}
		if event && observes {
			return false
		}
	}
	return true
}

// TestDeltaMutationEquivalence: evaluating a rule mutation as a delta over
// a converged engine (retract the original, assert the mutated copy) must
// produce exactly the state of a full fixpoint over the mutated program —
// the engine-level statement of incremental candidate backtesting.
func TestDeltaMutationEquivalence(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 14 && tested < 8; seed++ {
		// Probe the seed: it must generate an editable rule that the
		// mutator can change.
		probe := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
		var id string
		for _, cand := range editableRules(probe.prog) {
			if !eventSafe(probe.prog, cand) {
				continue
			}
			for _, r := range probe.prog.Rules {
				if r.ID == cand && mutateRule(r) {
					id = cand
				}
			}
			if id != "" {
				break
			}
		}
		if id == "" {
			continue
		}
		tested++
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, strat := range []ndlog.JoinStrategy{ndlog.JoinIndexed, ndlog.JoinScan} {
				// Fresh identical specs per strategy — the edit API works
				// in place on the engine's program, so nothing generated
				// here survives into the next iteration. base is evaluated
				// incrementally, donor donates the mutated rule object,
				// oracle is mutated up front as the full-fixpoint oracle.
				base := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
				donor := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
				oracle := genProgram(rand.New(rand.NewSource(seed)), seed%2 == 0)
				sanitizeOps(base)
				sanitizeOps(oracle)
				var donorRule *ndlog.Rule
				for _, r := range donor.prog.Rules {
					if r.ID == id {
						donorRule = r
					}
				}
				for _, r := range oracle.prog.Rules {
					if r.ID == id {
						mutateRule(r)
					}
				}
				mutateRule(donorRule)

				inc, err := ndlog.NewEngine(base.prog)
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				inc.SetJoinStrategy(strat)
				for _, op := range base.ops {
					if op.del {
						inc.Delete(op.tuple.Clone())
					} else {
						inc.Insert(op.tuple.Clone())
					}
				}
				if _, err := inc.RetractRule(id); err != nil {
					t.Fatalf("RetractRule(%s): %v", id, err)
				}
				if _, err := inc.AssertRule(donorRule); err != nil {
					t.Fatalf("AssertRule(%s): %v", id, err)
				}
				got := finalTables(inc, base)
				_, want := runStraight(t, oracle, strat)
				if d := diffStreams(got, want); d != "" {
					t.Fatalf("strategy %d: delta-evaluated mutation diverges from full fixpoint: %s", strat, d)
				}
			}
		})
	}
	if tested == 0 {
		t.Fatal("no seed produced a mutable rule — loosen the generator bounds")
	}
}
