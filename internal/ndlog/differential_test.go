// Differential property tests for the evaluation core: randomized
// stratified programs and insert/delete interleavings run under the three
// join strategies, asserting
//
//   - JoinIndexed ≡ JoinScan event-for-event: appearance streams,
//     derivations, underivations, disappearances, provenance graphs, and
//     aggregate values are identical in content AND order — the hash
//     indexes prune only rows unification would reject, in the same order
//     a sequential scan would visit them;
//   - JoinIndexed ≡ JoinLegacySorted up to within-round enumeration order:
//     the seed's sort-per-join engine produces the same event multiset,
//     final table contents, and provenance facts.
package ndlog_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/provenance"
)

// streamListener records every engine callback as a canonical string.
type streamListener struct {
	events []string
}

func tupleStr(t ndlog.Tuple) string {
	return fmt.Sprintf("%s#%x", t.String(), t.Tags)
}

func bodyStr(body []ndlog.Tuple) string {
	parts := make([]string, len(body))
	for i, b := range body {
		parts[i] = tupleStr(b)
	}
	return strings.Join(parts, ";")
}

func (s *streamListener) add(format string, args ...any) {
	s.events = append(s.events, fmt.Sprintf(format, args...))
}

func (s *streamListener) OnInsert(t int64, tp ndlog.Tuple) { s.add("ins@%d %s", t, tupleStr(tp)) }
func (s *streamListener) OnDelete(t int64, tp ndlog.Tuple) { s.add("del@%d %s", t, tupleStr(tp)) }
func (s *streamListener) OnDerive(t int64, r *ndlog.Rule, head ndlog.Tuple, body []ndlog.Tuple, _ ndlog.Env) {
	s.add("drv@%d %s %s <- %s", t, r.ID, tupleStr(head), bodyStr(body))
}
func (s *streamListener) OnUnderive(t int64, r *ndlog.Rule, head ndlog.Tuple, body []ndlog.Tuple) {
	s.add("und@%d %s %s <- %s", t, r.ID, tupleStr(head), bodyStr(body))
}
func (s *streamListener) OnAppear(t int64, tp ndlog.Tuple)    { s.add("app@%d %s", t, tupleStr(tp)) }
func (s *streamListener) OnDisappear(t int64, tp ndlog.Tuple) { s.add("dis@%d %s", t, tupleStr(tp)) }
func (s *streamListener) OnSend(t int64, from, to ndlog.Value, tp ndlog.Tuple) {
	s.add("snd@%d %s->%s %s", t, from, to, tupleStr(tp))
}

// genSpec is one randomized program plus its workload.
type genSpec struct {
	prog   *ndlog.Program
	states []string
	ops    []genOp
}

type genOp struct {
	del   bool
	tuple ndlog.Tuple
}

var genVars = []string{"A", "B", "C", "D", "E", "F"}

func genValue(rnd *rand.Rand) ndlog.Value {
	switch r := rnd.Float64(); {
	case r < 0.70:
		return ndlog.Int(int64(rnd.Intn(4)))
	case r < 0.90:
		strs := []string{"a", "b", "a|b", "|", "s1:x", ""}
		return ndlog.Str(strs[rnd.Intn(len(strs))])
	case r < 0.95:
		return ndlog.Wild()
	default:
		return ndlog.Bool(rnd.Intn(2) == 1)
	}
}

// genProgram builds a stratified program: rules only derive into strictly
// higher-numbered tables, so every fixpoint terminates. allKeys forces
// whole-tuple primary keys (no primary-key replacement), the regime where
// the legacy engine's different enumeration order provably cannot change
// the event multiset.
func genProgram(rnd *rand.Rand, allKeys bool) *genSpec {
	nState := 4 + rnd.Intn(2)
	spec := &genSpec{}
	prog := &ndlog.Program{Name: "gen"}
	arity := make(map[string]int)
	for i := 0; i < nState; i++ {
		name := fmt.Sprintf("T%d", i)
		ar := 2 + rnd.Intn(2)
		keys := make([]int, ar)
		for k := range keys {
			keys[k] = k
		}
		if !allKeys && rnd.Intn(2) == 0 {
			keys = keys[:1+rnd.Intn(ar)]
		}
		prog.Decls = append(prog.Decls, &ndlog.TableDecl{Name: name, Arity: ar, Timeout: 1, Keys: keys})
		arity[name] = ar
		spec.states = append(spec.states, name)
	}
	for _, ev := range []string{"E0", "E1"} {
		arity[ev] = 2
	}

	ruleID := 0
	for h := 1; h < nState; h++ {
		for n := 0; n < 1+rnd.Intn(2); n++ {
			ruleID++
			r := &ndlog.Rule{ID: fmt.Sprintf("g%d", ruleID), TagMask: ndlog.AllTags}
			nbody := 2 + rnd.Intn(2)
			var bodyVars []string
			for b := 0; b < nbody; b++ {
				var tbl string
				if rnd.Float64() < 0.25 {
					tbl = fmt.Sprintf("E%d", rnd.Intn(2))
				} else {
					tbl = fmt.Sprintf("T%d", rnd.Intn(h))
				}
				f := &ndlog.Functor{Table: tbl, Loc: -1}
				for a := 0; a < arity[tbl]; a++ {
					switch r := rnd.Float64(); {
					case r < 0.55 && len(bodyVars) > 0 && b > 0:
						// Reuse a variable: this is what creates joins.
						f.Args = append(f.Args, &ndlog.Var{Name: bodyVars[rnd.Intn(len(bodyVars))]})
					case r < 0.85:
						v := genVars[rnd.Intn(len(genVars))]
						f.Args = append(f.Args, &ndlog.Var{Name: v})
						bodyVars = append(bodyVars, v)
					default:
						f.Args = append(f.Args, &ndlog.ConstExpr{Val: genValue(rnd)})
					}
				}
				r.Body = append(r.Body, f)
			}
			headVars := append([]string(nil), bodyVars...)
			if len(bodyVars) > 0 && rnd.Float64() < 0.4 {
				fresh := "G"
				r.Assigns = append(r.Assigns, &ndlog.Assignment{
					Var: fresh,
					Expr: &ndlog.Binary{Op: ndlog.OpAdd,
						L: &ndlog.Var{Name: bodyVars[rnd.Intn(len(bodyVars))]},
						R: &ndlog.ConstExpr{Val: ndlog.Int(int64(rnd.Intn(3)))}},
				})
				headVars = append(headVars, fresh)
			}
			if len(bodyVars) > 0 && rnd.Float64() < 0.5 {
				ops := []ndlog.BinOp{ndlog.OpLt, ndlog.OpLe, ndlog.OpNe, ndlog.OpGe}
				r.Sels = append(r.Sels, &ndlog.Selection{
					Left:  &ndlog.Var{Name: bodyVars[rnd.Intn(len(bodyVars))]},
					Op:    ops[rnd.Intn(len(ops))],
					Right: &ndlog.ConstExpr{Val: ndlog.Int(int64(rnd.Intn(4)))},
				})
			}
			headTbl := fmt.Sprintf("T%d", h)
			head := &ndlog.Functor{Table: headTbl, Loc: -1}
			aggDone := false
			for a := 0; a < arity[headTbl]; a++ {
				if !aggDone && a == arity[headTbl]-1 && len(bodyVars) > 0 && h == nState-1 && n == 0 {
					// The top stratum's first rule aggregates: the count
					// head exercises the group-key encoding.
					head.Args = append(head.Args, &ndlog.Agg{Fn: "count", Arg: bodyVars[rnd.Intn(len(bodyVars))]})
					aggDone = true
					continue
				}
				if len(headVars) > 0 && rnd.Float64() < 0.7 {
					head.Args = append(head.Args, &ndlog.Var{Name: headVars[rnd.Intn(len(headVars))]})
				} else {
					head.Args = append(head.Args, &ndlog.ConstExpr{Val: ndlog.Int(int64(rnd.Intn(4)))})
				}
			}
			r.Head = head
			prog.Rules = append(prog.Rules, r)
		}
	}
	spec.prog = prog

	// Workload: base insertions into state and event tables, interleaved
	// with deletions of previously inserted base facts.
	var inserted []ndlog.Tuple
	nOps := 120 + rnd.Intn(60)
	for i := 0; i < nOps; i++ {
		if rnd.Float64() < 0.2 && len(inserted) > 0 {
			spec.ops = append(spec.ops, genOp{del: true, tuple: inserted[rnd.Intn(len(inserted))]})
			continue
		}
		var tbl string
		if rnd.Float64() < 0.3 {
			tbl = fmt.Sprintf("E%d", rnd.Intn(2))
		} else {
			tbl = spec.states[rnd.Intn(len(spec.states))]
		}
		tp := ndlog.Tuple{Table: tbl, Tags: ndlog.AllTags}
		for a := 0; a < arity[tbl]; a++ {
			tp.Args = append(tp.Args, genValue(rnd))
		}
		if tbl[0] == 'T' {
			inserted = append(inserted, tp)
		}
		spec.ops = append(spec.ops, genOp{tuple: tp})
	}
	return spec
}

// diffRun executes the workload under one strategy and returns the event
// stream, a provenance dump, and the final table contents.
type diffRun struct {
	events []string
	prov   []string
	tables []string
	stats  ndlog.EngineStats
}

func runDiff(t *testing.T, spec *genSpec, strat ndlog.JoinStrategy) diffRun {
	t.Helper()
	e, err := ndlog.NewEngine(spec.prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.SetJoinStrategy(strat)
	sl := &streamListener{}
	rec := provenance.NewRecorder()
	e.Listen(sl)
	e.Listen(rec)
	for _, op := range spec.ops {
		if op.del {
			e.Delete(op.tuple.Clone())
		} else {
			e.Insert(op.tuple.Clone())
		}
	}
	out := diffRun{events: sl.events, stats: e.Stats}
	for _, tbl := range spec.states {
		for _, tp := range e.Rows(tbl) {
			out.tables = append(out.tables, tupleStr(tp))
		}
		for _, tp := range rec.TuplesOf(tbl) {
			key := tp.Key()
			out.prov = append(out.prov, fmt.Sprintf("tuple %s inserted=%v intervals=%v",
				key, rec.WasInserted(tp), rec.Intervals(tp)))
			for _, d := range rec.DerivationsOf(tp) {
				out.prov = append(out.prov, fmt.Sprintf("deriv %s %s@%d <- %s",
					key, d.Rule.ID, d.Time, bodyStr(d.Body)))
			}
		}
	}
	return out
}

func sortedCopy(s []string) []string {
	c := append([]string(nil), s...)
	sort.Strings(c)
	return c
}

// diffStreams returns "" when the slices are element-wise equal, else a
// description of the first divergence.
func diffStreams(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d:\n  %q\nvs\n  %q", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
	}
	return ""
}

func TestDifferentialIndexedVsOracles(t *testing.T) {
	var totalIndexLookups int64
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			allKeys := seed%2 == 0
			spec := genProgram(rand.New(rand.NewSource(seed)), allKeys)

			indexed := runDiff(t, spec, ndlog.JoinIndexed)
			scan := runDiff(t, spec, ndlog.JoinScan)
			totalIndexLookups += indexed.stats.IndexLookups

			// Exact equivalence against the planned-scan oracle: same
			// events, same order.
			if d := diffStreams(indexed.events, scan.events); d != "" {
				t.Fatalf("indexed vs scan event streams differ: %s", d)
			}
			if d := diffStreams(indexed.prov, scan.prov); d != "" {
				t.Fatalf("indexed vs scan provenance differs: %s", d)
			}
			if d := diffStreams(indexed.tables, scan.tables); d != "" {
				t.Fatalf("indexed vs scan final tables differ: %s", d)
			}
			if scan.stats.IndexLookups != 0 {
				t.Fatalf("scan oracle consulted an index: %+v", scan.stats)
			}

			// Multiset equivalence against the seed's sorted-scan join,
			// valid when whole tuples are keys (no replacement races).
			if allKeys {
				legacy := runDiff(t, spec, ndlog.JoinLegacySorted)
				if d := diffStreams(sortedCopy(indexed.events), sortedCopy(legacy.events)); d != "" {
					t.Fatalf("indexed vs legacy event multisets differ: %s", d)
				}
				if d := diffStreams(sortedCopy(indexed.tables), sortedCopy(legacy.tables)); d != "" {
					t.Fatalf("indexed vs legacy final tables differ: %s", d)
				}
				if d := diffStreams(sortedCopy(indexed.prov), sortedCopy(legacy.prov)); d != "" {
					t.Fatalf("indexed vs legacy provenance differs: %s", d)
				}
			}
		})
	}
	if totalIndexLookups == 0 {
		t.Fatal("no randomized program ever exercised an index lookup")
	}
}
