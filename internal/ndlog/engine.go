package ndlog

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Listener observes engine events; the provenance recorder implements it.
// Implementations must not mutate the tuples they receive. BaseListener
// provides no-op defaults.
type Listener interface {
	// OnInsert fires when a base tuple is inserted (before derivation).
	OnInsert(time int64, t Tuple)
	// OnDelete fires when a base tuple is deleted.
	OnDelete(time int64, t Tuple)
	// OnDerive fires for every rule firing, with the bound environment.
	OnDerive(time int64, rule *Rule, head Tuple, body []Tuple, env Env)
	// OnUnderive fires when a derivation loses support.
	OnUnderive(time int64, rule *Rule, head Tuple, body []Tuple)
	// OnAppear fires when a tuple becomes present (first support).
	OnAppear(time int64, t Tuple)
	// OnDisappear fires when a tuple loses its last support.
	OnDisappear(time int64, t Tuple)
	// OnSend fires when a derived head is routed to a different location.
	OnSend(time int64, from, to Value, t Tuple)
}

// BaseListener is a Listener with no-op methods, for embedding.
type BaseListener struct{}

func (BaseListener) OnInsert(int64, Tuple)                      {}
func (BaseListener) OnDelete(int64, Tuple)                      {}
func (BaseListener) OnDerive(int64, *Rule, Tuple, []Tuple, Env) {}
func (BaseListener) OnUnderive(int64, *Rule, Tuple, []Tuple)    {}
func (BaseListener) OnAppear(int64, Tuple)                      {}
func (BaseListener) OnDisappear(int64, Tuple)                   {}
func (BaseListener) OnSend(int64, Value, Value, Tuple)          {}

// JoinStrategy selects how the engine extends a partial rule binding across
// the remaining body atoms.
type JoinStrategy uint8

const (
	// JoinIndexed (the default) runs the compile-time plan: body atoms in
	// bound-variable-coverage order, each extension answered from a hash
	// index when the plan bound any of the atom's columns.
	JoinIndexed JoinStrategy = iota
	// JoinScan runs the same plan but answers every extension with a full
	// sequential scan in insertion order. Because index buckets preserve
	// insertion order, JoinScan is event-for-event identical to JoinIndexed
	// — it is the differential oracle proving the indexes prune nothing.
	JoinScan
	// JoinLegacySorted reproduces the seed engine's join: body atoms in
	// source order, every extension scanning the whole partner table in
	// primary-key-sorted order (the sort-per-join this refactor removes).
	// Verdicts and provenance must agree with JoinIndexed up to within-round
	// enumeration order; the scenario-level differential test checks it.
	JoinLegacySorted
)

var defaultJoinStrategy atomic.Uint32

// DefaultJoinStrategy returns the strategy NewEngine gives new engines.
func DefaultJoinStrategy() JoinStrategy { return JoinStrategy(defaultJoinStrategy.Load()) }

// SetDefaultJoinStrategy sets the strategy for subsequently constructed
// engines and returns the previous default. It exists so differential tests
// can run whole pipelines — which construct engines many layers down —
// against the scan or legacy oracle.
func SetDefaultJoinStrategy(s JoinStrategy) JoinStrategy {
	return JoinStrategy(defaultJoinStrategy.Swap(uint32(s)))
}

// EngineStats counts engine work for the evaluation experiments.
type EngineStats struct {
	Firings     int64
	Derivations int64
	Inserts     int64
	Deletes     int64
	Sends       int64
	// IndexLookups counts join extensions answered from a hash index, and
	// IndexRows the rows those lookups yielded.
	IndexLookups int64
	IndexRows    int64
	// Scans counts join extensions that fell back to a full table scan
	// (unplanned columns or a non-indexed strategy), and ScanRows the rows
	// those scans visited.
	Scans    int64
	ScanRows int64
	// DeltaInserts counts tuples that appeared while seeding an AssertRule
	// edit, and DeltaRetractions the derivations killed by a RetractRule
	// edit (directly or by cascade). RecountedTuples counts support
	// decrements that left the tuple alive — the counted-derivation
	// bookkeeping that replaces re-derivation.
	DeltaInserts     int64
	DeltaRetractions int64
	RecountedTuples  int64
	// GroupJoins counts shared joins performed by delta-grouped
	// evaluation; each one serves every member of its trigger group, so
	// 1 - GroupJoins/Firings is the delta hit rate — the fraction of rule
	// firings answered from an already-computed binding set instead of a
	// fresh join.
	GroupJoins int64
}

// Add accumulates counters from another snapshot; the backtest layer uses
// it to roll per-batch engine stats into a per-job report.
func (s *EngineStats) Add(o EngineStats) {
	s.Firings += o.Firings
	s.Derivations += o.Derivations
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.Sends += o.Sends
	s.IndexLookups += o.IndexLookups
	s.IndexRows += o.IndexRows
	s.Scans += o.Scans
	s.ScanRows += o.ScanRows
	s.DeltaInserts += o.DeltaInserts
	s.DeltaRetractions += o.DeltaRetractions
	s.RecountedTuples += o.RecountedTuples
	s.GroupJoins += o.GroupJoins
}

// aggState holds per-rule aggregation state: distinct aggregated values per
// group, where the group is the tuple of non-aggregate head arguments.
type aggState struct {
	groups map[string]map[string]struct{}
	heads  map[string][]Value // group key -> evaluated non-agg head args
}

// Engine evaluates an NDlog program bottom-up with semi-naive firing over
// indexed table stores and compile-time join plans (see plan.go and
// storage.go). The engine is single-goroutine; callers requiring
// concurrency run one engine per goroutine (programs and tuples are never
// shared mutably).
type Engine struct {
	prog     *Program
	decls    map[string]*TableDecl
	locIdx   map[string]int
	tables   map[string]*table
	triggers map[string][]*rulePlan
	aggs     map[string]*aggState // rule ID -> aggregation state
	Funcs    map[string]Func

	strategy  JoinStrategy
	mode      EvalMode
	listeners []Listener
	fresh     int64
	now       int64

	keyBuf   []byte // scratch for join-step index keys
	groupBuf []byte // scratch for aggregate group keys
	boundBuf []*Row // scratch for delta binding collection

	// Delta-evaluation caches (see delta.go): contiguous same-body trigger
	// groups per table, precompiled guard schedules per rule, and the
	// reusable retraction worklist. retracting attributes cascade
	// underivations to Stats.DeltaRetractions during RetractRule.
	groups     map[string][]*triggerGroup
	guardPlans map[*Rule]*guardPlan
	retractBuf []*derivation
	retracting bool

	// workBuf backs run's fixpoint queue between calls; running guards the
	// reuse against re-entrant runs (a listener inserting tuples). fireBuf
	// backs fireDelta's output, copied into the queue before the next fire;
	// seedBuf is Insert's one-item work list.
	workBuf []workItem
	fireBuf []workItem
	seedBuf [1]workItem
	running bool

	// Stats counts engine work for the evaluation experiments.
	Stats EngineStats
}

// NewEngine compiles a program into an engine: it validates that every
// table is used with a consistent arity and location position, creates the
// indexed store for each materialized table, and compiles a join plan (and
// the hash indexes it needs) for every rule × trigger-predicate pair.
func NewEngine(prog *Program) (*Engine, error) {
	e := &Engine{
		prog:     prog,
		decls:    make(map[string]*TableDecl),
		locIdx:   make(map[string]int),
		tables:   make(map[string]*table),
		triggers: make(map[string][]*rulePlan),
		aggs:     make(map[string]*aggState),
		Funcs:    make(map[string]Func),
		strategy: DefaultJoinStrategy(),
		mode:     DefaultEvalMode(),
	}
	e.guardPlans = make(map[*Rule]*guardPlan)
	RegisterBuiltins(e)
	for _, d := range prog.Decls {
		if _, dup := e.decls[d.Name]; dup {
			return nil, fmt.Errorf("ndlog: duplicate declaration for table %s", d.Name)
		}
		e.decls[d.Name] = d
		if d.Timeout != 0 {
			e.tables[d.Name] = newTable(d.Name, d.Keys)
		}
	}
	for _, r := range prog.Rules {
		if r.Head == nil || len(r.Body) == 0 {
			return nil, fmt.Errorf("ndlog: rule %s: missing head or empty body", r.ID)
		}
		if err := e.noteLoc(r.Head); err != nil {
			return nil, err
		}
		for i, b := range r.Body {
			if err := e.noteLoc(b); err != nil {
				return nil, err
			}
			e.triggers[b.Table] = append(e.triggers[b.Table], e.planRule(r, i))
		}
		if hasAgg(r.Head) {
			e.aggs[r.ID] = &aggState{
				groups: make(map[string]map[string]struct{}),
				heads:  make(map[string][]Value),
			}
		}
	}
	return e, nil
}

// MustNewEngine is NewEngine that panics on error.
func MustNewEngine(prog *Program) *Engine {
	e, err := NewEngine(prog)
	if err != nil {
		panic(err)
	}
	return e
}

func hasAgg(f *Functor) bool {
	for _, a := range f.Args {
		if _, ok := a.(*Agg); ok {
			return true
		}
	}
	return false
}

func (e *Engine) noteLoc(f *Functor) error {
	if f.Loc < 0 {
		return nil
	}
	if prev, ok := e.locIdx[f.Table]; ok {
		if prev != f.Loc {
			return fmt.Errorf("ndlog: table %s used with inconsistent location positions %d and %d", f.Table, prev, f.Loc)
		}
		return nil
	}
	e.locIdx[f.Table] = f.Loc
	return nil
}

// Program returns the compiled program.
func (e *Engine) Program() *Program { return e.prog }

// Listen registers a listener.
func (e *Engine) Listen(l Listener) { e.listeners = append(e.listeners, l) }

// JoinStrategy returns the engine's active join strategy.
func (e *Engine) JoinStrategy() JoinStrategy { return e.strategy }

// SetJoinStrategy switches the engine's join strategy. All strategies share
// the same stores and plans, so switching is valid at any point; it exists
// for the differential tests and the engine benchmarks.
func (e *Engine) SetJoinStrategy(s JoinStrategy) { e.strategy = s }

// Now returns the engine's logical clock.
func (e *Engine) Now() int64 { return e.now }

// Tick advances the logical clock and returns the new time.
func (e *Engine) Tick() int64 { e.now++; return e.now }

// Fresh returns a unique integer (the f_unique() builtin).
func (e *Engine) Fresh() int64 { e.fresh++; return e.fresh }

// LocIndex returns the location-argument index for a table (default 0).
func (e *Engine) LocIndex(table string) int {
	if i, ok := e.locIdx[table]; ok {
		return i
	}
	return 0
}

// isEvent reports whether the table is transient (timeout 0 / undeclared).
func (e *Engine) isEvent(table string) bool {
	d, ok := e.decls[table]
	return !ok || d.Timeout == 0
}

// keysOf returns the primary-key columns for a table (nil = all columns).
func (e *Engine) keysOf(table string) []int {
	if d, ok := e.decls[table]; ok {
		return d.Keys
	}
	return nil
}

// workItem is a pending insertion flowing through the fixpoint.
type workItem struct {
	tuple Tuple
	base  bool
	via   *derivation // nil for base insertions
}

// Insert inserts a base tuple (event or state) and runs the fixpoint,
// returning every tuple that appeared during this round (including the
// inserted one and all derived heads, events included).
func (e *Engine) Insert(t Tuple) []Tuple { return e.InsertInto(t, nil) }

// InsertInto is Insert appending the appearances to buf, so a caller in a
// tight loop (the controller's PacketIn path) can reuse one buffer. The
// returned slice is valid until the caller's next InsertInto with the same
// buffer.
func (e *Engine) InsertInto(t Tuple, buf []Tuple) []Tuple {
	e.Tick()
	e.Stats.Inserts++
	if t.Tags == 0 {
		t.Tags = AllTags
	}
	if len(e.listeners) > 0 {
		t.Key() // intern once; every listener copy inherits the cache
		for _, l := range e.listeners {
			l.OnInsert(e.now, t)
		}
	}
	if e.running {
		// Re-entrant insert (a listener): don't touch the seed scratch.
		return e.run([]workItem{{tuple: t, base: true}}, buf)
	}
	e.seedBuf[0] = workItem{tuple: t, base: true}
	return e.run(e.seedBuf[:], buf)
}

// InsertAll inserts a batch of base tuples under a single logical timestamp
// per tuple, returning all appearances.
func (e *Engine) InsertAll(ts []Tuple) []Tuple {
	var out []Tuple
	for _, t := range ts {
		out = append(out, e.Insert(t)...)
	}
	return out
}

// Delete removes one base support from a state tuple and propagates
// underivations. Deleting an absent tuple is a no-op.
func (e *Engine) Delete(t Tuple) {
	e.Tick()
	tbl := e.tables[t.Table]
	if tbl == nil {
		return
	}
	row, ok := tbl.lookup(t.PrimaryKey(e.keysOf(t.Table)))
	if !ok || !row.Base {
		return
	}
	e.Stats.Deletes++
	for _, l := range e.listeners {
		l.OnDelete(e.now, row.Tuple)
	}
	row.Base = false
	e.unsupport(row)
}

// unsupport decrements a row's support and cascades when it reaches zero.
func (e *Engine) unsupport(row *Row) {
	row.Support--
	if row.Support > 0 {
		e.Stats.RecountedTuples++
		return
	}
	if tbl := e.tables[row.Tuple.Table]; tbl != nil {
		tbl.remove(row)
	}
	for _, l := range e.listeners {
		l.OnDisappear(e.now, row.Tuple)
	}
	for _, d := range row.usedBy {
		if d.dead {
			continue
		}
		d.dead = true
		if e.retracting {
			e.Stats.DeltaRetractions++
		}
		body := make([]Tuple, len(d.body))
		for i, b := range d.body {
			body[i] = b.Tuple
		}
		for _, l := range e.listeners {
			l.OnUnderive(e.now, d.rule, d.head.Tuple, body)
		}
		e.unsupport(d.head)
	}
	row.usedBy = nil
}

// run drives the semi-naive fixpoint over the work list.
func (e *Engine) run(work []workItem, appeared []Tuple) []Tuple {
	// The queue is drained by index rather than re-slicing so the backing
	// array keeps its full capacity; it is retained on the engine between
	// runs, which removes the dominant steady-state allocation of replay.
	q := work
	reuse := !e.running
	if reuse {
		e.running = true
		q = append(e.workBuf[:0], work...)
	}
	for head := 0; head < len(q); head++ {
		item := q[head]
		t := item.tuple

		var row *Row
		fireTags := t.Tags
		if e.isEvent(t.Table) {
			if len(e.listeners) > 0 {
				t.Key()
			}
			appeared = append(appeared, t)
			for _, l := range e.listeners {
				l.OnAppear(e.now, t)
			}
			row = &Row{Tuple: t, Support: 1}
			if item.via != nil {
				item.via.head = row
			}
		} else {
			tbl := e.tables[t.Table]
			key := t.PrimaryKey(tbl.keyCols)
			if exist, ok := tbl.lookup(key); ok {
				if exist.Tuple.Equal(t) {
					// Same fact: add support; fire only for new tags.
					exist.Support++
					if item.base {
						exist.Base = true
					}
					if item.via != nil {
						item.via.head = exist
						exist.derivs = append(exist.derivs, item.via)
						for _, b := range item.via.body {
							b.usedBy = append(b.usedBy, item.via)
						}
					}
					fireTags = t.Tags &^ exist.Tuple.Tags
					exist.Tuple.Tags |= t.Tags
					if fireTags == 0 {
						continue
					}
					// The fact is new for these tags: report it so
					// listeners and callers (e.g. the controller) see the
					// tag expansion, and fire rules for the delta only.
					// A shallow copy keeps the interned keys; stored
					// argument slices are immutable by contract.
					nt := exist.Tuple
					nt.Tags = fireTags
					appeared = append(appeared, nt)
					for _, l := range e.listeners {
						l.OnAppear(e.now, nt)
					}
					row = exist
				} else {
					// Primary-key replacement: retract old fact first.
					exist.Base = false
					exist.Support = 1
					e.unsupport(exist)
					row = e.storeNew(tbl, t, item)
					appeared = append(appeared, t)
				}
			} else {
				row = e.storeNew(tbl, t, item)
				appeared = append(appeared, t)
			}
		}
		q = append(q, e.fire(row, fireTags)...)
	}
	if reuse {
		e.workBuf = q[:0]
		e.running = false
	}
	return appeared
}

func (e *Engine) storeNew(tbl *table, t Tuple, item workItem) *Row {
	if len(e.listeners) > 0 {
		t.Key()
	}
	row := &Row{Tuple: t, Support: 1, Base: item.base}
	if item.via != nil {
		item.via.head = row
		row.derivs = append(row.derivs, item.via)
		for _, b := range item.via.body {
			b.usedBy = append(b.usedBy, item.via)
		}
	}
	tbl.insert(row)
	for _, l := range e.listeners {
		l.OnAppear(e.now, t)
	}
	return row
}

// fire evaluates every rule triggered by the new row, restricted to tags.
// bound is positional: bound[i] is the row matched to body atom i.
func (e *Engine) fire(row *Row, tags uint64) []workItem {
	if e.mode == EvalDelta && e.strategy != JoinLegacySorted {
		return e.fireDelta(row, tags)
	}
	var out []workItem
	for _, p := range e.triggers[row.Tuple.Table] {
		rtags := tags & p.rule.TagMask
		if rtags == 0 {
			continue
		}
		env, ok := e.unify(Env{}, p.rule.Body[p.pred], row.Tuple)
		if !ok {
			continue
		}
		bound := make([]*Row, len(p.rule.Body))
		bound[p.pred] = row
		if e.strategy == JoinLegacySorted {
			out = append(out, e.joinLegacy(p.rule, p.pred, env, rtags, bound, 0)...)
		} else {
			out = append(out, e.joinStep(p, 0, env, rtags, bound)...)
		}
	}
	return out
}

// joinStep extends the partial binding along the compiled plan: each step
// answers from its hash index when the plan bound columns (JoinIndexed), or
// from a sequential scan in the same insertion order (JoinScan).
func (e *Engine) joinStep(p *rulePlan, step int, env Env, tags uint64, bound []*Row) []workItem {
	if step == len(p.steps) {
		return e.emit(p.rule, p.pred, env, tags, bound)
	}
	st := &p.steps[step]
	if st.tbl == nil || st.tbl.live == 0 {
		return nil
	}
	var rows []*Row
	if st.idx != nil && e.strategy == JoinIndexed {
		if hasWildKey(st.key, env) {
			// A bound variable carrying a wildcard matches only stored
			// wildcards, which live outside the buckets: scan.
			rows = st.tbl.rows
			e.Stats.Scans++
			e.Stats.ScanRows += int64(st.tbl.live)
		} else {
			e.keyBuf = appendStepKey(e.keyBuf[:0], st.key, env)
			rows = st.idx.rowsFor(string(e.keyBuf))
			e.Stats.IndexLookups++
			e.Stats.IndexRows += int64(len(rows))
		}
	} else {
		rows = st.tbl.rows
		e.Stats.Scans++
		e.Stats.ScanRows += int64(st.tbl.live)
	}
	var out []workItem
	for _, other := range rows {
		if other.gone {
			continue
		}
		jt := tags & other.Tuple.Tags
		if jt == 0 {
			continue
		}
		env2, ok := e.unify(env, st.f, other.Tuple)
		if !ok {
			continue
		}
		bound[st.body] = other
		out = append(out, e.joinStep(p, step+1, env2, jt, bound)...)
	}
	bound[st.body] = nil
	return out
}

// hasWildKey reports whether any planned key variable is bound to a
// wildcard value under env.
func hasWildKey(key []keyCol, env Env) bool {
	for _, kc := range key {
		if kc.varName != "" && env[kc.varName].Kind == KindWild {
			return true
		}
	}
	return false
}

// joinLegacy reproduces the seed's join for the JoinLegacySorted oracle:
// body positions in source order, the partner table sorted by primary key
// and scanned in full on every extension.
func (e *Engine) joinLegacy(r *Rule, pred int, env Env, tags uint64, bound []*Row, idx int) []workItem {
	if idx == len(r.Body) {
		return e.emit(r, pred, env, tags, bound)
	}
	if idx == pred {
		return e.joinLegacy(r, pred, env, tags, bound, idx+1)
	}
	f := r.Body[idx]
	tbl := e.tables[f.Table]
	if tbl == nil || tbl.live == 0 {
		return nil
	}
	rows := tbl.snapshot()
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	e.Stats.Scans++
	e.Stats.ScanRows += int64(len(rows))
	var out []workItem
	for _, other := range rows {
		jt := tags & other.Tuple.Tags
		if jt == 0 {
			continue
		}
		env2, ok := e.unify(env, f, other.Tuple)
		if !ok {
			continue
		}
		bound[idx] = other
		out = append(out, e.joinLegacy(r, pred, env2, jt, bound, idx+1)...)
	}
	bound[idx] = nil
	return out
}

// emit checks guards and derives the head for a fully-bound rule body.
// bound is positional over r.Body with every slot filled; pred marks the
// trigger atom.
func (e *Engine) emit(r *Rule, pred int, env Env, tags uint64, bound []*Row) []workItem {
	e.Stats.Firings++
	env, ok, err := e.checkGuards(r, env)
	if err != nil || !ok {
		return nil
	}
	it, derived := e.derive(r, pred, env, tags, bound)
	if !derived {
		return nil
	}
	return []workItem{it}
}

// derive produces the head for a firing whose guards already passed; the
// delta path calls it directly after its precompiled guard schedule.
func (e *Engine) derive(r *Rule, pred int, env Env, tags uint64, bound []*Row) (workItem, bool) {
	var head Tuple
	if agg := e.aggs[r.ID]; agg != nil {
		var ok bool
		head, ok = e.aggregate(r, agg, env)
		if !ok {
			return workItem{}, false
		}
	} else {
		head = Tuple{Table: r.Head.Table, Args: make([]Value, 0, len(r.Head.Args))}
		for _, a := range r.Head.Args {
			v, err := e.Eval(env, a)
			if err != nil {
				return workItem{}, false
			}
			head.Args = append(head.Args, v)
		}
	}
	head.Tags = tags
	e.Stats.Derivations++

	// Body rows in the seed's reporting order: the trigger first, then the
	// remaining atoms in source order — provenance shape is independent of
	// the planned join order.
	ordered := make([]*Row, 0, len(bound))
	ordered = append(ordered, bound[pred])
	for i, b := range bound {
		if i != pred {
			ordered = append(ordered, b)
		}
	}
	if len(e.listeners) > 0 {
		head.Key()
		bodyTuples := make([]Tuple, len(ordered))
		for i, b := range ordered {
			bodyTuples[i] = b.Tuple
		}
		for _, l := range e.listeners {
			l.OnDerive(e.now, r, head, bodyTuples, env)
		}
	}
	// Cross-node routing: if the head's location differs from the trigger
	// body tuple's location, record a send.
	if r.Head.Loc >= 0 {
		from := e.locationOf(bound[pred].Tuple)
		to := head.Args[r.Head.Loc]
		if from.Kind != KindWild && !from.Equal(to) {
			e.Stats.Sends++
			for _, l := range e.listeners {
				l.OnSend(e.now, from, to, head)
			}
		}
	}
	d := &derivation{rule: r, body: ordered}
	return workItem{tuple: head, via: d}, true
}

// aggregate updates the rule's aggregation state and produces the head with
// the aggregate argument replaced by the current distinct count. Group keys
// use the shared length-prefixed value encoding, so string values
// containing the old separator can no longer merge distinct groups.
func (e *Engine) aggregate(r *Rule, st *aggState, env Env) (Tuple, bool) {
	groupVals := make([]Value, 0, len(r.Head.Args))
	aggIdx := -1
	var aggVal Value
	for i, a := range r.Head.Args {
		if ag, ok := a.(*Agg); ok {
			aggIdx = i
			v, err := e.Eval(env, &Var{Name: ag.Arg})
			if err != nil {
				return Tuple{}, false
			}
			aggVal = v
			groupVals = append(groupVals, Value{}) // placeholder
			continue
		}
		v, err := e.Eval(env, a)
		if err != nil {
			return Tuple{}, false
		}
		groupVals = append(groupVals, v)
	}
	e.groupBuf = e.groupBuf[:0]
	for i, v := range groupVals {
		if i == aggIdx {
			continue
		}
		e.groupBuf = v.AppendKey(e.groupBuf)
	}
	set := st.groups[string(e.groupBuf)]
	if set == nil {
		set = make(map[string]struct{})
		st.groups[string(e.groupBuf)] = set
	}
	set[aggVal.Key()] = struct{}{}
	groupVals[aggIdx] = Int(int64(len(set)))
	return Tuple{Table: r.Head.Table, Args: groupVals}, true
}

// locationOf returns the location value of a tuple.
func (e *Engine) locationOf(t Tuple) Value {
	i := e.LocIndex(t.Table)
	if i < len(t.Args) {
		return t.Args[i]
	}
	return Wild()
}

// Rows returns a snapshot of all stored rows of a table, in deterministic
// insertion order.
func (e *Engine) Rows(table string) []Tuple {
	tbl := e.tables[table]
	if tbl == nil {
		return nil
	}
	out := make([]Tuple, 0, tbl.live)
	for _, r := range tbl.rows {
		if !r.gone {
			out = append(out, r.Tuple)
		}
	}
	return out
}

// Lookup returns stored tuples of a table matching the given filter, in
// insertion order; nil filter values match anything. When the filter binds
// the columns of one of the planner's indexes, the lookup is answered from
// that index's bucket instead of scanning every row.
func (e *Engine) Lookup(table string, filter []*Value) []Tuple {
	tbl := e.tables[table]
	if tbl == nil {
		return nil
	}
	rows := tbl.rows
	if best := lookupIndex(tbl, filter); best != nil {
		buf := make([]byte, 0, 8*len(best.cols))
		for _, c := range best.cols {
			buf = appendHashKey(buf, *filter[c])
		}
		rows = best.rowsFor(string(buf))
		e.Stats.IndexLookups++
		e.Stats.IndexRows += int64(len(rows))
	} else {
		e.Stats.Scans++
		e.Stats.ScanRows += int64(tbl.live)
	}
	var out []Tuple
	for _, r := range rows {
		if r.gone {
			continue
		}
		t := r.Tuple
		if len(filter) > len(t.Args) {
			continue
		}
		ok := true
		for i, f := range filter {
			if f != nil && !f.Equal(t.Args[i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// lookupIndex picks the most selective index whose columns the filter binds
// to concrete (non-nil, non-wildcard) values.
func lookupIndex(tbl *table, filter []*Value) *index {
	var best *index
	for _, x := range tbl.indexes {
		usable := true
		for _, c := range x.cols {
			if c >= len(filter) || filter[c] == nil || filter[c].Kind == KindWild {
				usable = false
				break
			}
		}
		if usable && (best == nil || len(x.cols) > len(best.cols)) {
			best = x
		}
	}
	return best
}

// Count returns the number of stored tuples in a table.
func (e *Engine) Count(table string) int {
	if tbl := e.tables[table]; tbl != nil {
		return tbl.live
	}
	return 0
}

// RegisterBuiltins installs the dialect's built-in functions on an engine:
// f_unique, f_match, f_join, f_concat, f_hash, f_max, f_min.
func RegisterBuiltins(e *Engine) {
	e.Funcs["f_unique"] = func(e *Engine, _ []Value) (Value, error) {
		return Int(e.Fresh()), nil
	}
	e.Funcs["f_match"] = func(_ *Engine, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("f_match: want 2 args, got %d", len(args))
		}
		return Bool(args[0].Matches(args[1])), nil
	}
	e.Funcs["f_join"] = func(_ *Engine, args []Value) (Value, error) {
		if len(args) != 2 {
			return Value{}, fmt.Errorf("f_join: want 2 args, got %d", len(args))
		}
		if args[1].Kind == KindWild {
			return args[0], nil
		}
		return args[1], nil
	}
	e.Funcs["f_concat"] = func(_ *Engine, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			if a.Kind == KindString {
				b.WriteString(a.Str)
			} else {
				b.WriteString(a.String())
			}
		}
		return Str(b.String()), nil
	}
	e.Funcs["f_hash"] = func(_ *Engine, args []Value) (Value, error) {
		var h uint64 = 1469598103934665603 // FNV-1a offset basis
		var buf []byte
		for _, a := range args {
			buf = a.AppendKey(buf[:0])
			for _, b := range buf {
				h ^= uint64(b)
				h *= 1099511628211
			}
		}
		return Int(int64(h & 0x7fffffffffffffff)), nil
	}
	e.Funcs["f_max"] = func(_ *Engine, args []Value) (Value, error) {
		if len(args) == 0 {
			return Value{}, fmt.Errorf("f_max: no arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.Compare(best) > 0 {
				best = a
			}
		}
		return best, nil
	}
	e.Funcs["f_min"] = func(_ *Engine, args []Value) (Value, error) {
		if len(args) == 0 {
			return Value{}, fmt.Errorf("f_min: no arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.Compare(best) < 0 {
				best = a
			}
		}
		return best, nil
	}
}
