package ndlog

import (
	"testing"
)

// figure2Program is the buggy controller from Figure 2 of the paper: r7
// checks Swi == 2 where it should check Swi == 3.
const figure2Program = `
materialize(FlowTable, 1, 3, keys(0,1)).
materialize(WebLoadBalancer, 1, 2, keys(0,1)).
r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@Hdr,Prt), Swi == 1.
r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 53, Hdr != 80, Prt := -1.
r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
r6 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 53, Prt := 2.
r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
`

func TestEngineDeriveFlowEntry(t *testing.T) {
	e := MustNewEngine(MustParse("fig2", figure2Program))
	out := e.Insert(NewTuple("PacketIn", Str("C"), Int(2), Int(80)))
	// r5 and r7 both fire for Swi=2, Hdr=80: two flow entries (Prt 1 and 2)
	// share the primary key (Swi,Hdr), so the table holds one row.
	var flows int
	for _, tp := range out {
		if tp.Table == "FlowTable" {
			flows++
		}
	}
	if flows == 0 {
		t.Fatal("no FlowTable tuple derived")
	}
	if e.Count("FlowTable") != 1 {
		t.Fatalf("FlowTable rows = %d, want 1 (primary-key semantics)", e.Count("FlowTable"))
	}
}

func TestEngineBugReproduced(t *testing.T) {
	// The Figure 1 symptom: a packet arriving at switch 3 with Hdr 80
	// derives no flow entry, because buggy r7 checks Swi == 2.
	e := MustNewEngine(MustParse("fig2", figure2Program))
	out := e.Insert(NewTuple("PacketIn", Str("C"), Int(3), Int(80)))
	for _, tp := range out {
		if tp.Table == "FlowTable" {
			t.Fatalf("unexpected flow entry %v for switch 3", tp)
		}
	}
}

func TestEngineJoinWithState(t *testing.T) {
	e := MustNewEngine(MustParse("fig2", figure2Program))
	e.Insert(NewTuple("WebLoadBalancer", Int(80), Int(1)))
	out := e.Insert(NewTuple("PacketIn", Str("C"), Int(1), Int(80)))
	found := false
	for _, tp := range out {
		if tp.Table == "FlowTable" && tp.Args[2].Int == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("r1 join with WebLoadBalancer failed: %v", out)
	}
}

func TestEnginePrimaryKeyReplacement(t *testing.T) {
	prog := MustParse("kv", `
materialize(KV, 1, 2, keys(0)).
set KV(@K,V) :- Put(@K,V).
`)
	e := MustNewEngine(prog)
	e.Insert(NewTuple("Put", Int(1), Int(10)))
	e.Insert(NewTuple("Put", Int(1), Int(20)))
	rows := e.Rows("KV")
	if len(rows) != 1 || rows[0].Args[1].Int != 20 {
		t.Fatalf("rows = %v, want single KV(1,20)", rows)
	}
}

func TestEngineDeleteCascades(t *testing.T) {
	prog := MustParse("cascade", `
materialize(A, 1, 1, keys(0)).
materialize(B, 1, 1, keys(0)).
materialize(C, 1, 1, keys(0)).
d1 B(@X) :- A(@X).
d2 C(@X) :- B(@X).
`)
	e := MustNewEngine(prog)
	e.Insert(NewTuple("A", Int(7)))
	if e.Count("C") != 1 {
		t.Fatalf("C count = %d, want 1", e.Count("C"))
	}
	e.Delete(NewTuple("A", Int(7)))
	if e.Count("A") != 0 || e.Count("B") != 0 || e.Count("C") != 0 {
		t.Fatalf("after delete: A=%d B=%d C=%d, want all 0",
			e.Count("A"), e.Count("B"), e.Count("C"))
	}
}

func TestEngineMultipleSupports(t *testing.T) {
	prog := MustParse("multi", `
materialize(A, 1, 1, keys(0)).
materialize(B, 1, 1, keys(0)).
materialize(C, 1, 1, keys(0)).
d1 C(@X) :- A(@X).
d2 C(@X) :- B(@X).
`)
	e := MustNewEngine(prog)
	e.Insert(NewTuple("A", Int(1)))
	e.Insert(NewTuple("B", Int(1)))
	e.Delete(NewTuple("A", Int(1)))
	// C(1) still has support through B.
	if e.Count("C") != 1 {
		t.Fatalf("C count = %d, want 1 (supported via B)", e.Count("C"))
	}
	e.Delete(NewTuple("B", Int(1)))
	if e.Count("C") != 0 {
		t.Fatalf("C count = %d, want 0", e.Count("C"))
	}
}

func TestEngineAggregation(t *testing.T) {
	prog := MustParse("agg", `
materialize(PredFunc, 1, 3, keys(0,1,2)).
materialize(PredFuncCount, 1, 2, keys(0)).
p2 PredFuncCount(@Rul,a_count<Tab>) :- PredFunc(@Rul,Tab,Arg).
`)
	e := MustNewEngine(prog)
	e.Insert(NewTuple("PredFunc", Str("r1"), Str("PacketIn"), Int(0)))
	e.Insert(NewTuple("PredFunc", Str("r1"), Str("WebLoadBalancer"), Int(1)))
	e.Insert(NewTuple("PredFunc", Str("r1"), Str("WebLoadBalancer"), Int(1))) // duplicate
	rows := e.Rows("PredFuncCount")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Args[1].Int != 2 {
		t.Fatalf("count = %v, want 2 (distinct tables)", rows[0].Args[1])
	}
}

func TestEngineTags(t *testing.T) {
	// Two variants of the same rule restricted to different tags (§4.4):
	// tag 1 forwards to port 1, tag 2 to port 2.
	prog := MustParse("tags", `
materialize(Out, 1, 3, keys(0,1,2)).
v1 Out(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Prt := 1.
v2 Out(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Prt := 2.
`)
	prog.Rule("v1").TagMask = 1
	prog.Rule("v2").TagMask = 2
	e := MustNewEngine(prog)
	pkt := NewTuple("PacketIn", Str("C"), Int(1), Int(80))
	pkt.Tags = 3
	out := e.Insert(pkt)
	var got []uint64
	for _, tp := range out {
		if tp.Table == "Out" {
			got = append(got, tp.Tags)
		}
	}
	if len(got) != 2 {
		t.Fatalf("derived %d Out tuples, want 2", len(got))
	}
	if got[0]|got[1] != 3 || got[0]&got[1] != 0 {
		t.Fatalf("tags = %v, want disjoint {1,2}", got)
	}
}

func TestEngineTagMaskBlocks(t *testing.T) {
	prog := MustParse("tagblock", `
materialize(Out, 1, 2, keys(0,1)).
v1 Out(@Swi,Hdr) :- PacketIn(@C,Swi,Hdr).
`)
	prog.Rule("v1").TagMask = 4
	e := MustNewEngine(prog)
	pkt := NewTuple("PacketIn", Str("C"), Int(1), Int(80))
	pkt.Tags = 3 // does not include tag bit 4
	out := e.Insert(pkt)
	for _, tp := range out {
		if tp.Table == "Out" {
			t.Fatalf("rule fired despite disjoint tag mask: %v", tp)
		}
	}
}

func TestEngineSendListener(t *testing.T) {
	prog := MustParse("send", `
materialize(FlowTable, 1, 2, keys(0,1)).
fwd FlowTable(@Swi,Prt) :- PacketIn(@C,Swi,Prt).
`)
	e := MustNewEngine(prog)
	rec := &recordingListener{}
	e.Listen(rec)
	e.Insert(NewTuple("PacketIn", Str("C"), Str("S1"), Int(80)))
	if rec.sends != 1 {
		t.Fatalf("sends = %d, want 1 (controller to switch)", rec.sends)
	}
	if rec.derives != 1 || rec.appears != 2 { // PacketIn + FlowTable
		t.Fatalf("derives=%d appears=%d", rec.derives, rec.appears)
	}
}

type recordingListener struct {
	BaseListener
	sends, derives, appears int
}

func (r *recordingListener) OnSend(int64, Value, Value, Tuple)          { r.sends++ }
func (r *recordingListener) OnDerive(int64, *Rule, Tuple, []Tuple, Env) { r.derives++ }
func (r *recordingListener) OnAppear(int64, Tuple)                      { r.appears++ }

func TestEngineRecursion(t *testing.T) {
	// Transitive reachability exercises semi-naive recursion.
	prog := MustParse("reach", `
materialize(Link, 1, 2, keys(0,1)).
materialize(Reach, 1, 2, keys(0,1)).
b Reach(@X,Y) :- Link(@X,Y).
i Reach(@X,Z) :- Link(@X,Y), Reach(@Y,Z).
`)
	e := MustNewEngine(prog)
	e.Insert(NewTuple("Link", Int(1), Int(2)))
	e.Insert(NewTuple("Link", Int(2), Int(3)))
	e.Insert(NewTuple("Link", Int(3), Int(4)))
	if got := e.Count("Reach"); got != 6 {
		t.Fatalf("Reach count = %d, want 6", got)
	}
}

func TestEngineGuardDependencyOrder(t *testing.T) {
	// A selection that depends on an assignment defined after it in source
	// order must still evaluate (guards run in dependency order).
	prog := MustParse("order", `
materialize(Out, 1, 2, keys(0,1)).
o Out(@X,Y) :- In(@X,V), Y > 10, Y := V * 2.
`)
	e := MustNewEngine(prog)
	out := e.Insert(NewTuple("In", Int(1), Int(6)))
	found := false
	for _, tp := range out {
		if tp.Table == "Out" && tp.Args[1].Int == 12 {
			found = true
		}
	}
	if !found {
		t.Fatal("guard dependency ordering failed")
	}
	out = e.Insert(NewTuple("In", Int(2), Int(4)))
	for _, tp := range out {
		if tp.Table == "Out" && tp.Args[0].Int == 2 {
			t.Fatal("selection should have rejected V=4 (Y=8)")
		}
	}
}

func TestEngineBuiltins(t *testing.T) {
	prog := MustParse("builtins", `
materialize(Out, 1, 2, keys(0)).
u Out(@X,Y) :- In(@X), Y := f_unique().
`)
	e := MustNewEngine(prog)
	out1 := e.Insert(NewTuple("In", Int(1)))
	out2 := e.Insert(NewTuple("In", Int(2)))
	var y1, y2 int64
	for _, tp := range out1 {
		if tp.Table == "Out" {
			y1 = tp.Args[1].Int
		}
	}
	for _, tp := range out2 {
		if tp.Table == "Out" {
			y2 = tp.Args[1].Int
		}
	}
	if y1 == y2 {
		t.Fatalf("f_unique returned duplicate values %d", y1)
	}
}

func TestEngineInconsistentLocation(t *testing.T) {
	prog := MustParse("loc", `
a A(@X,Y) :- B(@X,Y).
b A(X,@Y) :- B(@X,Y).
`)
	if _, err := NewEngine(prog); err == nil {
		t.Fatal("expected inconsistent-location error")
	}
}
