package ndlog

import (
	"fmt"
	"sort"
)

// Env binds rule variables to values during a rule firing.
type Env map[string]Value

// Clone copies the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Func is an engine-registered function callable from expressions.
type Func func(e *Engine, args []Value) (Value, error)

// Eval evaluates an expression under the environment using the engine's
// function registry. Aggregates are rejected here; they are evaluated by the
// engine's aggregation path.
func (e *Engine) Eval(env Env, x Expr) (Value, error) {
	switch x := x.(type) {
	case *ConstExpr:
		return x.Val, nil
	case *Var:
		v, ok := env[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("ndlog: unbound variable %s", x.Name)
		}
		return v, nil
	case *Binary:
		l, err := e.Eval(env, x.L)
		if err != nil {
			return Value{}, err
		}
		r, err := e.Eval(env, x.R)
		if err != nil {
			return Value{}, err
		}
		return applyOp(x.Op, l, r)
	case *Call:
		fn, ok := e.Funcs[x.Fn]
		if !ok {
			return Value{}, fmt.Errorf("ndlog: unknown function %s", x.Fn)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.Eval(env, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return fn(e, args)
	case *Agg:
		return Value{}, fmt.Errorf("ndlog: aggregate %s outside rule head", x.String())
	}
	return Value{}, fmt.Errorf("ndlog: unknown expression %T", x)
}

// applyOp applies a binary operator to two values.
func applyOp(op BinOp, l, r Value) (Value, error) {
	switch op {
	case OpEq:
		return Bool(l.Equal(r)), nil
	case OpNe:
		return Bool(!l.Equal(r)), nil
	case OpLt, OpGt, OpLe, OpGe:
		c := l.Compare(r)
		switch op {
		case OpLt:
			return Bool(c < 0), nil
		case OpGt:
			return Bool(c > 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case OpAnd:
		return Bool(l.IsTrue() && r.IsTrue()), nil
	case OpOr:
		return Bool(l.IsTrue() || r.IsTrue()), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.Kind == KindString && op == OpAdd {
			if r.Kind != KindString {
				return Value{}, fmt.Errorf("ndlog: cannot add %s to string", r)
			}
			return Str(l.Str + r.Str), nil
		}
		ln, ok1 := normNum(l)
		rn, ok2 := normNum(r)
		if !ok1 || !ok2 {
			return Value{}, fmt.Errorf("ndlog: arithmetic on non-numeric values %s, %s", l, r)
		}
		switch op {
		case OpAdd:
			return Int(ln.Int + rn.Int), nil
		case OpSub:
			return Int(ln.Int - rn.Int), nil
		case OpMul:
			return Int(ln.Int * rn.Int), nil
		default:
			if rn.Int == 0 {
				return Value{}, fmt.Errorf("ndlog: division by zero")
			}
			return Int(ln.Int / rn.Int), nil
		}
	}
	return Value{}, fmt.Errorf("ndlog: unknown operator %v", op)
}

// EvalOp exposes operator application for packages that re-execute
// derivations (symbolic propagation in the repair generator).
func EvalOp(op BinOp, l, r Value) (Value, error) { return applyOp(op, l, r) }

// unify matches a concrete tuple against a body functor, extending env.
// It returns false when the tuple cannot match. env is mutated only on a
// true result if mutate is set; callers pass a scratch clone otherwise.
func (e *Engine) unify(env Env, f *Functor, t Tuple) (Env, bool) {
	if f.Table != t.Table || len(f.Args) != len(t.Args) {
		return nil, false
	}
	out := env
	cloned := false
	for i, arg := range f.Args {
		switch a := arg.(type) {
		case *Var:
			if a.Name == "_" {
				continue
			}
			if v, ok := out[a.Name]; ok {
				if !v.Equal(t.Args[i]) {
					return nil, false
				}
			} else {
				if !cloned {
					out = out.Clone()
					cloned = true
				}
				out[a.Name] = t.Args[i]
			}
		case *ConstExpr:
			if !a.Val.Matches(t.Args[i]) {
				return nil, false
			}
		default:
			// Body arguments that are computed expressions: evaluate if
			// fully bound and compare.
			v, err := e.Eval(out, arg)
			if err != nil {
				return nil, false
			}
			if !v.Equal(t.Args[i]) {
				return nil, false
			}
		}
	}
	if !cloned {
		out = out.Clone()
	}
	return out, true
}

// checkGuards evaluates the rule's assignments and selections under env,
// handling dependency order: any assignment whose inputs are bound runs
// first, selections run as soon as both sides are bound. It returns the
// final environment and whether all selections passed. An error indicates a
// program bug (e.g. a variable never bound).
func (e *Engine) checkGuards(r *Rule, env Env) (Env, bool, error) {
	doneA := make([]bool, len(r.Assigns))
	doneS := make([]bool, len(r.Sels))
	remaining := len(r.Assigns) + len(r.Sels)
	for remaining > 0 {
		progress := false
		for i, a := range r.Assigns {
			if doneA[i] || !boundVars(env, a.Expr) {
				continue
			}
			v, err := e.Eval(env, a.Expr)
			if err != nil {
				return env, false, err
			}
			env[a.Var] = v
			doneA[i] = true
			remaining--
			progress = true
		}
		for i, s := range r.Sels {
			if doneS[i] || !boundVars(env, s.Left) || !boundVars(env, s.Right) {
				continue
			}
			l, err := e.Eval(env, s.Left)
			if err != nil {
				return env, false, err
			}
			rv, err := e.Eval(env, s.Right)
			if err != nil {
				return env, false, err
			}
			res, err := applyOp(s.Op, l, rv)
			if err != nil {
				return env, false, err
			}
			if !res.IsTrue() {
				return env, false, nil
			}
			doneS[i] = true
			remaining--
			progress = true
		}
		if !progress {
			var unbound []string
			for i, a := range r.Assigns {
				if !doneA[i] {
					unbound = append(unbound, a.String())
				}
			}
			for i, s := range r.Sels {
				if !doneS[i] {
					unbound = append(unbound, s.String())
				}
			}
			sort.Strings(unbound)
			return env, false, fmt.Errorf("ndlog: rule %s: guards never became bound: %v", r.ID, unbound)
		}
	}
	return env, true, nil
}

// boundVars reports whether every free variable of x is bound in env.
func boundVars(env Env, x Expr) bool {
	for _, v := range x.Vars(nil) {
		if v == "_" {
			continue
		}
		if _, ok := env[v]; !ok {
			return false
		}
	}
	return true
}
