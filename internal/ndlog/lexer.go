package ndlog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // ( ) , . @ < >
	tokOp    // == != <= >= < > + - * / := && ||
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes NDlog source, stripping // line comments and /* */ block
// comments. It returns an error with line/column context on illegal input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '\n':
			l.pos++
			l.line++
			l.col = 1
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peek(1) == '*':
			l.advance(2)
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.pos++
					l.line++
					l.col = 1
				} else {
					l.advance(1)
				}
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("ndlog: line %d: unterminated block comment", l.line)
			}
			l.advance(2)
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.advance(1)
			}
			l.emit(tokIdent, l.src[start:l.pos])
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance(1)
			}
			l.emit(tokInt, l.src[start:l.pos])
		case c == '"':
			start := l.pos
			l.advance(1)
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\n' {
					return nil, fmt.Errorf("ndlog: line %d: unterminated string", l.line)
				}
				l.advance(1)
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("ndlog: line %d: unterminated string", l.line)
			}
			l.advance(1)
			l.emit(tokString, l.src[start+1:l.pos-1])
		default:
			if op, n := l.matchOp(); n > 0 {
				l.emit(tokOp, op)
				l.advance(n)
				continue
			}
			if strings.ContainsRune("(),.@", rune(c)) {
				l.emit(tokPunct, string(c))
				l.advance(1)
				continue
			}
			return nil, fmt.Errorf("ndlog: line %d col %d: unexpected character %q", l.line, l.col, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) advance(n int) {
	l.pos += n
	l.col += n
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line, col: l.col})
}

// matchOp recognizes multi-character operators at the current position.
// Single < and > are emitted as tokOp too; the parser disambiguates the
// aggregate brackets a_count<X> by context.
func (l *lexer) matchOp() (string, int) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", ":=", ":-", "&&", "||":
		return two, 2
	}
	switch l.src[l.pos] {
	case '+', '-', '*', '/', '<', '>':
		return string(l.src[l.pos]), 1
	}
	return "", 0
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}
