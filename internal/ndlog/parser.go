package ndlog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses NDlog source into a Program. The name is used in error
// messages and diagnostics only.
func Parse(name, src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{name: name, toks: toks}
	prog := &Program{Name: name}
	for !p.at(tokEOF) {
		if p.atIdent("materialize") {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParse is Parse that panics on error; intended for tests and for
// programs embedded as string constants.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	name string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) at(kind tokKind) bool { return p.cur().kind == kind }

func (p *parser) atIdent(text string) bool {
	return p.cur().kind == tokIdent && p.cur().text == text
}

func (p *parser) atPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) atOp(text string) bool {
	return p.cur().kind == tokOp && p.cur().text == text
}

func (p *parser) next() token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("ndlog: %s: line %d: %s", p.name, t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(text string) error {
	if !p.atPunct(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectOp(text string) error {
	if !p.atOp(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	p.next()
	return nil
}

// parseDecl parses: materialize(Name, timeout, arity, keys(k0,k1,...)).
func (p *parser) parseDecl() (*TableDecl, error) {
	p.next() // materialize
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errf("expected table name in materialize")
	}
	d := &TableDecl{Name: p.next().text}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	to, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	d.Timeout = int(to)
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	ar, err := p.parseInt()
	if err != nil {
		return nil, err
	}
	d.Arity = int(ar)
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if !p.atIdent("keys") {
		return nil, p.errf("expected keys(...) in materialize")
	}
	p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		k, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		d.Keys = append(d.Keys, int(k))
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	if d.Arity <= 0 {
		return nil, fmt.Errorf("ndlog: %s: table %s: arity must be positive", p.name, d.Name)
	}
	for _, k := range d.Keys {
		if k < 0 || k >= d.Arity {
			return nil, fmt.Errorf("ndlog: %s: table %s: key column %d out of range", p.name, d.Name, k)
		}
	}
	return d, nil
}

func (p *parser) parseInt() (int64, error) {
	neg := false
	if p.atOp("-") {
		neg = true
		p.next()
	}
	if !p.at(tokInt) {
		return 0, p.errf("expected integer, found %q", p.cur().text)
	}
	v, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseRule parses: id Head(@L,...) :- term, term, ... .
func (p *parser) parseRule() (*Rule, error) {
	if !p.at(tokIdent) {
		return nil, p.errf("expected rule identifier, found %q", p.cur().text)
	}
	r := &Rule{ID: p.next().text, TagMask: AllTags}
	head, err := p.parseFunctor()
	if err != nil {
		return nil, err
	}
	r.Head = head
	if err := p.expectOp(":-"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseTerm(r); err != nil {
			return nil, err
		}
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return r, nil
}

// parseTerm parses one body term: a predicate functor, a selection, or an
// assignment. Functor-vs-selection is disambiguated by backtracking: a
// parenthesized ident is a functor unless a comparison operator follows it.
func (p *parser) parseTerm(r *Rule) error {
	// Assignment: Ident := Expr
	if p.at(tokIdent) && p.peek().kind == tokOp && p.peek().text == ":=" {
		name := p.next().text
		p.next() // :=
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		r.Assigns = append(r.Assigns, &Assignment{Var: name, Expr: e})
		return nil
	}
	// Try a functor, falling back to an expression selection.
	if p.at(tokIdent) && p.peek().kind == tokPunct && p.peek().text == "(" {
		save := p.pos
		f, err := p.parseFunctor()
		if err == nil && !p.atComparison() {
			r.Body = append(r.Body, f)
			return nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	b, ok := e.(*Binary)
	if !ok || !b.Op.IsComparison() {
		return p.errf("body term must be a predicate, selection, or assignment (got %s)", e.String())
	}
	r.Sels = append(r.Sels, &Selection{Left: b.L, Op: b.Op, Right: b.R})
	return nil
}

func (p *parser) atComparison() bool {
	if p.cur().kind != tokOp {
		return false
	}
	op, ok := ParseOp(p.cur().text)
	return ok && op.IsComparison()
}

// parseFunctor parses: Name(arg, arg, ...), with an optional @ before the
// location argument.
func (p *parser) parseFunctor() (*Functor, error) {
	if !p.at(tokIdent) {
		return nil, p.errf("expected predicate name")
	}
	f := &Functor{Table: p.next().text, Loc: -1}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.atPunct("@") {
			p.next()
			if f.Loc >= 0 {
				return nil, p.errf("duplicate @ location in %s", f.Table)
			}
			f.Loc = len(f.Args)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// Expression grammar, loosest to tightest: || , && , comparisons, + -, * /.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atOp("||") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atOp("&&") {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.atComparison() {
		op, _ := ParseOp(p.next().text)
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op, _ := ParseOp(p.next().text)
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.atOp("*") && !p.mulIsWildcard()) || p.atOp("/") {
		op, _ := ParseOp(p.next().text)
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

// mulIsWildcard reports whether a "*" token at the current position is the
// JID wildcard rather than multiplication: it is a wildcard when no operand
// could follow it (next token closes the context).
func (p *parser) mulIsWildcard() bool {
	n := p.peek()
	return n.kind == tokPunct && (n.text == ")" || n.text == "," || n.text == ".")
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*ConstExpr); ok && c.Val.Kind == KindInt {
			return &ConstExpr{Val: Int(-c.Val.Int)}, nil
		}
		return &Binary{Op: OpSub, L: &ConstExpr{Val: Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Val: Int(v)}, nil
	case t.kind == tokString:
		p.next()
		return &ConstExpr{Val: Str(t.text)}, nil
	case t.kind == tokOp && t.text == "*":
		p.next()
		return &ConstExpr{Val: Wild()}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		switch t.text {
		case "true", "True":
			p.next()
			return &ConstExpr{Val: Bool(true)}, nil
		case "false", "False":
			p.next()
			return &ConstExpr{Val: Bool(false)}, nil
		}
		// Aggregate: a_count<Var>
		if strings.HasPrefix(t.text, "a_") && p.peek().kind == tokOp && p.peek().text == "<" {
			fn := strings.TrimPrefix(t.text, "a_")
			p.next() // a_xxx
			p.next() // <
			if !p.at(tokIdent) {
				return nil, p.errf("expected variable in aggregate")
			}
			arg := p.next().text
			if err := p.expectOp(">"); err != nil {
				return nil, err
			}
			return &Agg{Fn: fn, Arg: arg}, nil
		}
		// Function call: f_name(args)
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			p.next() // name
			p.next() // (
			call := &Call{Fn: t.text}
			if !p.atPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.atPunct(",") {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		p.next()
		return &Var{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
