package ndlog

import (
	"strings"
	"testing"
)

const sampleProgram = `
materialize(FlowTable, 1, 3, keys(0,1)).
materialize(WebLoadBalancer, 1, 3, keys(0,1)).

// Controller program from Figure 2 of the paper.
r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr != 53, Prt := -1.
r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
`

func TestParseSampleProgram(t *testing.T) {
	prog, err := Parse("sample", sampleProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d, want 2", len(prog.Decls))
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(prog.Rules))
	}
	r1 := prog.Rule("r1")
	if r1 == nil {
		t.Fatal("rule r1 missing")
	}
	if len(r1.Body) != 2 || len(r1.Sels) != 1 || len(r1.Assigns) != 0 {
		t.Fatalf("r1 shape = body %d sels %d assigns %d", len(r1.Body), len(r1.Sels), len(r1.Assigns))
	}
	if r1.Head.Table != "FlowTable" || r1.Head.Loc != 0 {
		t.Fatalf("r1 head = %v loc %d", r1.Head.Table, r1.Head.Loc)
	}
	r2 := prog.Rule("r2")
	if len(r2.Sels) != 2 || len(r2.Assigns) != 1 {
		t.Fatalf("r2 shape = sels %d assigns %d", len(r2.Sels), len(r2.Assigns))
	}
	r3 := prog.Rule("r3")
	if r3.Assigns[0].Var != "Prt" {
		t.Fatalf("r3 assign var = %s", r3.Assigns[0].Var)
	}
	c, ok := r3.Assigns[0].Expr.(*ConstExpr)
	if !ok || c.Val.Int != -1 {
		t.Fatalf("r3 assign expr = %v", r3.Assigns[0].Expr)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	prog := MustParse("sample", sampleProgram)
	printed := prog.String()
	again, err := Parse("reprint", printed)
	if err != nil {
		t.Fatalf("reparse printed program: %v\n%s", err, printed)
	}
	if again.String() != printed {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", printed, again.String())
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`x A(@X,Y) :- B(@X,Q), Y := Q * 2 + 1.`, "Y := Q * 2 + 1"},
		{`x A(@X,Y) :- B(@X,Q), Y := f_unique().`, "Y := f_unique()"},
		{`x A(@X,Y) :- B(@X,Q), Y := *.`, "Y := *"},
		{`x A(@X,Y) :- B(@X,Q), Y := Q, Q >= 3.`, "Y := Q"},
	}
	for _, c := range cases {
		prog, err := Parse("expr", c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got := prog.Rules[0].Assigns[0].String()
		if got != c.want {
			t.Errorf("%s: assign = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseSelectionWithCall(t *testing.T) {
	src := `s1 Sel(@C,Rul,V) :- Oper(@C,Rul,O), Expr(@C,Rul,V), True == f_match(V, O).`
	prog, err := Parse("meta", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := prog.Rules[0]
	if len(r.Body) != 2 || len(r.Sels) != 1 {
		t.Fatalf("shape: body %d sels %d", len(r.Body), len(r.Sels))
	}
	if _, ok := r.Sels[0].Right.(*Call); !ok {
		t.Fatalf("selection right side should be a call, got %T", r.Sels[0].Right)
	}
}

func TestParseAggregate(t *testing.T) {
	src := `p2 PredFuncCount(@C,Rul,a_count<N>) :- PredFunc(@C,Rul,Tab,N).`
	prog, err := Parse("agg", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	agg, ok := prog.Rules[0].Head.Args[2].(*Agg)
	if !ok {
		t.Fatalf("head arg 2 should be aggregate, got %T", prog.Rules[0].Head.Args[2])
	}
	if agg.Fn != "count" || agg.Arg != "N" {
		t.Fatalf("agg = %v", agg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`r1 A(@X) :- `,                     // missing body
		`r1 A(@X) :- B(@X)`,                // missing period
		`r1 A(@@X) :- B(@X).`,              // double @
		`materialize(T, 1, 0, keys(0)).`,   // zero arity
		`materialize(T, 1, 2, keys(5)).`,   // key out of range
		`r1 A(@X) :- B(@X), X + 1.`,        // non-boolean term
		"r1 A(@X) :- B(@X), X == \"unterm", // unterminated string
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
/* block
   comment */
r1 A(@X) :- B(@X). // trailing
`
	prog, err := Parse("comments", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
}

func TestProgramClone(t *testing.T) {
	prog := MustParse("sample", sampleProgram)
	clone := prog.Clone()
	if clone.String() != prog.String() {
		t.Fatal("clone should print identically")
	}
	// Mutating the clone must not affect the original.
	clone.Rules[0].Sels[0].Op = OpNe
	if strings.Contains(prog.Rules[0].Sels[0].String(), "!=") {
		t.Fatal("mutating clone affected original")
	}
}

func TestLineCount(t *testing.T) {
	prog := MustParse("sample", sampleProgram)
	if prog.LineCount() != 6 {
		t.Fatalf("line count = %d, want 6", prog.LineCount())
	}
}
