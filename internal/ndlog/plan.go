package ndlog

// Compile-time join planning. At NewEngine time every (rule, trigger
// predicate) pair is compiled into a rulePlan: the remaining body atoms are
// ordered greedily by bound-variable coverage — the atom whose columns are
// most constrained by already-bound variables and constants joins first —
// and each step records the column set the engine should index the atom's
// table on. The matching hash indexes are created on the table stores
// before any tuple is inserted, so at runtime a join extension is a single
// bucket lookup instead of a scan-and-sort over the whole partner table.

// keyCol describes one component of a step's index key: either a constant
// from the rule text or a variable that is guaranteed bound by the time the
// step runs (it appears in the trigger atom or an earlier step).
type keyCol struct {
	col      int
	varName  string // "" when constant
	constVal Value
}

// joinStep is one planned body-atom extension.
type joinStep struct {
	body int      // position in rule.Body
	f    *Functor // == rule.Body[body]
	tbl  *table   // nil: transient event table, never stored, joins empty
	idx  *index   // nil: no bound columns, full sequential scan
	key  []keyCol // index-key recipe, aligned with idx.cols
}

// rulePlan is the compiled join program for one rule triggered at one body
// position.
type rulePlan struct {
	rule  *Rule
	pred  int
	steps []joinStep
	sig   string // lazily-computed body signature for delta trigger grouping
}

// planRule compiles the (rule, trigger) join order and registers the
// required indexes on the engine's table stores.
func (e *Engine) planRule(r *Rule, pred int) *rulePlan {
	bound := make(map[string]bool)
	bindAtomVars(bound, r.Body[pred])

	remaining := make([]int, 0, len(r.Body)-1)
	for i := range r.Body {
		if i != pred {
			remaining = append(remaining, i)
		}
	}

	p := &rulePlan{rule: r, pred: pred}
	// Never-stored atoms first: a transient event table in a non-trigger
	// body position is always empty, so the whole join short-circuits
	// before any scan or lookup happens.
	kept := remaining[:0]
	for _, bi := range remaining {
		f := r.Body[bi]
		if e.tables[f.Table] == nil {
			p.steps = append(p.steps, joinStep{body: bi, f: f})
			bindAtomVars(bound, f)
			continue
		}
		kept = append(kept, bi)
	}
	remaining = kept
	for len(remaining) > 0 {
		bestPos, bestCols := -1, []keyCol(nil)
		for pos, bi := range remaining {
			cols := boundCols(bound, r.Body[bi])
			if bestPos == -1 || len(cols) > len(bestCols) {
				bestPos, bestCols = pos, cols
			}
		}
		bi := remaining[bestPos]
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)

		f := r.Body[bi]
		step := joinStep{body: bi, f: f, tbl: e.tables[f.Table], key: bestCols}
		if len(bestCols) > 0 {
			cols := make([]int, len(bestCols))
			for i, kc := range bestCols {
				cols[i] = kc.col
			}
			step.idx = step.tbl.ensureIndex(cols)
		}
		p.steps = append(p.steps, step)
		bindAtomVars(bound, f)
	}
	return p
}

// bindAtomVars marks every variable the atom binds on unification.
func bindAtomVars(bound map[string]bool, f *Functor) {
	for _, a := range f.Args {
		if v, ok := a.(*Var); ok && v.Name != "_" {
			bound[v.Name] = true
		}
	}
}

// boundCols returns the atom's equality-constrained columns given the
// currently bound variable set: constant arguments and already-bound
// variables. Computed expressions stay filter-only (unify evaluates them),
// matching the seed's semantics.
func boundCols(bound map[string]bool, f *Functor) []keyCol {
	var cols []keyCol
	for i, a := range f.Args {
		switch a := a.(type) {
		case *Var:
			if a.Name != "_" && bound[a.Name] {
				cols = append(cols, keyCol{col: i, varName: a.Name})
			}
		case *ConstExpr:
			// Wildcard constants match anything; they constrain nothing.
			if a.Val.Kind != KindWild {
				cols = append(cols, keyCol{col: i, constVal: a.Val})
			}
		}
	}
	return cols
}

// appendStepKey evaluates a step's index-key recipe under env, in the
// index's normalized hash encoding (appendHashKey, not the identity
// encoding: buckets must unite the int/bool values Equal unites).
func appendStepKey(dst []byte, key []keyCol, env Env) []byte {
	for _, kc := range key {
		if kc.varName != "" {
			dst = appendHashKey(dst, env[kc.varName])
		} else {
			dst = appendHashKey(dst, kc.constVal)
		}
	}
	return dst
}
