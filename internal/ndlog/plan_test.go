package ndlog

import (
	"fmt"
	"testing"
)

// threeWayProgram joins three state tables off one event trigger; every
// extension is equality-constrained, so the planner should index all three.
const threeWayProgram = `
materialize(Link, 1, 2, keys(0,1)).
materialize(Cost, 1, 2, keys(0,1)).
materialize(TwoHop, 1, 3, keys(0,1,2)).
j TwoHop(@X,Z,C) :- Probe(@X), Link(@X,Y), Link(@Y,Z), Cost(@Z,C).
`

func TestPlannerOrdersByBoundCoverage(t *testing.T) {
	e := MustNewEngine(MustParse("plan", threeWayProgram))
	plans := e.triggers["Probe"]
	if len(plans) != 1 {
		t.Fatalf("Probe plans = %d, want 1", len(plans))
	}
	p := plans[0]
	if len(p.steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(p.steps))
	}
	// With X bound by the trigger, Link(@X,Y) must join before Link(@Y,Z),
	// and Cost(@Z,C) last; each step carries exactly one indexed column.
	wantBody := []int{1, 2, 3}
	for i, st := range p.steps {
		if st.body != wantBody[i] {
			t.Fatalf("step %d joins body atom %d, want %d", i, st.body, wantBody[i])
		}
		if st.idx == nil || len(st.key) != 1 || st.key[0].col != 0 {
			t.Fatalf("step %d: index on col 0 expected, got key %+v", i, st.key)
		}
	}
}

func TestPlannerIndexesConstantColumns(t *testing.T) {
	e := MustNewEngine(MustParse("const", `
materialize(Pol, 1, 2, keys(0,1)).
materialize(Out, 1, 1, keys(0)).
c Out(@X) :- Ev(@X), Pol(@X,7).
`))
	p := e.triggers["Ev"][0]
	if len(p.steps) != 1 {
		t.Fatalf("steps = %d", len(p.steps))
	}
	st := p.steps[0]
	if st.idx == nil || len(st.key) != 2 {
		t.Fatalf("want both columns indexed (var + constant), got %+v", st.key)
	}
	if st.key[1].varName != "" || st.key[1].constVal.Int != 7 {
		t.Fatalf("constant column not planned: %+v", st.key[1])
	}
}

func TestIndexedJoinMatchesScanAndCountsStats(t *testing.T) {
	prog := MustParse("plan", threeWayProgram)
	run := func(s JoinStrategy) (*Engine, []Tuple) {
		e := MustNewEngine(prog)
		e.SetJoinStrategy(s)
		var out []Tuple
		for i := 0; i < 20; i++ {
			e.Insert(NewTuple("Link", Int(int64(i)), Int(int64(i+1))))
			e.Insert(NewTuple("Cost", Int(int64(i)), Int(int64(10*i))))
		}
		for i := 0; i < 20; i++ {
			out = append(out, e.Insert(NewTuple("Probe", Int(int64(i))))...)
		}
		return e, out
	}
	ei, indexed := run(JoinIndexed)
	es, scanned := run(JoinScan)
	if len(indexed) != len(scanned) {
		t.Fatalf("appearances: indexed %d, scan %d", len(indexed), len(scanned))
	}
	for i := range indexed {
		if !indexed[i].Equal(scanned[i]) {
			t.Fatalf("appearance %d: indexed %v, scan %v", i, indexed[i], scanned[i])
		}
	}
	if ei.Stats.IndexLookups == 0 {
		t.Fatal("indexed run answered no join from an index")
	}
	if es.Stats.IndexLookups != 0 || es.Stats.Scans == 0 {
		t.Fatalf("scan oracle used indexes: %+v", es.Stats)
	}
	if ei.Stats.IndexRows >= es.Stats.ScanRows {
		t.Fatalf("index pruned nothing: %d index rows vs %d scanned rows",
			ei.Stats.IndexRows, es.Stats.ScanRows)
	}
}

func TestIndexMatchesWildcardRows(t *testing.T) {
	// A stored wildcard in an indexed column must still join against a
	// constant body argument (constants match via the wildcard-aware
	// Matches), so wildcard rows may not hide inside a hash bucket.
	e := MustNewEngine(MustParse("wild", `
materialize(Flow, 1, 2, keys(0,1)).
materialize(Hit, 1, 1, keys(0)).
h Hit(@S) :- Pkt(@S), Flow(@S,7).
`))
	e.Insert(NewTuple("Flow", Int(5), Wild())) // matches the constant 7
	e.Insert(NewTuple("Flow", Int(5), Int(7))) // matches exactly
	e.Insert(NewTuple("Flow", Int(5), Int(8))) // must not match
	p := e.triggers["Pkt"][0]
	if p.steps[0].idx == nil || len(p.steps[0].key) != 2 {
		t.Fatalf("Flow step not indexed on both columns: %+v", p.steps[0].key)
	}
	e.Insert(NewTuple("Pkt", Int(5)))
	if e.Stats.Derivations != 2 {
		t.Fatalf("derivations = %d, want 2 (exact + wildcard row)", e.Stats.Derivations)
	}
}

func TestIndexIntBoolCrossKind(t *testing.T) {
	// Value.Equal treats Int(1) and Bool(true) as equal; the hash index
	// must not separate them into different buckets.
	e := MustNewEngine(MustParse("crosskind", `
materialize(S, 1, 2, keys(0,1)).
materialize(Out, 1, 2, keys(0,1)).
x Out(@A,B) :- Ev(@A), S(@A,B).
`))
	e.Insert(NewTuple("S", Bool(true), Int(3)))
	out := e.Insert(NewTuple("Ev", Int(1)))
	found := false
	for _, tp := range out {
		if tp.Table == "Out" {
			found = true
		}
	}
	if !found {
		t.Fatal("Int(1) trigger failed to join stored Bool(true) row")
	}
}

func TestAggregateGroupKeySeparatorCollision(t *testing.T) {
	// Seed bug: group keys were joined with "|", so groups ("a|b") and
	// ("a","b")-style value pairs could merge. With length-prefixed
	// encoding the two groups below must stay distinct.
	prog := MustParse("agg", `
materialize(PredFunc, 1, 3, keys(0,1,2)).
materialize(Cnt, 1, 3, keys(0,1)).
p Cnt(@Rul,Sub,a_count<Arg>) :- PredFunc(@Rul,Sub,Arg).
`)
	e := MustNewEngine(prog)
	// Group 1: ("x|", "y") — group 2: ("x", "|y"). Under the old "|"-joined
	// encoding both groups flatten to the same string.
	e.Insert(NewTuple("PredFunc", Str("x|"), Str("y"), Int(1)))
	e.Insert(NewTuple("PredFunc", Str("x"), Str("|y"), Int(2)))
	rows := e.Rows("Cnt")
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 distinct groups", rows)
	}
	for _, r := range rows {
		if r.Args[2].Int != 1 {
			t.Fatalf("group %v has count %d, want 1", r, r.Args[2].Int)
		}
	}
}

func TestLookupUsesIndex(t *testing.T) {
	e := MustNewEngine(MustParse("plan", threeWayProgram))
	for i := 0; i < 50; i++ {
		e.Insert(NewTuple("Link", Int(int64(i%10)), Int(int64(i))))
	}
	e.Stats = EngineStats{}
	v := Int(3)
	got := e.Lookup("Link", []*Value{&v, nil})
	if len(got) != 5 {
		t.Fatalf("Lookup returned %d rows, want 5", len(got))
	}
	if e.Stats.IndexLookups != 1 || e.Stats.Scans != 0 {
		t.Fatalf("Lookup did not use the planner's index: %+v", e.Stats)
	}
	// Insertion-order determinism: seq values ascend.
	for i := 1; i < len(got); i++ {
		if got[i-1].Args[1].Int > got[i].Args[1].Int {
			t.Fatalf("Lookup order not insertion order: %v", got)
		}
	}
	// A filter binding no indexed column falls back to a scan. (Cost is
	// only ever joined through its first column, so nothing indexes col 1.)
	e.Stats = EngineStats{}
	w := Int(7)
	e.Lookup("Cost", []*Value{nil, &w})
	if e.Stats.Scans != 1 || e.Stats.IndexLookups != 0 {
		t.Fatalf("unindexed filter should scan: %+v", e.Stats)
	}
}

func TestStorageCompaction(t *testing.T) {
	e := MustNewEngine(MustParse("kv", `
materialize(KV, 1, 2, keys(0)).
`))
	for i := 0; i < 500; i++ {
		e.Insert(NewTuple("KV", Int(int64(i)), Int(int64(i))))
	}
	for i := 0; i < 400; i++ {
		e.Delete(NewTuple("KV", Int(int64(i)), Int(int64(i))))
	}
	tbl := e.tables["KV"]
	if tbl.live != 100 {
		t.Fatalf("live = %d, want 100", tbl.live)
	}
	if len(tbl.rows) > tbl.live+tbl.dead || len(tbl.rows) >= 500 {
		t.Fatalf("rows slice not compacted: len=%d live=%d dead=%d", len(tbl.rows), tbl.live, tbl.dead)
	}
	rows := e.Rows("KV")
	if len(rows) != 100 {
		t.Fatalf("Rows = %d, want 100", len(rows))
	}
	for i, r := range rows {
		if r.Args[0].Int != int64(400+i) {
			t.Fatalf("compaction broke insertion order at %d: %v", i, r)
		}
	}
}

func TestTupleKeyInterned(t *testing.T) {
	tp := NewTuple("T", Int(1), Str("a"))
	k1 := tp.Key()
	k2 := tp.Key()
	if k1 != k2 {
		t.Fatalf("keys differ: %q vs %q", k1, k2)
	}
	c := tp.Clone()
	if c.Key() != k1 {
		t.Fatal("clone lost the interned key")
	}
	pk := tp.PrimaryKey([]int{0})
	if pk == "" || pk == k1 {
		t.Fatalf("primary key = %q", pk)
	}
	if tp.PrimaryKey([]int{0}) != pk {
		t.Fatal("primary key not interned")
	}
	if tp.PrimaryKey([]int{1}) == pk {
		t.Fatal("interned primary key ignored a changed column set")
	}
}

func TestCloneDropsInternedKeys(t *testing.T) {
	// Repair candidates clone a recorded tuple and rewrite an argument
	// (metaprov's change-base-tuple patch); the clone must not keep
	// reporting the donor's identity.
	tp := NewTuple("Cost", Int(3), Int(5))
	old := tp.Key()
	oldPK := tp.PrimaryKey([]int{0, 1})
	repl := tp.Clone()
	repl.Args[1] = Int(7)
	if repl.Key() == old {
		t.Fatalf("mutated clone kept donor key %q", old)
	}
	if repl.PrimaryKey([]int{0, 1}) == oldPK {
		t.Fatalf("mutated clone kept donor primary key %q", oldPK)
	}
	want := NewTuple("Cost", Int(3), Int(7))
	if repl.Key() != want.Key() {
		t.Fatalf("clone key %q, want %q", repl.Key(), want.Key())
	}
}

func TestStringKeyLengthPrefixCollision(t *testing.T) {
	// Tuple identity must distinguish ("a|b") from ("a","b") and similar
	// separator-bearing strings.
	a := NewTuple("T", Str("a|b"))
	b := NewTuple("T", Str("a"), Str("b"))
	if a.Key() == b.Key() {
		t.Fatalf("key collision: %q", a.Key())
	}
	c := NewTuple("T", Str("a"), Str(""))
	d := NewTuple("T", Str(""), Str("a"))
	if c.Key() == d.Key() {
		t.Fatalf("key collision: %q", c.Key())
	}
}

func BenchmarkTupleKeyInterned(b *testing.B) {
	tp := NewTuple("FlowTable", Int(3), Int(1001), Int(201), Int(4242), Int(80), Int(2))
	tp.Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tp.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

func ExampleEngine_Lookup() {
	e := MustNewEngine(MustParse("plan", threeWayProgram))
	e.Insert(NewTuple("Link", Int(1), Int(2)))
	e.Insert(NewTuple("Link", Int(1), Int(3)))
	e.Insert(NewTuple("Link", Int(2), Int(3)))
	v := Int(1)
	for _, t := range e.Lookup("Link", []*Value{&v, nil}) {
		fmt.Println(t)
	}
	// Output:
	// Link(1,2)
	// Link(1,3)
}
