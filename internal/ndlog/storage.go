package ndlog

import "strconv"

// table is the indexed store behind one materialized relation: rows in
// insertion (sequence) order for deterministic iteration, a primary-key map
// for upserts and deletes, and the secondary hash indexes the join planner
// requested at compile time.
//
// Deletion tombstones the row (gone flag) and removes it from the key map
// and index buckets; the sequence-ordered slice is compacted once tombstones
// outnumber live rows, so scans stay amortized O(live) and deletes O(1) plus
// the touched buckets.
type table struct {
	name    string
	keyCols []int // primary-key columns (nil = all columns)
	byKey   map[string]*Row
	rows    []*Row // insertion order; may contain tombstoned rows
	live    int
	dead    int
	indexes []*index
	nextSeq int64
}

// index is a secondary hash index over a fixed column set. Buckets hold
// rows in insertion order; rows carrying a * wildcard in an indexed column
// match every lookup key, so they live in a seq-ordered overflow list that
// lookups merge back in. An index lookup therefore enumerates exactly the
// rows a sequential scan would have offered to unification on those
// columns, in the same order — the property the differential oracle relies
// on. Unification remains the final arbiter; the index only prunes rows
// that provably cannot match.
type index struct {
	cols    []int
	buckets map[string][]*Row
	wild    []*Row
}

func newTable(name string, keyCols []int) *table {
	return &table{name: name, keyCols: keyCols, byKey: make(map[string]*Row)}
}

// ensureIndex returns the table's index over cols, creating it if needed.
// Indexes created at plan time precede any row; AssertRule compiles plans
// against a populated store, so a new index backfills from the live rows
// (t.rows is already in sequence order, which is the order buckets keep).
func (t *table) ensureIndex(cols []int) *index {
	for _, x := range t.indexes {
		if sameCols(x.cols, cols) {
			return x
		}
	}
	x := &index{cols: cols, buckets: make(map[string][]*Row)}
	var buf []byte
	for _, r := range t.rows {
		if !r.gone {
			buf = x.add(buf, r)
		}
	}
	t.indexes = append(t.indexes, x)
	return x
}

// appendHashKey appends v's index-key encoding to dst. Unlike Value.Key,
// booleans normalize to their integer encoding, because Value.Equal treats
// int and bool numerically equal and hash buckets must not separate values
// that unification would join. Wildcards are handled out of band (see
// index.wild); callers detect them before encoding.
func appendHashKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindInt, KindBool:
		return strconv.AppendInt(append(dst, 'i'), v.Int, 10)
	case KindString:
		dst = strconv.AppendInt(append(dst, 's'), int64(len(v.Str)), 10)
		return append(append(dst, ':'), v.Str...)
	}
	return append(dst, '*')
}

// keyOf appends the index key for the given argument values to dst; ok is
// false when an indexed column holds a wildcard (no single bucket applies).
func (x *index) keyOf(dst []byte, args []Value) (_ []byte, ok bool) {
	for _, c := range x.cols {
		if c >= len(args) || args[c].Kind == KindWild {
			return dst, false
		}
		dst = appendHashKey(dst, args[c])
	}
	return dst, true
}

// add stores a row in its bucket, or in the wildcard overflow when one of
// the indexed columns is a *.
func (x *index) add(buf []byte, row *Row) []byte {
	buf, ok := x.keyOf(buf[:0], row.Tuple.Args)
	if !ok {
		x.wild = append(x.wild, row)
		return buf
	}
	k := string(buf)
	x.buckets[k] = append(x.buckets[k], row)
	return buf
}

func (x *index) remove(buf []byte, row *Row) []byte {
	buf, ok := x.keyOf(buf[:0], row.Tuple.Args)
	if !ok {
		x.wild = removeRow(x.wild, row)
		return buf
	}
	k := string(buf)
	if bucket := removeRow(x.buckets[k], row); len(bucket) > 0 {
		x.buckets[k] = bucket
	} else {
		delete(x.buckets, k)
	}
	return buf
}

func removeRow(rows []*Row, row *Row) []*Row {
	for i, r := range rows {
		if r == row {
			return append(rows[:i:i], rows[i+1:]...)
		}
	}
	return rows
}

// rowsFor returns the candidate rows for a lookup key in insertion order:
// the key's bucket merged with the wildcard overflow. The common case (no
// wildcard rows) returns the bucket slice without copying.
func (x *index) rowsFor(key string) []*Row {
	bucket := x.buckets[key]
	if len(x.wild) == 0 {
		return bucket
	}
	if len(bucket) == 0 {
		return x.wild
	}
	out := make([]*Row, 0, len(bucket)+len(x.wild))
	i, j := 0, 0
	for i < len(bucket) && j < len(x.wild) {
		if bucket[i].seq < x.wild[j].seq {
			out = append(out, bucket[i])
			i++
		} else {
			out = append(out, x.wild[j])
			j++
		}
	}
	out = append(out, bucket[i:]...)
	return append(out, x.wild[j:]...)
}

// insert stores a row under its primary key and in every index. The caller
// has already ensured no live row shares the primary key.
func (t *table) insert(row *Row) {
	row.seq = t.nextSeq
	t.nextSeq++
	row.key = row.Tuple.PrimaryKey(t.keyCols)
	t.rows = append(t.rows, row)
	t.live++
	t.byKey[row.key] = row
	var buf []byte
	for _, x := range t.indexes {
		buf = x.add(buf, row)
	}
}

// lookup returns the live row stored under the given primary key, if any.
func (t *table) lookup(pk string) (*Row, bool) {
	row, ok := t.byKey[pk]
	return row, ok
}

// remove tombstones a row: it leaves the sequence-ordered slice (compacted
// lazily) and is deleted from the key map and every index.
func (t *table) remove(row *Row) {
	if row.gone {
		return
	}
	row.gone = true
	t.live--
	t.dead++
	if cur, ok := t.byKey[row.key]; ok && cur == row {
		delete(t.byKey, row.key)
	}
	var buf []byte
	for _, x := range t.indexes {
		buf = x.remove(buf, row)
	}
	if t.dead > t.live && t.dead > 32 {
		t.compact()
	}
}

// compact drops tombstoned rows from the sequence-ordered slice. Relative
// order (and therefore iteration determinism) is preserved; index buckets
// never hold tombstones, so only the scan slice needs sweeping.
func (t *table) compact() {
	kept := t.rows[:0]
	for _, r := range t.rows {
		if !r.gone {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
	t.dead = 0
}

// snapshot returns the live rows in insertion order.
func (t *table) snapshot() []*Row {
	out := make([]*Row, 0, t.live)
	for _, r := range t.rows {
		if !r.gone {
			out = append(out, r)
		}
	}
	return out
}
