package ndlog

import (
	"fmt"
	"strings"
)

// Tuple is a concrete fact: a table name plus argument values. The location
// of the tuple (the node it resides on) is one of its arguments; which one
// is determined by the table's location index (see Engine.LocIndex).
//
// Tags is the backtesting tag set of §4.4: a bitmask naming the repair
// candidates whose variant of the program this tuple exists under. Outside
// of backtesting, Tags is AllTags.
//
// A tuple's Args must not be mutated once Key or PrimaryKey has been called:
// both cache their interned string on first use (the engine computes them
// once per insertion, so listeners and stores never rebuild them). The
// caches travel with value copies, which keeps concurrent use safe: tuples
// shared across goroutines are passed and ranged by value, so a lazy fill
// only ever writes to a goroutine-local copy.
type Tuple struct {
	Table string
	Args  []Value
	Tags  uint64

	key      string // cached Key(); "" = not yet computed
	pkey     string // cached PrimaryKey(pkeyCols)
	pkeyCols []int
}

// NewTuple builds a tuple with all tags set.
func NewTuple(table string, args ...Value) Tuple {
	return Tuple{Table: table, Args: args, Tags: AllTags}
}

// String renders the tuple as Table(v1,v2,...).
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", t.Table, strings.Join(parts, ","))
}

// Key returns a canonical identity string over all arguments (ignoring
// tags); two tuples with equal Key are the same fact. The string is interned
// on the receiver, so repeated calls (and calls on copies of the receiver)
// return the cached value without rebuilding it.
func (t *Tuple) Key() string {
	if t.key == "" {
		b := make([]byte, 0, len(t.Table)+8*len(t.Args)+1)
		b = append(b, t.Table...)
		for i := range t.Args {
			b = append(b, '|')
			b = t.Args[i].AppendKey(b)
		}
		t.key = string(b)
	}
	return t.key
}

// PrimaryKey returns the identity string over the given key columns; an
// empty keys slice means all columns form the key. Like Key, the result is
// interned on the receiver (per column set).
func (t *Tuple) PrimaryKey(keys []int) string {
	if len(keys) == 0 {
		return t.Key()
	}
	if t.pkey != "" && sameCols(t.pkeyCols, keys) {
		return t.pkey
	}
	b := make([]byte, 0, len(t.Table)+8*len(keys)+1)
	b = append(b, t.Table...)
	for _, k := range keys {
		b = append(b, '|')
		if k < len(t.Args) {
			b = t.Args[k].AppendKey(b)
		}
	}
	t.pkey, t.pkeyCols = string(b), keys
	return t.pkey
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two tuples denote the same fact (tags ignored).
func (t Tuple) Equal(o Tuple) bool {
	if t.Table != o.Table || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the tuple. The interned key caches are deliberately
// dropped: a clone is the one tuple callers are allowed to mutate (repair
// candidates rewrite cloned base-tuple arguments), and a carried cache
// would keep reporting the pre-mutation identity.
func (t Tuple) Clone() Tuple {
	args := make([]Value, len(t.Args))
	copy(args, t.Args)
	c := t
	c.Args = args
	c.key, c.pkey, c.pkeyCols = "", "", nil
	return c
}

// Row is a stored tuple plus bookkeeping: its insertion sequence number
// (iteration over a table is deterministic in seq order), the interned
// primary key it is stored under, how many derivations currently support
// it, whether one of those supports is a base insertion, and the derivation
// records linking it into the dependency graph (for recursive underivation
// on delete).
type Row struct {
	Tuple   Tuple
	Support int
	Base    bool
	seq     int64
	key     string        // primary key within its table
	gone    bool          // removed from its table (tombstoned)
	derivs  []*derivation // derivations producing this row
	usedBy  []*derivation // derivations consuming this row
}

// Seq returns the row's insertion sequence number within its table.
func (r *Row) Seq() int64 { return r.seq }

// derivation records one rule firing: the rule, the body rows consumed, and
// the head row produced. It is the unit of support counting.
type derivation struct {
	rule *Rule
	head *Row
	body []*Row
	dead bool
}
