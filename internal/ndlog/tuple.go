package ndlog

import (
	"fmt"
	"strings"
)

// Tuple is a concrete fact: a table name plus argument values. The location
// of the tuple (the node it resides on) is one of its arguments; which one
// is determined by the table's location index (see Engine.LocIndex).
//
// Tags is the backtesting tag set of §4.4: a bitmask naming the repair
// candidates whose variant of the program this tuple exists under. Outside
// of backtesting, Tags is AllTags.
type Tuple struct {
	Table string
	Args  []Value
	Tags  uint64
}

// NewTuple builds a tuple with all tags set.
func NewTuple(table string, args ...Value) Tuple {
	return Tuple{Table: table, Args: args, Tags: AllTags}
}

// String renders the tuple as Table(v1,v2,...).
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", t.Table, strings.Join(parts, ","))
}

// Key returns a canonical identity string over all arguments (ignoring
// tags); two tuples with equal Key are the same fact.
func (t Tuple) Key() string {
	var b strings.Builder
	b.WriteString(t.Table)
	for _, a := range t.Args {
		b.WriteByte('|')
		b.WriteString(a.Key())
	}
	return b.String()
}

// PrimaryKey returns the identity string over the given key columns; an
// empty keys slice means all columns form the key.
func (t Tuple) PrimaryKey(keys []int) string {
	if len(keys) == 0 {
		return t.Key()
	}
	var b strings.Builder
	b.WriteString(t.Table)
	for _, k := range keys {
		b.WriteByte('|')
		if k < len(t.Args) {
			b.WriteString(t.Args[k].Key())
		}
	}
	return b.String()
}

// Equal reports whether two tuples denote the same fact (tags ignored).
func (t Tuple) Equal(o Tuple) bool {
	if t.Table != o.Table || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	args := make([]Value, len(t.Args))
	copy(args, t.Args)
	return Tuple{Table: t.Table, Args: args, Tags: t.Tags}
}

// Row is a stored tuple plus bookkeeping: how many derivations currently
// support it, whether one of those supports is a base insertion, and the
// derivation records linking it into the dependency graph (for recursive
// underivation on delete).
type Row struct {
	Tuple   Tuple
	Support int
	Base    bool
	derivs  []*derivation // derivations producing this row
	usedBy  []*derivation // derivations consuming this row
}

// derivation records one rule firing: the rule, the body rows consumed, and
// the head row produced. It is the unit of support counting.
type derivation struct {
	rule *Rule
	head *Row
	body []*Row
	dead bool
}
