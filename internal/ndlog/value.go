// Package ndlog implements a Network Datalog (NDlog) dialect: a typed value
// model, a lexer and parser, an AST, and a semi-naive bottom-up evaluation
// engine with multi-node location specifiers.
//
// The dialect follows the language used in "Automated Bug Removal for
// Software-Defined Networks" (NSDI'17): rules of the form
//
//	r1 Head(@Loc,A,B) :- Body(@Loc,A,C), Other(@Loc,C,B), A == 1, B := C*2.
//
// where @ marks the location attribute, == (and <, >, !=, <=, >=) appear in
// selection predicates, and := introduces assignments. Tables are declared
// with materialize directives; undeclared tables default to transient event
// tables (timeout 0).
package ndlog

import (
	"fmt"
	"strconv"
)

// Kind enumerates the runtime value kinds. The paper's µDlog subset uses
// integers only; the full dialect adds strings (for node and table names in
// meta tuples), booleans (selection results), and the JID wildcard used by
// the meta model.
type Kind uint8

const (
	KindInt Kind = iota
	KindString
	KindBool
	KindWild // the meta model's "*" join-ID wildcard
)

// Value is an immutable NDlog runtime value. The zero Value is the integer 0.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindBool, Int: 1}
	}
	return Value{Kind: KindBool, Int: 0}
}

// Wild returns the join-ID wildcard value "*".
func Wild() Value { return Value{Kind: KindWild} }

// IsTrue reports whether v is a true boolean or a non-zero integer.
func (v Value) IsTrue() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.Int != 0
	default:
		return false
	}
}

// Equal reports deep equality. The wildcard equals only itself here; use
// Matches for wildcard-aware comparison.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Allow int/bool cross-comparison by numeric value: selection
		// predicates such as Val == True rely on it.
		if (v.Kind == KindInt && o.Kind == KindBool) || (v.Kind == KindBool && o.Kind == KindInt) {
			return v.Int == o.Int
		}
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindWild:
		return true
	default:
		return v.Int == o.Int
	}
}

// Matches is wildcard-aware equality: a KindWild value matches anything.
// This implements the paper's f_match(JID1, JID2).
func (v Value) Matches(o Value) bool {
	if v.Kind == KindWild || o.Kind == KindWild {
		return true
	}
	return v.Equal(o)
}

// Compare returns -1, 0, or +1. Values of different kinds order by kind.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		vk, ok := normNum(v)
		ok2 := false
		var okv Value
		okv, ok2 = normNum(o)
		if ok && ok2 {
			switch {
			case vk.Int < okv.Int:
				return -1
			case vk.Int > okv.Int:
				return 1
			default:
				return 0
			}
		}
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	case KindWild:
		return 0
	default:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	}
}

func normNum(v Value) (Value, bool) {
	switch v.Kind {
	case KindInt, KindBool:
		return Value{Kind: KindInt, Int: v.Int}, true
	}
	return Value{}, false
}

// String renders the value in NDlog source syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindWild:
		return "*"
	}
	return "?"
}

// Key renders a canonical, collision-free encoding used for map keys.
// The encoding is uniquely decodable even under plain concatenation (see
// AppendKey), so composite keys — tuple identities, index keys, aggregate
// group keys — never collide.
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the value's canonical key encoding to dst and returns
// the extended buffer. Every encoding starts with a kind marker that is not
// a digit or ':', making concatenated encodings uniquely decodable:
//
//	ints    i<decimal>        (digits end at the next kind marker)
//	strings s<len>:<bytes>    (length prefix: "a|b" encodes as s3:a|b)
//	bools   b0 / b1
//	wild    *
//
// The length prefix on strings is what makes composite keys collision-free
// — the seed's "s"+raw encoding let a string containing the tuple-key
// separator merge distinct aggregate groups.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.Kind {
	case KindInt:
		return strconv.AppendInt(append(dst, 'i'), v.Int, 10)
	case KindString:
		dst = strconv.AppendInt(append(dst, 's'), int64(len(v.Str)), 10)
		return append(append(dst, ':'), v.Str...)
	case KindBool:
		return strconv.AppendInt(append(dst, 'b'), v.Int, 10)
	case KindWild:
		return append(dst, '*')
	}
	return append(dst, '?')
}
