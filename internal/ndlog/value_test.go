package ndlog

import (
	"testing"
	"testing/quick"
)

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("x"), Str("x"), true},
		{Str("x"), Str("y"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), true},  // numeric cross-comparison
		{Bool(false), Int(0), true}, // numeric cross-comparison
		{Bool(true), Int(0), false},
		{Int(1), Str("1"), false},
		{Wild(), Wild(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("%v == %v: got %v want %v", c.a, c.b, got, c.eq)
		}
	}
}

func TestWildcardMatches(t *testing.T) {
	if !Wild().Matches(Int(42)) || !Int(42).Matches(Wild()) {
		t.Fatal("wildcard must match anything")
	}
	if Int(1).Matches(Int(2)) {
		t.Fatal("distinct ints must not match")
	}
	// Equal is strict: a wildcard does not Equal a concrete value.
	if Wild().Equal(Int(42)) {
		t.Fatal("Equal must be strict about wildcards")
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) >= 0 || Int(2).Compare(Int(1)) <= 0 || Int(3).Compare(Int(3)) != 0 {
		t.Fatal("integer comparison broken")
	}
	if Str("a").Compare(Str("b")) >= 0 {
		t.Fatal("string comparison broken")
	}
	if Bool(true).Compare(Int(1)) != 0 {
		t.Fatal("bool/int numeric comparison broken")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"5":     Int(5),
		"-3":    Int(-3),
		`"ab"`:  Str("ab"),
		"true":  Bool(true),
		"false": Bool(false),
		"*":     Wild(),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Keys must distinguish values that differ in kind, even when their
	// renderings could collide.
	vals := []Value{Int(1), Str("1"), Bool(true), Wild(), Int(0), Str(""), Bool(false)}
	seen := map[string]Value{}
	for _, v := range vals {
		if prev, dup := seen[v.Key()]; dup && !prev.Equal(v) {
			t.Fatalf("key collision: %v vs %v -> %q", prev, v, v.Key())
		}
		seen[v.Key()] = v
	}
}

// Properties over the value algebra.
func TestValueProperties(t *testing.T) {
	// Compare is antisymmetric and Equal-consistent over ints.
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Key equality coincides with Equal for same-kind values.
	g := func(a, b int64) bool {
		return (Int(a).Key() == Int(b).Key()) == Int(a).Equal(Int(b))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalOpArithmetic(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r Value
		want Value
		err  bool
	}{
		{OpAdd, Int(2), Int(3), Int(5), false},
		{OpSub, Int(2), Int(3), Int(-1), false},
		{OpMul, Int(4), Int(3), Int(12), false},
		{OpDiv, Int(9), Int(3), Int(3), false},
		{OpDiv, Int(9), Int(0), Value{}, true},
		{OpAdd, Str("a"), Str("b"), Str("ab"), false},
		{OpAdd, Str("a"), Int(1), Value{}, true},
		{OpMul, Str("a"), Int(2), Value{}, true},
		{OpAnd, Bool(true), Bool(false), Bool(false), false},
		{OpOr, Bool(true), Bool(false), Bool(true), false},
		{OpLe, Int(3), Int(3), Bool(true), false},
		{OpGe, Int(2), Int(3), Bool(false), false},
	}
	for _, c := range cases {
		got, err := EvalOp(c.op, c.l, c.r)
		if c.err {
			if err == nil {
				t.Errorf("%v %v %v: expected error", c.l, c.op, c.r)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v %v %v: %v", c.l, c.op, c.r, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestTuplePrimaryKey(t *testing.T) {
	tp := NewTuple("T", Int(1), Int(2), Int(3))
	if tp.PrimaryKey(nil) != tp.Key() {
		t.Fatal("empty key columns must use all columns")
	}
	a := NewTuple("T", Int(1), Int(2), Int(3))
	b := NewTuple("T", Int(1), Int(9), Int(3))
	if a.PrimaryKey([]int{0, 2}) != b.PrimaryKey([]int{0, 2}) {
		t.Fatal("tuples agreeing on key columns must share a primary key")
	}
	if a.PrimaryKey([]int{1}) == b.PrimaryKey([]int{1}) {
		t.Fatal("tuples differing on the key column must differ")
	}
}

// Tuple keys are injective up to Equal.
func TestTupleKeyProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		ta := Tuple{Table: "T"}
		for _, v := range a {
			ta.Args = append(ta.Args, Int(int64(v)))
		}
		tb := Tuple{Table: "T"}
		for _, v := range b {
			tb.Args = append(tb.Args, Int(int64(v)))
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEngineEmptyProgram(t *testing.T) {
	e := MustNewEngine(&Program{Name: "empty"})
	out := e.Insert(NewTuple("Anything", Int(1)))
	if len(out) != 1 { // the event itself appears, derives nothing
		t.Fatalf("out = %v", out)
	}
}

func TestEngineDeleteAbsentTuple(t *testing.T) {
	e := MustNewEngine(MustParse("d", `
materialize(A, 1, 1, keys(0)).
x B(@X) :- A(@X).
`))
	e.Delete(NewTuple("A", Int(1))) // no-op, must not panic
	if e.Count("A") != 0 {
		t.Fatal("phantom tuple")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Tuple {
		e := MustNewEngine(MustParse("det", `
materialize(L, 1, 2, keys(0,1)).
materialize(R, 1, 2, keys(0,1)).
j Out(@X,Z) :- L(@X,Y), R(@Y,Z).
`))
		e.Insert(NewTuple("R", Int(1), Int(10)))
		e.Insert(NewTuple("R", Int(2), Int(20)))
		e.Insert(NewTuple("R", Int(1), Int(30)))
		var out []Tuple
		out = append(out, e.Insert(NewTuple("L", Int(0), Int(1)))...)
		out = append(out, e.Insert(NewTuple("L", Int(0), Int(2)))...)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
