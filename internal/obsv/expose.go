package obsv

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText writes the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with its HELP/TYPE
// header, children sorted by label values. Histograms expose cumulative
// _bucket series (le-labeled, ending at +Inf) plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, m := range f.sortedChildren() {
			switch v := m.(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, v.labelValues(), "", "", float64(v.Value()))
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, v.labelValues(), "", "", v.Value())
			case *Histogram:
				var cum int64
				for i, ub := range v.buckets {
					cum += v.counts[i].Load()
					writeSample(bw, f.name, "_bucket", f.labels, v.labelValues(),
						"le", formatFloat(ub), float64(cum))
				}
				writeSample(bw, f.name, "_bucket", f.labels, v.labelValues(),
					"le", "+Inf", float64(v.Count()))
				writeSample(bw, f.name, "_sum", f.labels, v.labelValues(), "", "", v.Sum())
				writeSample(bw, f.name, "_count", f.labels, v.labelValues(), "", "", float64(v.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample writes one exposition line: name+suffix, the label pairs
// (plus the optional extra pair, e.g. le), and the value.
func writeSample(w *bufio.Writer, name, suffix string, keys, vals []string, extraKey, extraVal string, value float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(keys) > 0 || extraKey != "" {
		w.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(k)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(vals[i]))
			w.WriteByte('"')
		}
		if extraKey != "" {
			if len(keys) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraKey)
			w.WriteString(`="`)
			w.WriteString(extraVal)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(value))
	w.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without a decimal
// point, +Inf as the format spells it.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the format: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
