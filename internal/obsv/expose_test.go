package obsv

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildRegistry assembles one of each family shape for the round-trip
// tests.
func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_events_total", "total events").Add(7)
	r.Gauge("app_depth", "queue depth").Set(3.5)
	h := r.Histogram("app_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("app_requests_total", "by route", "route", "code")
	v.With("/jobs", "200").Add(2)
	v.With("/jobs", "429").Inc()
	r.GaugeVec("app_idle", "registered but empty", "tenant") // family with no children
	return r
}

func TestWriteTextFormat(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE app_events_total counter",
		"app_events_total 7",
		"# TYPE app_depth gauge",
		"app_depth 3.5",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.55",
		"app_latency_seconds_count 3",
		`app_requests_total{route="/jobs",code="200"} 2`,
		`app_requests_total{route="/jobs",code="429"} 1`,
		// A childless family still exposes its header lines.
		"# TYPE app_idle gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionRoundTrip parses WriteText's own output — the format
// validity gate the acceptance criteria ask for.
func TestExpositionRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing own exposition: %v", err)
	}
	if sc.Types["app_events_total"] != "counter" ||
		sc.Types["app_latency_seconds"] != "histogram" ||
		sc.Types["app_idle"] != "gauge" {
		t.Fatalf("TYPE lines missing or wrong: %v", sc.Types)
	}
	if v, ok := sc.Value("app_events_total", nil); !ok || v != 7 {
		t.Fatalf("app_events_total = %v (%v), want 7", v, ok)
	}
	if v, ok := sc.Value("app_requests_total", map[string]string{"route": "/jobs", "code": "429"}); !ok || v != 1 {
		t.Fatalf("labeled counter = %v (%v), want 1", v, ok)
	}
	if got := sc.Sum("app_requests_total", map[string]string{"route": "/jobs"}); got != 3 {
		t.Fatalf("Sum over codes = %v, want 3", got)
	}
	if v, ok := sc.Value("app_latency_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("histogram count = %v (%v), want 3", v, ok)
	}
	if v, ok := sc.Value("app_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v (%v), want 3", v, ok)
	}
	if q, ok := sc.HistogramQuantile("app_latency_seconds", nil, 0.5); !ok || q <= 0 || q > 1 {
		t.Fatalf("scraped p50 = %v (%v), want within (0, 1]", q, ok)
	}
}

func TestParseEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "escapes", "path").With(`a"b\c`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("esc_total", map[string]string{"path": `a"b\c`}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %v %v\n%s", v, ok, sb.String())
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(buildRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	sc, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("app_depth", nil); !ok || v != 3.5 {
		t.Fatalf("served gauge = %v (%v), want 3.5", v, ok)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		5:           "5",
		3.5:         "3.5",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
