// Package obsv is the repo's dependency-free observability substrate:
// counters, gauges, and fixed-bucket latency histograms with atomic hot
// paths, grouped into labeled families on a Registry and exposed in the
// Prometheus text format (see expose.go). Every long-running component —
// the metarepaird daemon, the job engine, the repair session — records
// into a Registry; scrapers read /metrics, one-shot runs dump the same
// text with the CLI's -metrics flag.
//
// # Metric naming conventions
//
// New metrics MUST follow these rules (they are what makes the catalogue
// scrapeable and joinable across subsystems):
//
//   - snake_case, prefixed by the owning subsystem: jobs_*, http_*,
//     session_*, ndlog_*, tracestore_*. A metric name states what is
//     measured, not where it is printed.
//   - unit suffixes: durations are _seconds, sizes are _bytes. Raw
//     monotone event counts end in _total and are counters; everything
//     that can go down is a gauge with no _total suffix.
//   - labels are for bounded dimensions only (route, state, span name,
//     tenant). Never label by job ID, candidate description, or anything
//     else that grows with traffic — each label combination is a live
//     child series for the life of the process.
//   - histograms use BucketsLatency unless the measured range genuinely
//     differs; consistent buckets keep p99s comparable across families.
//
// The ndlog_* layer has two shapes: ndlog_engine_ops_total{op=...} for
// the labeled bulk counters, and the plain ndlog_delta_* families
// (inserts, retractions, recounted tuples, group joins) that account
// for incremental backtest evaluation — they are recorded from
// Report.Engine when a job or one-shot run finishes, so a zero there
// under delta mode means the incremental path did not run.
//
// Hot-path cost: Counter.Add and Gauge.Set are one atomic op;
// Histogram.Observe is two atomic adds plus a branchless-ish bucket walk
// over a small fixed array. Vec lookups take an RLock plus a map probe;
// callers on tight loops should hoist With() out of the loop.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, matching the Prometheus TYPE line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as the exposition format spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// BucketsLatency is the default duration histogram layout (seconds):
// 1ms to 60s in roughly 2.5× steps, wide enough for both a sub-second
// HTTP route and a multi-second repair job.
var BucketsLatency = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry is a set of metric families. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// family is one named metric family: a fixed label-key schema and the
// child series instantiated under it.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]metric
	order    []string // child keys, first-seen order (sorted at exposition)
}

// metric is the per-series interface the exposition walks.
type metric interface {
	labelValues() []string
}

// register creates (or returns) the named family, panicking on a
// name/kind/label-schema collision — metric registration is programmer
// intent, and a collision is a bug worth failing loudly on.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different kind or label schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]metric),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the series for the label values, creating it on first
// use. make builds the series when absent.
func (f *family) child(values []string, make func([]string) metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obsv: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.children[key]; ok {
		return m
	}
	m = make(append([]string(nil), values...))
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// sortedChildren snapshots the family's series sorted by label values,
// so exposition output is deterministic.
func (f *family) sortedChildren() []metric {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]metric, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	return out
}

// Counter is a monotonically increasing count. The zero of the series is
// its registration; counters never go down.
type Counter struct {
	vals []string
	n    atomic.Int64
}

func (c *Counter) labelValues() []string { return c.vals }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta; negative deltas panic (a counter is monotone — use a
// Gauge for anything that can shrink).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obsv: counter Add with negative delta")
	}
	c.n.Add(delta)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	vals []string
	bits atomic.Uint64 // math.Float64bits
}

func (g *Gauge) labelValues() []string { return g.vals }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (CAS loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds (the +Inf bucket is implicit); Observe is lock-free.
type Histogram struct {
	vals    []string
	buckets []float64      // upper bounds, ascending
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func (h *Histogram) labelValues() []string { return h.vals }

func newHistogram(vals []string, buckets []float64) *Histogram {
	return &Histogram{
		vals: vals, buckets: buckets,
		counts: make([]atomic.Int64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly inside the landing bucket — the same
// estimate a PromQL histogram_quantile gives. With no observations it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.buckets) {
				lower = h.buckets[i]
			}
			continue
		}
		if float64(seen+n) >= rank {
			if i >= len(h.buckets) { // +Inf bucket: no upper bound to interpolate to
				return lower
			}
			upper := h.buckets[i]
			frac := (rank - float64(seen)) / float64(n)
			return lower + (upper-lower)*frac
		}
		seen += n
		if i < len(h.buckets) {
			lower = h.buckets[i]
		}
	}
	return lower
}

// Counter registers (or fetches) an unlabeled counter family and returns
// its single series.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func(vals []string) metric { return &Counter{vals: vals} }).(*Counter)
}

// Gauge registers an unlabeled gauge family and returns its series.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func(vals []string) metric { return &Gauge{vals: vals} }).(*Gauge)
}

// Histogram registers an unlabeled histogram family and returns its
// series. buckets nil means BucketsLatency.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = BucketsLatency
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child(nil, func(vals []string) metric { return newHistogram(vals, f.buckets) }).(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family. The family appears in
// the exposition (HELP/TYPE) even before any child series exists, so
// scrapers can rely on the catalogue being complete.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the series for the label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func(vals []string) metric { return &Counter{vals: vals} }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the series for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func(vals []string) metric { return &Gauge{vals: vals} }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; buckets nil means
// BucketsLatency.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = BucketsLatency
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the series for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func(vals []string) metric { return newHistogram(vals, v.f.buckets) }).(*Histogram)
}

// families snapshots the registry's families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
