package obsv

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("negative counter Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestVecChildrenAreDistinctAndCached(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_labeled_total", "labeled", "tenant")
	v.With("a").Add(2)
	v.With("b").Inc()
	if v.With("a") != v.With("a") {
		t.Fatalf("With is not cached")
	}
	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("child a = %d, want 2", got)
	}
	if got := v.With("b").Value(); got != 1 {
		t.Fatalf("child b = %d, want 1", got)
	}
}

func TestVecArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_g", "g", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestReRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind collision did not panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestHistogramBucketsSumCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	want := []int64{1, 2, 1, 1} // per-bucket (non-cumulative), last is +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", []float64{1, 2, 4})
	// 100 samples uniformly inside (1, 2]: p50 should interpolate to ~1.5.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p100 = %v, want 2 (bucket upper bound)", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

// TestConcurrentHotPaths hammers every series type from many goroutines;
// run under -race this is the atomic-hot-path regression test, and the
// final values prove no update was lost.
func TestConcurrentHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "hot")
	g := r.Gauge("test_hot_gauge", "hot")
	h := r.Histogram("test_hot_seconds", "hot", []float64{0.5})
	v := r.CounterVec("test_hot_labeled_total", "hot", "w")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				v.With(lbl).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += v.With(lbl).Value()
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}
