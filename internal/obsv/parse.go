package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full series name as exposed (histogram children keep
	// their _bucket/_sum/_count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed text-format exposition — what a test or the load
// driver reads back from /metrics to reconcile server-side telemetry
// with client-side observations.
type Scrape struct {
	// Types maps family name to its TYPE line (counter, gauge, histogram).
	Types   map[string]string
	Samples []Sample
}

// ParseText parses the Prometheus text exposition format. It accepts the
// subset WriteText produces (plus arbitrary whitespace and comments),
// which is also the subset any standard exporter emits for counters,
// gauges, and histograms.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				sc.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obsv: line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	val := strings.Fields(rest)
	if len(val) == 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	switch val[0] {
	case "+Inf":
		s.Value = math.Inf(1)
	case "-Inf":
		s.Value = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(val[0], 64)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Value = v
	}
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		body = body[1:]
		var val strings.Builder
		i := 0
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated value for label %q", key)
		}
		out[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(body[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// Value returns the single sample matching name and the given label
// constraints (every listed label must match; extra labels on the sample
// are ignored). ok is false when no sample matches.
func (sc *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name != name || !labelsMatch(s.Labels, labels) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

// Sum adds every sample of the series matching the label constraints —
// e.g. summing jobs_total over its state label.
func (sc *Scrape) Sum(name string, labels map[string]string) float64 {
	var sum float64
	for _, s := range sc.Samples {
		if s.Name == name && labelsMatch(s.Labels, labels) {
			sum += s.Value
		}
	}
	return sum
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// HistogramQuantile estimates the q-th quantile of the named histogram
// (optionally constrained by labels) from its cumulative _bucket
// samples, interpolating like PromQL's histogram_quantile. ok is false
// when the histogram is absent or empty.
func (sc *Scrape) HistogramQuantile(name string, labels map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range sc.Samples {
		if s.Name != name+"_bucket" || !labelsMatch(s.Labels, labels) {
			continue
		}
		le := s.Labels["le"]
		var ub float64
		if le == "+Inf" {
			ub = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			ub = v
		}
		buckets = append(buckets, bucket{le: ub, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	lower, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank && b.cum > prevCum {
			if math.IsInf(b.le, 1) {
				return lower, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			return lower + (b.le-lower)*frac, true
		}
		prevCum = b.cum
		if !math.IsInf(b.le, 1) {
			lower = b.le
		}
	}
	return lower, true
}
