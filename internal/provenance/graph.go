// Package provenance implements the classic network-provenance graph of
// §3.1 of the paper: a DAG whose vertices are events (tuple existence,
// insertion, derivation, appearance, message transmission) and whose edges
// denote direct causality, plus the negative twins used by negative
// provenance. A Recorder captures the graph incrementally from an NDlog
// engine at runtime; Explain and ExplainMissing answer diagnostic queries.
package provenance

import (
	"fmt"
	"strings"

	"repro/internal/ndlog"
)

// Kind enumerates provenance vertex kinds (§3.1), including the negative
// twins introduced for negative provenance.
type Kind uint8

const (
	KindExist Kind = iota
	KindInsert
	KindDelete
	KindDerive
	KindUnderive
	KindAppear
	KindDisappear
	KindSend
	KindReceive
	// Negative twins.
	KindNExist
	KindNInsert
	KindNDerive
	KindNAppear
	KindNSend
	KindNReceive
)

var kindNames = [...]string{
	"EXIST", "INSERT", "DELETE", "DERIVE", "UNDERIVE", "APPEAR", "DISAPPEAR",
	"SEND", "RECEIVE",
	"NEXIST", "NINSERT", "NDERIVE", "NAPPEAR", "NSEND", "NRECEIVE",
}

// String returns the paper's name for the vertex kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Negative reports whether the kind is a negative twin.
func (k Kind) Negative() bool { return k >= KindNExist }

// Vertex is one provenance-graph vertex. T1/T2 give the validity interval
// for EXIST vertices and the event time otherwise. Rule is set on DERIVE,
// UNDERIVE and NDERIVE vertices. Children are the direct causes.
type Vertex struct {
	Kind     Kind
	T1, T2   int64
	Tuple    ndlog.Tuple
	Rule     string
	Children []*Vertex
}

// String renders the vertex in the paper's notation, e.g.
// EXIST([3,5], FlowTable(2,80,1)).
func (v *Vertex) String() string {
	switch v.Kind {
	case KindExist:
		return fmt.Sprintf("EXIST([%d,%d], %s)", v.T1, v.T2, v.Tuple)
	case KindDerive, KindUnderive, KindNDerive:
		return fmt.Sprintf("%s(%d, %s, via %s)", v.Kind, v.T1, v.Tuple, v.Rule)
	case KindNExist:
		return fmt.Sprintf("NEXIST([%d,%d], %s)", v.T1, v.T2, v.Tuple)
	default:
		return fmt.Sprintf("%s(%d, %s)", v.Kind, v.T1, v.Tuple)
	}
}

// Render pretty-prints the tree rooted at v with indentation.
func (v *Vertex) Render() string {
	var b strings.Builder
	v.render(&b, 0)
	return b.String()
}

func (v *Vertex) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(v.String())
	b.WriteByte('\n')
	for _, c := range v.Children {
		c.render(b, depth+1)
	}
}

// Size returns the number of vertices in the tree rooted at v.
func (v *Vertex) Size() int {
	n := 1
	for _, c := range v.Children {
		n += c.Size()
	}
	return n
}

// Leaves appends all leaf vertices of the tree to dst.
func (v *Vertex) Leaves(dst []*Vertex) []*Vertex {
	if len(v.Children) == 0 {
		return append(dst, v)
	}
	for _, c := range v.Children {
		dst = c.Leaves(dst)
	}
	return dst
}
