package provenance

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

const chainProgram = `
materialize(A, 1, 1, keys(0)).
materialize(B, 1, 1, keys(0)).
materialize(C, 1, 2, keys(0,1)).
d1 B(@X) :- A(@X).
d2 C(@X,Y) :- B(@X), D(@X,Y).
`

func setup(t *testing.T) (*ndlog.Engine, *Recorder) {
	t.Helper()
	e := ndlog.MustNewEngine(ndlog.MustParse("chain", chainProgram))
	r := NewRecorder()
	e.Listen(r)
	return e, r
}

func TestExplainDerivedTuple(t *testing.T) {
	e, r := setup(t)
	e.Insert(ndlog.NewTuple("A", ndlog.Int(1)))
	e.Insert(ndlog.NewTuple("D", ndlog.Int(1), ndlog.Int(9)))

	tree := r.Explain(ndlog.NewTuple("C", ndlog.Int(1), ndlog.Int(9)))
	if tree.Kind != KindExist {
		t.Fatalf("root kind = %v", tree.Kind)
	}
	s := tree.Render()
	for _, want := range []string{"DERIVE", "d2", "B(1)", "A(1)", "INSERT"} {
		if !strings.Contains(s, want) {
			t.Fatalf("provenance missing %q:\n%s", want, s)
		}
	}
}

func TestExplainReachesBaseTuples(t *testing.T) {
	e, r := setup(t)
	e.Insert(ndlog.NewTuple("A", ndlog.Int(4)))
	tree := r.Explain(ndlog.NewTuple("B", ndlog.Int(4)))
	leaves := tree.Leaves(nil)
	foundInsert := false
	for _, l := range leaves {
		if l.Kind == KindInsert {
			foundInsert = true
		}
	}
	if !foundInsert {
		t.Fatalf("no INSERT leaf in:\n%s", tree.Render())
	}
}

func TestIntervalsTrackDeletion(t *testing.T) {
	e, r := setup(t)
	e.Insert(ndlog.NewTuple("A", ndlog.Int(2)))
	e.Delete(ndlog.NewTuple("A", ndlog.Int(2)))
	iv := r.Intervals(ndlog.NewTuple("B", ndlog.Int(2)))
	if len(iv) != 1 {
		t.Fatalf("intervals = %v", iv)
	}
	if iv[0].To == -1 {
		t.Fatal("interval not closed after cascade delete")
	}
	if _, ok := r.ExistedAt(ndlog.NewTuple("B", ndlog.Int(2)), iv[0].From); !ok {
		t.Fatal("ExistedAt failed within interval")
	}
	if _, ok := r.ExistedAt(ndlog.NewTuple("B", ndlog.Int(2)), iv[0].To+5); ok {
		t.Fatal("ExistedAt succeeded outside interval")
	}
}

func TestExplainMissing(t *testing.T) {
	e, r := setup(t)
	e.Insert(ndlog.NewTuple("A", ndlog.Int(1)))
	prog := e.Program()
	v3 := ndlog.Int(3)
	tree := r.ExplainMissing(prog, "C", []*ndlog.Value{&v3, nil})
	if tree.Kind != KindNExist {
		t.Fatalf("root = %v", tree.Kind)
	}
	if len(tree.Children) != 1 || tree.Children[0].Kind != KindNDerive {
		t.Fatalf("want one NDERIVE child, got %v", tree.Children)
	}
	s := tree.Render()
	if !strings.Contains(s, "NEXIST") || !strings.Contains(s, "D(") {
		t.Fatalf("missing D precondition not cited:\n%s", s)
	}
}

func TestRecorderHistoricalIndexes(t *testing.T) {
	e, r := setup(t)
	e.Insert(ndlog.NewTuple("A", ndlog.Int(1)))
	e.Insert(ndlog.NewTuple("A", ndlog.Int(2)))
	e.Insert(ndlog.NewTuple("D", ndlog.Int(1), ndlog.Int(5)))

	if got := len(r.TuplesOf("A")); got != 2 {
		t.Fatalf("TuplesOf(A) = %d, want 2", got)
	}
	if got := len(r.DerivationsInto("B")); got != 2 {
		t.Fatalf("DerivationsInto(B) = %d, want 2", got)
	}
	if !r.WasInserted(ndlog.NewTuple("A", ndlog.Int(1))) {
		t.Fatal("WasInserted(A(1)) = false")
	}
	if r.WasInserted(ndlog.NewTuple("B", ndlog.Int(1))) {
		t.Fatal("WasInserted(B(1)) = true; B is derived")
	}
	base := r.BaseInserts("A")
	if len(base) != 2 || base[0].Args[0].Int != 1 {
		t.Fatalf("BaseInserts(A) = %v", base)
	}
	if r.BytesLogged != 3*LogEntrySize {
		t.Fatalf("BytesLogged = %d, want %d", r.BytesLogged, 3*LogEntrySize)
	}
}

func TestExplainCycleGuard(t *testing.T) {
	prog := ndlog.MustParse("cycle", `
materialize(P, 1, 2, keys(0,1)).
c1 P(@X,Y) :- P(@Y,X).
c2 P(@X,Y) :- E(@X,Y).
`)
	e := ndlog.MustNewEngine(prog)
	r := NewRecorder()
	e.Listen(r)
	e.Insert(ndlog.NewTuple("E", ndlog.Int(1), ndlog.Int(2)))
	// P(1,2) and P(2,1) derive each other; Explain must terminate.
	tree := r.Explain(ndlog.NewTuple("P", ndlog.Int(1), ndlog.Int(2)))
	if tree.Size() == 0 || tree.Size() > 100 {
		t.Fatalf("suspicious tree size %d", tree.Size())
	}
}

func TestVertexRenderAndSize(t *testing.T) {
	v := &Vertex{Kind: KindExist, Tuple: ndlog.NewTuple("X", ndlog.Int(1)), T2: -1,
		Children: []*Vertex{
			{Kind: KindInsert, Tuple: ndlog.NewTuple("X", ndlog.Int(1))},
		}}
	if v.Size() != 2 {
		t.Fatalf("size = %d", v.Size())
	}
	if !strings.Contains(v.Render(), "INSERT") {
		t.Fatal("render missing child")
	}
	if KindNExist.Negative() != true || KindExist.Negative() != false {
		t.Fatal("Negative() misclassifies kinds")
	}
}
