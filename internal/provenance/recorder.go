package provenance

import (
	"sort"
	"sync/atomic"

	"repro/internal/ndlog"
)

// LogEntrySize is the size of one on-disk log record in bytes, matching the
// 120-byte entries (packet header plus timestamp) reported in §5.4.
const LogEntrySize = 120

// Derivation is one recorded rule firing.
type Derivation struct {
	Time int64
	Rule *ndlog.Rule
	Head ndlog.Tuple
	Body []ndlog.Tuple
	Env  ndlog.Env
}

// Interval is a tuple's validity interval; To is -1 while the tuple is
// still present.
type Interval struct {
	From, To int64
}

// Recorder is an ndlog.Listener that maintains the provenance graph's
// underlying log: derivations indexed by head, validity intervals, base
// insertions, and message sends. It doubles as the "historical information"
// store that repair generation and backtesting query (§4.3).
//
// Every tuple the engine hands a listener arrives with its identity key
// already interned (the engine computes it once per insertion/derivation),
// so the Key() calls below are cache reads — recording no longer
// re-stringifies tuples on the hot path.
type Recorder struct {
	ndlog.BaseListener
	derivs    map[string][]*Derivation // head tuple key -> derivations
	derivsTab map[string][]*Derivation // head table -> derivations
	intervals map[string][]Interval    // tuple key -> validity intervals
	inserts   map[string][]int64       // base tuple key -> insert times
	tuples    map[string][]ndlog.Tuple // table -> every distinct tuple seen
	seen      map[string]struct{}      // tuple keys already in tuples
	byKey     map[string]ndlog.Tuple   // tuple key -> canonical tuple
	sends     []SendRecord
	// BytesLogged approximates on-disk storage: LogEntrySize per insert.
	BytesLogged int64
	// lookups counts index queries, for the turnaround-time breakdowns.
	// It is atomic: the streaming explorer's workers query history
	// concurrently. Read it via Lookups().
	lookups atomic.Int64
}

// Lookups returns how many index queries the recorder has answered.
func (r *Recorder) Lookups() int64 { return r.lookups.Load() }

// SendRecord is one cross-node message transmission.
type SendRecord struct {
	Time     int64
	From, To ndlog.Value
	Tuple    ndlog.Tuple
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		derivs:    make(map[string][]*Derivation),
		derivsTab: make(map[string][]*Derivation),
		intervals: make(map[string][]Interval),
		inserts:   make(map[string][]int64),
		tuples:    make(map[string][]ndlog.Tuple),
		seen:      make(map[string]struct{}),
		byKey:     make(map[string]ndlog.Tuple),
	}
}

// OnInsert implements ndlog.Listener.
func (r *Recorder) OnInsert(t int64, tp ndlog.Tuple) {
	key := tp.Key()
	r.inserts[key] = append(r.inserts[key], t)
	r.BytesLogged += LogEntrySize
}

// OnDelete implements ndlog.Listener.
func (r *Recorder) OnDelete(t int64, tp ndlog.Tuple) {
	r.BytesLogged += LogEntrySize
}

// OnDerive implements ndlog.Listener. Tuple argument slices and the
// environment are stored by reference: the engine allocates them fresh
// per firing and never mutates them afterwards (only the Tags word of a
// stored row changes), so recording stays cheap — the property behind the
// small §5.4 overhead.
func (r *Recorder) OnDerive(t int64, rule *ndlog.Rule, head ndlog.Tuple, body []ndlog.Tuple, env ndlog.Env) {
	d := &Derivation{Time: t, Rule: rule, Head: head, Env: env}
	d.Body = append(d.Body, body...)
	key := head.Key()
	r.derivs[key] = append(r.derivs[key], d)
	r.derivsTab[head.Table] = append(r.derivsTab[head.Table], d)
}

// OnAppear implements ndlog.Listener.
func (r *Recorder) OnAppear(t int64, tp ndlog.Tuple) {
	k := tp.Key()
	r.intervals[k] = append(r.intervals[k], Interval{From: t, To: -1})
	if _, ok := r.seen[k]; !ok {
		r.seen[k] = struct{}{}
		c := tp.Clone()
		r.tuples[tp.Table] = append(r.tuples[tp.Table], c)
		r.byKey[k] = c
	}
}

// OnDisappear implements ndlog.Listener.
func (r *Recorder) OnDisappear(t int64, tp ndlog.Tuple) {
	iv := r.intervals[tp.Key()]
	for i := len(iv) - 1; i >= 0; i-- {
		if iv[i].To == -1 {
			iv[i].To = t
			break
		}
	}
}

// OnSend implements ndlog.Listener.
func (r *Recorder) OnSend(t int64, from, to ndlog.Value, tp ndlog.Tuple) {
	r.sends = append(r.sends, SendRecord{Time: t, From: from, To: to, Tuple: tp.Clone()})
}

// DerivationsOf returns the recorded derivations of a concrete tuple.
func (r *Recorder) DerivationsOf(tp ndlog.Tuple) []*Derivation {
	r.lookups.Add(1)
	return r.derivs[tp.Key()]
}

// DerivationsInto returns all recorded derivations whose head is in table.
func (r *Recorder) DerivationsInto(table string) []*Derivation {
	r.lookups.Add(1)
	return r.derivsTab[table]
}

// TuplesOf returns every distinct tuple that ever appeared in a table, in
// first-appearance order.
func (r *Recorder) TuplesOf(table string) []ndlog.Tuple {
	r.lookups.Add(1)
	return r.tuples[table]
}

// ExistedAt reports whether the tuple was present at the given time, and
// the surrounding interval if so.
func (r *Recorder) ExistedAt(tp ndlog.Tuple, at int64) (Interval, bool) {
	r.lookups.Add(1)
	for _, iv := range r.intervals[tp.Key()] {
		if iv.From <= at && (iv.To == -1 || at <= iv.To) {
			return iv, true
		}
	}
	return Interval{}, false
}

// EverExisted reports whether the tuple appeared at any time.
func (r *Recorder) EverExisted(tp ndlog.Tuple) bool {
	r.lookups.Add(1)
	return len(r.intervals[tp.Key()]) > 0
}

// Intervals returns the validity intervals of a tuple.
func (r *Recorder) Intervals(tp ndlog.Tuple) []Interval {
	r.lookups.Add(1)
	return r.intervals[tp.Key()]
}

// WasInserted reports whether the tuple was a base insertion.
func (r *Recorder) WasInserted(tp ndlog.Tuple) bool {
	r.lookups.Add(1)
	return len(r.inserts[tp.Key()]) > 0
}

// Sends returns all recorded cross-node transmissions.
func (r *Recorder) Sends() []SendRecord { return r.sends }

// BaseInserts returns all recorded base insertions of a table, ordered by
// insertion time; used by backtesting to reconstruct the input workload.
// The canonical-tuple map makes this a single pass over the table's insert
// log instead of the seed's nested rescan of every tuple ever seen.
func (r *Recorder) BaseInserts(table string) []ndlog.Tuple {
	r.lookups.Add(1)
	type rec struct {
		t  int64
		tp ndlog.Tuple
	}
	var all []rec
	for key, times := range r.inserts {
		if !keyHasTable(key, table) {
			continue
		}
		tp, ok := r.byKey[key]
		if !ok {
			continue
		}
		for _, tm := range times {
			all = append(all, rec{t: tm, tp: tp})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })
	out := make([]ndlog.Tuple, len(all))
	for i, a := range all {
		out[i] = a.tp
	}
	return out
}

func keyHasTable(key, table string) bool {
	return len(key) > len(table) && key[:len(table)] == table && key[len(table)] == '|'
}

// Explain returns the positive provenance tree of an observed tuple (§2.2):
// EXIST at the root, then DERIVE/INSERT vertices, then the body tuples'
// provenance recursively. A tuple both inserted and derived shows all
// supports. Memoization guards against recursive programs.
func (r *Recorder) Explain(tp ndlog.Tuple) *Vertex {
	return r.explain(tp, make(map[string]bool))
}

func (r *Recorder) explain(tp ndlog.Tuple, inPath map[string]bool) *Vertex {
	key := tp.Key()
	root := &Vertex{Kind: KindExist, Tuple: tp, T2: -1}
	if iv := r.intervals[key]; len(iv) > 0 {
		root.T1, root.T2 = iv[0].From, iv[0].To
	}
	if inPath[key] {
		return root // cycle guard: cite existence without re-expanding
	}
	inPath[key] = true
	defer delete(inPath, key)

	for _, t0 := range r.inserts[key] {
		root.Children = append(root.Children, &Vertex{Kind: KindInsert, T1: t0, Tuple: tp})
	}
	for _, d := range r.derivs[key] {
		dv := &Vertex{Kind: KindDerive, T1: d.Time, Tuple: tp, Rule: d.Rule.ID}
		for _, b := range d.Body {
			dv.Children = append(dv.Children, r.explain(b, inPath))
		}
		root.Children = append(root.Children, dv)
	}
	return root
}

// ExplainMissing returns the negative provenance tree for a tuple that
// should exist but does not (§2.2, [54]): NEXIST at the root and one
// NDERIVE child per program rule whose head table matches, whose children
// cite the missing or failing preconditions. filter entries may be nil to
// match any value. The program supplies the candidate rules.
func (r *Recorder) ExplainMissing(prog *ndlog.Program, table string, filter []*ndlog.Value) *Vertex {
	want := ndlog.Tuple{Table: table}
	for _, f := range filter {
		if f != nil {
			want.Args = append(want.Args, *f)
		} else {
			want.Args = append(want.Args, ndlog.Wild())
		}
	}
	root := &Vertex{Kind: KindNExist, Tuple: want, T2: -1}
	for _, rule := range prog.Rules {
		if rule.Head.Table != table {
			continue
		}
		nd := &Vertex{Kind: KindNDerive, Tuple: want, Rule: rule.ID}
		// Cite each body predicate: if no tuple of that table was ever
		// seen, the precondition itself is missing (NEXIST); otherwise the
		// rule failed on its guards, which meta provenance will analyze.
		for _, b := range rule.Body {
			seen := r.tuples[b.Table]
			if len(seen) == 0 {
				nd.Children = append(nd.Children, &Vertex{
					Kind:  KindNExist,
					Tuple: ndlog.Tuple{Table: b.Table},
					T2:    -1,
				})
			} else {
				nd.Children = append(nd.Children, &Vertex{
					Kind:  KindExist,
					Tuple: seen[0],
					T2:    -1,
				})
			}
		}
		root.Children = append(root.Children, nd)
	}
	return root
}
