// Package pyretic implements a miniature NetCore-style policy language
// modeled on the Pyretic subset the paper builds a meta model for
// (Appendix B.3): primitive actions (fwd, drop, modify), match
// restrictions, and sequential (>>) and parallel (|) composition, embedded
// in Python-flavoured syntax. Programs convert to and from the NDlog
// controller dialect. Pyretic's match() accepts only field equality, so
// repairs that flip a comparison operator on an equality match are not
// expressible — exactly the restriction §5.8 observes ("a fix that changes
// the operator to > is possible in [RapidNet] but disallowed in [Pyretic]
// because of the syntax of match").
package pyretic

import (
	"fmt"
	"strings"

	"repro/internal/meta"
	"repro/internal/ndlog"
)

// Policy is a NetCore policy term.
type Policy interface {
	pyretic() string // rendered Pyretic source
}

// Fwd forwards to a port.
type Fwd struct{ Port int64 }

// Drop discards packets.
type Drop struct{}

// Match restricts a sub-policy to packets with a field equal to a value.
type Match struct {
	Field string
	Value int64
	Sub   Policy
}

// RangeFilter restricts by a non-equality comparison; Pyretic expresses
// this as an embedded Python predicate, not a match(), so its operator is
// part of host-language code.
type RangeFilter struct {
	Field string
	Op    ndlog.BinOp
	Value int64
	Sub   Policy
}

// TableFilter restricts to packets whose field appears in a runtime set
// (the Pyretic analogue of a white-list lookup).
type TableFilter struct {
	Field string
	Table string
	Sub   Policy
}

// PredFilter restricts by an embedded Python predicate rendered verbatim
// (conditions with no direct field mapping).
type PredFilter struct {
	Text string
	Sub  Policy
}

// LearnPolicy records controller state from packets (the Pyretic analogue
// of a learning rule's side effect).
type LearnPolicy struct {
	Table string
	Key   string
}

// FwdLearned forwards to the port recorded in a state table.
type FwdLearned struct{ Table string }

// Par composes policies in parallel.
type Par struct{ Subs []Policy }

// Seq composes policies sequentially.
type Seq struct{ First, Then Policy }

func (p Fwd) pyretic() string { return fmt.Sprintf("fwd(%d)", p.Port) }
func (Drop) pyretic() string  { return "drop" }
func (p Match) pyretic() string {
	return fmt.Sprintf("match(%s=%d)[%s]", p.Field, p.Value, p.Sub.pyretic())
}
func (p RangeFilter) pyretic() string {
	return fmt.Sprintf("if_(lambda pkt: pkt.%s %s %d)[%s]", p.Field, p.Op, p.Value, p.Sub.pyretic())
}
func (p TableFilter) pyretic() string {
	return fmt.Sprintf("if_(lambda pkt: pkt.%s in self.%s)[%s]", p.Field, strings.ToLower(p.Table), p.Sub.pyretic())
}
func (p PredFilter) pyretic() string {
	return fmt.Sprintf("if_(lambda pkt: %s)[%s]", p.Text, p.Sub.pyretic())
}
func (p LearnPolicy) pyretic() string {
	return fmt.Sprintf("learn(self.%s, key=%s)", strings.ToLower(p.Table), p.Key)
}
func (p FwdLearned) pyretic() string {
	return fmt.Sprintf("fwd_learned(self.%s)", strings.ToLower(p.Table))
}
func (p Par) pyretic() string {
	parts := make([]string, len(p.Subs))
	for i, s := range p.Subs {
		parts[i] = s.pyretic()
	}
	return strings.Join(parts, " |\n    ")
}
func (p Seq) pyretic() string {
	return fmt.Sprintf("%s >> %s", p.First.pyretic(), p.Then.pyretic())
}

// fieldFor maps NDlog PacketIn positions to Pyretic field names.
var fieldForPos = map[int]string{
	1: "switch", 2: "inport", 3: "srcip", 4: "dstip", 5: "srcport", 6: "dstport",
}

// Program pairs the Pyretic view of a controller with its compiled NDlog
// semantics; it implements the scenarios.LangProgram contract.
type Program struct {
	Policy Policy
	prog   *ndlog.Program
	// eqSels records, per rule, which selection indices rendered as
	// match() equalities (operator changes there are inexpressible).
	eqSels map[string]map[int]bool
}

// Translate builds the Pyretic view of an NDlog controller. Each rule
// becomes one parallel branch: nested match/if_ filters around a fwd.
func Translate(prog *ndlog.Program) (*Program, error) {
	p := &Program{prog: prog, eqSels: make(map[string]map[int]bool)}
	var branches []Policy
	for _, r := range prog.Rules {
		br, eq, err := policyFromRule(r)
		if err != nil {
			return nil, fmt.Errorf("pyretic: rule %s: %w", r.ID, err)
		}
		p.eqSels[r.ID] = eq
		branches = append(branches, br)
	}
	p.Policy = Par{Subs: branches}
	return p, nil
}

func policyFromRule(r *ndlog.Rule) (Policy, map[int]bool, error) {
	var pktPred, statePred *ndlog.Functor
	for _, b := range r.Body {
		if b.Table == "PacketIn" {
			pktPred = b
		} else {
			statePred = b
		}
	}
	if pktPred == nil {
		return nil, nil, fmt.Errorf("no PacketIn predicate")
	}
	field := func(name string) (string, bool) {
		for i, a := range pktPred.Args {
			if v, ok := a.(*ndlog.Var); ok && v.Name == name {
				f, ok := fieldForPos[i]
				return f, ok
			}
		}
		return "", false
	}
	var inner Policy
	switch {
	case r.Head.Table != "FlowTable" && r.Head.Table != "PacketOut":
		key := "None"
		if len(r.Assigns) > 0 {
			key = r.Assigns[0].Expr.String()
		}
		inner = LearnPolicy{Table: r.Head.Table, Key: key}
	case len(r.Assigns) > 0:
		if c, ok := r.Assigns[0].Expr.(*ndlog.ConstExpr); ok && c.Val.Int >= 0 {
			inner = Fwd{Port: c.Val.Int}
		} else {
			inner = Drop{}
		}
	case statePred != nil:
		inner = FwdLearned{Table: statePred.Table}
	default:
		inner = Drop{}
	}
	eq := make(map[int]bool)
	// Wrap filters innermost-last so the rendering reads naturally.
	for i := len(r.Sels) - 1; i >= 0; i-- {
		s := r.Sels[i]
		lv, lok := s.Left.(*ndlog.Var)
		rc, rok := s.Right.(*ndlog.ConstExpr)
		if !lok || !rok {
			inner = PredFilter{Text: s.String(), Sub: inner}
			continue
		}
		f, ok := field(lv.Name)
		if !ok {
			inner = PredFilter{Text: s.String(), Sub: inner}
			continue
		}
		if s.Op == ndlog.OpEq {
			eq[i] = true
			inner = Match{Field: f, Value: rc.Val.Int, Sub: inner}
		} else {
			inner = RangeFilter{Field: f, Op: s.Op, Value: rc.Val.Int, Sub: inner}
		}
	}
	if statePred != nil {
		joined := ""
		for _, a := range statePred.Args {
			if v, ok := a.(*ndlog.Var); ok {
				if f, ok := field(v.Name); ok {
					joined = f
					break
				}
			}
		}
		inner = TableFilter{Field: joined, Table: statePred.Table, Sub: inner}
	}
	return inner, eq, nil
}

// Controller returns the compiled NDlog semantics.
func (p *Program) Controller() *ndlog.Program { return p.prog }

// Source renders the policy as Pyretic source.
func (p *Program) Source() string {
	return "policy = (\n    " + p.Policy.pyretic() + "\n)\n"
}

// LineCount counts source lines.
func (p *Program) LineCount() int { return strings.Count(p.Source(), "\n") }

// AllowChange implements the §5.8 expressibility restriction: operator
// changes on match() equalities are not representable in Pyretic syntax.
func (p *Program) AllowChange(c meta.Change) bool {
	if so, ok := c.(meta.SetOper); ok {
		if eq := p.eqSels[so.RuleID]; eq != nil && eq[so.SelIdx] {
			return false
		}
		// Turning a range filter into an equality is fine (Python code),
		// as is changing between orderings inside if_ predicates.
	}
	return true
}

// Describe renders a repair at the Pyretic level.
func (p *Program) Describe(c meta.Change) string {
	switch c := c.(type) {
	case meta.SetConst:
		return fmt.Sprintf("edit policy: change %s to %s (branch %s)", c.Old, c.New, c.RuleID)
	case meta.SetOper:
		return fmt.Sprintf("edit policy: change predicate %s to use %s (branch %s)", c.Sel, c.New, c.RuleID)
	case meta.DropSel:
		return fmt.Sprintf("edit policy: remove filter %s (branch %s)", c.Sel, c.RuleID)
	case meta.SetHeadTable:
		return fmt.Sprintf("edit policy: change the action of branch %s to %s", c.RuleID, c.New)
	default:
		return c.String()
	}
}

// Name identifies the language.
func (p *Program) Name() string { return "Pyretic" }
