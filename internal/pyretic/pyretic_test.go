package pyretic

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/ndlog"
)

const ctl = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
materialize(White, 1, 2, keys(0,1)).
a FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < 10, Prt := 2.
c FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), White(@C,Sip), Swi == 2, Prt := -1.
d Learned(@C,K,Swi,InPrt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), K := Sip.
e FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Learned(@C,Dip,LSwi,Prt), LSwi == Swi.
`

func TestPolicyRendering(t *testing.T) {
	p, err := Translate(ndlog.MustParse("ctl", ctl))
	if err != nil {
		t.Fatal(err)
	}
	src := p.Source()
	for _, want := range []string{
		"match(switch=1)",
		"match(dstport=80)",
		"if_(lambda pkt: pkt.srcip < 10)",
		"fwd(2)",
		"drop",
		"in self.white",
		"learn(self.learned, key=Sip)",
		"fwd_learned(self.learned)",
		" |", // parallel composition
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestExpressibilityRules(t *testing.T) {
	p, err := Translate(ndlog.MustParse("ctl", ctl))
	if err != nil {
		t.Fatal(err)
	}
	// Equality matches cannot change operator (match() is equality-only).
	if p.AllowChange(meta.SetOper{RuleID: "a", SelIdx: 0, Old: ndlog.OpEq, New: ndlog.OpGt}) {
		t.Error("operator change on match(switch=1) must be inexpressible")
	}
	// Range filters live in Python lambdas: operators can change there.
	if !p.AllowChange(meta.SetOper{RuleID: "a", SelIdx: 2, Old: ndlog.OpLt, New: ndlog.OpLe}) {
		t.Error("operator change inside if_ lambda must be expressible")
	}
	// Constant changes are always fine.
	if !p.AllowChange(meta.SetConst{RuleID: "a", Path: "sel/0/R", Old: ndlog.Int(1), New: ndlog.Int(2)}) {
		t.Error("constant change must be expressible")
	}
	if p.Name() != "Pyretic" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestSeqRendering(t *testing.T) {
	s := Seq{First: Match{Field: "dstport", Value: 80, Sub: Fwd{Port: 1}}, Then: Fwd{Port: 2}}
	if got := s.pyretic(); !strings.Contains(got, ">>") {
		t.Fatalf("sequential composition missing >>: %q", got)
	}
}

func TestRejectsNonControllerShape(t *testing.T) {
	if _, err := Translate(ndlog.MustParse("bad", `x A(@X) :- B(@X).`)); err == nil {
		t.Fatal("expected error for a rule without PacketIn")
	}
}

func TestDescribeRenderings(t *testing.T) {
	p, _ := Translate(ndlog.MustParse("ctl", ctl))
	c := meta.SetConst{RuleID: "a", Path: "sel/0/R", Old: ndlog.Int(1), New: ndlog.Int(2)}
	if !strings.Contains(p.Describe(c), "edit policy") {
		t.Fatalf("describe = %q", p.Describe(c))
	}
}
