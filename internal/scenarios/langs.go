package scenarios

import (
	"fmt"
	"time"

	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/pyretic"
	"repro/internal/trema"
)

// LangProgram is a controller program as seen through one of the three
// language front-ends (§5.8): its compiled NDlog semantics, rendered
// source, and the language's repair expressibility rules.
type LangProgram interface {
	Controller() *ndlog.Program
	Source() string
	LineCount() int
	AllowChange(meta.Change) bool
	Describe(meta.Change) string
	Name() string
}

// Language is one of the supported controller language front-ends.
type Language struct {
	Name      string
	Translate func(*ndlog.Program) (LangProgram, error)
	Supports  func(scenario string) bool
}

// ndlogProgram is the trivial adapter for the native dialect.
type ndlogProgram struct{ prog *ndlog.Program }

func (p ndlogProgram) Controller() *ndlog.Program    { return p.prog }
func (p ndlogProgram) Source() string                { return p.prog.String() }
func (p ndlogProgram) LineCount() int                { return p.prog.LineCount() }
func (p ndlogProgram) AllowChange(meta.Change) bool  { return true }
func (p ndlogProgram) Describe(c meta.Change) string { return c.String() }
func (p ndlogProgram) Name() string                  { return "RapidNet" }

// NDlogLang is the native declarative front-end (the paper's RapidNet).
func NDlogLang() Language {
	return Language{
		Name: "RapidNet",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return ndlogProgram{prog: p}, nil
		},
		Supports: func(string) bool { return true },
	}
}

// TremaLang is the imperative front-end.
func TremaLang() Language {
	return Language{
		Name: "Trema",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return trema.Translate(p)
		},
		Supports: func(string) bool { return true },
	}
}

// PyreticLang is the policy-DSL front-end. Q4 is not reproducible in
// Pyretic: its runtime forwards the buffered packet itself, so the
// forgotten-packets bug cannot be written (§5.8).
func PyreticLang() Language {
	return Language{
		Name: "Pyretic",
		Translate: func(p *ndlog.Program) (LangProgram, error) {
			return pyretic.Translate(p)
		},
		Supports: func(scenario string) bool { return scenario != "Q4" },
	}
}

// Languages returns all three front-ends in the paper's order.
func Languages() []Language {
	return []Language{NDlogLang(), TremaLang(), PyreticLang()}
}

// LangOutcome extends Outcome with language-level bookkeeping.
type LangOutcome struct {
	*Outcome
	Language   string
	Filtered   int // candidates removed by expressibility rules
	Supported  bool
	SourceLOC  int
	Renderings []string // language-level candidate descriptions
}

// RunWithLanguage executes the pipeline with the scenario's controller
// expressed in the given language: candidates inexpressible in the
// language are filtered before backtesting (the Table 3 experiment).
func (s *Scenario) RunWithLanguage(lang Language) (*LangOutcome, error) {
	if !lang.Supports(s.Name) {
		return &LangOutcome{
			Outcome:  &Outcome{Scenario: s},
			Language: lang.Name,
		}, nil
	}
	lp, err := lang.Translate(s.Prog)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: translate: %w", s.Name, lang.Name, err)
	}
	rec, replayTime, err := s.Diagnose()
	if err != nil {
		return nil, err
	}
	ex, th := s.Explorer(rec)

	genStart := time.Now()
	all := ex.Explore(s.Goal)
	genTotal := time.Since(genStart)

	var cands []metaprov.Candidate
	filtered := 0
	for _, c := range all {
		ok := true
		for _, ch := range c.Changes {
			if !lp.AllowChange(ch) {
				ok = false
				break
			}
		}
		if ok {
			cands = append(cands, c)
		} else {
			filtered++
		}
	}

	btStart := time.Now()
	results, err := s.Job(cands).RunShared()
	if err != nil {
		return nil, err
	}
	btTime := time.Since(btStart)

	out := &LangOutcome{
		Outcome: &Outcome{
			Scenario:   s,
			Recorder:   rec,
			Candidates: cands,
			Results:    results,
			Generated:  len(cands),
			Timing: Timing{
				HistoryLookups:    th.elapsed,
				ConstraintSolving: ex.SolveTime,
				PatchGeneration:   genTotal - th.elapsed - ex.SolveTime,
				Replay:            replayTime + btTime,
			},
		},
		Language:  lang.Name,
		Filtered:  filtered,
		Supported: true,
		SourceLOC: lp.LineCount(),
	}
	for _, r := range results {
		if r.Accepted {
			out.Passed++
		}
		desc := ""
		for i, ch := range r.Candidate.Changes {
			if i > 0 {
				desc += "; "
			}
			desc += lp.Describe(ch)
		}
		out.Renderings = append(out.Renderings, desc)
	}
	return out, nil
}
