package scenarios

import (
	"context"
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/ndlog"
	"repro/internal/pyretic"
	"repro/internal/trema"
	"repro/scenario"
)

func TestTremaTranslationQ1(t *testing.T) {
	s := Q1(smallScale())
	lp, err := trema.Translate(s.Prog)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	src := lp.Source()
	for _, want := range []string{
		"def packet_in", "datapath_id == 2", "packet.dst_port == 80",
		"send_flow_mod_add",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Trema source missing %q:\n%s", want, src)
		}
	}
	if lp.LineCount() < 10 {
		t.Fatalf("line count = %d", lp.LineCount())
	}
}

func TestPyreticTranslationQ1(t *testing.T) {
	s := Q1(smallScale())
	lp, err := pyretic.Translate(s.Prog)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	src := lp.Source()
	for _, want := range []string{"match(switch=2)", "match(dstport=80)", "fwd(", "if_(lambda pkt: pkt.srcip"} {
		if !strings.Contains(src, want) {
			t.Errorf("Pyretic source missing %q:\n%s", want, src)
		}
	}
}

func TestPyreticDisallowsEqualityOperatorChange(t *testing.T) {
	// The §5.8 observation: Swi==2 -> Swi>2 is expressible in RapidNet
	// and Trema but not in Pyretic's match().
	s := Q1(smallScale())
	tp, _ := trema.Translate(s.Prog)
	pp, _ := pyretic.Translate(s.Prog)
	opChange := meta.SetOper{RuleID: "r7", SelIdx: 0, Old: ndlog.OpEq, New: ndlog.OpGt, Sel: "Swi == 2"}
	if !tp.AllowChange(opChange) {
		t.Fatal("Trema should allow operator changes")
	}
	if pp.AllowChange(opChange) {
		t.Fatal("Pyretic must reject operator changes on match equalities")
	}
	// Operator changes inside range filters (if_ lambdas) stay allowed.
	rangeChange := meta.SetOper{RuleID: "r1", SelIdx: 3, Old: ndlog.OpLt, New: ndlog.OpLe, Sel: "Sip < 1256"}
	if !pp.AllowChange(rangeChange) {
		t.Fatal("Pyretic should allow operator changes in embedded Python predicates")
	}
}

func TestCrossLanguageQ1(t *testing.T) {
	s := Q1(smallScale())
	tremaOut, err := s.RunWithLanguage(context.Background(), scenario.TremaLang())
	if err != nil {
		t.Fatalf("trema: %v", err)
	}
	pyreticOut, err := s.RunWithLanguage(context.Background(), scenario.PyreticLang())
	if err != nil {
		t.Fatalf("pyretic: %v", err)
	}
	if tremaOut.Generated == 0 || tremaOut.Passed == 0 {
		t.Fatalf("trema: %d/%d", tremaOut.Passed, tremaOut.Generated)
	}
	if pyreticOut.Generated == 0 || pyreticOut.Passed == 0 {
		t.Fatalf("pyretic: %d/%d", pyreticOut.Passed, pyreticOut.Generated)
	}
	// The paper's Table 3 shape: Pyretic yields fewer candidates for Q1
	// because operator changes on match() are inexpressible.
	if pyreticOut.Generated >= tremaOut.Generated {
		t.Errorf("pyretic generated %d >= trema %d; expressibility filter inert",
			pyreticOut.Generated, tremaOut.Generated)
	}
	if pyreticOut.Filtered == 0 {
		t.Error("pyretic filtered no candidates")
	}
}

func TestPyreticQ4Unsupported(t *testing.T) {
	s := Q4(smallScale())
	out, err := s.RunWithLanguage(context.Background(), scenario.PyreticLang())
	if err != nil {
		t.Fatal(err)
	}
	if out.Supported {
		t.Fatal("Q4 must be unsupported in Pyretic (its runtime forwards buffered packets)")
	}
}

func TestLanguagesComplete(t *testing.T) {
	langs := scenario.Languages()
	if len(langs) != 3 {
		t.Fatalf("languages = %d", len(langs))
	}
	prog := ndlog.MustParse("t", `r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`)
	for _, l := range langs {
		lp, err := l.Translate(prog)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if lp.Source() == "" || lp.Controller() == nil {
			t.Fatalf("%s: empty translation", l.Name)
		}
	}
}
