package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// Q1 addresses: the load-balanced web service, its two backends, the DNS
// server, and an unrelated web server behind a fourth zone switch.
const (
	q1VIP = 201 // load-balanced web service virtual IP
	q1H2  = 202 // backup web server host IP (behind zone switch 3)
	q1DNS = 203
	q1Web = 204 // unrelated web server (behind zone switch 4)
)

// q1Program is the Figure 2 controller generalized to full headers. r7 was
// copied from r5 when the backup server H2 was added: the port was changed
// to 2, but the switch guard still says 2 instead of 3 — the §2.3
// copy-and-paste error.
const q1Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 201, Sip < %THRESH%, Prt := 2.
r2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 201, Sip >= %THRESH%, Prt := 3.
r3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 53, Prt := 2.
r4 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 204, Prt := 4.
r5 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
r6 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 53, Prt := 2.
r7 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 2.
r8 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 4, Dpt == 80, Prt := 1.
`

// q1Threshold computes the load-balancer split for a fabric: the last 3
// hosts' source IPs are offloaded to the backup server.
func q1Threshold(f *topo.Fabric) int64 {
	last := f.Net.Hosts[f.HostIDs[len(f.HostIDs)-1]].IP
	return last - 2
}

// q1Overrides steers the zone service IPs into the reactive zone.
var q1Overrides = map[int64]string{
	q1VIP: "q1s1", q1DNS: "q1s1", q1Web: "q1s1", q1H2: "q1s1",
}

// q1Attach wires the four-switch reactive zone onto the fabric and
// installs the proactive routes around it.
func q1Attach(f *topo.Fabric) {
	s1, s2 := sdn.NewSwitch("q1s1", 1), sdn.NewSwitch("q1s2", 2)
	s3, s4 := sdn.NewSwitch("q1s3", 3), sdn.NewSwitch("q1s4", 4)
	for _, s := range []*sdn.Switch{s1, s2, s3, s4} {
		f.Net.AddSwitch(s)
	}
	s1.Wire(2, "q1s2")
	s2.Wire(3, "q1s1")
	s1.Wire(3, "q1s3")
	s3.Wire(3, "q1s1")
	s1.Wire(4, "q1s4")
	s4.Wire(3, "q1s1")
	f.Net.AddHostAt(sdn.NewHost("q1h1", q1VIP, "q1s2"), 1)
	f.Net.AddHostAt(sdn.NewHost("q1dns", q1DNS, "q1s2"), 2)
	f.Net.AddHostAt(sdn.NewHost("q1h2", q1H2, "q1s3"), 2)
	f.Net.AddHostAt(sdn.NewHost("q1h3", q1Web, "q1s4"), 1)
	f.Net.Link("q1s1", f.CoreIDs[0])
	f.InstallProactiveRoutes(q1Overrides, "q1s1", "q1s2", "q1s3", "q1s4")
}

// Q1Spec declares the copy-and-paste scenario of §2.3/§5.3.
func Q1Spec() scenario.Spec {
	return scenario.Spec{
		Name:   "Q1",
		Query:  "H2 is not receiving HTTP requests (copy-and-paste error)",
		Attach: q1Attach,
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			prog, err := ndlog.Parse("q1", replaceThresh(q1Program, q1Threshold(f)))
			return prog, nil, err
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			// The offloaded clients (the last three hosts) send their own
			// web requests — the traffic the bug silently drops.
			offloaded := make([]trace.HostSpec, 0, 3)
			for i := len(f.HostIDs) - 3; i < len(f.HostIDs); i++ {
				offloaded = append(offloaded, hostSpecAt(f, i))
			}
			symptomFlows := sc.Flows / 100
			if symptomFlows < 6 {
				symptomFlows = 6
			}
			symptomTrace := trace.Generate(trace.Config{
				Seed:     100,
				Sources:  offloaded,
				Services: []trace.Service{{DstIP: q1VIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    symptomFlows,
			})
			bgTrace := trace.Generate(trace.Config{
				Seed:    101,
				Sources: campusSources(f),
				Services: append([]trace.Service{
					{DstIP: q1VIP, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 4},
					{DstIP: q1DNS, Port: sdn.PortDNS, Proto: sdn.ProtoUDP, Weight: 3},
					{DstIP: q1Web, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
				}, backgroundServices(f, 12)...),
				Flows: sc.Flows,
			})
			return append(symptomTrace, bgTrace...)
		},
		Goal: func(*topo.Fabric) metaprov.Goal {
			v3, v80, v2, vip := ndlog.Int(3), ndlog.Int(80), ndlog.Int(2), ndlog.Int(q1VIP)
			return metaprov.PinnedGoal("FlowTable", &v3, nil, &vip, nil, &v80, &v2)
		},
		Oracle: func(*topo.Fabric) scenario.Effectiveness {
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["q1h2"].PortCountFor(sdn.PortHTTP, tag) > 0
			}
		},
		IntuitiveFix: "change constant 2 in r7 (sel/0/R) to 3",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
	}
}

func replaceThresh(src string, thresh int64) string {
	return strings.ReplaceAll(src, "%THRESH%", fmt.Sprint(thresh))
}
