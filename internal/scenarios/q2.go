package scenarios

import (
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// Q2 addresses.
const (
	q2DNS = 217 // the DNS server that misses queries
	q2Web = 218 // background web service through the same zone
)

// q2Program is the §5.3 forwarding error [57]: the operator restricted DNS
// access to an authorized client range but wrote the range check one too
// tight, so the last authorized client's queries never reach the server.
const q2Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
d1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 53, Sip < %THRESH%, Prt := 2.
d2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Prt := 3.
d3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 53, Prt := 1.
d4 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 3, Dpt == 80, Prt := 1.
`

// q2Blocked computes the authorized client the bug cuts off: the seventh
// fabric host.
func q2Blocked(f *topo.Fabric) int64 {
	return f.Net.Hosts[f.HostIDs[0]].IP + 6
}

func q2Attach(f *topo.Fabric) {
	s1, s2, s3 := sdn.NewSwitch("q2s1", 1), sdn.NewSwitch("q2s2", 2), sdn.NewSwitch("q2s3", 3)
	f.Net.AddSwitch(s1)
	f.Net.AddSwitch(s2)
	f.Net.AddSwitch(s3)
	s1.Wire(2, "q2s2")
	s2.Wire(3, "q2s1")
	s1.Wire(3, "q2s3")
	s3.Wire(3, "q2s1")
	f.Net.AddHostAt(sdn.NewHost("q2dns", q2DNS, "q2s2"), 1)
	f.Net.AddHostAt(sdn.NewHost("q2web", q2Web, "q2s3"), 1)
	f.Net.Link("q2s1", f.CoreIDs[1])
	f.InstallProactiveRoutes(map[int64]string{
		q2DNS: "q2s1", q2Web: "q2s1",
	}, "q2s1", "q2s2", "q2s3")
}

// Q2Spec declares the forwarding-error scenario. The authorized client
// range is the first seven fabric hosts; the boundary host (the seventh)
// is cut off by the off-by-one range check.
func Q2Spec() scenario.Spec {
	return scenario.Spec{
		Name:   "Q2",
		Query:  "H17 is not receiving DNS queries from H1 (forwarding error)",
		Attach: q2Attach,
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			// d1 says Sip < blocked; intended Sip <= blocked.
			prog, err := ndlog.Parse("q2", replaceThresh(q2Program, q2Blocked(f)))
			return prog, nil, err
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			// Authorized clients (including the blocked one) query DNS;
			// everyone uses the web service and background services.
			authorized := make([]trace.HostSpec, 0, 7)
			for i := 0; i < 7; i++ {
				authorized = append(authorized, hostSpecAt(f, i))
			}
			dnsTrace := trace.Generate(trace.Config{
				Seed:    202,
				Sources: authorized,
				Services: []trace.Service{
					{DstIP: q2DNS, Port: sdn.PortDNS, Proto: sdn.ProtoUDP, Weight: 1},
				},
				Flows: sc.Flows / 12,
			})
			bgTrace := trace.Generate(trace.Config{
				Seed:    203,
				Sources: campusSources(f),
				Services: append([]trace.Service{
					{DstIP: q2Web, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 5},
				}, backgroundServices(f, 12)...),
				Flows: sc.Flows,
			})
			return append(dnsTrace, bgTrace...)
		},
		Goal: func(f *topo.Fabric) metaprov.Goal {
			v1, vb, vdns, v53, v2 := ndlog.Int(1), ndlog.Int(q2Blocked(f)), ndlog.Int(q2DNS), ndlog.Int(53), ndlog.Int(2)
			return metaprov.PinnedGoal("FlowTable", &v1, &vb, &vdns, nil, &v53, &v2)
		},
		Oracle: func(f *topo.Fabric) scenario.Effectiveness {
			blocked := q2Blocked(f)
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["q2dns"].SrcCountFor(blocked, tag) > 0
			}
		},
		IntuitiveFix: "change operator < to <= in d1",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 3}),
			metarepair.WithMaxCandidates(13),
		},
	}
}
