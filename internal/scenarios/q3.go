package scenarios

import (
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// Q3 addresses.
const q3Server = 220 // the white-listed web service behind the firewall

// q3Program is the §5.3 uncoordinated policy update [13]: a load-balancing
// app started offloading high-IP clients onto the firewalled route (w2),
// but the firewall app's white-list (FwWhite) was never updated for the
// newly offloaded legitimate client, whose requests the firewall now drops.
const q3Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
materialize(FwWhite, 1, 2, keys(0,1)).
w1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 220, Sip < %THRESH%, Prt := 2.
w2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Dip == 220, Sip >= %THRESH%, Prt := 3.
w3 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), FwWhite(@C,Sip), Swi == 3, Dpt == 80, Prt := 3.
w4 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 2, Dpt == 80, Prt := 1.
`

// q3Thresh computes the offload boundary: the 9 highest client IPs take
// the firewalled route.
func q3Thresh(f *topo.Fabric) int64 {
	last := f.Net.Hosts[f.HostIDs[len(f.HostIDs)-1]].IP
	return last - 8
}

func q3Attach(f *topo.Fabric) {
	s1, s2, s3 := sdn.NewSwitch("q3s1", 1), sdn.NewSwitch("q3s2", 2), sdn.NewSwitch("q3s3", 3)
	f.Net.AddSwitch(s1)
	f.Net.AddSwitch(s2)
	f.Net.AddSwitch(s3)
	s1.Wire(2, "q3s2")
	s2.Wire(3, "q3s1")
	s1.Wire(3, "q3s3")
	s3.Wire(4, "q3s1")
	s3.Wire(3, "q3s2") // the firewall's allow path rejoins the direct route
	s2.Wire(4, "q3s3")
	f.Net.AddHostAt(sdn.NewHost("q3srv", q3Server, "q3s2"), 1)
	f.Net.Link("q3s1", f.CoreIDs[2])
	f.InstallProactiveRoutes(map[int64]string{q3Server: "q3s1"}, "q3s1", "q3s2", "q3s3")
}

// Q3Spec declares the uncoordinated-policy-update scenario: the last 9
// fabric hosts are offloaded onto the firewall route; the white-list
// covers the first 5 of them, misses the legitimate client (the 6th), and
// correctly blocks the remaining 3, which are heavy scanners whose
// traffic must stay blocked — repairs that open the firewall for everyone
// are rejected.
func Q3Spec() scenario.Spec {
	return scenario.Spec{
		Name:   "Q3",
		Query:  "H20 is not receiving HTTP requests from H1 (uncoordinated policy update)",
		Attach: q3Attach,
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			thresh := q3Thresh(f)
			prog, err := ndlog.Parse("q3", replaceThresh(q3Program, thresh))
			if err != nil {
				return nil, nil, err
			}
			state := make([]ndlog.Tuple, 0, 5)
			for ip := thresh; ip < thresh+5; ip++ {
				state = append(state, ndlog.NewTuple("FwWhite", sdn.ControllerLoc, ndlog.Int(ip)))
			}
			return prog, state, nil
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			thresh := q3Thresh(f)
			// Scanners are the 3 highest IPs: bulk traffic the firewall
			// must keep blocking.
			scanners := make([]trace.HostSpec, 0, 3)
			for i := len(f.HostIDs) - 3; i < len(f.HostIDs); i++ {
				scanners = append(scanners, hostSpecAt(f, i))
			}
			scanTrace := trace.Generate(trace.Config{
				Seed:     301,
				Sources:  scanners,
				Services: []trace.Service{{DstIP: q3Server, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    sc.Flows / 5,
			})
			// The forgotten legitimate client (and its whitelisted
			// neighbours) keep using the service: that traffic is the
			// symptom.
			offloaded := make([]trace.HostSpec, 0, 6)
			for ip := thresh; ip <= thresh+5; ip++ {
				for _, id := range f.HostIDs {
					if f.Net.Hosts[id].IP == ip {
						offloaded = append(offloaded, trace.HostSpec{ID: id, IP: ip})
					}
				}
			}
			symptomTrace := trace.Generate(trace.Config{
				Seed:     303,
				Sources:  offloaded,
				Services: []trace.Service{{DstIP: q3Server, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 1}},
				Flows:    sc.Flows / 20,
			})
			bgTrace := trace.Generate(trace.Config{
				Seed:    302,
				Sources: campusSources(f),
				Services: append([]trace.Service{
					{DstIP: q3Server, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 5},
				}, backgroundServices(f, 12)...),
				Flows: sc.Flows,
			})
			return append(append(symptomTrace, scanTrace...), bgTrace...)
		},
		Goal: func(f *topo.Fabric) metaprov.Goal {
			forgotten := q3Thresh(f) + 5
			v3, vf, vsrv, v80, vp3 := ndlog.Int(3), ndlog.Int(forgotten), ndlog.Int(q3Server), ndlog.Int(80), ndlog.Int(3)
			return metaprov.PinnedGoal("FlowTable", &v3, &vf, &vsrv, nil, &v80, &vp3)
		},
		Oracle: func(f *topo.Fabric) scenario.Effectiveness {
			forgotten := q3Thresh(f) + 5
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["q3srv"].SrcCountFor(forgotten, tag) > 0
			}
		},
		IntuitiveFix: "manually insert FwWhite(",
		Options: []metarepair.Option{
			// CostCutoff 4.2 admits the white-list predicate deletion.
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 4.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
	}
}
