package scenarios

import (
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// Q4 addresses.
const (
	q4SrvA = 231
	q4SrvB = 232
)

// q4Program is the §5.3 forgotten-packets bug [7]: the controller installs
// correct flow entries in response to new flows, but never instructs the
// switch to forward the buffered first packet — there is no PacketOut rule,
// so the first packet of every flow is lost.
const q4Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
g1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 231, Prt := 1.
g2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 232, Prt := 2.
`

func q4Attach(f *topo.Fabric) {
	s1 := sdn.NewSwitch("q4s1", 1)
	f.Net.AddSwitch(s1)
	f.Net.AddHostAt(sdn.NewHost("q4srva", q4SrvA, "q4s1"), 1)
	f.Net.AddHostAt(sdn.NewHost("q4srvb", q4SrvB, "q4s1"), 2)
	f.Net.Link("q4s1", f.CoreIDs[3])
	f.InstallProactiveRoutes(map[int64]string{
		q4SrvA: "q4s1", q4SrvB: "q4s1",
	}, "q4s1")
}

// q4Probe is the probe client: the first fabric host.
func q4Probe(f *topo.Fabric) int64 {
	return f.Net.Hosts[f.HostIDs[0]].IP
}

// Q4Spec declares the forgotten-packets scenario. A probe client sends
// single-packet flows; with the bug every one of them dies as a buffered
// first packet, so the server never hears from the probe at all.
func Q4Spec() scenario.Spec {
	return scenario.Spec{
		Name:   "Q4",
		Query:  "First HTTP packet from H2 to H20 is not received (forgotten packets)",
		Attach: q4Attach,
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			prog, err := ndlog.Parse("q4", q4Program)
			return prog, nil, err
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			// The probe's single-packet flows (the symptom traffic).
			probe := q4Probe(f)
			probeTrace := make([]trace.Entry, 0, 24)
			for i := 0; i < 24; i++ {
				probeTrace = append(probeTrace, trace.Entry{
					Time:    int64(i),
					SrcHost: f.HostIDs[0],
					Pkt: sdn.Packet{
						SrcIP: probe, DstIP: q4SrvA,
						SrcPort: int64(20000 + i), DstPort: sdn.PortHTTP, Proto: sdn.ProtoTCP,
					},
				})
			}
			// The probe is excluded from the background sources: its only
			// traffic toward server A is the single-packet symptom flows,
			// so a multi-packet background flow can never mask the
			// forgotten-first-packet symptom at any scale.
			bgTrace := trace.Generate(trace.Config{
				Seed:    401,
				Sources: campusSources(f)[1:],
				Services: append([]trace.Service{
					{DstIP: q4SrvA, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
					{DstIP: q4SrvB, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
				}, backgroundServices(f, 12)...),
				Flows: sc.Flows,
			})
			return append(probeTrace, bgTrace...)
		},
		Goal: func(f *topo.Fabric) metaprov.Goal {
			v1, vp, va, v80, vprt := ndlog.Int(1), ndlog.Int(q4Probe(f)), ndlog.Int(q4SrvA), ndlog.Int(80), ndlog.Int(1)
			return metaprov.PinnedGoal("PacketOut", &v1, &vp, &va, nil, &v80, &vprt)
		},
		Oracle: func(f *topo.Fabric) scenario.Effectiveness {
			probe := q4Probe(f)
			return func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
				return n.Hosts["q4srva"].SrcCountFor(probe, tag) > 0
			}
		},
		IntuitiveFix: "add rule g1~PacketOut",
		Options: []metarepair.Option{
			// CostCutoff 6.2 admits rule copies (cost 5).
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 6.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
		// Repairs that degenerate into per-packet forwarding (changing a
		// forwarding rule's head to PacketOut) blow up controller load;
		// the paper rejects them for exactly this side effect.
		MaxPacketInFactor: 3,
	}
}
