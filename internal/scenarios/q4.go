package scenarios

import (
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
)

// Q4 addresses.
const (
	q4SrvA = 231
	q4SrvB = 232
)

// q4Program is the §5.3 forgotten-packets bug [7]: the controller installs
// correct flow entries in response to new flows, but never instructs the
// switch to forward the buffered first packet — there is no PacketOut rule,
// so the first packet of every flow is lost.
const q4Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
g1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 231, Prt := 1.
g2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dip == 232, Prt := 2.
`

func q4Zone(c *topo.Campus) {
	s1 := sdn.NewSwitch("q4s1", 1)
	c.Net.AddSwitch(s1)
	c.Net.AddHostAt(sdn.NewHost("q4srva", q4SrvA, "q4s1"), 1)
	c.Net.AddHostAt(sdn.NewHost("q4srvb", q4SrvB, "q4s1"), 2)
	c.Net.Link("q4s1", c.CoreIDs[3])
}

// Q4 builds the forgotten-packets scenario. A probe client sends
// single-packet flows; with the bug every one of them dies as a buffered
// first packet, so the server never hears from the probe at all.
func Q4(sc Scale) *Scenario {
	campus := buildCampus(sc)
	q4Zone(campus)
	campus.InstallProactiveRoutes(map[int64]string{
		q4SrvA: "q4s1", q4SrvB: "q4s1",
	}, "q4s1")
	prog := ndlog.MustParse("q4", q4Program)
	probe := campus.Net.Hosts[campus.HostIDs[0]].IP

	flows := sc.Flows
	if flows <= 0 {
		flows = DefaultScale().Flows
	}
	// The probe's single-packet flows (the symptom traffic).
	var probeTrace []trace.Entry
	for i := 0; i < 24; i++ {
		probeTrace = append(probeTrace, trace.Entry{
			Time:    int64(i),
			SrcHost: campus.HostIDs[0],
			Pkt: sdn.Packet{
				SrcIP: probe, DstIP: q4SrvA,
				SrcPort: int64(20000 + i), DstPort: sdn.PortHTTP, Proto: sdn.ProtoTCP,
			},
		})
	}
	bgTrace := trace.Generate(trace.Config{
		Seed:    401,
		Sources: campusSources(campus),
		Services: append([]trace.Service{
			{DstIP: q4SrvA, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
			{DstIP: q4SrvB, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 3},
		}, backgroundServices(campus, 12)...),
		Flows: flows,
	})
	workload := append(probeTrace, bgTrace...)

	v1, vp, va, v80, vprt := ndlog.Int(1), ndlog.Int(probe), ndlog.Int(q4SrvA), ndlog.Int(80), ndlog.Int(1)
	return &Scenario{
		Name:  "Q4",
		Query: "First HTTP packet from H2 to H20 is not received (forgotten packets)",
		Prog:  prog,
		BuildNet: func() *sdn.Network {
			c := buildCampus(sc)
			q4Zone(c)
			c.InstallProactiveRoutes(map[int64]string{
				q4SrvA: "q4s1", q4SrvB: "q4s1",
			}, "q4s1")
			return c.Net
		},
		Workload: workload,
		Goal:     metaprov.PinnedGoal("PacketOut", &v1, &vp, &va, nil, &v80, &vprt),
		Effective: func(n *sdn.Network, _ *sdn.NDlogController, tag int) bool {
			return n.Hosts["q4srva"].SrcCountFor(probe, tag) > 0
		},
		IntuitiveFix: "add rule g1~PacketOut",
		Options: []metarepair.Option{
			// CostCutoff 6.2 admits rule copies (cost 5).
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 6.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(13),
		},
		// Repairs that degenerate into per-packet forwarding (changing a
		// forwarding rule's head to PacketOut) blow up controller load;
		// the paper rejects them for exactly this side effect.
		MaxPacketInFactor: 3,
	}
}
