package scenarios

import (
	"fmt"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
	"repro/scenario"
)

// Q5 addresses: six peer hosts behind the learning switch.
const q5Base = 241

// q5Program is the §5.3 incorrect-MAC-learning bug [4]: the learning rule
// m1 should record the packet's source address (SipL := Sip) but records a
// wildcard instead — it effectively matches only on the incoming port and
// destination, so the controller never learns where individual hosts live
// and the forwarding rule m2 can never find them.
const q5Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
materialize(Learned, 1, 4, keys(0,1,2,3)).
m1 Learned(@C,SipL,Swi,InPrt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), SipL := *.
m2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Learned(@C,Dip,LSwi,Prt), LSwi == Swi.
`

func q5Attach(f *topo.Fabric) {
	s1 := sdn.NewSwitch("q5s1", 1)
	f.Net.AddSwitch(s1)
	overrides := make(map[int64]string)
	for i := 0; i < 6; i++ {
		f.Net.AddHostAt(sdn.NewHost(fmt.Sprintf("q5h%d", i), int64(q5Base+i), "q5s1"), i+1)
		overrides[int64(q5Base+i)] = "q5s1"
	}
	f.Net.Link("q5s1", f.CoreIDs[4])
	f.InstallProactiveRoutes(overrides, "q5s1")
}

// Q5Spec declares the incorrect-MAC-learning scenario: the six zone hosts
// first announce themselves (hello packets teach the controller their
// location), then exchange peer-to-peer flows, none of which are
// deliverable while the learning table holds only wildcard entries.
func Q5Spec() scenario.Spec {
	return scenario.Spec{
		Name:   "Q5",
		Query:  "H2's address is not learned by the controller (incorrect MAC learning)",
		Attach: q5Attach,
		Program: func(f *topo.Fabric) (*ndlog.Program, []ndlog.Tuple, error) {
			prog, err := ndlog.Parse("q5", q5Program)
			return prog, nil, err
		},
		Workload: func(f *topo.Fabric, sc Scale) []trace.Entry {
			// Hellos: each zone host sends one packet so the controller can
			// learn its location, then peers exchange flows.
			zoneTrace := make([]trace.Entry, 0, 6+6*5*3)
			tm := int64(0)
			for i := 0; i < 6; i++ {
				zoneTrace = append(zoneTrace, trace.Entry{
					Time:    tm,
					SrcHost: fmt.Sprintf("q5h%d", i),
					Pkt: sdn.Packet{
						SrcIP: int64(q5Base + i), DstIP: int64(q5Base + (i+1)%6),
						SrcPort: 30000, DstPort: 7000, Proto: sdn.ProtoTCP,
					},
				})
				tm++
			}
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					if i == j {
						continue
					}
					// Three packets per peer flow: the first installs state
					// (and is lost — there is no PacketOut), the rest are
					// deliverable once learning works.
					for k := 0; k < 3; k++ {
						zoneTrace = append(zoneTrace, trace.Entry{
							Time:    tm,
							SrcHost: fmt.Sprintf("q5h%d", i),
							Pkt: sdn.Packet{
								SrcIP: int64(q5Base + i), DstIP: int64(q5Base + j),
								SrcPort: 31000, DstPort: 7000, Proto: sdn.ProtoTCP,
							},
						})
						tm++
					}
				}
			}
			bgTrace := trace.Generate(trace.Config{
				Seed:     501,
				Sources:  campusSources(f),
				Services: backgroundServices(f, 16),
				Flows:    sc.Flows,
			})
			return append(zoneTrace, bgTrace...)
		},
		Goal: func(*topo.Fabric) metaprov.Goal {
			v241, v1 := ndlog.Int(q5Base), ndlog.Int(1)
			return metaprov.PinnedGoal("Learned", nil, &v241, &v1, nil)
		},
		Oracle: func(*topo.Fabric) scenario.Effectiveness {
			return func(_ *sdn.Network, ctl *sdn.NDlogController, tag int) bool {
				for _, row := range ctl.Engine.Rows("Learned") {
					if len(row.Args) == 4 && row.Args[1].Equal(ndlog.Int(q5Base)) &&
						row.Tags&(1<<uint(tag)) != 0 {
						return true
					}
				}
				return false
			}
		},
		IntuitiveFix: "change * in m1 (assign/0) to Sip",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(14),
		},
	}
}
