package scenarios

import (
	"fmt"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
)

// Q5 addresses: six peer hosts behind the learning switch.
const q5Base = 241

// q5Program is the §5.3 incorrect-MAC-learning bug [4]: the learning rule
// m1 should record the packet's source address (SipL := Sip) but records a
// wildcard instead — it effectively matches only on the incoming port and
// destination, so the controller never learns where individual hosts live
// and the forwarding rule m2 can never find them.
const q5Program = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
materialize(Learned, 1, 4, keys(0,1,2,3)).
m1 Learned(@C,SipL,Swi,InPrt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), SipL := *.
m2 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Learned(@C,Dip,LSwi,Prt), LSwi == Swi.
`

func q5Zone(c *topo.Campus) {
	s1 := sdn.NewSwitch("q5s1", 1)
	c.Net.AddSwitch(s1)
	for i := 0; i < 6; i++ {
		c.Net.AddHostAt(sdn.NewHost(fmt.Sprintf("q5h%d", i), int64(q5Base+i), "q5s1"), i+1)
	}
	c.Net.Link("q5s1", c.CoreIDs[4])
}

// Q5 builds the incorrect-MAC-learning scenario: the six zone hosts first
// announce themselves (hello packets teach the controller their location),
// then exchange peer-to-peer flows, none of which are deliverable while
// the learning table holds only wildcard entries.
func Q5(sc Scale) *Scenario {
	campus := buildCampus(sc)
	q5Zone(campus)
	overrides := make(map[int64]string)
	for i := 0; i < 6; i++ {
		overrides[int64(q5Base+i)] = "q5s1"
	}
	campus.InstallProactiveRoutes(overrides, "q5s1")
	prog := ndlog.MustParse("q5", q5Program)

	flows := sc.Flows
	if flows <= 0 {
		flows = DefaultScale().Flows
	}
	// Hellos: each zone host sends one packet so the controller can learn
	// its location, then peers exchange flows.
	var zoneTrace []trace.Entry
	tm := int64(0)
	for i := 0; i < 6; i++ {
		zoneTrace = append(zoneTrace, trace.Entry{
			Time:    tm,
			SrcHost: fmt.Sprintf("q5h%d", i),
			Pkt: sdn.Packet{
				SrcIP: int64(q5Base + i), DstIP: int64(q5Base + (i+1)%6),
				SrcPort: 30000, DstPort: 7000, Proto: sdn.ProtoTCP,
			},
		})
		tm++
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			// Three packets per peer flow: the first installs state (and
			// is lost — there is no PacketOut), the rest are deliverable
			// once learning works.
			for k := 0; k < 3; k++ {
				zoneTrace = append(zoneTrace, trace.Entry{
					Time:    tm,
					SrcHost: fmt.Sprintf("q5h%d", i),
					Pkt: sdn.Packet{
						SrcIP: int64(q5Base + i), DstIP: int64(q5Base + j),
						SrcPort: 31000, DstPort: 7000, Proto: sdn.ProtoTCP,
					},
				})
				tm++
			}
		}
	}
	bgTrace := trace.Generate(trace.Config{
		Seed:     501,
		Sources:  campusSources(campus),
		Services: backgroundServices(campus, 16),
		Flows:    flows,
	})
	workload := append(zoneTrace, bgTrace...)

	v241, v1 := ndlog.Int(q5Base), ndlog.Int(1)
	return &Scenario{
		Name:  "Q5",
		Query: "H2's address is not learned by the controller (incorrect MAC learning)",
		Prog:  prog,
		BuildNet: func() *sdn.Network {
			c := buildCampus(sc)
			q5Zone(c)
			ov := make(map[int64]string)
			for i := 0; i < 6; i++ {
				ov[int64(q5Base+i)] = "q5s1"
			}
			c.InstallProactiveRoutes(ov, "q5s1")
			return c.Net
		},
		Workload: workload,
		Goal:     metaprov.PinnedGoal("Learned", nil, &v241, &v1, nil),
		Effective: func(_ *sdn.Network, ctl *sdn.NDlogController, tag int) bool {
			for _, row := range ctl.Engine.Rows("Learned") {
				if len(row.Args) == 4 && row.Args[1].Equal(ndlog.Int(q5Base)) &&
					row.Tags&(1<<uint(tag)) != 0 {
					return true
				}
			}
			return false
		},
		IntuitiveFix: "change * in m1 (assign/0) to Sip",
		Options: []metarepair.Option{
			metarepair.WithBudget(metarepair.Budget{CostCutoff: 3.2, MaxPerStructure: 2}),
			metarepair.WithMaxCandidates(14),
		},
	}
}
