// Package scenarios defines the five built-in case studies of §5.3 as
// registered scenario.Specs: Q1 (copy-and-paste error, [31]), Q2
// (forwarding error, [57]), Q3 (uncoordinated policy update, [13]), Q4
// (forgotten packets, [7]), and Q5 (incorrect MAC learning, [4]). Each
// spec embeds a buggy NDlog controller program in a reactive zone
// attached to the Stanford-style campus topology of §5.2, generates a
// workload in which the symptom traffic is a small fraction of the
// total, and exposes the diagnostic query as a missing-tuple goal plus
// an effectiveness predicate.
//
// Importing this package registers Q1–Q5 in the scenario package's
// default registry; the Q1..Q5 and All constructors are convenience
// wrappers that instantiate the same specs directly. Third-party
// scenarios are defined the same way — build a scenario.Spec and
// register it.
package scenarios

import (
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/scenario"
)

// Scale aliases the public scale type so existing call sites read
// naturally: scenarios.Q1(scenarios.Scale{...}).
type Scale = scenario.Scale

// DefaultScale is the base evaluation setting.
func DefaultScale() Scale { return scenario.DefaultScale() }

// Specs returns the five §5.3 case-study specs in paper order.
func Specs() []scenario.Spec {
	return []scenario.Spec{Q1Spec(), Q2Spec(), Q3Spec(), Q4Spec(), Q5Spec()}
}

func init() {
	for _, spec := range Specs() {
		scenario.MustRegister(spec)
	}
}

// Q1 builds the copy-and-paste scenario of §2.3/§5.3 at the given scale.
func Q1(sc Scale) *scenario.Scenario { return Q1Spec().MustInstantiate(sc) }

// Q2 builds the forwarding-error scenario.
func Q2(sc Scale) *scenario.Scenario { return Q2Spec().MustInstantiate(sc) }

// Q3 builds the uncoordinated-policy-update scenario.
func Q3(sc Scale) *scenario.Scenario { return Q3Spec().MustInstantiate(sc) }

// Q4 builds the forgotten-packets scenario.
func Q4(sc Scale) *scenario.Scenario { return Q4Spec().MustInstantiate(sc) }

// Q5 builds the incorrect-MAC-learning scenario.
func Q5(sc Scale) *scenario.Scenario { return Q5Spec().MustInstantiate(sc) }

// All returns the five scenarios at the given scale, in paper order.
func All(sc Scale) []*scenario.Scenario {
	specs := Specs()
	out := make([]*scenario.Scenario, 0, len(specs))
	for _, spec := range specs {
		out = append(out, spec.MustInstantiate(sc))
	}
	return out
}

// campusSources returns trace sources for every fabric host.
func campusSources(f *topo.Fabric) []trace.HostSpec {
	out := make([]trace.HostSpec, 0, len(f.HostIDs))
	for _, id := range f.HostIDs {
		out = append(out, trace.HostSpec{ID: id, IP: f.Net.Hosts[id].IP})
	}
	return out
}

// backgroundServices spreads background traffic across an evenly spaced
// sample of fabric hosts, so the per-host distribution has enough mass
// that symptom-sized changes stay under the KS significance threshold
// while over-general repairs do not. The sample is exact: min(count,
// hosts) distinct hosts, spread across the whole ID range rather than
// clustered at its start.
func backgroundServices(f *topo.Fabric, count int) []trace.Service {
	n := len(f.HostIDs)
	if count > n {
		count = n
	}
	if count <= 0 {
		return nil
	}
	out := make([]trace.Service, 0, count)
	for i := 0; i < count; i++ {
		h := f.Net.Hosts[f.HostIDs[i*n/count]]
		out = append(out, trace.Service{DstIP: h.IP, Port: 9000, Proto: sdn.ProtoTCP, Weight: 1})
	}
	return out
}

// hostSpecAt returns the trace source for the fabric host at index i.
func hostSpecAt(f *topo.Fabric, i int) trace.HostSpec {
	id := f.HostIDs[i]
	return trace.HostSpec{ID: id, IP: f.Net.Hosts[id].IP}
}
