// Package scenarios reproduces the five case studies of §5.3: Q1
// (copy-and-paste error, [31]), Q2 (forwarding error, [57]), Q3
// (uncoordinated policy update, [13]), Q4 (forgotten packets, [7]), and
// Q5 (incorrect MAC learning, [4]). Each scenario embeds a buggy NDlog
// controller program in a reactive zone attached to the Stanford-style
// campus topology of §5.2, generates a workload in which the symptom
// traffic is a small fraction of the total, and exposes the diagnostic
// query as a missing-tuple goal plus an effectiveness predicate. The
// pipeline itself runs through the metarepair.Session API.
package scenarios

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backtest"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/metarepair"
)

// Scale sizes a scenario: the campus switch count (19 reproduces the
// paper's base setting; up to 169 for Figure 9c) and the workload volume.
type Scale struct {
	Switches int
	Flows    int
}

// DefaultScale is the base evaluation setting.
func DefaultScale() Scale { return Scale{Switches: 19, Flows: 900} }

// Scenario is one §5.3 case study.
type Scenario struct {
	Name  string
	Query string // the operator's diagnostic question (Table 1)
	Prog  *ndlog.Program
	State []ndlog.Tuple

	// BuildNet constructs the topology with proactive routes installed
	// and the reactive zone wired (no controller).
	BuildNet func() *sdn.Network
	// Workload is the recorded traffic, generated in memory.
	Workload []trace.Entry
	// Source, when set, streams the recorded traffic instead — e.g. a
	// tracestore view replaying a captured log — so scenario runs never
	// materialize the workload. Takes precedence over Workload.
	Source trace.Source
	// Goal is the missing-tuple symptom (negative symptoms; all five
	// case studies are phrased this way, as in Table 1).
	Goal metaprov.Goal
	// Effective checks whether the symptom is fixed under a tag.
	Effective func(*sdn.Network, *sdn.NDlogController, int) bool
	// IntuitiveFix is a substring of the repair a human operator would
	// choose; it must be generated and accepted.
	IntuitiveFix string
	// Options are the scenario's session options (search budget, candidate
	// cap), matching the paper's per-query cost bounds.
	Options []metarepair.Option
	// MaxPacketInFactor enables the controller-load metric (Q4).
	MaxPacketInFactor float64
}

// Timing is the Figure 9a turnaround breakdown.
type Timing = metarepair.Timing

// Outcome is one end-to-end run: diagnose → generate → backtest.
type Outcome struct {
	Scenario   *Scenario
	Session    *metarepair.Session
	Report     *metarepair.Report
	Candidates []metaprov.Candidate
	Results    []backtest.Result
	Generated  int
	Passed     int
	Timing     Timing
}

// sessionOptions merges scenario tuning with per-call extras.
func (s *Scenario) sessionOptions(extra []metarepair.Option) []metarepair.Option {
	opts := append([]metarepair.Option{}, s.Options...)
	if s.MaxPacketInFactor > 0 {
		opts = append(opts, metarepair.WithMaxPacketInFactor(s.MaxPacketInFactor))
	}
	return append(opts, extra...)
}

// Diagnose replays the workload through the buggy program inside a fresh
// repair session, recording provenance — the run in which the operator
// observes the symptom. The returned session holds the history every
// later pipeline stage consumes.
func (s *Scenario) Diagnose(extra ...metarepair.Option) (*metarepair.Session, time.Duration, error) {
	start := time.Now()
	sess, err := metarepair.NewSession(s.Prog, s.sessionOptions(extra)...)
	if err != nil {
		return nil, 0, err
	}
	net := s.BuildNet()
	ctl := sess.Controller()
	net.Ctrl = ctl
	for _, st := range s.State {
		ctl.InsertState(net, st)
	}
	n, err := trace.ReplaySource(net, s.workloadSource(), 1)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: replaying workload: %w", s.Name, err)
	}
	if s.Source == nil && n != len(s.Workload) {
		return nil, 0, fmt.Errorf("%s: partial replay: %d of %d entries", s.Name, n, len(s.Workload))
	}
	if s.Effective != nil && s.Effective(net, ctl, 0) {
		return nil, 0, fmt.Errorf("%s: bug not reproduced — symptom absent in buggy run", s.Name)
	}
	return sess, time.Since(start), nil
}

// Symptom is the scenario's diagnostic query as a pipeline symptom.
func (s *Scenario) Symptom() metarepair.Symptom {
	return metarepair.Symptom{Goal: s.Goal}
}

// workloadSource streams the scenario's traffic: a captured store view
// when set, otherwise the generated in-memory slice.
func (s *Scenario) workloadSource() trace.Source {
	if s.Source != nil {
		return s.Source
	}
	return trace.SliceSource(s.Workload)
}

// Backtest is the scenario's historical evidence for candidate
// evaluation. The workload is handed over as a stream, so store-backed
// scenarios backtest in O(segment) memory.
func (s *Scenario) Backtest() metarepair.Backtest {
	return metarepair.Backtest{
		BuildNet:  s.BuildNet,
		State:     s.State,
		Workload:  s.Workload,
		Source:    s.workloadSource(),
		Effective: s.Effective,
	}
}

// Run executes the full pipeline and collects the Figure 9a breakdown.
func (s *Scenario) Run(ctx context.Context, extra ...metarepair.Option) (*Outcome, error) {
	sess, replayTime, err := s.Diagnose(extra...)
	if err != nil {
		return nil, err
	}
	rep, err := sess.Repair(ctx, s.Symptom(), s.Backtest())
	if err != nil {
		return nil, err
	}
	return s.outcome(sess, rep, replayTime), nil
}

// outcome folds a report and the diagnostic replay time into the
// scenario-level view.
func (s *Scenario) outcome(sess *metarepair.Session, rep *metarepair.Report, replayTime time.Duration) *Outcome {
	t := rep.Timing
	t.Replay += replayTime
	return &Outcome{
		Scenario:   s,
		Session:    sess,
		Report:     rep,
		Candidates: rep.Candidates,
		Results:    rep.Results,
		Generated:  len(rep.Candidates),
		Passed:     rep.Accepted,
		Timing:     t,
	}
}

// All returns the five scenarios at the given scale.
func All(sc Scale) []*Scenario {
	return []*Scenario{Q1(sc), Q2(sc), Q3(sc), Q4(sc), Q5(sc)}
}

// ByName returns a scenario by its Q-number name, or nil.
func ByName(name string, sc Scale) *Scenario {
	for _, s := range All(sc) {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// zone bundles the shared reactive-zone construction: a campus at the
// requested scale plus scenario switches steered via route overrides.
type zone struct {
	campus *topo.Campus
}

// buildCampus builds the campus and returns it; scenario builders attach
// their zone switches and then install proactive routes with overrides.
func buildCampus(sc Scale) *topo.Campus {
	n := sc.Switches
	if n < 19 {
		n = 19
	}
	return topo.Build(topo.Scaled(n))
}

// campusSources returns trace sources for every campus host.
func campusSources(c *topo.Campus) []trace.HostSpec {
	var out []trace.HostSpec
	for _, id := range c.HostIDs {
		out = append(out, trace.HostSpec{ID: id, IP: c.Net.Hosts[id].IP})
	}
	return out
}

// backgroundServices spreads background traffic across a sample of campus
// hosts, so the per-host distribution has enough mass that symptom-sized
// changes stay under the KS significance threshold while over-general
// repairs do not.
func backgroundServices(c *topo.Campus, count int) []trace.Service {
	var out []trace.Service
	step := len(c.HostIDs) / count
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(c.HostIDs) && len(out) < count; i += step {
		h := c.Net.Hosts[c.HostIDs[i]]
		out = append(out, trace.Service{DstIP: h.IP, Port: 9000, Proto: sdn.ProtoTCP, Weight: 1})
	}
	return out
}
