package scenarios

import (
	"context"
	"strings"
	"testing"
)

// smallScale keeps unit-test runtimes reasonable while preserving the
// workload proportions the KS filter depends on.
func smallScale() Scale { return Scale{Switches: 19, Flows: 700} }

// runScenario executes the full pipeline and applies the Table 1 shape
// checks: candidates generated, a few accepted, the intuitive fix among
// the accepted ones.
func runScenario(t *testing.T, s *Scenario) *Outcome {
	t.Helper()
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if out.Generated == 0 {
		t.Fatalf("%s: no repair candidates generated", s.Name)
	}
	if out.Passed == 0 {
		for _, r := range out.Results {
			t.Logf("%s: %s", s.Name, r)
		}
		t.Fatalf("%s: no candidate passed backtesting", s.Name)
	}
	if out.Passed == out.Generated && out.Generated > 4 {
		t.Fatalf("%s: backtesting filtered nothing (%d/%d)", s.Name, out.Passed, out.Generated)
	}
	found := false
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), s.IntuitiveFix) {
			found = true
			if !r.Accepted {
				for _, rr := range out.Results {
					t.Logf("%s: %s", s.Name, rr)
				}
				t.Fatalf("%s: intuitive fix %q rejected (KS=%.5f, p=%.4g, eff=%v)",
					s.Name, s.IntuitiveFix, r.KS, r.P, r.Effective)
			}
		}
	}
	if !found {
		for _, c := range out.Candidates {
			t.Logf("%s candidate: %s", s.Name, c.Describe())
		}
		t.Fatalf("%s: intuitive fix %q not among candidates", s.Name, s.IntuitiveFix)
	}
	return out
}

func TestQ1EndToEnd(t *testing.T) {
	out := runScenario(t, Q1(smallScale()))
	// Paper band: ~9-13 generated, 2-3 accepted.
	if out.Generated < 5 {
		t.Errorf("Q1 generated %d candidates, want >= 5", out.Generated)
	}
	if out.Passed > out.Generated/2+1 {
		t.Errorf("Q1 accepted %d of %d — filter too lax", out.Passed, out.Generated)
	}
}

func TestQ2EndToEnd(t *testing.T) {
	runScenario(t, Q2(smallScale()))
}

func TestQ3EndToEnd(t *testing.T) {
	out := runScenario(t, Q3(smallScale()))
	// The firewall-bypass repair (deleting the white-list check) must be
	// rejected: it admits the scanners.
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), "delete predicate FwWhite") && r.Accepted {
			t.Errorf("Q3: white-list deletion accepted (KS=%.5f)", r.KS)
		}
	}
}

func TestQ4EndToEnd(t *testing.T) {
	out := runScenario(t, Q4(smallScale()))
	// Head-change repairs degenerate into per-packet forwarding and must
	// be rejected on controller load.
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), "change the head of g1") && r.Accepted {
			t.Errorf("Q4: head change accepted despite PacketIn factor %.1f", r.PacketInFactor)
		}
	}
}

func TestQ5EndToEnd(t *testing.T) {
	runScenario(t, Q5(smallScale()))
}

func TestAllScenariosDistinct(t *testing.T) {
	sc := smallScale()
	names := map[string]bool{}
	for _, s := range All(sc) {
		if names[s.Name] {
			t.Fatalf("duplicate scenario %s", s.Name)
		}
		names[s.Name] = true
		if s.Prog == nil || s.BuildNet == nil || len(s.Workload) == 0 {
			t.Fatalf("%s incomplete", s.Name)
		}
	}
	if ByName("Q3", sc) == nil || ByName("nope", sc) != nil {
		t.Fatal("ByName lookup broken")
	}
}
