package scenarios

import (
	"context"
	"strings"
	"testing"

	"repro/internal/topo"
	"repro/scenario"
)

// smallScale keeps unit-test runtimes reasonable while preserving the
// workload proportions the KS filter depends on.
func smallScale() Scale { return Scale{Switches: 19, Flows: 700} }

// runScenario executes the full pipeline and applies the Table 1 shape
// checks: candidates generated, a few accepted, the intuitive fix among
// the accepted ones.
func runScenario(t *testing.T, s *scenario.Scenario) *scenario.Outcome {
	t.Helper()
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if out.Generated == 0 {
		t.Fatalf("%s: no repair candidates generated", s.Name)
	}
	if out.Passed == 0 {
		for _, r := range out.Results {
			t.Logf("%s: %s", s.Name, r)
		}
		t.Fatalf("%s: no candidate passed backtesting", s.Name)
	}
	if out.Passed == out.Generated && out.Generated > 4 {
		t.Fatalf("%s: backtesting filtered nothing (%d/%d)", s.Name, out.Passed, out.Generated)
	}
	found := false
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), s.IntuitiveFix) {
			found = true
			if !r.Accepted {
				for _, rr := range out.Results {
					t.Logf("%s: %s", s.Name, rr)
				}
				t.Fatalf("%s: intuitive fix %q rejected (KS=%.5f, p=%.4g, eff=%v)",
					s.Name, s.IntuitiveFix, r.KS, r.P, r.Effective)
			}
		}
	}
	if !found {
		for _, c := range out.Candidates {
			t.Logf("%s candidate: %s", s.Name, c.Describe())
		}
		t.Fatalf("%s: intuitive fix %q not among candidates", s.Name, s.IntuitiveFix)
	}
	if !out.IntuitiveFixAccepted() {
		t.Fatalf("%s: IntuitiveFixAccepted disagrees with the per-result scan", s.Name)
	}
	return out
}

func TestQ1EndToEnd(t *testing.T) {
	out := runScenario(t, Q1(smallScale()))
	// Paper band: ~9-13 generated, 2-3 accepted.
	if out.Generated < 5 {
		t.Errorf("Q1 generated %d candidates, want >= 5", out.Generated)
	}
	if out.Passed > out.Generated/2+1 {
		t.Errorf("Q1 accepted %d of %d — filter too lax", out.Passed, out.Generated)
	}
}

func TestQ2EndToEnd(t *testing.T) {
	runScenario(t, Q2(smallScale()))
}

func TestQ3EndToEnd(t *testing.T) {
	out := runScenario(t, Q3(smallScale()))
	// The firewall-bypass repair (deleting the white-list check) must be
	// rejected: it admits the scanners.
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), "delete predicate FwWhite") && r.Accepted {
			t.Errorf("Q3: white-list deletion accepted (KS=%.5f)", r.KS)
		}
	}
}

func TestQ4EndToEnd(t *testing.T) {
	out := runScenario(t, Q4(smallScale()))
	// Head-change repairs degenerate into per-packet forwarding and must
	// be rejected on controller load.
	for _, r := range out.Results {
		if strings.Contains(r.Candidate.Describe(), "change the head of g1") && r.Accepted {
			t.Errorf("Q4: head change accepted despite PacketIn factor %.1f", r.PacketInFactor)
		}
	}
}

func TestQ5EndToEnd(t *testing.T) {
	runScenario(t, Q5(smallScale()))
}

func TestAllScenariosDistinct(t *testing.T) {
	sc := smallScale()
	names := map[string]bool{}
	for _, s := range All(sc) {
		if names[s.Name] {
			t.Fatalf("duplicate scenario %s", s.Name)
		}
		names[s.Name] = true
		if s.Prog == nil || s.BuildNet == nil || len(s.Workload) == 0 {
			t.Fatalf("%s incomplete", s.Name)
		}
	}
}

// TestSpecsRegistered asserts importing this package registers the five
// case studies in the default registry, lookups resolve them, and a typo
// produces the descriptive menu error instead of a nil scenario.
func TestSpecsRegistered(t *testing.T) {
	names := scenario.Names()
	for _, want := range []string{"Q1", "Q2", "Q3", "Q4", "Q5"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not registered (registry: %v)", want, names)
		}
		if _, err := scenario.Lookup(want); err != nil {
			t.Fatalf("Lookup(%s): %v", want, err)
		}
	}
	_, err := scenario.Lookup("Q6")
	if err == nil {
		t.Fatal("Lookup(Q6) must error")
	}
	for _, want := range []string{"Q1", "Q5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("lookup error %q does not list %s", err, want)
		}
	}
}

// TestSpecParity asserts the registry path and the direct constructors
// instantiate identical scenarios: same program, goal, workload, and
// zone wiring — the guarantee that migrating Q1–Q5 onto Specs changed
// nothing about what runs.
func TestSpecParity(t *testing.T) {
	sc := smallScale()
	direct := All(sc)
	for _, want := range direct {
		got, err := scenario.Instantiate(want.Name, sc)
		if err != nil {
			t.Fatalf("Instantiate(%s): %v", want.Name, err)
		}
		if got.Prog.String() != want.Prog.String() {
			t.Fatalf("%s: registry program differs from direct constructor", want.Name)
		}
		if got.Goal.String() != want.Goal.String() {
			t.Fatalf("%s: goal differs: %s vs %s", want.Name, got.Goal, want.Goal)
		}
		if len(got.Workload) != len(want.Workload) {
			t.Fatalf("%s: workload %d vs %d entries", want.Name, len(got.Workload), len(want.Workload))
		}
		for i := range got.Workload {
			if got.Workload[i] != want.Workload[i] {
				t.Fatalf("%s: workload entry %d differs", want.Name, i)
			}
		}
		if len(got.State) != len(want.State) {
			t.Fatalf("%s: state %d vs %d tuples", want.Name, len(got.State), len(want.State))
		}
		gn, wn := got.BuildNet(), want.BuildNet()
		if len(gn.Switches) != len(wn.Switches) || len(gn.Hosts) != len(wn.Hosts) {
			t.Fatalf("%s: networks differ: %d/%d switches, %d/%d hosts",
				want.Name, len(gn.Switches), len(wn.Switches), len(gn.Hosts), len(wn.Hosts))
		}
	}
}

// TestSpecOutcomeParity runs one migrated spec end to end via the
// registry and asserts the outcome matches the direct constructor's:
// same generated and passed counts and the same accepted intuitive fix —
// the seed behaviour, reproduced through the new API.
func TestSpecOutcomeParity(t *testing.T) {
	sc := smallScale()
	ctx := context.Background()
	direct, err := Q1(sc).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := scenario.Instantiate("Q1", sc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := viaRegistry.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Generated != direct.Generated || out.Passed != direct.Passed {
		t.Fatalf("registry run %d/%d, direct run %d/%d",
			out.Generated, out.Passed, direct.Generated, direct.Passed)
	}
	if out.IntuitiveFixAccepted() != direct.IntuitiveFixAccepted() {
		t.Fatal("intuitive-fix verdicts differ between registry and direct runs")
	}
	for i := range out.Results {
		if out.Results[i].Accepted != direct.Results[i].Accepted {
			t.Fatalf("candidate %d verdict differs", i)
		}
	}
}

// TestBackgroundServicesSampling pins the satellite fix: the sample is
// exact at small host counts (all hosts when count >= hosts) and evenly
// spread with no duplicates otherwise.
func TestBackgroundServicesSampling(t *testing.T) {
	build := func(hosts int) *topo.Fabric {
		return topo.Linear{}.Generate(topo.Size{Switches: 2, Hosts: hosts})
	}
	for _, tc := range []struct {
		hosts, count, want int
	}{
		{hosts: 5, count: 12, want: 5},   // fewer hosts than services: take all
		{hosts: 12, count: 12, want: 12}, // exact fit
		{hosts: 13, count: 12, want: 12}, // the old step==0 path clustered here
		{hosts: 259, count: 12, want: 12},
	} {
		svcs := backgroundServices(build(tc.hosts), tc.count)
		if len(svcs) != tc.want {
			t.Fatalf("hosts=%d count=%d: got %d services, want %d",
				tc.hosts, tc.count, len(svcs), tc.want)
		}
		seen := map[int64]bool{}
		for _, s := range svcs {
			if seen[s.DstIP] {
				t.Fatalf("hosts=%d count=%d: duplicate service host %d", tc.hosts, tc.count, s.DstIP)
			}
			seen[s.DstIP] = true
		}
	}
	// Spread: with 2x hosts the sample must span the whole range, not
	// cluster at its start.
	svcs := backgroundServices(build(24), 12)
	last := svcs[len(svcs)-1].DstIP
	first := svcs[0].DstIP
	if last-first < 20 {
		t.Fatalf("sample clustered: spans [%d, %d] of 24 hosts", first, last)
	}
	if backgroundServices(build(4), 0) != nil {
		t.Fatal("count<=0 must yield no services")
	}
}
