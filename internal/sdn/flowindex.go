package sdn

// Tuple-space-search flow-table index (the delta-backtesting fast path).
//
// A shared 63-candidate run installs an entry set roughly proportional to
// the number of diverging candidates, and matchGroups' linear scan over it
// runs once per hop per packet — one of the two dominant costs in the
// Figure 9b profile. The index partitions entries by wildcard signature
// (which of the six match fields are concrete); within a signature every
// entry is an exact match over its concrete fields, so one hash probe per
// signature yields the packet's candidate entries. Lookup then k-way
// merges the per-signature buckets by (priority desc, install seq asc),
// reproducing the linear scan's order exactly: the flat table is kept
// sorted by priority with ties in installation order, which is exactly
// install-seq order, and bucket membership is equivalent to Match.Matches
// (concrete fields equal the packet's, wildcards match anything).
//
// The index is opt-in (Network.EnableFlowIndex, set by delta-mode
// backtests); the flat table remains authoritative for Table(),
// diagnostics, and the full-mode oracle path.

// idxEntry is one indexed flow entry plus its global installation sequence
// (the linear scan's tie-break among equal priorities).
type idxEntry struct {
	e   FlowEntry
	seq int
}

// maskGroup holds all entries sharing one wildcard signature, bucketed by
// their concrete field values; each bucket is kept in (priority desc,
// seq asc) order.
type maskGroup struct {
	sig     uint8
	buckets map[[6]int64][]idxEntry
}

// flowIndex is the per-switch tuple-space index.
type flowIndex struct {
	groups []*maskGroup
	bySig  map[uint8]*maskGroup
	seq    int
}

func newFlowIndex() *flowIndex {
	return &flowIndex{bySig: make(map[uint8]*maskGroup)}
}

// maskSig computes an entry's wildcard signature (bit i set = field i
// concrete) and its bucket key. Field order: InPort, SrcIP, DstIP,
// SrcPort, DstPort, Proto.
func maskSig(m Match) (sig uint8, key [6]int64) {
	fields := [6]*int64{m.InPort, m.SrcIP, m.DstIP, m.SrcPort, m.DstPort, m.Proto}
	for i, f := range fields {
		if f != nil {
			sig |= 1 << uint(i)
			key[i] = *f
		}
	}
	return sig, key
}

// packetKey projects the packet's header onto a signature's concrete
// fields; unset fields stay zero, matching maskSig's encoding.
func packetKey(sig uint8, inPort int64, p Packet) (key [6]int64) {
	vals := [6]int64{inPort, p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto}
	for i := 0; i < 6; i++ {
		if sig&(1<<uint(i)) != 0 {
			key[i] = vals[i]
		}
	}
	return key
}

// install adds an entry, reporting false when an identical earlier entry
// already covers its tag set (the flat table's idempotent re-install).
// The covered-duplicate check only needs this entry's own bucket:
// Match.Equal implies equal signature and key.
func (fi *flowIndex) install(e FlowEntry) bool {
	sig, key := maskSig(e.Match)
	g := fi.bySig[sig]
	if g == nil {
		g = &maskGroup{sig: sig, buckets: make(map[[6]int64][]idxEntry)}
		fi.bySig[sig] = g
		fi.groups = append(fi.groups, g)
	}
	bucket := g.buckets[key]
	for i := range bucket {
		t := &bucket[i].e
		if t.Priority == e.Priority && t.Action == e.Action && e.Tags&^t.Tags == 0 {
			return false
		}
	}
	fi.seq++
	pos := len(bucket)
	for i := range bucket {
		if bucket[i].e.Priority < e.Priority {
			pos = i
			break
		}
	}
	bucket = append(bucket, idxEntry{})
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = idxEntry{e: e, seq: fi.seq}
	g.buckets[key] = bucket
	return true
}

// idxCursor walks one bucket during the lookup merge.
type idxCursor struct {
	bucket []idxEntry
	i      int
}

// matchActionsIndexed is matchActions answered from the index: one bucket
// probe per signature, then a k-way merge in (priority desc, seq asc)
// order — the flat scan's order. Bucket membership already guarantees the
// match, so no Matches call is needed.
func (s *Switch) matchActionsIndexed(inPort int64, p Packet, acts []actionGroup) ([]actionGroup, uint64) {
	remaining := p.Tags
	cursors := s.mcur[:0]
	for _, g := range s.idx.groups {
		if b := g.buckets[packetKey(g.sig, inPort, p)]; len(b) > 0 {
			cursors = append(cursors, idxCursor{bucket: b})
		}
	}
	for remaining != 0 {
		best := -1
		for ci := range cursors {
			c := &cursors[ci]
			if c.i >= len(c.bucket) {
				continue
			}
			if best == -1 {
				best = ci
				continue
			}
			be := &cursors[best].bucket[cursors[best].i]
			ce := &c.bucket[c.i]
			if ce.e.Priority > be.e.Priority ||
				(ce.e.Priority == be.e.Priority && ce.seq < be.seq) {
				best = ci
			}
		}
		if best == -1 {
			break
		}
		ent := &cursors[best].bucket[cursors[best].i]
		cursors[best].i++
		hit := remaining & ent.e.Tags
		if hit == 0 {
			continue
		}
		acts = addAction(acts, ent.e.Action, hit)
		remaining &^= hit
	}
	s.mcur = cursors
	return acts, remaining
}

// EnableFlowIndex routes the switch's matching through the tuple-space
// index. The index is maintained from construction (it answers duplicate
// detection on every install), with sequence numbers in installation
// order — exactly the tie-break the sorted flat table's scan applies
// among equal priorities — so the merge reproduces the scan's order.
func (s *Switch) EnableFlowIndex() { s.indexed = true }

// EnableFlowIndex switches every current and future switch of the network
// to indexed flow-table matching (see Switch.EnableFlowIndex). Delta-mode
// backtests enable it; behavior is identical to the linear-scan path.
func (n *Network) EnableFlowIndex() {
	n.flowIndexed = true
	for _, s := range n.Switches {
		s.EnableFlowIndex()
	}
}
