package sdn

import (
	"testing"
	"testing/quick"

	"repro/internal/ndlog"
)

func ptr(v int64) *int64 { return &v }

func TestMatchSemantics(t *testing.T) {
	pkt := Packet{SrcIP: 10, DstIP: 20, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	cases := []struct {
		name string
		m    Match
		in   int64
		want bool
	}{
		{"wildcard", Match{}, 5, true},
		{"dst port hit", Match{DstPort: ptr(80)}, 5, true},
		{"dst port miss", Match{DstPort: ptr(53)}, 5, false},
		{"in port hit", Match{InPort: ptr(5)}, 5, true},
		{"in port miss", Match{InPort: ptr(6)}, 5, false},
		{"full hit", Match{SrcIP: ptr(10), DstIP: ptr(20), SrcPort: ptr(1000), DstPort: ptr(80), Proto: ptr(int64(ProtoTCP))}, 5, true},
		{"one field off", Match{SrcIP: ptr(10), DstIP: ptr(21)}, 5, false},
	}
	for _, c := range cases {
		if got := c.m.Matches(c.in, pkt); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestSpecificityBounds(t *testing.T) {
	f := func(a, b, c, d, e, g bool) bool {
		m := Match{}
		n := 0
		if a {
			m.InPort = ptr(1)
			n++
		}
		if b {
			m.SrcIP = ptr(1)
			n++
		}
		if c {
			m.DstIP = ptr(1)
			n++
		}
		if d {
			m.SrcPort = ptr(1)
			n++
		}
		if e {
			m.DstPort = ptr(1)
			n++
		}
		if g {
			m.Proto = ptr(1)
			n++
		}
		return m.Specificity() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchStringStable(t *testing.T) {
	m := Match{DstPort: ptr(80), SrcIP: ptr(10)}
	if m.String() != "sip=10,dpt=80" {
		t.Fatalf("render = %q", m.String())
	}
	if (Match{}).String() != "*" {
		t.Fatal("wildcard render broken")
	}
}

// Match.Equal must agree exactly with the String-rendering comparison it
// replaced on the switch install path.
func TestMatchEqualAgreesWithStringEquality(t *testing.T) {
	gen := func(bits uint8, v int64) Match {
		var m Match
		if bits&1 != 0 {
			m.InPort = ptr(v)
		}
		if bits&2 != 0 {
			m.SrcIP = ptr(v + 1)
		}
		if bits&4 != 0 {
			m.DstIP = ptr(v)
		}
		if bits&8 != 0 {
			m.SrcPort = ptr(2 * v)
		}
		if bits&16 != 0 {
			m.DstPort = ptr(80)
		}
		if bits&32 != 0 {
			m.Proto = ptr(v % 3)
		}
		return m
	}
	f := func(aBits, bBits uint8, av, bv int64) bool {
		a, b := gen(aBits, av), gen(bBits, bv)
		return a.Equal(b) == (a.String() == b.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The binary-search insert must keep the seed's order: descending priority,
// ties in installation order.
func TestInstallKeepsStableTieOrder(t *testing.T) {
	s := NewSwitch("s", 1)
	mk := func(prio int, port int) FlowEntry {
		return FlowEntry{Priority: prio, Match: Match{DstPort: ptr(int64(port))}, Action: Action{Kind: ActionOutput, Port: port}, Tags: 1}
	}
	s.Install(mk(1, 10))
	s.Install(mk(3, 20))
	s.Install(mk(1, 30)) // ties with the first: must land after it
	s.Install(mk(2, 40))
	var got []int
	for _, e := range s.Table() {
		got = append(got, e.Action.Port)
	}
	want := []int{20, 40, 10, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("table order = %v, want %v", got, want)
		}
	}
}

func TestFieldPtrWildcard(t *testing.T) {
	if FieldPtr(ndlog.Wild()) != nil {
		t.Fatal("wildcard must become a nil match field")
	}
	if p := FieldPtr(ndlog.Int(7)); p == nil || *p != 7 {
		t.Fatal("integer field broken")
	}
}

// A packet's tag set is always partitioned: every tag either lands in
// exactly one action group or misses — never both, never twice.
func TestMatchGroupsPartitionProperty(t *testing.T) {
	f := func(tags uint64, entries uint8) bool {
		if tags == 0 {
			tags = 1
		}
		s := NewSwitch("s", 1)
		n := int(entries%6) + 1
		for i := 0; i < n; i++ {
			s.Install(FlowEntry{
				Priority: i % 3,
				Match:    Match{},
				Action:   Action{Kind: ActionOutput, Port: i},
				Tags:     tags >> uint(i), // varied, possibly empty sets
			})
		}
		groups, miss := s.matchGroups(0, Packet{Tags: tags})
		var covered uint64
		for _, g := range groups {
			if covered&g != 0 {
				return false // a tag in two groups
			}
			covered |= g
		}
		if covered&miss != 0 {
			return false // a tag both matched and missed
		}
		return covered|miss == tags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
