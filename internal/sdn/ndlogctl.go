package sdn

import (
	"repro/internal/ndlog"
)

// Controller-side table names shared by all NDlog scenario programs. The
// controller inserts PacketIn events; programs derive FlowTable state
// (match fields with * wildcards, action port, -1 = drop) and PacketOut
// events (forward the buffered packet now).
const (
	TablePacketIn  = "PacketIn"
	TableFlowTable = "FlowTable"
	TablePacketOut = "PacketOut"
)

// ControllerLoc is the location value for controller-resident tuples.
var ControllerLoc = ndlog.Str("C")

// NDlogController runs an NDlog program as the SDN controller, translating
// PacketIn events into tuples and derived FlowTable/PacketOut tuples back
// into switch state — the "proxy" between the declarative engine and the
// network in §5.1.
//
// Tuple formats:
//
//	PacketIn(@C, Swi, InPrt, Sip, Dip, Spt, Dpt)
//	FlowTable(@Swi, Sip, Dip, Spt, Dpt, Prt)    (fields may be *; Prt -1 = drop)
//	PacketOut(@Swi, Sip, Dip, Spt, Dpt, Prt)
type NDlogController struct {
	Engine *ndlog.Engine

	// PacketIns counts control-plane events, for the overhead experiments.
	PacketIns int64

	// appBuf backs the appearance list between PacketIns; inPI guards it
	// against re-entrant PacketIns (a derived PacketOut whose forwarding
	// misses on a downstream switch).
	appBuf []ndlog.Tuple
	inPI   bool
}

// FlowTableDecl is the declaration scenario programs use for FlowTable.
const FlowTableDecl = `materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).`

// NewNDlogController wraps an engine.
func NewNDlogController(e *ndlog.Engine) *NDlogController {
	return &NDlogController{Engine: e}
}

// PacketIn implements Controller: it feeds the event into the engine and
// applies every newly derived FlowTable and PacketOut tuple to the network.
func (c *NDlogController) PacketIn(net *Network, sw *Switch, inPort int64, pkt Packet) {
	c.PacketIns++
	ev := ndlog.Tuple{
		Table: TablePacketIn,
		Args: []ndlog.Value{
			ControllerLoc,
			ndlog.Int(sw.Num),
			ndlog.Int(inPort),
			ndlog.Int(pkt.SrcIP),
			ndlog.Int(pkt.DstIP),
			ndlog.Int(pkt.SrcPort),
			ndlog.Int(pkt.DstPort),
		},
		Tags: pkt.Tags,
	}
	if c.inPI {
		for _, tp := range c.Engine.Insert(ev) {
			c.applyDerived(net, sw, pkt, tp)
		}
		return
	}
	c.inPI = true
	appeared := c.Engine.InsertInto(ev, c.appBuf[:0])
	for _, tp := range appeared {
		c.applyDerived(net, sw, pkt, tp)
	}
	c.appBuf = appeared[:0]
	c.inPI = false
}

// InsertState seeds controller state (e.g. policy tables) before traffic.
func (c *NDlogController) InsertState(net *Network, tuples ...ndlog.Tuple) {
	for _, tp := range tuples {
		for _, derived := range c.Engine.Insert(tp) {
			c.applyDerived(net, nil, Packet{}, derived)
		}
	}
}

func (c *NDlogController) applyDerived(net *Network, from *Switch, pkt Packet, tp ndlog.Tuple) {
	switch tp.Table {
	case TableFlowTable:
		if len(tp.Args) != 6 {
			return
		}
		swNum := tp.Args[0]
		target := findSwitch(net, swNum.Int)
		if target == nil {
			return
		}
		m := Match{
			SrcIP:   FieldPtr(tp.Args[1]),
			DstIP:   FieldPtr(tp.Args[2]),
			SrcPort: FieldPtr(tp.Args[3]),
			DstPort: FieldPtr(tp.Args[4]),
		}
		act := Action{Kind: ActionOutput, Port: int(tp.Args[5].Int)}
		if tp.Args[5].Int < 0 {
			act = Action{Kind: ActionDrop}
		}
		target.Install(FlowEntry{
			Priority: m.Specificity(),
			Match:    m,
			Action:   act,
			Tags:     tp.Tags,
		})
	case TablePacketOut:
		if len(tp.Args) != 6 {
			return
		}
		target := findSwitch(net, tp.Args[0].Int)
		if target == nil {
			return
		}
		out := pkt
		if from == nil {
			// A PacketOut injected outside a PacketIn context (a manual
			// "send a packetOut message" repair, Table 6(c) candidate A):
			// synthesize the packet from the tuple's header fields.
			out = Packet{
				SrcIP:   wildZero(tp.Args[1]),
				DstIP:   wildZero(tp.Args[2]),
				SrcPort: wildZero(tp.Args[3]),
				DstPort: wildZero(tp.Args[4]),
			}
		}
		out.Tags = tp.Tags
		net.SendFromSwitch(target, int(tp.Args[5].Int), out)
	}
}

func wildZero(v ndlog.Value) int64 {
	if v.Kind == ndlog.KindWild {
		return 0
	}
	return v.Int
}

func findSwitch(net *Network, num int64) *Switch { return net.SwitchByNum(num) }

// StaticController installs no reactive state; it is used for purely
// proactive networks and as a null controller in overhead baselines.
type StaticController struct{}

// PacketIn implements Controller as a no-op (missed packets die).
func (StaticController) PacketIn(*Network, *Switch, int64, Packet) {}
