package sdn

import (
	"fmt"
	"sort"
)

// Switch is one forwarding element: a numbered switch with ports wired to
// neighbours and a prioritized, tagged flow table.
type Switch struct {
	ID    string
	Num   int64 // numeric ID used by controller programs (Swi)
	ports map[int]string
	table []FlowEntry
}

// NewSwitch creates a switch.
func NewSwitch(id string, num int64) *Switch {
	return &Switch{ID: id, Num: num, ports: make(map[int]string)}
}

// Wire connects a port to a neighbour node (switch or host) by ID.
func (s *Switch) Wire(port int, neighbour string) { s.ports[port] = neighbour }

// PortTo returns the port leading to a neighbour, or -1.
func (s *Switch) PortTo(neighbour string) int {
	for p, n := range s.ports {
		if n == neighbour {
			return p
		}
	}
	return -1
}

// Neighbour returns the node wired to a port ("" if none).
func (s *Switch) Neighbour(port int) string { return s.ports[port] }

// Ports returns the wired ports in ascending order.
func (s *Switch) Ports() []int {
	out := make([]int, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Install adds a flow entry. Re-installing an entry whose tag set is
// already covered by an identical earlier entry is a no-op; otherwise the
// entry is appended, so that ties between equal-priority entries resolve
// by installation order exactly as they would in a per-candidate
// sequential run. (Merging tag sets into earlier entries would silently
// promote a later derivation ahead of the entry that should win the tie.)
func (s *Switch) Install(e FlowEntry) {
	for i := range s.table {
		t := &s.table[i]
		if t.Priority == e.Priority && t.Action == e.Action && t.Match.Equal(e.Match) &&
			e.Tags&^t.Tags == 0 {
			return // fully covered: idempotent re-install
		}
	}
	// Insert after every entry of >= priority: identical order to the
	// seed's append + stable sort, without re-sorting the whole table.
	i := sort.Search(len(s.table), func(i int) bool { return s.table[i].Priority < e.Priority })
	s.table = append(s.table, FlowEntry{})
	copy(s.table[i+1:], s.table[i:])
	s.table[i] = e
}

// ClearTable removes all flow entries.
func (s *Switch) ClearTable() { s.table = nil }

// Table returns a copy of the flow table.
func (s *Switch) Table() []FlowEntry { return append([]FlowEntry(nil), s.table...) }

// matchGroups partitions the packet's tag set by the highest-priority
// matching entry per tag. The remainder mask (tags with no matching entry)
// is returned separately — those tags miss and go to the controller.
func (s *Switch) matchGroups(inPort int64, p Packet) (groups map[Action]uint64, miss uint64) {
	groups = make(map[Action]uint64)
	remaining := p.Tags
	for _, e := range s.table {
		if remaining == 0 {
			break
		}
		hit := remaining & e.Tags
		if hit == 0 || !e.Match.Matches(inPort, p) {
			continue
		}
		groups[e.Action] |= hit
		remaining &^= hit
	}
	return groups, remaining
}

// Host is an end host with an IP; it counts the packets it receives per
// backtesting tag, which is the raw material for the §4.3 metrics.
type Host struct {
	ID     string
	IP     int64
	Switch string // attachment switch ID

	// Received counts delivered packets per tag bit index (0..63).
	Received [64]int64
	// ByPort counts delivered packets per (tag, destination port) for
	// service-level checks (e.g. "H2 receives HTTP requests").
	ByPort map[int64]*[64]int64
	// BySrc counts delivered packets per (tag, source IP) for
	// client-level checks (e.g. "the server receives H1's queries").
	BySrc map[int64]*[64]int64
}

// NewHost creates a host.
func NewHost(id string, ip int64, sw string) *Host {
	return &Host{
		ID: id, IP: ip, Switch: sw,
		ByPort: make(map[int64]*[64]int64),
		BySrc:  make(map[int64]*[64]int64),
	}
}

// deliver records a packet delivery for every tag in the packet's set.
func (h *Host) deliver(p Packet) {
	pp := h.ByPort[p.DstPort]
	if pp == nil {
		pp = &[64]int64{}
		h.ByPort[p.DstPort] = pp
	}
	ps := h.BySrc[p.SrcIP]
	if ps == nil {
		ps = &[64]int64{}
		h.BySrc[p.SrcIP] = ps
	}
	for b := 0; b < 64; b++ {
		if p.Tags&(1<<uint(b)) != 0 {
			h.Received[b]++
			pp[b]++
			ps[b]++
		}
	}
}

// ReceivedFor returns the host's delivered-packet count under one tag.
func (h *Host) ReceivedFor(tag int) int64 { return h.Received[tag] }

// PortCountFor returns deliveries to a destination port under one tag.
func (h *Host) PortCountFor(port int64, tag int) int64 {
	if pp := h.ByPort[port]; pp != nil {
		return pp[tag]
	}
	return 0
}

// SrcCountFor returns deliveries from a source IP under one tag.
func (h *Host) SrcCountFor(src int64, tag int) int64 {
	if ps := h.BySrc[src]; ps != nil {
		return ps[tag]
	}
	return 0
}

// Controller handles PacketIn events: a switch had no matching flow entry
// for (part of) a packet's tag set.
type Controller interface {
	PacketIn(net *Network, sw *Switch, inPort int64, pkt Packet)
}

// PacketCapture observes every packet injected at a host — the hook a
// durable trace store attaches to record live traffic as §5.4 log
// records for later replay. Implementations must tolerate being called
// from whatever goroutine drives injection.
type PacketCapture interface {
	CapturePacket(srcHost string, pkt Packet)
}

// Network is the simulated data plane: switches, hosts, and the controller.
type Network struct {
	Switches map[string]*Switch
	Hosts    map[string]*Host
	Ctrl     Controller

	// Capture, when set, observes every injected packet before
	// forwarding — the attachment point for durable trace recording.
	Capture PacketCapture

	// MaxHops bounds forwarding loops (default 64).
	MaxHops int

	// Stats.
	Delivered int64
	Dropped   int64
	Missed    int64 // packets (or packet forks) that died on a table miss
	PacketIns int64
	Hops      int64
	// PacketInsByTag counts controller PacketIns per backtesting tag,
	// the controller-load metric used to reject repairs that degenerate
	// into per-packet forwarding (§4.3 operator metrics).
	PacketInsByTag [64]int64
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		Switches: make(map[string]*Switch),
		Hosts:    make(map[string]*Host),
		MaxHops:  64,
	}
}

// AddSwitch registers a switch.
func (n *Network) AddSwitch(s *Switch) { n.Switches[s.ID] = s }

// AddHost registers a host and wires it to its switch's next free port.
func (n *Network) AddHost(h *Host) int {
	n.Hosts[h.ID] = h
	sw := n.Switches[h.Switch]
	if sw == nil {
		panic(fmt.Sprintf("sdn: host %s references unknown switch %s", h.ID, h.Switch))
	}
	port := 1
	for sw.ports[port] != "" {
		port++
	}
	sw.Wire(port, h.ID)
	return port
}

// AddHostAt registers a host on a specific switch port (scenario zones
// wire ports explicitly so controller programs can name them).
func (n *Network) AddHostAt(h *Host, port int) {
	n.Hosts[h.ID] = h
	sw := n.Switches[h.Switch]
	if sw == nil {
		panic(fmt.Sprintf("sdn: host %s references unknown switch %s", h.ID, h.Switch))
	}
	sw.Wire(port, h.ID)
}

// Link wires two switches together on their next free ports.
func (n *Network) Link(a, b string) (int, int) {
	sa, sb := n.Switches[a], n.Switches[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("sdn: link between unknown switches %s-%s", a, b))
	}
	pa, pb := 1, 1
	for sa.ports[pa] != "" {
		pa++
	}
	for sb.ports[pb] != "" {
		pb++
	}
	sa.Wire(pa, b)
	sb.Wire(pb, a)
	return pa, pb
}

// HostByIP finds a host by IP (nil if none).
func (n *Network) HostByIP(ip int64) *Host {
	for _, h := range n.Hosts {
		if h.IP == ip {
			return h
		}
	}
	return nil
}

// Inject introduces a packet at a host's attachment switch and forwards it
// until delivery, drop, miss, or hop exhaustion. Packets with a zero tag
// set default to tag bit 0 (the single-variant case).
func (n *Network) Inject(hostID string, pkt Packet) {
	h := n.Hosts[hostID]
	if h == nil {
		return
	}
	if n.Capture != nil {
		n.Capture.CapturePacket(hostID, pkt)
	}
	if pkt.Tags == 0 {
		pkt.Tags = 1
	}
	sw := n.Switches[h.Switch]
	inPort := int64(sw.PortTo(hostID))
	n.forward(sw, inPort, pkt, 0)
}

// SendFromSwitch emits a packet out of a switch port (the PacketOut
// primitive available to controllers).
func (n *Network) SendFromSwitch(sw *Switch, port int, pkt Packet) {
	n.emit(sw, port, pkt, 0)
}

// forward runs the match-and-forward loop at one switch.
func (n *Network) forward(sw *Switch, inPort int64, pkt Packet, hops int) {
	if hops > n.MaxHops {
		n.Dropped++
		return
	}
	n.Hops++
	groups, miss := sw.matchGroups(inPort, pkt)
	if miss != 0 {
		n.Missed++
		if n.Ctrl != nil {
			n.PacketIns++
			for b := 0; b < 64; b++ {
				if miss&(1<<uint(b)) != 0 {
					n.PacketInsByTag[b]++
				}
			}
			mp := pkt
			mp.Tags = miss
			n.Ctrl.PacketIn(n, sw, inPort, mp)
			// Retry the missed tags once against the (possibly) updated
			// table; OpenFlow switches would re-match the buffered packet
			// only if the controller sends a PacketOut, so the retry here
			// happens only for tags that now have entries installed via
			// an explicit PacketOut — the controller calls SendFromSwitch
			// itself. Without a PacketOut, the packet copy dies (Q4).
		}
	}
	// Deterministic per-action processing order.
	type ga struct {
		a    Action
		tags uint64
	}
	var ordered []ga
	for a, tags := range groups {
		ordered = append(ordered, ga{a, tags})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].a.Kind != ordered[j].a.Kind {
			return ordered[i].a.Kind < ordered[j].a.Kind
		}
		return ordered[i].a.Port < ordered[j].a.Port
	})
	for _, g := range ordered {
		fp := pkt
		fp.Tags = g.tags
		switch g.a.Kind {
		case ActionDrop:
			n.Dropped++
		case ActionOutput:
			n.emit(sw, g.a.Port, fp, hops+1)
		}
	}
}

// emit sends a packet out of a switch port to whatever is wired there.
func (n *Network) emit(sw *Switch, port int, pkt Packet, hops int) {
	next := sw.Neighbour(port)
	if next == "" {
		n.Dropped++
		return
	}
	if h, ok := n.Hosts[next]; ok {
		h.deliver(pkt)
		n.Delivered++
		return
	}
	if ns, ok := n.Switches[next]; ok {
		n.forward(ns, int64(ns.PortTo(sw.ID)), pkt, hops)
		return
	}
	n.Dropped++
}

// ResetCounters zeroes delivery statistics (flow tables are kept).
func (n *Network) ResetCounters() {
	n.Delivered, n.Dropped, n.Missed, n.PacketIns, n.Hops = 0, 0, 0, 0, 0
	n.PacketInsByTag = [64]int64{}
	for _, h := range n.Hosts {
		h.Received = [64]int64{}
		h.ByPort = make(map[int64]*[64]int64)
		h.BySrc = make(map[int64]*[64]int64)
	}
}

// HostIDs returns all host IDs sorted.
func (n *Network) HostIDs() []string {
	out := make([]string, 0, len(n.Hosts))
	for id := range n.Hosts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Distribution returns the per-host delivered-packet counts under one tag,
// ordered by host ID — the sample the KS test consumes (§5.3).
func (n *Network) Distribution(tag int) []int64 {
	ids := n.HostIDs()
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = n.Hosts[id].ReceivedFor(tag)
	}
	return out
}
