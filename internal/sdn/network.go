package sdn

import (
	"fmt"
	"math/bits"
	"sort"
)

// Switch is one forwarding element: a numbered switch with ports wired to
// neighbours and a prioritized, tagged flow table.
type Switch struct {
	ID     string
	Num    int64 // numeric ID used by controller programs (Swi)
	ports  map[int]string
	portOf map[string]int // reverse of ports: neighbour -> port
	table  []FlowEntry

	// idx answers duplicate detection on every install (one bucket probe
	// instead of a whole-table scan) and, when indexed is set, matching
	// too (see flowindex.go). The flat table stays authoritative for
	// Table(), diagnostics, and scan matching; while indexed it is kept in
	// raw installation order and sorted on demand.
	idx     *flowIndex
	indexed bool
	mcur    []idxCursor // reusable merge cursors for indexed lookups
}

// NewSwitch creates a switch.
func NewSwitch(id string, num int64) *Switch {
	return &Switch{ID: id, Num: num, ports: make(map[int]string), portOf: make(map[string]int), idx: newFlowIndex()}
}

// Wire connects a port to a neighbour node (switch or host) by ID.
func (s *Switch) Wire(port int, neighbour string) {
	if old, ok := s.ports[port]; ok {
		delete(s.portOf, old)
	}
	s.ports[port] = neighbour
	s.portOf[neighbour] = port
}

// PortTo returns the port leading to a neighbour, or -1.
func (s *Switch) PortTo(neighbour string) int {
	if p, ok := s.portOf[neighbour]; ok {
		return p
	}
	return -1
}

// Neighbour returns the node wired to a port ("" if none).
func (s *Switch) Neighbour(port int) string { return s.ports[port] }

// Ports returns the wired ports in ascending order.
func (s *Switch) Ports() []int {
	out := make([]int, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Install adds a flow entry. Re-installing an entry whose tag set is
// already covered by an identical earlier entry is a no-op; otherwise the
// entry is appended, so that ties between equal-priority entries resolve
// by installation order exactly as they would in a per-candidate
// sequential run. (Merging tag sets into earlier entries would silently
// promote a later derivation ahead of the entry that should win the tie.)
func (s *Switch) Install(e FlowEntry) {
	// The index probes only the entry's own bucket for the covered
	// duplicate (Match.Equal implies the same bucket).
	if !s.idx.install(e) {
		return
	}
	if s.indexed {
		// Matching reads the index, so the flat table is only the
		// Table() snapshot: append in install order, sort on demand.
		s.table = append(s.table, e)
		return
	}
	// Insert after every entry of >= priority: identical order to the
	// seed's append + stable sort, without re-sorting the whole table.
	i := sort.Search(len(s.table), func(i int) bool { return s.table[i].Priority < e.Priority })
	s.table = append(s.table, FlowEntry{})
	copy(s.table[i+1:], s.table[i:])
	s.table[i] = e
}

// ClearTable removes all flow entries.
func (s *Switch) ClearTable() {
	s.table = nil
	s.idx = newFlowIndex()
}

// Table returns a copy of the flow table, highest priority first with
// equal-priority ties in installation order.
func (s *Switch) Table() []FlowEntry {
	out := append([]FlowEntry(nil), s.table...)
	if s.indexed {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	}
	return out
}

// actionGroup is one action and the tag set it won during matching.
type actionGroup struct {
	act  Action
	tags uint64
}

// addAction ORs tags into the action's group, appending a new group when
// the action is new; the distinct-action count per packet is tiny, so a
// linear probe beats a map (and its per-hop allocation).
func addAction(acts []actionGroup, a Action, tags uint64) []actionGroup {
	for i := range acts {
		if acts[i].act == a {
			acts[i].tags |= tags
			return acts
		}
	}
	return append(acts, actionGroup{act: a, tags: tags})
}

// matchActions partitions the packet's tag set by the highest-priority
// matching entry per tag, appending per-action groups to acts (callers
// pass a stack buffer). The remainder mask (tags with no matching entry)
// misses to the controller. The indexed and scan paths enumerate entries
// in the same (priority desc, install order asc) order.
func (s *Switch) matchActions(inPort int64, p Packet, acts []actionGroup) ([]actionGroup, uint64) {
	remaining := p.Tags
	if s.indexed {
		return s.matchActionsIndexed(inPort, p, acts)
	}
	for _, e := range s.table {
		if remaining == 0 {
			break
		}
		hit := remaining & e.Tags
		if hit == 0 || !e.Match.Matches(inPort, p) {
			continue
		}
		acts = addAction(acts, e.Action, hit)
		remaining &^= hit
	}
	return acts, remaining
}

// matchGroups is the map-shaped view of matchActions, kept for tests and
// diagnostics.
func (s *Switch) matchGroups(inPort int64, p Packet) (groups map[Action]uint64, miss uint64) {
	acts, miss := s.matchActions(inPort, p, nil)
	groups = make(map[Action]uint64, len(acts))
	for _, g := range acts {
		groups[g.act] |= g.tags
	}
	return groups, miss
}

// Host is an end host with an IP; it counts the packets it receives per
// backtesting tag, which is the raw material for the §4.3 metrics.
type Host struct {
	ID     string
	IP     int64
	Switch string // attachment switch ID

	// Received counts delivered packets per tag bit index (0..63).
	Received [64]int64
	// ByPort counts delivered packets per (tag, destination port) for
	// service-level checks (e.g. "H2 receives HTTP requests").
	ByPort map[int64]*[64]int64
	// BySrc counts delivered packets per (tag, source IP) for
	// client-level checks (e.g. "the server receives H1's queries").
	BySrc map[int64]*[64]int64
}

// NewHost creates a host.
func NewHost(id string, ip int64, sw string) *Host {
	return &Host{
		ID: id, IP: ip, Switch: sw,
		ByPort: make(map[int64]*[64]int64),
		BySrc:  make(map[int64]*[64]int64),
	}
}

// deliver records a packet delivery for every tag in the packet's set.
func (h *Host) deliver(p Packet) {
	pp := h.ByPort[p.DstPort]
	if pp == nil {
		pp = &[64]int64{}
		h.ByPort[p.DstPort] = pp
	}
	ps := h.BySrc[p.SrcIP]
	if ps == nil {
		ps = &[64]int64{}
		h.BySrc[p.SrcIP] = ps
	}
	for t := p.Tags; t != 0; t &= t - 1 {
		b := bits.TrailingZeros64(t)
		h.Received[b]++
		pp[b]++
		ps[b]++
	}
}

// ReceivedFor returns the host's delivered-packet count under one tag.
func (h *Host) ReceivedFor(tag int) int64 { return h.Received[tag] }

// PortCountFor returns deliveries to a destination port under one tag.
func (h *Host) PortCountFor(port int64, tag int) int64 {
	if pp := h.ByPort[port]; pp != nil {
		return pp[tag]
	}
	return 0
}

// SrcCountFor returns deliveries from a source IP under one tag.
func (h *Host) SrcCountFor(src int64, tag int) int64 {
	if ps := h.BySrc[src]; ps != nil {
		return ps[tag]
	}
	return 0
}

// Controller handles PacketIn events: a switch had no matching flow entry
// for (part of) a packet's tag set.
type Controller interface {
	PacketIn(net *Network, sw *Switch, inPort int64, pkt Packet)
}

// PacketCapture observes every packet injected at a host — the hook a
// durable trace store attaches to record live traffic as §5.4 log
// records for later replay. Implementations must tolerate being called
// from whatever goroutine drives injection.
type PacketCapture interface {
	CapturePacket(srcHost string, pkt Packet)
}

// Network is the simulated data plane: switches, hosts, and the controller.
type Network struct {
	Switches map[string]*Switch
	Hosts    map[string]*Host
	Ctrl     Controller

	// Capture, when set, observes every injected packet before
	// forwarding — the attachment point for durable trace recording.
	Capture PacketCapture

	// MaxHops bounds forwarding loops (default 64).
	MaxHops int

	// flowIndexed records that EnableFlowIndex ran, so switches added
	// later are indexed too.
	flowIndexed bool

	// hostIDCache is the sorted host-ID list Distribution reads, rebuilt
	// whenever the host count changes; byNum finds switches by numeric ID
	// in constant time for the controller's derived-tuple application.
	hostIDCache []string
	byNum       map[int64]*Switch

	// Stats.
	Delivered int64
	Dropped   int64
	Missed    int64 // packets (or packet forks) that died on a table miss
	PacketIns int64
	Hops      int64
	// PacketInsByTag counts controller PacketIns per backtesting tag,
	// the controller-load metric used to reject repairs that degenerate
	// into per-packet forwarding (§4.3 operator metrics).
	PacketInsByTag [64]int64
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		Switches: make(map[string]*Switch),
		Hosts:    make(map[string]*Host),
		MaxHops:  64,
	}
}

// AddSwitch registers a switch.
func (n *Network) AddSwitch(s *Switch) {
	n.Switches[s.ID] = s
	if n.byNum == nil {
		n.byNum = make(map[int64]*Switch)
	}
	n.byNum[s.Num] = s
	if n.flowIndexed {
		s.EnableFlowIndex()
	}
}

// SwitchByNum returns the switch with the given numeric ID (the Swi value
// controller programs use), or nil. Switches registered via AddSwitch are
// found in constant time; direct map writes fall back to a scan.
func (n *Network) SwitchByNum(num int64) *Switch {
	if s, ok := n.byNum[num]; ok && n.Switches[s.ID] == s {
		return s
	}
	for _, s := range n.Switches {
		if s.Num == num {
			return s
		}
	}
	return nil
}

// AddHost registers a host and wires it to its switch's next free port.
func (n *Network) AddHost(h *Host) int {
	n.Hosts[h.ID] = h
	sw := n.Switches[h.Switch]
	if sw == nil {
		panic(fmt.Sprintf("sdn: host %s references unknown switch %s", h.ID, h.Switch))
	}
	port := 1
	for sw.ports[port] != "" {
		port++
	}
	sw.Wire(port, h.ID)
	return port
}

// AddHostAt registers a host on a specific switch port (scenario zones
// wire ports explicitly so controller programs can name them).
func (n *Network) AddHostAt(h *Host, port int) {
	n.Hosts[h.ID] = h
	sw := n.Switches[h.Switch]
	if sw == nil {
		panic(fmt.Sprintf("sdn: host %s references unknown switch %s", h.ID, h.Switch))
	}
	sw.Wire(port, h.ID)
}

// Link wires two switches together on their next free ports.
func (n *Network) Link(a, b string) (int, int) {
	sa, sb := n.Switches[a], n.Switches[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("sdn: link between unknown switches %s-%s", a, b))
	}
	pa, pb := 1, 1
	for sa.ports[pa] != "" {
		pa++
	}
	for sb.ports[pb] != "" {
		pb++
	}
	sa.Wire(pa, b)
	sb.Wire(pb, a)
	return pa, pb
}

// HostByIP finds a host by IP (nil if none).
func (n *Network) HostByIP(ip int64) *Host {
	for _, h := range n.Hosts {
		if h.IP == ip {
			return h
		}
	}
	return nil
}

// Inject introduces a packet at a host's attachment switch and forwards it
// until delivery, drop, miss, or hop exhaustion. Packets with a zero tag
// set default to tag bit 0 (the single-variant case).
func (n *Network) Inject(hostID string, pkt Packet) {
	h := n.Hosts[hostID]
	if h == nil {
		return
	}
	if n.Capture != nil {
		n.Capture.CapturePacket(hostID, pkt)
	}
	if pkt.Tags == 0 {
		pkt.Tags = 1
	}
	sw := n.Switches[h.Switch]
	inPort := int64(sw.PortTo(hostID))
	n.forward(sw, inPort, pkt, 0)
}

// SendFromSwitch emits a packet out of a switch port (the PacketOut
// primitive available to controllers).
func (n *Network) SendFromSwitch(sw *Switch, port int, pkt Packet) {
	n.emit(sw, port, pkt, 0)
}

// forward runs the match-and-forward loop at one switch.
func (n *Network) forward(sw *Switch, inPort int64, pkt Packet, hops int) {
	if hops > n.MaxHops {
		n.Dropped++
		return
	}
	n.Hops++
	var actsBuf [4]actionGroup
	acts, miss := sw.matchActions(inPort, pkt, actsBuf[:0])
	if miss != 0 {
		n.Missed++
		if n.Ctrl != nil {
			n.PacketIns++
			for t := miss; t != 0; t &= t - 1 {
				n.PacketInsByTag[bits.TrailingZeros64(t)]++
			}
			mp := pkt
			mp.Tags = miss
			n.Ctrl.PacketIn(n, sw, inPort, mp)
			// Retry the missed tags once against the (possibly) updated
			// table; OpenFlow switches would re-match the buffered packet
			// only if the controller sends a PacketOut, so the retry here
			// happens only for tags that now have entries installed via
			// an explicit PacketOut — the controller calls SendFromSwitch
			// itself. Without a PacketOut, the packet copy dies (Q4).
		}
	}
	// Deterministic per-action processing order: (kind, port) ascending.
	// Insertion sort keeps the tiny slice on the stack (a sort.Slice
	// closure would force it to the heap on every hop).
	for i := 1; i < len(acts); i++ {
		for j := i; j > 0; j-- {
			a, b := acts[j].act, acts[j-1].act
			if a.Kind < b.Kind || (a.Kind == b.Kind && a.Port < b.Port) {
				acts[j], acts[j-1] = acts[j-1], acts[j]
				continue
			}
			break
		}
	}
	for _, g := range acts {
		fp := pkt
		fp.Tags = g.tags
		switch g.act.Kind {
		case ActionDrop:
			n.Dropped++
		case ActionOutput:
			n.emit(sw, g.act.Port, fp, hops+1)
		}
	}
}

// emit sends a packet out of a switch port to whatever is wired there.
func (n *Network) emit(sw *Switch, port int, pkt Packet, hops int) {
	next := sw.Neighbour(port)
	if next == "" {
		n.Dropped++
		return
	}
	if h, ok := n.Hosts[next]; ok {
		h.deliver(pkt)
		n.Delivered++
		return
	}
	if ns, ok := n.Switches[next]; ok {
		n.forward(ns, int64(ns.PortTo(sw.ID)), pkt, hops)
		return
	}
	n.Dropped++
}

// ResetCounters zeroes delivery statistics (flow tables are kept).
func (n *Network) ResetCounters() {
	n.Delivered, n.Dropped, n.Missed, n.PacketIns, n.Hops = 0, 0, 0, 0, 0
	n.PacketInsByTag = [64]int64{}
	for _, h := range n.Hosts {
		h.Received = [64]int64{}
		h.ByPort = make(map[int64]*[64]int64)
		h.BySrc = make(map[int64]*[64]int64)
	}
}

// HostIDs returns all host IDs sorted.
func (n *Network) HostIDs() []string {
	return append([]string(nil), n.hostIDs()...)
}

// hostIDs returns the sorted-ID cache, rebuilt when hosts were added or
// removed since the last call (callers must not retain or mutate it).
func (n *Network) hostIDs() []string {
	if len(n.hostIDCache) != len(n.Hosts) {
		out := make([]string, 0, len(n.Hosts))
		for id := range n.Hosts {
			out = append(out, id)
		}
		sort.Strings(out)
		n.hostIDCache = out
	}
	return n.hostIDCache
}

// Distribution returns the per-host delivered-packet counts under one tag,
// ordered by host ID — the sample the KS test consumes (§5.3).
func (n *Network) Distribution(tag int) []int64 {
	ids := n.hostIDs()
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = n.Hosts[id].ReceivedFor(tag)
	}
	return out
}
