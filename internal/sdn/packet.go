// Package sdn implements the network substrate the paper's prototype ran
// on: OpenFlow-style switches with prioritized wildcard flow tables, hosts,
// links, and a controller attachment point, simulated in-process as a
// discrete-event system. Packets and flow entries carry backtesting tag
// sets (§4.4), so a single simulation evaluates many repair candidates at
// once: forwarding state shared by all candidates is computed once, and a
// packet only "forks" where candidates' flow tables genuinely diverge.
package sdn

import (
	"fmt"

	"repro/internal/ndlog"
)

// Protocol numbers used by the traffic generator and scenarios.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Well-known ports used throughout the paper's scenarios.
const (
	PortHTTP = 80
	PortDNS  = 53
)

// Packet is a simulated packet header. Tags is the set of repair
// candidates under whose program variant this packet (copy) exists.
type Packet struct {
	SrcIP   int64
	DstIP   int64
	SrcPort int64
	DstPort int64
	Proto   int64
	Tags    uint64
}

// String renders the packet header.
func (p Packet) String() string {
	return fmt.Sprintf("pkt(%d:%d -> %d:%d proto %d)", p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Proto)
}

// ActionKind enumerates flow-entry actions.
type ActionKind uint8

const (
	// ActionOutput forwards out a switch port.
	ActionOutput ActionKind = iota
	// ActionDrop discards the packet.
	ActionDrop
)

// Action is what a matching flow entry does with a packet.
type Action struct {
	Kind ActionKind
	Port int
}

// String renders the action.
func (a Action) String() string {
	if a.Kind == ActionDrop {
		return "drop"
	}
	return fmt.Sprintf("output:%d", a.Port)
}

// Match is an OpenFlow-style wildcard match; nil fields match anything.
type Match struct {
	InPort  *int64
	SrcIP   *int64
	DstIP   *int64
	SrcPort *int64
	DstPort *int64
	Proto   *int64
}

// Matches reports whether the packet (arriving on inPort) satisfies the
// match.
func (m Match) Matches(inPort int64, p Packet) bool {
	check := func(f *int64, v int64) bool { return f == nil || *f == v }
	return check(m.InPort, inPort) &&
		check(m.SrcIP, p.SrcIP) &&
		check(m.DstIP, p.DstIP) &&
		check(m.SrcPort, p.SrcPort) &&
		check(m.DstPort, p.DstPort) &&
		check(m.Proto, p.Proto)
}

// Equal reports whether two matches cover exactly the same header space:
// the same fields wildcarded and the same values on the concrete fields.
// It is the allocation-free equivalent of comparing String() renderings,
// which the switch install path did before the evaluation-core refactor.
func (m Match) Equal(o Match) bool {
	eq := func(a, b *int64) bool {
		if a == nil || b == nil {
			return a == b
		}
		return *a == *b
	}
	return eq(m.InPort, o.InPort) &&
		eq(m.SrcIP, o.SrcIP) &&
		eq(m.DstIP, o.DstIP) &&
		eq(m.SrcPort, o.SrcPort) &&
		eq(m.DstPort, o.DstPort) &&
		eq(m.Proto, o.Proto)
}

// Specificity counts non-wildcard fields; used as the default priority so
// more specific entries win, as in OpenFlow exact-match precedence.
func (m Match) Specificity() int {
	n := 0
	for _, f := range []*int64{m.InPort, m.SrcIP, m.DstIP, m.SrcPort, m.DstPort, m.Proto} {
		if f != nil {
			n++
		}
	}
	return n
}

// String renders the match.
func (m Match) String() string {
	s := ""
	app := func(name string, f *int64) {
		if f != nil {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("%s=%d", name, *f)
		}
	}
	app("in", m.InPort)
	app("sip", m.SrcIP)
	app("dip", m.DstIP)
	app("spt", m.SrcPort)
	app("dpt", m.DstPort)
	app("proto", m.Proto)
	if s == "" {
		return "*"
	}
	return s
}

// FlowEntry is one prioritized, tagged flow-table entry.
type FlowEntry struct {
	Priority int
	Match    Match
	Action   Action
	Tags     uint64
}

// String renders the entry.
func (f FlowEntry) String() string {
	return fmt.Sprintf("[prio %d, %s -> %s]", f.Priority, f.Match.String(), f.Action.String())
}

// FieldPtr converts an NDlog value into a match field: the wildcard value
// becomes nil (match-any), integers become pointers.
func FieldPtr(v ndlog.Value) *int64 {
	if v.Kind == ndlog.KindWild {
		return nil
	}
	x := v.Int
	return &x
}
