package sdn

import (
	"testing"

	"repro/internal/ndlog"
)

// twoSwitchNet builds: h1 -- s1 -- s2 -- h2.
func twoSwitchNet() *Network {
	n := NewNetwork()
	s1, s2 := NewSwitch("s1", 1), NewSwitch("s2", 2)
	n.AddSwitch(s1)
	n.AddSwitch(s2)
	n.Link("s1", "s2")
	n.AddHost(NewHost("h1", 101, "s1"))
	n.AddHost(NewHost("h2", 102, "s2"))
	return n
}

func TestForwardingWithStaticEntries(t *testing.T) {
	n := twoSwitchNet()
	s1, s2 := n.Switches["s1"], n.Switches["s2"]
	dst := int64(102)
	s1.Install(FlowEntry{Priority: 1, Match: Match{DstIP: &dst},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: ndlog.AllTags})
	s2.Install(FlowEntry{Priority: 1, Match: Match{DstIP: &dst},
		Action: Action{Kind: ActionOutput, Port: s2.PortTo("h2")}, Tags: ndlog.AllTags})

	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102, DstPort: PortHTTP, Proto: ProtoTCP})
	if n.Hosts["h2"].ReceivedFor(0) != 1 {
		t.Fatalf("h2 received = %d, want 1", n.Hosts["h2"].ReceivedFor(0))
	}
	if n.Delivered != 1 || n.Missed != 0 {
		t.Fatalf("delivered=%d missed=%d", n.Delivered, n.Missed)
	}
}

func TestMissWithoutControllerDies(t *testing.T) {
	n := twoSwitchNet()
	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102})
	if n.Delivered != 0 || n.Missed != 1 {
		t.Fatalf("delivered=%d missed=%d", n.Delivered, n.Missed)
	}
}

func TestDropAction(t *testing.T) {
	n := twoSwitchNet()
	s1 := n.Switches["s1"]
	s1.Install(FlowEntry{Priority: 0, Match: Match{}, Action: Action{Kind: ActionDrop}, Tags: ndlog.AllTags})
	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102})
	if n.Dropped != 1 || n.Delivered != 0 {
		t.Fatalf("dropped=%d delivered=%d", n.Dropped, n.Delivered)
	}
}

func TestPriorityOrdering(t *testing.T) {
	n := twoSwitchNet()
	s1 := n.Switches["s1"]
	http := int64(PortHTTP)
	// Low-priority drop-all, high-priority forward HTTP.
	s1.Install(FlowEntry{Priority: 0, Match: Match{}, Action: Action{Kind: ActionDrop}, Tags: ndlog.AllTags})
	s1.Install(FlowEntry{Priority: 5, Match: Match{DstPort: &http},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: ndlog.AllTags})
	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102, DstPort: PortHTTP})
	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102, DstPort: 22})
	if n.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the non-HTTP packet)", n.Dropped)
	}
}

func TestTagPartitioning(t *testing.T) {
	// Candidate 0 forwards to h2; candidate 1 drops: one packet carrying
	// both tags must fork.
	n := twoSwitchNet()
	s1, s2 := n.Switches["s1"], n.Switches["s2"]
	s1.Install(FlowEntry{Priority: 1, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: 1})
	s1.Install(FlowEntry{Priority: 1, Match: Match{}, Action: Action{Kind: ActionDrop}, Tags: 2})
	s2.Install(FlowEntry{Priority: 1, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s2.PortTo("h2")}, Tags: ndlog.AllTags})

	n.Inject("h1", Packet{SrcIP: 101, DstIP: 102, Tags: 3})
	h2 := n.Hosts["h2"]
	if h2.ReceivedFor(0) != 1 || h2.ReceivedFor(1) != 0 {
		t.Fatalf("tag0=%d tag1=%d", h2.ReceivedFor(0), h2.ReceivedFor(1))
	}
	if n.Dropped != 1 {
		t.Fatalf("dropped=%d", n.Dropped)
	}
}

func TestInstallIdempotentAndOrderPreserving(t *testing.T) {
	s := NewSwitch("s", 1)
	e := FlowEntry{Priority: 1, Match: Match{}, Action: Action{Kind: ActionDrop}}
	e.Tags = 1
	s.Install(e)
	s.Install(e) // exact duplicate: no-op
	if len(s.Table()) != 1 {
		t.Fatalf("table size = %d, want 1 (idempotent)", len(s.Table()))
	}
	// A later derivation with new tags must NOT merge into the earlier
	// entry: it would jump the priority tie-break queue.
	e.Tags = 2
	s.Install(e)
	if len(s.Table()) != 2 {
		t.Fatalf("table size = %d, want 2 (append, not merge)", len(s.Table()))
	}
	// Tie-break correctness: an intervening output entry installed
	// between two drop derivations must win for the tags it carries.
	s2 := NewSwitch("s2", 2)
	drop := FlowEntry{Priority: 1, Match: Match{}, Action: Action{Kind: ActionDrop}, Tags: 0b10}
	out := FlowEntry{Priority: 1, Match: Match{}, Action: Action{Kind: ActionOutput, Port: 1}, Tags: 0b01}
	s2.Install(drop)
	s2.Install(out)
	dropLate := drop
	dropLate.Tags = 0b01 // same action as the first entry, for tag 0
	s2.Install(dropLate)
	groups, miss := s2.matchGroups(0, Packet{Tags: 0b11})
	if miss != 0 {
		t.Fatalf("missed tags %b", miss)
	}
	if groups[Action{Kind: ActionOutput, Port: 1}] != 0b01 {
		t.Fatalf("tag 0 must go to the output entry installed before the late drop: %v", groups)
	}
}

// reactiveProgram forwards HTTP at switch 1 toward port 2 and drops the
// rest, reactively.
const reactiveProgram = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
fwd FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Dpt == 80, Prt := 2, Swi == 1.
po PacketOut(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Dpt == 80, Prt := 2, Swi == 1.
`

func TestNDlogControllerReactive(t *testing.T) {
	n := twoSwitchNet()
	ctl := NewNDlogController(ndlog.MustNewEngine(ndlog.MustParse("reactive", reactiveProgram)))
	n.Ctrl = ctl
	// Port 2 on s1 is the s1-s2 link (host h1 took port 1 or 2 depending
	// on wiring order; we wired link first, so s1 port 1 = s2, port 2 =
	// h1). Rewire for clarity: find the actual port to s2.
	s1 := n.Switches["s1"]
	portToS2 := s1.PortTo("s2")

	pkt := Packet{SrcIP: 101, DstIP: 102, DstPort: PortHTTP, Proto: ProtoTCP}
	n.Inject("h1", pkt)
	// First packet: miss -> controller -> entry installed + PacketOut.
	if ctl.PacketIns != 1 {
		t.Fatalf("controller packet-ins = %d", ctl.PacketIns)
	}
	if len(s1.Table()) != 1 {
		t.Fatalf("flow table size = %d, want 1", len(s1.Table()))
	}
	if got := s1.Table()[0].Action.Port; got != portToS2 && got != 2 {
		t.Logf("installed port %d (link port %d)", got, portToS2)
	}
	// The PacketOut forwarded the buffered packet; s2 has no entry, so it
	// missed there (controller only handles Swi==1). h2 got nothing yet.
	// Second packet: hits the installed entry without a PacketIn.
	n.Inject("h1", pkt)
	if ctl.PacketIns != 2 { // s2 misses again via PacketOut path
		t.Logf("packet-ins now %d", ctl.PacketIns)
	}
}

func TestHostPortCounts(t *testing.T) {
	n := twoSwitchNet()
	s1, s2 := n.Switches["s1"], n.Switches["s2"]
	s1.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: ndlog.AllTags})
	s2.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s2.PortTo("h2")}, Tags: ndlog.AllTags})
	n.Inject("h1", Packet{DstIP: 102, DstPort: PortHTTP})
	n.Inject("h1", Packet{DstIP: 102, DstPort: PortDNS})
	n.Inject("h1", Packet{DstIP: 102, DstPort: PortHTTP})
	h2 := n.Hosts["h2"]
	if h2.PortCountFor(PortHTTP, 0) != 2 || h2.PortCountFor(PortDNS, 0) != 1 {
		t.Fatalf("http=%d dns=%d", h2.PortCountFor(PortHTTP, 0), h2.PortCountFor(PortDNS, 0))
	}
}

func TestLoopProtection(t *testing.T) {
	// s1 and s2 forward everything to each other: the hop bound must kill
	// the packet.
	n := twoSwitchNet()
	s1, s2 := n.Switches["s1"], n.Switches["s2"]
	s1.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: ndlog.AllTags})
	s2.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s2.PortTo("s1")}, Tags: ndlog.AllTags})
	n.Inject("h1", Packet{DstIP: 999})
	if n.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (loop killed)", n.Dropped)
	}
}

func TestDistribution(t *testing.T) {
	n := twoSwitchNet()
	s1, s2 := n.Switches["s1"], n.Switches["s2"]
	s1.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s1.PortTo("s2")}, Tags: ndlog.AllTags})
	s2.Install(FlowEntry{Priority: 0, Match: Match{},
		Action: Action{Kind: ActionOutput, Port: s2.PortTo("h2")}, Tags: ndlog.AllTags})
	n.Inject("h1", Packet{DstIP: 102})
	d := n.Distribution(0)
	if len(d) != 2 || d[0] != 0 || d[1] != 1 { // h1, h2 sorted
		t.Fatalf("distribution = %v", d)
	}
	n.ResetCounters()
	if n.Distribution(0)[1] != 0 {
		t.Fatal("ResetCounters did not clear host counts")
	}
}
