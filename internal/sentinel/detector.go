package sentinel

import (
	"fmt"
	"math"

	"repro/internal/ndlog"
	"repro/internal/trace"
)

// Config shapes the sliding windows. Times are in trace-timestamp units
// (the workload generator's ticks).
type Config struct {
	// Window is the width of each evaluated window (required, > 0).
	Window int64
	// Hop is the stride between consecutive windows; Window must be a
	// multiple of Hop. Default: Window (tumbling windows).
	Hop int64
	// Debounce suppresses a re-detection of the same predicate whose
	// window starts within this many ticks after the end of the last
	// flagged window. Default (0): Window — overlapping windows flagged
	// by the same burst collapse to one detection. Negative: none.
	Debounce int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Window <= 0 {
		return c, fmt.Errorf("sentinel: window must be positive, got %d", c.Window)
	}
	if c.Hop == 0 {
		c.Hop = c.Window
	}
	if c.Hop <= 0 || c.Window%c.Hop != 0 {
		return c, fmt.Errorf("sentinel: hop %d must be positive and divide window %d", c.Hop, c.Window)
	}
	if c.Debounce == 0 {
		c.Debounce = c.Window
	}
	if c.Debounce < 0 {
		c.Debounce = 0
	}
	return c, nil
}

// Detection is one flagged window.
type Detection struct {
	// Predicate is the flagging predicate's name.
	Predicate string
	// Kind is "missing" or "present".
	Kind string
	// From and To bound the flagged window (inclusive trace times).
	From, To int64
	// Triggers counts the window's symptom-relevant packets.
	Triggers int64
	// Present counts the goal-matching (or unwanted) tuples present in
	// the controller when the window closed.
	Present int64
}

// Stats summarizes a detector's work.
type Stats struct {
	// Entries counts stream entries observed.
	Entries int64
	// Windows counts predicate-windows evaluated.
	Windows int64
	// Detections counts flagged windows emitted.
	Detections int64
	// Debounced counts flagged windows suppressed by debounce.
	Debounced int64
}

// Detector evaluates symptom predicates over sliding windows of a
// trace stream, incrementally: each predicate keeps a ring of
// Window/Hop per-hop trigger buckets plus a presence counter maintained
// from tuple appear/vanish events, so advancing the stream by one hop
// costs O(predicates · ring) — no per-window re-derivation, and no
// dependence on stream length.
//
// A window [from, to] is symptomatic for a missing-tuple predicate
// when at least MinTriggers relevant packets flowed in it and no
// goal-matching tuple was present in the controller at its close; for a
// present-tuple predicate, when the unwanted tuple was present at its
// close. Presence — rather than per-window appearance counts — is what
// makes the check sound on a healthy stream: the engine derives the
// expected tuple once and keeps it, which must satisfy every later
// window too.
//
// The stream's timestamps should be non-decreasing — a live tail's
// are, because captures append in arrival order. A straggler (an entry
// timestamped behind the stream clock) is counted into the current
// bucket rather than dropped: the detector stays sound, but the
// trigger is attributed late. A window is evaluated when the stream
// first passes its end — the caller sees the detection on the entry
// that proves the window complete, or at Flush for the final window.
//
// A Detector is not safe for concurrent use; the Monitor (or Watcher)
// that owns it serializes access.
type Detector struct {
	cfg   Config
	k     int // buckets per window = Window/Hop
	preds []*predState
	// missingOnly allows the silence fast-path: when every predicate is
	// missing-kind, a window without triggers can never flag, so long
	// idle stretches are jumped instead of walked bucket by bucket. A
	// present-kind predicate flags on presence alone, so its windows
	// must all be evaluated.
	missingOnly bool

	started bool
	cur     int64 // current (incomplete) bucket index
	stats   Stats
}

type predState struct {
	p        Predicate
	kind     string
	triggers []int64 // ring: bucket b lives at slot b mod k
	present  int64   // goal/unwanted tuples currently in the controller
	lastTo   int64   // end of the last flagged window (debounce anchor)
}

// NewDetector builds a detector over the given predicates.
func NewDetector(cfg Config, preds ...Predicate) (*Detector, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("sentinel: no predicates registered")
	}
	d := &Detector{cfg: cfg, k: int(cfg.Window / cfg.Hop), missingOnly: true}
	for _, p := range preds {
		if err := p.validate(); err != nil {
			return nil, err
		}
		kind := "missing"
		if p.Present != nil {
			kind = "present"
			d.missingOnly = false
		}
		d.preds = append(d.preds, &predState{
			p: p, kind: kind,
			triggers: make([]int64, d.k),
			lastTo:   math.MinInt64,
		})
	}
	return d, nil
}

// Config returns the normalized configuration.
func (d *Detector) Config() Config { return d.cfg }

// Stats returns counters since creation.
func (d *Detector) Stats() Stats { return d.stats }

func (d *Detector) bucketOf(t int64) int64 {
	b := t / d.cfg.Hop
	if t < 0 && t%d.cfg.Hop != 0 {
		b-- // floor division for negative times
	}
	return b
}

func (d *Detector) slot(b int64) int {
	s := int(b % int64(d.k))
	if s < 0 {
		s += d.k
	}
	return s
}

// Advance moves the stream clock to t, closing — and evaluating — every
// window whose end the clock passes. Call it with each entry's
// timestamp before counting the entry.
func (d *Detector) Advance(t int64) []Detection {
	target := d.bucketOf(t)
	if !d.started {
		d.started = true
		d.cur = target
		return nil
	}
	if target <= d.cur {
		return nil
	}
	var out []Detection
	// Beyond k hops of silence every window is trigger-empty, so with
	// only missing-kind predicates just the k windows still covering the
	// last data bucket can flag: evaluate those, then jump.
	steps := target - d.cur
	if d.missingOnly && steps > int64(d.k) {
		steps = int64(d.k)
	}
	for i := int64(0); i < steps; i++ {
		out = append(out, d.closeBucket(d.cur)...)
		d.cur++
		s := d.slot(d.cur)
		for _, ps := range d.preds {
			ps.triggers[s] = 0
		}
	}
	if d.cur != target {
		d.cur = target
		for _, ps := range d.preds {
			for i := range ps.triggers {
				ps.triggers[i] = 0
			}
		}
	}
	return out
}

// closeBucket evaluates the window ending at bucket b (covering buckets
// b-k+1..b) for every predicate.
func (d *Detector) closeBucket(b int64) []Detection {
	from := (b - int64(d.k) + 1) * d.cfg.Hop
	to := (b+1)*d.cfg.Hop - 1
	var out []Detection
	for _, ps := range d.preds {
		d.stats.Windows++
		var trig int64
		for i := 0; i < d.k; i++ {
			trig += ps.triggers[i]
		}
		flag := false
		if ps.kind == "missing" {
			flag = trig >= ps.p.MinTriggers && ps.present == 0
		} else {
			flag = ps.present >= 1
		}
		if !flag {
			continue
		}
		if ps.lastTo != math.MinInt64 && from <= ps.lastTo+d.cfg.Debounce {
			d.stats.Debounced++
			continue
		}
		ps.lastTo = to
		d.stats.Detections++
		out = append(out, Detection{
			Predicate: ps.p.Name, Kind: ps.kind,
			From: from, To: to, Triggers: trig, Present: ps.present,
		})
	}
	return out
}

// CountTrigger counts one stream entry against every predicate whose
// trigger it satisfies. Call after Advance(e.Time).
func (d *Detector) CountTrigger(e trace.Entry) {
	d.stats.Entries++
	s := d.slot(d.cur)
	for _, ps := range d.preds {
		if ps.p.Trigger(e) {
			ps.triggers[s]++
		}
	}
}

// TupleAppeared updates presence counters for a tuple that became
// present in the controller (including during state seeding, before the
// stream starts).
func (d *Detector) TupleAppeared(t ndlog.Tuple) {
	for _, ps := range d.preds {
		if ps.matches(t) {
			ps.present++
		}
	}
}

// TupleVanished updates presence counters for a tuple that left the
// controller.
func (d *Detector) TupleVanished(t ndlog.Tuple) {
	for _, ps := range d.preds {
		if ps.matches(t) {
			ps.present--
		}
	}
}

func (ps *predState) matches(t ndlog.Tuple) bool {
	if ps.kind == "missing" {
		return matchesGoal(ps.p.Goal, t)
	}
	return matchesTuple(ps.p.Present, t)
}

// Flush closes the window ending at the current bucket — the stream has
// ended, so the in-progress bucket is final. Windows ending after it
// (which would cover only future, unseen time) are not evaluated.
func (d *Detector) Flush() []Detection {
	if !d.started {
		return nil
	}
	return d.closeBucket(d.cur)
}
