package sentinel_test

import (
	"testing"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/sentinel"
	"repro/internal/trace"
)

func entry(t int64, srcIP int64) trace.Entry {
	return trace.Entry{Time: t, SrcHost: "h1", Pkt: sdn.Packet{SrcIP: srcIP, DstIP: 9, DstPort: 80}}
}

func missingPred(name string) sentinel.Predicate {
	v := ndlog.Int(7)
	return sentinel.Predicate{
		Name: name,
		Goal: metaprov.PinnedGoal("Wanted", &v),
		Trigger: func(e trace.Entry) bool {
			return e.Pkt.SrcIP == 7
		},
	}
}

func TestDetectorMissingTumbling(t *testing.T) {
	det, err := sentinel.NewDetector(sentinel.Config{Window: 10}, missingPred("m"))
	if err != nil {
		t.Fatal(err)
	}
	// Five trigger packets in bucket [0,9], no goal tuple.
	for i := int64(1); i <= 5; i++ {
		if ds := det.Advance(i); len(ds) != 0 {
			t.Fatalf("premature detection %v", ds)
		}
		det.CountTrigger(entry(i, 7))
	}
	ds := det.Advance(15) // passes the window end: [0,9] closes
	if len(ds) != 1 {
		t.Fatalf("got %d detections, want 1: %v", len(ds), ds)
	}
	d := ds[0]
	if d.Predicate != "m" || d.Kind != "missing" || d.From != 0 || d.To != 9 || d.Triggers != 5 {
		t.Fatalf("detection %+v", d)
	}
	// The goal tuple appears; later trigger-bearing windows are healthy.
	det.TupleAppeared(ndlog.NewTuple("Wanted", ndlog.Int(7)))
	det.CountTrigger(entry(15, 7))
	if ds := det.Advance(40); len(ds) != 0 {
		t.Fatalf("healthy window flagged: %v", ds)
	}
	// Non-trigger traffic alone never flags (no relevant packets).
	det.CountTrigger(entry(40, 3))
	if ds := det.Flush(); len(ds) != 0 {
		t.Fatalf("idle window flagged: %v", ds)
	}
}

func TestDetectorGoalPatternRespectsPins(t *testing.T) {
	det, err := sentinel.NewDetector(sentinel.Config{Window: 10}, missingPred("m"))
	if err != nil {
		t.Fatal(err)
	}
	det.Advance(1)
	det.CountTrigger(entry(1, 7))
	// A tuple in the right table with the wrong pinned value does not
	// satisfy the goal.
	det.TupleAppeared(ndlog.NewTuple("Wanted", ndlog.Int(8)))
	if ds := det.Flush(); len(ds) != 1 {
		t.Fatalf("mismatched tuple satisfied the goal: %v", ds)
	}
}

func TestDetectorDebounceCollapsesOverlap(t *testing.T) {
	// Sliding windows (hop 5, window 10): one trigger burst flags the
	// first completed window; the overlapping next window is debounced.
	det, err := sentinel.NewDetector(sentinel.Config{Window: 10, Hop: 5}, missingPred("m"))
	if err != nil {
		t.Fatal(err)
	}
	det.Advance(7)
	det.CountTrigger(entry(7, 7))
	ds := det.Advance(60)
	if len(ds) != 1 {
		t.Fatalf("got %d detections, want 1 after debounce: %v", len(ds), ds)
	}
	if det.Stats().Debounced == 0 {
		t.Fatal("no window was debounced")
	}
}

func TestDetectorPresentKind(t *testing.T) {
	bad := ndlog.NewTuple("Unwanted", ndlog.Int(1))
	det, err := sentinel.NewDetector(sentinel.Config{Window: 10, Debounce: -1}, sentinel.Predicate{
		Name:    "p",
		Present: &bad,
		Trigger: func(trace.Entry) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	det.Advance(1)
	det.CountTrigger(entry(1, 3))
	if ds := det.Advance(15); len(ds) != 0 {
		t.Fatalf("flagged before the unwanted tuple existed: %v", ds)
	}
	det.TupleAppeared(bad)
	ds := det.Advance(45) // windows [10,19], [20,29], [30,39] close
	if len(ds) != 3 {
		t.Fatalf("got %d detections, want one per window while present: %v", len(ds), ds)
	}
	det.TupleVanished(bad)
	if ds := det.Flush(); len(ds) != 0 {
		t.Fatalf("flagged after the unwanted tuple vanished: %v", ds)
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	if _, err := sentinel.NewDetector(sentinel.Config{}, missingPred("m")); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := sentinel.NewDetector(sentinel.Config{Window: 10, Hop: 3}, missingPred("m")); err == nil {
		t.Fatal("non-dividing hop accepted")
	}
	if _, err := sentinel.NewDetector(sentinel.Config{Window: 10}); err == nil {
		t.Fatal("no predicates accepted")
	}
	p := missingPred("m")
	p.Present = &ndlog.Tuple{}
	if _, err := sentinel.NewDetector(sentinel.Config{Window: 10}, p); err == nil {
		t.Fatal("both Goal and Present accepted")
	}
}

func TestTriggerFromGoalSchemas(t *testing.T) {
	dip, dpt := ndlog.Int(201), ndlog.Int(80)
	g6 := metaprov.PinnedGoal("FlowTable", nil, nil, &dip, nil, &dpt, nil)
	trig := sentinel.TriggerFromGoal(g6)
	if trig == nil {
		t.Fatal("no trigger from 6-arg goal")
	}
	hit := trace.Entry{Pkt: sdn.Packet{DstIP: 201, DstPort: 80}}
	miss := trace.Entry{Pkt: sdn.Packet{DstIP: 201, DstPort: 53}}
	if !trig(hit) || trig(miss) {
		t.Fatalf("6-arg trigger wrong: hit=%v miss=%v", trig(hit), trig(miss))
	}
	sip := ndlog.Int(241)
	g4 := metaprov.PinnedGoal("Learned", nil, &sip, nil, nil)
	trig4 := sentinel.TriggerFromGoal(g4)
	if trig4 == nil {
		t.Fatal("no trigger from 4-arg learning goal")
	}
	if !trig4(trace.Entry{Pkt: sdn.Packet{SrcIP: 241}}) || trig4(trace.Entry{Pkt: sdn.Packet{SrcIP: 7}}) {
		t.Fatal("4-arg trigger wrong")
	}
	// Unmappable pins (switch number only) yield no trigger.
	swi := ndlog.Int(3)
	if sentinel.TriggerFromGoal(metaprov.PinnedGoal("FlowTable", &swi, nil, nil, nil, nil, nil)) != nil {
		t.Fatal("switch-only pin should not derive a trigger")
	}
}
