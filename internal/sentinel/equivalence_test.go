package sentinel_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/scenarios"
	"repro/internal/sentinel"
	"repro/internal/trace"
	"repro/scenario"
)

// TestOnlineOfflineEquivalence is the detection-equivalence property:
// across all five case studies and several window shapes, the windowed
// online detector (incremental ring buckets, presence counters, stream
// clock) must flag exactly the same windows — same bounds, same counts,
// same order — as the brute-force offline oracle that replays the full
// trace once and evaluates every window independently from recorded
// timelines.
func TestOnlineOfflineEquivalence(t *testing.T) {
	specs := map[string]func(scenarios.Scale) *scenario.Scenario{
		"Q1": scenarios.Q1, "Q2": scenarios.Q2, "Q3": scenarios.Q3,
		"Q4": scenarios.Q4, "Q5": scenarios.Q5,
	}
	shapes := []sentinel.Config{
		{Window: 64},
		{Window: 256, Hop: 64},
		{Window: 1024, Hop: 256},
		{Window: 512, Hop: 512, Debounce: -1},
	}
	scale := scenarios.Scale{Switches: 19, Flows: 200}
	for name, build := range specs {
		s := build(scale)
		stream := timeSorted(s.Workload)
		pred := sentinel.Predicate{Name: name, Goal: s.Goal}
		anyFlag := false
		for _, cfg := range shapes {
			t.Run(fmt.Sprintf("%s/w%d.h%d", name, cfg.Window, cfg.Hop), func(t *testing.T) {
				online := runOnline(t, s, cfg, pred, stream)
				offline, err := sentinel.Offline(s.Prog, s.BuildNet(), s.State, cfg,
					[]sentinel.Predicate{pred}, stream)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(online, offline) {
					t.Fatalf("online ≠ offline\nonline  (%d): %+v\noffline (%d): %+v",
						len(online), online, len(offline), offline)
				}
				if len(online) > 0 {
					anyFlag = true
				}
			})
		}
		if !anyFlag {
			t.Errorf("%s: no window shape flagged the (buggy) scenario at all", name)
		}
	}
}

func runOnline(t *testing.T, s *scenario.Scenario, cfg sentinel.Config, pred sentinel.Predicate, stream []trace.Entry) []sentinel.Detection {
	t.Helper()
	det, err := sentinel.NewDetector(cfg, pred)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := sentinel.NewMonitor(s.Prog, s.BuildNet(), s.State, det)
	if err != nil {
		t.Fatal(err)
	}
	var out []sentinel.Detection
	for _, e := range stream {
		out = append(out, mon.Feed(e)...)
	}
	return append(out, mon.Flush()...)
}

// timeSorted rebuilds the stream as a live capture would deliver it:
// time-ordered arrival. Generated workloads concatenate independently
// clocked sub-traces (symptom flows, then background), so the raw slice
// interleaves timestamps; a stable sort merges them without disturbing
// the relative order of same-tick entries.
func timeSorted(entries []trace.Entry) []trace.Entry {
	out := append([]trace.Entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
