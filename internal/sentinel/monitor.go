package sentinel

import (
	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
)

// Monitor binds a Detector to a live controller: it runs the (possibly
// buggy) program in its own NDlog engine over its own copy of the
// topology, injects each stream entry, and feeds the detector trigger
// counts and tuple presence events. It carries no provenance recorder —
// the monitor only watches; when a window flags, the launcher scopes a
// fresh diagnosis session to that window.
//
// A Monitor is single-threaded by design: one goroutine (the tail
// follower) calls Feed.
type Monitor struct {
	det *Detector
	net *sdn.Network
	ctl *sdn.NDlogController
}

// presenceListener forwards tuple appearance to the detector.
type presenceListener struct {
	ndlog.BaseListener
	det *Detector
}

func (l presenceListener) OnAppear(_ int64, t ndlog.Tuple)    { l.det.TupleAppeared(t) }
func (l presenceListener) OnDisappear(_ int64, t ndlog.Tuple) { l.det.TupleVanished(t) }

// NewMonitor wires a detector to a fresh engine running prog on net,
// seeding the controller state first (presence events fired during
// seeding do count — a policy table satisfying a present-tuple
// predicate is a symptom from the first window).
func NewMonitor(prog *ndlog.Program, net *sdn.Network, state []ndlog.Tuple, det *Detector) (*Monitor, error) {
	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	eng.Listen(presenceListener{det: det})
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	for _, st := range state {
		ctl.InsertState(net, st)
	}
	return &Monitor{det: det, net: net, ctl: ctl}, nil
}

// Detector returns the wrapped detector (stats, config).
func (m *Monitor) Detector() *Detector { return m.det }

// Engine exposes the monitor's engine for instrumentation sampling.
func (m *Monitor) Engine() *ndlog.Engine { return m.ctl.Engine }

// Feed advances the detector clock to the entry's time (closing any
// completed windows), counts the entry's triggers, and injects it into
// the monitored network — tuple derivations surface as presence events
// before the next entry. It returns the detections the entry's arrival
// proved complete.
func (m *Monitor) Feed(e trace.Entry) []Detection {
	out := m.det.Advance(e.Time)
	m.det.CountTrigger(e)
	p := e.Pkt
	p.Tags = 1
	m.net.Inject(e.SrcHost, p)
	return out
}

// Flush closes the final window once the stream has ended.
func (m *Monitor) Flush() []Detection { return m.det.Flush() }
