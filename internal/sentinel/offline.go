package sentinel

import (
	"math"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/sdn"
	"repro/internal/trace"
)

// Offline computes the flagged windows of a full trace by brute force:
// one complete replay records every trigger time and every presence
// change, then each window is evaluated independently by scanning the
// recorded timelines. It shares no windowing machinery with Detector —
// no rings, no hop clock — which is what makes it a meaningful oracle
// for the online≡offline equivalence property: Detector must flag
// exactly the windows Offline does, on any non-decreasing stream.
//
// It evaluates the same window range the online path does: windows
// ending at each hop bucket from the first entry's bucket through the
// last entry's bucket (Detector evaluates these via Advance plus the
// final Flush).
func Offline(prog *ndlog.Program, net *sdn.Network, state []ndlog.Tuple,
	cfg Config, preds []Predicate, entries []trace.Entry) ([]Detection, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	type timeline struct {
		p        Predicate
		kind     string
		triggers []int64 // times of trigger packets, ascending
		deltas   []struct {
			time  int64 // entry time when presence changed
			delta int64
		}
		seed int64 // presence established during state seeding
	}
	lines := make([]*timeline, 0, len(preds))
	for _, p := range preds {
		if err := p.validate(); err != nil {
			return nil, err
		}
		kind := "missing"
		if p.Present != nil {
			kind = "present"
		}
		lines = append(lines, &timeline{p: p, kind: kind})
	}

	eng, err := ndlog.NewEngine(prog)
	if err != nil {
		return nil, err
	}
	// Replay once, recording the timelines. now tracks the stream time a
	// presence change is attributed to; changes before the first entry
	// (state seeding) count as seed presence, in force for every window.
	now := int64(math.MinInt64)
	seeding := true
	record := func(t ndlog.Tuple, delta int64) {
		for _, tl := range lines {
			match := false
			if tl.kind == "missing" {
				match = matchesGoal(tl.p.Goal, t)
			} else {
				match = matchesTuple(tl.p.Present, t)
			}
			if !match {
				continue
			}
			if seeding {
				tl.seed += delta
			} else {
				tl.deltas = append(tl.deltas, struct {
					time  int64
					delta int64
				}{now, delta})
			}
		}
	}
	eng.Listen(recorderListener{record: record})
	ctl := sdn.NewNDlogController(eng)
	net.Ctrl = ctl
	for _, st := range state {
		ctl.InsertState(net, st)
	}
	seeding = false
	for _, e := range entries {
		now = e.Time
		for _, tl := range lines {
			if tl.p.Trigger(e) {
				tl.triggers = append(tl.triggers, e.Time)
			}
		}
		p := e.Pkt
		p.Tags = 1
		net.Inject(e.SrcHost, p)
	}
	if len(entries) == 0 {
		return nil, nil
	}

	bucketOf := func(t int64) int64 {
		b := t / cfg.Hop
		if t < 0 && t%cfg.Hop != 0 {
			b--
		}
		return b
	}
	k := cfg.Window / cfg.Hop
	first := bucketOf(entries[0].Time)
	last := bucketOf(entries[len(entries)-1].Time)

	var out []Detection
	lastTo := make([]int64, len(lines))
	for i := range lastTo {
		lastTo[i] = math.MinInt64
	}
	for b := first; b <= last; b++ {
		from := (b - k + 1) * cfg.Hop
		to := (b+1)*cfg.Hop - 1
		for i, tl := range lines {
			// Triggers in [from, to], by binary search over the sorted
			// trigger times.
			lo := sort.Search(len(tl.triggers), func(j int) bool { return tl.triggers[j] >= from })
			hi := sort.Search(len(tl.triggers), func(j int) bool { return tl.triggers[j] > to })
			trig := int64(hi - lo)
			// Presence at window close: seed plus every change
			// attributed to a time <= to.
			present := tl.seed
			for _, d := range tl.deltas {
				if d.time > to {
					break
				}
				present += d.delta
			}
			flag := false
			if tl.kind == "missing" {
				flag = trig >= tl.p.MinTriggers && present == 0
			} else {
				flag = present >= 1
			}
			if !flag {
				continue
			}
			if lastTo[i] != math.MinInt64 && from <= lastTo[i]+cfg.Debounce {
				continue
			}
			lastTo[i] = to
			out = append(out, Detection{
				Predicate: tl.p.Name, Kind: tl.kind,
				From: from, To: to, Triggers: trig, Present: present,
			})
		}
	}
	return out, nil
}

type recorderListener struct {
	ndlog.BaseListener
	record func(t ndlog.Tuple, delta int64)
}

func (l recorderListener) OnAppear(_ int64, t ndlog.Tuple)    { l.record(t, 1) }
func (l recorderListener) OnDisappear(_ int64, t ndlog.Tuple) { l.record(t, -1) }
