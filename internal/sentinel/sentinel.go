// Package sentinel closes the paper's loop: instead of an operator
// noticing a symptom and running explore→backtest offline, sentinel
// watches a live trace stream, evaluates registered symptom predicates
// over sliding windows incrementally (per-bucket counters, not a
// re-derivation per window), and reports the offending window so a
// repair session can be scoped to exactly the traffic that exhibited
// the bug.
//
// The package is deliberately split from the repair pipeline: a
// Detector is pure windowing arithmetic over trigger/match counts; a
// Monitor binds a detector to a real NDlog engine and network so the
// counts come from live derivations; the repair launcher lives in the
// public metarepair package (Watcher), which also owns debounce across
// repairs, concurrency bounds, and sink events.
package sentinel

import (
	"fmt"

	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/trace"
)

// Predicate is one registered symptom to watch for. Exactly one of Goal
// (missing-tuple: the window is symptomatic when relevant traffic
// flowed but no tuple matching the goal pattern appeared) or Present
// (present-tuple: the window is symptomatic when the unwanted tuple
// appeared) must be set.
type Predicate struct {
	// Name keys the predicate — by convention the scenario name.
	Name string
	// Goal is the missing-tuple pattern: pinned args must match, free
	// args match anything (same shape as the diagnostic query).
	Goal metaprov.Goal
	// Present is the unwanted tuple for positive symptoms.
	Present *ndlog.Tuple
	// Trigger marks stream entries as symptom-relevant traffic: a
	// missing-tuple window only flags when at least MinTriggers relevant
	// packets flowed (otherwise an idle window would count as broken).
	// nil derives a trigger from the goal's pinned header fields.
	Trigger func(trace.Entry) bool
	// MinTriggers is the relevant-traffic threshold (default 1).
	MinTriggers int64
}

// validate normalizes the predicate and resolves its trigger.
func (p *Predicate) validate() error {
	if p.Name == "" {
		return fmt.Errorf("sentinel: predicate needs a name")
	}
	hasGoal := p.Goal.Table != ""
	if hasGoal == (p.Present != nil) {
		return fmt.Errorf("sentinel: predicate %s: exactly one of Goal or Present must be set", p.Name)
	}
	if p.MinTriggers <= 0 {
		p.MinTriggers = 1
	}
	if p.Trigger == nil {
		if hasGoal {
			p.Trigger = TriggerFromGoal(p.Goal)
		}
		if p.Trigger == nil {
			return fmt.Errorf("sentinel: predicate %s: no trigger derivable; set Trigger explicitly", p.Name)
		}
	}
	return nil
}

// TriggerFromGoal derives a packet trigger from a goal's pinned
// arguments, using the controller schemas the five case studies share:
// 6-argument event tables are (Swi, Sip, Dip, Spt, Dpt, ...) — pins on
// positions 1–4 become header equalities — and 4-argument learning
// tables are (C, Sip, Swi, InPrt) — a pin on position 1 matches the
// source address. Returns nil when no pinned argument maps to a header
// field (the caller must then supply an explicit trigger).
func TriggerFromGoal(g metaprov.Goal) func(trace.Entry) bool {
	type fieldPin struct {
		field func(trace.Entry) int64
		want  int64
	}
	pos := map[int]func(trace.Entry) int64{}
	switch {
	case len(g.Args) >= 6:
		pos[1] = func(e trace.Entry) int64 { return e.Pkt.SrcIP }
		pos[2] = func(e trace.Entry) int64 { return e.Pkt.DstIP }
		pos[3] = func(e trace.Entry) int64 { return e.Pkt.SrcPort }
		pos[4] = func(e trace.Entry) int64 { return e.Pkt.DstPort }
	case len(g.Args) == 4:
		pos[1] = func(e trace.Entry) int64 { return e.Pkt.SrcIP }
	}
	var pins []fieldPin
	for i, a := range g.Args {
		if a.Var != "" || a.Val.Kind != ndlog.KindInt {
			continue
		}
		if f, ok := pos[i]; ok {
			pins = append(pins, fieldPin{field: f, want: a.Val.Int})
		}
	}
	if len(pins) == 0 {
		return nil
	}
	return func(e trace.Entry) bool {
		for _, p := range pins {
			if p.field(e) != p.want {
				return false
			}
		}
		return true
	}
}

// matchesGoal reports whether a concrete tuple satisfies the goal
// pattern: same table, same arity, every pinned argument equal.
func matchesGoal(g metaprov.Goal, t ndlog.Tuple) bool {
	if t.Table != g.Table || len(t.Args) != len(g.Args) {
		return false
	}
	for i, a := range g.Args {
		if a.Var != "" {
			continue
		}
		if !t.Args[i].Equal(a.Val) {
			return false
		}
	}
	return true
}

// matchesTuple reports table+args equality (tags ignored: the live
// monitor runs the unmodified program, so every tuple carries tag 1).
func matchesTuple(want *ndlog.Tuple, t ndlog.Tuple) bool {
	if t.Table != want.Table || len(t.Args) != len(want.Args) {
		return false
	}
	for i := range want.Args {
		if !t.Args[i].Equal(want.Args[i]) {
			return false
		}
	}
	return true
}
