// Package solver implements the constraint back-end for meta provenance
// (§3.4 and §5.1 of the paper). Constraint pools are conjunctions of
// comparisons between tuple attributes (variables) and constants, plus
// primary-key implications. The paper used a "mini-solver" for trivial
// pools and handed the rest to Z3; this package provides both stages in
// one solver: a propagation fast path for pools of pure equalities, and a
// bounded backtracking search over candidate values for everything else.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ndlog"
)

// Term is one side of a constraint: either a variable (possibly with an
// integer offset, e.g. X+1) or a constant value.
type Term struct {
	Var string      // variable name; empty for constants
	Val ndlog.Value // constant value when Var == ""
	Off int64       // integer offset added to the variable's value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// VOff returns a variable-plus-offset term.
func VOff(name string, off int64) Term { return Term{Var: name, Off: off} }

// C returns a constant term.
func C(v ndlog.Value) Term { return Term{Val: v} }

// CInt returns an integer constant term.
func CInt(n int64) Term { return Term{Val: ndlog.Int(n)} }

// String renders the term.
func (t Term) String() string {
	if t.Var == "" {
		return t.Val.String()
	}
	if t.Off == 0 {
		return t.Var
	}
	return fmt.Sprintf("%s%+d", t.Var, t.Off)
}

// Constraint is a comparison between two terms, optionally guarded by a
// condition (Cond ⇒ L Op R), which encodes the paper's primary-key
// consistency implications. Hard constraints must hold in every assignment,
// including negated ones; soft constraints are the derivation conditions
// that SolveNegation is allowed to violate.
type Constraint struct {
	Op   ndlog.BinOp
	L, R Term
	Cond []Constraint
	Hard bool
}

// Eq builds L == R.
func Eq(l, r Term) Constraint { return Constraint{Op: ndlog.OpEq, L: l, R: r} }

// Cmp builds L op R.
func Cmp(l Term, op ndlog.BinOp, r Term) Constraint { return Constraint{Op: op, L: l, R: r} }

// String renders the constraint.
func (c Constraint) String() string {
	s := fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
	if len(c.Cond) > 0 {
		var conds []string
		for _, cc := range c.Cond {
			conds = append(conds, cc.String())
		}
		s = fmt.Sprintf("(%s) => %s", strings.Join(conds, " && "), s)
	}
	if c.Hard {
		s += " [hard]"
	}
	return s
}

// Negate returns the logical negation of the comparison.
func (c Constraint) Negate() Constraint {
	n := c
	switch c.Op {
	case ndlog.OpEq:
		n.Op = ndlog.OpNe
	case ndlog.OpNe:
		n.Op = ndlog.OpEq
	case ndlog.OpLt:
		n.Op = ndlog.OpGe
	case ndlog.OpGe:
		n.Op = ndlog.OpLt
	case ndlog.OpGt:
		n.Op = ndlog.OpLe
	case ndlog.OpLe:
		n.Op = ndlog.OpGt
	}
	return n
}

// Assignment maps variable names to concrete values.
type Assignment map[string]ndlog.Value

// Pool is a conjunction of constraints over named variables (§3.4).
type Pool struct {
	Constraints []Constraint
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Add appends constraints to the pool.
func (p *Pool) Add(cs ...Constraint) { p.Constraints = append(p.Constraints, cs...) }

// Clone deep-copies the pool.
func (p *Pool) Clone() *Pool {
	q := &Pool{Constraints: make([]Constraint, len(p.Constraints))}
	copy(q.Constraints, p.Constraints)
	return q
}

// String renders the pool, one constraint per line.
func (p *Pool) String() string {
	var b strings.Builder
	for _, c := range p.Constraints {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Vars returns the sorted variable names mentioned anywhere in the pool.
func (p *Pool) Vars() []string {
	set := make(map[string]struct{})
	var walk func(cs []Constraint)
	walk = func(cs []Constraint) {
		for _, c := range cs {
			if c.L.Var != "" {
				set[c.L.Var] = struct{}{}
			}
			if c.R.Var != "" {
				set[c.R.Var] = struct{}{}
			}
			walk(c.Cond)
		}
	}
	walk(p.Constraints)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Stats counts solver activity for the mini-solver ablation benchmark.
type Stats struct {
	MiniSolved int64 // pools fully solved by equality propagation
	Searched   int64 // pools requiring backtracking search
	Backtracks int64
}

// Solver finds assignments for pools. The zero value is ready to use; a
// shared Solver accumulates Stats across calls.
type Solver struct {
	Stats Stats
	// MaxBacktracks bounds search effort (0 means DefaultMaxBacktracks).
	MaxBacktracks int
}

// DefaultMaxBacktracks bounds the search for pathological pools.
const DefaultMaxBacktracks = 100000

// Solve finds a satisfying assignment for the conjunction of all
// constraints in the pool, or reports ok=false if none exists within the
// search bound. Trivial pools (only equalities) are solved by propagation,
// matching the paper's mini-solver fast path.
func (s *Solver) Solve(p *Pool) (Assignment, bool) {
	if asg, done, ok := s.miniSolve(p); done {
		return asg, ok
	}
	s.Stats.Searched++
	return s.search(p.Constraints)
}

// SolveNegation finds an assignment that satisfies every hard constraint
// but violates at least one soft constraint — the negation step of §4.2.
// It tries soft constraints in order, preferring assignments that break
// earlier (more fundamental) derivation conditions.
func (s *Solver) SolveNegation(p *Pool) (Assignment, bool) {
	var hard []Constraint
	var softIdx []int
	for i, c := range p.Constraints {
		if c.Hard {
			hard = append(hard, c)
		} else {
			softIdx = append(softIdx, i)
		}
	}
	for _, i := range softIdx {
		cs := append(append([]Constraint{}, hard...), p.Constraints[i].Negate())
		if asg, ok := s.search(cs); ok {
			return asg, true
		}
	}
	return nil, false
}

// miniSolve handles pools consisting solely of unconditional equalities by
// union-find style propagation. done=false means the pool needs search.
func (s *Solver) miniSolve(p *Pool) (asg Assignment, done, ok bool) {
	for _, c := range p.Constraints {
		if c.Op != ndlog.OpEq || len(c.Cond) > 0 || c.L.Off != 0 || c.R.Off != 0 {
			return nil, false, false
		}
	}
	asg = make(Assignment)
	// Fixed-point propagation of var=const and var=var bindings.
	pending := append([]Constraint{}, p.Constraints...)
	for {
		progress := false
		var next []Constraint
		for _, c := range pending {
			lv, lok := resolveTerm(c.L, asg)
			rv, rok := resolveTerm(c.R, asg)
			switch {
			case lok && rok:
				if !lv.Equal(rv) {
					return nil, true, false
				}
			case lok && !rok:
				asg[c.R.Var] = lv
				progress = true
			case rok && !lok:
				asg[c.L.Var] = rv
				progress = true
			default:
				next = append(next, c)
			}
		}
		pending = next
		if len(pending) == 0 {
			s.Stats.MiniSolved++
			return asg, true, true
		}
		if !progress {
			// Var=var chains with no constant anchor: assign zero to a
			// representative and keep going.
			c := pending[0]
			asg[c.L.Var] = ndlog.Int(0)
		}
	}
}

func resolveTerm(t Term, asg Assignment) (ndlog.Value, bool) {
	if t.Var == "" {
		return t.Val, true
	}
	v, ok := asg[t.Var]
	if !ok {
		return ndlog.Value{}, false
	}
	if t.Off != 0 {
		if v.Kind != ndlog.KindInt {
			return ndlog.Value{}, false
		}
		v = ndlog.Int(v.Int + t.Off)
	}
	return v, true
}

// evalConstraint evaluates a constraint under a partial assignment.
// It returns (satisfied, decidable): decidable=false when a term is
// unbound or a condition is not yet decidable.
func evalConstraint(c Constraint, asg Assignment) (bool, bool) {
	for _, cond := range c.Cond {
		ok, dec := evalConstraint(cond, asg)
		if !dec {
			return false, false
		}
		if !ok {
			return true, true // guard false: implication vacuously holds
		}
	}
	lv, lok := resolveTerm(c.L, asg)
	rv, rok := resolveTerm(c.R, asg)
	if !lok || !rok {
		return false, false
	}
	res, err := ndlog.EvalOp(c.Op, lv, rv)
	if err != nil {
		return false, true
	}
	return res.IsTrue(), true
}

// search performs equality propagation followed by candidate-value
// backtracking over the remaining variables. Candidates for each variable
// are the constants appearing in the pool plus off-by-one neighbours —
// the paper's observation that real bugs are small edits (§3.5) makes
// these the natural repair values.
func (s *Solver) search(cs []Constraint) (Assignment, bool) {
	asg := make(Assignment)
	// Stage 1: propagate unconditional equalities (with offsets) to a
	// fixed point; this grounds the bulk of the pool so the backtracking
	// stage only handles the genuinely combinatorial remainder.
	for {
		progress := false
		for _, c := range cs {
			if c.Op != ndlog.OpEq || len(c.Cond) > 0 {
				continue
			}
			lv, lok := resolveTerm(c.L, asg)
			rv, rok := resolveTerm(c.R, asg)
			switch {
			case lok && rok:
				if !lv.Equal(rv) {
					return nil, false
				}
			case lok && !rok:
				if v, ok := invertOffset(lv, c.R.Off); ok {
					asg[c.R.Var] = v
					progress = true
				}
			case rok && !lok:
				if v, ok := invertOffset(rv, c.L.Off); ok {
					asg[c.L.Var] = v
					progress = true
				}
			}
		}
		if !progress {
			break
		}
	}
	var vars []string
	for _, v := range (&Pool{Constraints: cs}).Vars() {
		if _, bound := asg[v]; !bound {
			vars = append(vars, v)
		}
	}
	cands := candidateValues(cs)
	for _, v := range asg {
		cands = append(cands, v)
		if v.Kind == ndlog.KindInt {
			cands = append(cands, ndlog.Int(v.Int+1), ndlog.Int(v.Int-1))
		}
	}
	cands = dedupValues(cands)
	if len(cands) == 0 {
		cands = []ndlog.Value{ndlog.Int(0)}
	}
	limit := s.MaxBacktracks
	if limit <= 0 {
		limit = DefaultMaxBacktracks
	}
	budget := limit
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if budget <= 0 {
			return false
		}
		if i == len(vars) {
			for _, c := range cs {
				ok, dec := evalConstraint(c, asg)
				if !dec || !ok {
					return false
				}
			}
			return true
		}
		for _, v := range cands {
			asg[vars[i]] = v
			consistent := true
			for _, c := range cs {
				ok, dec := evalConstraint(c, asg)
				if dec && !ok {
					consistent = false
					break
				}
			}
			if consistent && dfs(i+1) {
				return true
			}
			budget--
			s.Stats.Backtracks++
			delete(asg, vars[i])
		}
		return false
	}
	if dfs(0) {
		return asg, true
	}
	return nil, false
}

// candidateValues collects every constant in the constraint set, plus ±1
// neighbours of integers (to satisfy strict inequalities), deduplicated
// and deterministically ordered.
func candidateValues(cs []Constraint) []ndlog.Value {
	set := make(map[string]ndlog.Value)
	add := func(v ndlog.Value) {
		set[v.Key()] = v
		if v.Kind == ndlog.KindInt {
			set[ndlog.Int(v.Int+1).Key()] = ndlog.Int(v.Int + 1)
			set[ndlog.Int(v.Int-1).Key()] = ndlog.Int(v.Int - 1)
		}
	}
	var walk func(cs []Constraint)
	walk = func(cs []Constraint) {
		for _, c := range cs {
			if c.L.Var == "" {
				add(c.L.Val)
			}
			if c.R.Var == "" {
				add(c.R.Val)
			}
			walk(c.Cond)
		}
	}
	walk(cs)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ndlog.Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, set[k])
	}
	return out
}

// invertOffset solves x + off == val for x.
func invertOffset(val ndlog.Value, off int64) (ndlog.Value, bool) {
	if off == 0 {
		return val, true
	}
	if val.Kind != ndlog.KindInt {
		return ndlog.Value{}, false
	}
	return ndlog.Int(val.Int - off), true
}

// dedupValues removes duplicates preserving deterministic order.
func dedupValues(vals []ndlog.Value) []ndlog.Value {
	seen := make(map[string]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Check reports whether a full assignment satisfies the pool.
func Check(p *Pool, asg Assignment) bool {
	for _, c := range p.Constraints {
		ok, dec := evalConstraint(c, asg)
		if !dec || !ok {
			return false
		}
	}
	return true
}
