package solver

import (
	"testing"
	"testing/quick"

	"repro/internal/ndlog"
)

func TestMiniSolverEqualities(t *testing.T) {
	// The paper's Figure 6 pool: Const0.Val = 3, Const0.Rul = r7,
	// Const0.ID = 2.
	p := NewPool()
	p.Add(Eq(V("Const0.Val"), CInt(3)))
	p.Add(Eq(V("Const0.Rul"), C(ndlog.Str("r7"))))
	p.Add(Eq(V("Const0.ID"), CInt(2)))
	var s Solver
	asg, ok := s.Solve(p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if asg["Const0.Val"].Int != 3 || asg["Const0.Rul"].Str != "r7" {
		t.Fatalf("assignment = %v", asg)
	}
	if s.Stats.MiniSolved != 1 || s.Stats.Searched != 0 {
		t.Fatalf("mini-solver not used: %+v", s.Stats)
	}
}

func TestMiniSolverChains(t *testing.T) {
	p := NewPool()
	p.Add(Eq(V("A"), V("B")))
	p.Add(Eq(V("B"), V("C")))
	p.Add(Eq(V("C"), CInt(42)))
	var s Solver
	asg, ok := s.Solve(p)
	if !ok || asg["A"].Int != 42 {
		t.Fatalf("chain propagation failed: %v ok=%v", asg, ok)
	}
}

func TestMiniSolverConflict(t *testing.T) {
	p := NewPool()
	p.Add(Eq(V("A"), CInt(1)))
	p.Add(Eq(V("A"), CInt(2)))
	var s Solver
	if _, ok := s.Solve(p); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestSearchJointConstraints(t *testing.T) {
	// The §3.4 example: A(x,y) :- B(x), C(x,y), x+y>1, x>0 with A0.y == 2.
	p := NewPool()
	p.Add(Eq(V("A0.y"), CInt(2)))
	p.Add(Eq(V("B0.x"), V("C0.x")))
	p.Add(Cmp(V("B0.x"), ndlog.OpGt, CInt(0)))
	p.Add(Cmp(VOff("C0.x", 0), ndlog.OpGt, VOff("C0.y", -1))) // x > y-1 <=> x+y>1 given y=2... keep explicit below
	p.Add(Eq(V("A0.x"), V("C0.x")))
	p.Add(Eq(V("A0.y"), V("C0.y")))
	var s Solver
	asg, ok := s.Solve(p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if asg["A0.y"].Int != 2 || asg["C0.y"].Int != 2 {
		t.Fatalf("y not pinned: %v", asg)
	}
	if asg["B0.x"].Int != asg["C0.x"].Int || asg["B0.x"].Int <= 0 {
		t.Fatalf("join/positivity violated: %v", asg)
	}
	if !Check(p, asg) {
		t.Fatalf("Check rejects solver's own assignment: %v", asg)
	}
}

func TestSearchInequalities(t *testing.T) {
	// Change Swi==2 to Swi==V such that V equals 3 (the historical switch).
	p := NewPool()
	p.Add(Eq(V("V"), CInt(3)))
	p.Add(Cmp(V("V"), ndlog.OpNe, CInt(2))) // must differ from the buggy constant
	var s Solver
	asg, ok := s.Solve(p)
	if !ok || asg["V"].Int != 3 {
		t.Fatalf("asg = %v ok = %v", asg, ok)
	}
}

func TestSearchStrictInequalityNeighbours(t *testing.T) {
	// V > 5 and V < 7 forces V = 6, reachable only via ±1 candidates.
	p := NewPool()
	p.Add(Cmp(V("V"), ndlog.OpGt, CInt(5)))
	p.Add(Cmp(V("V"), ndlog.OpLt, CInt(7)))
	var s Solver
	asg, ok := s.Solve(p)
	if !ok || asg["V"].Int != 6 {
		t.Fatalf("asg = %v ok = %v", asg, ok)
	}
}

func TestSearchUnsat(t *testing.T) {
	p := NewPool()
	p.Add(Cmp(V("V"), ndlog.OpGt, CInt(5)))
	p.Add(Cmp(V("V"), ndlog.OpLt, CInt(5)))
	var s Solver
	if _, ok := s.Solve(p); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestImplicationPrimaryKey(t *testing.T) {
	// §3.4: D.x == D0.x implies D.y == 1, and D.x == D1.x implies D.y == 2,
	// with D0.x = D1.x = 9: no single D can satisfy both.
	p := NewPool()
	p.Add(Eq(V("D0.x"), CInt(9)))
	p.Add(Eq(V("D1.x"), CInt(9)))
	p.Add(Eq(V("D.x"), CInt(9)))
	p.Add(Constraint{Op: ndlog.OpEq, L: V("D.y"), R: CInt(1),
		Cond: []Constraint{Eq(V("D.x"), V("D0.x"))}})
	p.Add(Constraint{Op: ndlog.OpEq, L: V("D.y"), R: CInt(2),
		Cond: []Constraint{Eq(V("D.x"), V("D1.x"))}})
	var s Solver
	if _, ok := s.Solve(p); ok {
		t.Fatal("expected UNSAT: conflicting primary-key implications")
	}
}

func TestImplicationVacuous(t *testing.T) {
	p := NewPool()
	p.Add(Eq(V("D.x"), CInt(5)))
	p.Add(Constraint{Op: ndlog.OpEq, L: V("D.y"), R: CInt(1),
		Cond: []Constraint{Eq(V("D.x"), CInt(9))}})
	p.Add(Eq(V("D.y"), CInt(7)))
	var s Solver
	asg, ok := s.Solve(p)
	if !ok || asg["D.y"].Int != 7 {
		t.Fatalf("vacuous implication mishandled: %v ok=%v", asg, ok)
	}
}

func TestSolveNegation(t *testing.T) {
	// §4.2 green repair: symbolic constant Z collected constraint 1 == Z;
	// the negation yields a Z != 1, breaking the derivation.
	p := NewPool()
	p.Add(Eq(CInt(1), V("Z")))
	var s Solver
	asg, ok := s.SolveNegation(p)
	if !ok {
		t.Fatal("expected negation SAT")
	}
	if asg["Z"].Int == 1 {
		t.Fatalf("negation failed: Z = %v", asg["Z"])
	}
}

func TestSolveNegationRespectsHard(t *testing.T) {
	p := NewPool()
	p.Add(Constraint{Op: ndlog.OpEq, L: V("Z"), R: CInt(2), Hard: true})
	p.Add(Eq(V("Z"), CInt(2))) // soft duplicate: negation must fail
	var s Solver
	if _, ok := s.SolveNegation(p); ok {
		t.Fatal("negation should be blocked by the hard constraint")
	}
}

func TestNegateRoundTrip(t *testing.T) {
	ops := []ndlog.BinOp{ndlog.OpEq, ndlog.OpNe, ndlog.OpLt, ndlog.OpGt, ndlog.OpLe, ndlog.OpGe}
	for _, op := range ops {
		c := Cmp(V("X"), op, CInt(1))
		if c.Negate().Negate().Op != op {
			t.Fatalf("double negation of %v changed operator", op)
		}
	}
}

// Property: whenever Solve reports SAT, the assignment checks out.
func TestSolveSoundness(t *testing.T) {
	f := func(a, b int8, op uint8) bool {
		ops := []ndlog.BinOp{ndlog.OpEq, ndlog.OpNe, ndlog.OpLt, ndlog.OpGt, ndlog.OpLe, ndlog.OpGe}
		p := NewPool()
		p.Add(Cmp(V("X"), ops[int(op)%len(ops)], CInt(int64(a))))
		p.Add(Cmp(V("X"), ops[int(op>>4)%len(ops)], CInt(int64(b))))
		var s Solver
		asg, ok := s.Solve(p)
		if !ok {
			return true // UNSAT is always sound to report under our bound
		}
		return Check(p, asg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveNegation's assignment satisfies hard constraints and
// violates the conjunction.
func TestNegationSoundness(t *testing.T) {
	f := func(a int8) bool {
		p := NewPool()
		p.Add(Eq(V("X"), CInt(int64(a))))
		var s Solver
		asg, ok := s.SolveNegation(p)
		if !ok {
			return false
		}
		return !Check(p, asg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCloneIndependence(t *testing.T) {
	p := NewPool()
	p.Add(Eq(V("X"), CInt(1)))
	q := p.Clone()
	q.Add(Eq(V("Y"), CInt(2)))
	if len(p.Constraints) != 1 || len(q.Constraints) != 2 {
		t.Fatalf("clone not independent: %d vs %d", len(p.Constraints), len(q.Constraints))
	}
}

func TestVarsSorted(t *testing.T) {
	p := NewPool()
	p.Add(Eq(V("Zed"), V("Alpha")))
	p.Add(Cmp(V("Mid"), ndlog.OpLt, CInt(3)))
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "Alpha" || vars[2] != "Zed" {
		t.Fatalf("vars = %v", vars)
	}
}
