// Package stats implements the two-sample Kolmogorov–Smirnov test used to
// filter repair candidates (§5.3): a repair is rejected when it
// significantly distorts the network-wide traffic distribution at end
// hosts, beyond the flows the symptom itself concerns.
package stats

import "math"

// KSFromCounts computes the two-sample KS statistic D between two
// per-category count vectors (deliveries per host, in a fixed host order)
// and the asymptotic p-value. Sample sizes are the count totals, matching
// the paper's per-packet sampling (each delivered packet contributes its
// destination host as one observation).
func KSFromCounts(a, b []int64) (d, p float64) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var ta, tb int64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	switch {
	case ta == 0 && tb == 0:
		return 0, 1
	case ta == 0 || tb == 0:
		return 1, 0
	}
	var ca, cb int64
	for i := 0; i < n; i++ {
		if i < len(a) {
			ca += a[i]
		}
		if i < len(b) {
			cb += b[i]
		}
		diff := math.Abs(float64(ca)/float64(ta) - float64(cb)/float64(tb))
		if diff > d {
			d = diff
		}
	}
	return d, KSPValue(d, float64(ta), float64(tb))
}

// KS2 computes the two-sample KS statistic over raw samples.
func KS2(a, b []float64) (d, p float64) {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0, 1
		}
		return 1, 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sortFloats(as)
	sortFloats(bs)
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d, KSPValue(d, float64(len(a)), float64(len(b)))
}

// KSPValue returns the asymptotic two-sample KS p-value for statistic d
// with sample sizes n and m (Smirnov's limiting distribution with the
// Stephens small-sample correction).
func KSPValue(d, n, m float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	ne := n * m / (n + m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return kolmogorovQ(lambda)
}

// KSCritical returns the critical D value at significance alpha for sample
// sizes n and m: c(alpha) * sqrt((n+m)/(n*m)).
func KSCritical(alpha, n, m float64) float64 {
	// c(alpha) = sqrt(-ln(alpha/2) / 2)
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt((n+m)/(n*m))
}

// kolmogorovQ is the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2 k² λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * lambda * lambda)
		sum += sign * term
		sign = -sign
		if term < 1e-12 {
			break
		}
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

func sortFloats(x []float64) {
	// Insertion sort is fine for the modest sample sizes used here; the
	// count-vector path (KSFromCounts) is the hot path and does not sort.
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
