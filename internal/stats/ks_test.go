package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSIdenticalCounts(t *testing.T) {
	a := []int64{10, 20, 30, 40}
	d, p := KSFromCounts(a, a)
	if d != 0 || p != 1 {
		t.Fatalf("d=%v p=%v, want 0, 1", d, p)
	}
}

func TestKSDisjointCounts(t *testing.T) {
	d, p := KSFromCounts([]int64{100, 0}, []int64{0, 100})
	if d != 1 {
		t.Fatalf("d = %v, want 1", d)
	}
	if p > 1e-6 {
		t.Fatalf("p = %v, want ~0", p)
	}
}

func TestKSSmallShift(t *testing.T) {
	// A tiny change in one host's traffic: D must be small and accepted
	// at alpha 0.05.
	a := make([]int64, 100)
	b := make([]int64, 100)
	for i := range a {
		a[i] = 1000
		b[i] = 1000
	}
	b[50] += 10 // the "fixed" host now receives a little traffic
	d, _ := KSFromCounts(a, b)
	if d > 0.01 {
		t.Fatalf("d = %v, want < 0.01", d)
	}
}

func TestKSLargeShift(t *testing.T) {
	// Rerouting a large share of traffic: D must exceed the critical value.
	a := []int64{5000, 5000, 0, 0}
	b := []int64{0, 0, 5000, 5000}
	d, p := KSFromCounts(a, b)
	if d != 1 || p > 0.05 {
		t.Fatalf("d=%v p=%v", d, p)
	}
}

func TestKSEmptySides(t *testing.T) {
	d, p := KSFromCounts(nil, nil)
	if d != 0 || p != 1 {
		t.Fatalf("both empty: d=%v p=%v", d, p)
	}
	d, _ = KSFromCounts([]int64{5}, nil)
	if d != 1 {
		t.Fatalf("one empty: d=%v", d)
	}
}

func TestKS2AgainstCounts(t *testing.T) {
	// KS2 on expanded samples must agree with KSFromCounts.
	a := []int64{3, 0, 2}
	b := []int64{1, 2, 2}
	var as, bs []float64
	for i, c := range a {
		for k := int64(0); k < c; k++ {
			as = append(as, float64(i))
		}
	}
	for i, c := range b {
		for k := int64(0); k < c; k++ {
			bs = append(bs, float64(i))
		}
	}
	d1, _ := KSFromCounts(a, b)
	d2, _ := KS2(as, bs)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("d mismatch: %v vs %v", d1, d2)
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.0
	for _, d := range []float64{0.01, 0.05, 0.1, 0.2, 0.5, 0.9} {
		p := KSPValue(d, 1000, 1000)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at d=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestKSCritical(t *testing.T) {
	// Standard critical value at alpha=0.05, n=m: 1.358*sqrt(2/n).
	got := KSCritical(0.05, 100, 100)
	want := 1.3581 * math.Sqrt(2.0/100)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("critical = %v, want %v", got, want)
	}
}

func TestKSSameDistributionRandom(t *testing.T) {
	// Two samples from the same distribution should usually be accepted.
	rng := rand.New(rand.NewSource(42))
	rejections := 0
	for trial := 0; trial < 20; trial++ {
		a := make([]int64, 50)
		b := make([]int64, 50)
		for i := 0; i < 5000; i++ {
			a[rng.Intn(50)]++
			b[rng.Intn(50)]++
		}
		_, p := KSFromCounts(a, b)
		if p < 0.05 {
			rejections++
		}
	}
	if rejections > 4 { // alpha 0.05 over 20 trials: expect ~1
		t.Fatalf("rejected %d/20 same-distribution pairs", rejections)
	}
}

// Properties: D is within [0,1] and symmetric.
func TestKSProperties(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := make([]int64, len(av))
		b := make([]int64, len(bv))
		for i, v := range av {
			a[i] = int64(v)
		}
		for i, v := range bv {
			b[i] = int64(v)
		}
		d1, p1 := KSFromCounts(a, b)
		d2, p2 := KSFromCounts(b, a)
		return d1 >= 0 && d1 <= 1 && p1 >= 0 && p1 <= 1 &&
			math.Abs(d1-d2) < 1e-12 && math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
