package topo

import (
	"repro/internal/ndlog"
	"repro/internal/sdn"
)

// Fabric is a built topology: the network plus the naming and routing
// helpers scenario packages compose on. Every generated shape — campus,
// fat-tree, linear — produces one, so a reactive zone written against a
// Fabric runs unchanged on any of them: CoreIDs are the backbone switches
// zones attach to, EdgeIDs the host-bearing switches, and HostIDs every
// host in attachment order.
type Fabric struct {
	Net     *sdn.Network
	CoreIDs []string
	EdgeIDs []string
	HostIDs []string
}

// InstallProactiveRoutes computes shortest paths and installs one
// DstIP-match entry per (switch, host) pair — the proactive core
// configuration of §5.2, topology-independent because it BFSes the built
// graph. Overrides route chosen destination IPs toward a designated
// switch instead (used to steer scenario service IPs into the reactive
// zone). Switches named in reactive get no proactive entries at all, and
// hosts attached to them are reachable only via overrides — the reactive
// zone is the controller program's exclusive responsibility.
func (f *Fabric) InstallProactiveRoutes(overrides map[int64]string, reactive ...string) {
	skip := make(map[string]bool, len(reactive))
	for _, id := range reactive {
		skip[id] = true
	}
	next := f.nextHops()
	for _, h := range f.Net.Hosts {
		if skip[h.Switch] {
			continue
		}
		if _, overridden := overrides[h.IP]; overridden {
			continue
		}
		f.installRoutesTo(h.IP, h.Switch, next, skip)
	}
	for ip, swID := range overrides {
		f.installRoutesTo(ip, swID, next, skip)
	}
}

// installRoutesTo installs DstIP entries on every non-reactive switch
// toward target.
func (f *Fabric) installRoutesTo(ip int64, targetSw string, next map[string]map[string]string, skip map[string]bool) {
	for swID, sw := range f.Net.Switches {
		if skip[swID] {
			continue
		}
		if swID == targetSw {
			// Final hop: deliver to the locally attached host if present.
			if h := f.Net.HostByIP(ip); h != nil && h.Switch == swID {
				dst := ip
				sw.Install(sdn.FlowEntry{
					Priority: 10,
					Match:    sdn.Match{DstIP: &dst},
					Action:   sdn.Action{Kind: sdn.ActionOutput, Port: sw.PortTo(h.ID)},
					Tags:     ndlog.AllTags,
				})
			}
			continue
		}
		hop, ok := next[swID][targetSw]
		if !ok {
			continue
		}
		dst := ip
		sw.Install(sdn.FlowEntry{
			Priority: 10,
			Match:    sdn.Match{DstIP: &dst},
			Action:   sdn.Action{Kind: sdn.ActionOutput, Port: sw.PortTo(hop)},
			Tags:     ndlog.AllTags,
		})
	}
}

// nextHops runs BFS from every switch, returning next[src][dst] = the
// neighbouring switch on a shortest path from src to dst.
func (f *Fabric) nextHops() map[string]map[string]string {
	adj := make(map[string][]string)
	for id, sw := range f.Net.Switches {
		for _, p := range sw.Ports() {
			n := sw.Neighbour(p)
			if _, isSwitch := f.Net.Switches[n]; isSwitch {
				adj[id] = append(adj[id], n)
			}
		}
	}
	next := make(map[string]map[string]string)
	for src := range f.Net.Switches {
		next[src] = make(map[string]string)
	}
	// BFS from each destination, recording each node's parent toward dst.
	for dst := range f.Net.Switches {
		visited := map[string]bool{dst: true}
		queue := []string{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				next[nb][dst] = cur
				queue = append(queue, nb)
			}
		}
	}
	return next
}

// SwitchCount returns the number of switches in the fabric.
func (f *Fabric) SwitchCount() int { return len(f.Net.Switches) }

// HostCount returns the number of hosts.
func (f *Fabric) HostCount() int { return len(f.Net.Hosts) }
