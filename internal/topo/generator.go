package topo

import (
	"fmt"
	"sort"

	"repro/internal/sdn"
)

// Size scales a generated topology. Generators interpret Switches as a
// total switch budget (each shape rounds to its nearest legal
// configuration) and Hosts as the total host count; zero values pick the
// generator's default for that budget.
type Size struct {
	Switches int
	Hosts    int
}

// Generator produces a Fabric of one topology shape at a requested size.
// Implementations must be deterministic: scenario backtesting rebuilds
// the fabric once per shared-run batch and replays the same recorded
// workload into each copy, so two Generate calls with the same Size must
// yield identical networks.
type Generator interface {
	// Name identifies the shape in reports and event logs.
	Name() string
	// Generate builds the fabric. It must be safe to call concurrently.
	Generate(sz Size) *Fabric
}

// Campus generates the §5.2 Stanford-style campus of Build/Scaled: a
// 16-router backbone ring with chords, edge networks, and the Figure 9c
// host series. The zero value is ready to use.
type Campus struct {
	// Base overrides the derived Config's numbering defaults when set.
	BaseSwitchNum int64
	BaseHostIP    int64
}

// Name implements Generator.
func (Campus) Name() string { return "campus" }

// Generate implements Generator: Size.Switches selects the Figure 9c
// series entry (clamped to the 19-switch minimum), Size.Hosts overrides
// the series' host count.
func (c Campus) Generate(sz Size) *Fabric {
	cfg := Scaled(sz.Switches)
	if sz.Hosts > 0 {
		cfg.Hosts = sz.Hosts
	}
	cfg.BaseSwitchNum = c.BaseSwitchNum
	cfg.BaseHostIP = c.BaseHostIP
	return Build(cfg)
}

// FatTree generates a k-ary fat-tree — the canonical data-center fabric:
// (k/2)² core switches and k pods of k/2 aggregation plus k/2 edge
// switches, every edge switch dual-homed to its pod's aggregation layer
// and every aggregation switch striped across the core. CoreIDs are the
// core layer (reactive zones attach there), EdgeIDs the edge layer.
type FatTree struct {
	// K fixes the pod arity (even, >= 4). Zero derives the largest legal
	// k from Size.Switches (total switches = 5k²/4).
	K int
	// BaseHostIP is the first host IP assigned (default 1000).
	BaseHostIP int64
}

// Name implements Generator.
func (FatTree) Name() string { return "fattree" }

// Generate implements Generator. Size.Hosts defaults to the classic k³/4
// server complement, round-robined across the edge layer.
func (ft FatTree) Generate(sz Size) *Fabric {
	k := ft.K
	if k < 4 {
		// Largest even k whose 5k²/4 switches fit the budget, minimum 4.
		k = 4
		for (k+2)*(k+2)*5/4 <= sz.Switches {
			k += 2
		}
	}
	if k%2 != 0 {
		k++
	}
	f := &Fabric{Net: sdn.NewNetwork()}
	num := int64(100)
	half := k / 2
	// Core layer: (k/2)² switches.
	cores := make([]string, half*half)
	for i := range cores {
		id := fmt.Sprintf("core%d", i)
		cores[i] = id
		addSwitch(f, id, &num)
		f.CoreIDs = append(f.CoreIDs, id)
	}
	// Pods: k/2 aggregation and k/2 edge switches each.
	for p := 0; p < k; p++ {
		aggs := make([]string, half)
		for a := 0; a < half; a++ {
			id := fmt.Sprintf("agg%d-%d", p, a)
			aggs[a] = id
			addSwitch(f, id, &num)
			// Aggregation switch a connects to core group a.
			for c := 0; c < half; c++ {
				f.Net.Link(id, cores[a*half+c])
			}
		}
		for e := 0; e < half; e++ {
			id := fmt.Sprintf("edge%d-%d", p, e)
			addSwitch(f, id, &num)
			f.EdgeIDs = append(f.EdgeIDs, id)
			for _, agg := range aggs {
				f.Net.Link(id, agg)
			}
		}
	}
	hosts := sz.Hosts
	if hosts <= 0 {
		hosts = k * k * k / 4
	}
	baseIP := ft.BaseHostIP
	if baseIP == 0 {
		baseIP = 1000
	}
	attachHosts(f, hosts, baseIP)
	return f
}

// Linear generates a chain of switches with hosts round-robined along it
// — the classic Mininet linear topology, the smallest shape that still
// exercises multi-hop proactive routing. Every switch is both an
// attachment point (CoreIDs) and a host-bearing switch (EdgeIDs).
type Linear struct {
	// HostsPerSwitch sets the default host density (default 4) when
	// Size.Hosts is zero.
	HostsPerSwitch int
	// BaseHostIP is the first host IP assigned (default 1000).
	BaseHostIP int64
}

// Name implements Generator.
func (Linear) Name() string { return "linear" }

// Generate implements Generator. Size.Switches is the chain length
// (minimum 2).
func (l Linear) Generate(sz Size) *Fabric {
	n := sz.Switches
	if n < 2 {
		n = 2
	}
	f := &Fabric{Net: sdn.NewNetwork()}
	num := int64(100)
	prev := ""
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("lin%d", i)
		addSwitch(f, id, &num)
		f.CoreIDs = append(f.CoreIDs, id)
		f.EdgeIDs = append(f.EdgeIDs, id)
		if prev != "" {
			f.Net.Link(prev, id)
		}
		prev = id
	}
	hosts := sz.Hosts
	if hosts <= 0 {
		per := l.HostsPerSwitch
		if per <= 0 {
			per = 4
		}
		hosts = n * per
	}
	baseIP := l.BaseHostIP
	if baseIP == 0 {
		baseIP = 1000
	}
	attachHosts(f, hosts, baseIP)
	return f
}

// addSwitch registers one switch under the shared numeric-ID counter.
func addSwitch(f *Fabric, id string, num *int64) {
	f.Net.AddSwitch(sdn.NewSwitch(id, *num))
	*num++
}

// Generators returns the built-in topology shapes.
func Generators() []Generator {
	return []Generator{Campus{}, FatTree{}, Linear{}}
}

// GeneratorByName resolves a built-in shape by name; the error lists the
// known shapes.
func GeneratorByName(name string) (Generator, error) {
	var names []string
	for _, g := range Generators() {
		if g.Name() == name {
			return g, nil
		}
		names = append(names, g.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("topo: unknown topology %q (built-in shapes: %v)", name, names)
}
