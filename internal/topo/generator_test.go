package topo

import (
	"testing"

	"repro/internal/sdn"
)

// probeReachability installs proactive routes and checks the first host
// can reach a sample of the others — the property every generated shape
// must provide before a scenario zone is attached.
func probeReachability(t *testing.T, f *Fabric) {
	t.Helper()
	f.InstallProactiveRoutes(nil)
	src := f.HostIDs[0]
	n := len(f.HostIDs)
	if n > 10 {
		n = 10
	}
	for _, dstID := range f.HostIDs[1:n] {
		dst := f.Net.Hosts[dstID]
		before := f.Net.Delivered
		f.Net.Inject(src, sdn.Packet{
			SrcIP: f.Net.Hosts[src].IP, DstIP: dst.IP, DstPort: sdn.PortHTTP,
		})
		if f.Net.Delivered != before+1 {
			t.Fatalf("host %s unreachable from %s", dstID, src)
		}
	}
	if f.Net.Missed != 0 {
		t.Fatalf("missed = %d, want 0 on a proactive fabric", f.Net.Missed)
	}
}

func TestCampusGenerator(t *testing.T) {
	f := Campus{}.Generate(Size{Switches: 19})
	if f.SwitchCount() != 19 || f.HostCount() != 259 {
		t.Fatalf("campus: %d switches, %d hosts", f.SwitchCount(), f.HostCount())
	}
	probeReachability(t, f)
}

func TestFatTreeGenerator(t *testing.T) {
	f := FatTree{}.Generate(Size{Switches: 20})
	// k=4: 4 core + 4 pods x (2 agg + 2 edge) = 20 switches, 16 hosts.
	if f.SwitchCount() != 20 {
		t.Fatalf("fat-tree switches = %d, want 20", f.SwitchCount())
	}
	if f.HostCount() != 16 {
		t.Fatalf("fat-tree hosts = %d, want 16", f.HostCount())
	}
	if len(f.CoreIDs) != 4 || len(f.EdgeIDs) != 8 {
		t.Fatalf("fat-tree layers: %d core, %d edge", len(f.CoreIDs), len(f.EdgeIDs))
	}
	probeReachability(t, f)

	// A bigger budget derives a bigger k: 5k²/4 <= 45 gives k=6.
	big := FatTree{}.Generate(Size{Switches: 45})
	if big.SwitchCount() != 45 {
		t.Fatalf("fat-tree k=6 switches = %d, want 45", big.SwitchCount())
	}
	// Host override wins over the k³/4 default.
	sized := FatTree{}.Generate(Size{Switches: 20, Hosts: 40})
	if sized.HostCount() != 40 {
		t.Fatalf("fat-tree hosts = %d, want 40", sized.HostCount())
	}
}

func TestLinearGenerator(t *testing.T) {
	f := Linear{}.Generate(Size{Switches: 8})
	if f.SwitchCount() != 8 || f.HostCount() != 32 {
		t.Fatalf("linear: %d switches, %d hosts", f.SwitchCount(), f.HostCount())
	}
	probeReachability(t, f)

	dense := Linear{HostsPerSwitch: 10}.Generate(Size{Switches: 3})
	if dense.HostCount() != 30 {
		t.Fatalf("linear dense hosts = %d, want 30", dense.HostCount())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Generators() {
		a := g.Generate(Size{Switches: 20})
		b := g.Generate(Size{Switches: 20})
		if a.SwitchCount() != b.SwitchCount() || a.HostCount() != b.HostCount() {
			t.Fatalf("%s: non-deterministic sizes", g.Name())
		}
		for i, id := range a.HostIDs {
			if b.HostIDs[i] != id || a.Net.Hosts[id].IP != b.Net.Hosts[id].IP {
				t.Fatalf("%s: host %d differs between builds", g.Name(), i)
			}
		}
	}
}

func TestGeneratorByName(t *testing.T) {
	for _, name := range []string{"campus", "fattree", "linear"} {
		g, err := GeneratorByName(name)
		if err != nil || g.Name() != name {
			t.Fatalf("GeneratorByName(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := GeneratorByName("torus"); err == nil {
		t.Fatal("unknown shape must error")
	}
}

// TestZonePortable attaches the same reactive zone to every shape and
// checks the override steering works identically — the property the
// scenario layer's topology pluggability rests on.
func TestZonePortable(t *testing.T) {
	for _, g := range Generators() {
		f := g.Generate(Size{Switches: 20})
		zone := sdn.NewSwitch("zone", 1)
		f.Net.AddSwitch(zone)
		f.Net.Link("zone", f.CoreIDs[0])
		f.InstallProactiveRoutes(map[int64]string{5555: "zone"})
		f.Net.Inject(f.HostIDs[0], sdn.Packet{
			SrcIP: f.Net.Hosts[f.HostIDs[0]].IP, DstIP: 5555, DstPort: sdn.PortHTTP,
		})
		if f.Net.Missed != 1 {
			t.Fatalf("%s: missed = %d, want 1 (steered to the zone switch)", g.Name(), f.Net.Missed)
		}
	}
}
