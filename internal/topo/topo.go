// Package topo builds the evaluation topologies of §5.2: a Stanford-
// campus-style network with 16 operational-zone/backbone core routers,
// edge networks hanging off the core, and 1–15 hosts per edge network.
// The core is proactively configured (shortest-path forwarding entries for
// every host); scenario packages attach small reactive zones that the
// controller program manages.
package topo

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/sdn"
)

// Config sizes a campus topology. The defaults (via Small) reproduce the
// paper's smallest setting (19 routers, 259 hosts); Scaled produces the
// Figure 9c series up to 169 routers and 549 hosts.
type Config struct {
	CoreSwitches int // backbone + operational zone routers (paper: 16)
	EdgeSwitches int // edge networks, one switch each
	Hosts        int // total hosts, spread across edge networks
	// BaseSwitchNum is the first numeric switch ID assigned; scenario
	// switches typically occupy small numbers (1..3), so the campus
	// starts at 100 by default.
	BaseSwitchNum int64
	// BaseHostIP is the first host IP assigned (default 1000).
	BaseHostIP int64
}

// Small is the smallest §5.2 topology: 19 routers, 259 hosts.
func Small() Config {
	return Config{CoreSwitches: 16, EdgeSwitches: 3, Hosts: 259}
}

// Scaled returns the Figure 9c series entry with the given total switch
// count (19, 49, 79, 109, 139, 169); hosts grow from 259 to 549.
func Scaled(switches int) Config {
	if switches < 19 {
		switches = 19
	}
	edges := switches - 16
	hosts := 259 + (switches-19)*2 // 19 -> 259 ... 169 -> 559 (~549)
	if switches == 169 {
		hosts = 549
	}
	return Config{CoreSwitches: 16, EdgeSwitches: edges, Hosts: hosts}
}

// Campus is a built topology: the network plus naming helpers.
type Campus struct {
	Net     *sdn.Network
	CoreIDs []string
	EdgeIDs []string
	HostIDs []string
	cfg     Config
}

// Build constructs the campus: a two-level core (ring plus chords, the
// usual campus backbone abstraction), one switch per edge network, and
// hosts round-robined across edges.
func Build(cfg Config) *Campus {
	if cfg.CoreSwitches <= 0 {
		cfg.CoreSwitches = 16
	}
	if cfg.EdgeSwitches <= 0 {
		cfg.EdgeSwitches = 3
	}
	if cfg.BaseSwitchNum == 0 {
		cfg.BaseSwitchNum = 100
	}
	if cfg.BaseHostIP == 0 {
		cfg.BaseHostIP = 1000
	}
	c := &Campus{Net: sdn.NewNetwork(), cfg: cfg}
	num := cfg.BaseSwitchNum
	for i := 0; i < cfg.CoreSwitches; i++ {
		id := fmt.Sprintf("core%d", i)
		c.Net.AddSwitch(sdn.NewSwitch(id, num))
		c.CoreIDs = append(c.CoreIDs, id)
		num++
	}
	// Ring plus cross-links every 4th router: redundant paths like a
	// campus backbone.
	for i := 0; i < cfg.CoreSwitches; i++ {
		c.Net.Link(c.CoreIDs[i], c.CoreIDs[(i+1)%cfg.CoreSwitches])
		if i%4 == 0 && cfg.CoreSwitches > 8 {
			c.Net.Link(c.CoreIDs[i], c.CoreIDs[(i+cfg.CoreSwitches/2)%cfg.CoreSwitches])
		}
	}
	for i := 0; i < cfg.EdgeSwitches; i++ {
		id := fmt.Sprintf("edge%d", i)
		c.Net.AddSwitch(sdn.NewSwitch(id, num))
		num++
		c.EdgeIDs = append(c.EdgeIDs, id)
		c.Net.Link(id, c.CoreIDs[i%cfg.CoreSwitches])
	}
	ip := cfg.BaseHostIP
	for i := 0; i < cfg.Hosts; i++ {
		id := fmt.Sprintf("h%d", i)
		edge := c.EdgeIDs[i%len(c.EdgeIDs)]
		c.Net.AddHost(sdn.NewHost(id, ip, edge))
		c.HostIDs = append(c.HostIDs, id)
		ip++
	}
	return c
}

// InstallProactiveRoutes computes shortest paths and installs one
// DstIP-match entry per (switch, host) pair — the proactive core
// configuration of §5.2. Overrides route chosen destination IPs toward a
// designated switch instead (used to steer scenario service IPs into the
// reactive zone). Switches named in reactive get no proactive entries at
// all, and hosts attached to them are reachable only via overrides — the
// reactive zone is the controller program's exclusive responsibility.
func (c *Campus) InstallProactiveRoutes(overrides map[int64]string, reactive ...string) {
	skip := make(map[string]bool, len(reactive))
	for _, id := range reactive {
		skip[id] = true
	}
	next := c.nextHops()
	for _, h := range c.Net.Hosts {
		if skip[h.Switch] {
			continue
		}
		if _, overridden := overrides[h.IP]; overridden {
			continue
		}
		c.installRoutesTo(h.IP, h.Switch, next, skip)
	}
	for ip, swID := range overrides {
		c.installRoutesTo(ip, swID, next, skip)
	}
}

// installRoutesTo installs DstIP entries on every non-reactive switch
// toward target.
func (c *Campus) installRoutesTo(ip int64, targetSw string, next map[string]map[string]string, skip map[string]bool) {
	for swID, sw := range c.Net.Switches {
		if skip[swID] {
			continue
		}
		if swID == targetSw {
			// Final hop: deliver to the locally attached host if present.
			if h := c.Net.HostByIP(ip); h != nil && h.Switch == swID {
				dst := ip
				sw.Install(sdn.FlowEntry{
					Priority: 10,
					Match:    sdn.Match{DstIP: &dst},
					Action:   sdn.Action{Kind: sdn.ActionOutput, Port: sw.PortTo(h.ID)},
					Tags:     ndlog.AllTags,
				})
			}
			continue
		}
		hop, ok := next[swID][targetSw]
		if !ok {
			continue
		}
		dst := ip
		sw.Install(sdn.FlowEntry{
			Priority: 10,
			Match:    sdn.Match{DstIP: &dst},
			Action:   sdn.Action{Kind: sdn.ActionOutput, Port: sw.PortTo(hop)},
			Tags:     ndlog.AllTags,
		})
	}
}

// nextHops runs BFS from every switch, returning next[src][dst] = the
// neighbouring switch on a shortest path from src to dst.
func (c *Campus) nextHops() map[string]map[string]string {
	adj := make(map[string][]string)
	for id, sw := range c.Net.Switches {
		for _, p := range sw.Ports() {
			n := sw.Neighbour(p)
			if _, isSwitch := c.Net.Switches[n]; isSwitch {
				adj[id] = append(adj[id], n)
			}
		}
	}
	next := make(map[string]map[string]string)
	for src := range c.Net.Switches {
		next[src] = make(map[string]string)
	}
	// BFS from each destination, recording each node's parent toward dst.
	for dst := range c.Net.Switches {
		visited := map[string]bool{dst: true}
		queue := []string{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				next[nb][dst] = cur
				queue = append(queue, nb)
			}
		}
	}
	return next
}

// SwitchCount returns the number of switches in the campus.
func (c *Campus) SwitchCount() int { return len(c.Net.Switches) }

// HostCount returns the number of hosts.
func (c *Campus) HostCount() int { return len(c.Net.Hosts) }
