// Package topo builds evaluation topologies. The original shape is the
// §5.2 Stanford-campus-style network — 16 operational-zone/backbone core
// routers, edge networks hanging off the core, and 1–15 hosts per edge
// network — and the Generator interface makes the shape pluggable:
// Campus, FatTree, and Linear all produce a Fabric with the same naming
// and proactive-routing helpers, so scenario packages compose a bug and
// workload with any of them. The core is proactively configured
// (shortest-path forwarding entries for every host); scenario packages
// attach small reactive zones that the controller program manages.
package topo

import (
	"fmt"

	"repro/internal/sdn"
)

// Config sizes a campus topology. The defaults (via Small) reproduce the
// paper's smallest setting (19 routers, 259 hosts); Scaled produces the
// Figure 9c series up to 169 routers and 549 hosts.
type Config struct {
	CoreSwitches int // backbone + operational zone routers (paper: 16)
	EdgeSwitches int // edge networks, one switch each
	Hosts        int // total hosts, spread across edge networks
	// BaseSwitchNum is the first numeric switch ID assigned; scenario
	// switches typically occupy small numbers (1..3), so the campus
	// starts at 100 by default.
	BaseSwitchNum int64
	// BaseHostIP is the first host IP assigned (default 1000).
	BaseHostIP int64
}

// Small is the smallest §5.2 topology: 19 routers, 259 hosts.
func Small() Config {
	return Config{CoreSwitches: 16, EdgeSwitches: 3, Hosts: 259}
}

// Scaled returns the Figure 9c series entry with the given total switch
// count (19, 49, 79, 109, 139, 169); hosts grow from 259 to 549.
func Scaled(switches int) Config {
	if switches < 19 {
		switches = 19
	}
	edges := switches - 16
	hosts := 259 + (switches-19)*2 // 19 -> 259 ... 169 -> 559 (~549)
	if switches == 169 {
		hosts = 549
	}
	return Config{CoreSwitches: 16, EdgeSwitches: edges, Hosts: hosts}
}

// Build constructs the campus: a two-level core (ring plus chords, the
// usual campus backbone abstraction), one switch per edge network, and
// hosts round-robined across edges.
func Build(cfg Config) *Fabric {
	if cfg.CoreSwitches <= 0 {
		cfg.CoreSwitches = 16
	}
	if cfg.EdgeSwitches <= 0 {
		cfg.EdgeSwitches = 3
	}
	if cfg.BaseSwitchNum == 0 {
		cfg.BaseSwitchNum = 100
	}
	if cfg.BaseHostIP == 0 {
		cfg.BaseHostIP = 1000
	}
	f := &Fabric{Net: sdn.NewNetwork()}
	num := cfg.BaseSwitchNum
	for i := 0; i < cfg.CoreSwitches; i++ {
		id := fmt.Sprintf("core%d", i)
		f.Net.AddSwitch(sdn.NewSwitch(id, num))
		f.CoreIDs = append(f.CoreIDs, id)
		num++
	}
	// Ring plus cross-links every 4th router: redundant paths like a
	// campus backbone.
	for i := 0; i < cfg.CoreSwitches; i++ {
		f.Net.Link(f.CoreIDs[i], f.CoreIDs[(i+1)%cfg.CoreSwitches])
		if i%4 == 0 && cfg.CoreSwitches > 8 {
			f.Net.Link(f.CoreIDs[i], f.CoreIDs[(i+cfg.CoreSwitches/2)%cfg.CoreSwitches])
		}
	}
	for i := 0; i < cfg.EdgeSwitches; i++ {
		id := fmt.Sprintf("edge%d", i)
		f.Net.AddSwitch(sdn.NewSwitch(id, num))
		num++
		f.EdgeIDs = append(f.EdgeIDs, id)
		f.Net.Link(id, f.CoreIDs[i%cfg.CoreSwitches])
	}
	attachHosts(f, cfg.Hosts, cfg.BaseHostIP)
	return f
}

// attachHosts round-robins count hosts across the fabric's edge switches,
// assigning consecutive IPs from baseIP — the host-attachment convention
// every generator shares.
func attachHosts(f *Fabric, count int, baseIP int64) {
	if len(f.EdgeIDs) == 0 {
		return
	}
	ip := baseIP
	f.HostIDs = make([]string, 0, count)
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("h%d", i)
		edge := f.EdgeIDs[i%len(f.EdgeIDs)]
		f.Net.AddHost(sdn.NewHost(id, ip, edge))
		f.HostIDs = append(f.HostIDs, id)
		ip++
	}
}
