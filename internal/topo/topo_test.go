package topo

import (
	"testing"

	"repro/internal/sdn"
)

func TestBuildSmall(t *testing.T) {
	c := Build(Small())
	if c.SwitchCount() != 19 {
		t.Fatalf("switches = %d, want 19", c.SwitchCount())
	}
	if c.HostCount() != 259 {
		t.Fatalf("hosts = %d, want 259", c.HostCount())
	}
}

func TestScaledSeries(t *testing.T) {
	for _, n := range []int{19, 49, 79, 109, 139, 169} {
		c := Build(Scaled(n))
		if c.SwitchCount() != n {
			t.Fatalf("Scaled(%d) built %d switches", n, c.SwitchCount())
		}
	}
	if got := Build(Scaled(169)).HostCount(); got != 549 {
		t.Fatalf("largest topology hosts = %d, want 549", got)
	}
}

func TestProactiveRoutingDelivers(t *testing.T) {
	c := Build(Config{CoreSwitches: 16, EdgeSwitches: 4, Hosts: 40})
	c.InstallProactiveRoutes(nil)
	// Every host can reach every other host via the proactive entries.
	src := c.HostIDs[0]
	delivered := 0
	for _, dstID := range c.HostIDs[1:10] {
		dst := c.Net.Hosts[dstID]
		before := c.Net.Delivered
		c.Net.Inject(src, sdn.Packet{
			SrcIP: c.Net.Hosts[src].IP, DstIP: dst.IP, DstPort: sdn.PortHTTP,
		})
		if c.Net.Delivered == before+1 {
			delivered++
		}
	}
	if delivered != 9 {
		t.Fatalf("delivered %d/9 probes", delivered)
	}
	if c.Net.Missed != 0 {
		t.Fatalf("missed = %d, want 0 on a proactive core", c.Net.Missed)
	}
}

func TestRouteOverride(t *testing.T) {
	c := Build(Config{CoreSwitches: 16, EdgeSwitches: 2, Hosts: 10})
	// Attach a reactive zone switch and steer a virtual service IP to it.
	zone := sdn.NewSwitch("zone", 1)
	c.Net.AddSwitch(zone)
	c.Net.Link("zone", c.CoreIDs[0])
	c.InstallProactiveRoutes(map[int64]string{5555: "zone"})
	// A packet to the service IP must reach the zone switch and miss
	// there (no controller): missed count is the zone's PacketIn signal.
	c.Net.Inject(c.HostIDs[0], sdn.Packet{
		SrcIP: c.Net.Hosts[c.HostIDs[0]].IP, DstIP: 5555, DstPort: sdn.PortHTTP,
	})
	if c.Net.Missed != 1 {
		t.Fatalf("missed = %d, want 1 (at the zone switch)", c.Net.Missed)
	}
}

func TestBuildDefaults(t *testing.T) {
	c := Build(Config{Hosts: 5})
	if c.SwitchCount() == 0 || c.HostCount() != 5 {
		t.Fatalf("defaults broken: %d switches, %d hosts", c.SwitchCount(), c.HostCount())
	}
}
