package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sdn"
)

// RecordSize is the fixed on-disk size of one binary log record: the
// paper's 120-byte format (§5.4) — an 8-byte timestamp, the five 8-byte
// header fields, a length-prefixed 64-byte source-host field, and an
// 8-byte reserved tail.
const RecordSize = 120

// MaxHostLen is the longest source-host ID a binary record can carry.
const MaxHostLen = 63

const (
	recTime    = 0
	recSrcIP   = 8
	recDstIP   = 16
	recSrcPort = 24
	recDstPort = 32
	recProto   = 40
	recHostLen = 48
	recHost    = 49
	recTail    = recHost + MaxHostLen // 8 reserved bytes, zeroed
)

// AppendRecord encodes one entry as a fixed-width binary record onto dst.
// Tags are a backtesting artifact and are not persisted. It fails if the
// source-host ID exceeds MaxHostLen bytes.
func AppendRecord(dst []byte, e Entry) ([]byte, error) {
	if len(e.SrcHost) > MaxHostLen {
		return dst, fmt.Errorf("trace: host ID %q exceeds %d bytes", e.SrcHost, MaxHostLen)
	}
	var rec [RecordSize]byte
	binary.BigEndian.PutUint64(rec[recTime:], uint64(e.Time))
	binary.BigEndian.PutUint64(rec[recSrcIP:], uint64(e.Pkt.SrcIP))
	binary.BigEndian.PutUint64(rec[recDstIP:], uint64(e.Pkt.DstIP))
	binary.BigEndian.PutUint64(rec[recSrcPort:], uint64(e.Pkt.SrcPort))
	binary.BigEndian.PutUint64(rec[recDstPort:], uint64(e.Pkt.DstPort))
	binary.BigEndian.PutUint64(rec[recProto:], uint64(e.Pkt.Proto))
	rec[recHostLen] = byte(len(e.SrcHost))
	copy(rec[recHost:], e.SrcHost)
	return append(dst, rec[:]...), nil
}

// DecodeRecord decodes one fixed-width binary record.
func DecodeRecord(rec []byte) (Entry, error) {
	if len(rec) < RecordSize {
		return Entry{}, fmt.Errorf("trace: short record (%d of %d bytes)", len(rec), RecordSize)
	}
	n := int(rec[recHostLen])
	if n > MaxHostLen {
		return Entry{}, fmt.Errorf("trace: corrupt record: host length %d", n)
	}
	return Entry{
		Time:    int64(binary.BigEndian.Uint64(rec[recTime:])),
		SrcHost: string(rec[recHost : recHost+n]),
		Pkt: sdn.Packet{
			SrcIP:   int64(binary.BigEndian.Uint64(rec[recSrcIP:])),
			DstIP:   int64(binary.BigEndian.Uint64(rec[recDstIP:])),
			SrcPort: int64(binary.BigEndian.Uint64(rec[recSrcPort:])),
			DstPort: int64(binary.BigEndian.Uint64(rec[recDstPort:])),
			Proto:   int64(binary.BigEndian.Uint64(rec[recProto:])),
		},
	}, nil
}
