package trace

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sdn"
)

// randEntry draws a randomized entry; hosts mix ASCII and multi-byte
// runes up to the codec's 63-byte limit.
func randEntry(rng *rand.Rand) Entry {
	hostLen := rng.Intn(MaxHostLen + 1)
	var b strings.Builder
	alphabet := []rune("abcdefghijklmnopqrstuvwxyz0123456789-éλ")
	for b.Len() < hostLen {
		r := alphabet[rng.Intn(len(alphabet))]
		if b.Len()+len(string(r)) > hostLen {
			break
		}
		b.WriteRune(r)
	}
	return Entry{
		Time:    rng.Int63() - rng.Int63(), // negatives too
		SrcHost: b.String(),
		Pkt: sdn.Packet{
			SrcIP:   rng.Int63() - rng.Int63(),
			DstIP:   rng.Int63() - rng.Int63(),
			SrcPort: rng.Int63() - rng.Int63(),
			DstPort: rng.Int63() - rng.Int63(),
			Proto:   rng.Int63() - rng.Int63(),
		},
	}
}

func TestRecordRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		e := randEntry(rng)
		rec, err := AppendRecord(nil, e)
		if err != nil {
			t.Fatalf("encode %v: %v", e, err)
		}
		if len(rec) != RecordSize {
			t.Fatalf("record size %d, want %d", len(rec), RecordSize)
		}
		got, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != e {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", e, got)
		}
	}
}

func TestRecordRejectsOversizedHost(t *testing.T) {
	e := Entry{SrcHost: strings.Repeat("h", MaxHostLen+1)}
	if _, err := AppendRecord(nil, e); err == nil {
		t.Fatal("oversized host accepted")
	}
}

func TestDecodeRecordRejectsCorruptHostLength(t *testing.T) {
	rec := make([]byte, RecordSize)
	rec[recHostLen] = MaxHostLen + 1
	if _, err := DecodeRecord(rec); err == nil {
		t.Fatal("corrupt host length accepted")
	}
	if _, err := DecodeRecord(rec[:10]); err == nil {
		t.Fatal("short record accepted")
	}
}

// FuzzBinaryRecord checks that any entry the encoder accepts decodes
// back losslessly.
func FuzzBinaryRecord(f *testing.F) {
	f.Add(int64(1), "h1", int64(10), int64(201), int64(4000), int64(80), int64(6))
	f.Add(int64(-9), "", int64(0), int64(-1), int64(1<<40), int64(53), int64(17))
	f.Fuzz(func(t *testing.T, tm int64, host string, sip, dip, spt, dpt, proto int64) {
		e := Entry{Time: tm, SrcHost: host,
			Pkt: sdn.Packet{SrcIP: sip, DstIP: dip, SrcPort: spt, DstPort: dpt, Proto: proto}}
		rec, err := AppendRecord(nil, e)
		if err != nil {
			if len(host) <= MaxHostLen {
				t.Fatalf("rejected valid entry: %v", err)
			}
			return
		}
		got, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != e {
			t.Fatalf("round trip mismatch: %+v vs %+v", e, got)
		}
	})
}
