package trace

import "repro/internal/sdn"

// Source streams a recorded workload in record order. Implementations
// deliver entries one at a time, so replay memory is independent of
// workload length — the contract that lets backtesting consume traces
// far larger than RAM. Scan stops at the first error from fn or from the
// underlying reader and returns it.
type Source interface {
	Scan(fn func(Entry) error) error
}

// SliceSource adapts an in-memory []Entry to the Source interface — the
// compatibility path for workloads that were generated rather than
// captured.
type SliceSource []Entry

// Scan visits every entry in order.
func (s SliceSource) Scan(fn func(Entry) error) error {
	for _, e := range s {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// ReplaySource injects every entry streamed by src into the network with
// the given tag set and returns how many entries were injected, so
// callers can assert full replay. A nil source replays nothing.
func ReplaySource(net *sdn.Network, src Source, tags uint64) (int, error) {
	if src == nil {
		return 0, nil
	}
	n := 0
	err := src.Scan(func(e Entry) error {
		p := e.Pkt
		p.Tags = tags
		net.Inject(e.SrcHost, p)
		n++
		return nil
	})
	return n, err
}
