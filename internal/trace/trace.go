// Package trace generates and replays synthetic traffic traces. The
// paper replayed two campus traces from Benson et al. (IMC'10); those are
// not redistributable, so this package synthesizes workloads with the
// empirical shape that study reports — heavy-tailed (Zipf) flow sizes,
// ON/OFF arrivals, a small set of popular services — under a fixed seed,
// which preserves the property backtesting relies on: a stable per-host
// delivery distribution that small repairs barely perturb and over-general
// repairs visibly distort. Storage accounting uses the paper's 120-byte
// log records (§5.4).
package trace

import (
	"math/rand"

	"repro/internal/sdn"
)

// Entry is one logged packet: the host that sent it plus its header.
type Entry struct {
	Time    int64
	SrcHost string
	Pkt     sdn.Packet
}

// EntrySize is the on-disk size of one log record (120 bytes: header plus
// timestamp, per §5.4). It aliases the binary codec's RecordSize so the
// accounting and the encoder can never drift apart.
const EntrySize = RecordSize

// HostSpec names a traffic source or sink.
type HostSpec struct {
	ID string
	IP int64
}

// Service is a (destination, port, protocol) traffic sink with a relative
// popularity weight.
type Service struct {
	DstIP  int64
	Port   int64
	Proto  int64
	Weight int
}

// Config parameterizes the generator.
type Config struct {
	Seed    int64
	Sources []HostSpec
	// Services receiving the traffic; weights bias flow destinations.
	Services []Service
	// Flows is the number of flows to generate.
	Flows int
	// MeanFlowPackets controls flow sizes (Zipf-distributed, v>=1).
	MeanFlowPackets int
}

// Generate produces a deterministic packet trace: Flows flows whose sizes
// follow a Zipf distribution, sources round-robin-biased by the RNG, and
// destinations weighted by service popularity.
func Generate(cfg Config) []Entry {
	if cfg.Flows <= 0 || len(cfg.Sources) == 0 || len(cfg.Services) == 0 {
		return nil
	}
	mean := cfg.MeanFlowPackets
	if mean <= 0 {
		mean = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.3, 1.5, uint64(mean*16))

	totalWeight := 0
	for _, s := range cfg.Services {
		totalWeight += s.Weight
	}
	pickService := func() Service {
		if totalWeight <= 0 {
			return cfg.Services[rng.Intn(len(cfg.Services))]
		}
		w := rng.Intn(totalWeight)
		for _, s := range cfg.Services {
			w -= s.Weight
			if w < 0 {
				return s
			}
		}
		return cfg.Services[len(cfg.Services)-1]
	}

	// Flow sizes average around mean, so flows×mean is a good capacity
	// guess; the slice still grows if the Zipf draw runs hot.
	out := make([]Entry, 0, cfg.Flows*mean)
	var now int64
	for f := 0; f < cfg.Flows; f++ {
		src := cfg.Sources[rng.Intn(len(cfg.Sources))]
		svc := pickService()
		sport := int64(1024 + rng.Intn(60000))
		n := int(zipf.Uint64()) + 1
		// ON/OFF arrival: flows are bursts separated by idle gaps.
		now += int64(1 + rng.Intn(20))
		for i := 0; i < n; i++ {
			now++
			out = append(out, Entry{
				Time:    now,
				SrcHost: src.ID,
				Pkt: sdn.Packet{
					SrcIP:   src.IP,
					DstIP:   svc.DstIP,
					SrcPort: sport,
					DstPort: svc.Port,
					Proto:   svc.Proto,
				},
			})
		}
	}
	return out
}

// Bytes returns the log's on-disk size under the binary codec's
// fixed-width §5.4 records.
func Bytes(entries []Entry) int64 { return int64(len(entries)) * RecordSize }

// Replay injects every entry into the network with the given tag set and
// returns the number of entries injected, so callers can assert full
// replay.
func Replay(net *sdn.Network, entries []Entry, tags uint64) int {
	n, _ := ReplaySource(net, SliceSource(entries), tags)
	return n
}
