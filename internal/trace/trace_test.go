package trace

import (
	"testing"

	"repro/internal/sdn"
)

func genConfig() Config {
	return Config{
		Seed: 7,
		Sources: []HostSpec{
			{ID: "h0", IP: 1000}, {ID: "h1", IP: 1001}, {ID: "h2", IP: 1002},
		},
		Services: []Service{
			{DstIP: 201, Port: sdn.PortHTTP, Proto: sdn.ProtoTCP, Weight: 8},
			{DstIP: 203, Port: sdn.PortDNS, Proto: sdn.ProtoUDP, Weight: 2},
		},
		Flows: 200,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(genConfig())
	b := Generate(genConfig())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	entries := Generate(genConfig())
	http, dns := 0, 0
	for _, e := range entries {
		switch e.Pkt.DstPort {
		case sdn.PortHTTP:
			http++
		case sdn.PortDNS:
			dns++
		default:
			t.Fatalf("unexpected port %d", e.Pkt.DstPort)
		}
		if e.Pkt.SrcPort < 1024 {
			t.Fatalf("ephemeral source port %d", e.Pkt.SrcPort)
		}
	}
	if http <= dns {
		t.Fatalf("weights ignored: http=%d dns=%d", http, dns)
	}
	// Timestamps are monotone.
	for i := 1; i < len(entries); i++ {
		if entries[i].Time < entries[i-1].Time {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	entries := Generate(genConfig())
	// Flow sizes are Zipf: the largest flow should dwarf the median.
	sizes := map[int64]int{}
	for _, e := range entries {
		sizes[e.Pkt.SrcPort]++ // source port identifies the flow here
	}
	max, count := 0, 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
		count++
	}
	if count < 100 || max < 3 {
		t.Fatalf("suspicious flow-size distribution: %d flows, max %d", count, max)
	}
}

func TestBytesAccounting(t *testing.T) {
	entries := Generate(genConfig())
	if Bytes(entries) != int64(len(entries))*120 {
		t.Fatalf("bytes = %d", Bytes(entries))
	}
}

func TestGenerateEmptyConfigs(t *testing.T) {
	if Generate(Config{}) != nil {
		t.Fatal("empty config should generate nothing")
	}
	if Generate(Config{Flows: 5}) != nil {
		t.Fatal("no sources should generate nothing")
	}
}

func TestReplayTagsPackets(t *testing.T) {
	n := sdn.NewNetwork()
	s := sdn.NewSwitch("s1", 1)
	n.AddSwitch(s)
	n.AddHost(sdn.NewHost("h0", 1000, "s1"))
	n.AddHost(sdn.NewHost("sink", 201, "s1"))
	dst := int64(201)
	s.Install(sdn.FlowEntry{
		Priority: 1,
		Match:    sdn.Match{DstIP: &dst},
		Action:   sdn.Action{Kind: sdn.ActionOutput, Port: s.PortTo("sink")},
		Tags:     ^uint64(0),
	})
	cfg := genConfig()
	cfg.Sources = cfg.Sources[:1]
	cfg.Services = cfg.Services[:1]
	cfg.Flows = 10
	entries := Generate(cfg)
	if injected := Replay(n, entries, 0b10); injected != len(entries) {
		t.Fatalf("Replay injected %d of %d entries", injected, len(entries))
	}
	if n.Hosts["sink"].ReceivedFor(1) != int64(len(entries)) {
		t.Fatalf("tag-1 deliveries = %d, want %d", n.Hosts["sink"].ReceivedFor(1), len(entries))
	}
	if n.Hosts["sink"].ReceivedFor(0) != 0 {
		t.Fatal("tag-0 should have no deliveries")
	}
}
