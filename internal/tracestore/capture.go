package tracestore

import (
	"sync"

	"repro/internal/sdn"
	"repro/internal/trace"
)

// Recorder adapts a Store to the sdn packet-capture hook: every packet
// injected into the network becomes one trace entry, stamped by a
// monotone tick counter (or a caller-supplied clock) and appended to the
// store. It is safe for concurrent capture — parallel injectors
// interleave whole records, never tear them.
type Recorder struct {
	mu    sync.Mutex
	st    *Store
	clock func() int64
	tick  int64
	count int64
	err   error
}

// NewRecorder wraps a store as a capture hook.
func NewRecorder(st *Store) *Recorder { return &Recorder{st: st} }

// WithClock substitutes the timestamp source (e.g. wall-clock
// nanoseconds); the default is a per-recorder monotone tick counter.
func (r *Recorder) WithClock(fn func() int64) *Recorder {
	r.clock = fn
	return r
}

// CapturePacket implements sdn.PacketCapture. Backtesting tags are a
// replay artifact and are not recorded. The first append error is
// retained (and further capture stops) rather than failing injection —
// the capture path must never break the network under observation.
func (r *Recorder) CapturePacket(srcHost string, pkt sdn.Packet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	var t int64
	if r.clock != nil {
		t = r.clock()
	} else {
		r.tick++
		t = r.tick
	}
	pkt.Tags = 0
	if err := r.st.Append(trace.Entry{Time: t, SrcHost: srcHost, Pkt: pkt}); err != nil {
		r.err = err
		return
	}
	r.count++
}

// Count returns how many packets have been captured.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Err returns the first append error, if capture degraded.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
