// Package tracestore is the durable substrate under backtesting: an
// append-only, segmented on-disk trace log. Captured packets are encoded
// as the paper's fixed-width 120-byte log records (§5.4) — or as JSONL
// for debuggability — into numbered segment files that rotate at a size
// threshold, carry a sidecar index (entry count, time range, source
// hosts), and are replayed through a streaming iterator whose memory use
// is O(one record), independent of workload length. Retention and
// compaction keep the log bounded; the iterator's time-window and host
// filters use the per-segment index to skip whole segments.
package tracestore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Codec encodes trace entries as on-disk records. Implementations must
// produce self-delimiting records so a segment is the plain
// concatenation of its records (which is what makes compaction a byte
// copy).
type Codec interface {
	// Name identifies the codec in segment file extensions and CLIs.
	Name() string
	// Ext is the segment file extension (".bin", ".jsonl").
	Ext() string
	// AppendRecord encodes one entry onto dst.
	AppendRecord(dst []byte, e trace.Entry) ([]byte, error)
	// ReadRecord decodes the next record from r; io.EOF signals a clean
	// end of segment.
	ReadRecord(r *bufio.Reader) (trace.Entry, error)
}

// Binary is the default codec: the paper's fixed-width 120-byte log
// record (§5.4), delegated to the trace package so size accounting and
// encoding share one definition.
var Binary Codec = binaryCodec{}

// JSONL encodes one JSON object per line — a debuggable alternative
// backend readable with standard tools.
var JSONL Codec = jsonlCodec{}

// CodecByName resolves "binary" or "jsonl".
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return Binary, nil
	case "jsonl":
		return JSONL, nil
	}
	return nil, fmt.Errorf("tracestore: unknown codec %q (want binary or jsonl)", name)
}

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }
func (binaryCodec) Ext() string  { return ".bin" }

func (binaryCodec) AppendRecord(dst []byte, e trace.Entry) ([]byte, error) {
	return trace.AppendRecord(dst, e)
}

func (binaryCodec) ReadRecord(r *bufio.Reader) (trace.Entry, error) {
	var rec [trace.RecordSize]byte
	if _, err := io.ReadFull(r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("tracestore: torn binary record: %w", err)
		}
		return trace.Entry{}, err
	}
	return trace.DecodeRecord(rec[:])
}

// jsonRecord is the JSONL wire shape; short keys keep lines compact.
type jsonRecord struct {
	T   int64  `json:"t"`
	H   string `json:"h"`
	SIP int64  `json:"sip"`
	DIP int64  `json:"dip"`
	SPT int64  `json:"spt"`
	DPT int64  `json:"dpt"`
	PR  int64  `json:"pr"`
}

type jsonlCodec struct{}

func (jsonlCodec) Name() string { return "jsonl" }
func (jsonlCodec) Ext() string  { return ".jsonl" }

func (jsonlCodec) AppendRecord(dst []byte, e trace.Entry) ([]byte, error) {
	line, err := json.Marshal(jsonRecord{
		T: e.Time, H: e.SrcHost,
		SIP: e.Pkt.SrcIP, DIP: e.Pkt.DstIP,
		SPT: e.Pkt.SrcPort, DPT: e.Pkt.DstPort, PR: e.Pkt.Proto,
	})
	if err != nil {
		return dst, err
	}
	dst = append(dst, line...)
	return append(dst, '\n'), nil
}

func (jsonlCodec) ReadRecord(r *bufio.Reader) (trace.Entry, error) {
	line, err := r.ReadBytes('\n')
	if err == io.EOF && len(line) == 0 {
		return trace.Entry{}, io.EOF
	}
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("tracestore: torn JSONL record: %w", io.ErrUnexpectedEOF)
		}
		return trace.Entry{}, err
	}
	var jr jsonRecord
	if err := json.Unmarshal(bytes.TrimSuffix(line, []byte{'\n'}), &jr); err != nil {
		return trace.Entry{}, fmt.Errorf("tracestore: corrupt JSONL record: %w", err)
	}
	e := trace.Entry{Time: jr.T, SrcHost: jr.H}
	e.Pkt.SrcIP, e.Pkt.DstIP = jr.SIP, jr.DIP
	e.Pkt.SrcPort, e.Pkt.DstPort, e.Pkt.Proto = jr.SPT, jr.DPT, jr.PR
	return e, nil
}
