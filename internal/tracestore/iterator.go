package tracestore

import (
	"bufio"
	"io"
	"math"

	"repro/internal/trace"
)

// View is a filtered, streaming read of the store. It implements
// trace.Source, so it plugs directly into backtesting as a workload:
// segments stream one record at a time through a fixed-size buffer, and
// the per-segment time/host index skips segments the filters exclude —
// replay memory is O(one record), independent of trace length.
type View struct {
	st       *Store
	from, to int64
	hosts    map[string]struct{}
}

// Source returns an unfiltered view over the whole log.
func (s *Store) Source() *View {
	return &View{st: s, from: math.MinInt64, to: math.MaxInt64}
}

// Store returns the store the view reads, for observability (a consumer
// can report which log, and how much of it, a replay draws from).
func (v *View) Store() *Store { return v.st }

// Bounds returns the view's time window (math.MinInt64 / math.MaxInt64
// when unbounded).
func (v *View) Bounds() (from, to int64) { return v.from, v.to }

// Window restricts the view to entries with from <= Time <= to.
func (v *View) Window(from, to int64) *View {
	w := *v
	w.from, w.to = from, to
	return &w
}

// ForHosts restricts the view to entries injected by the given hosts.
func (v *View) ForHosts(hosts ...string) *View {
	w := *v
	w.hosts = make(map[string]struct{}, len(hosts))
	for _, h := range hosts {
		w.hosts[h] = struct{}{}
	}
	return &w
}

// keep applies the record-level filters.
func (v *View) keep(e trace.Entry) bool {
	if e.Time < v.from || e.Time > v.to {
		return false
	}
	if v.hosts != nil {
		if _, ok := v.hosts[e.SrcHost]; !ok {
			return false
		}
	}
	return true
}

// skipSegment applies the segment-level index filters.
func (v *View) skipSegment(si SegmentInfo) bool {
	if !si.overlapsWindow(v.from, v.to) {
		return true
	}
	if v.hosts != nil {
		any := false
		for h := range v.hosts {
			if si.mayContainHost(h) {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	return false
}

// Scan streams every matching entry, in segment order, to fn. It reads
// a consistent snapshot — segments sealed or flushed before the call —
// that concurrent appends, retention, and compaction cannot disturb.
func (v *View) Scan(fn func(trace.Entry) error) error {
	segs, err := v.st.snapshotReadable(v.skipSegment)
	if err != nil {
		return err
	}
	defer func() {
		for _, seg := range segs {
			seg.f.Close()
		}
	}()
	codec := v.st.opts.Codec
	for _, seg := range segs {
		if err := scanSegment(seg, codec, v, fn); err != nil {
			return err
		}
	}
	return nil
}

// Count streams the view and returns how many entries it yields.
func (v *View) Count() (int64, error) {
	var n int64
	err := v.Scan(func(trace.Entry) error { n++; return nil })
	return n, err
}

// scanSegment streams one snapshot segment, bounded to the byte extent
// the snapshot recorded (concurrent appends past it are invisible).
func scanSegment(seg openSegment, codec Codec, v *View, fn func(trace.Entry) error) error {
	r := bufio.NewReaderSize(io.LimitReader(seg.f, seg.info.Bytes), 64<<10)
	for {
		e, err := codec.ReadRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !v.keep(e) {
			continue
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}
