package tracestore

import (
	"io"
	"os"
	"path/filepath"
)

// RetentionPolicy bounds the log. Zero-valued fields impose no bound;
// only sealed segments are ever dropped (the active segment is always
// kept), and segments are dropped whole, oldest first.
type RetentionPolicy struct {
	// MaxSegments keeps at most this many sealed segments.
	MaxSegments int
	// MaxBytes drops the oldest sealed segments while the sealed total
	// exceeds this many bytes.
	MaxBytes int64
	// DropBefore drops segments whose every record is older than this
	// timestamp (MaxTime < DropBefore).
	DropBefore int64
}

// Retain applies the policy and returns the segments removed.
func (s *Store) Retain(p RetentionPolicy) ([]SegmentInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	drop := make(map[uint64]bool)
	if p.DropBefore != 0 {
		for _, si := range s.sealed {
			if si.MaxTime < p.DropBefore {
				drop[si.ID] = true
			}
		}
	}
	if p.MaxSegments > 0 {
		for i := 0; i < len(s.sealed)-p.MaxSegments; i++ {
			drop[s.sealed[i].ID] = true
		}
	}
	if p.MaxBytes > 0 {
		var total int64
		for _, si := range s.sealed {
			if !drop[si.ID] {
				total += si.Bytes
			}
		}
		for _, si := range s.sealed {
			if total <= p.MaxBytes {
				break
			}
			if !drop[si.ID] {
				drop[si.ID] = true
				total -= si.Bytes
			}
		}
	}
	if len(drop) == 0 {
		return nil, nil
	}

	var removed []SegmentInfo
	var kept []SegmentInfo
	for _, si := range s.sealed {
		if !drop[si.ID] {
			kept = append(kept, si)
			continue
		}
		if err := os.Remove(si.path); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		if err := os.Remove(filepath.Join(s.dir, indexName(si.ID))); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		removed = append(removed, si)
	}
	s.sealed = kept
	if len(removed) > 0 {
		s.notifyLocked()
	}
	return removed, nil
}

// Compact merges runs of adjacent undersized sealed segments — each
// below half the rotation thresholds — into single segments, preserving
// record order. Because every codec's segment is the plain concatenation
// of its records, compaction is a byte-level copy: no decode, no
// re-encode. It returns how many segments were merged away.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	small := func(si SegmentInfo) bool {
		return si.Entries < int64(s.opts.SegmentEntries)/2 && si.Bytes < s.opts.SegmentBytes/2
	}

	var out []SegmentInfo
	merged := 0
	for i := 0; i < len(s.sealed); {
		if !small(s.sealed[i]) {
			out = append(out, s.sealed[i])
			i++
			continue
		}
		// Grow the run while the next segment is also small and the
		// combined result stays under the rotation thresholds.
		run := []SegmentInfo{s.sealed[i]}
		entries, bytes := s.sealed[i].Entries, s.sealed[i].Bytes
		j := i + 1
		for j < len(s.sealed) && small(s.sealed[j]) &&
			entries+s.sealed[j].Entries <= int64(s.opts.SegmentEntries) &&
			bytes+s.sealed[j].Bytes <= s.opts.SegmentBytes {
			entries += s.sealed[j].Entries
			bytes += s.sealed[j].Bytes
			run = append(run, s.sealed[j])
			j++
		}
		if len(run) == 1 {
			out = append(out, s.sealed[i])
			i++
			continue
		}
		mi, err := s.mergeRunLocked(run)
		if err != nil {
			return merged, err
		}
		out = append(out, mi)
		merged += len(run) - 1
		i = j
	}
	s.sealed = out
	if merged > 0 {
		s.notifyLocked()
	}
	return merged, nil
}

// mergeRunLocked concatenates a run of sealed segments into the first
// segment's ID, atomically (tmp + rename), then removes the rest.
func (s *Store) mergeRunLocked(run []SegmentInfo) (SegmentInfo, error) {
	first := run[0]
	tmp := first.path + ".compact"
	w, err := os.Create(tmp)
	if err != nil {
		return SegmentInfo{}, err
	}
	info := SegmentInfo{ID: first.ID, MinTime: first.MinTime, MaxTime: first.MaxTime, Sealed: true, path: first.path}
	hosts := make(map[string]struct{})
	for _, si := range run {
		f, err := os.Open(si.path)
		if err == nil {
			_, err = io.Copy(w, f)
			f.Close()
		}
		if err != nil {
			w.Close()
			os.Remove(tmp)
			return SegmentInfo{}, err
		}
		info.Entries += si.Entries
		info.Bytes += si.Bytes
		if si.MinTime < info.MinTime {
			info.MinTime = si.MinTime
		}
		if si.MaxTime > info.MaxTime {
			info.MaxTime = si.MaxTime
		}
		if si.HostsOverflow {
			info.HostsOverflow = true
		}
		for _, h := range si.Hosts {
			hosts[h] = struct{}{}
		}
	}
	if len(hosts) > MaxIndexedHosts {
		info.HostsOverflow = true
	}
	if !info.HostsOverflow {
		info.Hosts = sortedHosts(hosts)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return SegmentInfo{}, err
	}
	if err := w.Close(); err != nil {
		return SegmentInfo{}, err
	}
	if err := os.Rename(tmp, first.path); err != nil {
		return SegmentInfo{}, err
	}
	if err := writeIndex(s.dir, info); err != nil {
		return SegmentInfo{}, err
	}
	for _, si := range run[1:] {
		if err := os.Remove(si.path); err != nil && !os.IsNotExist(err) {
			return SegmentInfo{}, err
		}
		if err := os.Remove(filepath.Join(s.dir, indexName(si.ID))); err != nil && !os.IsNotExist(err) {
			return SegmentInfo{}, err
		}
	}
	return info, nil
}
