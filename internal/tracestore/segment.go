package tracestore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

// countingReader tracks bytes consumed from the underlying reader, so
// recovery can compute the exact offset of the last intact record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// MaxIndexedHosts bounds the per-segment host index; a segment touched
// by more distinct hosts records none (HostsOverflow) and is treated as
// possibly containing any host.
const MaxIndexedHosts = 512

// SegmentInfo describes one segment of the log.
type SegmentInfo struct {
	// ID orders segments; replay visits segments in ascending ID.
	ID uint64 `json:"id"`
	// Entries is the record count.
	Entries int64 `json:"entries"`
	// Bytes is the segment file's real on-disk size.
	Bytes int64 `json:"bytes"`
	// MinTime and MaxTime bound the record timestamps (the time index).
	MinTime int64 `json:"min_time"`
	MaxTime int64 `json:"max_time"`
	// Hosts are the distinct source hosts, sorted (the host index); nil
	// with HostsOverflow set when more than MaxIndexedHosts appear.
	Hosts         []string `json:"hosts,omitempty"`
	HostsOverflow bool     `json:"hosts_overflow,omitempty"`
	// Sealed segments are immutable; only the newest segment accepts
	// appends.
	Sealed bool `json:"-"`

	path string
}

// Path returns the segment file's location.
func (si SegmentInfo) Path() string { return si.path }

// mayContainHost consults the host index; unknown (overflowed or empty
// pre-index) segments may contain anything.
func (si SegmentInfo) mayContainHost(host string) bool {
	if si.HostsOverflow || si.Hosts == nil {
		return true
	}
	i := sort.SearchStrings(si.Hosts, host)
	return i < len(si.Hosts) && si.Hosts[i] == host
}

// overlapsWindow consults the time index.
func (si SegmentInfo) overlapsWindow(from, to int64) bool {
	if si.Entries == 0 {
		return false
	}
	return si.MaxTime >= from && si.MinTime <= to
}

func segmentName(id uint64, c Codec) string { return fmt.Sprintf("seg-%08d%s", id, c.Ext()) }
func indexName(id uint64) string            { return fmt.Sprintf("seg-%08d.idx", id) }

// segmentWriter is the active (unsealed) segment.
type segmentWriter struct {
	f       *os.File
	w       *bufio.Writer
	scratch []byte
	info    SegmentInfo
	hosts   map[string]struct{}
}

func newSegmentWriter(dir string, id uint64, c Codec) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(id, c))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &segmentWriter{
		f: f, w: bufio.NewWriterSize(f, 64<<10),
		info:  SegmentInfo{ID: id, MinTime: math.MaxInt64, MaxTime: math.MinInt64, path: path},
		hosts: make(map[string]struct{}),
	}, nil
}

func (sw *segmentWriter) append(c Codec, e trace.Entry) error {
	rec, err := c.AppendRecord(sw.scratch[:0], e)
	if err != nil {
		return err
	}
	sw.scratch = rec[:0]
	if _, err := sw.w.Write(rec); err != nil {
		return err
	}
	sw.info.Entries++
	sw.info.Bytes += int64(len(rec))
	if e.Time < sw.info.MinTime {
		sw.info.MinTime = e.Time
	}
	if e.Time > sw.info.MaxTime {
		sw.info.MaxTime = e.Time
	}
	if !sw.info.HostsOverflow {
		sw.hosts[e.SrcHost] = struct{}{}
		if len(sw.hosts) > MaxIndexedHosts {
			sw.info.HostsOverflow = true
			sw.hosts = nil
		}
	}
	return nil
}

func (sw *segmentWriter) flush() error { return sw.w.Flush() }

func (sw *segmentWriter) sync() error {
	if err := sw.w.Flush(); err != nil {
		return err
	}
	return sw.f.Sync()
}

// seal flushes, fsyncs, records the real file size, writes the sidecar
// index, and closes the file. The returned info is immutable from here.
func (sw *segmentWriter) seal(dir string) (SegmentInfo, error) {
	if err := sw.sync(); err != nil {
		return SegmentInfo{}, err
	}
	st, err := sw.f.Stat()
	if err != nil {
		return SegmentInfo{}, err
	}
	sw.info.Bytes = st.Size()
	if err := sw.f.Close(); err != nil {
		return SegmentInfo{}, err
	}
	info := sw.info
	if !info.HostsOverflow {
		info.Hosts = sortedHosts(sw.hosts)
	}
	if info.Entries == 0 {
		info.MinTime, info.MaxTime = 0, 0
	}
	info.Sealed = true
	if err := writeIndex(dir, info); err != nil {
		return SegmentInfo{}, err
	}
	return info, nil
}

// snapshotInfo is the active segment's current metadata, for readers
// that stream while capture is still running.
func (sw *segmentWriter) snapshotInfo() SegmentInfo {
	info := sw.info
	if !info.HostsOverflow {
		info.Hosts = sortedHosts(sw.hosts)
	}
	if info.Entries == 0 {
		info.MinTime, info.MaxTime = 0, 0
	}
	return info
}

func sortedHosts(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// writeIndex persists the sidecar index atomically (tmp + rename).
func writeIndex(dir string, info SegmentInfo) error {
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, indexName(info.ID))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readIndex(dir string, id uint64) (SegmentInfo, error) {
	data, err := os.ReadFile(filepath.Join(dir, indexName(id)))
	if err != nil {
		return SegmentInfo{}, err
	}
	var info SegmentInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return SegmentInfo{}, err
	}
	info.Sealed = true
	return info, nil
}

// rebuildIndex scans a segment file to reconstruct its metadata — the
// recovery path for segments whose sidecar index is missing (e.g. the
// active segment of a crashed process). A torn final record is truncated
// away: everything before it is intact because records are appended
// whole.
func rebuildIndex(path string, id uint64, c Codec) (SegmentInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentInfo{}, err
	}
	defer f.Close()
	info := SegmentInfo{ID: id, MinTime: math.MaxInt64, MaxTime: math.MinInt64, path: path}
	hosts := make(map[string]struct{})
	cr := &countingReader{r: f}
	r := bufio.NewReaderSize(cr, 64<<10)
	var good int64
	for {
		e, err := c.ReadRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Only a torn tail — a record cut short by a crash
			// mid-append — is safely repairable by truncating to the
			// intact prefix. Any other failure (corrupt record mid-file,
			// transient I/O error) still has data behind it; destroying
			// that would turn one bad byte into a lost segment, so
			// recovery refuses and surfaces the error instead.
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				return SegmentInfo{}, fmt.Errorf("tracestore: segment %s corrupt at offset %d: %w", path, good, err)
			}
			if terr := os.Truncate(path, good); terr != nil {
				return SegmentInfo{}, fmt.Errorf("tracestore: truncating torn segment %s: %v (after %v)", path, terr, err)
			}
			break
		}
		good = cr.n - int64(r.Buffered())
		info.Entries++
		if e.Time < info.MinTime {
			info.MinTime = e.Time
		}
		if e.Time > info.MaxTime {
			info.MaxTime = e.Time
		}
		if !info.HostsOverflow {
			hosts[e.SrcHost] = struct{}{}
			if len(hosts) > MaxIndexedHosts {
				info.HostsOverflow = true
				hosts = nil
			}
		}
	}
	info.Bytes = good
	if !info.HostsOverflow {
		info.Hosts = sortedHosts(hosts)
	}
	if info.Entries == 0 {
		info.MinTime, info.MaxTime = 0, 0
	}
	return info, nil
}
