package tracestore

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// Options configures a store. Zero values take the defaults.
type Options struct {
	// Codec selects the record encoding (default Binary — the §5.4
	// 120-byte format). A store directory holds one codec; reopening
	// with a different one fails.
	Codec Codec
	// SegmentEntries rotates the active segment after this many records
	// (default 65536).
	SegmentEntries int
	// SegmentBytes rotates the active segment after this many bytes
	// (default 8 MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Codec == nil {
		o.Codec = Binary
	}
	if o.SegmentEntries <= 0 {
		o.SegmentEntries = 1 << 16
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Store is an append-only, segmented on-disk trace log. Appends go to
// the active segment, which seals (index sidecar + fsync) when it
// reaches the rotation thresholds; sealed segments are immutable and are
// the unit of retention, compaction, and index-based skipping. A Store
// is safe for concurrent use; readers obtained from Source observe a
// consistent prefix of the log.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	sealed []SegmentInfo // ascending ID
	active *segmentWriter
	nextID uint64
	closed bool
	// rotations counts seals performed by this process (threshold
	// rotations and the Close seal) — unlike Segments it excludes
	// segments recovered from disk, so it is the metric that tracks live
	// rotation activity.
	rotations int64
	// watch is the edge-triggered change broadcast backing follow-mode
	// readers: closed (and replaced lazily) whenever the readable extent
	// of the log changes. nil until someone asks.
	watch chan struct{}
}

var segmentRe = regexp.MustCompile(`^seg-(\d{8})\.(bin|jsonl)$`)

// Open creates or reopens a store directory. Every segment found on
// disk is sealed — missing or stale indexes are rebuilt by scanning the
// segment, truncating a torn final record if the previous process died
// mid-append — and new appends start a fresh segment.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts}
	for _, de := range names {
		m := segmentRe.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		if ext := "." + m[2]; ext != opts.Codec.Ext() {
			return nil, fmt.Errorf("tracestore: %s holds %s segments but codec %s was requested",
				dir, ext, opts.Codec.Name())
		}
		id, _ := strconv.ParseUint(m[1], 10, 64)
		path := filepath.Join(dir, de.Name())
		info, err := readIndex(dir, id)
		if err != nil || !indexMatchesFile(info, path) {
			info, err = rebuildIndex(path, id, opts.Codec)
			if err != nil {
				return nil, fmt.Errorf("tracestore: recovering segment %s: %w", path, err)
			}
			info.Sealed = true
			if err := writeIndex(dir, info); err != nil {
				return nil, err
			}
		}
		info.path = path
		st.sealed = append(st.sealed, info)
		if id >= st.nextID {
			st.nextID = id + 1
		}
	}
	sort.Slice(st.sealed, func(i, j int) bool { return st.sealed[i].ID < st.sealed[j].ID })
	return st, nil
}

// indexMatchesFile rejects a sidecar index that disagrees with the
// segment's real size (a crash between append and seal).
func indexMatchesFile(info SegmentInfo, path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Size() == info.Bytes
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Codec returns the store's record codec.
func (s *Store) Codec() Codec { return s.opts.Codec }

// Append encodes the entries onto the active segment, rotating it
// whenever a threshold is crossed.
func (s *Store) Append(entries ...trace.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("tracestore: store %s is closed", s.dir)
	}
	for _, e := range entries {
		if s.active == nil {
			sw, err := newSegmentWriter(s.dir, s.nextID, s.opts.Codec)
			if err != nil {
				return err
			}
			s.nextID++
			s.active = sw
		}
		if err := s.active.append(s.opts.Codec, e); err != nil {
			return err
		}
		if s.active.info.Entries >= int64(s.opts.SegmentEntries) ||
			s.active.info.Bytes >= s.opts.SegmentBytes {
			if err := s.sealActiveLocked(); err != nil {
				return err
			}
		}
	}
	if len(entries) > 0 {
		s.notifyLocked()
	}
	return nil
}

// changes returns a channel closed on the next mutation of the readable
// extent (append, seal, retention, compaction, close). Follow-mode
// readers grab the channel before scanning, so a mutation racing the
// scan still wakes the subsequent wait.
func (s *Store) changes() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watch == nil {
		s.watch = make(chan struct{})
	}
	return s.watch
}

// notifyLocked wakes every waiter registered via changes; callers hold
// s.mu.
func (s *Store) notifyLocked() {
	if s.watch != nil {
		close(s.watch)
		s.watch = nil
	}
}

// sealActiveLocked seals the active segment; callers hold s.mu.
func (s *Store) sealActiveLocked() error {
	if s.active == nil {
		return nil
	}
	info, err := s.active.seal(s.dir)
	if err != nil {
		return err
	}
	info.path = filepath.Join(s.dir, segmentName(info.ID, s.opts.Codec))
	s.sealed = append(s.sealed, info)
	s.active = nil
	s.rotations++
	return nil
}

// Sync flushes and fsyncs the active segment — the durability point for
// live capture.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	return s.active.sync()
}

// Close seals the active segment and marks the store unusable for
// further appends. Readers created before Close keep working: sealed
// segment files remain on disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer s.notifyLocked()
	return s.sealActiveLocked()
}

// Closed reports whether Close has been called. Follow-mode readers use
// it to distinguish "caught up, wait for more" from "the log has ended".
func (s *Store) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Segments returns a snapshot of all segment metadata, sealed first then
// the active segment, in replay order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]SegmentInfo(nil), s.sealed...)
	if s.active != nil {
		ai := s.active.snapshotInfo()
		out = append(out, ai)
	}
	return out
}

// Stats aggregates the log: segment count, total entries, real on-disk
// bytes, and the overall record-timestamp range.
type Stats struct {
	Segments int
	Entries  int64
	Bytes    int64
	MinTime  int64
	MaxTime  int64
	// Rotations counts segment seals performed by this process (not
	// segments recovered from disk at Open).
	Rotations int64
}

// Stats summarizes the store from its segment indexes.
func (s *Store) Stats() Stats {
	var st Stats
	s.mu.Lock()
	st.Rotations = s.rotations
	s.mu.Unlock()
	first := true
	for _, si := range s.Segments() {
		st.Segments++
		st.Entries += si.Entries
		st.Bytes += si.Bytes
		if si.Entries == 0 {
			continue
		}
		if first || si.MinTime < st.MinTime {
			st.MinTime = si.MinTime
		}
		if first || si.MaxTime > st.MaxTime {
			st.MaxTime = si.MaxTime
		}
		first = false
	}
	return st
}

// openSegment is one element of a read snapshot: segment metadata plus
// an already-open file handle.
type openSegment struct {
	info SegmentInfo
	f    *os.File
}

// snapshotReadable freezes the readable extent of the log: all sealed
// segments plus the flushed prefix of the active one. Segment files are
// opened here, under the store lock, so a concurrent Retain or Compact —
// which unlinks or renames files under the same lock — can never
// invalidate the snapshot: an already-open handle keeps reading the
// original bytes. Readers bound the active segment to its size at
// snapshot time, so concurrent appends never tear a read. skip lets the
// caller avoid opening segments its filters exclude. The caller owns the
// returned file handles.
func (s *Store) snapshotReadable(skip func(SegmentInfo) bool) ([]openSegment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := append([]SegmentInfo(nil), s.sealed...)
	if s.active != nil && s.active.info.Entries > 0 {
		if err := s.active.flush(); err != nil {
			return nil, err
		}
		infos = append(infos, s.active.snapshotInfo())
	}
	var out []openSegment
	for _, si := range infos {
		if skip != nil && skip(si) {
			continue
		}
		f, err := os.Open(si.path)
		if err != nil {
			for _, seg := range out {
				seg.f.Close()
			}
			return nil, err
		}
		out = append(out, openSegment{info: si, f: f})
	}
	return out, nil
}
