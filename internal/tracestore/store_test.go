package tracestore

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sdn"
	"repro/internal/trace"
)

func testEntries(n int, startTime int64) []trace.Entry {
	out := make([]trace.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, trace.Entry{
			Time:    startTime + int64(i),
			SrcHost: []string{"h1", "h2", "h3"}[i%3],
			Pkt: sdn.Packet{
				SrcIP: int64(i % 7), DstIP: 201, SrcPort: int64(1024 + i),
				DstPort: 80, Proto: 6,
			},
		})
	}
	return out
}

func collect(t *testing.T, v *View) []trace.Entry {
	t.Helper()
	var out []trace.Entry
	if err := v.Scan(func(e trace.Entry) error { out = append(out, e); return nil }); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestAppendScanRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{Binary, JSONL} {
		t.Run(codec.Name(), func(t *testing.T) {
			st, err := Open(t.TempDir(), Options{Codec: codec, SegmentEntries: 50})
			if err != nil {
				t.Fatal(err)
			}
			want := testEntries(173, 1)
			if err := st.Append(want...); err != nil {
				t.Fatal(err)
			}
			got := collect(t, st.Source())
			if len(got) != len(want) {
				t.Fatalf("scanned %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCodecPropertyRoundTrip is the randomized encode→decode property
// test over both store backends: arbitrary entries survive a trip
// through the store losslessly and in order.
func TestCodecPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hosts := []string{"", "h", "edge-01", "a-fairly-long-host-name-under-the-63-byte-codec-limit-000000"}
	var want []trace.Entry
	for i := 0; i < 500; i++ {
		want = append(want, trace.Entry{
			Time:    rng.Int63() - rng.Int63(),
			SrcHost: hosts[rng.Intn(len(hosts))],
			Pkt: sdn.Packet{
				SrcIP: rng.Int63() - rng.Int63(), DstIP: rng.Int63() - rng.Int63(),
				SrcPort: rng.Int63() - rng.Int63(), DstPort: rng.Int63() - rng.Int63(),
				Proto: rng.Int63() - rng.Int63(),
			},
		})
	}
	for _, codec := range []Codec{Binary, JSONL} {
		t.Run(codec.Name(), func(t *testing.T) {
			st, err := Open(t.TempDir(), Options{Codec: codec, SegmentEntries: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Append(want...); err != nil {
				t.Fatal(err)
			}
			got := collect(t, st.Source())
			if len(got) != len(want) {
				t.Fatalf("scanned %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestRotationAndSegmentIndex(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(100, 1000)...); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if len(segs) != 3 { // 40 + 40 + 20(active)
		t.Fatalf("segments = %d, want 3", len(segs))
	}
	if !segs[0].Sealed || !segs[1].Sealed || segs[2].Sealed {
		t.Fatalf("seal states wrong: %+v", segs)
	}
	if segs[0].MinTime != 1000 || segs[0].MaxTime != 1039 {
		t.Fatalf("segment 0 time index = [%d,%d]", segs[0].MinTime, segs[0].MaxTime)
	}
	if len(segs[0].Hosts) != 3 {
		t.Fatalf("segment 0 hosts = %v", segs[0].Hosts)
	}
	if segs[0].Bytes != 40*trace.RecordSize {
		t.Fatalf("segment 0 bytes = %d", segs[0].Bytes)
	}
	st.Close()
}

func TestReopenSealsAndPreserves(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentEntries: 30})
	if err != nil {
		t.Fatal(err)
	}
	want := testEntries(75, 1)
	if err := st.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{SegmentEntries: 30})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, st2.Source())
	if len(got) != len(want) {
		t.Fatalf("after reopen: %d entries, want %d", len(got), len(want))
	}
	// New appends land in a fresh segment with a higher ID.
	if err := st2.Append(testEntries(5, 1000)...); err != nil {
		t.Fatal(err)
	}
	segs := st2.Segments()
	last := segs[len(segs)-1]
	if last.Sealed || last.ID <= segs[len(segs)-2].ID {
		t.Fatalf("new active segment wrong: %+v", segs)
	}
	st2.Close()
}

func TestRecoveryTruncatesTornRecord(t *testing.T) {
	for _, codec := range []Codec{Binary, JSONL} {
		t.Run(codec.Name(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Append(testEntries(10, 1)...); err != nil {
				t.Fatal(err)
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			// Simulate a crash mid-append: no Close (no sidecar index),
			// and a torn final record.
			segs := st.Segments()
			path := segs[0].Path()
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-7); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, st2.Source())
			if len(got) != 9 {
				t.Fatalf("recovered %d entries, want 9", len(got))
			}
			st2.Close()
		})
	}
}

func TestRecoveryRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(10, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	path := st.Segments()[0].Path()
	// Flip record 4's host-length byte: corruption in the middle of the
	// file, with intact records behind it. Recovery must refuse rather
	// than truncate those records away.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{200}, 4*trace.RecordSize+48); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-file corruption silently truncated")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 10*trace.RecordSize {
		t.Fatalf("segment was modified: size %d err %v", fi.Size(), err)
	}
}

func TestScanSurvivesConcurrentRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(50, 1)...); err != nil {
		t.Fatal(err)
	}
	var count int64
	err = st.Source().Scan(func(e trace.Entry) error {
		count++
		if count == 1 {
			// Drop almost every segment mid-scan: the snapshot's open
			// handles must keep reading the unlinked files.
			if _, err := st.Retain(RetentionPolicy{MaxSegments: 1}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("scan under retention saw %d of 50 entries", count)
	}
	// The retention did apply for later readers.
	n, err := st.Source().Count()
	if err != nil || n != 10 {
		t.Fatalf("post-retention count = %d err = %v", n, err)
	}
	st.Close()
}

func TestOpenRejectsCodecMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Codec: JSONL})
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testEntries(1, 1)...)
	st.Close()
	if _, err := Open(dir, Options{Codec: Binary}); err == nil {
		t.Fatal("codec mismatch accepted")
	}
}

func TestViewWindowAndHostFilters(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(100, 1)...); err != nil {
		t.Fatal(err)
	}
	// Time window.
	got := collect(t, st.Source().Window(10, 19))
	if len(got) != 10 {
		t.Fatalf("windowed entries = %d, want 10", len(got))
	}
	for _, e := range got {
		if e.Time < 10 || e.Time > 19 {
			t.Fatalf("entry outside window: %+v", e)
		}
	}
	// Host filter: h1 appears at indices 0,3,6,... (34 of 100).
	n, err := st.Source().ForHosts("h1").Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 34 {
		t.Fatalf("h1 entries = %d, want 34", n)
	}
	// Unknown host: the segment index skips everything.
	n, err = st.Source().ForHosts("nope").Count()
	if err != nil || n != 0 {
		t.Fatalf("unknown host entries = %d err = %v", n, err)
	}
	// Disjoint window: skipped via the time index.
	n, err = st.Source().Window(10_000, 20_000).Count()
	if err != nil || n != 0 {
		t.Fatalf("disjoint window entries = %d err = %v", n, err)
	}
	st.Close()
}

func TestRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(100, 1)...); err != nil {
		t.Fatal(err)
	}
	// 5 sealed segments of 20 entries, no active remainder.
	if got := len(st.Segments()); got != 5 {
		t.Fatalf("segments = %d, want 5", got)
	}
	removed, err := st.Retain(RetentionPolicy{MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed = %d, want 2", len(removed))
	}
	n, err := st.Source().Count()
	if err != nil || n != 60 {
		t.Fatalf("entries after retention = %d err = %v", n, err)
	}
	// The newest entries survive.
	got := collect(t, st.Source())
	if got[0].Time != 41 {
		t.Fatalf("oldest surviving time = %d, want 41", got[0].Time)
	}
	// Segment files are actually gone.
	for _, si := range removed {
		if _, err := os.Stat(si.Path()); !os.IsNotExist(err) {
			t.Fatalf("segment %s still on disk", si.Path())
		}
	}
	// Time-based retention drops segments wholly before the cut.
	removed, err = st.Retain(RetentionPolicy{DropBefore: 61})
	if err != nil || len(removed) != 1 {
		t.Fatalf("time retention removed %d err = %v", len(removed), err)
	}
	st.Close()
}

func TestRetentionMaxBytes(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testEntries(40, 1)...)
	segBytes := int64(10 * trace.RecordSize)
	removed, err := st.Retain(RetentionPolicy{MaxBytes: 2 * segBytes})
	if err != nil || len(removed) != 2 {
		t.Fatalf("removed %d err = %v", len(removed), err)
	}
	if st.Stats().Bytes != 2*segBytes {
		t.Fatalf("bytes = %d", st.Stats().Bytes)
	}
	st.Close()
}

func TestCompactMergesSmallSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentEntries: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Three tiny sealed segments via reopen (each Open+Close seals).
	want := 0
	for i := 0; i < 3; i++ {
		st.Append(testEntries(10, int64(1+100*i))...)
		st.Close()
		want += 10
		st, err = Open(dir, Options{SegmentEntries: 100})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.Segments()); got != 3 {
		t.Fatalf("pre-compact segments = %d", got)
	}
	merged, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	segs := st.Segments()
	if len(segs) != 1 || segs[0].Entries != int64(want) {
		t.Fatalf("post-compact segments = %+v", segs)
	}
	if segs[0].MinTime != 1 || segs[0].MaxTime != 210 {
		t.Fatalf("merged time index = [%d,%d]", segs[0].MinTime, segs[0].MaxTime)
	}
	got := collect(t, st.Source())
	if len(got) != want {
		t.Fatalf("entries after compact = %d, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatal("compaction reordered entries")
		}
	}
	// The merged segment survives a reopen via its rewritten index.
	st.Close()
	st2, err := Open(dir, Options{SegmentEntries: 100})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := st2.Source().Count(); err != nil || n != int64(want) {
		t.Fatalf("after reopen: %d err = %v", n, err)
	}
	st2.Close()

	// Stray index files of merged-away segments are gone.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.idx"))
	if len(matches) != 1 {
		t.Fatalf("stray index files: %v", matches)
	}
}

func TestConcurrentCaptureAndScan(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(st)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.CapturePacket("h1", sdn.Packet{SrcIP: int64(w), DstIP: int64(i), DstPort: 80})
				if i%50 == 0 {
					// Readers race appends: they must see whole records.
					if _, err := st.Source().Count(); err != nil {
						t.Errorf("concurrent scan: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if rec.Count() != workers*per {
		t.Fatalf("captured %d, want %d", rec.Count(), workers*per)
	}
	n, err := st.Source().Count()
	if err != nil || n != workers*per {
		t.Fatalf("scanned %d err = %v", n, err)
	}
	st.Close()
}

func TestStatsAggregates(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 30})
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testEntries(70, 5)...)
	s := st.Stats()
	if s.Entries != 70 || s.Segments != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinTime != 5 || s.MaxTime != 74 {
		t.Fatalf("time range = [%d,%d]", s.MinTime, s.MaxTime)
	}
	if s.Bytes != 70*trace.RecordSize {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	st.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Append(testEntries(1, 1)...); err == nil {
		t.Fatal("append after close succeeded")
	}
}
