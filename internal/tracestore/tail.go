package tracestore

import (
	"bufio"
	"context"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// TailPosition locates a follow-mode reader in the log: the segment it
// is reading and the byte offset of the next record within it. The zero
// value means "the oldest record still retained".
type TailPosition struct {
	Segment uint64
	Offset  int64
}

// TailOptions configures a Tail. Zero values take the defaults.
type TailOptions struct {
	// From is the starting position (zero = oldest retained record).
	From TailPosition
	// Poll is the fallback wake interval for stores mutated by another
	// process (default 200ms). Same-process appends wake the tail
	// immediately through the store's change broadcast; the poll only
	// bounds staleness when the broadcast cannot fire.
	Poll time.Duration
}

// Tail is a follow-mode reader: it streams records in log order as
// segments grow and rotate, then blocks until more arrive. It interacts
// safely with retention and compaction — segment files are opened under
// the store lock (an unlink cannot invalidate an open snapshot), and
// when the segment the tail is positioned on has been retained away the
// tail skips forward to the oldest surviving segment, counting the hop
// in Skipped rather than erroring.
//
// A Tail reads whole records only: appends become visible record-at-a-
// time because the segment writer flushes complete encodings, and each
// catch-up pass bounds reads to the byte extent frozen by its snapshot.
type Tail struct {
	st   *Store
	pos  TailPosition
	poll time.Duration
	// doneSealed records that the positioned segment was sealed and
	// consumed to its full extent — if it then disappears, nothing was
	// lost and the hop to its successor is not a skip.
	doneSealed bool
	skipped    atomic.Int64
	entries    atomic.Int64
}

// Tail creates a follow-mode reader over the store.
func (s *Store) Tail(opts TailOptions) *Tail {
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Millisecond
	}
	// A zero From means "the oldest record still retained": landing on a
	// first segment with a higher ID is then by definition not a loss.
	return &Tail{st: s, pos: opts.From, poll: opts.Poll,
		doneSealed: opts.From == TailPosition{}}
}

// Position returns the tail's current position: the next record to be
// delivered starts here. Valid only between Follow calls or from within
// the callback.
func (t *Tail) Position() TailPosition { return t.pos }

// Skipped counts the segments the tail hopped over because retention
// (or compaction) removed them before they were read.
func (t *Tail) Skipped() int64 { return t.skipped.Load() }

// Entries counts records delivered to the callback.
func (t *Tail) Entries() int64 { return t.entries.Load() }

// Follow streams records to fn from the tail's position onward,
// blocking for more once caught up. It returns when ctx is cancelled
// (ctx.Err()), when fn returns an error (that error), or — after
// delivering every remaining record — when the store has been closed
// (nil). fn runs on the caller's goroutine.
func (t *Tail) Follow(ctx context.Context, fn func(trace.Entry) error) error {
	timer := time.NewTimer(t.poll)
	defer timer.Stop()
	for {
		// Grab the change channel before reading: a mutation racing the
		// catch-up pass closes this channel, so the wait below cannot
		// miss it.
		ch := t.st.changes()
		n, err := t.catchUp(fn)
		if err != nil {
			return err
		}
		if n > 0 {
			// Delivered something; go straight around for more.
			if err := ctx.Err(); err != nil {
				return err
			}
			continue
		}
		if t.st.Closed() {
			return nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t.poll)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		case <-timer.C:
		}
	}
}

// catchUp delivers every record readable from the current position and
// advances it, returning how many were delivered.
func (t *Tail) catchUp(fn func(trace.Entry) error) (int, error) {
	segs, err := t.st.snapshotReadable(func(si SegmentInfo) bool {
		return si.ID < t.pos.Segment
	})
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, seg := range segs {
			seg.f.Close()
		}
	}()
	codec := t.st.opts.Codec
	delivered := 0
	for _, seg := range segs {
		if seg.info.ID > t.pos.Segment {
			// The positioned segment is absent from the snapshot. Either
			// we had consumed it whole while sealed (a natural advance),
			// or retention removed it before we finished — skip forward
			// to the oldest survivor and count the hop.
			if !t.doneSealed {
				t.skipped.Add(1)
			}
			t.pos = TailPosition{Segment: seg.info.ID}
			t.doneSealed = false
		}
		if t.pos.Offset > seg.info.Bytes {
			// The file shrank under us (possible only through external
			// interference); treat like a retained segment rather than
			// reading garbage.
			t.skipped.Add(1)
			t.pos = TailPosition{Segment: seg.info.ID + 1}
			t.doneSealed = false
			continue
		}
		if t.pos.Offset < seg.info.Bytes {
			t.doneSealed = false
			n, err := t.readSegment(seg, codec, fn)
			delivered += n
			if err != nil {
				return delivered, err
			}
		}
		// Consumed to the snapshot extent. A sealed segment can still
		// grow (compaction merges successors into it), so the position
		// stays here; doneSealed marks that its disappearance would lose
		// nothing.
		t.doneSealed = seg.info.Sealed && t.pos.Offset == seg.info.Bytes
	}
	return delivered, nil
}

// readSegment streams records from pos.Offset to the snapshot extent of
// one segment, updating the position after every record so an error or
// restart resumes exactly at the next record boundary.
func (t *Tail) readSegment(seg openSegment, codec Codec, fn func(trace.Entry) error) (int, error) {
	start := t.pos.Offset
	if _, err := seg.f.Seek(start, io.SeekStart); err != nil {
		return 0, err
	}
	cr := &countingReader{r: io.LimitReader(seg.f, seg.info.Bytes-start)}
	r := bufio.NewReaderSize(cr, 64<<10)
	delivered := 0
	for {
		e, err := codec.ReadRecord(r)
		if err == io.EOF {
			return delivered, nil
		}
		if err != nil {
			return delivered, err
		}
		t.pos.Offset = start + cr.n - int64(r.Buffered())
		t.entries.Add(1)
		delivered++
		if err := fn(e); err != nil {
			return delivered, err
		}
	}
}
