package tracestore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/trace"
)

// follow runs t.Follow on a goroutine and returns a receive channel of
// delivered entries plus a done channel carrying Follow's result.
func follow(ctx context.Context, tl *Tail) (<-chan trace.Entry, <-chan error) {
	out := make(chan trace.Entry, 1024)
	done := make(chan error, 1)
	go func() {
		defer close(out)
		done <- tl.Follow(ctx, func(e trace.Entry) error {
			select {
			case out <- e:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()
	return out, done
}

// TestTailFollowsLiveAppends: a tail started on an empty store sees
// every record appended afterwards, in order, across rotations, and
// Follow returns nil once the store closes.
func TestTailFollowsLiveAppends(t *testing.T) {
	for _, codec := range []Codec{Binary, JSONL} {
		t.Run(codec.Name(), func(t *testing.T) {
			st, err := Open(t.TempDir(), Options{Codec: codec, SegmentEntries: 7})
			if err != nil {
				t.Fatal(err)
			}
			tl := st.Tail(TailOptions{})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			out, done := follow(ctx, tl)

			want := testEntries(100, 1)
			for i := 0; i < len(want); i += 9 {
				end := min(i+9, len(want))
				if err := st.Append(want[i:end]...); err != nil {
					t.Fatal(err)
				}
			}
			var got []trace.Entry
			for len(got) < len(want) {
				select {
				case e := <-out:
					got = append(got, e)
				case <-ctx.Done():
					t.Fatalf("timed out with %d/%d entries", len(got), len(want))
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatalf("Follow: %v", err)
			}
			for i := range want {
				if got[i].Time != want[i].Time || got[i].SrcHost != want[i].SrcHost {
					t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
				}
			}
			if tl.Skipped() != 0 {
				t.Fatalf("skipped = %d on an unretained store", tl.Skipped())
			}
		})
	}
}

// TestTailStartsAtOldestRetained: records retained away before the tail
// starts are not a skip — the zero position means "oldest retained".
func TestTailStartsAtOldestRetained(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(20, 1)...); err != nil { // segments 0..3
		t.Fatal(err)
	}
	if _, err := st.Retain(RetentionPolicy{MaxSegments: 2}); err != nil {
		t.Fatal(err)
	}
	tl := st.Tail(TailOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, done := follow(ctx, tl)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var got []trace.Entry
	for e := range out {
		got = append(got, e)
	}
	if err := <-done; err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if len(got) != 10 || got[0].Time != 11 {
		t.Fatalf("got %d entries starting at %d, want 10 starting at 11", len(got), got[0].Time)
	}
	if tl.Skipped() != 0 {
		t.Fatalf("skipped = %d, want 0 (zero position = oldest retained)", tl.Skipped())
	}
}

// TestTailSkipsForwardPastRetention: a tail positioned mid-segment when
// retention deletes that segment skips forward cleanly to the oldest
// survivor and counts the hop.
func TestTailSkipsForwardPastRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntries(20, 1)...); err != nil { // segments 0..3
		t.Fatal(err)
	}
	tl := st.Tail(TailOptions{})
	// Deliver exactly 3 records (mid-segment 0), then stop.
	stop := errors.New("pause")
	n := 0
	err = tl.Follow(context.Background(), func(trace.Entry) error {
		n++
		if n == 3 {
			return stop
		}
		return nil
	})
	if err != stop || n != 3 {
		t.Fatalf("paused follow: n=%d err=%v", n, err)
	}
	if _, err := st.Retain(RetentionPolicy{MaxSegments: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var got []trace.Entry
	if err := tl.Follow(context.Background(), func(e trace.Entry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("Follow after retention: %v", err)
	}
	if len(got) != 5 || got[0].Time != 16 {
		t.Fatalf("got %d entries starting at %v, want segment 3's 5 entries from 16",
			len(got), got)
	}
	if tl.Skipped() == 0 {
		t.Fatal("skip past retained segments not counted")
	}
}

// TestTailRaceRotationRetention is the satellite race check: one
// goroutine appends (rotating every few records), one applies retention
// continuously, and a tail follows throughout. The tail must never
// error, must deliver records in order, and must reach the end of the
// log once the writer closes the store.
func TestTailRaceRotationRetention(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	want := testEntries(total, 1)

	tl := st.Tail(TailOptions{Poll: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	retDone := make(chan struct{})
	go func() {
		defer close(retDone)
		for ctx.Err() == nil {
			if _, err := st.Retain(RetentionPolicy{MaxSegments: 3}); err != nil {
				t.Errorf("retain: %v", err)
				return
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
		}
	}()

	out, done := follow(ctx, tl)

	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for i := 0; i < total; i += 5 {
			end := min(i+5, total)
			if err := st.Append(want[i:end]...); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()

	// Drain deliveries until the tail reaches the final record. The last
	// segments always survive retention (the active segment is never
	// dropped and MaxSegments keeps the newest sealed ones), so the tail
	// is guaranteed to get there.
	var got []trace.Entry
	for len(got) == 0 || got[len(got)-1].Time != want[total-1].Time {
		select {
		case e := <-out:
			got = append(got, e)
		case <-ctx.Done():
			t.Fatalf("timed out: %d entries delivered, skipped %d", len(got), tl.Skipped())
		}
	}
	<-writeDone
	cancel() // stop the retention loop
	<-retDone
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("Follow: %v", err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time <= got[i-1].Time {
			t.Fatalf("out-of-order delivery at %d: %d after %d", i, got[i].Time, got[i-1].Time)
		}
	}
	t.Logf("delivered %d/%d entries, skipped %d segment hops", len(got), total, tl.Skipped())
}
