package tracestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrBadName rejects tenant or trace names that are empty, over-long, or
// contain characters outside [a-z0-9._-]. Names become path components
// under the tenants root, so the alphabet is restricted to block
// traversal ("..", "/") outright.
var ErrBadName = errors.New("tracestore: name must match [a-z0-9._-]{1,64} and not start with '.'")

// ValidName reports whether s is acceptable as a tenant or trace name.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > 64 || s[0] == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Tenants manages a directory tree of per-tenant trace stores:
// root/<tenant>/<trace> is one Store. Handles are opened lazily on first
// use, cached, and shared between ingest and repair jobs; all methods
// are safe for concurrent use. The daemon owns exactly one Tenants over
// its data directory.
type Tenants struct {
	root string
	opts Options

	mu     sync.Mutex
	stores map[string]*Store // key: tenant + "/" + name
	closed bool
}

// OpenTenants prepares a tenants root directory. opts applies to every
// store opened beneath it.
func OpenTenants(root string, opts Options) (*Tenants, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &Tenants{root: root, opts: opts, stores: make(map[string]*Store)}, nil
}

// Root returns the managed directory.
func (t *Tenants) Root() string { return t.root }

// Open returns the tenant's named store, creating its directory on first
// use. The same *Store is returned for every call with the same pair.
func (t *Tenants) Open(tenant, name string) (*Store, error) {
	if !ValidName(tenant) || !ValidName(name) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, tenant, name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("tracestore: tenants manager is closed")
	}
	key := tenant + "/" + name
	if st, ok := t.stores[key]; ok {
		return st, nil
	}
	st, err := Open(filepath.Join(t.root, tenant, name), t.opts)
	if err != nil {
		return nil, err
	}
	t.stores[key] = st
	return st, nil
}

// Lookup returns the tenant's named store only if it already exists on
// disk — repair jobs reference traces by name and must not create empty
// stores for typos. The (nil, nil) return means "no such trace".
func (t *Tenants) Lookup(tenant, name string) (*Store, error) {
	if !ValidName(tenant) || !ValidName(name) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, tenant, name)
	}
	t.mu.Lock()
	cached := t.stores[tenant+"/"+name]
	t.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	if fi, err := os.Stat(filepath.Join(t.root, tenant, name)); err != nil || !fi.IsDir() {
		return nil, nil
	}
	return t.Open(tenant, name)
}

// List returns the tenant's trace names in sorted order. A tenant with
// no traces (or that has never ingested) lists empty.
func (t *Tenants) List(tenant string) ([]string, error) {
	if !ValidName(tenant) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, tenant)
	}
	des, err := os.ReadDir(filepath.Join(t.root, tenant))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if de.IsDir() && ValidName(de.Name()) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// CloseAll syncs and closes every cached store. The manager is unusable
// afterwards; the daemon calls this once during shutdown.
func (t *Tenants) CloseAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	var first error
	for key, st := range t.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(t.stores, key)
	}
	return first
}
