package tracestore

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestTenantsNameValidation(t *testing.T) {
	tn, err := OpenTenants(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	defer tn.CloseAll()
	bad := []string{"", "..", "../escape", "a/b", "UPPER", "space name",
		".hidden", "x\x00y", "over" + string(make([]byte, 64))}
	for _, name := range bad {
		if _, err := tn.Open(name, "trace"); !errors.Is(err, ErrBadName) {
			t.Errorf("Open(%q): %v, want ErrBadName", name, err)
		}
		if _, err := tn.Open("tenant", name); !errors.Is(err, ErrBadName) {
			t.Errorf("Open(tenant, %q): %v, want ErrBadName", name, err)
		}
	}
	for _, name := range []string{"acme", "t-1", "q1.capture", "a_b-c.d"} {
		if _, err := tn.Open(name, name); err != nil {
			t.Errorf("Open(%q): %v", name, err)
		}
	}
}

func TestTenantsSharedHandleAndLayout(t *testing.T) {
	root := t.TempDir()
	tn, err := OpenTenants(root, Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	defer tn.CloseAll()
	a, err := tn.Open("acme", "cap1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if a.Dir() != filepath.Join(root, "acme", "cap1") {
		t.Fatalf("store dir = %s", a.Dir())
	}
	b, err := tn.Open("acme", "cap1")
	if err != nil || b != a {
		t.Fatalf("second Open returned a different handle (%p vs %p, err %v)", b, a, err)
	}
	if err := a.Append(trace.Entry{Time: time.Unix(1, 0).UnixNano(), SrcHost: "h1"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	n, err := b.Source().Count()
	if err != nil || n != 1 {
		t.Fatalf("shared handle count = (%d, %v), want 1", n, err)
	}
}

func TestTenantsLookupAndList(t *testing.T) {
	tn, err := OpenTenants(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	defer tn.CloseAll()
	if st, err := tn.Lookup("acme", "missing"); err != nil || st != nil {
		t.Fatalf("Lookup missing = (%v, %v), want (nil, nil)", st, err)
	}
	if names, err := tn.List("acme"); err != nil || len(names) != 0 {
		t.Fatalf("List of unknown tenant = (%v, %v)", names, err)
	}
	for _, name := range []string{"cap2", "cap1"} {
		if _, err := tn.Open("acme", name); err != nil {
			t.Fatalf("Open: %v", err)
		}
	}
	names, err := tn.List("acme")
	if err != nil || len(names) != 2 || names[0] != "cap1" || names[1] != "cap2" {
		t.Fatalf("List = (%v, %v), want [cap1 cap2]", names, err)
	}
	if st, err := tn.Lookup("acme", "cap1"); err != nil || st == nil {
		t.Fatalf("Lookup existing = (%v, %v)", st, err)
	}
	// Tenants are isolated: acme's traces do not appear under globex.
	if names, _ := tn.List("globex"); len(names) != 0 {
		t.Fatalf("cross-tenant leak: %v", names)
	}
}

func TestTenantsConcurrentOpen(t *testing.T) {
	tn, err := OpenTenants(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	defer tn.CloseAll()
	var wg sync.WaitGroup
	stores := make([]*Store, 16)
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := tn.Open("acme", "shared")
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			stores[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(stores); i++ {
		if stores[i] != stores[0] {
			t.Fatalf("concurrent Open returned distinct handles")
		}
	}
}

func TestTenantsCloseAll(t *testing.T) {
	tn, err := OpenTenants(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenTenants: %v", err)
	}
	st, err := tn.Open("acme", "cap1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Append(trace.Entry{Time: 1, SrcHost: "h"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := tn.CloseAll(); err != nil {
		t.Fatalf("CloseAll: %v", err)
	}
	if _, err := tn.Open("acme", "cap2"); err == nil {
		t.Fatal("Open succeeded on a closed manager")
	}
}
