// Package trema implements a miniature imperative controller language
// modeled on the Trema subset the paper builds a meta model for (Appendix
// B.2): a packet_in handler made of if clauses over packet fields,
// variable assignments, hash-table state, and the send_flow_mod_add /
// send_packet_out primitives. Programs convert to and from the NDlog
// controller dialect: the conversion preserves semantics (each if branch
// is one guarded rule), so the meta-provenance machinery reasons over the
// compiled rules while repairs are rendered and filtered at the Trema
// level. Ruby syntax imposes no restrictions on the repairs the paper
// considers, so every change kind is expressible (§5.8).
package trema

import (
	"fmt"
	"strings"

	"repro/internal/meta"
	"repro/internal/ndlog"
)

// Field names of the packet_in handler's packet object, in the order of
// the PacketIn tuple convention (after location and switch).
var packetFields = []string{"in_port", "src_ip", "dst_ip", "src_port", "dst_port"}

// Cond is one comparison in an if clause, e.g. packet.dst_port == 80, or a
// hash-table membership test (Table != "").
type Cond struct {
	Field string // packet field or local variable
	Op    ndlog.BinOp
	Value int64
	// Table, when set, renders as a hash membership test
	// (table.include?(field)) instead of a comparison.
	Table string
	// Text, when set, renders verbatim (conditions with no direct field
	// mapping, e.g. variable-to-variable comparisons).
	Text string
}

// String renders the condition in Ruby syntax.
func (c Cond) String() string {
	if c.Text != "" {
		return c.Text
	}
	if c.Table != "" {
		return fmt.Sprintf("@%s.include?(packet.%s)", strings.ToLower(c.Table), c.Field)
	}
	return fmt.Sprintf("packet.%s %s %d", c.Field, c.Op, c.Value)
}

// Action is what a branch does.
type Action struct {
	// Kind is "flow_mod", "packet_out", or "learn".
	Kind string
	// Port is the output port (flow_mod / packet_out).
	Port int64
	// PortFrom, when non-empty, takes the port from a variable/lookup.
	PortFrom string
	// LearnKey is the expression learned into the state table ("learn").
	LearnKey string
	// LearnTable is the hash table updated by "learn".
	LearnTable string
}

// String renders the action in Ruby syntax.
func (a Action) String() string {
	switch a.Kind {
	case "flow_mod":
		if a.PortFrom != "" {
			return fmt.Sprintf("send_flow_mod_add(datapath_id, actions: SendOutPort.new(%s))", a.PortFrom)
		}
		return fmt.Sprintf("send_flow_mod_add(datapath_id, actions: SendOutPort.new(%d))", a.Port)
	case "packet_out":
		return fmt.Sprintf("send_packet_out(datapath_id, actions: SendOutPort.new(%d))", a.Port)
	case "learn":
		return fmt.Sprintf("@%s[%s] = packet.in_port", strings.ToLower(a.LearnTable), a.LearnKey)
	}
	return "# unknown action"
}

// Branch is one if clause of the handler: a switch guard, field
// conditions, and an action.
type Branch struct {
	RuleID string // the NDlog rule this branch corresponds to
	Switch int64  // datapath guard (-1 = any switch)
	Conds  []Cond
	Action Action
}

// Handler is a packet_in handler: an ordered list of branches.
type Handler struct {
	Name     string
	Branches []Branch
}

// Source renders the handler as Ruby-flavoured Trema source.
func (h *Handler) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s < Controller\n", h.Name)
	b.WriteString("  def packet_in(datapath_id, packet)\n")
	for _, br := range h.Branches {
		var conds []string
		if br.Switch >= 0 {
			conds = append(conds, fmt.Sprintf("datapath_id == %d", br.Switch))
		}
		for _, c := range br.Conds {
			conds = append(conds, c.String())
		}
		cond := strings.Join(conds, " && ")
		if cond == "" {
			cond = "true"
		}
		fmt.Fprintf(&b, "    if %s  # %s\n", cond, br.RuleID)
		fmt.Fprintf(&b, "      %s\n", br.Action.String())
		b.WriteString("    end\n")
	}
	b.WriteString("  end\nend\n")
	return b.String()
}

// LineCount counts source lines (the Figure 10 program-size metric).
func (h *Handler) LineCount() int { return strings.Count(h.Source(), "\n") }

// FromNDlog translates an NDlog controller program into a Trema handler.
// Each rule becomes one if branch; state-table body predicates become hash
// lookups. Rules outside the recognized controller shape are rejected.
func FromNDlog(prog *ndlog.Program) (*Handler, error) {
	h := &Handler{Name: "RepairedController"}
	for _, r := range prog.Rules {
		br, err := branchFromRule(r)
		if err != nil {
			return nil, fmt.Errorf("trema: rule %s: %w", r.ID, err)
		}
		h.Branches = append(h.Branches, br)
	}
	return h, nil
}

// fieldNames maps NDlog PacketIn argument positions (after @C, Swi) to
// packet field names.
func fieldName(varName string, body *ndlog.Functor) (string, bool) {
	for i, a := range body.Args {
		v, ok := a.(*ndlog.Var)
		if !ok || v.Name != varName {
			continue
		}
		// PacketIn(@C, Swi, InPrt, Sip, Dip, Spt, Dpt)
		if i >= 2 && i-2 < len(packetFields) {
			return packetFields[i-2], true
		}
		if i == 1 {
			return "datapath", true
		}
	}
	return "", false
}

func branchFromRule(r *ndlog.Rule) (Branch, error) {
	br := Branch{RuleID: r.ID, Switch: -1}
	var pktPred *ndlog.Functor
	var statePred *ndlog.Functor
	for _, b := range r.Body {
		if b.Table == "PacketIn" {
			pktPred = b
		} else {
			statePred = b
		}
	}
	if pktPred == nil {
		return br, fmt.Errorf("no PacketIn predicate")
	}
	for _, s := range r.Sels {
		lv, lok := s.Left.(*ndlog.Var)
		rc, rok := s.Right.(*ndlog.ConstExpr)
		if !lok || !rok {
			// Conditions with no direct field mapping render verbatim.
			br.Conds = append(br.Conds, Cond{Text: s.String()})
			continue
		}
		field, ok := fieldName(lv.Name, pktPred)
		if !ok {
			br.Conds = append(br.Conds, Cond{Text: s.String()})
			continue
		}
		if field == "datapath" && s.Op == ndlog.OpEq {
			br.Switch = rc.Val.Int
			continue
		}
		br.Conds = append(br.Conds, Cond{Field: field, Op: s.Op, Value: rc.Val.Int})
	}
	if statePred != nil {
		// A state-table join renders as a hash membership test on the
		// joined field.
		joined := ""
		for _, a := range statePred.Args {
			if v, ok := a.(*ndlog.Var); ok {
				if f, ok := fieldName(v.Name, pktPred); ok {
					joined = f
					break
				}
			}
		}
		br.Conds = append(br.Conds, Cond{Field: joined, Table: statePred.Table})
	}
	switch r.Head.Table {
	case "FlowTable":
		br.Action = Action{Kind: "flow_mod"}
	case "PacketOut":
		br.Action = Action{Kind: "packet_out"}
	default:
		br.Action = Action{Kind: "learn", LearnTable: r.Head.Table}
	}
	if len(r.Assigns) > 0 {
		a := r.Assigns[0]
		switch e := a.Expr.(type) {
		case *ndlog.ConstExpr:
			br.Action.Port = e.Val.Int
			if br.Action.Kind == "learn" {
				br.Action.LearnKey = e.Val.String()
			}
		case *ndlog.Var:
			if f, ok := fieldName(e.Name, pktPred); ok {
				br.Action.PortFrom = "packet." + f
				br.Action.LearnKey = "packet." + f
			}
		}
	} else if statePred != nil && br.Action.Kind == "flow_mod" {
		// The output port comes from a state-table lookup (Q5's m2).
		br.Action.PortFrom = fmt.Sprintf("@%s[packet.dst_ip]", strings.ToLower(statePred.Table))
	}
	return br, nil
}

// Program pairs the Trema view of a controller with its compiled NDlog
// semantics; it implements the scenarios.LangProgram contract.
type Program struct {
	Handler *Handler
	prog    *ndlog.Program
}

// Translate builds the Trema view of an NDlog controller.
func Translate(prog *ndlog.Program) (*Program, error) {
	h, err := FromNDlog(prog)
	if err != nil {
		return nil, err
	}
	return &Program{Handler: h, prog: prog}, nil
}

// Controller returns the compiled NDlog semantics.
func (p *Program) Controller() *ndlog.Program { return p.prog }

// Source renders the Trema source.
func (p *Program) Source() string { return p.Handler.Source() }

// LineCount counts source lines.
func (p *Program) LineCount() int { return p.Handler.LineCount() }

// AllowChange reports whether the repair is expressible in Trema. Ruby
// places no syntactic restrictions on the paper's repair classes.
func (p *Program) AllowChange(meta.Change) bool { return true }

// Describe renders a repair at the Trema level.
func (p *Program) Describe(c meta.Change) string {
	switch c := c.(type) {
	case meta.SetConst:
		return fmt.Sprintf("edit packet_in: change constant %s to %s (branch %s)", c.Old, c.New, c.RuleID)
	case meta.SetOper:
		return fmt.Sprintf("edit packet_in: change %s to use %s (branch %s)", c.Sel, c.New, c.RuleID)
	case meta.DropSel:
		return fmt.Sprintf("edit packet_in: remove condition %s (branch %s)", c.Sel, c.RuleID)
	case meta.SetHeadTable:
		return fmt.Sprintf("edit packet_in: replace the action of branch %s with %s", c.RuleID, c.New)
	case meta.AddRule:
		return fmt.Sprintf("edit packet_in: add a branch copied from %s", c.Rule.ID)
	default:
		return c.String()
	}
}

// Name identifies the language.
func (p *Program) Name() string { return "Trema" }
