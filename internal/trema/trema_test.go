package trema

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/ndlog"
)

const ctl = `
materialize(FlowTable, 1, 6, keys(0,1,2,3,4)).
materialize(White, 1, 2, keys(0,1)).
a FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Dpt == 80, Sip < 10, Prt := 2.
b PacketOut(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.
c FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), White(@C,Sip), Swi == 2, Prt := 1.
d Learned(@C,K,Swi,InPrt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), K := Sip.
`

func TestSourceRendering(t *testing.T) {
	p, err := Translate(ndlog.MustParse("ctl", ctl))
	if err != nil {
		t.Fatal(err)
	}
	src := p.Source()
	for _, want := range []string{
		"class RepairedController < Controller",
		"datapath_id == 1",
		"packet.dst_port == 80",
		"packet.src_ip < 10",
		"send_flow_mod_add",
		"send_packet_out",
		"@white.include?(packet.src_ip)",
		"@learned[packet.src_ip] = packet.in_port",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
	if p.LineCount() < 14 {
		t.Fatalf("line count = %d", p.LineCount())
	}
}

func TestBranchPerRule(t *testing.T) {
	prog := ndlog.MustParse("ctl", ctl)
	h, err := FromNDlog(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Branches) != len(prog.Rules) {
		t.Fatalf("branches = %d, want %d", len(h.Branches), len(prog.Rules))
	}
	if h.Branches[0].Switch != 1 {
		t.Fatalf("branch a switch = %d", h.Branches[0].Switch)
	}
	if h.Branches[1].Action.Kind != "packet_out" {
		t.Fatalf("branch b action = %s", h.Branches[1].Action.Kind)
	}
	if h.Branches[3].Action.Kind != "learn" {
		t.Fatalf("branch d action = %s", h.Branches[3].Action.Kind)
	}
}

func TestVerbatimFallback(t *testing.T) {
	prog := ndlog.MustParse("f", `
x FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Sip == Dip, Prt := 1.
`)
	h, err := FromNDlog(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Branches[0].Conds) != 1 || h.Branches[0].Conds[0].Text == "" {
		t.Fatalf("var-var comparison should render verbatim: %+v", h.Branches[0].Conds)
	}
}

func TestRejectsNonControllerShape(t *testing.T) {
	prog := ndlog.MustParse("bad", `x A(@X) :- B(@X).`)
	if _, err := FromNDlog(prog); err == nil {
		t.Fatal("expected error for a rule without PacketIn")
	}
}

func TestAllChangesExpressible(t *testing.T) {
	p, _ := Translate(ndlog.MustParse("ctl", ctl))
	changes := []meta.Change{
		meta.SetConst{RuleID: "a", Path: "sel/0/R", Old: ndlog.Int(1), New: ndlog.Int(2)},
		meta.SetOper{RuleID: "a", SelIdx: 0, Old: ndlog.OpEq, New: ndlog.OpGt},
		meta.DropSel{RuleID: "a", SelIdx: 0},
		meta.SetHeadTable{RuleID: "a", Old: "FlowTable", New: "PacketOut"},
	}
	for _, c := range changes {
		if !p.AllowChange(c) {
			t.Errorf("Trema must allow %s", c)
		}
		if p.Describe(c) == "" {
			t.Errorf("empty description for %s", c)
		}
	}
	if p.Name() != "Trema" {
		t.Fatalf("name = %q", p.Name())
	}
}
