package metarepair

import (
	"math"
	"strconv"
	"time"
	"unicode/utf8"
)

// AppendJSON encodes the event onto dst exactly as encoding/json would
// (same field order, omitempty behavior, string escaping, and number
// formatting) without any per-event allocation: the SSE and JSONL hot
// paths reuse one buffer per connection instead of calling json.Marshal
// per event. Float fields must be finite — events never carry NaN/Inf.
func (e *Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"time":`...)
	dst = appendJSONTime(dst, e.Time)
	dst = append(dst, `,"kind":`...) // Kind has no omitempty tag
	dst = appendJSONString(dst, e.Kind)
	dst = appendJSONStringField(dst, `,"symptom":`, e.Symptom)
	dst = appendJSONIntField(dst, `,"candidates":`, int64(e.Candidates))
	dst = appendJSONIntField(dst, `,"steps":`, int64(e.Steps))
	dst = appendJSONIntField(dst, `,"filtered":`, int64(e.Filtered))
	dst = appendJSONIntField(dst, `,"dropped":`, int64(e.Dropped))
	dst = appendJSONIntField(dst, `,"batch":`, int64(e.Batch))
	dst = appendJSONIntField(dst, `,"batches":`, int64(e.Batches))
	dst = appendJSONIntField(dst, `,"size":`, int64(e.Size))
	dst = appendJSONIntField(dst, `,"parallelism":`, int64(e.Parallelism))
	dst = appendJSONStringField(dst, `,"strategy":`, e.Strategy)
	dst = appendJSONIntField(dst, `,"index":`, int64(e.Index))
	dst = appendJSONStringField(dst, `,"desc":`, e.Desc)
	if e.Accepted {
		dst = append(dst, `,"accepted":true`...)
	}
	dst = appendJSONIntField(dst, `,"passed":`, int64(e.Passed))
	dst = appendJSONFloatField(dst, `,"ks":`, e.KS)
	dst = appendJSONIntField(dst, `,"workers":`, int64(e.Workers))
	dst = appendJSONFloatField(dst, `,"cost":`, e.Cost)
	dst = appendJSONFloatField(dst, `,"elapsed_ms":`, e.Elapsed)
	dst = appendJSONStringField(dst, `,"dir":`, e.Dir)
	dst = appendJSONIntField(dst, `,"entries":`, e.Entries)
	dst = appendJSONIntField(dst, `,"bytes":`, e.Bytes)
	dst = appendJSONIntField(dst, `,"segments":`, int64(e.Segments))
	dst = appendJSONIntField(dst, `,"from":`, e.From)
	dst = appendJSONIntField(dst, `,"to":`, e.To)
	dst = appendJSONStringField(dst, `,"scenario":`, e.Scenario)
	dst = appendJSONStringField(dst, `,"scale":`, e.Scale)
	dst = appendJSONStringField(dst, `,"span":`, e.Span)
	dst = appendJSONStringField(dst, `,"parent":`, e.Parent)
	dst = appendJSONStringField(dst, `,"watch":`, e.Watch)
	dst = appendJSONIntField(dst, `,"triggers":`, e.Triggers)
	return append(dst, '}')
}

// appendJSONTime matches time.Time.MarshalJSON: quoted RFC 3339 with
// nanoseconds.
func appendJSONTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

func appendJSONIntField(dst []byte, prefix string, v int64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, prefix...)
	return strconv.AppendInt(dst, v, 10)
}

func appendJSONStringField(dst []byte, prefix, s string) []byte {
	if s == "" {
		return dst
	}
	dst = append(dst, prefix...)
	return appendJSONString(dst, s)
}

func appendJSONFloatField(dst []byte, prefix string, f float64) []byte {
	if f == 0 {
		return dst
	}
	dst = append(dst, prefix...)
	return appendJSONFloat(dst, f)
}

// appendJSONFloat reproduces encoding/json's float64 encoder: shortest
// representation, 'f' form except for very small/large magnitudes, with
// the exponent's leading zero trimmed.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const jsonHex = "0123456789abcdef"

// appendJSONString escapes s exactly as encoding/json's default
// (HTML-escaping) encoder does.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters plus <, >, & (HTML escaping).
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
