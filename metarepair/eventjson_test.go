package metarepair

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestAppendJSONMatchesMarshal pins the hand-rolled encoder to
// encoding/json byte for byte across randomized events, including hostile
// strings (escapes, HTML characters, invalid UTF-8, U+2028) and awkward
// float magnitudes.
func TestAppendJSONMatchesMarshal(t *testing.T) {
	strs := []string{
		"", "explore.start", "missing FlowTable(3,*,201,*,80,2)",
		"change operator == to != in r5 (Swi == 2)",
		`quote " backslash \ slash /`, "tab\tnewline\ncr\r", "ctrl\x01\x1f",
		"html <b>&amp;</b>", "unicode é 漢字 🚀", "bad utf8 \xff\xfe tail",
		"line sep \u2028 and \u2029 end", "trailing\xc3",
	}
	floats := []float64{
		0, 1, -1, 0.05, -0.000125, 1e-7, -3.5e-9, 1.5e21, -2e22, 123456.789,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.1 + 0.2,
	}
	times := []time.Time{
		{},
		time.Date(2026, 8, 8, 12, 30, 45, 0, time.UTC),
		time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.FixedZone("x", 3600)),
		time.Unix(1754650000, 999),
	}
	rng := rand.New(rand.NewSource(7))
	pick := func(n int) int { return rng.Intn(n) }
	ints := []int{0, 1, -1, 63, 4096, math.MaxInt32}
	int64s := []int64{0, 1, -7, math.MinInt64, math.MaxInt64, 1 << 40}

	var buf []byte
	for i := 0; i < 2000; i++ {
		e := Event{
			Time:        times[pick(len(times))],
			Kind:        strs[pick(len(strs))],
			Symptom:     strs[pick(len(strs))],
			Candidates:  ints[pick(len(ints))],
			Steps:       ints[pick(len(ints))],
			Filtered:    ints[pick(len(ints))],
			Dropped:     ints[pick(len(ints))],
			Batch:       ints[pick(len(ints))],
			Batches:     ints[pick(len(ints))],
			Size:        ints[pick(len(ints))],
			Parallelism: ints[pick(len(ints))],
			Strategy:    strs[pick(len(strs))],
			Index:       ints[pick(len(ints))],
			Desc:        strs[pick(len(strs))],
			Accepted:    pick(2) == 0,
			Passed:      ints[pick(len(ints))],
			KS:          floats[pick(len(floats))],
			Workers:     ints[pick(len(ints))],
			Cost:        floats[pick(len(floats))],
			Elapsed:     floats[pick(len(floats))],
			Dir:         strs[pick(len(strs))],
			Entries:     int64s[pick(len(int64s))],
			Bytes:       int64s[pick(len(int64s))],
			Segments:    ints[pick(len(ints))],
			From:        int64s[pick(len(int64s))],
			To:          int64s[pick(len(int64s))],
			Scenario:    strs[pick(len(strs))],
			Scale:       strs[pick(len(strs))],
			Span:        strs[pick(len(strs))],
			Parent:      strs[pick(len(strs))],
		}
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		buf = e.AppendJSON(buf[:0])
		if string(buf) != string(want) {
			t.Fatalf("event %d encoding diverges:\n  AppendJSON: %s\n  Marshal:    %s\n  event: %+v",
				i, buf, want, e)
		}
	}
}

// TestAppendJSONRoundTrips confirms the encoded form decodes back into
// the same event (the consumer-side guarantee SSE clients rely on).
func TestAppendJSONRoundTrips(t *testing.T) {
	e := Event{
		Time: time.Date(2026, 8, 8, 9, 0, 0, 42, time.UTC), Kind: "suggestion",
		Index: 3, Desc: "change constant 2 in r7 (sel/0/R) to 3", Accepted: true,
		KS: 0.00796, Cost: 2.5, Elapsed: 17.25,
		Span: "batch", Parent: "backtest",
	}
	var got Event
	if err := json.Unmarshal(e.AppendJSON(nil), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !got.Time.Equal(e.Time) {
		t.Fatalf("time round trip: got %v want %v", got.Time, e.Time)
	}
	got.Time = e.Time
	if got != e {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, e)
	}
}
