package metarepair

import (
	"io"
	"sync"
	"time"
)

// Event is one pipeline progress record. Unused fields are omitted from
// the JSON encoding, so every event kind shares this envelope:
//
//	explore.start       Symptom, Workers (stream search pool; 0 = sequential)
//	explore.candidate   Index, Desc, Cost (one per streamed candidate)
//	explore.done        Candidates, Steps, Elapsed
//	candidates.filtered Filtered (removed by a candidate filter)
//	candidates.dropped  Dropped (removed by the candidate cap)
//	capture.start       Dir (live capture attached to a network)
//	capture.done        Dir, Entries, Bytes, Segments
//	replay.open         Dir, Entries, Bytes, Segments (store-backed workload)
//	backtest.start      Parallelism, Strategy — plus Candidates and
//	                    Batches under the barrier composition; the
//	                    streaming pipeline starts before the counts are
//	                    known and marks Strategy "parallel/streaming"
//	                    (or "parallel/first-accepted")
//	batch.done          Batch, Size, Elapsed
//	suggestion          Index, Desc, Accepted, KS
//	pipeline.overlap    Elapsed (explore ∩ replay concurrency, streaming mode)
//	pipeline.stop       Index (first accepted candidate; PipelineFirstAccepted)
//	report              Candidates, Accepted, Elapsed
//	span.start          Span, Parent — a timed pipeline region opened; batch
//	                    spans also carry Batch. Worker-timed spans (batch,
//	                    and backtest under the streaming composition) are
//	                    emitted retroactively with Time set to the measured
//	                    boundary, so they can trail their children in stream
//	                    order while the timestamps stay truthful.
//	span.end            Span, Parent, Elapsed (plus Batch on batch spans)
//
// The scenario suite runner emits cell-level events through the same
// envelope and stamps Scenario and Scale onto every event a cell's
// pipeline produces:
//
//	suite.start         Candidates (cells), Parallelism
//	cell.start          Scenario, Scale
//	cell.done           Scenario, Scale, Candidates, Passed, Accepted, Elapsed
//	suite.done          Candidates (cells), Passed (ok cells), Elapsed
//
// Watch mode (the self-healing loop) emits through the same envelope,
// stamping Watch with the watcher's label:
//
//	watch.start         Watch, Scenario, Symptom, Size (window), Dir
//	watch.detect        Watch, Scenario, Symptom, From, To, Triggers
//	watch.suppressed    Watch, Scenario, From, To, Desc (reason:
//	                    "in-flight", "concurrency", "debounce")
//	watch.repair.start  Watch, Scenario, From, To
//	watch.repair.done   Watch, Scenario, From, To, Candidates, Passed,
//	                    Accepted (a validated repair), Desc (the first
//	                    accepted repair), Elapsed (detection → verdict:
//	                    the time-to-validated-repair)
//	watch.stop          Watch, Entries, Candidates (detections)
type Event struct {
	Time        time.Time `json:"time"`
	Kind        string    `json:"kind"`
	Symptom     string    `json:"symptom,omitempty"`
	Candidates  int       `json:"candidates,omitempty"`
	Steps       int       `json:"steps,omitempty"`
	Filtered    int       `json:"filtered,omitempty"`
	Dropped     int       `json:"dropped,omitempty"`
	Batch       int       `json:"batch,omitempty"`
	Batches     int       `json:"batches,omitempty"`
	Size        int       `json:"size,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`
	Strategy    string    `json:"strategy,omitempty"`
	Index       int       `json:"index,omitempty"`
	Desc        string    `json:"desc,omitempty"`
	Accepted    bool      `json:"accepted,omitempty"`
	Passed      int       `json:"passed,omitempty"`
	KS          float64   `json:"ks,omitempty"`
	Workers     int       `json:"workers,omitempty"`
	Cost        float64   `json:"cost,omitempty"`
	Elapsed     float64   `json:"elapsed_ms,omitempty"`
	Dir         string    `json:"dir,omitempty"`
	Entries     int64     `json:"entries,omitempty"`
	Bytes       int64     `json:"bytes,omitempty"`
	Segments    int       `json:"segments,omitempty"`
	// From and To bound a windowed store replay (math.MinInt64 /
	// math.MaxInt64 when unbounded, omitted when not a replay event).
	From int64 `json:"from,omitempty"`
	To   int64 `json:"to,omitempty"`
	// Scenario and Scale label events produced inside one suite cell, so
	// interleaved streams from concurrent cells stay attributable.
	Scenario string `json:"scenario,omitempty"`
	Scale    string `json:"scale,omitempty"`
	// Span and Parent name the timed region on span.start/span.end events
	// (run, explore, backtest, batch, verdict).
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Watch labels events from a watch-mode loop; Triggers counts the
	// symptom-relevant packets in a flagged window.
	Watch    string `json:"watch,omitempty"`
	Triggers int64  `json:"triggers,omitempty"`
}

// EventSink receives pipeline progress events. Implementations must be
// safe for concurrent Emit calls: batched backtesting emits from worker
// goroutines.
type EventSink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per event per line — the append-only
// event-log idiom that keeps exploration and backtest progress observable
// in production. It is safe for concurrent use, and it reuses one
// preallocated encode buffer across events (see Event.AppendJSON), so
// steady-state emission does not allocate.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewJSONLSink wraps a writer (a log file, a pipe, os.Stderr).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit encodes and appends the event; write failures are dropped — an
// observability sink must never fail the pipeline.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
}

// sinkFunc adapts a function to the EventSink interface.
type sinkFunc func(Event)

func (f sinkFunc) Emit(e Event) { f(e) }

// SinkFunc adapts a function to the EventSink interface.
func SinkFunc(f func(Event)) EventSink { return sinkFunc(f) }

// emit stamps and forwards an event when a sink is configured. Events
// that already carry a timestamp (retroactive span boundaries) keep it.
func (o options) emit(e Event) {
	if o.sink == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	o.sink.Emit(e)
}
