package metarepair

import (
	"context"
	"sync"
	"sync/atomic"
)

// FanoutSink broadcasts pipeline events to any number of subscribers
// without ever blocking the emitting pipeline: Emit copies the event into
// each subscriber's buffer and returns immediately. Subscribers consume
// at their own pace; a bounded subscriber that falls behind loses its
// *oldest* buffered events (counted per subscriber, never silently), so a
// stalled consumer — a slow SSE client, a wedged log writer — can never
// stall a running repair session.
//
// Every subscriber observes the events it receives in global emit order:
// Emit serializes concurrent emitters, so the fan-out also serves as the
// per-run serialization layer the streaming pipeline needs (see
// Session.Stream), replacing the old per-run locking wrapper.
type FanoutSink struct {
	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool
	wg     sync.WaitGroup // attached drainer goroutines

	// dropped accumulates overflow drops across all subscribers, past
	// and present — the backpressure signal FanoutStats exposes.
	dropped atomic.Uint64
}

// FanoutStats is a point-in-time backpressure summary of a FanoutSink.
type FanoutStats struct {
	// Subscribers is the current live subscription count.
	Subscribers int
	// Dropped is the cumulative events lost to subscriber buffer
	// overflow, including subscribers that have since cancelled.
	Dropped uint64
}

// Stats reports the sink's current subscriber count and cumulative
// dropped-event total, so SSE backpressure is observable (see
// MetricsSink.TrackFanout).
func (f *FanoutSink) Stats() FanoutStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FanoutStats{Subscribers: len(f.subs), Dropped: f.dropped.Load()}
}

// NewFanoutSink returns an empty fan-out; events emitted before the first
// subscriber arrives are discarded.
func NewFanoutSink() *FanoutSink {
	return &FanoutSink{subs: make(map[*Subscription]struct{})}
}

// Emit delivers the event to every live subscriber's buffer. It never
// blocks: a full bounded subscriber drops its oldest pending event
// instead (recorded in Subscription.Dropped).
func (f *FanoutSink) Emit(e Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for sub := range f.subs {
		sub.push(e)
	}
}

// Subscribe registers a consumer. buf > 0 bounds its pending-event buffer
// (drop-oldest on overflow); buf <= 0 makes it unbounded — for in-process
// consumers that must observe every event. Subscribing to a closed
// fan-out yields an already-terminated subscription.
func (f *FanoutSink) Subscribe(buf int) *Subscription {
	sub := &Subscription{f: f, bound: buf, notify: make(chan struct{}, 1)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		sub.closed = true
		return sub
	}
	f.subs[sub] = struct{}{}
	return sub
}

// Attach subscribes an EventSink and drains events into it from a
// dedicated goroutine, so even a sink that blocks in Emit cannot stall
// emitters. Close waits for attached sinks to receive every buffered
// event before returning.
func (f *FanoutSink) Attach(sink EventSink, buf int) {
	sub := f.Subscribe(buf)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			e, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			sink.Emit(e)
		}
	}()
}

// Close ends the fan-out: no further events are delivered, every
// subscription terminates once its buffered events are consumed, and
// Close blocks until all Attach drainers have flushed. It is safe to
// call more than once.
func (f *FanoutSink) Close() {
	f.mu.Lock()
	f.closed = true
	subs := f.subs
	f.subs = nil
	f.mu.Unlock()
	for sub := range subs {
		sub.end()
	}
	f.wg.Wait()
}

// Subscription is one consumer's ordered view of a FanoutSink's events.
type Subscription struct {
	f      *FanoutSink
	bound  int
	notify chan struct{}

	mu     sync.Mutex
	buf    []Event // FIFO; buf[head:] is pending
	head   int
	closed bool

	dropped atomic.Uint64
}

// push appends an event, evicting the oldest pending one when a bounded
// buffer is full. Called with the fan-out's mutex held, so pushes across
// subscribers observe one global order.
func (s *Subscription) push(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.bound > 0 && len(s.buf)-s.head >= s.bound {
		s.head++
		s.dropped.Add(1)
		if s.f != nil {
			s.f.dropped.Add(1)
		}
	}
	// Reclaim the consumed prefix before it dominates the backing array.
	if s.head > 0 && (s.head == len(s.buf) || s.head > cap(s.buf)/2) {
		n := copy(s.buf, s.buf[s.head:])
		s.buf = s.buf[:n]
		s.head = 0
	}
	s.buf = append(s.buf, e)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the next pending event, blocking until one arrives, the
// subscription terminates, or ctx is done. It returns ok=false only when
// no pending event remains and the subscription is finished (or the wait
// was cancelled) — a closed fan-out's buffered backlog drains first.
func (s *Subscription) Next(ctx context.Context) (Event, bool) {
	for {
		s.mu.Lock()
		if s.head < len(s.buf) {
			e := s.buf[s.head]
			s.buf[s.head] = Event{} // release the strings behind us
			s.head++
			s.mu.Unlock()
			return e, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// Dropped reports how many events this subscriber lost to buffer
// overflow.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscription: no further events are buffered and
// Next returns false once the already-buffered backlog is consumed.
func (s *Subscription) Cancel() {
	f := s.f
	if f != nil {
		f.mu.Lock()
		delete(f.subs, s)
		f.mu.Unlock()
	}
	s.end()
}

// end marks the subscription finished and wakes a blocked Next.
func (s *Subscription) end() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
