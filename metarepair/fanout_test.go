package metarepair

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// collectSink records every event it receives.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// TestFanoutOrderingAcrossSubscribers: concurrent emitters, several
// subscribers — every subscriber must observe one consistent global
// order, and an unbounded subscriber must observe every event.
func TestFanoutOrderingAcrossSubscribers(t *testing.T) {
	f := NewFanoutSink()
	const emitters, perEmitter = 8, 200
	subs := []*Subscription{f.Subscribe(0), f.Subscribe(0), f.Subscribe(0)}

	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				f.Emit(Event{Kind: "e", Workers: g, Index: i})
			}
		}(g)
	}
	wg.Wait()
	f.Close()

	var seqs [][]Event
	for _, sub := range subs {
		var got []Event
		for {
			e, ok := sub.Next(context.Background())
			if !ok {
				break
			}
			got = append(got, e)
		}
		if len(got) != emitters*perEmitter {
			t.Fatalf("subscriber saw %d of %d events", len(got), emitters*perEmitter)
		}
		// Per-emitter order must be preserved within the global order.
		next := make([]int, emitters)
		for _, e := range got {
			if e.Index != next[e.Workers] {
				t.Fatalf("emitter %d: event %d arrived out of order (want %d)",
					e.Workers, e.Index, next[e.Workers])
			}
			next[e.Workers]++
		}
		seqs = append(seqs, got)
	}
	for i := 1; i < len(seqs); i++ {
		for j := range seqs[0] {
			if seqs[i][j] != seqs[0][j] {
				t.Fatalf("subscribers diverge at %d: %+v vs %+v", j, seqs[i][j], seqs[0][j])
			}
		}
	}
}

// TestFanoutDropOldest: a bounded subscriber that never consumes keeps
// the newest events, counts the overflow, and never blocks the emitter.
func TestFanoutDropOldest(t *testing.T) {
	f := NewFanoutSink()
	sub := f.Subscribe(4)
	for i := 0; i < 100; i++ {
		f.Emit(Event{Index: i})
	}
	f.Close()
	if got := sub.Dropped(); got != 96 {
		t.Fatalf("Dropped() = %d, want 96", got)
	}
	want := 96
	for {
		e, ok := sub.Next(context.Background())
		if !ok {
			break
		}
		if e.Index != want {
			t.Fatalf("kept event %d, want %d (drop-oldest keeps the newest)", e.Index, want)
		}
		want++
	}
	if want != 100 {
		t.Fatalf("drained to %d, want 100", want)
	}
}

// TestFanoutSlowSubscriberNeverStallsEmit: with a bounded subscriber that
// consumes nothing, a burst of emits completes immediately.
func TestFanoutSlowSubscriberNeverStallsEmit(t *testing.T) {
	f := NewFanoutSink()
	defer f.Close()
	_ = f.Subscribe(1) // never consumed
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			f.Emit(Event{Index: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked behind a stalled subscriber")
	}
}

// TestFanoutAttachDrainsOnClose: Close must not return until an attached
// sink has received every buffered event, in order.
func TestFanoutAttachDrainsOnClose(t *testing.T) {
	f := NewFanoutSink()
	col := &collectSink{}
	f.Attach(col, 0)
	const n = 500
	for i := 0; i < n; i++ {
		f.Emit(Event{Index: i})
	}
	f.Close()
	got := col.snapshot()
	if len(got) != n {
		t.Fatalf("attached sink saw %d of %d events after Close", len(got), n)
	}
	for i, e := range got {
		if e.Index != i {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

// TestFanoutCancelDetaches: a cancelled subscription stops receiving and
// terminates its consumer; the fan-out keeps serving others.
func TestFanoutCancelDetaches(t *testing.T) {
	f := NewFanoutSink()
	defer f.Close()
	a, b := f.Subscribe(0), f.Subscribe(0)
	f.Emit(Event{Index: 0})
	a.Cancel()
	f.Emit(Event{Index: 1})
	if e, ok := a.Next(context.Background()); ok {
		// The pre-cancel backlog may drain; the post-cancel event must not.
		if e.Index != 0 {
			t.Fatalf("cancelled subscription received post-cancel event %+v", e)
		}
		if _, ok := a.Next(context.Background()); ok {
			t.Fatal("cancelled subscription kept receiving")
		}
	}
	for want := 0; want < 2; want++ {
		e, ok := b.Next(context.Background())
		if !ok || e.Index != want {
			t.Fatalf("live subscription: got (%+v, %v), want index %d", e, ok, want)
		}
	}
}

// TestFanoutNextHonorsContext: Next returns when its context is
// cancelled even though no event ever arrives.
func TestFanoutNextHonorsContext(t *testing.T) {
	f := NewFanoutSink()
	defer f.Close()
	sub := f.Subscribe(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok := sub.Next(ctx); ok {
		t.Fatal("Next returned an event from an empty subscription")
	}
}

// BenchmarkEventFanout measures the SSE hot path: one emitted event fanned
// out to subscribers, each drained into a JSONL encoder with a reused
// buffer. The whole path — Emit, ring push, AppendJSON — must not
// allocate per event.
func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{1, 4} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			f := NewFanoutSink()
			for i := 0; i < subs; i++ {
				f.Attach(NewJSONLSink(io.Discard), 1024)
			}
			e := Event{
				Time: time.Unix(1754650000, 123456789), Kind: "suggestion",
				Index: 17, Desc: "change constant 2 in r7 (sel/0/R) to 3",
				Accepted: true, KS: 0.00796, Cost: 2.5, Elapsed: 12.75,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Emit(e)
			}
			b.StopTimer()
			f.Close()
		})
	}
}
