package metarepair

import (
	"sync"

	"repro/internal/obsv"
)

// MetricsSink is an EventSink that aggregates pipeline telemetry into an
// obsv.Registry: span durations become session_span_duration_seconds
// histograms labeled by span name, every event increments
// session_events_total by kind, and suggestion verdicts count into
// session_suggestions_total. Both label sets are drawn from fixed
// vocabularies (the span hierarchy and the Event kind catalogue), so
// cardinality stays bounded no matter how many runs a process serves.
//
// Emit is safe for concurrent use and never blocks or fails — it only
// touches atomic registry hot paths — so the sink can sit directly on a
// streaming pipeline or inside a FanoutSink alongside SSE subscribers.
type MetricsSink struct {
	spans       *obsv.HistogramVec
	events      *obsv.CounterVec
	suggestions *obsv.CounterVec

	fanoutSubs    *obsv.GaugeVec
	fanoutDropped *obsv.GaugeVec
	mu            sync.Mutex
	fanouts       map[string]*FanoutSink
}

// NewMetricsSink registers the session_* families on reg and returns the
// recording sink. Registering twice on one registry panics (obsv treats
// re-registration with a different schema as a programming error), so
// long-lived processes create one sink per registry and share it across
// runs; the daemon does exactly that.
func NewMetricsSink(reg *obsv.Registry) *MetricsSink {
	return &MetricsSink{
		spans: reg.HistogramVec("session_span_duration_seconds",
			"Wall-clock duration of pipeline spans (run, explore, backtest, batch, verdict).",
			nil, "span"),
		events: reg.CounterVec("session_events_total",
			"Pipeline events observed, by kind.", "kind"),
		suggestions: reg.CounterVec("session_suggestions_total",
			"Backtested suggestions, by verdict.", "verdict"),
		fanoutSubs: reg.GaugeVec("session_fanout_subscribers",
			"Live subscribers on tracked event fan-outs (SSE streams, drainers).", "sink"),
		fanoutDropped: reg.GaugeVec("session_fanout_dropped_events",
			"Cumulative events lost to subscriber buffer overflow on tracked fan-outs.", "sink"),
		fanouts: make(map[string]*FanoutSink),
	}
}

// TrackFanout registers a fan-out under a label; RefreshFanouts samples
// its subscriber count and cumulative dropped events into the
// session_fanout_* gauges. Labels must come from a bounded vocabulary
// (the daemon tracks one aggregate per stream class, not per client).
// Tracking a new fan-out under an existing label replaces the old one —
// the gauges then describe the replacement.
func (m *MetricsSink) TrackFanout(label string, f *FanoutSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fanouts[label] = f
}

// UntrackFanout stops sampling a label, zeroing its gauges (a closed
// fan-out no longer has subscribers; the drop total ends with it).
func (m *MetricsSink) UntrackFanout(label string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.fanouts, label)
	m.fanoutSubs.With(label).Set(0)
	m.fanoutDropped.With(label).Set(0)
}

// RefreshFanouts samples every tracked fan-out into the gauges. Call it
// before exposition (the daemon's /metrics handler does).
func (m *MetricsSink) RefreshFanouts() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for label, f := range m.fanouts {
		st := f.Stats()
		m.fanoutSubs.With(label).Set(float64(st.Subscribers))
		m.fanoutDropped.With(label).Set(float64(st.Dropped))
	}
}

// Emit records one event. Non-span, non-suggestion kinds only count.
func (m *MetricsSink) Emit(e Event) {
	m.events.With(e.Kind).Inc()
	switch e.Kind {
	case "span.end":
		m.spans.With(e.Span).Observe(e.Elapsed / 1e3)
	case "suggestion":
		verdict := "rejected"
		if e.Accepted {
			verdict = "accepted"
		}
		m.suggestions.With(verdict).Inc()
	}
}
