package metarepair

import (
	"repro/internal/obsv"
)

// MetricsSink is an EventSink that aggregates pipeline telemetry into an
// obsv.Registry: span durations become session_span_duration_seconds
// histograms labeled by span name, every event increments
// session_events_total by kind, and suggestion verdicts count into
// session_suggestions_total. Both label sets are drawn from fixed
// vocabularies (the span hierarchy and the Event kind catalogue), so
// cardinality stays bounded no matter how many runs a process serves.
//
// Emit is safe for concurrent use and never blocks or fails — it only
// touches atomic registry hot paths — so the sink can sit directly on a
// streaming pipeline or inside a FanoutSink alongside SSE subscribers.
type MetricsSink struct {
	spans       *obsv.HistogramVec
	events      *obsv.CounterVec
	suggestions *obsv.CounterVec
}

// NewMetricsSink registers the session_* families on reg and returns the
// recording sink. Registering twice on one registry panics (obsv treats
// re-registration with a different schema as a programming error), so
// long-lived processes create one sink per registry and share it across
// runs; the daemon does exactly that.
func NewMetricsSink(reg *obsv.Registry) *MetricsSink {
	return &MetricsSink{
		spans: reg.HistogramVec("session_span_duration_seconds",
			"Wall-clock duration of pipeline spans (run, explore, backtest, batch, verdict).",
			nil, "span"),
		events: reg.CounterVec("session_events_total",
			"Pipeline events observed, by kind.", "kind"),
		suggestions: reg.CounterVec("session_suggestions_total",
			"Backtested suggestions, by verdict.", "verdict"),
	}
}

// Emit records one event. Non-span, non-suggestion kinds only count.
func (m *MetricsSink) Emit(e Event) {
	m.events.With(e.Kind).Inc()
	switch e.Kind {
	case "span.end":
		m.spans.With(e.Span).Observe(e.Elapsed / 1e3)
	case "suggestion":
		verdict := "rejected"
		if e.Accepted {
			verdict = "accepted"
		}
		m.suggestions.With(verdict).Inc()
	}
}
