package metarepair

import (
	"fmt"

	"repro/internal/backtest"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/tracestore"
)

// Strategy selects how a candidate set is backtested.
type Strategy int

const (
	// StrategyParallel (the default) splits candidates into shared-run
	// batches of at most the configured batch size and evaluates the
	// batches concurrently on a worker pool.
	StrategyParallel Strategy = iota
	// StrategySerial runs the same batches one after another — the §4.4
	// multi-query optimization without worker-pool concurrency.
	StrategySerial
	// StrategySequential replays each candidate in its own simulation
	// (the upper curve of Figure 9b); used by ablation experiments.
	StrategySequential
)

// String names the strategy for event logs.
func (s Strategy) String() string {
	switch s {
	case StrategySerial:
		return "serial"
	case StrategySequential:
		return "sequential"
	default:
		return "parallel"
	}
}

// EvalMode selects how shared-run backtests evaluate the NDlog program.
type EvalMode int

const (
	// EvalDelta (the default) runs shared backtests on the engine's
	// grouped delta evaluation with indexed flow-table matching:
	// verdict-identical to EvalFull, several times faster at high
	// candidate counts (see the ndlog package's incremental evaluation).
	EvalDelta EvalMode = iota
	// EvalFull fires every trigger plan independently — the reference
	// path the differential tests treat as the oracle, kept selectable
	// for ablations and cross-checking.
	EvalFull
)

// String names the mode for flags and event logs.
func (m EvalMode) String() string {
	if m == EvalFull {
		return "full"
	}
	return "delta"
}

// ndlog maps the option to the engine-level mode.
func (m EvalMode) ndlog() ndlog.EvalMode {
	if m == EvalFull {
		return ndlog.EvalFull
	}
	return ndlog.EvalDelta
}

// ParseEvalMode resolves a flag value ("full" or "delta").
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "delta", "":
		return EvalDelta, nil
	case "full":
		return EvalFull, nil
	}
	return EvalDelta, fmt.Errorf("metarepair: unknown eval mode %q (want full or delta)", s)
}

// PipelineMode selects how exploration and backtesting are composed under
// StrategyParallel. The other strategies always use the barrier
// composition.
type PipelineMode int

const (
	// PipelineStreaming (the default) runs the concurrent forest search
	// and fills shared-run batches straight from its candidate stream:
	// backtesting starts while exploration is still producing, and the
	// two phases overlap (reported as Timing.Overlap and the
	// pipeline.overlap event). Candidate order, batch composition, and
	// every verdict are identical to the barrier composition.
	PipelineStreaming PipelineMode = iota
	// PipelineBarrier materializes the full candidate list before the
	// first batch launches — the pre-streaming composition, kept for
	// ablation experiments and phase-isolating benchmarks.
	PipelineBarrier
	// PipelineFirstAccepted is PipelineStreaming plus early stop: the
	// first accepted repair cancels the search and the unstarted batches,
	// and the Report covers the verdicts computed up to that point
	// (Report.EarlyStopped).
	PipelineFirstAccepted
)

// String names the pipeline mode for event logs.
func (m PipelineMode) String() string {
	switch m {
	case PipelineBarrier:
		return "barrier"
	case PipelineFirstAccepted:
		return "first-accepted"
	default:
		return "streaming"
	}
}

// Budget bounds the meta-provenance search (§3.5). Zero-valued fields
// keep the explorer's paper-motivated defaults.
type Budget struct {
	// MaxDepth bounds recursive goal expansion (default 3).
	MaxDepth int
	// MaxSteps bounds total vertex expansions (default 60000).
	MaxSteps int
	// CostCutoff bounds total change cost (default cost.DefaultCutoff).
	CostCutoff float64
	// MaxHistTuples bounds historical tuples cited per predicate
	// (default 16).
	MaxHistTuples int
	// MaxPerStructure caps candidates sharing a change structure
	// (default 3).
	MaxPerStructure int
}

func (b Budget) apply(ex *metaprov.Explorer) {
	if b.MaxDepth > 0 {
		ex.MaxDepth = b.MaxDepth
	}
	if b.MaxSteps > 0 {
		ex.MaxSteps = b.MaxSteps
	}
	if b.CostCutoff > 0 {
		ex.Cutoff = b.CostCutoff
	}
	if b.MaxHistTuples > 0 {
		ex.MaxHistTuples = b.MaxHistTuples
	}
	if b.MaxPerStructure > 0 {
		ex.MaxPerStructure = b.MaxPerStructure
	}
}

// options is the resolved configuration for a session or one call.
type options struct {
	// err records the first invalid option; NewSession and the pipeline
	// entry points reject the whole call instead of silently correcting.
	err               error
	maxCandidates     int
	alpha             float64
	budget            Budget
	coalesce          bool
	parallelism       int
	batchSize         int
	strategy          Strategy
	pipeline          PipelineMode
	eval              EvalMode
	exploreWorkers    int
	sink              EventSink
	filter            func(metaprov.Candidate) bool
	maxPacketInFactor float64
	store             *tracestore.Store
	windowSet         bool
	windowFrom        int64
	windowTo          int64
}

func defaultOptions() options {
	return options{
		maxCandidates: 64,
		coalesce:      true,
		batchSize:     backtest.MaxSharedCandidates,
		strategy:      StrategyParallel,
		pipeline:      PipelineStreaming,
	}
}

func (o options) with(opts []Option) options {
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// fail records the first invalid option; later valid options still apply
// so the eventual error message is deterministic regardless of order.
func (o *options) fail(opt string, got int, want string) {
	if o.err == nil {
		o.err = fmt.Errorf("metarepair: %s(%d): %s", opt, got, want)
	}
}

// ValidateOptions resolves opts against the defaults and returns the
// first configuration error, or nil. Servers use it to reject a bad
// request at intake instead of failing the job later.
func ValidateOptions(opts ...Option) error {
	return defaultOptions().with(opts).err
}

// Option configures a Session or a single pipeline call. Options passed
// to NewSession become the session defaults; options passed to Explore,
// Evaluate, Stream, or Repair override them for that call only.
type Option func(*options)

// WithMaxCandidates caps how many repair candidates are carried into
// backtesting (default 64). For missing-tuple symptoms this bounds the
// forest search itself; for positive symptoms the full cost-ordered list
// is generated and the surplus is dropped *visibly* — reported in
// Report.Dropped and emitted as a "candidates.dropped" event — never
// silently truncated. Zero or negative removes the cap; an uncapped
// session always uses the barrier composition (see WithPipelineMode).
func WithMaxCandidates(n int) Option { return func(o *options) { o.maxCandidates = n } }

// WithAlpha sets the KS significance level for the §4.3 disruption test
// (default 0.05).
func WithAlpha(alpha float64) Option { return func(o *options) { o.alpha = alpha } }

// WithBudget bounds the meta-provenance search; zero-valued fields keep
// the defaults.
func WithBudget(b Budget) Option { return func(o *options) { o.budget = b } }

// WithCoalesce toggles the §4.4 static-analysis optimization that merges
// syntactically identical candidate rule copies in shared runs (default
// true).
func WithCoalesce(on bool) Option { return func(o *options) { o.coalesce = on } }

// WithParallelism sets the worker-pool width for batched backtesting
// (default: GOMAXPROCS via runtime.NumCPU). Zero or negative counts are
// a configuration error — omit the option to get the default.
func WithParallelism(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.fail("WithParallelism", n, "worker count must be at least 1")
			return
		}
		o.parallelism = n
	}
}

// WithBatchSize sets the per-shared-run candidate count (default and
// maximum 63 — one shared run's tag space). Counts outside [1, 63] are
// a configuration error — omit the option to get the default.
func WithBatchSize(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.fail("WithBatchSize", n, "batch size must be at least 1")
			return
		}
		if n > backtest.MaxSharedCandidates {
			o.fail("WithBatchSize", n, fmt.Sprintf("batch size exceeds one shared run's %d-tag space", backtest.MaxSharedCandidates))
			return
		}
		o.batchSize = n
	}
}

// WithStrategy selects the backtesting strategy (default
// StrategyParallel).
func WithStrategy(s Strategy) Option { return func(o *options) { o.strategy = s } }

// WithEvalMode selects the shared-run evaluation mode (default EvalDelta).
// Both modes produce identical verdicts; EvalFull is the reference path
// for differential runs and ablations.
func WithEvalMode(m EvalMode) Option { return func(o *options) { o.eval = m } }

// WithPipelineMode selects how exploration composes with backtesting under
// StrategyParallel (default PipelineStreaming). PipelineBarrier restores
// the explore-everything-first composition; PipelineFirstAccepted stops
// the whole pipeline at the first accepted repair. The streaming modes
// need a finite WithMaxCandidates cap (it sizes the suggestion buffer);
// with the cap disabled, runs use the barrier composition regardless.
func WithPipelineMode(m PipelineMode) Option { return func(o *options) { o.pipeline = m } }

// WithExploreWorkers sizes the concurrent forest search's worker pool for
// the streaming pipeline (default GOMAXPROCS). Any worker count yields
// the exact candidate sequence of the sequential search — the stream's
// cost-epoch emitter releases a candidate only when no cheaper partial
// tree remains anywhere. Zero or negative counts are a configuration
// error — omit the option to get the default.
func WithExploreWorkers(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.fail("WithExploreWorkers", n, "worker count must be at least 1")
			return
		}
		o.exploreWorkers = n
	}
}

// WithEventSink streams pipeline progress events (exploration, batch
// completion, suggestions) to the sink — see JSONLSink for a production
// implementation.
func WithEventSink(s EventSink) Option { return func(o *options) { o.sink = s } }

// WithCandidateFilter drops candidates the predicate rejects before
// backtesting (e.g. repairs inexpressible in a language front-end, the
// Table 3 experiment); the count is reported in Report.Filtered.
func WithCandidateFilter(keep func(metaprov.Candidate) bool) Option {
	return func(o *options) { o.filter = keep }
}

// WithMaxPacketInFactor rejects candidates whose controller PacketIn load
// exceeds this multiple of the baseline (the Q4 side-effect metric,
// Table 6(c)); zero disables the check.
func WithMaxPacketInFactor(f float64) Option { return func(o *options) { o.maxPacketInFactor = f } }

// WithTraceStore attaches a durable segmented trace store to the
// session: Session.Capture records live traffic into it, and backtesting
// streams the workload back out of it whenever the Backtest evidence
// does not name a workload of its own — replay memory then stays
// O(segment) no matter how long the capture ran. Progress surfaces as
// capture.start/capture.done and replay.open events on the EventSink.
func WithTraceStore(st *tracestore.Store) Option { return func(o *options) { o.store = st } }

// WithReplayWindow restricts store-backed replay to records with
// from <= Time <= to — the knob that backtests against a slice of
// history (e.g. "the hour before the symptom") instead of the whole
// log. It applies only to workloads sourced via WithTraceStore.
func WithReplayWindow(from, to int64) Option {
	return func(o *options) { o.windowSet, o.windowFrom, o.windowTo = true, from, to }
}
