package metarepair

import (
	"context"
	"strings"
	"testing"

	"repro/internal/backtest"
	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
	"repro/internal/sdn"
)

func TestOptionDefaults(t *testing.T) {
	o := defaultOptions()
	if o.maxCandidates != 64 {
		t.Errorf("maxCandidates = %d, want 64", o.maxCandidates)
	}
	if !o.coalesce {
		t.Error("coalescing must default on (§4.4)")
	}
	if o.batchSize != backtest.MaxSharedCandidates {
		t.Errorf("batchSize = %d, want %d", o.batchSize, backtest.MaxSharedCandidates)
	}
	if o.strategy != StrategyParallel {
		t.Errorf("strategy = %v, want parallel", o.strategy)
	}
	if o.alpha != 0 || o.maxPacketInFactor != 0 || o.parallelism != 0 {
		t.Error("alpha, packet-in factor, and parallelism must default to zero (engine defaults)")
	}
	if o.sink != nil || o.filter != nil {
		t.Error("sink and filter must default nil")
	}
}

func TestOptionOverridesDoNotMutateSession(t *testing.T) {
	sess, err := NewSession(ndlog.MustParse("t",
		`r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`),
		WithMaxCandidates(7), WithAlpha(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if sess.opts.maxCandidates != 7 || sess.opts.alpha != 0.01 {
		t.Fatalf("session options not applied: %+v", sess.opts)
	}
	// A per-call override is resolved on a copy.
	o := sess.opts.with([]Option{WithMaxCandidates(3), WithStrategy(StrategySequential)})
	if o.maxCandidates != 3 || o.strategy != StrategySequential || o.alpha != 0.01 {
		t.Fatalf("per-call merge broken: %+v", o)
	}
	if sess.opts.maxCandidates != 7 || sess.opts.strategy != StrategyParallel {
		t.Fatalf("per-call options leaked into the session: %+v", sess.opts)
	}
}

func TestBudgetApplyKeepsDefaultsForZeroFields(t *testing.T) {
	prog := ndlog.MustParse("t",
		`r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`)
	ex := metaprov.NewExplorer(meta.NewModel(prog), nil)
	// The explorer embeds atomic counters, so record the tunables
	// individually instead of copying the struct.
	defDepth, defSteps, defCutoff := ex.MaxDepth, ex.MaxSteps, ex.Cutoff
	defHist, defStruct := ex.MaxHistTuples, ex.MaxPerStructure
	Budget{}.apply(ex)
	if ex.MaxDepth != defDepth || ex.MaxSteps != defSteps || ex.Cutoff != defCutoff ||
		ex.MaxHistTuples != defHist || ex.MaxPerStructure != defStruct {
		t.Fatal("zero budget must keep explorer defaults")
	}
	Budget{MaxDepth: 5, CostCutoff: 9.5}.apply(ex)
	if ex.MaxDepth != 5 || ex.Cutoff != 9.5 {
		t.Fatal("non-zero budget fields not applied")
	}
	if ex.MaxSteps != defSteps || ex.MaxPerStructure != defStruct {
		t.Fatal("unrelated fields overwritten")
	}
}

// TestOptionValidation: zero and negative worker or batch counts are
// configuration errors, rejected at every pipeline entry point rather
// than silently corrected to a default.
func TestOptionValidation(t *testing.T) {
	prog := ndlog.MustParse("t",
		`r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`)
	cases := []struct {
		name    string
		opt     Option
		wantErr string // "" = valid
	}{
		{"parallelism 1", WithParallelism(1), ""},
		{"parallelism 32", WithParallelism(32), ""},
		{"parallelism zero", WithParallelism(0), "WithParallelism(0)"},
		{"parallelism negative", WithParallelism(-4), "WithParallelism(-4)"},
		{"batch 1", WithBatchSize(1), ""},
		{"batch max", WithBatchSize(backtest.MaxSharedCandidates), ""},
		{"batch zero", WithBatchSize(0), "WithBatchSize(0)"},
		{"batch negative", WithBatchSize(-1), "WithBatchSize(-1)"},
		{"batch over tag space", WithBatchSize(64), "WithBatchSize(64)"},
		{"explore workers 2", WithExploreWorkers(2), ""},
		{"explore workers zero", WithExploreWorkers(0), "WithExploreWorkers(0)"},
		{"explore workers negative", WithExploreWorkers(-1), "WithExploreWorkers(-1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateOptions(tc.opt)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateOptions: unexpected error %v", err)
				}
				if _, err := NewSession(prog, tc.opt); err != nil {
					t.Fatalf("NewSession rejected a valid option: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ValidateOptions = %v, want error mentioning %q", err, tc.wantErr)
			}
			// The same error surfaces from NewSession and from each
			// pipeline entry point taking per-call options.
			if _, serr := NewSession(prog, tc.opt); serr == nil || serr.Error() != err.Error() {
				t.Fatalf("NewSession error = %v, want %v", serr, err)
			}
			sess, serr := NewSession(prog)
			if serr != nil {
				t.Fatal(serr)
			}
			ctx := context.Background()
			bt := Backtest{BuildNet: func() *sdn.Network { return sdn.NewNetwork() }}
			if _, eerr := sess.Explore(ctx, Missing("FlowTable"), tc.opt); eerr == nil || eerr.Error() != err.Error() {
				t.Fatalf("Explore error = %v, want %v", eerr, err)
			}
			if _, eerr := sess.Evaluate(ctx, nil, bt, tc.opt); eerr == nil || eerr.Error() != err.Error() {
				t.Fatalf("Evaluate error = %v, want %v", eerr, err)
			}
			if _, eerr := sess.Stream(ctx, Missing("FlowTable"), bt, tc.opt); eerr == nil || eerr.Error() != err.Error() {
				t.Fatalf("Stream error = %v, want %v", eerr, err)
			}
			if _, eerr := sess.Repair(ctx, Missing("FlowTable"), bt, tc.opt); eerr == nil || eerr.Error() != err.Error() {
				t.Fatalf("Repair error = %v, want %v", eerr, err)
			}
		})
	}
}

// TestOptionValidationKeepsFirstError: the first invalid option wins and
// later valid options still apply.
func TestOptionValidationKeepsFirstError(t *testing.T) {
	o := defaultOptions().with([]Option{WithParallelism(0), WithBatchSize(-1), WithBatchSize(8)})
	if o.err == nil || !strings.Contains(o.err.Error(), "WithParallelism(0)") {
		t.Fatalf("first error not kept: %v", o.err)
	}
	if o.batchSize != 8 {
		t.Fatalf("later valid option ignored: batchSize = %d", o.batchSize)
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{
		StrategyParallel:   "parallel",
		StrategySerial:     "serial",
		StrategySequential: "sequential",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
