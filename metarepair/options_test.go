package metarepair

import (
	"testing"

	"repro/internal/backtest"
	"repro/internal/meta"
	"repro/internal/metaprov"
	"repro/internal/ndlog"
)

func TestOptionDefaults(t *testing.T) {
	o := defaultOptions()
	if o.maxCandidates != 64 {
		t.Errorf("maxCandidates = %d, want 64", o.maxCandidates)
	}
	if !o.coalesce {
		t.Error("coalescing must default on (§4.4)")
	}
	if o.batchSize != backtest.MaxSharedCandidates {
		t.Errorf("batchSize = %d, want %d", o.batchSize, backtest.MaxSharedCandidates)
	}
	if o.strategy != StrategyParallel {
		t.Errorf("strategy = %v, want parallel", o.strategy)
	}
	if o.alpha != 0 || o.maxPacketInFactor != 0 || o.parallelism != 0 {
		t.Error("alpha, packet-in factor, and parallelism must default to zero (engine defaults)")
	}
	if o.sink != nil || o.filter != nil {
		t.Error("sink and filter must default nil")
	}
}

func TestOptionOverridesDoNotMutateSession(t *testing.T) {
	sess, err := NewSession(ndlog.MustParse("t",
		`r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`),
		WithMaxCandidates(7), WithAlpha(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if sess.opts.maxCandidates != 7 || sess.opts.alpha != 0.01 {
		t.Fatalf("session options not applied: %+v", sess.opts)
	}
	// A per-call override is resolved on a copy.
	o := sess.opts.with([]Option{WithMaxCandidates(3), WithStrategy(StrategySequential)})
	if o.maxCandidates != 3 || o.strategy != StrategySequential || o.alpha != 0.01 {
		t.Fatalf("per-call merge broken: %+v", o)
	}
	if sess.opts.maxCandidates != 7 || sess.opts.strategy != StrategyParallel {
		t.Fatalf("per-call options leaked into the session: %+v", sess.opts)
	}
}

func TestBudgetApplyKeepsDefaultsForZeroFields(t *testing.T) {
	prog := ndlog.MustParse("t",
		`r1 FlowTable(@Swi,Sip,Dip,Spt,Dpt,Prt) :- PacketIn(@C,Swi,InPrt,Sip,Dip,Spt,Dpt), Swi == 1, Prt := 2.`)
	ex := metaprov.NewExplorer(meta.NewModel(prog), nil)
	// The explorer embeds atomic counters, so record the tunables
	// individually instead of copying the struct.
	defDepth, defSteps, defCutoff := ex.MaxDepth, ex.MaxSteps, ex.Cutoff
	defHist, defStruct := ex.MaxHistTuples, ex.MaxPerStructure
	Budget{}.apply(ex)
	if ex.MaxDepth != defDepth || ex.MaxSteps != defSteps || ex.Cutoff != defCutoff ||
		ex.MaxHistTuples != defHist || ex.MaxPerStructure != defStruct {
		t.Fatal("zero budget must keep explorer defaults")
	}
	Budget{MaxDepth: 5, CostCutoff: 9.5}.apply(ex)
	if ex.MaxDepth != 5 || ex.Cutoff != 9.5 {
		t.Fatal("non-zero budget fields not applied")
	}
	if ex.MaxSteps != defSteps || ex.MaxPerStructure != defStruct {
		t.Fatal("unrelated fields overwritten")
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{
		StrategyParallel:   "parallel",
		StrategySerial:     "serial",
		StrategySequential: "sequential",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
